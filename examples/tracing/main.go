// Flight recorder: request tracing, time-series metrics, and p99
// attribution on one run. Config.Trace turns on a sim-time span tracer
// that records where each request's latency went — queueing, ToR dwell,
// spine wait vs transfer, device service, GC blocking, degraded-read
// reconstruction — with head sampling plus an always-keep-slowest tail
// reservoir; Config.MetricsInterval arms a periodic sampler driven by
// the engine's observer tick. Both are observer-only: an instrumented
// run is byte-identical to a plain one in everything but the recorder's
// own output.
//
// This example replays a server crash on a three-rack RS(4,2) cluster
// with the recorder on, writes the Chrome trace (load trace.json in
// ui.perfetto.dev) and the metrics CSV, and prints the tail
// attribution: over the slowest 1% of reads, the fraction of latency
// each datapath phase is responsible for — the direct answer to "why is
// p99 high".
package main

import (
	"fmt"
	"log"
	"os"

	"rackblox"
)

const ms = 1_000_000 // virtual nanoseconds per millisecond

func main() {
	cfg := rackblox.DefaultConfig()
	cfg.Racks = 3
	cfg.StorageServers = 6
	cfg.VSSDPairs = 3
	cfg.Redundancy = rackblox.RedundancyEC(4, 2)
	cfg.Placement = rackblox.PlacementSpread
	cfg.CrossRackMBps = 120
	cfg.Device = rackblox.DeviceOptane()
	cfg.Workload.WriteFrac = 0.2
	cfg.KeyspaceFrac = 0.25
	cfg.MaxClientInflight = 256
	cfg.Warmup = 120 * ms
	cfg.Duration = 400 * ms
	cfg.Scenario = []rackblox.Event{rackblox.FailServer(0, 120*ms)}

	// The flight recorder: keep 1 request in 8 by key hash (the slowest
	// reads are always kept), sample metrics every 1ms of virtual time.
	cfg.Trace = rackblox.TraceOptions{Enabled: true, SampleEvery: 8}
	cfg.MetricsInterval = 1 * ms

	res, err := rackblox.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("server crash at 120ms: p99 read %.2fms over %d measured reads\n",
		float64(res.Recorder.Reads().P99())/float64(ms), res.Trace.TotalReads)

	fmt.Println("\np99 attribution — slowest 1% of reads, fraction of latency per phase:")
	for _, s := range res.TailAttribution {
		bar := ""
		for i := 0; i < int(s.Fraction*40+0.5); i++ {
			bar += "#"
		}
		fmt.Printf("  %-16s %5.1f%%  %s\n", s.Phase, 100*s.Fraction, bar)
	}

	fmt.Println("\nengine events by handler:")
	for _, h := range []string{"resource", "switch.pipeline", "paced.wake", "scenario", "other"} {
		if n, ok := res.EventsByHandler[h]; ok {
			fmt.Printf("  %-16s %d\n", h, n)
		}
	}

	write := func(path string, export func(*os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := export(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	fmt.Println()
	write("trace.json", func(f *os.File) error { return res.Trace.WriteChromeTrace(f) })
	write("metrics.csv", func(f *os.File) error { return res.Timelines.WriteCSV(f) })
	fmt.Println("load trace.json in ui.perfetto.dev; plot metrics.csv over at_ns")
}
