// Wear leveling: simulate two years of mixed workloads on a 32-server
// rack (Fig. 22/23 setup) and compare SSD wear imbalance with and without
// RackBlox's two-level balancer, including recovery after a drive
// replacement.
package main

import (
	"fmt"
	"log"

	"rackblox"
)

func build(swap bool) *rackblox.WearRack {
	cfg := rackblox.DefaultWearConfig()
	if !swap {
		cfg.LocalPeriodDays = 0
		cfg.GlobalPeriodDays = 0
	}
	r, err := rackblox.NewWearRack(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	noswap := build(false)
	balanced := build(true)

	fmt.Printf("%-6s %-22s %-22s\n", "week", "no-swap max/avg wear", "RackBlox max/avg wear")
	for w := 8; w <= 104; w += 8 {
		noswap.RunWeeks(8)
		balanced.RunWeeks(8)
		fmt.Printf("%-6d %-22.4f %-22.4f\n", w, noswap.RackImbalance(), balanced.RackImbalance())
	}
	fmt.Printf("\nswaps performed: %d local, %d global\n",
		balanced.LocalSwaps, balanced.GlobalSwaps)

	// A failed drive is replaced with a fresh one: imbalance spikes, and
	// the balancer works it back down.
	balanced.SSDs[0][0].Wear = 0
	spike := balanced.ServerImbalance(0)
	balanced.RunWeeks(52)
	fmt.Printf("after replacing one SSD: server imbalance %.3f -> %.3f within a year\n",
		spike, balanced.ServerImbalance(0))
}
