// Recovery lifecycle: fail, repair, re-integrate, revive. A three-rack
// RS(4,2) cluster with spread placement loses a storage server; the
// switch steers its reads to survivors (degraded reconstruction from
// any 4 chunks) while the background reconstructor rebuilds the lost
// chunks in GC idle windows. When the last chunk lands, the replacement
// holder is re-registered in every ToR's stripe table — reads are
// served directly again, at baseline latency. A second run darkens a
// ToR switch instead and revives it mid-run: the switch comes back with
// blank SRAM, the control plane replays its tables from survivors, and
// the sibling switches drop their stale remote-dead marks. Foreground
// client traffic and repair traffic are metered on the same cross-rack
// spine, so the two classes contend realistically.
package main

import (
	"fmt"
	"log"

	"rackblox"
)

// cluster is the shared lifecycle setup; the measured window starts at
// measureFrom so phases are comparable.
func cluster(measureFrom int64) rackblox.Config {
	cfg := rackblox.DefaultConfig()
	cfg.Racks = 3
	cfg.StorageServers = 6
	cfg.VSSDPairs = 3
	cfg.Redundancy = rackblox.RedundancyEC(4, 2)
	cfg.Placement = rackblox.PlacementSpread
	cfg.Device = rackblox.DeviceOptane()
	cfg.Workload.WriteFrac = 0.2
	cfg.KeyspaceFrac = 0.25
	cfg.MaxClientInflight = 256
	cfg.Warmup = measureFrom * 1_000_000 // ns
	cfg.Duration = 300 * 1_000_000
	return cfg
}

func run(cfg rackblox.Config) *rackblox.Result {
	res, err := rackblox.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	const failAt, reviveAt, healedBy = 120, 300, 500 // ms

	healthy := run(cluster(healedBy))
	base := healthy.Recorder.Reads().Mean() / 1e6
	fmt.Printf("healthy baseline:  reads %.3f ms mean, foreground spine %.1f MB\n\n",
		base, float64(healthy.ForegroundCrossRackBytes)/1e6)

	// Crash one server, measure after repair + re-integration.
	cfg := cluster(healedBy)
	cfg.FailServerIndex = 0
	cfg.FailServerAt = failAt * 1_000_000
	res := run(cfg)
	fmt.Printf("server crash -> repair -> re-integrate:\n")
	fmt.Printf("  degraded reads while rebuilding: %d\n", res.DegradedReads)
	fmt.Printf("  stripes re-integrated:           %d (pending %d)\n",
		res.ReintegratedStripes, res.RepairPending)
	fmt.Printf("  degraded reads after healing:    %d\n", res.DegradedReadsPostRepair)
	fmt.Printf("  repair vs foreground spine MB:   %.1f / %.1f\n",
		float64(res.CrossRackRepairBytes)/1e6, float64(res.ForegroundCrossRackBytes)/1e6)
	fmt.Printf("  post-repair reads: %.3f ms mean (%.2fx healthy)\n\n",
		res.Recorder.Reads().Mean()/1e6, res.Recorder.Reads().Mean()/1e6/base)

	// Darken a ToR, revive it mid-run, measure after revival.
	cfg = cluster(healedBy)
	cfg.FailToRIndex = 1
	cfg.FailServerAt = failAt * 1_000_000
	cfg.RecoverToRIndex = 1
	cfg.RecoverToRAt = reviveAt * 1_000_000
	res = run(cfg)
	fmt.Printf("tor outage -> revival (tables replayed from survivors):\n")
	fmt.Printf("  degraded reads while dark:       %d\n", res.DegradedReads)
	fmt.Printf("  ToR revivals:                    %d\n", res.ToRRevivals)
	fmt.Printf("  degraded reads after revival:    %d\n", res.DegradedReadsPostRepair)
	fmt.Printf("  post-revival reads: %.3f ms mean (%.2fx healthy)\n",
		res.Recorder.Reads().Mean()/1e6, res.Recorder.Reads().Mean()/1e6/base)
}
