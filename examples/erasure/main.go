// Erasure coding: stripe every volume RS(4,2) across six servers instead
// of replicating it, then crash two servers mid-run. The ToR switch
// steers reads for the dead chunk holders to survivors, which
// reconstruct the data from any 4 of the 6 chunks (degraded reads),
// while the background reconstructor rebuilds the lost chunks in the
// switch's GC idle windows. The demo first shows the codec itself on
// real bytes, then compares replication and RS(4,2) end to end.
package main

import (
	"bytes"
	"fmt"
	"log"

	"rackblox"
)

func codecDemo() {
	codec, err := rackblox.NewECCodec(rackblox.ECSpec{K: 4, M: 2})
	if err != nil {
		log.Fatal(err)
	}
	data := [][]byte{
		[]byte("rack-scale "), []byte("storage is "),
		[]byte("co-designed"), []byte(" w/ network"),
	}
	parity, err := codec.Encode(data)
	if err != nil {
		log.Fatal(err)
	}
	shards := append(append([][]byte{}, data...), parity...)
	shards[0], shards[3] = nil, nil // lose two of six chunks
	if err := codec.Reconstruct(shards); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("codec: lost chunks 0 and 3, reconstructed %q\n",
		bytes.Join(shards[:4], nil))

	shards[0], shards[1], shards[2] = nil, nil, nil // three losses: m+1
	if err := codec.Reconstruct(shards); err != nil {
		fmt.Printf("codec: three losses -> %v\n\n", err)
	}
}

func run(red rackblox.RedundancySpec, failTwo bool) *rackblox.Result {
	cfg := rackblox.DefaultConfig()
	cfg.StorageServers = 6
	cfg.Redundancy = red
	if failTwo {
		cfg.FailServerIndex = 0
		cfg.FailServers = []int{1}
		cfg.FailServerAt = cfg.Warmup + cfg.Duration/4
	}
	res, err := rackblox.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	codecDemo()

	fmt.Println("YCSB 50/50 on six servers, healthy rack:")
	for _, red := range []rackblox.RedundancySpec{
		rackblox.RedundancyReplication(), rackblox.RedundancyEC(4, 2),
	} {
		res := run(red, false)
		reads := res.Recorder.Reads()
		fmt.Printf("  %-14s reads p99 %6.2f ms  p99.9 %6.2f ms  write-amp %.2f\n",
			red, float64(reads.P99())/1e6, float64(reads.P999())/1e6, res.WriteAmp)
	}

	fmt.Println("\nSame rack with two servers crashing mid-run:")
	for _, red := range []rackblox.RedundancySpec{
		rackblox.RedundancyReplication(), rackblox.RedundancyEC(4, 2),
	} {
		res := run(red, true)
		reads := res.Recorder.Reads()
		fmt.Printf("  %-14s reads p99.9 %6.2f ms  degraded %5d  lost reads %3d  repaired stripes %d\n",
			red, float64(reads.P999())/1e6, res.DegradedReads, res.LostReads,
			res.RepairedStripes)
	}
	fmt.Println("\nRS(4,2) serves every read through reconstruction — at 1.5x the")
	fmt.Println("storage footprint instead of replication's 2x.")
}
