// GC storm: drive a write-heavy Twitter-like workload (97.86% writes,
// Table 2) that keeps the flash devices collecting, and show how the
// coordinated GC machinery — read redirection, delayed GC, and the
// write cache — keeps the read tail flat while VDC's reads stall behind
// the collector.
package main

import (
	"fmt"
	"log"
	"time"

	"rackblox"
)

func run(sys rackblox.System) *rackblox.Result {
	cfg := rackblox.DefaultConfig()
	cfg.System = sys
	cfg.Duration = time.Second.Nanoseconds()
	cfg.Workload = rackblox.WorkloadSpec{
		Name:    "Twitter",
		MeanGap: cfg.Workload.MeanGap,
	}
	res, err := rackblox.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("Twitter workload: 97.86% writes — a sustained GC storm")
	fmt.Println()

	for _, sys := range []rackblox.System{rackblox.SystemVDC, rackblox.SystemRackBlox} {
		res := run(sys)
		reads, writes := res.Recorder.Reads(), res.Recorder.Writes()
		fmt.Printf("%s\n", sys)
		fmt.Printf("  gc: %d episodes, %d delayed to stagger replicas, %d during idle\n",
			res.GCEvents, res.GCDelayed, res.BGGCEvents)
		fmt.Printf("  write amplification: %.3f\n", res.WriteAmp)
		fmt.Printf("  reads  p99.9: %6.2f ms  (%d redirected around GC)\n",
			float64(reads.P999())/1e6, res.Switch.Redirected)
		fmt.Printf("  writes p99.9: %6.2f ms  (DRAM cache absorbs GC windows)\n",
			float64(writes.P999())/1e6)
		fmt.Println()
	}
}
