// SLO-aware repair pacing: background reconstruction and foreground
// traffic share the cross-rack spine, so unpaced repair on a scarce
// link drags the foreground read tail far past any latency objective.
// Config.RepairSLO closes the loop: a windowed p99 sensor watches every
// completed foreground read, an AIMD controller adjusts the repair
// admission rate between the configured bounds, and a token lane on the
// spine enforces it — foreground transfers keep FIFO access to the link
// while repair batches (split to token-sized transfers) wait for credit.
//
// This example replays a fail -> revive -> fail-again timeline on a
// three-rack RS(4,2) cluster over an 80 MB/s spine, unpaced and then
// paced against a 6.5ms p99 target, and prints the trade-off the
// controller makes: the paced tail stays under the SLO while repair
// still completes — a little later than the unpaced run, which is the
// price of the foreground's latency floor. The controller's rate
// timeline shows the AIMD sawtooth: additive probing while the tail is
// healthy, multiplicative backoff the moment it is not.
package main

import (
	"fmt"
	"log"

	"rackblox"
)

const ms = 1_000_000 // virtual nanoseconds per millisecond

// cluster is the lifecycle setup on a deliberately scarce spine: the
// steady foreground load fits with headroom, repair is the marginal
// contender.
func cluster() rackblox.Config {
	cfg := rackblox.DefaultConfig()
	cfg.Racks = 3
	cfg.StorageServers = 6
	cfg.VSSDPairs = 3
	cfg.Redundancy = rackblox.RedundancyEC(4, 2)
	cfg.Placement = rackblox.PlacementSpread
	cfg.CrossRackMBps = 80
	cfg.Device = rackblox.DeviceOptane()
	cfg.Workload.WriteFrac = 0.2
	cfg.Workload.MeanGap = 400_000 // 400us: ~half the lifecycle default
	cfg.KeyspaceFrac = 0.25
	cfg.MaxClientInflight = 256
	cfg.Warmup = 120 * ms // measure from the first crash onward
	cfg.Duration = 930 * ms
	cfg.Scenario = []rackblox.Event{
		rackblox.FailServer(0, 120*ms),
		rackblox.ReviveServer(0, 300*ms),
		rackblox.FailServer(0, 650*ms),
	}
	return cfg
}

func run(name string, cfg rackblox.Config) *rackblox.Result {
	res, err := rackblox.Run(cfg)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("%-8s p99 %6.2fms   repair done %7.1fms   slo-violated ticks %4.1f%%   lost reads %d\n",
		name,
		float64(res.Recorder.Reads().P99())/float64(ms),
		float64(res.RepairCompletionTime)/float64(ms),
		100*res.SLOViolationFraction,
		res.LostReads)
	return res
}

func main() {
	const target = 6_500_000 // 6.5ms foreground read p99 objective

	fmt.Printf("fail -> revive -> fail-again on an 80 MB/s spine, SLO target %.1fms\n\n",
		float64(target)/float64(ms))

	run("unpaced", cluster())

	paced := cluster()
	paced.RepairSLO = rackblox.RepairSLO{
		TargetP99:   target,
		MinRateMBps: 1,  // repair never starves
		MaxRateMBps: 80, // may use the whole spine when latency permits
	}
	res := run("paced", paced)

	fmt.Println("\ncontroller rate timeline (AIMD sawtooth, first 10 changes):")
	for i, pt := range res.RepairRateTimeline {
		if i >= 10 {
			fmt.Printf("  ... %d more adjustments\n", len(res.RepairRateTimeline)-i)
			break
		}
		fmt.Printf("  %7.1fms  %6.2f MB/s\n", float64(pt.At)/float64(ms), pt.MBps)
	}

	fmt.Println("\nbyte accounting (delivered == offered once the run drains):")
	fmt.Printf("  repair     %6.2f MB delivered, %6.2f MB offered\n",
		float64(res.CrossRackRepairBytes)/1e6, float64(res.CrossRackRepairBytesOffered)/1e6)
	fmt.Printf("  foreground %6.2f MB delivered, %6.2f MB offered\n",
		float64(res.ForegroundCrossRackBytes)/1e6, float64(res.ForegroundCrossRackBytesOffered)/1e6)
}
