// Scenario timelines: typed fault/recovery event schedules
// (Config.Scenario) replace the flat Fail*/Recover* config fields, so
// one run can stage sequences the old API could not express — here a
// fail -> revive -> re-pair timeline under both redundancy backends,
// then a repeated fail/heal cycle.
//
// Under replication, a crashed server's pairs fail over to their
// survivors; when the server returns (blank), the survivors re-admit it
// to their Hermes groups (AddPeer) and the failover rewrites are
// withdrawn. Under erasure coding the revival is costlier and honest
// about it: the returned box has no data, so every chunk holder it
// hosted is rebuilt from scratch by the metered reconstructor —
// contending for the same cross-rack spine as foreground traffic — and
// only when the last chunk lands is it re-registered under its original
// id (degraded reads stop, latency returns to baseline). A second crash
// of the same server then heals through adopter re-integration, showing
// the cycle repeats.
package main

import (
	"fmt"
	"log"

	"rackblox"
)

const ms = 1_000_000 // virtual nanoseconds per millisecond

// replCluster is a single-rack replicated setup.
func replCluster() rackblox.Config {
	cfg := rackblox.DefaultConfig()
	cfg.Warmup = 50 * ms
	cfg.Duration = 550 * ms
	return cfg
}

// ecCluster is the three-rack RS(4,2) spread-placement lifecycle setup;
// the measured window starts at measureFrom so phases are comparable.
func ecCluster(measureFrom int64) rackblox.Config {
	cfg := rackblox.DefaultConfig()
	cfg.Racks = 3
	cfg.StorageServers = 6
	cfg.VSSDPairs = 3
	cfg.Redundancy = rackblox.RedundancyEC(4, 2)
	cfg.Placement = rackblox.PlacementSpread
	cfg.Device = rackblox.DeviceOptane()
	cfg.Workload.WriteFrac = 0.2
	cfg.KeyspaceFrac = 0.25
	cfg.MaxClientInflight = 256
	cfg.Warmup = measureFrom
	cfg.Duration = 300 * ms
	return cfg
}

func run(cfg rackblox.Config) *rackblox.Result {
	res, err := rackblox.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	// Replication: fail -> revive -> Hermes re-pair.
	cfg := replCluster()
	cfg.Scenario = []rackblox.Event{
		rackblox.FailServer(0, 150*ms),
		rackblox.ReviveServer(0, 350*ms),
	}
	res := run(cfg)
	fmt.Println("replication: fail -> revive -> re-pair")
	fmt.Printf("  failovers installed:  %d\n", res.Failovers)
	fmt.Printf("  servers revived:      %d (survivors re-admit the peer via AddPeer)\n",
		res.ServerRevivals)
	fmt.Printf("  requests lost:        %d (bounded to the crash window)\n\n", res.LostRequests)

	// Erasure coding: the same timeline forces a real catch-up.
	const failAt, reviveAt, healedBy, fail2At, healed2By = 120, 300, 550, 650, 1050 // ms
	cycle := []rackblox.Event{
		rackblox.FailServer(0, failAt*ms),
		rackblox.ReviveServer(0, reviveAt*ms),
	}
	healthy := run(ecCluster(healedBy * ms))
	base := healthy.Recorder.Reads().Mean() / 1e6
	fmt.Printf("erasure coding healthy baseline: reads %.3f ms mean\n\n", base)

	cfg = ecCluster(healedBy * ms)
	cfg.Scenario = cycle
	res = run(cfg)
	fmt.Println("ec: fail -> revive -> catch-up -> restore")
	fmt.Printf("  degraded reads while down+rebuilding: %d\n", res.DegradedReads)
	fmt.Printf("  holders restored onto revived server: %d (stripes %d, pending %d)\n",
		res.RestoredHolders, res.ReintegratedStripes, res.RepairPending)
	fmt.Printf("  degraded reads after the restore:     %d\n", res.DegradedReadsPostRepair)
	fmt.Printf("  post-restore reads: %.3f ms mean (%.2fx healthy)\n\n",
		res.Recorder.Reads().Mean()/1e6, res.Recorder.Reads().Mean()/1e6/base)

	// Fail the same server again: the timeline API makes cycles routine.
	cfg = ecCluster(healed2By * ms)
	cfg.Scenario = append(append([]rackblox.Event(nil), cycle...),
		rackblox.FailServer(0, fail2At*ms))
	res = run(cfg)
	fmt.Println("ec: fail-again after the heal (adopter re-integration)")
	fmt.Printf("  stripes re-integrated over both cycles: %d (pending %d)\n",
		res.ReintegratedStripes, res.RepairPending)
	fmt.Printf("  degraded reads after second heal:       %d\n", res.DegradedReadsPostRepair)
	fmt.Printf("  post-heal reads: %.3f ms mean (%.2fx healthy)\n",
		res.Recorder.Reads().Mean()/1e6, res.Recorder.Reads().Mean()/1e6/base)
}
