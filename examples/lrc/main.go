// Repair-efficient rack-aware codes: RS(k,m) repair is spine-hungry —
// rebuilding one lost chunk fetches k chunks, most from remote racks,
// so every lost byte costs about k bytes of metered cross-rack traffic.
// RedundancyLRC spreads the same global code across racks and adds one
// local parity chunk per rack (the XOR of the rack's global chunks):
// a single-server loss then repairs entirely inside its rack — zero
// spine bytes, no repair-pacer tokens — and a multi-loss repair ships
// one aggregated chunk per remote rack instead of k raw chunks.
//
// This example crashes one server on a three-rack cluster over a scarce
// 80 MB/s spine under both families and prints what repair cost the
// spine: RS moves megabytes across racks, LRC moves none (every stripe
// rebuilt by the rack-local XOR plan) and finishes sooner. It then
// crashes a whole rack, where LRC must fall back to the global code,
// and shows the aggregated plan still shipping fewer chunks per
// repaired stripe than RS. The trade-off is honest write amplification:
// each write also updates the local parity of every rack it touches.
package main

import (
	"fmt"
	"log"

	"rackblox"
)

const ms = 1_000_000 // virtual nanoseconds per millisecond

func cluster(spec rackblox.RedundancySpec) rackblox.Config {
	cfg := rackblox.DefaultConfig()
	cfg.Racks = 3
	cfg.StorageServers = 6
	cfg.VSSDPairs = 3
	cfg.Redundancy = spec
	cfg.Placement = rackblox.PlacementSpread
	cfg.CrossRackMBps = 80
	cfg.Device = rackblox.DeviceOptane()
	cfg.Workload.WriteFrac = 0.2
	cfg.Workload.MeanGap = 400_000 // 400us
	cfg.KeyspaceFrac = 0.25
	cfg.MaxClientInflight = 256
	cfg.Warmup = 120 * ms // measure from the crash onward
	cfg.Duration = 930 * ms
	return cfg
}

func run(spec rackblox.RedundancySpec, scenario string, events []rackblox.Event) {
	cfg := cluster(spec)
	cfg.Scenario = events
	res, err := rackblox.Run(cfg)
	if err != nil {
		log.Fatalf("%s/%s: %v", spec, scenario, err)
	}
	perStripe := 0.0
	if res.RepairedStripes > 0 {
		perStripe = float64(res.CrossRackRepairBytes) /
			float64(cfg.Geometry.PageSize) / float64(res.RepairedStripes)
	}
	fmt.Printf("%-8s %-14s repaired %5d (local %5d, aggregated %5d)   spine %6.2f MB = %.2f chunks/stripe   done %7.1fms\n",
		spec, scenario, res.RepairedStripes, res.LocalRepairStripes,
		res.AggregatedRepairStripes, float64(res.CrossRackRepairBytes)/1e6,
		perStripe, float64(res.RepairCompletionTime)/float64(ms))
}

func main() {
	server := []rackblox.Event{rackblox.FailServer(0, 120*ms)}
	rack := []rackblox.Event{rackblox.FailRack(0, 120*ms)}
	for _, spec := range []rackblox.RedundancySpec{
		rackblox.RedundancyEC(4, 2),
		rackblox.RedundancyLRC(4, 2),
	} {
		run(spec, "server crash", server)
		run(spec, "rack crash", rack)
	}
}
