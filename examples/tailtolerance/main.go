// Tail tolerance: the paper's headline experiment in miniature. Runs the
// same YCSB mix on all four systems (VDC, RackBlox (Software), the
// Coord-I/O ablation, and RackBlox) and prints the P99/P99.9 read
// latencies side by side — the Fig. 9/10 comparison.
package main

import (
	"fmt"
	"log"
	"time"

	"rackblox"
)

func main() {
	fmt.Println("YCSB 50/50 zipfian on four storage servers, P-SSD devices")
	fmt.Printf("%-22s %10s %10s %10s %12s\n",
		"system", "p50(ms)", "p99(ms)", "p99.9(ms)", "redirects")

	var vdcP999 int64
	for _, sys := range rackblox.Systems() {
		cfg := rackblox.DefaultConfig()
		cfg.System = sys
		cfg.Duration = time.Second.Nanoseconds()
		cfg.Workload.WriteFrac = 0.5

		res, err := rackblox.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		reads := res.Recorder.Reads()
		if sys == rackblox.SystemVDC {
			vdcP999 = reads.P999()
		}
		redirects := res.Switch.Redirected + res.SWRedirects
		fmt.Printf("%-22s %10.2f %10.2f %10.2f %12d\n",
			sys, float64(reads.P50())/1e6, float64(reads.P99())/1e6,
			float64(reads.P999())/1e6, redirects)
		if sys == rackblox.SystemRackBlox && vdcP999 > 0 {
			fmt.Printf("\nRackBlox cuts the P99.9 read latency %.1fx vs VDC\n",
				float64(vdcP999)/float64(reads.P999()))
		}
	}
}
