// Quickstart: run one RackBlox rack simulation with the default setup and
// print the latency profile — the smallest possible use of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"rackblox"
)

func main() {
	cfg := rackblox.DefaultConfig()
	cfg.System = rackblox.SystemRackBlox
	cfg.Duration = (500 * time.Millisecond).Nanoseconds()

	res, err := rackblox.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	reads := res.Recorder.Reads()
	fmt.Printf("completed %d requests at %.1f KIOPS\n",
		res.Recorder.Len(), res.Recorder.Throughput()/1000)
	fmt.Printf("read latency: p50=%.2fms  p99=%.2fms  p99.9=%.2fms\n",
		float64(reads.P50())/1e6, float64(reads.P99())/1e6, float64(reads.P999())/1e6)
	fmt.Printf("the ToR switch redirected %d reads away from collecting vSSDs\n",
		res.Switch.Redirected)
	fmt.Printf("garbage collection: %d episodes, %d delayed to protect the replica\n",
		res.GCEvents, res.GCDelayed)
}
