package rackblox

// Benchmarks regenerating every table and figure of the RackBlox
// evaluation (§4). Each benchmark runs the corresponding experiment sweep
// at a reduced scale and reports the headline metric as custom units, so
// `go test -bench=. -benchmem` prints the same series the paper plots.
// cmd/rackbench runs the same sweeps at full scale.

import (
	"fmt"
	"strings"
	"testing"

	"rackblox/internal/core"
	"rackblox/internal/experiments"
)

// metricName builds a whitespace-free unit label for ReportMetric.
func metricName(parts ...string) string {
	s := strings.Join(parts, "/")
	s = strings.NewReplacer(" ", "_", "(", "", ")", "", "\t", "_").Replace(s)
	return s
}

// benchScale shrinks the measured windows so the full suite stays in
// benchmark-friendly time while preserving the comparative shape. It
// MUST match the scale of the checked-in BENCH_*.json trajectory (0.25,
// recorded in the file's "scale" field) so benchmark runs and the
// trajectory are directly comparable.
const benchScale = experiments.Scale(0.25)

// reportTable re-emits experiment rows as benchmark metrics.
func reportTable(b *testing.B, tables []*experiments.Table, metric string) {
	for _, t := range tables {
		for _, r := range t.Rows {
			if v, ok := r.Values[metric]; ok {
				b.ReportMetric(v, metricName(t.ID, r.Series, r.X))
			}
		}
	}
}

func runExperiment(b *testing.B, id string, metric string) {
	b.Helper()
	var tables []*experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.ByID(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportTable(b, tables, metric)
}

// BenchmarkTable2Workloads regenerates Table 2 (workload write ratios).
func BenchmarkTable2Workloads(b *testing.B) {
	runExperiment(b, "table2", "write_pct")
}

// BenchmarkFig9TailLatency regenerates Fig. 9: P99.9 read/write latency
// across YCSB mixes for VDC, RackBlox (Software), and RackBlox.
func BenchmarkFig9TailLatency(b *testing.B) {
	runExperiment(b, "fig9", "value")
}

// BenchmarkFig10P99 regenerates Fig. 10: P99 latencies.
func BenchmarkFig10P99(b *testing.B) {
	runExperiment(b, "fig10", "value")
}

// BenchmarkFig11Avg regenerates Fig. 11: average latencies.
func BenchmarkFig11Avg(b *testing.B) {
	runExperiment(b, "fig11", "value")
}

// BenchmarkFig12Throughput regenerates Fig. 12: KIOPS across mixes.
func BenchmarkFig12Throughput(b *testing.B) {
	runExperiment(b, "fig12", "kiops")
}

// BenchmarkFig13Workloads regenerates Fig. 13: P99.9 latency for the five
// BenchBase workloads.
func BenchmarkFig13Workloads(b *testing.B) {
	runExperiment(b, "fig13", "value")
}

// BenchmarkFig14WorkloadThroughput regenerates Fig. 14.
func BenchmarkFig14WorkloadThroughput(b *testing.B) {
	runExperiment(b, "fig14", "kiops")
}

// BenchmarkFig15Breakdown regenerates Fig. 15: storage vs end-to-end
// P99.9, including the RackBlox-Coord I/O ablation.
func BenchmarkFig15Breakdown(b *testing.B) {
	runExperiment(b, "fig15", "total")
}

// BenchmarkFig16CDF regenerates Fig. 16: read-latency tail CDFs.
func BenchmarkFig16CDF(b *testing.B) {
	runExperiment(b, "fig16", "p99.9")
}

// BenchmarkFig17Schedulers regenerates Fig. 17: coordinated I/O under
// FIFO/Deadline/Kyber storage schedulers.
func BenchmarkFig17Schedulers(b *testing.B) {
	runExperiment(b, "fig17", "value")
}

// BenchmarkFig18NetSched regenerates Fig. 18: coordinated I/O under
// FQ/Priority/TB network schedulers.
func BenchmarkFig18NetSched(b *testing.B) {
	runExperiment(b, "fig18", "value")
}

// BenchmarkFig19DeviceGrid regenerates Fig. 19: YCSB-A read tails across
// the {Optane, Intel DC, P-SSD} x {Fast, Medium, Slow} grid.
func BenchmarkFig19DeviceGrid(b *testing.B) {
	runExperiment(b, "fig19", "p99.9")
}

// BenchmarkFig20Speedup regenerates Fig. 20: P99.9 read speedup vs VDC for
// YCSB-A/B/C across the device x network grid.
func BenchmarkFig20Speedup(b *testing.B) {
	runExperiment(b, "fig20", "speedup")
}

// BenchmarkFig21Isolation regenerates Fig. 21: software- vs
// hardware-isolated vSSD tails.
func BenchmarkFig21Isolation(b *testing.B) {
	runExperiment(b, "fig21", "p99.9")
}

// BenchmarkFig22LocalWear regenerates Fig. 22: per-server wear imbalance
// after one and two simulated years.
func BenchmarkFig22LocalWear(b *testing.B) {
	runExperiment(b, "fig22", "imbalance_max")
}

// BenchmarkFig23GlobalWear regenerates Fig. 23: rack-scale wear imbalance
// over 80 weeks for several swap periods.
func BenchmarkFig23GlobalWear(b *testing.B) {
	runExperiment(b, "fig23", "week80")
}

// BenchmarkPredictorAccuracy validates the §3.4 sliding-window predictor
// against all three network regimes.
func BenchmarkPredictorAccuracy(b *testing.B) {
	runExperiment(b, "predictor", "hit_rate")
}

// BenchmarkGCAblation measures the redirect-only vs redirect+delay design
// ablation called out in DESIGN.md.
func BenchmarkGCAblation(b *testing.B) {
	runExperiment(b, "gcablation", "value")
}

// BenchmarkDegradedReadPostRepair regenerates figrl, the recovery
// lifecycle sweep (fail -> repair -> re-integrate -> revive), and
// reports each phase's read latency relative to the healthy baseline.
// The regression guard is the vs_healthy series: post-repair and
// post-revival phases must stay near 1.0x (the 1.1x ceiling is asserted
// by TestFigRLLifecycleClosesLoop in internal/experiments), while the
// degraded and dark phases document the cost the lifecycle removes.
func BenchmarkDegradedReadPostRepair(b *testing.B) {
	runExperiment(b, "figrl", "vs_healthy")
}

// BenchmarkScenarioDriver regenerates figsc, the scenario-timeline
// cycle (fail -> revive-server -> catch-up -> fail-again), putting the
// cluster event driver's hot path — per-event crash/detection
// scheduling, catch-up repair re-targeting, RestoreStripeMember
// re-registration — on the benchmark trajectory. The vs_healthy series
// is the regression guard: post-catch-up and post-heal phases must stay
// near 1.0x (the 1.1x ceiling is asserted by TestFigSCCycleHealsTwice
// in internal/experiments).
func BenchmarkScenarioDriver(b *testing.B) {
	runExperiment(b, "figsc", "vs_healthy")
}

// BenchmarkShardedSoak drives the sharded soak model (the figsh
// workload) in parallel mode at 1..16 rack shards, putting the shard
// scheduler's hot path — window computation, mailbox merge, worker
// barrier — on the benchmark trajectory. events/op reports the model's
// deterministic event count per benchmark iteration; wall-clock scaling
// across the sub-benchmarks is bounded by GOMAXPROCS, so compare shard
// counts only on multi-core hosts. The sequential path keeps its alloc
// gate via BenchmarkSingleRackRun; this benchmark deliberately does not
// assert allocations, since per-shard queues scale with the rack count.
func BenchmarkShardedSoak(b *testing.B) {
	for _, racks := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("racks=%d", racks), func(b *testing.B) {
			cfg := core.ShardedClusterConfig{
				Racks:             racks,
				ServersPerRack:    64,
				ChainsPerRack:     64,
				OpsPerRack:        20_000,
				CrossRackPermille: 20,
				Seed:              1,
			}
			var events uint64
			for i := 0; i < b.N; i++ {
				res := core.RunShardedCluster(cfg, true)
				events = res.Events
			}
			b.ReportMetric(float64(events), "events/op")
		})
	}
}

// BenchmarkRepairPacer regenerates figslo, the SLO-aware repair pacing
// comparison (healthy baseline, unpaced repair, paced repair on the
// figsc repeated-fault timeline over a scarce spine), putting the
// pacer's hot path — per-read window observations, AIMD ticks, token-
// lane wakeups, split repair claims — on the benchmark trajectory. The
// p99_ms series is the regression guard: the paced row must stay under
// slo_target_ms while unpaced blows far past it (asserted by
// TestFigSLOPacingHoldsSLO in internal/experiments).
func BenchmarkRepairPacer(b *testing.B) {
	runExperiment(b, "figslo", "p99_ms")
}

// BenchmarkSingleRackRun is the microbenchmark of one end-to-end rack run,
// useful for profiling the simulator itself.
func BenchmarkSingleRackRun(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Duration = 100 * 1_000_000 // 100ms of virtual time
	cfg.Warmup = 50 * 1_000_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
