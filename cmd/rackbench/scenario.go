package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"rackblox/internal/core"
	"rackblox/internal/sim"
)

// scenarioGrammar is the -scenario usage string shown on parse errors.
const scenarioGrammar = "want comma-separated <kind>:<index>@<time> events, " +
	"e.g. \"failrack:0@300ms,revive-server:2@600ms\"; kinds: fail-server, " +
	"fail-rack, fail-tor, revive-server, revive-tor (hyphens optional)"

// parseScenario parses the -scenario flag into a typed event timeline.
// Each event is <kind>:<index>@<time> with <time> in Go duration syntax
// (300ms, 1.2s); kinds accept both hyphenated and compact spellings.
// Every token is whitespace-trimmed before interpretation, so an index
// parses the same whether written "fail-server:2", "fail-server: 2", or
// "fail-server:+2" — strconv.Atoi on the trimmed token is the single
// rule, rather than one spelling working and another failing. Malformed
// specs return usage errors — never panics; semantic problems
// (out-of-range indices, revive-before-fail) are left to the config
// validator, which reports them as typed *core.FailureSpecErrors.
func parseScenario(s string) ([]core.Event, error) {
	var out []core.Event
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("bad -scenario %q: empty event; %s", s, scenarioGrammar)
		}
		head, atStr, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("bad -scenario event %q: missing @time; %s", part, scenarioGrammar)
		}
		kindStr, idxStr, ok := strings.Cut(head, ":")
		if !ok {
			return nil, fmt.Errorf("bad -scenario event %q: missing :index; %s", part, scenarioGrammar)
		}
		kindStr = strings.TrimSpace(kindStr)
		idxStr = strings.TrimSpace(idxStr)
		atStr = strings.TrimSpace(atStr)
		idx, err := strconv.Atoi(idxStr)
		if err != nil {
			return nil, fmt.Errorf("bad -scenario event %q: index %q is not a decimal integer (optional sign, digits); %s",
				part, idxStr, scenarioGrammar)
		}
		d, err := time.ParseDuration(atStr)
		if err != nil {
			return nil, fmt.Errorf("bad -scenario event %q: time %q is not a duration; %s",
				part, atStr, scenarioGrammar)
		}
		if d < 0 {
			return nil, fmt.Errorf("bad -scenario event %q: time must not be negative", part)
		}
		at := sim.Time(d.Nanoseconds())
		switch strings.ReplaceAll(strings.ToLower(kindStr), "-", "") {
		case "failserver":
			out = append(out, core.FailServer(idx, at))
		case "failrack":
			out = append(out, core.FailRack(idx, at))
		case "failtor":
			out = append(out, core.FailToR(idx, at))
		case "reviveserver":
			out = append(out, core.ReviveServer(idx, at))
		case "revivetor":
			out = append(out, core.ReviveToR(idx, at))
		default:
			return nil, fmt.Errorf("bad -scenario event %q: unknown kind %q; %s",
				part, kindStr, scenarioGrammar)
		}
	}
	return out, nil
}
