// Command rackbench regenerates the tables and figures of the RackBlox
// evaluation (§4) on the simulated rack and prints them in paper order.
//
// Usage:
//
//	rackbench -list
//	rackbench -exp fig9
//	rackbench -exp all -scale 1.0
//	rackbench -redundancy rs4,2 -scale 0.5
//	rackbench -exp figec -json auto
//	rackbench -exp figmr -racks 4 -crossbw 100 -json auto
//	rackbench -exp figrl -json auto
//	rackbench -exp figsc -json auto
//	rackbench -exp figslo -repair-slo 5ms
//	rackbench -scenario "failrack:0@300ms,revive-server:2@600ms"
//	rackbench -scenario "fail-server:0@120ms" -repair-slo 4ms
//
// Scale < 1 shrinks the measured window proportionally (useful for quick
// looks); 1.0 reproduces the full-length runs recorded in EXPERIMENTS.md.
//
// -redundancy runs a single YCSB 50/50 summary with the chosen backend
// ("replication" or "rsK,M", e.g. rs4,2) instead of a paper experiment.
// -racks and -crossbw tune the cluster-shaped experiments (figmr, figrl,
// figsc): the rack fault-domain count and the spine bandwidth in MB/s
// that cross-rack repair and foreground traffic are metered on. figrl
// sweeps the recovery lifecycle — fail, repair, re-integrate, revive —
// and reports each phase's read latency against the healthy baseline
// (vs_healthy), with foreground spine bytes (fg_cross_mb) separate from
// repair bytes (repair_cross_mb). figsc sweeps a scenario-timeline cycle
// — fail, revive-server, catch-up, fail-again — on the same cluster.
//
// -scenario runs one lifecycle cluster under a custom fault/recovery
// timeline (core.Config.Scenario) instead of a paper experiment: comma-
// separated <kind>:<index>@<time> events with kinds fail-server,
// fail-rack, fail-tor, revive-server, revive-tor. Malformed specs and
// invalid timelines (revive-before-fail, double crashes) exit with a
// usage error.
// -repair-slo sets the foreground read p99 target of the SLO-aware
// repair pacer (core.Config.RepairSLO): figslo uses it in place of its
// auto-derived target, and -scenario runs gain a paced repair lane; the
// figslo experiment compares pacing off vs on on the figsc repeated-
// fault timeline and reports the repair-time vs foreground-latency
// trade-off.
// -json FILE writes every produced table as machine-readable JSON
// ("auto" derives a BENCH_<exp>.json name), so successive runs can be
// diffed to track the performance trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rackblox/internal/core"
	"rackblox/internal/experiments"
)

// benchReport is the -json file layout.
type benchReport struct {
	Experiments []string             `json:"experiments"`
	Scale       float64              `json:"scale"`
	Redundancy  string               `json:"redundancy,omitempty"`
	Scenario    string               `json:"scenario,omitempty"`
	Tables      []*experiments.Table `json:"tables"`
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale      = flag.Float64("scale", 1.0, "measured-window scale in (0,1]")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		redundancy = flag.String("redundancy", "", "run one YCSB summary with this backend: 'replication' or 'rsK,M' (e.g. rs4,2)")
		scenario   = flag.String("scenario", "", "run one lifecycle cluster under this fault/recovery timeline: comma-separated <kind>:<index>@<time> events (e.g. 'failrack:0@300ms,revive-server:2@600ms')")
		jsonOut    = flag.String("json", "", "write results as JSON to this file ('auto' derives BENCH_<exp>.json)")
		racks      = flag.Int("racks", 0, "rack fault-domain count for cluster experiments like figmr (0 = experiment default; figmr needs >= 3 for spread RS(4,2) and raises smaller values)")
		crossbw    = flag.Float64("crossbw", 0, "cross-rack spine bandwidth in MB/s for cluster experiments (0 = experiment default)")
		repairSLO  = flag.Duration("repair-slo", 0, "foreground read p99 SLO target for repair pacing, as a Go duration (e.g. 5ms): overrides figslo's auto-derived target and enables the pacer for -scenario runs (0 = figslo auto-derives, -scenario runs unpaced)")
	)
	flag.Parse()
	opt := experiments.Options{Racks: *racks, CrossBWMBps: *crossbw,
		RepairSLOTarget: repairSLO.Nanoseconds()}

	if *list {
		fmt.Println("experiments:")
		for _, id := range experiments.All() {
			fmt.Println("  " + id)
		}
		return
	}

	var tables []*experiments.Table
	var ids []string
	if *scenario != "" {
		events, err := parseScenario(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rackbench:", err)
			os.Exit(2)
		}
		ids = []string{"scenario"}
		t, err := experiments.ScenarioSummary(events, experiments.Scale(*scale), opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rackbench:", err)
			os.Exit(2)
		}
		tables = append(tables, t)
		fmt.Println(t.Format())
	} else if *redundancy != "" {
		spec, err := parseRedundancy(*redundancy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rackbench:", err)
			os.Exit(1)
		}
		ids = []string{"redundancy"}
		t, err := experiments.RedundancySummary(spec, experiments.Scale(*scale))
		if err != nil {
			fmt.Fprintln(os.Stderr, "rackbench:", err)
			os.Exit(1)
		}
		tables = append(tables, t)
		fmt.Println(t.Format())
	} else {
		ids = experiments.All()
		if *exp != "all" {
			ids = strings.Split(*exp, ",")
		}
		for _, id := range ids {
			start := time.Now()
			ts, err := experiments.ByIDWith(strings.TrimSpace(id), experiments.Scale(*scale), opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rackbench:", err)
				os.Exit(1)
			}
			for _, t := range ts {
				fmt.Println(t.Format())
			}
			tables = append(tables, ts...)
			fmt.Printf("(%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}

	if *jsonOut != "" {
		path := *jsonOut
		if path == "auto" {
			name := *exp
			if *redundancy != "" {
				name = "redundancy"
			}
			if *scenario != "" {
				name = "scenario"
			}
			path = fmt.Sprintf("BENCH_%s.json", strings.ReplaceAll(name, ",", "_"))
		}
		if err := writeJSON(path, benchReport{
			Experiments: ids,
			Scale:       *scale,
			Redundancy:  *redundancy,
			Scenario:    *scenario,
			Tables:      tables,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "rackbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// parseRedundancy accepts "replication" or "rsK,M" (e.g. "rs4,2").
func parseRedundancy(s string) (core.RedundancySpec, error) {
	switch {
	case s == "replication":
		return core.Replication(), nil
	case strings.HasPrefix(s, "rs"):
		var k, m int
		if _, err := fmt.Sscanf(s[2:], "%d,%d", &k, &m); err != nil {
			return core.RedundancySpec{}, fmt.Errorf("bad -redundancy %q: want rsK,M like rs4,2", s)
		}
		return core.ErasureCode(k, m), nil
	}
	return core.RedundancySpec{}, fmt.Errorf("bad -redundancy %q: want 'replication' or 'rsK,M'", s)
}

func writeJSON(path string, report benchReport) error {
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
