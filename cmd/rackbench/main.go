// Command rackbench regenerates the tables and figures of the RackBlox
// evaluation (§4) on the simulated rack and prints them in paper order.
//
// Usage:
//
//	rackbench -list
//	rackbench -exp fig9
//	rackbench -exp all -scale 1.0
//
// Scale < 1 shrinks the measured window proportionally (useful for quick
// looks); 1.0 reproduces the full-length runs recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rackblox/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale = flag.Float64("scale", 1.0, "measured-window scale in (0,1]")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, id := range experiments.All() {
			fmt.Println("  " + id)
		}
		return
	}

	ids := experiments.All()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.ByID(strings.TrimSpace(id), experiments.Scale(*scale))
		if err != nil {
			fmt.Fprintln(os.Stderr, "rackbench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.Format())
		}
		fmt.Printf("(%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
