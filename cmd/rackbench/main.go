// Command rackbench regenerates the tables and figures of the RackBlox
// evaluation (§4) on the simulated rack and prints them in paper order.
//
// Usage:
//
//	rackbench -list
//	rackbench -exp fig9
//	rackbench -exp all -scale 1.0
//	rackbench -redundancy rs4,2 -scale 0.5
//	rackbench -exp figec -json auto
//	rackbench -exp figmr -racks 4 -crossbw 100 -json auto
//	rackbench -exp figrl -json auto
//	rackbench -exp figsc -json auto
//	rackbench -exp figslo -repair-slo 5ms
//	rackbench -exp figra -json auto
//	rackbench -exp figsh
//	rackbench -redundancy lrc4,2
//	rackbench -scenario "failrack:0@300ms,revive-server:2@600ms"
//	rackbench -scenario "fail-server:0@120ms" -repair-slo 4ms
//
// Scale < 1 shrinks the measured window proportionally (useful for quick
// looks); 1.0 reproduces the full-length runs recorded in EXPERIMENTS.md.
//
// -redundancy runs a single YCSB 50/50 summary with the chosen backend
// ("replication", "rsK,M" like rs4,2, or "lrcK,M" like lrc4,2 — the
// local-parity family, which runs on a three-rack spread cluster)
// instead of a paper experiment.
// -racks and -crossbw tune the cluster-shaped experiments (figmr, figrl,
// figsc): the rack fault-domain count and the spine bandwidth in MB/s
// that cross-rack repair and foreground traffic are metered on. figrl
// sweeps the recovery lifecycle — fail, repair, re-integrate, revive —
// and reports each phase's read latency against the healthy baseline
// (vs_healthy), with foreground spine bytes (fg_cross_mb) separate from
// repair bytes (repair_cross_mb). figsc sweeps a scenario-timeline cycle
// — fail, revive-server, catch-up, fail-again — on the same cluster.
//
// -scenario runs one lifecycle cluster under a custom fault/recovery
// timeline (core.Config.Scenario) instead of a paper experiment: comma-
// separated <kind>:<index>@<time> events with kinds fail-server,
// fail-rack, fail-tor, revive-server, revive-tor. Malformed specs and
// invalid timelines (revive-before-fail, double crashes) exit with a
// usage error.
// -repair-slo sets the foreground read p99 target of the SLO-aware
// repair pacer (core.Config.RepairSLO): figslo uses it in place of its
// auto-derived target, and -scenario runs gain a paced repair lane; the
// figslo experiment compares pacing off vs on on the figsc repeated-
// fault timeline and reports the repair-time vs foreground-latency
// trade-off. figra compares code families at fixed durability on the
// same scarce spine — RS(4,2) against LRC(4,2), which adds one local
// parity chunk per rack: single-server losses repair inside the rack
// with zero spine bytes, and multi-loss repair ships one aggregated
// chunk per remote rack instead of k raw chunks, finishing sooner under
// the same -repair-slo target. figsh benchmarks the sharded simulation
// runner itself: the soak model at 1..16 rack shards, sequential oracle
// vs parallel shards, reporting wall-clock speedup and a per-row
// identical flag confirming byte-identical results (its wall_* and
// speedup columns are host measurements, not simulation output).
// -json FILE writes every produced table as machine-readable JSON
// ("auto" derives a BENCH_<exp>.json name), so successive runs can be
// diffed to track the performance trajectory. The report carries a
// schema_version and, for the cluster experiments, one record per run
// with the engine's per-handler event counters, the repair-rate
// timeline, sampled metrics, and the p99 tail attribution.
//
// -trace FILE turns on the flight recorder and writes the last
// instrumented run's spans as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing; -trace-sample N keeps
// one request in N by key hash (the slowest reads are always kept).
// -metrics FILE samples time-series metrics (spine utilization, repair
// rate and backlog, windowed read p50/p99, GC and degraded-read
// activity, per-rack request rates) every millisecond of virtual time
// and writes the last run's series as CSV. Both are observer-only: the
// tabulated numbers are byte-identical with or without them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rackblox/internal/core"
	"rackblox/internal/experiments"
	"rackblox/internal/sim"
	"rackblox/internal/stats"
	"rackblox/internal/trace"
)

// benchSchemaVersion identifies the -json layout: bump it whenever a
// field changes meaning so trajectory diffs never compare across
// incompatible shapes. Version 2 added schema_version itself, the runs
// records, and the repair-rate timeline.
const benchSchemaVersion = 2

// runRecord is one instrumented run inside the -json report.
type runRecord struct {
	Experiment         string             `json:"experiment"`
	Series             string             `json:"series"`
	Events             uint64             `json:"events"`
	EventsByHandler    map[string]uint64  `json:"events_by_handler,omitempty"`
	RepairRateTimeline []core.RatePoint   `json:"repair_rate_timeline,omitempty"`
	Timelines          *stats.TimeSeries  `json:"timelines,omitempty"`
	TailAttribution    []trace.PhaseShare `json:"tail_attribution,omitempty"`
}

// benchReport is the -json file layout.
type benchReport struct {
	SchemaVersion int                  `json:"schema_version"`
	Experiments   []string             `json:"experiments"`
	Scale         float64              `json:"scale"`
	Redundancy    string               `json:"redundancy,omitempty"`
	Scenario      string               `json:"scenario,omitempty"`
	Tables        []*experiments.Table `json:"tables"`
	Runs          []runRecord          `json:"runs,omitempty"`
}

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale       = flag.Float64("scale", 1.0, "measured-window scale in (0,1]")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		redundancy  = flag.String("redundancy", "", "run one YCSB summary with this backend: 'replication', 'rsK,M' (e.g. rs4,2), or 'lrcK,M' (e.g. lrc4,2)")
		scenario    = flag.String("scenario", "", "run one lifecycle cluster under this fault/recovery timeline: comma-separated <kind>:<index>@<time> events (e.g. 'failrack:0@300ms,revive-server:2@600ms')")
		jsonOut     = flag.String("json", "", "write results as JSON to this file ('auto' derives BENCH_<exp>.json)")
		racks       = flag.Int("racks", 0, "rack fault-domain count for cluster experiments like figmr (0 = experiment default; figmr needs >= 3 for spread RS(4,2) and raises smaller values)")
		crossbw     = flag.Float64("crossbw", 0, "cross-rack spine bandwidth in MB/s for cluster experiments (0 = experiment default)")
		repairSLO   = flag.Duration("repair-slo", 0, "foreground read p99 SLO target for repair pacing, as a Go duration (e.g. 5ms): overrides figslo's auto-derived target and enables the pacer for -scenario runs (0 = figslo auto-derives, -scenario runs unpaced)")
		traceOut    = flag.String("trace", "", "enable the flight recorder and write the last instrumented run's spans as Chrome trace-event JSON to this file (load in Perfetto)")
		traceSample = flag.Int("trace-sample", 0, "head-sampling rate for -trace: keep one request in N by key hash (0 = default 16; slowest reads are always kept)")
		metricsOut  = flag.String("metrics", "", "sample time-series metrics every 1ms of virtual time and write the last instrumented run's series as CSV to this file")
	)
	flag.Parse()
	opt := experiments.Options{Racks: *racks, CrossBWMBps: *crossbw,
		RepairSLOTarget: repairSLO.Nanoseconds()}
	if *traceOut != "" {
		opt.Trace = trace.Options{Enabled: true, SampleEvery: *traceSample}
	}
	if *metricsOut != "" {
		opt.MetricsInterval = sim.Millisecond
	}
	// Every instrumented run lands one record in the -json report; the
	// last run's artifacts back the -trace and -metrics files (for
	// figslo that is the paced run — the one worth staring at).
	var runs []runRecord
	var lastTrace *trace.Trace
	var lastMetrics *stats.TimeSeries
	opt.OnResult = func(id, series string, res *core.Result) {
		runs = append(runs, runRecord{
			Experiment:         id,
			Series:             series,
			Events:             res.Events,
			EventsByHandler:    res.EventsByHandler,
			RepairRateTimeline: res.RepairRateTimeline,
			Timelines:          res.Timelines,
			TailAttribution:    res.TailAttribution,
		})
		if res.Trace != nil {
			lastTrace = res.Trace
		}
		if res.Timelines != nil {
			lastMetrics = res.Timelines
		}
	}

	if *list {
		fmt.Println("experiments:")
		for _, id := range experiments.All() {
			fmt.Println("  " + id)
		}
		return
	}

	var tables []*experiments.Table
	var ids []string
	if *scenario != "" {
		events, err := parseScenario(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rackbench:", err)
			os.Exit(2)
		}
		ids = []string{"scenario"}
		t, err := experiments.ScenarioSummary(events, experiments.Scale(*scale), opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rackbench:", err)
			os.Exit(2)
		}
		tables = append(tables, t)
		fmt.Println(t.Format())
	} else if *redundancy != "" {
		spec, err := parseRedundancy(*redundancy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rackbench:", err)
			os.Exit(1)
		}
		ids = []string{"redundancy"}
		t, err := experiments.RedundancySummary(spec, experiments.Scale(*scale))
		if err != nil {
			fmt.Fprintln(os.Stderr, "rackbench:", err)
			os.Exit(1)
		}
		tables = append(tables, t)
		fmt.Println(t.Format())
	} else {
		ids = experiments.All()
		if *exp != "all" {
			ids = strings.Split(*exp, ",")
		}
		for _, id := range ids {
			start := time.Now()
			ts, err := experiments.ByIDWith(strings.TrimSpace(id), experiments.Scale(*scale), opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rackbench:", err)
				os.Exit(1)
			}
			for _, t := range ts {
				fmt.Println(t.Format())
			}
			tables = append(tables, ts...)
			fmt.Printf("(%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}

	if *jsonOut != "" {
		path := *jsonOut
		if path == "auto" {
			name := *exp
			if *redundancy != "" {
				name = "redundancy"
			}
			if *scenario != "" {
				name = "scenario"
			}
			path = fmt.Sprintf("BENCH_%s.json", strings.ReplaceAll(name, ",", "_"))
		}
		if err := writeJSON(path, benchReport{
			SchemaVersion: benchSchemaVersion,
			Experiments:   ids,
			Scale:         *scale,
			Redundancy:    *redundancy,
			Scenario:      *scenario,
			Tables:        tables,
			Runs:          runs,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "rackbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}

	if *traceOut != "" {
		if lastTrace == nil {
			fmt.Fprintln(os.Stderr, "rackbench: -trace: no instrumented run produced a trace (the flight recorder covers the cluster experiments: figec, figmr, figrl, figsc, figslo, -scenario)")
			os.Exit(1)
		}
		if err := writeArtifact(*traceOut, lastTrace.WriteChromeTrace); err != nil {
			fmt.Fprintln(os.Stderr, "rackbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *traceOut)
	}
	if *metricsOut != "" {
		if lastMetrics == nil {
			fmt.Fprintln(os.Stderr, "rackbench: -metrics: no instrumented run sampled metrics (the sampler covers the cluster experiments: figec, figmr, figrl, figsc, figslo, -scenario)")
			os.Exit(1)
		}
		if err := writeArtifact(*metricsOut, lastMetrics.WriteCSV); err != nil {
			fmt.Fprintln(os.Stderr, "rackbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
}

// writeArtifact streams one exporter's output to a file.
func writeArtifact(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseRedundancy accepts "replication", "rsK,M" (e.g. "rs4,2"), or
// "lrcK,M" (e.g. "lrc4,2" — RS(k,m) globals plus one local parity chunk
// per rack).
func parseRedundancy(s string) (core.RedundancySpec, error) {
	switch {
	case s == "replication":
		return core.Replication(), nil
	case strings.HasPrefix(s, "lrc"):
		var k, m int
		if _, err := fmt.Sscanf(s[3:], "%d,%d", &k, &m); err != nil {
			return core.RedundancySpec{}, fmt.Errorf("bad -redundancy %q: want lrcK,M like lrc4,2", s)
		}
		return core.LocalParityCode(k, m), nil
	case strings.HasPrefix(s, "rs"):
		var k, m int
		if _, err := fmt.Sscanf(s[2:], "%d,%d", &k, &m); err != nil {
			return core.RedundancySpec{}, fmt.Errorf("bad -redundancy %q: want rsK,M like rs4,2", s)
		}
		return core.ErasureCode(k, m), nil
	}
	return core.RedundancySpec{}, fmt.Errorf("bad -redundancy %q: want 'replication', 'rsK,M', or 'lrcK,M'", s)
}

func writeJSON(path string, report benchReport) error {
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
