package main

import (
	"strings"
	"testing"

	"rackblox/internal/core"
	"rackblox/internal/sim"
)

// TestParseScenario is the table-driven coverage of the -scenario
// grammar: well-formed specs decode into the typed events they name,
// and every malformed shape — bad event name, missing @time, missing
// :index, junk numbers, negative time — comes back as a usage error
// rather than a panic.
func TestParseScenario(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		want    []core.Event
		errPart string // non-empty = must fail, containing this text
	}{
		{"single fail", "fail-server:0@120ms",
			[]core.Event{core.FailServer(0, 120*sim.Millisecond)}, ""},
		{"compact spelling and spaces", " failrack:0@300ms , revive-server:2@600ms",
			[]core.Event{
				core.FailRack(0, 300*sim.Millisecond),
				core.ReviveServer(2, 600*sim.Millisecond),
			}, ""},
		{"every kind", "fail-server:1@1ms,fail-rack:0@2ms,fail-tor:2@3ms,revive-server:1@4ms,revive-tor:2@5ms",
			[]core.Event{
				core.FailServer(1, 1*sim.Millisecond),
				core.FailRack(0, 2*sim.Millisecond),
				core.FailToR(2, 3*sim.Millisecond),
				core.ReviveServer(1, 4*sim.Millisecond),
				core.ReviveToR(2, 5*sim.Millisecond),
			}, ""},
		{"fractional seconds", "revivetor:1@1.5s",
			[]core.Event{core.ReviveToR(1, 1500*sim.Millisecond)}, ""},
		{"explicit plus sign", "fail-server:+2@120ms",
			[]core.Event{core.FailServer(2, 120*sim.Millisecond)}, ""},
		{"whitespace around every token", "fail-server : 2 @ 120ms",
			[]core.Event{core.FailServer(2, 120*sim.Millisecond)}, ""},
		{"tabs and plus together", "\tfail-tor\t: +1 @\t3ms\t",
			[]core.Event{core.FailToR(1, 3*sim.Millisecond)}, ""},
		{"spaced index parses like bare index", "revive-server:  0  @600ms",
			[]core.Event{core.ReviveServer(0, 600*sim.Millisecond)}, ""},
		{"bad event name", "explode-server:0@120ms", nil, "unknown kind"},
		{"missing @time", "fail-server:0", nil, "missing @time"},
		{"missing :index", "fail-server@120ms", nil, "missing :index"},
		{"non-integer index", "fail-server:abc@120ms", nil, "not a decimal integer"},
		{"inner whitespace in index", "fail-server:1 2@120ms", nil, "not a decimal integer"},
		{"hex index rejected", "fail-server:0x1@120ms", nil, "not a decimal integer"},
		{"bad duration", "fail-server:0@late", nil, "not a duration"},
		{"negative time", "fail-server:0@-5ms", nil, "must not be negative"},
		{"empty event", "fail-server:0@120ms,,fail-server:1@130ms", nil, "empty event"},
		{"empty string", "", nil, "empty event"},
	}
	for _, tc := range cases {
		got, err := parseScenario(tc.in)
		if tc.errPart != "" {
			if err == nil {
				t.Errorf("%s: parsed %q without error", tc.name, tc.in)
			} else if !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errPart)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %d events, want %d", tc.name, len(got), len(tc.want))
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: event %d = %v, want %v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
}
