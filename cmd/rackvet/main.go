// Command rackvet machine-checks the simulator's five core invariants:
//
//	simdeterminism      — no order-sensitive map iteration, global math/rand,
//	                      or goroutines in simulation packages
//	simtime             — no wall-clock reads where sim logic runs
//	eventlabel          — every scheduled event carries a stable handler label
//	observerpure        — trace/stats observers never perturb the run they watch
//	goroutinediscipline — `go` statements only in the shard runner
//	                      (internal/sim shardrun.go), nowhere else in internal/
//
// Two modes share the same analyzers:
//
//	rackvet [packages]                   # standalone; defaults to ./...
//	go vet -vettool=$(which rackvet) ./... # as a cmd/go vet tool
//
// Standalone mode exits 1 when findings exist; under go vet the driver's
// usual conventions apply. See the "Simulator invariants" section of the
// rackblox package documentation for the rules and their escape hatches.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"rackblox/internal/analysis"
	"rackblox/internal/analysis/eventlabel"
	"rackblox/internal/analysis/goroutinediscipline"
	"rackblox/internal/analysis/observerpure"
	"rackblox/internal/analysis/simdeterminism"
	"rackblox/internal/analysis/simtime"
)

var analyzers = []*analysis.Analyzer{
	simdeterminism.Analyzer,
	simtime.Analyzer,
	eventlabel.Analyzer,
	observerpure.Analyzer,
	goroutinediscipline.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	versionFlag := flag.String("V", "", "print version and exit (cmd/go protocol; use -V=full)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (cmd/go protocol)")
	flag.Usage = usage
	flag.Parse()

	// cmd/go interrogates the tool's identity to key its vet cache; the
	// content hash of the executable invalidates cached results whenever
	// the analyzers change.
	if *versionFlag != "" {
		fmt.Printf("rackvet version devel buildID=%s\n", selfHash())
		return 0
	}
	// cmd/go asks which flags the tool supports before forwarding any;
	// rackvet's analyzers are deliberately knob-free.
	if *flagsFlag {
		fmt.Println("[]")
		return 0
	}

	args := flag.Args()
	// Under `go vet -vettool=...` the driver invokes the tool once per
	// package with a single JSON config file argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return analysis.RunUnit(args[0], analyzers)
	}

	// Standalone mode: load, check, report.
	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rackvet: %v\n", err)
		return 1
	}
	found, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rackvet: %v\n", err)
		return 1
	}
	if len(found) == 0 {
		return 0
	}
	paths := make([]string, 0, len(found))
	for path := range found {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		for _, pkg := range pkgs {
			if pkg.PkgPath != path {
				continue
			}
			fmt.Fprintf(os.Stderr, "# %s\n", path)
			for _, d := range found[path] {
				fmt.Fprintf(os.Stderr, "%s: %s\n", pkg.Fset.Position(d.Pos), d.Message)
			}
		}
	}
	return 1
}

// selfHash content-hashes the running executable, giving cmd/go a build
// ID that changes exactly when the tool does.
func selfHash() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil)[:16])
			}
		}
	}
	return "unknown"
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: rackvet [packages]\n\nchecks:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
	}
	flag.PrintDefaults()
}
