// Command racksim runs one configurable rack simulation and prints a
// latency and event summary — the quickest way to poke at the system.
//
// Example:
//
//	racksim -system rackblox -workload YCSB -writefrac 0.5 -duration 1s
//	racksim -system vdc -workload Twitter -device Optane -net Slow
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rackblox"

	"rackblox/internal/flash"
	"rackblox/internal/netsim"
	"rackblox/internal/stats"
)

func systemByName(name string) (rackblox.System, error) {
	switch strings.ToLower(name) {
	case "vdc":
		return rackblox.SystemVDC, nil
	case "rackblox-software", "software", "rbsw":
		return rackblox.SystemRackBloxSoftware, nil
	case "rackblox-coordio", "coordio":
		return rackblox.SystemRackBloxCoordIO, nil
	case "rackblox", "rb":
		return rackblox.SystemRackBlox, nil
	}
	return 0, fmt.Errorf("unknown system %q (vdc, software, coordio, rackblox)", name)
}

func main() {
	var (
		system    = flag.String("system", "rackblox", "vdc | software | coordio | rackblox")
		wl        = flag.String("workload", "YCSB", "YCSB | TPC-H | Seats | AuctionMark | TPC-C | Twitter")
		writeFrac = flag.Float64("writefrac", 0.5, "YCSB write fraction")
		device    = flag.String("device", "P-SSD", "Optane | IntelDC | P-SSD")
		network   = flag.String("net", "Medium", "Fast | Medium | Slow")
		qdisc     = flag.String("qdisc", "", "switch egress policy: TB | FQ | Priority")
		schedName = flag.String("sched", "Kyber", "storage scheduler: FIFO | Deadline | Kyber | CFQ")
		duration  = flag.Duration("duration", time.Second, "measured window (virtual time)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		swiso     = flag.Bool("swiso", false, "software-isolated vSSD mode (Fig. 21)")
		plot      = flag.Bool("plot", false, "render ASCII read/write latency CDFs")
	)
	flag.Parse()

	cfg := rackblox.DefaultConfig()
	sys, err := systemByName(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, "racksim:", err)
		os.Exit(1)
	}
	cfg.System = sys
	cfg.Seed = *seed
	cfg.Duration = duration.Nanoseconds()
	cfg.Qdisc = *qdisc
	cfg.SoftwareIsolated = *swiso
	if *swiso {
		cfg.VSSDPairs = 2
	}
	switch strings.ToLower(*schedName) {
	case "fifo":
		cfg.SchedPolicy = rackblox.SchedFIFO
	case "deadline":
		cfg.SchedPolicy = rackblox.SchedDeadline
	case "kyber":
		cfg.SchedPolicy = rackblox.SchedKyber
	case "cfq":
		cfg.SchedPolicy = rackblox.SchedCFQ
	default:
		fmt.Fprintf(os.Stderr, "racksim: unknown scheduler %q\n", *schedName)
		os.Exit(1)
	}
	cfg.Workload = rackblox.WorkloadSpec{Name: *wl, WriteFrac: *writeFrac, MeanGap: cfg.Workload.MeanGap}
	if dev, err := flash.ProfileByName(*device); err == nil {
		cfg.Device = dev
	} else {
		fmt.Fprintln(os.Stderr, "racksim:", err)
		os.Exit(1)
	}
	if np, err := netsim.ProfileByName(*network); err == nil {
		cfg.Net = np
	} else {
		fmt.Fprintln(os.Stderr, "racksim:", err)
		os.Exit(1)
	}

	start := time.Now()
	res, err := rackblox.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "racksim:", err)
		os.Exit(1)
	}

	reads, writes := res.Recorder.Reads(), res.Recorder.Writes()
	fmt.Printf("system    %s  (%s on %s/%s, seed %d)\n", res.System, *wl, *device, *network, *seed)
	fmt.Printf("requests  %d (%.1f KIOPS), simulated %v, wall %v\n",
		res.Recorder.Len(), res.Recorder.Throughput()/1000,
		time.Duration(res.SimulatedTime), time.Since(start).Round(time.Millisecond))
	fmt.Printf("reads     p50 %-10s p95 %-10s p99 %-10s p99.9 %s\n",
		stats.Ms(reads.P50()), stats.Ms(reads.P95()), stats.Ms(reads.P99()), stats.Ms(reads.P999()))
	if writes.Len() > 0 {
		fmt.Printf("writes    p50 %-10s p95 %-10s p99 %-10s p99.9 %s\n",
			stats.Ms(writes.P50()), stats.Ms(writes.P95()), stats.Ms(writes.P99()), stats.Ms(writes.P999()))
	}
	fmt.Printf("gc        %d events (%d delayed, %d background, %d forced), WA %.3f\n",
		res.GCEvents, res.GCDelayed, res.BGGCEvents, res.ForcedGCs, res.WriteAmp)
	fmt.Printf("switch    %d forwarded, %d redirected; %d software redirects\n",
		res.Switch.Forwarded, res.Switch.Redirected, res.SWRedirects)
	fmt.Printf("cache     %d read hits; hermes retries %d\n", res.CacheHits, res.StaleRetries)
	fmt.Printf("events    %d discrete events\n", res.Events)
	if res.Failovers > 0 || res.LostRequests > 0 {
		fmt.Printf("failures  %d failovers, %d requests lost\n", res.Failovers, res.LostRequests)
	}
	if *plot {
		fmt.Println()
		fmt.Print(reads.PlotCDF("read latency CDF", 48))
		if writes.Len() > 0 {
			fmt.Println()
			fmt.Print(writes.PlotCDF("write latency CDF", 48))
		}
	}
}
