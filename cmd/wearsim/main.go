// Command wearsim runs the rack-scale wear-leveling simulations of §4.6
// (Figs. 22 and 23) or a custom configuration.
//
// Example:
//
//	wearsim -exp fig22
//	wearsim -weeks 104 -servers 32 -ssds 16 -local 12 -global 56
package main

import (
	"flag"
	"fmt"
	"os"

	"rackblox/internal/experiments"
	"rackblox/internal/wear"
)

func main() {
	var (
		exp     = flag.String("exp", "", "fig22 | fig23 (empty = custom run)")
		weeks   = flag.Int("weeks", 80, "simulation horizon in weeks")
		servers = flag.Int("servers", 32, "servers in the rack")
		ssds    = flag.Int("ssds", 16, "SSDs per server")
		vssds   = flag.Int("vssds", 4, "vSSDs per SSD")
		local   = flag.Int("local", 12, "local swap period in days (0 = off)")
		global  = flag.Int("global", 56, "global swap period in days (0 = off)")
		seed    = flag.Int64("seed", 1, "placement seed")
	)
	flag.Parse()

	if *exp != "" {
		tables, err := experiments.ByID(*exp, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wearsim:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.Format())
		}
		return
	}

	cfg := wear.DefaultConfig()
	cfg.Servers = *servers
	cfg.SSDsPerServer = *ssds
	cfg.VSSDsPerSSD = *vssds
	cfg.LocalPeriodDays = *local
	cfg.GlobalPeriodDays = *global
	cfg.Seed = *seed
	rack, err := wear.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wearsim:", err)
		os.Exit(1)
	}
	fmt.Printf("%-6s %-12s %-12s %-8s %-8s\n", "week", "rack_imbal", "srv0_imbal", "lswaps", "gswaps")
	for w := 1; w <= *weeks; w++ {
		rack.RunWeeks(1)
		if w%4 == 0 || w == *weeks {
			fmt.Printf("%-6d %-12.4f %-12.4f %-8d %-8d\n",
				w, rack.RackImbalance(), rack.ServerImbalance(0),
				rack.LocalSwaps, rack.GlobalSwaps)
		}
	}
}
