package rackblox

import (
	"testing"
	"time"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestPublicRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.System = SystemRackBlox
	cfg.Duration = 200 * int64(time.Millisecond)
	cfg.Warmup = 50 * int64(time.Millisecond)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Len() == 0 {
		t.Fatal("no samples")
	}
	if res.Recorder.Reads().P999() <= 0 {
		t.Fatal("no read tail")
	}
}

func TestSystemsExported(t *testing.T) {
	sys := Systems()
	if len(sys) != 4 {
		t.Fatalf("systems = %d", len(sys))
	}
	if sys[0] != SystemVDC || sys[3] != SystemRackBlox {
		t.Fatal("system order")
	}
}

func TestProfilesExported(t *testing.T) {
	if !(DeviceOptane().ReadPage < DeviceIntelDC().ReadPage &&
		DeviceIntelDC().ReadPage < DevicePSSD().ReadPage) {
		t.Fatal("device profile ordering")
	}
	if !(NetworkFast().MedianNS < NetworkMedium().MedianNS &&
		NetworkMedium().MedianNS < NetworkSlow().MedianNS) {
		t.Fatal("network profile ordering")
	}
}

func TestWorkloadsExported(t *testing.T) {
	if len(Workloads()) != 5 {
		t.Fatalf("workloads = %v", Workloads())
	}
}

func TestExperimentByID(t *testing.T) {
	tables, err := Experiment("table2", 0.1)
	if err != nil || len(tables) != 1 {
		t.Fatalf("Experiment(table2) = %v, %v", tables, err)
	}
	if len(ExperimentIDs()) < 15 {
		t.Fatalf("experiment ids = %v", ExperimentIDs())
	}
	if _, err := Experiment("bogus", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestWearFacade(t *testing.T) {
	cfg := DefaultWearConfig()
	cfg.Servers = 4
	r, err := NewWearRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.RunWeeks(10)
	if r.RackImbalance() < 1 {
		t.Fatal("imbalance below 1")
	}
}
