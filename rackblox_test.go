package rackblox

import (
	"testing"
	"time"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestPublicRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.System = SystemRackBlox
	cfg.Duration = 200 * int64(time.Millisecond)
	cfg.Warmup = 50 * int64(time.Millisecond)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Len() == 0 {
		t.Fatal("no samples")
	}
	if res.Recorder.Reads().P999() <= 0 {
		t.Fatal("no read tail")
	}
}

func TestSystemsExported(t *testing.T) {
	sys := Systems()
	if len(sys) != 4 {
		t.Fatalf("systems = %d", len(sys))
	}
	if sys[0] != SystemVDC || sys[3] != SystemRackBlox {
		t.Fatal("system order")
	}
}

func TestProfilesExported(t *testing.T) {
	if !(DeviceOptane().ReadPage < DeviceIntelDC().ReadPage &&
		DeviceIntelDC().ReadPage < DevicePSSD().ReadPage) {
		t.Fatal("device profile ordering")
	}
	if !(NetworkFast().MedianNS < NetworkMedium().MedianNS &&
		NetworkMedium().MedianNS < NetworkSlow().MedianNS) {
		t.Fatal("network profile ordering")
	}
}

func TestWorkloadsExported(t *testing.T) {
	if len(Workloads()) != 5 {
		t.Fatalf("workloads = %v", Workloads())
	}
}

func TestExperimentByID(t *testing.T) {
	tables, err := Experiment("table2", 0.1)
	if err != nil || len(tables) != 1 {
		t.Fatalf("Experiment(table2) = %v, %v", tables, err)
	}
	if len(ExperimentIDs()) < 15 {
		t.Fatalf("experiment ids = %v", ExperimentIDs())
	}
	if _, err := Experiment("bogus", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestWearFacade(t *testing.T) {
	cfg := DefaultWearConfig()
	cfg.Servers = 4
	r, err := NewWearRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.RunWeeks(10)
	if r.RackImbalance() < 1 {
		t.Fatal("imbalance below 1")
	}
}

// TestPublicECRun is the acceptance scenario via the public API:
// rackblox.Run with ErasureCode{K:4, M:2} completes YCSB end to end,
// and with m servers failed mid-run every read still succeeds through
// degraded reconstruction.
func TestPublicECRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StorageServers = 6
	cfg.Redundancy = RedundancyEC(4, 2)
	cfg.Duration = 400 * time.Millisecond.Nanoseconds()
	cfg.FailServerIndex = 0
	cfg.FailServers = []int{1}
	cfg.FailServerAt = cfg.Warmup + 100*time.Millisecond.Nanoseconds()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Len() == 0 {
		t.Fatal("no samples")
	}
	if res.DegradedReads == 0 {
		t.Fatal("no degraded reads with two dead chunk holders")
	}
	if res.LostReads != 0 {
		t.Fatalf("%d reads lost; reconstruction must serve them all", res.LostReads)
	}
}

// TestECCodecExported round-trips the exported codec.
func TestECCodecExported(t *testing.T) {
	codec, err := NewECCodec(ECSpec{K: 2, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := [][]byte{{1, 2, 3}, {4, 5, 6}}
	parity, err := codec.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]byte{nil, data[1], parity[0]}
	if err := codec.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if shards[0][0] != 1 || shards[0][2] != 3 {
		t.Fatalf("reconstructed %v", shards[0])
	}
}
