// Package observerpure implements the rackvet analyzer enforcing the
// flight recorder's observer-only contract.
//
// PR 6's guarantee — proven dynamically by the replay tests — is that
// attaching the trace/stats observability layer changes no simulation
// Result byte. That holds exactly as long as observer code is pure with
// respect to simulation state: it may read engine time and counters, but
// it must never schedule events, steer the engine, draw from simulation
// RNG streams, or write fields of simulation objects. One Engine.After
// inside a trace hook would silently turn the recorder into a
// participant, and the bug would only surface as an unexplained replay
// divergence far from its cause.
//
// This analyzer makes the contract static. Within internal/trace and
// internal/stats it flags:
//
//   - calls to sim.Engine methods other than the read-only surface
//     (Now, Pending, Processed, ProcessedBy);
//   - any call into internal/core or internal/switchsim — observers
//     consume values pushed to them, they never reach back into
//     simulation components;
//   - sim.RNG draws, which would shift stream positions every other
//     component depends on;
//   - assignments through fields declared in sim/core/switchsim types.
//
// Using simulation types as plain data (sim.Time fields in trace spans,
// sim.Time arithmetic) is exactly what observers are for and is not
// flagged. There is no directive escape hatch: an observer that needs to
// mutate the simulation is not an observer, and the code should move.
package observerpure

import (
	"go/ast"
	"go/types"

	"rackblox/internal/analysis"
)

// Analyzer enforces observer purity in trace/stats packages.
var Analyzer = &analysis.Analyzer{
	Name: "observerpure",
	Doc: "forbid simulation-state writes, event scheduling, and sim RNG draws in " +
		"internal/trace and internal/stats: observers must not perturb the run they watch",
	Applies: applies,
	Run:     run,
}

var observerPackages = map[string]bool{
	"rackblox/internal/trace": true,
	"rackblox/internal/stats": true,
}

func applies(pkgPath string) bool { return observerPackages[pkgPath] }

// engineReadOnly is the Engine surface observers may use: pure queries
// with no effect on event order or state.
var engineReadOnly = map[string]bool{
	"Now":         true,
	"Pending":     true,
	"Processed":   true,
	"ProcessedBy": true,
}

// componentPackages are the simulation-component packages observers must
// not call into at all.
var componentPackages = []string{
	"rackblox/internal/core",
	"rackblox/internal/switchsim",
}

// statePackages own the struct fields observers must not write.
var statePackages = []string{
	"rackblox/internal/sim",
	"rackblox/internal/core",
	"rackblox/internal/switchsim",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.AssignStmt:
				// Skip := definitions: only plain assignments (and the
				// compound forms) can write through an existing field.
				for _, lhs := range n.Lhs {
					checkWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, n.X)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if m := analysis.EngineMethod(pass.TypesInfo, call); m != "" && !engineReadOnly[m] {
		pass.Reportf(call.Pos(),
			"observer code calls Engine.%s: observers may only read engine state "+
				"(Now/Pending/Processed/ProcessedBy); anything else perturbs the run being watched", m)
		return
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	for _, p := range componentPackages {
		if analysis.PkgPathIs(fn.Pkg(), p) {
			pass.Reportf(call.Pos(),
				"observer code calls %s.%s: observers consume pushed values, they must not "+
					"reach back into simulation components", fn.Pkg().Name(), fn.Name())
			return
		}
	}
	if named := analysis.ReceiverNamed(fn); named != nil &&
		named.Obj().Name() == "RNG" &&
		analysis.PkgPathIs(named.Obj().Pkg(), "rackblox/internal/sim") {
		pass.Reportf(call.Pos(),
			"observer code draws from sim.RNG: observer draws shift stream positions and "+
				"change the simulation being observed")
	}
}

// checkWrite flags an assignment target that writes through a field
// declared in a simulation-state package.
func checkWrite(pass *analysis.Pass, lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if sel := pass.TypesInfo.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
				if field, ok := sel.Obj().(*types.Var); ok && field.Pkg() != nil {
					for _, p := range statePackages {
						if analysis.PkgPathIs(field.Pkg(), p) {
							pass.Reportf(e.Sel.Pos(),
								"observer code writes %s.%s, a field of simulation state: "+
									"observers must leave the run byte-identical",
								field.Pkg().Name(), field.Name())
							return
						}
					}
				}
			}
			lhs = e.X
		default:
			return
		}
	}
}
