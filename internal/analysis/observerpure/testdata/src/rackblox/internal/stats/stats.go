// Package stats is an observerpure fixture: an observer mutating only
// its own state. No want comments.
package stats

// Window accumulates samples.
type Window struct {
	N   int
	Sum int64
}

// Add records one sample into the window's own state.
func (w *Window) Add(v int64) {
	w.N++
	w.Sum += v
}
