// Test files drive the engine on purpose. No want comments.
package trace

import "rackblox/internal/sim"

func driveForTest(eng *sim.Engine) {
	eng.AtNamed(1, "test.drive", func(sim.Time) {})
}
