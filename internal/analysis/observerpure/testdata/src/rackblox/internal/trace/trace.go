// Package trace is an observerpure fixture: reads of engine state and
// writes to the observer's own accumulators are fine; anything that
// could perturb the simulation is a finding.
package trace

import (
	"rackblox/internal/core"
	"rackblox/internal/sim"
)

// Recorder is an observer with its own state.
type Recorder struct {
	Samples []int64
	ticks   int
}

// Observe reads the engine's read-only surface and accumulates locally —
// the entire sanctioned repertoire.
func (r *Recorder) Observe(eng *sim.Engine, s *core.GCState) {
	r.Samples = append(r.Samples, int64(eng.Now()))
	r.ticks++
	_ = eng.Pending()
	_ = eng.Processed()
	_ = eng.ProcessedBy()
	if s.Open { // reading component state is fine; writing is not
		r.ticks++
	}
}

func (r *Recorder) impure(eng *sim.Engine, s *core.GCState, rng *sim.RNG) {
	eng.AfterNamed(1, "trace.flush", func(sim.Time) {}) // want "observer code calls Engine.AfterNamed"
	eng.At(1, func(sim.Time) {})                        // want "observer code calls Engine.At"
	eng.SetTick(10, func(sim.Time) {})                  // want "observer code calls Engine.SetTick"
	core.Tick(s)                                        // want "observer code calls core.Tick"
	s.Count++                                           // want "observer code writes core.Count"
	s.Open = true                                       // want "observer code writes core.Open"
	_ = rng.Intn(2)                                     // want "observer code draws from sim.RNG"
}
