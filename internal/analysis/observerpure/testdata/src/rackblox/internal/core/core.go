// Package core is a stub simulation component for the observerpure
// suite: state observers must never call into or write.
package core

// GCState is per-vSSD garbage-collection state.
type GCState struct {
	Open  bool
	Count int
}

// Tick mutates simulation state.
func Tick(s *GCState) { s.Count++ }
