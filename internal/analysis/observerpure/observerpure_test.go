package observerpure_test

import (
	"testing"

	"rackblox/internal/analysis/analysistest"
	"rackblox/internal/analysis/observerpure"
)

// TestObserverpure exercises the read-only Engine surface allowance,
// own-state accumulation, the four impurity findings (engine calls,
// component calls, state-field writes, RNG draws), and the _test.go
// allowlist.
func TestObserverpure(t *testing.T) {
	analysistest.Run(t, observerpure.Analyzer,
		"rackblox/internal/trace",
		"rackblox/internal/stats",
	)
}
