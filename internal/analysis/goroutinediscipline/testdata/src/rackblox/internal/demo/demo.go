// Package demo is a goroutinediscipline fixture: an internal package
// outside internal/sim, where every `go` statement is a finding — even
// a file named shardrun.go, since the carve-out is the sim package's
// runner specifically, not a filename convention.
package demo

func fansOut(work []func()) {
	for _, w := range work {
		go w() // want "goroutine spawned outside the shard runner"
	}
}

func nestedSpawn(done chan struct{}) {
	helper := func() {
		go func() { close(done) }() // want "goroutine spawned outside the shard runner"
	}
	helper()
}
