package demo

import "testing"

// Tests own their goroutines; the race detector watches them.
func TestSpawnsFreely(t *testing.T) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
