package demo

// A shardrun.go outside internal/sim earns no exemption.
func impostorRunner(done chan struct{}) {
	go func() { close(done) }() // want "goroutine spawned outside the shard runner"
}
