// Package sim is a goroutinediscipline fixture: the shard-runner file
// (shardrun.go) is the one sanctioned concurrency site; a goroutine in
// any other file of the same package is still a finding.
package sim

// Time is virtual simulation time in nanoseconds.
type Time int64

// RunUntil is a stand-in for the engine's window execution.
func RunUntil(end Time) {}

func sneaksConcurrencyIntoTheEnginePackage(done chan struct{}) {
	go func() { close(done) }() // want "goroutine spawned outside the shard runner"
}
