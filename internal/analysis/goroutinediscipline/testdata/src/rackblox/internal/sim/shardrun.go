package sim

// startWorkers mirrors the real shard runner: the one file where `go`
// statements are allowed, because the window-barrier protocol makes the
// concurrency unobservable.
func startWorkers(windows []chan Time) {
	for range windows {
		ch := make(chan Time)
		go func() {
			for end := range ch {
				RunUntil(end)
			}
		}()
	}
}
