package goroutinediscipline_test

import (
	"testing"

	"rackblox/internal/analysis/analysistest"
	"rackblox/internal/analysis/goroutinediscipline"
)

// TestGoroutineDiscipline exercises the one sanctioned concurrency site
// (internal/sim's shardrun.go, no finding), `go` statements elsewhere in
// internal/ (findings, including inside nested closures), and the
// _test.go allowlist.
func TestGoroutineDiscipline(t *testing.T) {
	analysistest.Run(t, goroutinediscipline.Analyzer,
		"rackblox/internal/sim",
		"rackblox/internal/demo",
	)
}
