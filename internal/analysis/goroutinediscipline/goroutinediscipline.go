// Package goroutinediscipline implements the rackvet analyzer that pins
// where concurrency may enter the simulator.
//
// The sharded runner (sim.ShardGroup.Run) executes one goroutine per
// rack shard, and its byte-identity-to-sequential guarantee rests on a
// structural argument: within a window each worker touches only its own
// shard's state, and every cross-shard effect rides the deterministic
// mailbox merge at the barrier. That argument holds precisely because
// the worker pool in internal/sim's shardrun.go is the ONLY place
// goroutines exist — a `go` statement anywhere else in internal/ would
// reintroduce scheduler interleaving the replay tests cannot see until
// it has already corrupted a result.
//
// Unlike simdeterminism (which guards the event-path packages), this
// check covers all of internal/: observers, codecs, and tooling helpers
// are called from the event path, so none of them may smuggle in
// concurrency either. Tests are exempt — they own their goroutines and
// the race detector watches them. There is deliberately no directive
// escape hatch: new concurrency belongs in the shard runner or not in
// the tree.
package goroutinediscipline

import (
	"go/ast"
	"strings"

	"rackblox/internal/analysis"
)

// Analyzer restricts `go` statements to the shard-runner file.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinediscipline",
	Doc: "restrict `go` statements to the shard runner (internal/sim shardrun.go); " +
		"anywhere else in internal/ goroutine interleaving breaks bit-exact replay",
	Applies: applies,
	Run:     run,
}

func applies(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "rackblox/internal/")
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if pass.InShardRunnerFile(g.Pos()) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine spawned outside the shard runner: only internal/sim's shardrun.go "+
					"may introduce concurrency (the window-barrier pool behind ShardGroup.Run); "+
					"everywhere else interleaving breaks bit-exact replay")
			return true
		})
	}
	return nil
}
