// Package analysistest runs rackvet analyzers over golden fixture
// packages, mirroring golang.org/x/tools/go/analysis/analysistest on the
// stdlib-only framework in internal/analysis.
//
// Fixtures live under the analyzer's testdata/src/<importpath>/
// directory, one directory per fixture package, named with the import
// path the analyzer's Applies predicate sees (so scope rules — including
// the cmd/ and internal/walltime allowlists — are part of what the
// golden suite exercises). Fixture packages may import each other (a
// fake rackblox/internal/sim lives next to the packages under test) and
// the standard library; std dependencies resolve through real compiler
// export data, so fixture code type-checks exactly like production code.
//
// Expected findings are `// want "regexp"` comments on the line the
// diagnostic lands on:
//
//	eng.After(d, fn) // want "unlabeled Engine.After"
//
// Run fails the test when a diagnostic has no matching want on its line,
// or a want matched no diagnostic. A fixture package with no want
// comments asserts the analyzer stays silent over it — that is how the
// allowlist and directive escape-hatch fixtures are written.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"rackblox/internal/analysis"
)

// Run checks one analyzer against the fixture packages at the given
// import paths under testdata/src.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	l := &loader{
		root:  root,
		fset:  token.NewFileSet(),
		cache: map[string]*analysis.Package{},
	}

	var diags []entry
	var wants []want
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		wants = append(wants, collectWants(t, l.fset, pkg.Files)...)
		if a.Applies != nil && !a.Applies(path) {
			continue // out-of-scope fixture: its wants (none) must hold
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
		}
		pass.Report = func(d analysis.Diagnostic) {
			p := l.fset.Position(d.Pos)
			diags = append(diags, entry{file: p.Filename, line: p.Line, msg: d.Message})
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: running over %s: %v", a.Name, path, err)
		}
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == d.file && w.line == d.line && w.re.MatchString(d.msg) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: %s", rel(d.file), d.line, d.msg)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched want %q", rel(w.file), w.line, w.re)
		}
	}
}

type entry struct {
	file string
	line int
	msg  string
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// rel trims the testdata prefix for readable failure output.
func rel(file string) string {
	if i := strings.Index(file, "testdata"+string(filepath.Separator)); i >= 0 {
		return file[i:]
	}
	return file
}

// wantRE matches one `// want "..."` comment; the quoted part is a
// Go-quoted regular expression.
var wantRE = regexp.MustCompile(`// want ("(?:[^"\\]|\\.)*")`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s: bad want literal %s: %v", fset.Position(c.Pos()), m[1], err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), pat, err)
				}
				p := fset.Position(c.Pos())
				out = append(out, want{file: p.Filename, line: p.Line, re: re})
			}
		}
	}
	return out
}

// loader type-checks fixture packages, resolving fixture-to-fixture
// imports from testdata/src and everything else from real compiler
// export data.
type loader struct {
	root    string
	fset    *token.FileSet
	cache   map[string]*analysis.Package
	std     types.Importer
	exports map[string]string
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	pkg, err := analysis.TypeCheck(l.fset, path, files, (*fixtureImporter)(l))
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// fixtureImporter routes imports: testdata/src first, std export data
// otherwise.
type fixtureImporter loader

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(fi)
	if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	if l.std == nil {
		// The importer reads l.exports through the shared map, so
		// lazily merged entries below are visible to it.
		l.exports = map[string]string{}
		l.std = analysis.NewImporter(l.fset, l.exports)
	}
	if _, ok := l.exports[path]; !ok {
		// -deps (inside ExportLookup) pulls the transitive closure, so
		// the gc importer can resolve everything path's export data
		// references.
		m, err := analysis.ExportLookup(".", path)
		if err != nil {
			return nil, fmt.Errorf("resolving export data for %q: %v", path, err)
		}
		for k, v := range m {
			l.exports[k] = v
		}
	}
	return l.std.Import(path)
}
