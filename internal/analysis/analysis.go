// Package analysis is a dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface rackvet needs: an Analyzer
// is a named check with a Run function over one type-checked package
// (a Pass), reporting position-anchored Diagnostics.
//
// The container this repository builds in has no module proxy access, so
// vendoring x/tools is not an option; everything here rests on the
// standard library only (go/ast, go/types, go/importer) plus `go list
// -export` for dependency resolution. The shapes mirror x/tools closely
// enough that migrating to the real framework later is mechanical.
//
// Three drivers execute analyzers:
//
//   - Load + RunAnalyzers: standalone mode (`rackvet ./...`), used by CI.
//   - RunUnit: the cmd/go vet action protocol (`go vet -vettool=rackvet`).
//   - analysistest.Run: golden `// want` fixture suites under testdata/.
//
// # Directives
//
// Analyzers offer narrow, per-line escape hatches as comment directives
// of the form `//rackvet:<name> <rationale>`, attached to the source
// line they appear on or the line directly below (so both end-of-line
// and own-line placement work):
//
//	//rackvet:commutative per-channel occupancy is independent; max commutes
//	for ch, dur := range burst.PerChannel { ... }
//
// The rationale text is free-form but REQUIRED: the directive asserts a
// human checked an invariant the machine cannot, and the rationale is
// where that proof lives. Analyzers that honor a directive call
// Pass.CheckDirectiveRationales to report bare occurrences.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in reports and directives.
	Name string
	// Doc is the analyzer's help text; the first line is its summary.
	Doc string
	// Applies reports whether the analyzer inspects the package with
	// the given import path at all. Drivers skip packages (and whole
	// dependency subtrees, in vettool mode) where no analyzer applies.
	Applies func(pkgPath string) bool
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic as it is found.
	Report func(Diagnostic)

	// directives maps file name -> line -> directive names present.
	directives map[string]map[int][]string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The simulator
// invariants bind production simulation code; tests may use wall clocks,
// goroutines, and unordered iteration freely.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Directive reports whether a `//rackvet:<name>` directive is attached
// to the line holding pos: on the same line (end-of-line placement) or
// the line directly above (own-line placement).
func (p *Pass) Directive(pos token.Pos, name string) bool {
	if p.directives == nil {
		p.directives = map[string]map[int][]string{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//rackvet:")
					if !ok {
						continue
					}
					dn := rest
					if i := strings.IndexAny(rest, " \t"); i >= 0 {
						dn = rest[:i]
					}
					cp := p.Fset.Position(c.Pos())
					byLine := p.directives[cp.Filename]
					if byLine == nil {
						byLine = map[int][]string{}
						p.directives[cp.Filename] = byLine
					}
					byLine[cp.Line] = append(byLine[cp.Line], dn)
				}
			}
		}
	}
	at := p.Fset.Position(pos)
	byLine := p.directives[at.Filename]
	for _, ln := range []int{at.Line, at.Line - 1} {
		for _, dn := range byLine[ln] {
			if dn == name {
				return true
			}
		}
	}
	return false
}

// CheckDirectiveRationales reports every `//rackvet:<name>` directive in
// the pass's non-test files that carries no rationale after the
// directive word. A directive is a human assertion that an invariant
// holds where the machine cannot prove it; a bare directive is an
// unjustified suppression. Files are walked in declaration order, so
// reports are deterministic.
func (p *Pass) CheckDirectiveRationales(name string) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//rackvet:")
				if !ok {
					continue
				}
				dn, rationale := rest, ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					dn, rationale = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				// An analysistest `// want` expectation is fixture
				// metadata, not a rationale.
				if i := strings.Index(rationale, "// want "); i >= 0 {
					rationale = strings.TrimSpace(rationale[:i])
				}
				if dn != name || rationale != "" {
					continue
				}
				p.Reportf(c.Pos(),
					"bare //rackvet:%s directive: state the rationale that justifies the exemption",
					name)
			}
		}
	}
}

// InShardRunnerFile reports whether pos lies in the simulator's shard
// runner — internal/sim's shardrun.go, the single file sanctioned to
// spawn goroutines (the worker-per-shard pool behind ShardGroup.Run).
func (p *Pass) InShardRunnerFile(pos token.Pos) bool {
	if !PkgPathIs(p.Pkg, "rackblox/internal/sim") {
		return false
	}
	name := p.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name == "shardrun.go"
}

// Callee resolves a call expression to the *types.Func it invokes
// (a declared function or method), or nil for calls through function
// values, conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// ReceiverNamed returns the named type of fn's receiver (through one
// pointer indirection), or nil for plain functions.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// PkgPathIs reports whether pkg (possibly nil) has exactly the given
// import path, or — so testdata fixture universes and future module
// renames behave identically — ends with "/" + path's suffix after the
// module name. In this module the paths compared are always of the form
// "rackblox/internal/...".
func PkgPathIs(pkg *types.Package, path string) bool {
	if pkg == nil {
		return false
	}
	got := pkg.Path()
	if got == path {
		return true
	}
	if i := strings.Index(path, "/"); i >= 0 {
		return strings.HasSuffix(got, path[i:]) && got != path[i+1:]
	}
	return false
}

// EngineMethod returns the method name if call invokes a method on the
// simulation engine type (sim.Engine), and "" otherwise.
func EngineMethod(info *types.Info, call *ast.CallExpr) string {
	fn := Callee(info, call)
	if fn == nil {
		return ""
	}
	named := ReceiverNamed(fn)
	if named == nil || named.Obj().Name() != "Engine" {
		return ""
	}
	if !PkgPathIs(named.Obj().Pkg(), "rackblox/internal/sim") {
		return ""
	}
	return fn.Name()
}

// SortDiagnostics orders diagnostics by file position for stable output.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
