package simtime_test

import (
	"testing"

	"rackblox/internal/analysis/analysistest"
	"rackblox/internal/analysis/simtime"
)

// TestSimtime exercises the wall-clock findings plus all three
// allowlists: _test.go files, the internal/walltime boundary package,
// and cmd/ entry points.
func TestSimtime(t *testing.T) {
	analysistest.Run(t, simtime.Analyzer,
		"rackblox/internal/demo",
		"rackblox/internal/walltime",
		"rackblox/cmd/demo",
	)
}
