// Package simtime implements the rackvet analyzer forbidding wall-clock
// reads in simulation code.
//
// Everything under internal/ runs (or can run) inside the deterministic
// discrete-event simulation, whose only clock is sim.Time — virtual
// nanoseconds advanced by the engine. A time.Now or time.Sleep in that
// code couples simulation behavior to the host machine: results stop
// replaying bit-exactly, and CI timing noise becomes simulation noise.
//
// Allowlisted, with rationale:
//
//   - _test.go files: tests measure and bound real elapsed time (soak
//     throughput, race timeouts) without feeding it back into the
//     simulation.
//   - cmd/... and examples/...: process entry points report wall-clock
//     progress to humans; none of it re-enters simulation state.
//   - internal/walltime: THE sanctioned wall-clock boundary. Code that
//     legitimately needs host time (benchmark soak timing) takes it from
//     that one audited package, so every wall-clock read in the tree is
//     grep-able from a single choke point rather than silently exempted.
//
// Pure time utilities (time.Duration arithmetic, time.Unix conversions
// for export formats) are not flagged: only the functions that read or
// wait on the host clock are.
package simtime

import (
	"go/ast"
	"go/types"
	"strings"

	"rackblox/internal/analysis"
)

// wallClock lists the time package functions that read or wait on the
// host clock. Types and constants (time.Duration, time.Millisecond) stay
// usable for export formats.
var wallClock = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer flags wall-clock reads in simulation packages.
var Analyzer = &analysis.Analyzer{
	Name: "simtime",
	Doc: "forbid wall-clock time.Now/Since/Sleep/timers in simulation code; " +
		"sim time is sim.Time only (internal/walltime is the audited boundary)",
	Applies: applies,
	Run:     run,
}

func applies(pkgPath string) bool {
	rest, ok := strings.CutPrefix(pkgPath, "rackblox/internal/")
	if !ok {
		return false // cmd/, examples/, and everything outside the module
	}
	return rest != "walltime" && !strings.HasPrefix(rest, "walltime/")
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClock[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"wall-clock time.%s in simulation code: sim logic runs on virtual sim.Time only; "+
					"take host time from internal/walltime if this is sanctioned measurement code",
				fn.Name())
			return true
		})
	}
	return nil
}
