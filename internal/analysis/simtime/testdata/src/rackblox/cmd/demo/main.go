// Process entry points report wall-clock progress to humans; cmd/ is
// outside the analyzer's scope. No want comments.
package main

import "time"

func main() {
	start := time.Now()
	time.Sleep(time.Millisecond)
	_ = time.Since(start)
}
