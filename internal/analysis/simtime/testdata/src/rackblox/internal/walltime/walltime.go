// Package walltime mirrors the real sanctioned boundary: the one
// internal package allowed to read the host clock. No want comments.
package walltime

import "time"

func Start() time.Time { return time.Now() }

func Elapsed(s time.Time) time.Duration { return time.Since(s) }
