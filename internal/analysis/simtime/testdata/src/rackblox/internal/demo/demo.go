// Package demo is a simtime fixture: simulation-scoped code where every
// host-clock read or wait is a finding, while pure time.Duration
// arithmetic stays usable.
package demo

import "time"

func bad(ch chan int) time.Duration {
	start := time.Now()             // want "wall-clock time.Now"
	time.Sleep(time.Millisecond)    // want "wall-clock time.Sleep"
	t := time.NewTimer(time.Second) // want "wall-clock time.NewTimer"
	k := time.NewTicker(time.Hour)  // want "wall-clock time.NewTicker"
	select {
	case <-time.After(time.Second): // want "wall-clock time.After"
	case <-t.C:
	case <-k.C:
	case <-ch:
	}
	if time.Until(start) > 0 { // want "wall-clock time.Until"
		return 0
	}
	return time.Since(start) // want "wall-clock time.Since"
}

// Duration arithmetic, constants, and conversions never touch the host
// clock and are allowed.
func ok(d time.Duration) time.Duration {
	deadline := 2*d + 5*time.Millisecond
	return deadline.Round(time.Microsecond)
}
