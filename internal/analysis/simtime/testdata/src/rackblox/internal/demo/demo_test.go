// Test files may measure real elapsed time freely: the allowlist under
// test. No want comments — the analyzer must stay silent here.
package demo

import "time"

func soakElapsed() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
