package simdeterminism_test

import (
	"testing"

	"rackblox/internal/analysis/analysistest"
	"rackblox/internal/analysis/simdeterminism"
)

// TestSimdeterminism exercises every sink kind (scheduling, exported
// writes, observer calls, RNG draws), transitive reachability through
// local helpers, the //rackvet:commutative escape hatch (including the
// bare-directive finding), slice-range and commutative-body
// non-findings, global math/rand, goroutine spawns (with the shardrun.go
// carve-out), the _test.go allowlist, and the package-scope perimeter.
func TestSimdeterminism(t *testing.T) {
	analysistest.Run(t, simdeterminism.Analyzer,
		"rackblox/internal/core",
		"rackblox/internal/netsim",
		"rackblox/internal/sim",
	)
}
