// Package netsim is outside the simdeterminism perimeter (the analyzer
// scopes to sim/core/ec/switchsim/experiments): identical code here is
// not a finding. No want comments.
package netsim

import "rackblox/internal/sim"

func schedulesInMapOrder(eng *sim.Engine, m map[int]sim.Time) {
	for _, d := range m {
		eng.AfterNamed(d, "netsim.work", func(sim.Time) {})
	}
}
