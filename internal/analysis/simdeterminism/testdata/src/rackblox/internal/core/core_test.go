// Test files may iterate maps, spawn goroutines, and use the global
// stream freely. No want comments.
package core

import (
	"math/rand"

	"rackblox/internal/sim"
)

func helperForTests(eng *sim.Engine, m map[int]sim.Time) {
	for _, d := range m {
		eng.AfterNamed(d, "test.helper", func(sim.Time) {})
	}
	go func() {}()
	_ = rand.Intn(2)
}
