// Package core is a simdeterminism fixture: map-range bodies reaching a
// determinism sink (directly or through local calls), global math/rand,
// and goroutine spawns are findings; commutative bodies and annotated
// ranges are not.
package core

import (
	"math/rand"

	"rackblox/internal/sim"
	"rackblox/internal/trace"
)

// Result mimics the real exported result surface.
type Result struct {
	Total int64
	Rows  []int64
}

func schedulesInMapOrder(eng *sim.Engine, m map[int]sim.Time) {
	for _, d := range m { // want "map iteration order .* schedules engine events"
		eng.AfterNamed(d, "core.work", func(sim.Time) {})
	}
}

func writesResultInMapOrder(res *Result, m map[int]int64) {
	for _, v := range m { // want "map iteration order .* writes exported result state"
		res.Total = res.Total*31 + v
	}
}

func appendsRowsInMapOrder(res *Result, m map[int]int64) {
	for _, v := range m { // want "writes exported result state"
		res.Rows = append(res.Rows, v)
	}
}

func observesInMapOrder(m map[int]int64) {
	for _, v := range m { // want "records trace/stats samples"
		trace.Record(v)
	}
}

func drawsInMapOrder(r *sim.RNG, m map[int]bool) int {
	n := 0
	for k := range m { // want "draws randomness"
		if r.Intn(2) == k%2 {
			n++
		}
	}
	return n
}

// The sink is two local calls deep: reachability is a transitive
// fixpoint, not a single-hop check.
func viaHelpers(eng *sim.Engine, m map[int]sim.Time) {
	for _, d := range m { // want "schedules engine events"
		kick(eng, d)
	}
}

func kick(eng *sim.Engine, d sim.Time) { kickDeeper(eng, d) }

func kickDeeper(eng *sim.Engine, d sim.Time) {
	eng.AfterNamed(d, "core.kick", func(sim.Time) {})
}

// Commutative bodies — counting, summing, max — never observe order.
func maxOnly(m map[int]int64) int64 {
	var top int64
	for _, v := range m {
		if v > top {
			top = v
		}
	}
	return top
}

// The directive asserts a human checked order-insensitivity the machine
// cannot, end-of-line or own-line.
func annotated(eng *sim.Engine, m map[int]sim.Time, res *Result) {
	//rackvet:commutative identical zero-payload probes, order checked by hand
	for range m {
		eng.AfterNamed(0, "core.probe", func(sim.Time) {})
	}
	for _, v := range m { //rackvet:commutative sum commutes
		res.Total += int64(v)
	}
}

// Slice iteration is deterministic; only maps are checked.
func sliceIsFine(eng *sim.Engine, ds []sim.Time) {
	for _, d := range ds {
		eng.AfterNamed(d, "core.slice", func(sim.Time) {})
	}
}

func seedsGlobal() int {
	return rand.Intn(6) // want "global math/rand.Intn"
}

func reseedsGlobal() {
	rand.Seed(42) // want "global math/rand.Seed"
}

// Constructing explicit generators is the sanctioned pattern.
func forksGenerator() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

func spawns(done chan struct{}) {
	go func() { close(done) }() // want "goroutine spawn in simulation code"
}

// A bare directive still suppresses the range finding, but is itself a
// finding: the rationale is where the human's proof lives.
func bareAnnotated(res *Result, m map[int]int64) {
	//rackvet:commutative // want "bare //rackvet:commutative directive"
	for _, v := range m {
		res.Total += v
	}
}
