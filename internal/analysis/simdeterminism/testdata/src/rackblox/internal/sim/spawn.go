package sim

// Any other file in the engine package is still bound by the
// single-threaded invariant: the carve-out names shardrun.go, not the
// package.
func leakConcurrency(done chan struct{}) {
	go func() { close(done) }() // want "goroutine spawn in simulation code"
}
