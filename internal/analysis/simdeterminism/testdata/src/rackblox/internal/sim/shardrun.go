package sim

// The shard-runner carve-out: this file mirrors the real shardrun.go,
// the one place in the tree where goroutines are sanctioned — the
// window-barrier worker pool keeps them unobservable. No findings here.
func startWorkers(windows []chan Time) {
	for range windows {
		ch := make(chan Time)
		go func() {
			for range ch {
			}
		}()
	}
}
