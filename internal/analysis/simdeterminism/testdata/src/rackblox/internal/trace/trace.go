// Package trace is a stub observer sink for the simdeterminism suite.
package trace

// Record accepts one observed sample.
func Record(v int64) { _ = v }
