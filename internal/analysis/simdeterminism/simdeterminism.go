// Package simdeterminism implements the rackvet analyzer guarding the
// simulator's bit-exact determinism invariant.
//
// The whole experimental methodology rests on runs replaying exactly:
// the replay tests and the wheel-vs-heap differential oracle compare
// Results byte for byte, and the flight recorder's observer-only
// guarantee is stated as byte-identity too. Three code shapes can break
// that silently, and Go makes one of them actively treacherous:
//
//   - Map iteration: Go randomizes map range order per iteration, so a
//     loop body that schedules engine events, writes exported result
//     state, records trace/stats samples, or draws randomness in map
//     order produces a different event/draw sequence every run. Bodies
//     that only do commutative work (count, sum integers, delete keys,
//     take max) are harmless; a human asserts that with a
//     `//rackvet:commutative <why>` directive. Everything else iterates
//     sorted keys or a deterministically ordered slice.
//   - Global math/rand: package-level rand functions share one process-
//     global stream (seeded or not), so one component's draw count
//     perturbs every other component. Components fork seeded sim.RNG
//     streams instead.
//   - Goroutines: the engine is single-threaded by design; a goroutine
//     on the event path reintroduces scheduler nondeterminism.
//
// Reachability is intra-package: a map-range body that calls a local
// function reaching a sink (transitively, to a fixed point) is flagged
// at the range statement. Calls through function values and interfaces
// are not resolved — a known, documented approximation; the replay tests
// remain the dynamic backstop for what this static gate cannot see.
package simdeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"rackblox/internal/analysis"
)

// Analyzer flags nondeterministic constructs in simulation packages.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc: "flag order-sensitive map iteration, global math/rand, and goroutine spawns " +
		"in simulation packages (//rackvet:commutative for order-insensitive map bodies)",
	Applies: applies,
	Run:     run,
}

// simPackages is the determinism perimeter: the packages whose code runs
// on (or drives) the event path.
var simPackages = map[string]bool{
	"rackblox/internal/sim":         true,
	"rackblox/internal/core":        true,
	"rackblox/internal/ec":          true,
	"rackblox/internal/switchsim":   true,
	"rackblox/internal/experiments": true,
}

func applies(pkgPath string) bool { return simPackages[pkgPath] }

// randConstructors are the math/rand package-level functions that only
// build generators; everything else at package level draws from (or
// reseeds) the shared global stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// sink classifies why a statement makes iteration order observable.
type sink int

const (
	sinkNone     sink = 0
	sinkSchedule sink = 1 << iota // Engine.At/After/AtNamed/AfterNamed/SetTick
	sinkExported                  // write to an exported field (Result and friends)
	sinkObserver                  // call into internal/trace or internal/stats
	sinkRandom                    // sim.RNG or math/rand draw
)

func (s sink) describe() string {
	var parts []string
	if s&sinkSchedule != 0 {
		parts = append(parts, "schedules engine events")
	}
	if s&sinkExported != 0 {
		parts = append(parts, "writes exported result state")
	}
	if s&sinkObserver != 0 {
		parts = append(parts, "records trace/stats samples")
	}
	if s&sinkRandom != 0 {
		parts = append(parts, "draws randomness")
	}
	return strings.Join(parts, ", ")
}

type checker struct {
	pass *analysis.Pass
	// summaries aggregates, per locally declared function, the sinks its
	// body hits directly and the local functions it calls.
	summaries map[*types.Func]*summary
}

type summary struct {
	direct  sink
	callees map[*types.Func]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, summaries: map[*types.Func]*summary{}}

	// Pass 1: per-function sink summaries for intra-package reachability.
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &summary{callees: map[*types.Func]bool{}}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				s.direct |= c.directSink(n)
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := analysis.Callee(pass.TypesInfo, call); callee != nil &&
						callee.Pkg() == pass.Pkg {
						s.callees[callee] = true
					}
				}
				return true
			})
			c.summaries[fn] = s
		}
	}
	// Propagate callee sinks to a fixed point.
	for changed := true; changed; {
		changed = false
		for _, s := range c.summaries {
			for callee := range s.callees {
				if cs := c.summaries[callee]; cs != nil && s.direct|cs.direct != s.direct {
					s.direct |= cs.direct
					changed = true
				}
			}
		}
	}

	// Pass 2: report.
	pass.CheckDirectiveRationales("commutative")
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				// The shard runner is the sanctioned exception: its
				// worker-per-shard pool is what lets ShardGroup.Run stay
				// byte-identical to RunSequential (goroutinediscipline
				// carries the same carve-out).
				if !pass.InShardRunnerFile(n.Pos()) {
					pass.Reportf(n.Pos(),
						"goroutine spawn in simulation code: the engine is single-threaded; "+
							"goroutine interleaving breaks bit-exact replay")
				}
			case *ast.CallExpr:
				if fn := c.globalRand(n); fn != nil {
					pass.Reportf(n.Pos(),
						"global math/rand.%s shares one process-wide stream: draw counts in one "+
							"component perturb every other; fork a seeded sim.RNG instead", fn.Name())
				}
			case *ast.RangeStmt:
				c.checkRange(n)
			}
			return true
		})
	}
	return nil
}

// globalRand returns the callee when call is a package-level math/rand
// (or math/rand/v2) function that touches the shared global stream —
// i.e. anything but the generator constructors. Methods on explicitly
// constructed generators are fine here; they only become a finding when
// drawn in map order (see directSink).
func (c *checker) globalRand(call *ast.CallExpr) *types.Func {
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if path := fn.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || randConstructors[fn.Name()] {
		return nil
	}
	return fn
}

// checkRange flags a map-range whose body (transitively) reaches a sink.
func (c *checker) checkRange(rng *ast.RangeStmt) {
	t := c.pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if c.pass.Directive(rng.Pos(), "commutative") {
		return
	}
	var reached sink
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		reached |= c.directSink(n)
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := analysis.Callee(c.pass.TypesInfo, call); callee != nil {
				if s := c.summaries[callee]; s != nil {
					reached |= s.direct
				}
			}
		}
		return true
	})
	if reached == sinkNone {
		return
	}
	c.pass.Reportf(rng.Pos(),
		"map iteration order is randomized per run and this body %s: iterate sorted keys "+
			"(or a deterministically ordered slice), or annotate //rackvet:commutative with a rationale",
		reached.describe())
}

// directSink classifies one AST node as a determinism-relevant side
// effect.
func (c *checker) directSink(n ast.Node) sink {
	info := c.pass.TypesInfo
	switch n := n.(type) {
	case *ast.CallExpr:
		switch analysis.EngineMethod(info, n) {
		case "At", "After", "AtNamed", "AfterNamed", "SetTick":
			return sinkSchedule
		}
		fn := analysis.Callee(info, n)
		if fn == nil || fn.Pkg() == nil {
			return sinkNone
		}
		path := fn.Pkg().Path()
		switch {
		case analysis.PkgPathIs(fn.Pkg(), "rackblox/internal/trace"),
			analysis.PkgPathIs(fn.Pkg(), "rackblox/internal/stats"):
			return sinkObserver
		case path == "math/rand" || path == "math/rand/v2":
			// Methods on generator values draw too — from a stream whose
			// position now depends on iteration order.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil &&
				randConstructors[fn.Name()] {
				return sinkNone
			}
			return sinkRandom
		}
		if named := analysis.ReceiverNamed(fn); named != nil &&
			named.Obj().Name() == "RNG" &&
			analysis.PkgPathIs(named.Obj().Pkg(), "rackblox/internal/sim") {
			return sinkRandom
		}
		return sinkNone
	case *ast.AssignStmt:
		var s sink
		for _, lhs := range n.Lhs {
			s |= c.exportedWrite(lhs)
		}
		return s
	case *ast.IncDecStmt:
		return c.exportedWrite(n.X)
	}
	return sinkNone
}

// exportedWrite reports whether an assignment target writes through an
// exported struct field — the shape of Result mutations and exported
// slice/trace sinks (res.Rows = append(res.Rows, ...)).
func (c *checker) exportedWrite(lhs ast.Expr) sink {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			sel := c.pass.TypesInfo.Selections[e]
			if sel != nil && sel.Kind() == types.FieldVal && e.Sel.IsExported() {
				return sinkExported
			}
			lhs = e.X
		default:
			return sinkNone
		}
	}
}
