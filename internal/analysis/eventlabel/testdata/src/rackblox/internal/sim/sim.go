// Package sim is a miniature of the real engine: just enough surface for
// the analyzers' receiver-type matching. The At/After forwarders below
// delegate with the empty label exactly like the real ones — the
// structural exemption the eventlabel suite asserts.
package sim

// Time is virtual simulation time in nanoseconds.
type Time int64

// EventFunc is an event handler.
type EventFunc func(now Time)

// Engine is the fixture engine.
type Engine struct {
	now Time
}

func (e *Engine) Now() Time { return e.now }

func (e *Engine) Pending() int { return 0 }

func (e *Engine) Processed() uint64 { return 0 }

func (e *Engine) ProcessedBy() map[string]uint64 { return nil }

func (e *Engine) At(t Time, fn EventFunc) { e.AtNamed(t, "", fn) }

func (e *Engine) AtNamed(t Time, label string, fn EventFunc) { _, _ = label, fn }

func (e *Engine) After(d Time, fn EventFunc) { e.AfterNamed(d, "", fn) }

func (e *Engine) AfterNamed(d Time, label string, fn EventFunc) { _, _ = label, fn }

func (e *Engine) SetTick(interval Time, fn func(at Time)) { _ = fn }

// RNG is the fixture per-component random stream.
type RNG struct{ state uint64 }

func NewRNG(seed int64) *RNG { return &RNG{state: uint64(seed)} }

func (r *RNG) Intn(n int) int { return int(r.state) % n }

func (r *RNG) Int63n(n int64) int64 { return int64(r.state) % n }
