// Test files may schedule unlabeled events freely. No want comments.
package demo

import "rackblox/internal/sim"

func kickoffForTest(eng *sim.Engine) {
	eng.At(1, func(sim.Time) {})
	eng.After(1, func(sim.Time) {})
}
