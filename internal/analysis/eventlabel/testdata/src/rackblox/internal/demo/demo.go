// Package demo is an eventlabel fixture: unlabeled and empty-label
// schedules are findings; labeled, dynamic-label, and directive-escaped
// calls are not.
package demo

import "rackblox/internal/sim"

func schedule(eng *sim.Engine) {
	eng.At(5, func(sim.Time) {})             // want "unlabeled Engine.At call"
	eng.After(5, func(sim.Time) {})          // want "unlabeled Engine.After call"
	eng.AtNamed(5, "", func(sim.Time) {})    // want "empty label"
	eng.AfterNamed(5, "", func(sim.Time) {}) // want "empty label"

	eng.AtNamed(5, "demo.work", func(sim.Time) {})
	eng.AfterNamed(5, "demo.work", func(sim.Time) {})
	eng.SetTick(10, func(sim.Time) {})
}

// Dynamic labels are assumed meaningful: only compile-time-empty
// constants are findings.
func dynamic(eng *sim.Engine, label string) {
	eng.AtNamed(5, label, func(sim.Time) {})
	eng.AfterNamed(5, pick(), func(sim.Time) {})
}

func pick() string { return "demo.pick" }

// The directive opts out deliberate unlabeled schedules, end-of-line or
// own-line.
func escaped(eng *sim.Engine) {
	eng.After(5, func(sim.Time) {}) //rackvet:unlabeled prototype scaffolding, intentionally bucketed under other
	//rackvet:unlabeled own-line placement works too
	eng.At(5, func(sim.Time) {})
}

// A bare directive still suppresses the schedule finding, but is itself
// a finding: the rationale is where the human's proof lives.
func bareEscape(eng *sim.Engine) {
	//rackvet:unlabeled // want "bare //rackvet:unlabeled directive"
	eng.After(5, func(sim.Time) {})
}
