// cmd/ is outside the analyzer's scope: driver code may schedule
// unlabeled warmup events. No want comments.
package main

import "rackblox/internal/sim"

func main() {
	eng := &sim.Engine{}
	eng.At(0, func(sim.Time) {})
	eng.After(1, func(sim.Time) {})
}
