// Package eventlabel implements the rackvet analyzer that makes
// Result.EventsByHandler accounting provably complete.
//
// The engine's per-handler event counters (Engine.ProcessedBy, surfaced
// as Result.EventsByHandler) bucket every event under its schedule-time
// label; events scheduled through the unlabeled At/After variants all
// collapse into the "other" bucket, silently eroding the tail-attribution
// and per-handler breakdowns the observability layer promises. PR 7 had
// to hunt down core's one unlabeled scenario driver by hand; this check
// makes that audit mechanical: in simulation packages every event must be
// scheduled through AtNamed/AfterNamed with a non-empty label.
//
// The sim package's own At/After forwarders (which delegate to the Named
// variants with the empty label, defining the "other" bucket) are the
// one structural exemption. A deliberate unlabeled schedule elsewhere
// can carry a `//rackvet:unlabeled <why>` directive, which the golden
// suite exercises; the real tree has none.
package eventlabel

import (
	"go/ast"
	"go/constant"
	"strings"

	"rackblox/internal/analysis"
)

// Analyzer requires labeled event scheduling in simulation packages.
var Analyzer = &analysis.Analyzer{
	Name: "eventlabel",
	Doc: "require Engine.AtNamed/AfterNamed (non-empty label) instead of At/After in " +
		"simulation packages so EventsByHandler accounting stays complete",
	Applies: applies,
	Run:     run,
}

func applies(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "rackblox/internal/")
}

// engineForwarder reports whether decl is one of sim.Engine's own
// At/After/AtNamed/AfterNamed methods — the definitions being enforced,
// which must themselves be allowed to delegate.
func engineForwarder(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	if decl == nil || decl.Recv == nil || !analysis.PkgPathIs(pass.Pkg, "rackblox/internal/sim") {
		return false
	}
	switch decl.Name.Name {
	case "At", "After", "AtNamed", "AfterNamed":
		return true
	}
	return false
}

func run(pass *analysis.Pass) error {
	pass.CheckDirectiveRationales("unlabeled")
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || engineForwarder(pass, decl) {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch m := analysis.EngineMethod(pass.TypesInfo, call); m {
				case "At", "After":
					if pass.Directive(call.Pos(), "unlabeled") {
						return true
					}
					pass.Reportf(call.Pos(),
						"unlabeled Engine.%s call: use %sNamed with a stable handler label so "+
							"EventsByHandler accounting stays complete (//rackvet:unlabeled to opt out)",
						m, m)
				case "AtNamed", "AfterNamed":
					if len(call.Args) < 2 {
						return true
					}
					tv, ok := pass.TypesInfo.Types[call.Args[1]]
					if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
						return true // dynamic label; assumed meaningful
					}
					if constant.StringVal(tv.Value) != "" {
						return true
					}
					if pass.Directive(call.Pos(), "unlabeled") {
						return true
					}
					pass.Reportf(call.Pos(),
						"Engine.%s with empty label counts under \"other\": give the handler a "+
							"stable label (//rackvet:unlabeled to opt out)", m)
				}
				return true
			})
		}
	}
	return nil
}
