package eventlabel_test

import (
	"testing"

	"rackblox/internal/analysis/analysistest"
	"rackblox/internal/analysis/eventlabel"
)

// TestEventlabel exercises unlabeled/empty-label findings, the dynamic
// label allowance, the //rackvet:unlabeled escape hatch (both
// placements), the _test.go and cmd/ allowlists, and — by running over
// the fixture sim package itself — the exemption for the engine's own
// At/After forwarder declarations.
func TestEventlabel(t *testing.T) {
	analysistest.Run(t, eventlabel.Analyzer,
		"rackblox/internal/sim",
		"rackblox/internal/demo",
		"rackblox/cmd/demo",
	)
}
