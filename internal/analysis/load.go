package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one source-loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// goList runs `go list -json -export -deps patterns...` in dir and
// returns the decoded package stream. Export data for every dependency
// comes out of the build cache, so imports resolve without recompiling
// the world on each analysis run.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-json", "-export", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	return pkgs, nil
}

// exportImporter resolves import paths through compiler export data
// files, the way the compiler itself would.
type exportImporter struct {
	gc       types.Importer
	fallback map[string]string // import path -> export data file
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{fallback: exports}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ei.fallback[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.gc.Import(path)
}

// typeCheck parses and type-checks one package from source files.
func typeCheck(fset *token.FileSet, pkgPath string, files []string, imp types.Importer) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: parsed, Pkg: pkg, TypesInfo: info}, nil
}

// Load resolves patterns with the go tool from dir and type-checks every
// matched (non-dependency-only) package from source. Dependencies come
// from compiler export data, so each target is checked independently.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || p.ImportPath == "unsafe" {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, name := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, name)
		}
		pkg, err := typeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// ExportLookup resolves patterns (std packages included) to compiler
// export data files via `go list -export -deps`, for importers that must
// type-check source against real dependencies without a full build —
// the analysistest fixture loader.
func ExportLookup(dir string, patterns ...string) (map[string]string, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// NewImporter returns an importer over compiler export data files keyed
// by import path (see ExportLookup).
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return newExportImporter(fset, exports)
}

// TypeCheck parses and type-checks one package from source files with
// dependencies resolved through imp.
func TypeCheck(fset *token.FileSet, pkgPath string, files []string, imp types.Importer) (*Package, error) {
	return typeCheck(fset, pkgPath, files, imp)
}

// RunAnalyzers executes every applicable analyzer over the loaded
// packages, returning position-sorted diagnostics per package.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) (map[string][]Diagnostic, error) {
	found := map[string][]Diagnostic{}
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.PkgPath) {
				continue
			}
			name := a.Name
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				d.Message += " [" + name + "]"
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
		if len(diags) > 0 {
			SortDiagnostics(pkg.Fset, diags)
			found[pkg.PkgPath] = diags
		}
	}
	return found, nil
}
