package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// UnitConfig mirrors cmd/go's internal vetConfig: the JSON description
// of one package a `go vet -vettool=...` driver hands the tool. Field
// names and meanings must track cmd/go/internal/work.vetConfig.
type UnitConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes the single package described by a cmd/go vet config
// file, printing diagnostics to stderr in the usual file:line:col form.
// It returns the process exit code: 0 clean, 1 for driver errors, 2 when
// diagnostics were reported (the exit contract go vet expects).
//
// rackvet keeps no cross-package facts, so the "vetx" output the driver
// caches is always an empty file; dependency packages outside the
// analyzers' scope are dispatched without even being parsed, which keeps
// `go vet -vettool=rackvet ./...` fast despite the driver visiting the
// whole (std-including) dependency graph.
func RunUnit(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rackvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver caches and re-feeds this file on future runs; absence
	// would be treated as tool failure.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // facts-only dispatch for a dependency; we keep none
	}
	var applicable []*Analyzer
	for _, a := range analyzers {
		if a.Applies == nil || a.Applies(cfg.ImportPath) {
			applicable = append(applicable, a)
		}
	}
	if len(applicable) == 0 || len(cfg.GoFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	base := newExportImporter(fset, cfg.PackageFile)
	// Source import paths may differ from resolved package paths
	// (vendoring); cfg.ImportMap carries the translation.
	imp := &mappedImporter{m: cfg.ImportMap, next: base}
	pkg, err := typeCheck(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "rackvet: %v\n", err)
		return 1
	}

	var diags []Diagnostic
	for _, a := range applicable {
		name := a.Name
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
		}
		pass.Report = func(d Diagnostic) {
			d.Message += " [" + name + "]"
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "rackvet: %s: %v\n", a.Name, err)
			return 1
		}
	}
	if len(diags) == 0 {
		return 0
	}
	SortDiagnostics(fset, diags)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", relPosition(fset, d.Pos, cfg.Dir), d.Message)
	}
	return 2
}

// mappedImporter rewrites source import paths to resolved package paths
// before delegating.
type mappedImporter struct {
	m    map[string]string
	next *exportImporter
}

func (mi *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.next.Import(path)
}

// relPosition renders pos with the filename relativized to dir when
// possible, matching go vet's own diagnostic style.
func relPosition(fset *token.FileSet, pos token.Pos, dir string) string {
	p := fset.Position(pos)
	if dir != "" {
		if rel, err := filepath.Rel(dir, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			p.Filename = rel
		}
	}
	return p.String()
}
