package switchsim

import (
	"rackblox/internal/packet"
	"rackblox/internal/sim"
)

// Qdisc is an egress scheduling discipline. Admit returns the virtual time
// at which the packet may leave the switch; the difference from now is
// queueing delay, charged to the packet's INT latency.
type Qdisc interface {
	Name() string
	Admit(pkt packet.Packet, now sim.Time) sim.Time
}

// Passthrough forwards immediately (no cross-traffic contention).
type Passthrough struct{}

func (Passthrough) Name() string                                 { return "None" }
func (Passthrough) Admit(_ packet.Packet, now sim.Time) sim.Time { return now }

// TokenBucket rate-limits each flow (source IP), the isolation mechanism
// VDC uses end to end (§4.1 "multi-resource token bucket rate limiting").
type TokenBucket struct {
	// Rate is the sustained packets/second per flow.
	Rate float64
	// Burst is the bucket depth in packets.
	Burst float64

	buckets map[uint32]*bucketState
}

type bucketState struct {
	tokens float64
	last   sim.Time
}

// NewTokenBucket builds the policy with the given per-flow rate and burst.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate <= 0 {
		rate = 100_000
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{Rate: rate, Burst: burst, buckets: map[uint32]*bucketState{}}
}

func (t *TokenBucket) Name() string { return "TB" }

func (t *TokenBucket) Admit(pkt packet.Packet, now sim.Time) sim.Time {
	b, ok := t.buckets[pkt.SrcIP]
	if !ok {
		b = &bucketState{tokens: t.Burst, last: now}
		t.buckets[pkt.SrcIP] = b
	}
	// Refill.
	b.tokens += float64(now-b.last) / 1e9 * t.Rate
	if b.tokens > t.Burst {
		b.tokens = t.Burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return now
	}
	// Wait until one token accumulates.
	deficit := 1 - b.tokens
	wait := sim.Time(deficit / t.Rate * 1e9)
	b.tokens = 0
	b.last = now + wait
	return now + wait
}

// FairQueue approximates per-flow fair queuing (start-time fair queuing
// with equal weights): each flow's packets are stamped with virtual finish
// times one service quantum apart, so N active flows each get 1/N of the
// egress capacity.
type FairQueue struct {
	// Quantum is the egress service time of one packet at full rate.
	Quantum sim.Time

	finish map[uint32]sim.Time
	// virtual clock lower-bounds finish tags so idle flows do not bank
	// unbounded credit.
	vclock sim.Time
}

// NewFairQueue builds the policy. Quantum <= 0 selects 1us (small packets
// at tens of Gb/s).
func NewFairQueue(quantum sim.Time) *FairQueue {
	if quantum <= 0 {
		quantum = sim.Microsecond
	}
	return &FairQueue{Quantum: quantum, finish: map[uint32]sim.Time{}}
}

func (f *FairQueue) Name() string { return "FQ" }

func (f *FairQueue) Admit(pkt packet.Packet, now sim.Time) sim.Time {
	if now > f.vclock {
		f.vclock = now
	}
	start := f.finish[pkt.SrcIP]
	if start < f.vclock {
		start = f.vclock
	}
	// Service cost grows with the number of flows that are currently
	// backlogged (finish tag still in the future).
	active := 1
	for _, fin := range f.finish {
		if fin > now {
			active++
		}
	}
	end := start + f.Quantum*sim.Time(active)
	f.finish[pkt.SrcIP] = end
	return end
}

// Priority models a strict-priority egress where periodic bursts of
// higher-priority traffic (generated per [72] in §4.5.2) occupy the port
// and delay storage packets until the burst drains.
type Priority struct {
	// Period is the burst repetition interval.
	Period sim.Time
	// BurstLen is how long each high-priority burst occupies the egress.
	BurstLen sim.Time
}

// NewPriority builds the policy; zeros select a 10ms period with 1ms
// bursts.
func NewPriority(period, burst sim.Time) *Priority {
	if period <= 0 {
		period = 10 * sim.Millisecond
	}
	if burst <= 0 {
		burst = sim.Millisecond
	}
	if burst >= period {
		burst = period / 2
	}
	return &Priority{Period: period, BurstLen: burst}
}

func (p *Priority) Name() string { return "Priority" }

func (p *Priority) Admit(pkt packet.Packet, now sim.Time) sim.Time {
	phase := now % p.Period
	if phase < p.BurstLen {
		// Inside a high-priority burst: wait for it to end.
		return now + (p.BurstLen - phase)
	}
	return now
}

// QdiscByName builds the §4.5.2 policies by display name.
func QdiscByName(name string) Qdisc {
	switch name {
	case "TB":
		return NewTokenBucket(200_000, 32)
	case "FQ":
		return NewFairQueue(0)
	case "Priority":
		return NewPriority(0, 0)
	default:
		return Passthrough{}
	}
}
