package switchsim

import (
	"testing"

	"rackblox/internal/packet"
	"rackblox/internal/sim"
)

// FuzzStripeTableReplay drives a two-rack stripe group with a
// fuzzer-chosen sequence of control-plane mutations — failovers,
// remote-dead marks, replacements, ToR power cycles with full table
// replay — interleaved with data-plane reads, and checks the routing
// invariants that the recovery lifecycle depends on:
//
//   - the switch never panics and never duplicates a packet;
//   - a forwarded read always targets a registered member's address;
//   - a read for a replaced member is never forwarded to the old id;
//   - packets never exceed the handoff TTL.
func FuzzStripeTableReplay(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0x33})
	f.Add([]byte{0x40, 0x01, 0x52, 0x40, 0x63})                   // fail, replace, cycle
	f.Add([]byte{0x70, 0x71, 0x40, 0x41, 0x00, 0x10, 0x20})       // darken both, probe
	f.Add([]byte{0x52, 0x52, 0x63, 0x63, 0x02, 0x12, 0x22})       // double replace+cycle
	f.Add([]byte{0x40, 0x50, 0x60, 0x70, 0x00, 0x30, 0x61, 0x05}) // mixed churn
	f.Fuzz(func(t *testing.T, ops []byte) {
		const n = 6
		eng := sim.NewEngine()
		var tors [2]*Switch
		var out [2][]packet.Packet
		for j := 0; j < 2; j++ {
			j := j
			tors[j] = New(eng, nil, func(p packet.Packet) { out[j] = append(out[j], p) })
		}
		for j := 0; j < 2; j++ {
			tors[j].ConfigureRack(j, func(pkt packet.Packet, rack int) {
				tors[rack].Process(pkt)
			})
		}
		ids := make([]uint32, n)
		hosts := make([]uint32, n)
		racks := make([]int, n)
		for i := 0; i < n; i++ {
			ids[i] = uint32(500 + i)
			hosts[i] = uint32(0x0A000050 + i)
			racks[i] = i % 2
		}
		replay := func(j int) {
			tors[j].ResetTables()
			for i := 0; i < n; i++ {
				peer := (i + 2) % n // same-rack neighbor
				tors[j].InstallVSSD(ids[i], hosts[i], ids[peer], hosts[peer])
			}
			tors[j].RegisterStripeMembers(ids, racks)
		}
		replay(0)
		replay(1)

		// alias mirrors each ToR's expected replacement table (forgotten
		// when that ToR power-cycles and replays); everReplaced mirrors
		// the control plane's discipline — a replaced member is dead, so
		// it never appears again as either side of a replacement.
		alias := [2]map[uint32]uint32{make(map[uint32]uint32), make(map[uint32]uint32)}
		everReplaced := make(map[uint32]bool)
		for _, b := range ops {
			i := int(b) % n
			j := racks[i]
			switch (b >> 4) % 8 {
			case 0, 1: // data-plane read probe entering the member's home ToR
				tors[j].Process(packet.Packet{
					Op: packet.OpRead, VSSD: ids[i], DstIP: hosts[i], LPN: uint32(b),
				})
			case 2: // write probe
				tors[j].Process(packet.Packet{
					Op: packet.OpWrite, VSSD: ids[i], DstIP: hosts[i], LPN: uint32(b),
				})
			case 3: // GC announcement
				tors[j].Process(packet.Packet{
					Op: packet.OpGC, GC: packet.GCRegular, VSSD: ids[i], SrcIP: hosts[i],
				})
			case 4: // failover to the same-rack neighbor
				tors[j].Failover(ids[i], ids[(i+2)%n])
				tors[1-j].MarkRemoteDead(ids[i])
			case 5: // repair completes: re-register the replacement
				repl := ids[(i+2)%n]
				if !everReplaced[ids[i]] && !everReplaced[repl] {
					everReplaced[ids[i]] = true
					for tj := 0; tj < 2; tj++ {
						tors[tj].ReplaceStripeMember(ids[i], repl)
						if _, ok := tors[tj].ReplacedBy(ids[i]); ok {
							alias[tj][ids[i]] = repl
						}
					}
				}
			case 6: // power-cycle the ToR and replay its tables
				tors[j].SetDown(true)
				tors[j].SetDown(false)
				replay(j)
				alias[j] = make(map[uint32]uint32) // replay forgets replacements
			case 7: // darken without revival: packets must be dropped
				tors[j].SetDown(true)
			}
			eng.Run()
		}

		// Final probes: one read per member through its home ToR.
		out[0], out[1] = nil, nil
		for i := 0; i < n; i++ {
			tors[racks[i]].Process(packet.Packet{
				Op: packet.OpRead, VSSD: ids[i], DstIP: hosts[i], LPN: uint32(i),
			})
			eng.Run()
		}
		known := make(map[uint32]uint32, n)
		for i := 0; i < n; i++ {
			known[ids[i]] = hosts[i]
		}
		for j := 0; j < 2; j++ {
			for _, p := range out[j] {
				if p.Op != packet.OpRead {
					continue
				}
				host, ok := known[p.VSSD]
				if !ok {
					t.Fatalf("read forwarded to unknown member %d", p.VSSD)
				}
				if p.DstIP != host {
					t.Fatalf("read for %d forwarded to %x, member lives at %x",
						p.VSSD, p.DstIP, host)
				}
				if _, stale := alias[j][p.VSSD]; stale {
					t.Fatalf("ToR %d forwarded a read to replaced member %d", j, p.VSSD)
				}
				if p.Handoffs > maxHandoffs {
					t.Fatalf("packet exceeded handoff TTL: %d", p.Handoffs)
				}
			}
		}
	})
}
