package switchsim

import (
	"testing"
	"testing/quick"

	"rackblox/internal/packet"
	"rackblox/internal/sim"
)

const (
	vssdA   = uint32(1)
	vssdB   = uint32(12) // replica of A
	serverA = uint32(0x0A000010)
	serverB = uint32(0x0A000014)
	client  = uint32(0x0A000001)
)

// harness wires a switch to a capture buffer and registers the A/B pair.
type harness struct {
	eng *sim.Engine
	sw  *Switch
	out []packet.Packet
}

func newHarness(t *testing.T, q Qdisc) *harness {
	t.Helper()
	h := &harness{eng: sim.NewEngine()}
	h.sw = New(h.eng, q, func(p packet.Packet) { h.out = append(h.out, p) })
	h.sw.Process(packet.Packet{
		Op: packet.OpCreateVSSD, VSSD: vssdA, SrcIP: serverA,
		ReplicaVSSD: vssdB, ReplicaIP: serverB,
	})
	h.sw.Process(packet.Packet{
		Op: packet.OpCreateVSSD, VSSD: vssdB, SrcIP: serverB,
		ReplicaVSSD: vssdA, ReplicaIP: serverA,
	})
	h.eng.Run()
	return h
}

func (h *harness) send(p packet.Packet) []packet.Packet {
	h.out = nil
	h.sw.Process(p)
	h.eng.Run()
	return h.out
}

func TestCreateRegistersTables(t *testing.T) {
	h := newHarness(t, nil)
	if !h.sw.Registered(vssdA) || !h.sw.Registered(vssdB) {
		t.Fatal("vSSDs not registered")
	}
	if r, _ := h.sw.ReplicaOf(vssdA); r != vssdB {
		t.Fatalf("replica of A = %d, want %d", r, vssdB)
	}
	if ip, _ := h.sw.DestIP(vssdB); ip != serverB {
		t.Fatalf("dest of B = %x, want %x", ip, serverB)
	}
	if h.sw.TableSizeBytes() == 0 {
		t.Fatal("table size accounting empty")
	}
}

func TestDeleteRemovesTables(t *testing.T) {
	h := newHarness(t, nil)
	h.send(packet.Packet{Op: packet.OpDelVSSD, VSSD: vssdA})
	if h.sw.Registered(vssdA) {
		t.Fatal("vSSD A still registered after del_vssd")
	}
	if h.sw.Registered(vssdB) == false {
		t.Fatal("del_vssd removed the wrong entry")
	}
}

func TestReadForwardedWhenIdle(t *testing.T) {
	h := newHarness(t, nil)
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: vssdA, SrcIP: client, DstIP: serverA})
	if len(out) != 1 {
		t.Fatalf("forwarded %d packets, want 1", len(out))
	}
	if out[0].DstIP != serverA || out[0].VSSD != vssdA {
		t.Fatalf("idle read rewritten: %+v", out[0])
	}
	if h.sw.Stats().Redirected != 0 {
		t.Fatal("idle read counted as redirected")
	}
}

func setGC(h *harness, vssd uint32, field packet.GCField) []packet.Packet {
	srv := serverA
	if vssd == vssdB {
		srv = serverB
	}
	return h.send(packet.Packet{Op: packet.OpGC, VSSD: vssd, GC: field, SrcIP: srv, DstIP: 0xFFFF})
}

func TestReadRedirectedDuringGC(t *testing.T) {
	h := newHarness(t, nil)
	setGC(h, vssdA, packet.GCRegular)
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: vssdA, SrcIP: client, DstIP: serverA})
	if out[0].DstIP != serverB || out[0].VSSD != vssdB {
		t.Fatalf("read not redirected to replica: %+v", out[0])
	}
	if h.sw.Stats().Redirected != 1 {
		t.Fatal("redirect not counted")
	}
}

func TestReadNotRedirectedWhenBothCollect(t *testing.T) {
	h := newHarness(t, nil)
	setGC(h, vssdA, packet.GCRegular)
	setGC(h, vssdB, packet.GCRegular)
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: vssdA, SrcIP: client, DstIP: serverA})
	if out[0].DstIP != serverA {
		t.Fatalf("read redirected although both replicas collect: %+v", out[0])
	}
}

func TestWritesNeverRedirected(t *testing.T) {
	h := newHarness(t, nil)
	setGC(h, vssdA, packet.GCRegular)
	out := h.send(packet.Packet{Op: packet.OpWrite, VSSD: vssdA, SrcIP: client, DstIP: serverA})
	if out[0].DstIP != serverA || out[0].VSSD != vssdA {
		t.Fatalf("write was redirected: %+v", out[0])
	}
}

func TestRegularGCAlwaysAccepted(t *testing.T) {
	h := newHarness(t, nil)
	setGC(h, vssdB, packet.GCRegular) // replica already collecting
	out := setGC(h, vssdA, packet.GCRegular)
	if len(out) != 1 || out[0].GC != packet.GCAccept {
		t.Fatalf("regular GC reply = %+v, want accept", out)
	}
	if out[0].DstIP != serverA {
		t.Fatalf("reply not routed back to requester: %x", out[0].DstIP)
	}
	if !h.sw.GCStatus(vssdA) {
		t.Fatal("GC status not set after regular accept")
	}
}

func TestSoftGCAcceptedWhenReplicaIdle(t *testing.T) {
	h := newHarness(t, nil)
	out := setGC(h, vssdA, packet.GCSoft)
	if out[0].GC != packet.GCAccept {
		t.Fatalf("soft GC with idle replica = %v, want accept", out[0].GC)
	}
	if h.sw.Stats().Recirculations != 1 {
		t.Fatal("soft GC did not recirculate")
	}
}

func TestSoftGCDelayedWhenReplicaCollecting(t *testing.T) {
	h := newHarness(t, nil)
	setGC(h, vssdB, packet.GCRegular)
	out := setGC(h, vssdA, packet.GCSoft)
	if out[0].GC != packet.GCDelay {
		t.Fatalf("soft GC with busy replica = %v, want delay", out[0].GC)
	}
	if h.sw.GCStatus(vssdA) {
		t.Fatal("delayed vSSD left marked as collecting")
	}
	if h.sw.Stats().GCDelayed != 1 {
		t.Fatal("delay not counted")
	}
}

func TestBackgroundGCAccepted(t *testing.T) {
	h := newHarness(t, nil)
	out := setGC(h, vssdA, packet.GCBackground)
	if out[0].GC != packet.GCAccept {
		t.Fatalf("background GC = %v, want accept", out[0].GC)
	}
}

func TestFinishClearsBothTables(t *testing.T) {
	h := newHarness(t, nil)
	setGC(h, vssdA, packet.GCRegular)
	out := setGC(h, vssdA, packet.GCFinish)
	if len(out) != 0 {
		t.Fatalf("finish produced %d replies, want 0", len(out))
	}
	if h.sw.GCStatus(vssdA) {
		t.Fatal("replica-table GC bit not cleared")
	}
	// A read must no longer be redirected.
	rd := h.send(packet.Packet{Op: packet.OpRead, VSSD: vssdA, SrcIP: client, DstIP: serverA})
	if rd[0].DstIP != serverA {
		t.Fatal("read redirected after finish")
	}
}

func TestGCForUnknownVSSDDropped(t *testing.T) {
	h := newHarness(t, nil)
	out := h.send(packet.Packet{Op: packet.OpGC, VSSD: 999, GC: packet.GCRegular})
	if len(out) != 0 {
		t.Fatal("gc_op for unknown vSSD forwarded")
	}
	if h.sw.Stats().Dropped == 0 {
		t.Fatal("drop not counted")
	}
}

func TestINTLatencyAdded(t *testing.T) {
	h := newHarness(t, nil)
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: vssdA, SrcIP: client, DstIP: serverA, LatUS: 7})
	if out[0].LatUS < 7 {
		t.Fatalf("INT latency lost: %d", out[0].LatUS)
	}
}

func TestDropRateInjection(t *testing.T) {
	h := newHarness(t, nil)
	h.sw.SetDropRate(1.0, sim.NewRNG(1))
	out := setGC(h, vssdA, packet.GCRegular)
	if len(out) != 0 {
		t.Fatal("gc reply not dropped at rate 1.0")
	}
	// State still updated: the switch marked GC before the reply was lost.
	if !h.sw.GCStatus(vssdA) {
		t.Fatal("GC state lost with dropped reply")
	}
}

func TestGCStatusConsistencyProperty(t *testing.T) {
	// Property: after any gc_op sequence, the replica-table and
	// destination-table GC bits for a vSSD agree (the recirculation
	// consistency requirement of §3.5.1).
	f := func(ops []uint8) bool {
		h := &harness{eng: sim.NewEngine()}
		h.sw = New(h.eng, nil, func(p packet.Packet) {})
		h.sw.Process(packet.Packet{Op: packet.OpCreateVSSD, VSSD: vssdA, SrcIP: serverA, ReplicaVSSD: vssdB, ReplicaIP: serverB})
		h.sw.Process(packet.Packet{Op: packet.OpCreateVSSD, VSSD: vssdB, SrcIP: serverB, ReplicaVSSD: vssdA, ReplicaIP: serverA})
		for _, op := range ops {
			vssd := vssdA
			if op&1 == 1 {
				vssd = vssdB
			}
			var g packet.GCField
			switch (op >> 1) % 4 {
			case 0:
				g = packet.GCSoft
			case 1:
				g = packet.GCRegular
			case 2:
				g = packet.GCBackground
			case 3:
				g = packet.GCFinish
			}
			h.sw.Process(packet.Packet{Op: packet.OpGC, VSSD: vssd, GC: g, SrcIP: serverA})
		}
		h.eng.Run()
		for _, v := range []uint32{vssdA, vssdB} {
			re := h.sw.replica[v]
			de := h.sw.dest[v]
			if re.gc != de.gc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTokenBucketDelaysBursts(t *testing.T) {
	tb := NewTokenBucket(1000, 2) // 1k pps, burst 2
	now := sim.Time(0)
	p := packet.Packet{SrcIP: client}
	if tb.Admit(p, now) != now {
		t.Fatal("first packet delayed")
	}
	if tb.Admit(p, now) != now {
		t.Fatal("second packet (burst) delayed")
	}
	rel := tb.Admit(p, now)
	if rel <= now {
		t.Fatal("over-burst packet not delayed")
	}
	if rel != now+sim.Millisecond {
		t.Fatalf("delay = %d, want 1ms at 1k pps", rel-now)
	}
}

func TestTokenBucketPerFlow(t *testing.T) {
	tb := NewTokenBucket(1000, 1)
	now := sim.Time(0)
	tb.Admit(packet.Packet{SrcIP: 1}, now)
	// A different flow has its own bucket.
	if tb.Admit(packet.Packet{SrcIP: 2}, now) != now {
		t.Fatal("flows share a bucket")
	}
}

func TestTokenBucketRefill(t *testing.T) {
	tb := NewTokenBucket(1000, 1)
	p := packet.Packet{SrcIP: client}
	tb.Admit(p, 0)
	// After 10ms, 10 tokens worth accumulated (capped at burst 1).
	if rel := tb.Admit(p, 10*sim.Millisecond); rel != 10*sim.Millisecond {
		t.Fatalf("refilled packet delayed to %d", rel)
	}
}

func TestFairQueueSharesCapacity(t *testing.T) {
	fq := NewFairQueue(sim.Microsecond)
	now := sim.Time(0)
	// One flow alone: spacing ~1 quantum.
	r1 := fq.Admit(packet.Packet{SrcIP: 1}, now)
	// Second flow arrives: both backlogged, service slows.
	r2 := fq.Admit(packet.Packet{SrcIP: 2}, now)
	r1b := fq.Admit(packet.Packet{SrcIP: 1}, now)
	if r1b <= r1 {
		t.Fatalf("same-flow packets not serialized: %d then %d", r1, r1b)
	}
	if r2 < r1 {
		t.Fatal("new flow starved behind first flow")
	}
}

func TestPriorityBurstDelays(t *testing.T) {
	pr := NewPriority(10*sim.Millisecond, sim.Millisecond)
	// Inside the burst window: delayed to burst end.
	if rel := pr.Admit(packet.Packet{}, 100*sim.Microsecond); rel != sim.Millisecond {
		t.Fatalf("in-burst release = %d, want 1ms", rel)
	}
	// Outside: immediate.
	if rel := pr.Admit(packet.Packet{}, 5*sim.Millisecond); rel != 5*sim.Millisecond {
		t.Fatalf("out-of-burst release = %d", rel)
	}
}

func TestPriorityValidation(t *testing.T) {
	pr := NewPriority(0, 0)
	if pr.Period != 10*sim.Millisecond || pr.BurstLen != sim.Millisecond {
		t.Fatalf("defaults: %+v", pr)
	}
	pr2 := NewPriority(sim.Millisecond, 10*sim.Millisecond)
	if pr2.BurstLen >= pr2.Period {
		t.Fatal("burst >= period accepted")
	}
}

func TestQdiscByName(t *testing.T) {
	for _, n := range []string{"TB", "FQ", "Priority", "None"} {
		q := QdiscByName(n)
		if q == nil {
			t.Fatalf("QdiscByName(%q) = nil", n)
		}
		if n != "None" && q.Name() != n {
			t.Fatalf("QdiscByName(%q).Name() = %q", n, q.Name())
		}
	}
}

func TestQueueDelayCountedInINT(t *testing.T) {
	// With a priority qdisc, a packet admitted mid-burst must carry the
	// burst wait in its INT latency.
	h := &harness{eng: sim.NewEngine()}
	h.sw = New(h.eng, NewPriority(10*sim.Millisecond, sim.Millisecond), func(p packet.Packet) { h.out = append(h.out, p) })
	h.sw.Process(packet.Packet{Op: packet.OpCreateVSSD, VSSD: vssdA, SrcIP: serverA, ReplicaVSSD: vssdB, ReplicaIP: serverB})
	h.eng.Run()
	h.out = nil
	// Send a read at t=20.1ms, 100us into a burst window.
	h.eng.At(20*sim.Millisecond+100*sim.Microsecond, func(sim.Time) {
		h.sw.Process(packet.Packet{Op: packet.OpRead, VSSD: vssdA, SrcIP: client, DstIP: serverA})
	})
	h.eng.Run()
	if len(h.out) != 1 {
		t.Fatalf("forwarded %d", len(h.out))
	}
	// The packet waits out the remaining 0.9ms of the burst.
	if h.out[0].LatencyNS() < int64(800*sim.Microsecond) {
		t.Fatalf("INT latency %d missing the ~0.9ms queue delay", h.out[0].LatencyNS())
	}
}

func TestTableSizeAtRackScale(t *testing.T) {
	// §3.3: up to 64K vSSDs in a rack; both tables must fit the claimed
	// 1.3MB within the tens of MB of switch SRAM.
	eng := sim.NewEngine()
	sw := New(eng, nil, func(packet.Packet) {})
	for i := uint32(0); i < 64*1024; i++ {
		sw.Process(packet.Packet{
			Op: packet.OpCreateVSSD, VSSD: i, SrcIP: serverA,
			ReplicaVSSD: i ^ 1, ReplicaIP: serverB,
		})
	}
	eng.Run()
	size := sw.TableSizeBytes()
	if size > 1_400_000 {
		t.Fatalf("tables occupy %d bytes at 64K vSSDs; paper claims <= 1.3MB", size)
	}
	if size < 64*1024*9 {
		t.Fatalf("table accounting too small: %d bytes", size)
	}
}
