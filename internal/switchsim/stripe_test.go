package switchsim

import (
	"testing"

	"rackblox/internal/packet"
	"rackblox/internal/sim"
)

// ecHarness registers a 4-member stripe group (RS(2,2)-shaped) on four
// servers.
type ecHarness struct {
	eng   *sim.Engine
	sw    *Switch
	out   []packet.Packet
	ids   []uint32
	hosts []uint32
}

func newECHarness(t *testing.T) *ecHarness {
	t.Helper()
	h := &ecHarness{eng: sim.NewEngine()}
	h.sw = New(h.eng, nil, func(p packet.Packet) { h.out = append(h.out, p) })
	for i := 0; i < 4; i++ {
		h.ids = append(h.ids, uint32(200+i))
		h.hosts = append(h.hosts, uint32(0x0A000020+i))
	}
	for i, id := range h.ids {
		// EC members register like any vSSD; the replica field points at
		// the next member so non-stripe-aware paths degrade gracefully.
		next := h.ids[(i+1)%len(h.ids)]
		h.sw.Process(packet.Packet{
			Op: packet.OpCreateVSSD, VSSD: id, SrcIP: h.hosts[i],
			ReplicaVSSD: next, ReplicaIP: h.hosts[(i+1)%len(h.ids)],
		})
	}
	h.sw.RegisterStripe(h.ids)
	h.eng.Run()
	return h
}

func (h *ecHarness) send(p packet.Packet) []packet.Packet {
	h.out = nil
	h.sw.Process(p)
	h.eng.Run()
	return h.out
}

func TestECReadForwardedWhenHealthy(t *testing.T) {
	h := newECHarness(t)
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 5})
	if len(out) != 1 || out[0].VSSD != h.ids[0] || out[0].DstIP != h.hosts[0] {
		t.Fatalf("healthy EC read rerouted: %+v", out)
	}
	if h.sw.Stats().DegradedRedirects != 0 {
		t.Fatal("healthy read counted as degraded")
	}
}

func TestECReadRoutedAwayFromCollector(t *testing.T) {
	h := newECHarness(t)
	// Member 0 announces GC; its reads must land on a surviving member.
	h.send(packet.Packet{Op: packet.OpGC, GC: packet.GCRegular, VSSD: h.ids[0], SrcIP: h.hosts[0]})
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 9})
	if len(out) != 1 {
		t.Fatalf("forwarded %d packets, want 1", len(out))
	}
	if out[0].VSSD == h.ids[0] {
		t.Fatal("read still targets the collecting chunk holder")
	}
	found := false
	for i, id := range h.ids[1:] {
		if out[0].VSSD == id && out[0].DstIP == h.hosts[i+1] {
			found = true
		}
	}
	if !found {
		t.Fatalf("read routed to unknown member: %+v", out[0])
	}
	if h.sw.Stats().DegradedRedirects != 1 {
		t.Fatalf("DegradedRedirects = %d, want 1", h.sw.Stats().DegradedRedirects)
	}
}

func TestECReadRoutedAwayFromFailedHolder(t *testing.T) {
	h := newECHarness(t)
	h.sw.Failover(h.ids[2], h.ids[3])
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: h.ids[2], DstIP: h.hosts[2], LPN: 1})
	if len(out) != 1 || out[0].VSSD == h.ids[2] {
		t.Fatalf("read for failed holder not rerouted: %+v", out)
	}
	if h.sw.Stats().DegradedRedirects != 1 {
		t.Fatalf("DegradedRedirects = %d, want 1", h.sw.Stats().DegradedRedirects)
	}
}

func TestECSoftGCStaggeredAcrossGroup(t *testing.T) {
	h := newECHarness(t)
	// Member 1 collects (regular GC, never denied).
	h.send(packet.Packet{Op: packet.OpGC, GC: packet.GCRegular, VSSD: h.ids[1], SrcIP: h.hosts[1]})
	// Member 3's soft request must now be delayed: another group member
	// is already collecting, and a second collector would leave stripes
	// with fewer than k healthy chunks.
	out := h.send(packet.Packet{Op: packet.OpGC, GC: packet.GCSoft, VSSD: h.ids[3], SrcIP: h.hosts[3]})
	if len(out) != 1 {
		t.Fatalf("gc_op replies = %d, want 1", len(out))
	}
	if out[0].GC != packet.GCDelay {
		t.Fatalf("soft gc_op got %v, want delay", out[0].GC)
	}
	if h.sw.GCStatus(h.ids[3]) {
		t.Fatal("delayed member still marked collecting")
	}
	// After member 1 finishes, the soft request is accepted.
	h.send(packet.Packet{Op: packet.OpGC, GC: packet.GCFinish, VSSD: h.ids[1], SrcIP: h.hosts[1]})
	out = h.send(packet.Packet{Op: packet.OpGC, GC: packet.GCSoft, VSSD: h.ids[3], SrcIP: h.hosts[3]})
	if len(out) != 1 || out[0].GC != packet.GCAccept {
		t.Fatalf("soft gc_op after finish: %+v, want accept", out)
	}
}

func TestECNoHealthyMemberFallsBack(t *testing.T) {
	h := newECHarness(t)
	for _, id := range h.ids {
		h.send(packet.Packet{Op: packet.OpGC, GC: packet.GCRegular, VSSD: id, SrcIP: h.hosts[0]})
	}
	// Everyone collecting: the read is forwarded as-is rather than lost.
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 2})
	if len(out) != 1 || out[0].VSSD != h.ids[0] {
		t.Fatalf("read with no healthy member: %+v, want in-place forward", out)
	}
}
