package switchsim

import (
	"testing"

	"rackblox/internal/packet"
)

func TestFailoverRewritesReads(t *testing.T) {
	h := newHarness(t, nil)
	h.sw.Failover(vssdA, vssdB)
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: vssdA, SrcIP: client, DstIP: serverA})
	if out[0].VSSD != vssdB || out[0].DstIP != serverB {
		t.Fatalf("read not failed over: %+v", out[0])
	}
	if h.sw.Stats().FailedOver != 1 {
		t.Fatal("failover not counted")
	}
}

func TestFailoverRewritesWrites(t *testing.T) {
	h := newHarness(t, nil)
	h.sw.Failover(vssdA, vssdB)
	out := h.send(packet.Packet{Op: packet.OpWrite, VSSD: vssdA, SrcIP: client, DstIP: serverA})
	if out[0].VSSD != vssdB || out[0].DstIP != serverB {
		t.Fatalf("write not failed over: %+v", out[0])
	}
}

func TestFailoverClearsStaleGCBit(t *testing.T) {
	h := newHarness(t, nil)
	setGC(h, vssdA, packet.GCRegular)
	h.sw.Failover(vssdA, vssdB)
	if h.sw.GCStatus(vssdA) {
		t.Fatal("dead vSSD still marked collecting")
	}
}

func TestFailoverCleared(t *testing.T) {
	h := newHarness(t, nil)
	h.sw.Failover(vssdA, vssdB)
	h.sw.FailoverCleared(vssdA)
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: vssdA, SrcIP: client, DstIP: serverA})
	if out[0].VSSD != vssdA {
		t.Fatalf("cleared failover still rewriting: %+v", out[0])
	}
}

func TestFailoverToUnknownSurvivorForwardsAsIs(t *testing.T) {
	h := newHarness(t, nil)
	h.sw.Failover(vssdA, 999) // survivor not in the destination table
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: vssdA, SrcIP: client, DstIP: serverA})
	if out[0].VSSD != vssdA || out[0].DstIP != serverA {
		t.Fatalf("rewrite happened without a destination: %+v", out[0])
	}
}

func TestFailoverComposesWithRedirection(t *testing.T) {
	// A failed-over read whose new target is collecting still redirects
	// per Algorithm 1 — to the new target's replica (the dead vSSD).
	// Since the dead vSSD cannot serve, the switch forwards as-is when
	// the replica is the failed one; this test pins the composition.
	h := newHarness(t, nil)
	h.sw.Failover(vssdA, vssdB)
	setGC(h, vssdB, packet.GCRegular)
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: vssdA, SrcIP: client, DstIP: serverA})
	// vssdB is collecting; its replica (vssdA) is not marked collecting,
	// so Algorithm 1 redirects back toward vssdA's registered server.
	if len(out) != 1 {
		t.Fatalf("forwarded %d packets", len(out))
	}
}
