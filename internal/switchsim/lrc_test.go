package switchsim

import (
	"testing"

	"rackblox/internal/packet"
	"rackblox/internal/sim"
)

// lrcHarness registers an LRC-shaped stripe group on one rack's ToR:
// nine members spanning three racks — six global chunk holders (two per
// rack) followed by one local parity holder per rack — of which rack 0's
// three members are local. The stripe table treats local parity holders
// as ordinary members: they are registered, steered to, replaced, and
// consulted for GC staggering exactly like global holders.
type lrcHarness struct {
	eng   *sim.Engine
	sw    *Switch
	out   []packet.Packet
	ids   []uint32
	hosts []uint32
	racks []int
}

func newLRCHarness(t *testing.T) *lrcHarness {
	t.Helper()
	h := &lrcHarness{eng: sim.NewEngine()}
	h.sw = New(h.eng, nil, func(p packet.Packet) { h.out = append(h.out, p) })
	// Globals 0..5 two per rack, then local parities 6..8 one per rack.
	h.racks = []int{0, 0, 1, 1, 2, 2, 0, 1, 2}
	for i := range h.racks {
		h.ids = append(h.ids, uint32(300+i))
		h.hosts = append(h.hosts, uint32(0x0A000030+i))
	}
	for i, id := range h.ids {
		if h.racks[i] != 0 {
			continue // remote members register with their own ToR
		}
		h.sw.Process(packet.Packet{
			Op: packet.OpCreateVSSD, VSSD: id, SrcIP: h.hosts[i],
			ReplicaVSSD: id, ReplicaIP: h.hosts[i],
		})
	}
	h.sw.RegisterStripeMembers(h.ids, h.racks)
	h.eng.Run()
	return h
}

func (h *lrcHarness) send(p packet.Packet) []packet.Packet {
	h.out = nil
	h.sw.Process(p)
	h.eng.Run()
	return h.out
}

// TestLRCLocalParityServesDegradedRead steers a degraded read onto the
// rack's local parity holder when it is the only healthy local member —
// the coordinator of the zero-spine local-XOR reconstruction.
func TestLRCLocalParityServesDegradedRead(t *testing.T) {
	h := newLRCHarness(t)
	// Global member 0 collects and global member 1 has failed: the local
	// parity holder (index 6) is the last healthy member in rack 0.
	h.send(packet.Packet{Op: packet.OpGC, GC: packet.GCRegular, VSSD: h.ids[0], SrcIP: h.hosts[0]})
	h.sw.Failover(h.ids[1], h.ids[0])
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 3})
	if len(out) != 1 {
		t.Fatalf("forwarded %d packets, want 1", len(out))
	}
	if out[0].VSSD != h.ids[6] || out[0].DstIP != h.hosts[6] {
		t.Fatalf("read went to vssd %d, want the local parity holder %d", out[0].VSSD, h.ids[6])
	}
	if h.sw.Stats().DegradedRedirects != 1 {
		t.Fatalf("DegradedRedirects = %d, want 1", h.sw.Stats().DegradedRedirects)
	}
	if h.sw.Stats().Handoffs != 0 {
		t.Fatal("rack-local degraded read left over the spine")
	}
}

// TestLRCLocalParityStaggersGC asserts the rack-aware GC staggering
// extends to local parity holders: while the parity member collects, a
// global member's soft GC is denied — otherwise a degraded read in the
// window could find neither its chunk nor the rack's XOR.
func TestLRCLocalParityStaggersGC(t *testing.T) {
	h := newLRCHarness(t)
	h.send(packet.Packet{Op: packet.OpGC, GC: packet.GCRegular, VSSD: h.ids[6], SrcIP: h.hosts[6]})
	out := h.send(packet.Packet{Op: packet.OpGC, GC: packet.GCSoft, VSSD: h.ids[0], SrcIP: h.hosts[0]})
	if len(out) != 1 {
		t.Fatalf("forwarded %d packets, want 1", len(out))
	}
	if out[0].GC != packet.GCDelay {
		t.Fatalf("soft GC answered %v while the local parity collects, want GCDelay", out[0].GC)
	}
}

// TestLRCReplaceLocalParityMember swaps a rebuilt local parity holder
// for its adopter in the stripe table, like any global member.
func TestLRCReplaceLocalParityMember(t *testing.T) {
	h := newLRCHarness(t)
	h.sw.ReplaceStripeMember(h.ids[6], h.ids[0])
	group, ok := h.sw.StripeGroup(h.ids[0])
	if !ok {
		t.Fatal("stripe group lost")
	}
	for _, id := range group {
		if id == h.ids[6] {
			t.Fatal("replaced local parity holder still listed in the stripe table")
		}
	}
}
