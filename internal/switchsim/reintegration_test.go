package switchsim

import (
	"testing"

	"rackblox/internal/packet"
)

// replay rebuilds a ToR's tables from scratch the way the control plane
// does after a revival: vSSD rows, the stripe table, then the
// failure-era overlays (failovers, remote-dead marks, replacements).
func (h *twoRackHarness) replay(j int, racks []int, overlay func(*Switch)) {
	tor := h.tors[j]
	tor.ResetTables()
	for i, id := range h.ids {
		peer := i ^ 1
		tor.InstallVSSD(id, h.hosts[i], h.ids[peer], h.hosts[peer])
	}
	tor.RegisterStripeMembers(h.ids, racks)
	if overlay != nil {
		overlay(tor)
	}
}

func TestReplaceStripeMemberServesDirect(t *testing.T) {
	h := newECHarness(t)
	// Member 0 dies, member 1 adopts; repair completes and member 1 is
	// re-registered as the replacement. Reads addressed to the dead id
	// must now be rewritten to member 1 and served directly — not as a
	// degraded redirect.
	h.sw.Failover(h.ids[0], h.ids[1])
	h.sw.ReplaceStripeMember(h.ids[0], h.ids[1])
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 3})
	if len(out) != 1 || out[0].VSSD != h.ids[1] || out[0].DstIP != h.hosts[1] {
		t.Fatalf("read for repaired member not served by replacement: %+v", out)
	}
	st := h.sw.Stats()
	if st.DegradedRedirects != 0 || st.FailedOver != 0 {
		t.Fatalf("post-repair read still degraded: %+v", st)
	}
	if st.Reintegrated == 0 {
		t.Fatal("replacement rewrite not counted")
	}
	if repl, ok := h.sw.ReplacedBy(h.ids[0]); !ok || repl != h.ids[1] {
		t.Fatalf("ReplacedBy = %d,%v", repl, ok)
	}
}

func TestReplaceStripeMemberRewritesWrites(t *testing.T) {
	h := newECHarness(t)
	h.sw.Failover(h.ids[2], h.ids[3])
	h.sw.ReplaceStripeMember(h.ids[2], h.ids[3])
	out := h.send(packet.Packet{Op: packet.OpWrite, VSSD: h.ids[2], DstIP: h.hosts[2], LPN: 7})
	if len(out) != 1 || out[0].VSSD != h.ids[3] || out[0].DstIP != h.hosts[3] {
		t.Fatalf("write for repaired member not rewritten: %+v", out)
	}
	if h.sw.Stats().FailedOver != 0 {
		t.Fatal("write took the failover path after re-integration")
	}
}

func TestReplaceStripeMemberClearsFailureState(t *testing.T) {
	h := newECHarness(t)
	h.sw.Failover(h.ids[0], h.ids[1])
	h.sw.MarkRemoteDead(h.ids[0])
	h.sw.ReplaceStripeMember(h.ids[0], h.ids[1])
	if h.sw.RemoteDead(h.ids[0]) {
		t.Fatal("remote-dead mark survived re-integration")
	}
	group, _ := h.sw.StripeGroup(h.ids[1])
	for _, id := range group {
		if id == h.ids[0] {
			t.Fatal("dead member still listed in the stripe table")
		}
	}
}

func TestReplaceStripeMemberIgnoresUnknownIDs(t *testing.T) {
	h := newECHarness(t)
	h.sw.ReplaceStripeMember(999, h.ids[1])      // old never registered
	h.sw.ReplaceStripeMember(h.ids[0], 999)      // replacement unknown
	h.sw.ReplaceStripeMember(h.ids[0], h.ids[0]) // self-replacement
	out := h.send(packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 1})
	if len(out) != 1 || out[0].VSSD != h.ids[0] {
		t.Fatalf("no-op replacements changed routing: %+v", out)
	}
}

// TestToRRevivalTable drives the revival edge cases of the recovery
// lifecycle at the switch level: ResetTables plus the control-plane
// replay must restore correct routing in every scenario.
func TestToRRevivalTable(t *testing.T) {
	racks := []int{0, 0, 1, 1}
	cases := []struct {
		name string
		run  func(t *testing.T, h *twoRackHarness)
	}{
		{"revive with no failures", func(t *testing.T, h *twoRackHarness) {
			// A spurious down/up cycle with replay must leave routing
			// exactly as before: healthy reads stay local and direct.
			h.tors[0].SetDown(true)
			h.tors[0].SetDown(false)
			h.replay(0, racks, nil)
			h.send(0, packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 2})
			if len(h.out[0]) != 1 || h.out[0][0].VSSD != h.ids[0] {
				t.Fatalf("healthy read misrouted after spurious revival: %+v", h.out[0])
			}
		}},
		{"revive while sibling handoffs are in flight", func(t *testing.T, h *twoRackHarness) {
			// Rack 0 members are dead; ToR 1 went dark and revives while
			// a handed-off read from ToR 0 is still queued. The revived
			// table must route the arriving handoff to a rack-1 member.
			h.tors[0].Failover(h.ids[0], h.ids[2])
			h.tors[0].Failover(h.ids[1], h.ids[2])
			h.tors[1].SetDown(true)
			h.tors[0].Process(packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 5})
			// The handoff is enqueued synchronously by tors[0]; revive
			// the destination before the engine drains it.
			h.tors[1].SetDown(false)
			h.replay(1, racks, nil)
			h.eng.Run()
			if len(h.out[1]) != 1 {
				t.Fatalf("rack 1 forwarded %d packets after revival, want 1", len(h.out[1]))
			}
			if got := h.out[1][0].VSSD; got != h.ids[2] && got != h.ids[3] {
				t.Fatalf("handoff after revival routed to %d", got)
			}
		}},
		{"double revive is idempotent", func(t *testing.T, h *twoRackHarness) {
			h.tors[0].Failover(h.ids[0], h.ids[1])
			overlay := func(s *Switch) { s.ReplaceStripeMember(h.ids[0], h.ids[1]) }
			h.replay(0, racks, overlay)
			h.replay(0, racks, overlay) // second replay must change nothing
			h.send(0, packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 4})
			if len(h.out[0]) != 1 || h.out[0][0].VSSD != h.ids[1] {
				t.Fatalf("double revival broke replacement routing: %+v", h.out[0])
			}
		}},
		{"handoff TTL exhausted after revival", func(t *testing.T, h *twoRackHarness) {
			// Every member everywhere is failed over; a revived ToR must
			// still honor the packet TTL and not restart the ping-pong.
			for j := 0; j < 2; j++ {
				for _, id := range h.ids {
					h.tors[j].Failover(id, id)
				}
			}
			h.replay(1, racks, func(s *Switch) {
				for _, id := range h.ids {
					s.Failover(id, id)
				}
			})
			h.send(0, packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0],
				LPN: 1, Handoffs: maxHandoffs})
			if hs := h.tors[0].Stats().Handoffs + h.tors[1].Stats().Handoffs; hs != 0 {
				t.Fatalf("TTL-expired packet handed off %d times after revival", hs)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.run(t, newTwoRackHarness(t))
		})
	}
}
