// Package switchsim simulates the RackBlox ToR switch data plane: the
// replica and destination tables of §3.3, the packet-processing workflow
// of Algorithm 1 (read redirection, GC accept/delay, recirculation), INT
// per-hop latency accounting, and the egress scheduling policies of §4.5.2
// (token bucket, fair queuing, priority).
package switchsim

import (
	"fmt"

	"rackblox/internal/packet"
	"rackblox/internal/sim"
)

// replicaEntry is one row of the replica table (Fig. 5a): the GC status of
// a vSSD and the id of its in-rack replica.
type replicaEntry struct {
	gc      bool
	replica uint32
}

// destEntry is one row of the destination table (Fig. 5b): the GC status
// of a vSSD and the IP of the server hosting it.
type destEntry struct {
	gc bool
	ip uint32
}

// Forwarder delivers a packet leaving the switch toward pkt.DstIP. The
// rack composition supplies it and charges the ToR->host hop latency.
type Forwarder func(pkt packet.Packet)

// Handoff carries a packet to another rack's ToR switch over the cluster
// spine (multi-rack stripe routing); the cluster composition supplies it
// and charges the cross-rack latency.
type Handoff func(pkt packet.Packet, rack int)

// maxHandoffs bounds how many ToR-to-ToR hops one packet may take.
const maxHandoffs = 2

// Stats counts data-plane events for the evaluation.
type Stats struct {
	Forwarded      int64
	Redirected     int64
	FailedOver     int64
	GCAccepted     int64
	GCDelayed      int64
	GCFinished     int64
	Recirculations int64
	Dropped        int64
	// DegradedRedirects counts reads routed away from a collecting or
	// failed erasure-coded chunk holder to a surviving group member.
	DegradedRedirects int64
	// Handoffs counts reads passed to another rack's ToR because no local
	// stripe member could serve them (multi-rack degraded routing).
	Handoffs int64
	// Reintegrated counts packets rewritten to a repaired holder's
	// replacement (ReplaceStripeMember) and served directly — traffic
	// that before re-integration would have paid the degraded path.
	Reintegrated int64
}

// Add accumulates another switch's counters (cluster-wide totals).
func (s *Stats) Add(o Stats) {
	s.Forwarded += o.Forwarded
	s.Redirected += o.Redirected
	s.FailedOver += o.FailedOver
	s.GCAccepted += o.GCAccepted
	s.GCDelayed += o.GCDelayed
	s.GCFinished += o.GCFinished
	s.Recirculations += o.Recirculations
	s.Dropped += o.Dropped
	s.DegradedRedirects += o.DegradedRedirects
	s.Handoffs += o.Handoffs
	s.Reintegrated += o.Reintegrated
}

// Switch is the programmable ToR switch.
type Switch struct {
	eng     *sim.Engine
	replica map[uint32]*replicaEntry
	dest    map[uint32]*destEntry
	// failover maps a dead vSSD id to its surviving replica: reads AND
	// writes are rewritten until the instance is re-replicated (§3.7).
	failover map[uint32]uint32
	// stripe maps an erasure-coded chunk holder to its full stripe group
	// (k data + m parity holders, in group order). Reads for a collecting
	// or failed member are routed to a surviving member, which coordinates
	// the degraded reconstruction itself.
	stripe map[uint32][]uint32
	// Multi-rack state: this ToR's rack id, the rack of every stripe
	// member it knows about (its per-rack stripe table), members of other
	// racks reported dead by the control plane, and the handoff path to
	// sibling ToRs. A member whose rack differs from rackID is never
	// routed by IP from here — its GC state lives on its own ToR — it is
	// reached only through a handoff.
	rackID     int
	memberRack map[uint32]int
	remoteDead map[uint32]bool
	// replaced maps a repaired (formerly failed) stripe member to the
	// replacement holder now serving its chunks: traffic addressed to
	// the old id is rewritten and served directly, not degraded.
	replaced map[uint32]uint32
	handoff  Handoff
	// down marks a failed ToR: it drops every packet until repaired.
	down bool

	qdisc   Qdisc
	forward Forwarder
	stats   Stats

	// PipelineLatency is the per-packet match-action latency (Tofino-class
	// switches process in under a microsecond).
	PipelineLatency sim.Time
	// RecirculateLatency is the extra pipeline pass taken by soft gc_op
	// packets, which must read the replica's state and update their own.
	RecirculateLatency sim.Time

	// dropRate injects gc_op reply loss (link failure testing, §3.5.1:
	// the vSSD retries three times then collects anyway).
	dropRate float64
	dropRNG  *sim.RNG

	// TraceHook, when non-nil, observes every packet leaving the
	// pipeline. It is a pure observer: it runs after the routing
	// decision is made and must not mutate the packet or schedule
	// events, so installing it never changes a run.
	TraceHook func(ev TraceEvent)
}

// TraceEvent describes one packet's passage through the switch pipeline
// for the flight recorder: when it arrived at the egress queue, the
// total in-switch dwell (queueing plus match-action latency), and what
// the pipeline decided.
type TraceEvent struct {
	// Seq is the end-to-end request sequence number (0 for control
	// packets such as gc_ops).
	Seq  uint64
	VSSD uint32
	Op   packet.Op
	// Rack is the switch's rack id.
	Rack int
	// Arrived is when the packet entered the egress queue; the pipeline
	// released it at Arrived+Dwell-PipelineLatency.
	Arrived sim.Time
	Dwell   sim.Time
}

// New builds a switch with the given egress discipline and forwarder.
func New(eng *sim.Engine, q Qdisc, fwd Forwarder) *Switch {
	if q == nil {
		q = Passthrough{}
	}
	return &Switch{
		eng:                eng,
		replica:            make(map[uint32]*replicaEntry),
		dest:               make(map[uint32]*destEntry),
		failover:           make(map[uint32]uint32),
		stripe:             make(map[uint32][]uint32),
		memberRack:         make(map[uint32]int),
		remoteDead:         make(map[uint32]bool),
		replaced:           make(map[uint32]uint32),
		qdisc:              q,
		forward:            fwd,
		PipelineLatency:    800 * sim.Nanosecond,
		RecirculateLatency: 800 * sim.Nanosecond,
	}
}

// ConfigureRack assigns the switch its rack id and the handoff path to
// sibling ToRs (multi-rack clusters).
func (s *Switch) ConfigureRack(id int, handoff Handoff) {
	s.rackID = id
	s.handoff = handoff
}

// RackID returns the configured rack id.
func (s *Switch) RackID() int { return s.rackID }

// SetDown marks the ToR failed (true) or repaired (false); a failed ToR
// drops every packet, isolating its rack from the cluster.
func (s *Switch) SetDown(down bool) { s.down = down }

// Down reports whether the ToR is failed.
func (s *Switch) Down() bool { return s.down }

// Stats returns a copy of the event counters.
func (s *Switch) Stats() Stats { return s.stats }

// SetDropRate makes the switch drop gc_op replies with probability p,
// for failure-injection tests.
func (s *Switch) SetDropRate(p float64, rng *sim.RNG) {
	s.dropRate = p
	s.dropRNG = rng
}

// TableSizeBytes reports the SRAM the tables would occupy on-switch:
// replica rows are 1B GC + 4B replica id, destination rows 1B GC + 4B IP,
// both keyed by a 4-byte vSSD id (§3.3 sizes the maximum at 1.3 MB).
func (s *Switch) TableSizeBytes() int {
	return len(s.replica)*(4+1+4) + len(s.dest)*(4+1+4)
}

// Registered reports whether a vSSD has table state.
func (s *Switch) Registered(vssd uint32) bool {
	_, ok := s.replica[vssd]
	return ok
}

// GCStatus exposes the replica-table GC bit (tests and the controller).
func (s *Switch) GCStatus(vssd uint32) bool {
	if e, ok := s.replica[vssd]; ok {
		return e.gc
	}
	return false
}

// ReplicaOf returns the registered replica id.
func (s *Switch) ReplicaOf(vssd uint32) (uint32, bool) {
	if e, ok := s.replica[vssd]; ok {
		return e.replica, true
	}
	return 0, false
}

// DestIP returns the registered server IP for a vSSD.
func (s *Switch) DestIP(vssd uint32) (uint32, bool) {
	if e, ok := s.dest[vssd]; ok {
		return e.ip, true
	}
	return 0, false
}

// RegisterStripe records an erasure-coded stripe group (control plane,
// like Failover): every member's reads become eligible for degraded
// routing to the surviving members. Members must already be registered
// in the destination table via create_vssd. All members are taken to be
// local to this ToR's rack; multi-rack groups use RegisterStripeMembers.
func (s *Switch) RegisterStripe(group []uint32) {
	racks := make([]int, len(group))
	for i := range racks {
		racks[i] = s.rackID
	}
	s.RegisterStripeMembers(group, racks)
}

// RegisterStripeMembers records a stripe group whose members span racks:
// racks[i] is member i's rack. Local members route by IP; remote members
// are reachable only through an inter-switch handoff, since their GC and
// failure state lives on their own ToR. The member list need not stop at
// the code's k+m global holders: local-parity layouts append one parity
// holder per rack, and the table treats them as full members — eligible
// degraded-read targets (a parity holder coordinates its rack's XOR
// reconstruction), consulted by the GC staggering, and replaceable after
// repair like any other holder.
func (s *Switch) RegisterStripeMembers(group []uint32, racks []int) {
	if len(group) != len(racks) {
		panic("switchsim: stripe group and rack list lengths differ")
	}
	g := append([]uint32(nil), group...)
	for i, id := range g {
		s.stripe[id] = g
		s.memberRack[id] = racks[i]
	}
}

// MarkRemoteDead records that a stripe member homed in another rack has
// failed (control-plane propagation from its own ToR's failover), so
// degraded reads stop handing off toward it.
func (s *Switch) MarkRemoteDead(id uint32) { s.remoteDead[id] = true }

// ClearRemoteDead removes a remote-dead mark after the member became
// reachable again (its ToR revived, or a replacement was registered).
func (s *Switch) ClearRemoteDead(id uint32) { delete(s.remoteDead, id) }

// RemoteDead reports whether a member is currently marked dead-remote.
func (s *Switch) RemoteDead(id uint32) bool { return s.remoteDead[id] }

// ReplaceStripeMember re-registers a rebuilt chunk holder (control
// plane): member old's chunks have been reconstructed onto replacement,
// so old is swapped out of the stripe table, its failover and
// remote-dead entries are cleared, and traffic still addressed to old
// is rewritten to the replacement and served directly — post-repair
// reads stop paying the degraded-reconstruction cost. The call is
// idempotent; it is a no-op when old has no stripe state here or the
// replacement is not a registered member of the same group.
func (s *Switch) ReplaceStripeMember(old, replacement uint32) {
	group, ok := s.stripe[old]
	if !ok || old == replacement {
		return
	}
	if _, ok := s.stripe[replacement]; !ok {
		return
	}
	for i, id := range group {
		if id == old {
			group[i] = replacement
		}
	}
	s.replaced[old] = replacement
	delete(s.failover, old)
	delete(s.remoteDead, old)
}

// RestoreStripeMember re-registers a member under its own id after a
// catch-up repair rebuilt its chunks back onto the original server
// (server revival): the failover rewrite and remote-dead mark are
// dropped, and if a replacement alias had been installed it is removed
// and the member takes back a slot in its group row — chasing the
// replacement chain in case the alias target was itself later repaired
// elsewhere. A no-op for members with no stripe state here.
func (s *Switch) RestoreStripeMember(id uint32) {
	group, ok := s.stripe[id]
	if !ok {
		return
	}
	delete(s.failover, id)
	delete(s.remoteDead, id)
	cur, ok := s.replaced[id]
	if !ok {
		return
	}
	delete(s.replaced, id)
	for i := 0; i < 16; i++ {
		nxt, ok2 := s.replaced[cur]
		if !ok2 || nxt == cur {
			break
		}
		cur = nxt
	}
	for i, m := range group {
		if m == cur {
			group[i] = id
			return
		}
	}
}

// ReplacedBy returns the replacement holder registered for a repaired
// member, if any.
func (s *Switch) ReplacedBy(id uint32) (uint32, bool) {
	r, ok := s.replaced[id]
	return r, ok
}

// applyReplaced rewrites a packet addressed to a repaired member toward
// its registered replacement, chasing the chain that forms when a
// replacement itself later fails and is repaired elsewhere, and reports
// whether a rewrite happened. Chains are acyclic by construction — a
// replaced member is dead and never adopts — but the hop bound keeps a
// corrupted table from looping the pipeline.
func (s *Switch) applyReplaced(pkt *packet.Packet) bool {
	moved := false
	for i := 0; i < 16; i++ {
		nw, ok := s.replaced[pkt.VSSD]
		if !ok || nw == pkt.VSSD {
			break
		}
		pkt.VSSD = nw
		if de, ok2 := s.dest[nw]; ok2 {
			pkt.DstIP = de.ip
		}
		moved = true
	}
	if moved {
		s.stats.Reintegrated++ // once per packet, however long the chain
	}
	return moved
}

// InstallVSSD installs a vSSD's replica and destination rows directly
// (control plane), mirroring what a create_vssd packet would do. The
// revival replay uses it to rebuild a ToR's tables from surviving state.
func (s *Switch) InstallVSSD(vssd, ip, replica, replicaIP uint32) {
	s.replica[vssd] = &replicaEntry{replica: replica}
	s.dest[vssd] = &destEntry{ip: ip}
	if _, ok := s.dest[replica]; !ok {
		s.dest[replica] = &destEntry{ip: replicaIP}
	}
}

// ResetTables models the SRAM loss of a power-cycled switch: every
// table — replica, destination, failover, stripe, member-rack,
// remote-dead, replacement — is cleared. A revived ToR starts from this
// blank state and has its tables replayed by the control plane.
func (s *Switch) ResetTables() {
	s.replica = make(map[uint32]*replicaEntry)
	s.dest = make(map[uint32]*destEntry)
	s.failover = make(map[uint32]uint32)
	s.stripe = make(map[uint32][]uint32)
	s.memberRack = make(map[uint32]int)
	s.remoteDead = make(map[uint32]bool)
	s.replaced = make(map[uint32]uint32)
}

// RegisterDest installs a destination-table row directly (control
// plane): the failover path uses it so a rewrite target living under
// another ToR still resolves to an IP here.
func (s *Switch) RegisterDest(vssd uint32, ip uint32) {
	if _, ok := s.dest[vssd]; !ok {
		s.dest[vssd] = &destEntry{ip: ip}
	}
}

// StripeGroup returns the registered group of a chunk holder.
func (s *Switch) StripeGroup(vssd uint32) ([]uint32, bool) {
	g, ok := s.stripe[vssd]
	return g, ok
}

// local reports whether a stripe member is homed under this ToR.
func (s *Switch) local(id uint32) bool { return s.memberRack[id] == s.rackID }

// chunkHealthy reports whether a local chunk holder can serve reads now:
// it must be registered, not failed over, and not collecting garbage.
// Members of other racks are never "healthy" here — their state lives on
// their own ToR and reads reach them through a handoff instead.
func (s *Switch) chunkHealthy(id uint32) bool {
	if !s.local(id) {
		return false
	}
	if _, dead := s.failover[id]; dead {
		return false
	}
	de, ok := s.dest[id]
	return ok && !de.gc
}

// routeECRead steers a read for an erasure-coded chunk holder, rack-local
// first: healthy local targets keep their traffic; otherwise the read
// goes to a surviving local group member (scan offset rotates with the
// LPN so degraded traffic spreads over the group), which reconstructs
// from any k chunks. Only when no local member can serve does the read
// spill onto the spine: a handoff to the ToR of the next rack holding a
// live member. If nothing is reachable the failover table gets the last
// word. Returns false when the packet left via a handoff; the caller's
// dwell is charged here in that case, since the packet still crossed
// this switch's pipeline and egress queue on its way out.
func (s *Switch) routeECRead(pkt *packet.Packet, group []uint32, dwell sim.Time, reassigned bool) bool {
	if s.chunkHealthy(pkt.VSSD) {
		return true
	}
	// The packet was just rewritten to a re-integrated replacement homed
	// in another rack (the alias can point across racks). Its rebuilt
	// chunk is intact there, so hand the read to its own ToR — which
	// knows its GC and failure state — instead of paying a k-fetch
	// reconstruction here. Only alias-rewritten packets take this path:
	// an ordinary handoff arriving for a remote member must not bounce
	// back toward the rack that could not serve it.
	if reassigned && !s.local(pkt.VSSD) && !s.remoteDead[pkt.VSSD] &&
		s.handoff != nil && pkt.Handoffs < maxHandoffs {
		pkt.Handoffs++
		s.stats.Handoffs++
		pkt.AddLatency(dwell)
		s.handoff(*pkt, s.memberRack[pkt.VSSD])
		return false
	}
	n := len(group)
	start := int(pkt.LPN) % n
	for i := 0; i < n; i++ {
		id := group[(start+i)%n]
		if id == pkt.VSSD || !s.chunkHealthy(id) {
			continue
		}
		pkt.VSSD = id
		pkt.DstIP = s.dest[id].ip
		s.stats.Redirected++
		s.stats.DegradedRedirects++
		return true
	}
	if s.handoff != nil && pkt.Handoffs < maxHandoffs {
		for i := 0; i < n; i++ {
			id := group[(start+i)%n]
			if s.local(id) || s.remoteDead[id] {
				continue
			}
			pkt.Handoffs++
			s.stats.Handoffs++
			pkt.AddLatency(dwell)
			s.handoff(*pkt, s.memberRack[id])
			return false
		}
	}
	s.applyFailover(pkt)
	return true
}

// Process handles one packet arriving at the switch at the current virtual
// time. The packet passes the egress discipline, then the Algorithm 1
// match-action logic, and leaves via the Forwarder with its INT latency
// updated by the full in-switch dwell time.
func (s *Switch) Process(pkt packet.Packet) {
	if s.down {
		s.stats.Dropped++ // failed ToR: the rack is dark
		return
	}
	now := s.eng.Now()
	release := s.qdisc.Admit(pkt, now)
	if release < now {
		release = now
	}
	s.eng.AtNamed(release, "switch.pipeline", func(at sim.Time) {
		s.runPipeline(pkt, now, at)
	})
}

// runPipeline applies Algorithm 1 after the packet clears the egress queue.
func (s *Switch) runPipeline(pkt packet.Packet, arrived, now sim.Time) {
	dwell := now - arrived + s.PipelineLatency
	if s.TraceHook != nil {
		s.TraceHook(TraceEvent{Seq: pkt.Seq, VSSD: pkt.VSSD, Op: pkt.Op,
			Rack: s.rackID, Arrived: arrived, Dwell: dwell})
	}
	switch pkt.Op {
	case packet.OpCreateVSSD:
		s.handleCreate(pkt)
		return // control-plane insert; no data-plane forward
	case packet.OpDelVSSD:
		delete(s.replica, pkt.VSSD)
		delete(s.dest, pkt.VSSD)
		return
	case packet.OpWrite:
		// Writes are never redirected (Algorithm 1 line 2-3) — unless
		// their target was repaired elsewhere or failed, in which case
		// the replacement (or surviving replica) is the only copy left
		// to apply them.
		s.applyReplaced(&pkt)
		s.applyFailover(&pkt)
		pkt.AddLatency(dwell)
		s.emit(pkt)
	case packet.OpRead:
		reassigned := s.applyReplaced(&pkt)
		s.handleRead(pkt, dwell, reassigned)
	case packet.OpGC:
		s.handleGC(pkt, dwell)
	case packet.OpResponse:
		pkt.AddLatency(dwell)
		s.emit(pkt)
	default:
		s.stats.Dropped++
	}
}

func (s *Switch) handleCreate(pkt packet.Packet) {
	// Register the vSSD and pre-register its replica's destination so
	// redirection works before the replica's own create arrives.
	s.replica[pkt.VSSD] = &replicaEntry{replica: pkt.ReplicaVSSD}
	s.dest[pkt.VSSD] = &destEntry{ip: pkt.SrcIP}
	if _, ok := s.dest[pkt.ReplicaVSSD]; !ok {
		s.dest[pkt.ReplicaVSSD] = &destEntry{ip: pkt.ReplicaIP}
	}
}

// handleRead implements Algorithm 1 lines 4-9: redirect a read away from a
// collecting vSSD when its replica is idle. Erasure-coded chunk holders
// take the stripe-routing path instead: their "replica" is the whole
// surviving group. reassigned marks a packet the replacement table just
// rewrote (see applyReplaced).
func (s *Switch) handleRead(pkt packet.Packet, dwell sim.Time, reassigned bool) {
	if group, ok := s.stripe[pkt.VSSD]; ok {
		if s.routeECRead(&pkt, group, dwell, reassigned) {
			pkt.AddLatency(dwell)
			s.emit(pkt)
		}
		return
	}
	s.applyFailover(&pkt)
	re, ok := s.replica[pkt.VSSD]
	if ok && re.gc {
		if de, ok2 := s.dest[re.replica]; ok2 && !de.gc {
			pkt.DstIP = de.ip
			pkt.VSSD = re.replica
			s.stats.Redirected++
		}
		// If both the vSSD and its replica are collecting, forward as is.
	}
	pkt.AddLatency(dwell)
	s.emit(pkt)
}

// handleGC implements Algorithm 1 lines 10-25.
func (s *Switch) handleGC(pkt packet.Packet, dwell sim.Time) {
	re, ok := s.replica[pkt.VSSD]
	if !ok {
		s.stats.Dropped++
		return
	}
	de := s.dest[pkt.VSSD]
	re.gc = true
	switch pkt.GC {
	case packet.GCSoft:
		// Soft requests read the replica's state and update their own:
		// one extra pipeline pass (recirculation) keeps the two register
		// accesses consistent.
		s.stats.Recirculations++
		dwell += s.RecirculateLatency
		replicaBusy := false
		if group, ecOK := s.stripe[pkt.VSSD]; ecOK {
			// Rack-aware staggering: a chunk holder may soft-collect only
			// while no other member of its stripe group does, so degraded
			// reads always find k survivors. Failed-over members are
			// skipped — a ghost GC bit left by a crashed holder must not
			// block the survivors' soft GC forever.
			// Only local members are consulted: a remote member's GC bit
			// lives on its own ToR (the per-rack stripe table's blind
			// spot, one cost of the multi-rack design point).
			for _, id := range group {
				if id == pkt.VSSD || !s.local(id) {
					continue
				}
				if _, dead := s.failover[id]; dead {
					continue
				}
				if rd, ok2 := s.dest[id]; ok2 && rd.gc {
					replicaBusy = true
					break
				}
			}
		} else if rd, ok2 := s.dest[re.replica]; ok2 && rd.gc {
			replicaBusy = true
		}
		if replicaBusy {
			pkt.GC = packet.GCDelay
			re.gc = false
			if de != nil {
				de.gc = false // recirculated update keeps both tables consistent
			}
			s.stats.GCDelayed++
		} else {
			pkt.GC = packet.GCAccept
			if de != nil {
				de.gc = true
			}
			s.stats.GCAccepted++
		}
	case packet.GCFinish:
		re.gc = false
		if de != nil {
			de.gc = false
		}
		s.stats.GCFinished++
		return // finish needs no reply
	default: // regular and background: never denied
		if de != nil {
			de.gc = true
		}
		pkt.GC = packet.GCAccept
		s.stats.GCAccepted++
	}
	// Reply to the requesting server.
	pkt.DstIP, pkt.SrcIP = pkt.SrcIP, pkt.DstIP
	pkt.AddLatency(dwell)
	if s.dropRate > 0 && s.dropRNG != nil && s.dropRNG.Bool(s.dropRate) {
		s.stats.Dropped++
		return
	}
	s.emit(pkt)
}

// Failover marks vssd dead: the data plane rewrites its traffic to the
// surviving replica until re-replication re-registers the pair (§3.7:
// "On server failure, RackBlox replicates the replicas to other servers
// and updates their switches").
func (s *Switch) Failover(vssd, survivor uint32) {
	s.failover[vssd] = survivor
	// Clear both tables' GC bits: the dead vSSD will never send the
	// gc_op finish that would otherwise release them.
	if e, ok := s.replica[vssd]; ok {
		e.gc = false
	}
	if d, ok := s.dest[vssd]; ok {
		d.gc = false
	}
}

// FailoverCleared removes a failover entry after recovery.
func (s *Switch) FailoverCleared(vssd uint32) { delete(s.failover, vssd) }

func (s *Switch) applyFailover(pkt *packet.Packet) {
	if survivor, ok := s.failover[pkt.VSSD]; ok {
		if de, ok2 := s.dest[survivor]; ok2 {
			pkt.VSSD = survivor
			pkt.DstIP = de.ip
			s.stats.FailedOver++
			// A stale entry may name a survivor that has since been
			// repaired onto a replacement; resolve the rewrite through
			// the replacement table so traffic never targets a member
			// that no longer serves.
			s.applyReplaced(pkt)
		}
	}
}

func (s *Switch) emit(pkt packet.Packet) {
	s.stats.Forwarded++
	if s.forward == nil {
		panic(fmt.Sprintf("switchsim: no forwarder for packet %+v", pkt))
	}
	s.forward(pkt)
}
