package switchsim

import (
	"testing"

	"rackblox/internal/packet"
	"rackblox/internal/sim"
)

// twoRackHarness registers a 4-member stripe group split over two ToRs
// (members 0,1 in rack 0; members 2,3 in rack 1) with a direct handoff
// channel between them.
type twoRackHarness struct {
	eng   *sim.Engine
	tors  [2]*Switch
	out   [2][]packet.Packet
	ids   []uint32
	hosts []uint32
}

func newTwoRackHarness(t *testing.T) *twoRackHarness {
	t.Helper()
	h := &twoRackHarness{eng: sim.NewEngine()}
	for j := 0; j < 2; j++ {
		j := j
		h.tors[j] = New(h.eng, nil, func(p packet.Packet) { h.out[j] = append(h.out[j], p) })
	}
	for j := 0; j < 2; j++ {
		h.tors[j].ConfigureRack(j, func(pkt packet.Packet, rack int) {
			h.tors[rack].Process(pkt)
		})
	}
	racks := []int{0, 0, 1, 1}
	for i := 0; i < 4; i++ {
		h.ids = append(h.ids, uint32(300+i))
		h.hosts = append(h.hosts, uint32(0x0A000030+i))
	}
	for i, id := range h.ids {
		// Each member registers with its own rack's ToR; the replica hint
		// points at the rack-local neighbor.
		peer := i ^ 1
		h.tors[racks[i]].Process(packet.Packet{
			Op: packet.OpCreateVSSD, VSSD: id, SrcIP: h.hosts[i],
			ReplicaVSSD: h.ids[peer], ReplicaIP: h.hosts[peer],
		})
	}
	for j := 0; j < 2; j++ {
		h.tors[j].RegisterStripeMembers(h.ids, racks)
	}
	h.eng.Run()
	return h
}

func (h *twoRackHarness) send(j int, p packet.Packet) {
	h.out[0], h.out[1] = nil, nil
	h.tors[j].Process(p)
	h.eng.Run()
}

func TestECReadStaysRackLocalWhenPossible(t *testing.T) {
	h := newTwoRackHarness(t)
	// Member 0 collects; member 1 (same rack) must absorb the read with
	// no handoff — rack-local-first routing.
	h.send(0, packet.Packet{Op: packet.OpGC, GC: packet.GCRegular, VSSD: h.ids[0], SrcIP: h.hosts[0]})
	h.send(0, packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 4})
	if len(h.out[0]) != 1 || h.out[0][0].VSSD != h.ids[1] {
		t.Fatalf("read not absorbed rack-locally: %+v", h.out[0])
	}
	if h.tors[0].Stats().Handoffs != 0 {
		t.Fatal("rack-local degraded read took a handoff")
	}
}

func TestECReadHandsOffWhenRackExhausted(t *testing.T) {
	h := newTwoRackHarness(t)
	// Both rack-0 members fail over: the read must cross to rack 1's ToR
	// and come out addressed to one of its members.
	h.tors[0].Failover(h.ids[0], h.ids[2])
	h.tors[0].Failover(h.ids[1], h.ids[2])
	h.send(0, packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 7})
	if len(h.out[0]) != 0 {
		t.Fatalf("dead rack still forwarded: %+v", h.out[0])
	}
	if len(h.out[1]) != 1 {
		t.Fatalf("rack 1 forwarded %d packets, want 1", len(h.out[1]))
	}
	got := h.out[1][0]
	if got.VSSD != h.ids[2] && got.VSSD != h.ids[3] {
		t.Fatalf("handoff routed to %d, want a rack-1 member", got.VSSD)
	}
	if got.Handoffs != 1 {
		t.Fatalf("packet handoff count = %d, want 1", got.Handoffs)
	}
	if h.tors[0].Stats().Handoffs != 1 {
		t.Fatalf("ToR 0 Handoffs = %d, want 1", h.tors[0].Stats().Handoffs)
	}
}

func TestHandoffSkipsRemoteDeadMembers(t *testing.T) {
	h := newTwoRackHarness(t)
	h.tors[0].Failover(h.ids[0], h.ids[2])
	h.tors[0].Failover(h.ids[1], h.ids[2])
	// Rack 1's members are reported dead too: nothing to hand off to, so
	// the failover table gets the last word at ToR 0.
	h.tors[0].MarkRemoteDead(h.ids[2])
	h.tors[0].MarkRemoteDead(h.ids[3])
	h.send(0, packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 3})
	if h.tors[0].Stats().Handoffs != 0 {
		t.Fatal("handed off toward members marked dead")
	}
	if len(h.out[0]) != 1 {
		t.Fatalf("rack 0 forwarded %d packets, want failover fallback", len(h.out[0]))
	}
}

func TestHandoffTTLStopsPingPong(t *testing.T) {
	h := newTwoRackHarness(t)
	// Every member everywhere fails over; neither ToR has a healthy local
	// member, and neither marks the other rack dead. The TTL must cut the
	// ToR-to-ToR loop.
	for j := 0; j < 2; j++ {
		for _, id := range h.ids {
			h.tors[j].Failover(id, id)
		}
	}
	h.send(0, packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 1})
	total := h.tors[0].Stats().Handoffs + h.tors[1].Stats().Handoffs
	if total > int64(maxHandoffs) {
		t.Fatalf("packet bounced %d times between ToRs, TTL is %d", total, maxHandoffs)
	}
}

func TestDownToRDropsEverything(t *testing.T) {
	h := newTwoRackHarness(t)
	h.tors[0].SetDown(true)
	before := h.tors[0].Stats().Dropped
	h.send(0, packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 2})
	if len(h.out[0]) != 0 {
		t.Fatalf("down ToR forwarded: %+v", h.out[0])
	}
	if h.tors[0].Stats().Dropped != before+1 {
		t.Fatal("down ToR did not count the drop")
	}
	h.tors[0].SetDown(false)
	h.send(0, packet.Packet{Op: packet.OpRead, VSSD: h.ids[0], DstIP: h.hosts[0], LPN: 2})
	if len(h.out[0]) != 1 {
		t.Fatal("repaired ToR still dark")
	}
}

func TestStatsAddAggregates(t *testing.T) {
	a := Stats{Forwarded: 2, Handoffs: 1, Dropped: 3}
	b := Stats{Forwarded: 5, DegradedRedirects: 4}
	a.Add(b)
	if a.Forwarded != 7 || a.Handoffs != 1 || a.Dropped != 3 || a.DegradedRedirects != 4 {
		t.Fatalf("aggregate = %+v", a)
	}
}
