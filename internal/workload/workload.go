// Package workload generates the I/O streams of Table 2: YCSB with
// configurable read/write mixes and zipfian skew, plus profile generators
// for the five BenchBase applications (TPC-H, Seats, AuctionMark, TPC-C,
// Twitter) with the paper's measured write ratios and request patterns.
package workload

import (
	"fmt"

	"rackblox/internal/sim"
)

// Op is one logical storage operation.
type Op struct {
	Write bool
	LPN   uint32
}

// Generator produces an operation stream and its arrival process.
type Generator interface {
	// Name identifies the workload.
	Name() string
	// Next returns the next operation.
	Next() Op
	// NextGap returns the interarrival time before the next request.
	NextGap() sim.Time
	// WriteFraction returns the configured write ratio.
	WriteFraction() float64
}

// Write ratios from Table 2.
const (
	TPCHWriteFrac        = 0.0227
	SeatsWriteFrac       = 0.1034
	AuctionMarkWriteFrac = 0.5376
	TPCCWriteFrac        = 0.5995
	TwitterWriteFrac     = 0.9786
)

// Mix names a YCSB read/write split like "95/5".
func Mix(readPct int) string {
	return fmt.Sprintf("%d/%d", readPct, 100-readPct)
}

// ycsb is the YCSB generator: zipfian keys, Bernoulli write choice,
// Poisson arrivals.
type ycsb struct {
	name      string
	writeFrac float64
	keys      *sim.Zipf
	rng       *sim.RNG
	meanGap   sim.Time
}

// NewYCSB builds a YCSB generator over a key space of n pages with the
// given write fraction and mean interarrival gap (Poisson arrivals).
func NewYCSB(rng *sim.RNG, n uint64, writeFrac float64, meanGap sim.Time) Generator {
	return &ycsb{
		name:      "YCSB " + Mix(int(100-writeFrac*100+0.5)),
		writeFrac: writeFrac,
		keys:      sim.NewZipf(rng.Fork(1), 0.99, n),
		rng:       rng,
		meanGap:   meanGap,
	}
}

// Standard YCSB core workloads used in §4.5.3.
func NewYCSBA(rng *sim.RNG, n uint64, meanGap sim.Time) Generator {
	g := NewYCSB(rng, n, 0.5, meanGap).(*ycsb)
	g.name = "YCSB-A"
	return g
}

func NewYCSBB(rng *sim.RNG, n uint64, meanGap sim.Time) Generator {
	g := NewYCSB(rng, n, 0.05, meanGap).(*ycsb)
	g.name = "YCSB-B"
	return g
}

func NewYCSBC(rng *sim.RNG, n uint64, meanGap sim.Time) Generator {
	g := NewYCSB(rng, n, 0.0, meanGap).(*ycsb)
	g.name = "YCSB-C"
	return g
}

func (y *ycsb) Name() string           { return y.name }
func (y *ycsb) WriteFraction() float64 { return y.writeFrac }
func (y *ycsb) NextGap() sim.Time      { return y.rng.Exp(y.meanGap) }

func (y *ycsb) Next() Op {
	return Op{
		Write: y.rng.Bool(y.writeFrac),
		LPN:   uint32(y.keys.Next()),
	}
}

// profile is a BenchBase-style application generator. Request patterns
// differ along two axes the evaluation cares about: key locality
// (scan-heavy vs point accesses) and phasing (AuctionMark issues "a long
// sequence of writes followed by a sequence of reads", §4.3).
type profile struct {
	name      string
	writeFrac float64
	rng       *sim.RNG
	keys      *sim.Zipf
	n         uint64
	meanGap   sim.Time

	// scanFrac is the probability a read continues a sequential scan.
	scanFrac float64
	scanPos  uint32

	// phaseLen > 0 switches between write and read phases of that length.
	phaseLen  int
	phasePos  int
	inWrites  bool
	burstGap  sim.Time // tighter spacing inside a phase burst
	burstFrac float64  // fraction of requests arriving at burst spacing
}

func (p *profile) Name() string           { return p.name }
func (p *profile) WriteFraction() float64 { return p.writeFrac }

func (p *profile) NextGap() sim.Time {
	if p.burstFrac > 0 && p.rng.Bool(p.burstFrac) {
		return p.rng.Exp(p.burstGap)
	}
	return p.rng.Exp(p.meanGap)
}

func (p *profile) Next() Op {
	var write bool
	if p.phaseLen > 0 {
		// Phased pattern: alternate write and read runs sized so the
		// overall mix matches writeFrac.
		if p.phasePos == 0 {
			p.inWrites = !p.inWrites
			if p.inWrites {
				p.phasePos = int(float64(p.phaseLen) * p.writeFrac)
			} else {
				p.phasePos = int(float64(p.phaseLen) * (1 - p.writeFrac))
			}
			if p.phasePos < 1 {
				p.phasePos = 1
			}
		}
		p.phasePos--
		write = p.inWrites
	} else {
		write = p.rng.Bool(p.writeFrac)
	}

	var lpn uint32
	if !write && p.scanFrac > 0 && p.rng.Bool(p.scanFrac) {
		p.scanPos = (p.scanPos + 1) % uint32(p.n)
		lpn = p.scanPos
	} else {
		lpn = uint32(p.keys.Next())
		p.scanPos = lpn
	}
	return Op{Write: write, LPN: lpn}
}

// NewTPCH models TPC-H: scan-dominated analytics with 2.27% writes.
func NewTPCH(rng *sim.RNG, n uint64, meanGap sim.Time) Generator {
	return &profile{
		name: "TPC-H", writeFrac: TPCHWriteFrac, rng: rng,
		keys: sim.NewZipf(rng.Fork(2), 0.8, n), n: n, meanGap: meanGap,
		scanFrac: 0.85,
	}
}

// NewSeats models the SEATS airline ticketing mix: 10.34% writes,
// point lookups with moderate skew.
func NewSeats(rng *sim.RNG, n uint64, meanGap sim.Time) Generator {
	return &profile{
		name: "Seats", writeFrac: SeatsWriteFrac, rng: rng,
		keys: sim.NewZipf(rng.Fork(3), 0.95, n), n: n, meanGap: meanGap,
	}
}

// NewAuctionMark models AuctionMark: 53.76% writes arriving in long
// write-then-read phases, which leaves fewer reads exposed to GC (§4.3).
func NewAuctionMark(rng *sim.RNG, n uint64, meanGap sim.Time) Generator {
	return &profile{
		name: "AuctionMark", writeFrac: AuctionMarkWriteFrac, rng: rng,
		keys: sim.NewZipf(rng.Fork(4), 0.9, n), n: n, meanGap: meanGap,
		phaseLen: 400, burstFrac: 0.3, burstGap: meanGap / 4,
	}
}

// NewTPCC models TPC-C: 59.95% writes, high skew on hot warehouse rows.
func NewTPCC(rng *sim.RNG, n uint64, meanGap sim.Time) Generator {
	return &profile{
		name: "TPC-C", writeFrac: TPCCWriteFrac, rng: rng,
		keys: sim.NewZipf(rng.Fork(5), 1.1, n), n: n, meanGap: meanGap,
	}
}

// NewTwitter models the Twitter micro-blog mix: 97.86% writes (timeline
// appends) with skew toward hot users.
func NewTwitter(rng *sim.RNG, n uint64, meanGap sim.Time) Generator {
	return &profile{
		name: "Twitter", writeFrac: TwitterWriteFrac, rng: rng,
		keys: sim.NewZipf(rng.Fork(6), 1.0, n), n: n, meanGap: meanGap,
		burstFrac: 0.2, burstGap: meanGap / 3,
	}
}

// TableEntry is one row of Table 2.
type TableEntry struct {
	Name        string
	Description string
	WritePct    float64
}

// Table2 returns the paper's workload table.
func Table2() []TableEntry {
	return []TableEntry{
		{"YCSB", "Cloud data serving queries.", -1}, // 0-100%, configurable
		{"TPC-H", "Business-oriented ad-hoc queries.", 2.27},
		{"Seats", "Airline ticketing system queries.", 10.34},
		{"AuctionMark", "Activity queries in an auction site.", 53.76},
		{"TPC-C", "Online transaction queries.", 59.95},
		{"Twitter", "Micro-blogging website queries.", 97.86},
	}
}

// ByName builds the named BenchBase workload generator.
func ByName(name string, rng *sim.RNG, n uint64, meanGap sim.Time) (Generator, error) {
	switch name {
	case "TPC-H":
		return NewTPCH(rng, n, meanGap), nil
	case "Seats":
		return NewSeats(rng, n, meanGap), nil
	case "AuctionMark":
		return NewAuctionMark(rng, n, meanGap), nil
	case "TPC-C":
		return NewTPCC(rng, n, meanGap), nil
	case "Twitter":
		return NewTwitter(rng, n, meanGap), nil
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists the five BenchBase workloads in Table 2 order.
func Names() []string {
	return []string{"TPC-H", "Seats", "AuctionMark", "TPC-C", "Twitter"}
}
