package workload

import (
	"math"
	"testing"

	"rackblox/internal/sim"
)

const keyspace = 1 << 16

func measureWriteFrac(g Generator, n int) float64 {
	writes := 0
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	return float64(writes) / float64(n)
}

func TestYCSBWriteFractions(t *testing.T) {
	for _, frac := range []float64{0, 0.05, 0.2, 0.5, 0.8, 0.95, 1.0} {
		g := NewYCSB(sim.NewRNG(1), keyspace, frac, sim.Millisecond)
		got := measureWriteFrac(g, 20000)
		if math.Abs(got-frac) > 0.02 {
			t.Errorf("YCSB frac %f measured %f", frac, got)
		}
	}
}

func TestYCSBKeysInRange(t *testing.T) {
	g := NewYCSB(sim.NewRNG(2), 1000, 0.5, sim.Millisecond)
	for i := 0; i < 10000; i++ {
		if op := g.Next(); op.LPN >= 1000 {
			t.Fatalf("key %d out of range", op.LPN)
		}
	}
}

func TestYCSBSkewed(t *testing.T) {
	g := NewYCSB(sim.NewRNG(3), keyspace, 0.5, sim.Millisecond)
	counts := map[uint32]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[g.Next().LPN]++
	}
	// The hottest key must receive far more than uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 20*n/keyspace {
		t.Fatalf("hottest key count %d not skewed", max)
	}
}

func TestYCSBVariants(t *testing.T) {
	cases := []struct {
		g    Generator
		name string
		frac float64
	}{
		{NewYCSBA(sim.NewRNG(4), keyspace, sim.Millisecond), "YCSB-A", 0.5},
		{NewYCSBB(sim.NewRNG(5), keyspace, sim.Millisecond), "YCSB-B", 0.05},
		{NewYCSBC(sim.NewRNG(6), keyspace, sim.Millisecond), "YCSB-C", 0.0},
	}
	for _, c := range cases {
		if c.g.Name() != c.name {
			t.Errorf("name = %q, want %q", c.g.Name(), c.name)
		}
		if c.g.WriteFraction() != c.frac {
			t.Errorf("%s frac = %f", c.name, c.g.WriteFraction())
		}
	}
}

func TestMixLabel(t *testing.T) {
	if Mix(95) != "95/5" || Mix(0) != "0/100" {
		t.Fatal("mix labels")
	}
}

func TestBenchBaseWriteFracsMatchTable2(t *testing.T) {
	cases := []struct {
		name string
		want float64
	}{
		{"TPC-H", TPCHWriteFrac},
		{"Seats", SeatsWriteFrac},
		{"AuctionMark", AuctionMarkWriteFrac},
		{"TPC-C", TPCCWriteFrac},
		{"Twitter", TwitterWriteFrac},
	}
	for _, c := range cases {
		g, err := ByName(c.name, sim.NewRNG(7), keyspace, sim.Millisecond)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if g.Name() != c.name {
			t.Errorf("name = %q, want %q", g.Name(), c.name)
		}
		got := measureWriteFrac(g, 40000)
		if math.Abs(got-c.want) > 0.03 {
			t.Errorf("%s write frac = %f, want ~%f", c.name, got, c.want)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", sim.NewRNG(1), 10, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestNamesMatchesTable2(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("names = %v", names)
	}
	rows := Table2()
	if len(rows) != 6 {
		t.Fatalf("table2 rows = %d, want 6", len(rows))
	}
	for i, n := range names {
		if rows[i+1].Name != n {
			t.Errorf("row %d = %q, want %q", i+1, rows[i+1].Name, n)
		}
	}
}

func TestAuctionMarkPhasing(t *testing.T) {
	g, _ := ByName("AuctionMark", sim.NewRNG(8), keyspace, sim.Millisecond)
	// Count transitions between read and write runs: phased traffic has
	// far fewer transitions than a Bernoulli mix of the same ratio.
	const n = 20000
	transitions := 0
	prev := g.Next().Write
	runs := 0
	for i := 1; i < n; i++ {
		w := g.Next().Write
		if w != prev {
			transitions++
			runs++
		}
		prev = w
	}
	// Bernoulli at p=0.54 would transition ~0.5 of steps (~10000).
	if transitions > n/10 {
		t.Fatalf("AuctionMark transitions = %d, not phased", transitions)
	}
}

func TestTPCHScansSequential(t *testing.T) {
	g, _ := ByName("TPC-H", sim.NewRNG(9), keyspace, sim.Millisecond)
	sequential := 0
	var last uint32
	const n = 20000
	for i := 0; i < n; i++ {
		op := g.Next()
		if !op.Write && op.LPN == last+1 {
			sequential++
		}
		last = op.LPN
	}
	if sequential < n/2 {
		t.Fatalf("TPC-H sequential reads = %d/%d, want scan-dominated", sequential, n)
	}
}

func TestGapsArePositiveAndMeanish(t *testing.T) {
	g := NewYCSB(sim.NewRNG(10), keyspace, 0.5, sim.Millisecond)
	var sum sim.Time
	const n = 20000
	for i := 0; i < n; i++ {
		gap := g.NextGap()
		if gap < 0 {
			t.Fatal("negative gap")
		}
		sum += gap
	}
	mean := float64(sum) / n
	if mean < 0.9e6 || mean > 1.1e6 {
		t.Fatalf("mean gap = %f ns, want ~1ms", mean)
	}
}

func TestBurstyWorkloadsHaveShorterGaps(t *testing.T) {
	slow := NewSeats(sim.NewRNG(11), keyspace, sim.Millisecond)
	fast, _ := ByName("Twitter", sim.NewRNG(11), keyspace, sim.Millisecond)
	var sumSlow, sumFast sim.Time
	const n = 20000
	for i := 0; i < n; i++ {
		sumSlow += slow.NextGap()
		sumFast += fast.NextGap()
	}
	if sumFast >= sumSlow {
		t.Fatalf("bursty workload mean gap %d >= plain %d", sumFast/n, sumSlow/n)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewYCSB(sim.NewRNG(42), keyspace, 0.3, sim.Millisecond)
	b := NewYCSB(sim.NewRNG(42), keyspace, 0.3, sim.Millisecond)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}
