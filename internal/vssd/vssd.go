// Package vssd implements SSD virtualization (§3.3, Fig. 4): a
// programmable SSD is carved into virtual SSDs that are either
// hardware-isolated (mapped to whole flash channels, the strongest
// isolation) or software-isolated (mapped to chips that share channels,
// isolated by token-bucket rate limiting). Software-isolated vSSDs that
// span the same channels form a channel group (§3.5.2) whose members
// garbage-collect together and lend each other free blocks.
package vssd

import (
	"errors"
	"fmt"

	"rackblox/internal/sim"
	"rackblox/internal/ssd"
)

// Isolation is the vSSD isolation class.
type Isolation int

const (
	// Hardware isolation maps the vSSD to exclusive flash channels.
	Hardware Isolation = iota
	// Software isolation maps the vSSD to chips on shared channels.
	Software
)

func (i Isolation) String() string {
	switch i {
	case Hardware:
		return "hardware"
	case Software:
		return "software"
	default:
		return fmt.Sprintf("Isolation(%d)", int(i))
	}
}

// VSSD is one virtual SSD instance.
type VSSD struct {
	ID  uint32
	Iso Isolation
	FTL *ssd.FTL

	// limiter rate-limits software-isolated instances; nil for hardware.
	limiter *TokenBucket
	// group is the channel group of a software-isolated vSSD, nil for
	// hardware-isolated ones.
	group *ChannelGroup

	// inGC tracks whether a GC burst is in progress and when it ends.
	inGC     bool
	gcEndsAt sim.Time
}

// NewHardwareIsolated builds a vSSD over whole channels of a device.
func NewHardwareIsolated(dev *ssd.Device, id uint32, channels []int, utilization float64) (*VSSD, error) {
	if len(channels) == 0 {
		return nil, errors.New("vssd: hardware-isolated vSSD needs channels")
	}
	var chips []ssd.ChipRef
	for _, ch := range channels {
		if ch < 0 || ch >= dev.Geometry().Channels {
			return nil, fmt.Errorf("vssd: channel %d out of range", ch)
		}
		chips = append(chips, dev.ChannelChips(ch)...)
	}
	ftl, err := ssd.NewFTL(dev, chips, utilization)
	if err != nil {
		return nil, err
	}
	return &VSSD{ID: id, Iso: Hardware, FTL: ftl}, nil
}

// NewSoftwareIsolated builds a vSSD over individual chips, throttled to
// iopsLimit operations per second (token-bucket software isolation).
func NewSoftwareIsolated(dev *ssd.Device, id uint32, chips []ssd.ChipRef, utilization float64, iopsLimit float64) (*VSSD, error) {
	if len(chips) == 0 {
		return nil, errors.New("vssd: software-isolated vSSD needs chips")
	}
	ftl, err := ssd.NewFTL(dev, chips, utilization)
	if err != nil {
		return nil, err
	}
	return &VSSD{
		ID: id, Iso: Software, FTL: ftl,
		limiter: NewTokenBucket(iopsLimit, iopsLimit/10+1),
	}, nil
}

// Channels returns the flash channels the vSSD's chips live on.
func (v *VSSD) Channels() []int { return v.FTL.Channels() }

// Admit applies software-isolation rate limiting: it returns the time at
// which the request may be dispatched. Hardware-isolated vSSDs admit
// immediately.
func (v *VSSD) Admit(now sim.Time) sim.Time {
	if v.limiter == nil {
		return now
	}
	return v.limiter.Admit(now)
}

// InGC reports whether a GC burst is running at time now.
func (v *VSSD) InGC(now sim.Time) bool {
	if v.inGC && now >= v.gcEndsAt {
		v.inGC = false
	}
	return v.inGC
}

// GCEndsAt returns the end of the current burst (zero when idle).
func (v *VSSD) GCEndsAt() sim.Time {
	if v.inGC {
		return v.gcEndsAt
	}
	return 0
}

// StartGC marks a burst running until end.
func (v *VSSD) StartGC(end sim.Time) {
	v.inGC = true
	if end > v.gcEndsAt {
		v.gcEndsAt = end
	}
}

// FinishGC clears the burst state.
func (v *VSSD) FinishGC() { v.inGC = false; v.gcEndsAt = 0 }

// Group returns the channel group, nil for hardware-isolated vSSDs.
func (v *VSSD) Group() *ChannelGroup { return v.group }

// TokenBucket rate-limits operations per second with a burst allowance.
// Unlike the switch qdisc (per-flow), this bucket guards one vSSD.
type TokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   sim.Time
}

// NewTokenBucket builds a limiter; rate <= 0 disables limiting.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Admit returns the earliest time a request arriving at now may proceed.
func (t *TokenBucket) Admit(now sim.Time) sim.Time {
	if t.rate <= 0 {
		return now
	}
	t.tokens += float64(now-t.last) / 1e9 * t.rate
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
	t.last = now
	if t.tokens >= 1 {
		t.tokens--
		return now
	}
	wait := sim.Time((1 - t.tokens) / t.rate * 1e9)
	t.tokens = 0
	t.last = now + wait
	return now + wait
}

// ChannelGroup is a set of software-isolated vSSDs spanning the same
// channels (§3.5.2). All members perform GC together; members short on
// free blocks borrow from collocated members in fixed-size groups.
type ChannelGroup struct {
	Members []*VSSD
	// BorrowQuantum is how many blocks move per borrow operation (the
	// paper borrows in 1 GB groups).
	BorrowQuantum int
	// loans tracks lender -> borrower -> blocks, so returns go home.
	loans map[*VSSD]map[*VSSD][]ssd.BlockRef
}

// NewChannelGroup groups software-isolated vSSDs. All members must be
// software-isolated and span the identical channel set.
func NewChannelGroup(borrowQuantum int, members ...*VSSD) (*ChannelGroup, error) {
	if len(members) == 0 {
		return nil, errors.New("vssd: empty channel group")
	}
	if borrowQuantum < 1 {
		borrowQuantum = 4
	}
	span := channelKey(members[0].Channels())
	for _, m := range members {
		if m.Iso != Software {
			return nil, fmt.Errorf("vssd: vSSD %d is not software-isolated", m.ID)
		}
		if channelKey(m.Channels()) != span {
			return nil, fmt.Errorf("vssd: vSSD %d spans different channels", m.ID)
		}
	}
	g := &ChannelGroup{
		Members:       members,
		BorrowQuantum: borrowQuantum,
		loans:         make(map[*VSSD]map[*VSSD][]ssd.BlockRef),
	}
	for _, m := range members {
		m.group = g
	}
	return g, nil
}

func channelKey(chs []int) string {
	key := ""
	for _, c := range chs {
		key += fmt.Sprintf("%d,", c)
	}
	return key
}

// FreeRatio is the group-wide free block ratio; group GC triggers on it
// rather than on any single member (§3.5.2: "delay GC until the channel
// group's free block ratio falls below the gc_threshold").
func (g *ChannelGroup) FreeRatio() float64 {
	free, total := 0, 0
	for _, m := range g.Members {
		free += m.FTL.FreeBlocks()
		total += m.FTL.TotalBlocks()
	}
	if total == 0 {
		return 0
	}
	return float64(free) / float64(total)
}

// Rebalance lends blocks from the freest member to any member that has
// exhausted its own free blocks, in BorrowQuantum units. Returns how many
// blocks moved.
func (g *ChannelGroup) Rebalance() int {
	moved := 0
	for _, borrower := range g.Members {
		// Keep a small margin beyond the GC reserve.
		if borrower.FTL.FreeBlocks() > 2 {
			continue
		}
		lender := g.freestMember(borrower)
		if lender == nil {
			continue
		}
		blocks := lender.FTL.Borrow(g.BorrowQuantum)
		if len(blocks) == 0 {
			continue
		}
		borrower.FTL.AcceptBorrowed(blocks)
		if g.loans[lender] == nil {
			g.loans[lender] = make(map[*VSSD][]ssd.BlockRef)
		}
		g.loans[lender][borrower] = append(g.loans[lender][borrower], blocks...)
		moved += len(blocks)
	}
	return moved
}

func (g *ChannelGroup) freestMember(excluding *VSSD) *VSSD {
	var best *VSSD
	bestFree := 0
	for _, m := range g.Members {
		if m == excluding {
			continue
		}
		// A lender must keep enough free space to not immediately need
		// borrowing itself.
		if f := m.FTL.FreeBlocks(); f > bestFree && f > g.BorrowQuantum+2 {
			bestFree = f
			best = m
		}
	}
	return best
}

// GroupCollect runs GC for every member simultaneously ("if one vSSD must
// perform GC ... then all vSSDs should perform GC to reduce GC
// frequency"), vacates and returns borrowed blocks, and reports the
// combined per-channel busy time. maxBlocks caps each member's burst
// (0 = unlimited).
func (g *ChannelGroup) GroupCollect(target float64, maxBlocks int) ssd.BurstResult {
	out := ssd.BurstResult{PerChannel: map[int]sim.Time{}}
	for _, m := range g.Members {
		res := m.FTL.CollectBurst(target, maxBlocks)
		out.Blocks += res.Blocks
		out.Moved += res.Moved
		out.Duration += res.Duration
		for ch, d := range res.PerChannel {
			out.PerChannel[ch] += d
		}
	}
	// Return loans: borrowers vacate, lenders take the blocks back.
	// Member order (not map order) keeps runs deterministic.
	for _, lender := range g.Members {
		byBorrower := g.loans[lender]
		if byBorrower == nil {
			continue
		}
		for _, borrower := range g.Members {
			if _, ok := byBorrower[borrower]; !ok {
				continue
			}
			returned, dur := borrower.FTL.VacateBorrowed()
			if len(returned) > 0 {
				lender.FTL.GiveBack(returned)
				out.Duration += dur
				// Vacate work happens on the borrower's channels; spread
				// it over the group's (shared) channel set.
				chs := borrower.Channels()
				if len(chs) > 0 {
					per := dur / sim.Time(len(chs))
					for _, ch := range chs {
						out.PerChannel[ch] += per
					}
				}
			}
			delete(byBorrower, borrower)
		}
	}
	return out
}

// OutstandingLoans counts blocks currently on loan (for tests).
func (g *ChannelGroup) OutstandingLoans() int {
	n := 0
	for _, byBorrower := range g.loans {
		for _, blocks := range byBorrower {
			n += len(blocks)
		}
	}
	return n
}
