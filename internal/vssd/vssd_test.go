package vssd

import (
	"testing"

	"rackblox/internal/flash"
	"rackblox/internal/sim"
	"rackblox/internal/ssd"
)

func testDev(t *testing.T) *ssd.Device {
	t.Helper()
	geo := flash.Geometry{Channels: 4, ChipsPerChannel: 2, BlocksPerChip: 8, PagesPerBlock: 16, PageSize: 4096}
	d, err := ssd.NewDevice(sim.NewEngine(), geo, flash.ProfilePSSD())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestIsolationString(t *testing.T) {
	if Hardware.String() != "hardware" || Software.String() != "software" {
		t.Fatal("isolation strings")
	}
	if Isolation(7).String() == "" {
		t.Fatal("unknown isolation string")
	}
}

func TestHardwareIsolatedOwnsChannels(t *testing.T) {
	d := testDev(t)
	v, err := NewHardwareIsolated(d, 1, []int{0, 1}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if v.Iso != Hardware {
		t.Fatal("wrong isolation class")
	}
	chs := v.Channels()
	if len(chs) != 2 || chs[0] != 0 || chs[1] != 1 {
		t.Fatalf("channels = %v", chs)
	}
	// Hardware isolation admits immediately.
	if v.Admit(12345) != 12345 {
		t.Fatal("hardware vSSD throttled")
	}
}

func TestHardwareIsolatedValidation(t *testing.T) {
	d := testDev(t)
	if _, err := NewHardwareIsolated(d, 1, nil, 0.8); err == nil {
		t.Error("no channels accepted")
	}
	if _, err := NewHardwareIsolated(d, 1, []int{99}, 0.8); err == nil {
		t.Error("bad channel accepted")
	}
}

func TestSoftwareIsolatedThrottles(t *testing.T) {
	d := testDev(t)
	v, err := NewSoftwareIsolated(d, 2, d.ChannelChips(0)[:1], 0.8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v.Iso != Software {
		t.Fatal("wrong isolation class")
	}
	now := sim.Time(0)
	delayed := false
	for i := 0; i < 200; i++ {
		rel := v.Admit(now)
		if rel > now {
			delayed = true
			break
		}
	}
	if !delayed {
		t.Fatal("software vSSD never throttled at 1000 IOPS burst")
	}
}

func TestSoftwareIsolatedValidation(t *testing.T) {
	d := testDev(t)
	if _, err := NewSoftwareIsolated(d, 2, nil, 0.8, 100); err == nil {
		t.Error("no chips accepted")
	}
}

func TestGCStateTracking(t *testing.T) {
	d := testDev(t)
	v, _ := NewHardwareIsolated(d, 1, []int{0}, 0.8)
	if v.InGC(0) {
		t.Fatal("fresh vSSD in GC")
	}
	v.StartGC(1000)
	if !v.InGC(500) {
		t.Fatal("not in GC mid-burst")
	}
	if v.GCEndsAt() != 1000 {
		t.Fatalf("gc end = %d", v.GCEndsAt())
	}
	if v.InGC(1000) {
		t.Fatal("still in GC after burst end")
	}
	v.StartGC(2000)
	v.FinishGC()
	if v.InGC(1500) {
		t.Fatal("in GC after FinishGC")
	}
	if v.GCEndsAt() != 0 {
		t.Fatal("gc end not cleared")
	}
}

func TestTokenBucketDisabled(t *testing.T) {
	tb := NewTokenBucket(0, 10)
	if tb.Admit(55) != 55 {
		t.Fatal("disabled bucket delayed")
	}
}

func TestTokenBucketRate(t *testing.T) {
	tb := NewTokenBucket(1000, 1)
	r1 := tb.Admit(0)
	r2 := tb.Admit(0)
	if r1 != 0 {
		t.Fatal("first request delayed")
	}
	if r2 != sim.Millisecond {
		t.Fatalf("second release = %d, want 1ms", r2)
	}
}

func newGroup(t *testing.T, d *ssd.Device) (*ChannelGroup, *VSSD, *VSSD) {
	t.Helper()
	// Two SW-isolated vSSDs on channel 0, one chip each.
	chips := d.ChannelChips(0)
	a, err := NewSoftwareIsolated(d, 10, chips[:1], 0.85, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSoftwareIsolated(d, 11, chips[1:2], 0.85, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewChannelGroup(2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	return g, a, b
}

func TestChannelGroupValidation(t *testing.T) {
	d := testDev(t)
	if _, err := NewChannelGroup(2); err == nil {
		t.Error("empty group accepted")
	}
	hw, _ := NewHardwareIsolated(d, 1, []int{1}, 0.8)
	sw, _ := NewSoftwareIsolated(d, 2, d.ChannelChips(0)[:1], 0.8, 0)
	if _, err := NewChannelGroup(2, sw, hw); err == nil {
		t.Error("hardware-isolated member accepted")
	}
	sw2, _ := NewSoftwareIsolated(d, 3, d.ChannelChips(2)[:1], 0.8, 0)
	if _, err := NewChannelGroup(2, sw, sw2); err == nil {
		t.Error("cross-channel group accepted")
	}
}

func TestGroupMembership(t *testing.T) {
	d := testDev(t)
	g, a, b := newGroup(t, d)
	if a.Group() != g || b.Group() != g {
		t.Fatal("members not linked to group")
	}
	if g.FreeRatio() != 1.0 {
		t.Fatalf("fresh group free ratio = %f", g.FreeRatio())
	}
}

func TestRebalanceLendsBlocks(t *testing.T) {
	d := testDev(t)
	g, a, _ := newGroup(t, d)
	// Exhaust member a's free blocks with writes.
	for i := 0; ; i++ {
		if _, err := a.FTL.Write(i % a.FTL.LogicalPages()); err != nil {
			break
		}
	}
	if a.FTL.FreeBlocks() > 2 {
		t.Fatalf("a still has %d free blocks", a.FTL.FreeBlocks())
	}
	moved := g.Rebalance()
	if moved == 0 {
		t.Fatal("rebalance moved nothing")
	}
	if g.OutstandingLoans() != moved {
		t.Fatalf("loans = %d, want %d", g.OutstandingLoans(), moved)
	}
	// Borrower can write again.
	if _, err := a.FTL.Write(0); err != nil {
		t.Fatalf("write after borrow: %v", err)
	}
}

func TestRebalanceNeedsHealthyLender(t *testing.T) {
	d := testDev(t)
	g, a, b := newGroup(t, d)
	// Exhaust both members: nobody can lend.
	for _, m := range []*VSSD{a, b} {
		for i := 0; ; i++ {
			if _, err := m.FTL.Write(i % m.FTL.LogicalPages()); err != nil {
				break
			}
		}
	}
	if moved := g.Rebalance(); moved != 0 {
		t.Fatalf("rebalance moved %d blocks with no healthy lender", moved)
	}
}

func TestGroupCollectReturnsLoans(t *testing.T) {
	d := testDev(t)
	g, a, b := newGroup(t, d)
	for i := 0; ; i++ {
		if _, err := a.FTL.Write(i % a.FTL.LogicalPages()); err != nil {
			break
		}
	}
	g.Rebalance()
	// Borrower consumes loaned blocks.
	for i := 0; ; i++ {
		if _, err := a.FTL.Write(i % a.FTL.LogicalPages()); err != nil {
			break
		}
	}
	lenderFreeBefore := b.FTL.FreeBlocks()
	res := g.GroupCollect(0.5, 0)
	if res.Blocks == 0 {
		t.Fatal("group collect reclaimed nothing")
	}
	if g.OutstandingLoans() != 0 {
		t.Fatalf("loans outstanding after group GC: %d", g.OutstandingLoans())
	}
	if b.FTL.FreeBlocks() <= lenderFreeBefore {
		t.Fatalf("lender free blocks %d did not recover from %d",
			b.FTL.FreeBlocks(), lenderFreeBefore)
	}
	if len(res.PerChannel) == 0 || res.Duration == 0 {
		t.Fatal("group collect did not account channel time")
	}
}

func TestGroupFreeRatioAggregates(t *testing.T) {
	d := testDev(t)
	g, a, _ := newGroup(t, d)
	before := g.FreeRatio()
	for i := 0; i < a.FTL.LogicalPages(); i++ {
		if _, err := a.FTL.Write(i); err != nil {
			break
		}
	}
	after := g.FreeRatio()
	if after >= before {
		t.Fatalf("group ratio did not fall: %f -> %f", before, after)
	}
	// One member exhausted but group ratio stays above the single-member
	// ratio because the other member is fresh.
	own := float64(a.FTL.FreeBlocks()) / float64(a.FTL.TotalBlocks())
	if after <= own {
		t.Fatalf("group ratio %f <= member ratio %f", after, own)
	}
}
