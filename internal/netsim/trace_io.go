package netsim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"rackblox/internal/sim"
)

// Trace I/O: the paper replays latency traces collected from real data
// centers ("we emulate datacenter network traffic in our cluster using
// traces and released network traffic distributions", §3.7). These
// helpers persist and reload traces as two-column CSV
// (sample_index, latency_ns), so externally collected traces can drive
// the simulation.

// WriteCSV serializes the trace.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "latency_ns"}); err != nil {
		return err
	}
	for i, s := range t.Samples {
		if err := cw.Write([]string{strconv.Itoa(i), strconv.FormatInt(int64(s), 10)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a trace written by WriteCSV (or any two-column CSV whose
// second column is a latency in nanoseconds; a non-numeric header row is
// skipped).
func ReadCSV(name string, r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	t := &Trace{Name: name}
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("netsim: trace line %d: %w", line, err)
		}
		v, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("netsim: trace line %d: %w", line, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("netsim: trace line %d: negative latency %d", line, v)
		}
		t.Samples = append(t.Samples, sim.Time(v))
	}
	if len(t.Samples) == 0 {
		return nil, fmt.Errorf("netsim: trace %q has no samples", name)
	}
	return t, nil
}

// Stats summarizes a trace for validation against its source.
func (t *Trace) Stats() (min, median, max sim.Time) {
	if len(t.Samples) == 0 {
		return 0, 0, 0
	}
	sorted := append([]sim.Time(nil), t.Samples...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1]
}
