package netsim

import (
	"sort"
	"testing"

	"rackblox/internal/sim"
)

func sampleMany(n *Network, count int) []sim.Time {
	out := make([]sim.Time, count)
	now := sim.Time(0)
	for i := range out {
		out[i] = n.HopLatency(now)
		now += 100 * sim.Microsecond
	}
	return out
}

func median(v []sim.Time) sim.Time {
	c := append([]sim.Time(nil), v...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c[len(c)/2]
}

func TestProfilesOrdered(t *testing.T) {
	f, m, s := ProfileFast(), ProfileMedium(), ProfileSlow()
	if !(f.MedianNS < m.MedianNS && m.MedianNS < s.MedianNS) {
		t.Fatal("profile medians not ordered Fast < Medium < Slow")
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"Fast", "Medium", "Slow"} {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ProfileByName(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := ProfileByName("warp"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestMedianNearProfile(t *testing.T) {
	for _, prof := range []Profile{ProfileFast(), ProfileMedium(), ProfileSlow()} {
		n := New(prof, sim.NewRNG(1))
		med := float64(median(sampleMany(n, 20000)))
		if med < 0.7*prof.MedianNS || med > 1.6*prof.MedianNS {
			t.Errorf("%s: sample median %f vs profile %f", prof.Name, med, prof.MedianNS)
		}
	}
}

func TestLatencyFloor(t *testing.T) {
	n := New(ProfileFast(), sim.NewRNG(2))
	for _, v := range sampleMany(n, 5000) {
		if v < 1000 {
			t.Fatalf("hop latency %d below 1us floor", v)
		}
	}
}

func TestHeavyTailExists(t *testing.T) {
	n := New(ProfileMedium(), sim.NewRNG(3))
	v := sampleMany(n, 20000)
	med := median(v)
	big := 0
	for _, x := range v {
		if x > 5*med {
			big++
		}
	}
	if big == 0 {
		t.Fatal("no heavy-tail samples observed")
	}
}

func TestCongestionRaisesLatency(t *testing.T) {
	n := New(ProfileFast(), sim.NewRNG(4))
	var congested, clear []sim.Time
	now := sim.Time(0)
	for i := 0; i < 200000 && (len(congested) < 500 || len(clear) < 500); i++ {
		c := n.Congested(now)
		l := n.HopLatency(now)
		if c {
			congested = append(congested, l)
		} else {
			clear = append(clear, l)
		}
		now += 20 * sim.Microsecond
	}
	if len(congested) < 100 {
		t.Fatalf("only %d congested samples; episodes not occurring", len(congested))
	}
	if median(congested) < 3*median(clear) {
		t.Fatalf("congested median %d not clearly above clear median %d",
			median(congested), median(clear))
	}
}

func TestCongestionEpisodesEnd(t *testing.T) {
	n := New(ProfileSlow(), sim.NewRNG(5))
	sawCongested, sawClear := false, false
	now := sim.Time(0)
	for i := 0; i < 100000; i++ {
		if n.Congested(now) {
			sawCongested = true
		} else {
			sawClear = true
		}
		now += 50 * sim.Microsecond
	}
	if !sawCongested || !sawClear {
		t.Fatalf("congested=%v clear=%v; both states must occur", sawCongested, sawClear)
	}
}

func TestPathLatencySumsHops(t *testing.T) {
	n := New(ProfileFast(), sim.NewRNG(6))
	one := float64(median(sampleMany(n, 5000)))
	n2 := New(ProfileFast(), sim.NewRNG(7))
	var paths []sim.Time
	now := sim.Time(0)
	for i := 0; i < 5000; i++ {
		paths = append(paths, n2.PathLatency(now, 2))
		now += 100 * sim.Microsecond
	}
	two := float64(median(paths))
	if two < 1.5*one || two > 3*one {
		t.Fatalf("2-hop median %f vs 1-hop median %f; want roughly double", two, one)
	}
}

func TestDeterminism(t *testing.T) {
	a := New(ProfileMedium(), sim.NewRNG(42))
	b := New(ProfileMedium(), sim.NewRNG(42))
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		if a.HopLatency(now) != b.HopLatency(now) {
			t.Fatal("same seed produced different latencies")
		}
		now += 10 * sim.Microsecond
	}
}

func TestTraceRecordReplay(t *testing.T) {
	n := New(ProfileFast(), sim.NewRNG(8))
	tr := Record(n, 100, sim.Millisecond, 2)
	if len(tr.Samples) != 100 {
		t.Fatalf("recorded %d samples, want 100", len(tr.Samples))
	}
	first := make([]sim.Time, 150)
	for i := range first {
		first[i] = tr.Next()
	}
	// Replay wraps around after 100.
	if first[100] != first[0] || first[149] != first[49] {
		t.Fatal("trace replay does not cycle")
	}
}

func TestTraceScale(t *testing.T) {
	tr := &Trace{Samples: []sim.Time{100, 200, 300}}
	tr.Scale(2.5)
	want := []sim.Time{250, 500, 750}
	for i := range want {
		if tr.Samples[i] != want[i] {
			t.Fatalf("scaled sample %d = %d, want %d", i, tr.Samples[i], want[i])
		}
	}
}

func TestEmptyTraceNext(t *testing.T) {
	tr := &Trace{}
	if tr.Next() != 0 {
		t.Fatal("empty trace Next != 0")
	}
}
