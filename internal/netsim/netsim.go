// Package netsim models datacenter network latency for the RackBlox
// simulation. The paper drives its testbed with traces from three sources
// — PTPmesh [67] (fast), tenant-inferred latency [59] (medium), and AWS
// tenant measurements [32] (slow) — scaled to emulate congestion. We
// synthesize the same three regimes: a log-normal latency body, a Pareto
// tail, and on/off congestion episodes that multiply latency while active.
package netsim

import (
	"fmt"

	"rackblox/internal/sim"
)

// Profile parameterizes one latency regime for a single network hop
// (host -> ToR or ToR -> host).
type Profile struct {
	Name string
	// MedianNS is the median one-hop latency.
	MedianNS float64
	// Sigma is the log-normal shape of the latency body.
	Sigma float64
	// TailProb is the probability a sample comes from the Pareto tail.
	TailProb float64
	// TailAlpha is the Pareto tail index (smaller = heavier).
	TailAlpha float64
	// CongestionRate is the mean time between congestion episodes.
	CongestionRate sim.Time
	// CongestionDur is the mean length of an episode.
	CongestionDur sim.Time
	// CongestionFactor multiplies latency during an episode.
	CongestionFactor float64
}

// The three regimes of §4.5.3. Values are one-way per-hop latencies chosen
// to land end-to-end RTTs in the ranges the cited measurement studies
// report: tens of µs (intra-rack, PTPmesh), hundreds of µs (tenant-level),
// and around a millisecond (cross-AZ AWS).
func ProfileFast() Profile {
	return Profile{
		Name: "Fast", MedianNS: 12_000, Sigma: 0.35, TailProb: 0.01, TailAlpha: 2.2,
		CongestionRate: 120 * sim.Millisecond, CongestionDur: 6 * sim.Millisecond, CongestionFactor: 6,
	}
}

func ProfileMedium() Profile {
	return Profile{
		Name: "Medium", MedianNS: 60_000, Sigma: 0.45, TailProb: 0.015, TailAlpha: 2.0,
		CongestionRate: 100 * sim.Millisecond, CongestionDur: 8 * sim.Millisecond, CongestionFactor: 7,
	}
}

func ProfileSlow() Profile {
	return Profile{
		Name: "Slow", MedianNS: 250_000, Sigma: 0.55, TailProb: 0.02, TailAlpha: 1.8,
		CongestionRate: 80 * sim.Millisecond, CongestionDur: 10 * sim.Millisecond, CongestionFactor: 8,
	}
}

// ProfileByName resolves one of the three regimes.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "Fast":
		return ProfileFast(), nil
	case "Medium":
		return ProfileMedium(), nil
	case "Slow":
		return ProfileSlow(), nil
	}
	return Profile{}, fmt.Errorf("netsim: unknown profile %q", name)
}

// Network samples hop latencies under a profile, maintaining congestion
// state in virtual time. It is deterministic for a given seed.
type Network struct {
	prof Profile
	rng  *sim.RNG
	// congestion window [start, end) currently or next in effect.
	congStart sim.Time
	congEnd   sim.Time
}

// New creates a network latency model.
func New(prof Profile, rng *sim.RNG) *Network {
	n := &Network{prof: prof, rng: rng}
	n.scheduleNextEpisode(0)
	return n
}

// Profile returns the model's profile.
func (n *Network) Profile() Profile { return n.prof }

func (n *Network) scheduleNextEpisode(after sim.Time) {
	gap := n.rng.Exp(n.prof.CongestionRate)
	dur := n.rng.Exp(n.prof.CongestionDur)
	if dur < sim.Millisecond {
		dur = sim.Millisecond
	}
	n.congStart = after + gap
	n.congEnd = n.congStart + dur
}

// Congested reports whether a congestion episode covers time now.
func (n *Network) Congested(now sim.Time) bool {
	n.advance(now)
	return now >= n.congStart && now < n.congEnd
}

func (n *Network) advance(now sim.Time) {
	for now >= n.congEnd {
		n.scheduleNextEpisode(n.congEnd)
	}
}

// HopLatency samples the latency of one hop beginning at time now.
func (n *Network) HopLatency(now sim.Time) sim.Time {
	n.advance(now)
	var v float64
	if n.rng.Float64() < n.prof.TailProb {
		v = n.rng.Pareto(n.prof.MedianNS*2, n.prof.TailAlpha)
	} else {
		v = n.rng.LogNormal(n.prof.MedianNS, n.prof.Sigma)
	}
	if now >= n.congStart && now < n.congEnd {
		v *= n.prof.CongestionFactor
	}
	lat := sim.Time(v)
	if lat < 1000 {
		lat = 1000 // 1us floor: wire and serialization are never free
	}
	return lat
}

// PathLatency samples a hops-hop path (e.g. host->ToR->host is 2 hops).
func (n *Network) PathLatency(now sim.Time, hops int) sim.Time {
	var total sim.Time
	for i := 0; i < hops; i++ {
		total += n.HopLatency(now + total)
	}
	return total
}

// Trace is a recorded latency sequence that can be replayed, standing in
// for the released datacenter traces the paper replays.
type Trace struct {
	Name    string
	Samples []sim.Time
	next    int
}

// Record samples count path latencies at the given interarrival spacing.
func Record(n *Network, count int, spacing sim.Time, hops int) *Trace {
	t := &Trace{Name: n.prof.Name}
	now := sim.Time(0)
	for i := 0; i < count; i++ {
		t.Samples = append(t.Samples, n.PathLatency(now, hops))
		now += spacing
	}
	return t
}

// Next replays the trace cyclically.
func (t *Trace) Next() sim.Time {
	if len(t.Samples) == 0 {
		return 0
	}
	v := t.Samples[t.next]
	t.next = (t.next + 1) % len(t.Samples)
	return v
}

// Scale multiplies every sample by k, mirroring the paper's trace scaling
// ("we scale the trace in [67] following the latency patterns in [32,59]").
func (t *Trace) Scale(k float64) {
	for i := range t.Samples {
		t.Samples[i] = sim.Time(float64(t.Samples[i]) * k)
	}
}
