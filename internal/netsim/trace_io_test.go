package netsim

import (
	"bytes"
	"strings"
	"testing"

	"rackblox/internal/sim"
)

func TestTraceCSVRoundTrip(t *testing.T) {
	n := New(ProfileFast(), sim.NewRNG(21))
	orig := Record(n, 200, sim.Millisecond, 2)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("roundtrip", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(orig.Samples) {
		t.Fatalf("samples = %d, want %d", len(back.Samples), len(orig.Samples))
	}
	for i := range orig.Samples {
		if back.Samples[i] != orig.Samples[i] {
			t.Fatalf("sample %d = %d, want %d", i, back.Samples[i], orig.Samples[i])
		}
	}
}

func TestReadCSVHeaderOptional(t *testing.T) {
	noHeader := "0,1000\n1,2000\n"
	tr, err := ReadCSV("x", strings.NewReader(noHeader))
	if err != nil || len(tr.Samples) != 2 {
		t.Fatalf("no-header parse: %v, %d", err, len(tr.Samples))
	}
	withHeader := "index,latency_ns\n0,1000\n"
	tr, err = ReadCSV("y", strings.NewReader(withHeader))
	if err != nil || len(tr.Samples) != 1 {
		t.Fatalf("header parse: %v, %d", err, len(tr.Samples))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                   // empty
		"index,latency_ns\n", // header only
		"0,abc\n1,xyz\n",     // non-numeric data row
		"0,-5\n",             // negative latency
		"justonecolumn\n",    // wrong field count
	}
	for _, c := range cases {
		if _, err := ReadCSV("bad", strings.NewReader(c)); err == nil {
			t.Errorf("accepted malformed trace %q", c)
		}
	}
}

func TestTraceStats(t *testing.T) {
	tr := &Trace{Samples: []sim.Time{30, 10, 20}}
	min, med, max := tr.Stats()
	if min != 10 || med != 20 || max != 30 {
		t.Fatalf("stats = %d/%d/%d", min, med, max)
	}
	empty := &Trace{}
	if a, b, c := empty.Stats(); a != 0 || b != 0 || c != 0 {
		t.Fatal("empty stats not zero")
	}
}
