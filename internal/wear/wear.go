// Package wear simulates RackBlox's two-level rack-scale wear leveling
// (§3.6, Figs. 8, 22, 23): a local (intra-server) balancer that swaps the
// most-worn SSD's workload with the SSD wearing slowest, and a global
// (inter-server) balancer that does the same across servers on a longer
// period. Time advances in days; wear is the average per-block erase
// count φ, and imbalance is λ = φ_max / φ_avg, bounded by 1+γ.
package wear

import (
	"fmt"

	"rackblox/internal/sim"
	"rackblox/internal/workload"
)

// Config parameterizes the wear simulation.
type Config struct {
	// Servers, SSDsPerServer, VSSDsPerSSD give the rack shape
	// (Fig. 22/23 use 32 x 16 x 4).
	Servers       int
	SSDsPerServer int
	VSSDsPerSSD   int
	// LocalPeriodDays is the intra-server swap period (12 days per §3.6);
	// 0 disables local swapping.
	LocalPeriodDays int
	// GlobalPeriodDays is the inter-server swap period (8 weeks = 56 days
	// by default); 0 disables global swapping.
	GlobalPeriodDays int
	// Gamma is the permitted imbalance: swaps trigger when λ > 1+γ.
	Gamma float64
	// SwapCostErases is the wear charged to each SSD involved in a swap
	// (migrating the data costs roughly one full-drive write; the paper
	// prices the worst case at 0.5% of lifetime).
	SwapCostErases float64
	// BaseEraseRate is erases/block/day caused by a 100%-write vSSD.
	BaseEraseRate float64
	// Seed drives workload assignment jitter.
	Seed int64
	// ReplaceProbPerYear is the chance an SSD fails and is replaced with
	// a fresh (zero-wear) one, per SSD per year.
	ReplaceProbPerYear float64
}

// DefaultConfig reproduces the Fig. 22/23 setup.
func DefaultConfig() Config {
	return Config{
		Servers:          32,
		SSDsPerServer:    16,
		VSSDsPerSSD:      4,
		LocalPeriodDays:  12,
		GlobalPeriodDays: 56,
		Gamma:            0.1,
		SwapCostErases:   1.0,
		BaseEraseRate:    2.0,
		Seed:             1,
	}
}

// vslot is one vSSD workload placement: a per-day erase rate.
type vslot struct {
	Workload string
	Rate     float64
}

// SSD is one drive's wear state.
type SSD struct {
	// Wear is the average per-block erase count to date (φ).
	Wear float64
	// Slots are the vSSD workloads currently placed on this drive.
	Slots []vslot
	// Swaps counts migrations involving this drive.
	Swaps int
}

// Rate returns the drive's current total erase rate per day.
func (s *SSD) Rate() float64 {
	var r float64
	for _, v := range s.Slots {
		r += v.Rate
	}
	return r
}

// Rack is the wear-simulation state.
type Rack struct {
	cfg  Config
	SSDs [][]*SSD // [server][ssd]
	day  int
	rng  *sim.RNG

	// LocalSwaps / GlobalSwaps / Replacements count events.
	LocalSwaps   int
	GlobalSwaps  int
	Replacements int
}

// New builds the rack and assigns vSSD workloads round-robin across
// servers (the load-balancing placement of modern infrastructures, §4.6),
// cycling through the Table 2 workloads.
func New(cfg Config) (*Rack, error) {
	if cfg.Servers < 1 || cfg.SSDsPerServer < 1 || cfg.VSSDsPerSSD < 1 {
		return nil, fmt.Errorf("wear: invalid rack shape %+v", cfg)
	}
	if cfg.Gamma <= 0 {
		cfg.Gamma = 0.1
	}
	if cfg.BaseEraseRate <= 0 {
		cfg.BaseEraseRate = 2.0
	}
	r := &Rack{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}
	r.SSDs = make([][]*SSD, cfg.Servers)
	for s := range r.SSDs {
		r.SSDs[s] = make([]*SSD, cfg.SSDsPerServer)
		for d := range r.SSDs[s] {
			r.SSDs[s][d] = &SSD{}
		}
	}
	// Round-robin vSSD placement across servers, then SSDs.
	rows := workload.Table2()[1:] // skip the configurable YCSB row
	total := cfg.Servers * cfg.SSDsPerServer * cfg.VSSDsPerSSD
	for i := 0; i < total; i++ {
		srv := i % cfg.Servers
		dev := (i / cfg.Servers) % cfg.SSDsPerServer
		row := rows[i%len(rows)]
		// Jitter separates instances of the same workload (+/-30%).
		jitter := 0.7 + 0.6*r.rng.Float64()
		rate := cfg.BaseEraseRate * row.WritePct / 100 * jitter
		r.SSDs[srv][dev].Slots = append(r.SSDs[srv][dev].Slots,
			vslot{Workload: row.Name, Rate: rate})
	}
	return r, nil
}

// Day returns the simulated day count.
func (r *Rack) Day() int { return r.day }

// StepDay advances one day: wear accrues, failures replace drives, and the
// balancers run on their periods.
func (r *Rack) StepDay() {
	r.day++
	for _, server := range r.SSDs {
		for _, ssd := range server {
			ssd.Wear += ssd.Rate()
		}
	}
	if p := r.cfg.ReplaceProbPerYear / 365; p > 0 {
		for _, server := range r.SSDs {
			for _, ssd := range server {
				if r.rng.Bool(p) {
					ssd.Wear = 0
					ssd.Swaps = 0
					r.Replacements++
				}
			}
		}
	}
	if r.cfg.LocalPeriodDays > 0 && r.day%r.cfg.LocalPeriodDays == 0 {
		for s := range r.SSDs {
			r.localBalance(s)
		}
	}
	if r.cfg.GlobalPeriodDays > 0 && r.day%r.cfg.GlobalPeriodDays == 0 {
		r.globalBalance()
	}
}

// RunDays advances n days.
func (r *Rack) RunDays(n int) {
	for i := 0; i < n; i++ {
		r.StepDay()
	}
}

// RunWeeks advances n weeks.
func (r *Rack) RunWeeks(n int) { r.RunDays(7 * n) }

// localBalance swaps, within one server, the workload of the most-worn
// SSD with that of the SSD with the minimum wear rate — the relaxed
// FlashBlox-style policy of §3.6 — when λ exceeds 1+γ.
func (r *Rack) localBalance(server int) {
	ssds := r.SSDs[server]
	if r.imbalance(ssds) <= 1+r.cfg.Gamma {
		return
	}
	maxWear := maxBy(ssds, func(s *SSD) float64 { return s.Wear })
	minRate := minBy(ssds, func(s *SSD) float64 { return s.Rate() })
	if maxWear == minRate {
		return
	}
	r.swap(maxWear, minRate)
	r.LocalSwaps++
}

// globalBalance swaps across servers: the most-worn SSD in the rack
// exchanges workloads with the slowest-wearing SSD of the least-worn
// server.
func (r *Rack) globalBalance() {
	if r.RackImbalance() <= 1+r.cfg.Gamma {
		return
	}
	var hottest *SSD
	for _, server := range r.SSDs {
		if c := maxBy(server, func(s *SSD) float64 { return s.Wear }); hottest == nil || c.Wear > hottest.Wear {
			hottest = c
		}
	}
	coolestServer := r.SSDs[0]
	coolestAvg := avgWear(r.SSDs[0])
	for _, server := range r.SSDs[1:] {
		if a := avgWear(server); a < coolestAvg {
			coolestAvg = a
			coolestServer = server
		}
	}
	coolest := minBy(coolestServer, func(s *SSD) float64 { return s.Rate() })
	if hottest == coolest {
		return
	}
	r.swap(hottest, coolest)
	r.GlobalSwaps++
}

// swap exchanges workload placements and charges migration wear.
func (r *Rack) swap(a, b *SSD) {
	a.Slots, b.Slots = b.Slots, a.Slots
	a.Wear += r.cfg.SwapCostErases
	b.Wear += r.cfg.SwapCostErases
	a.Swaps++
	b.Swaps++
}

func (r *Rack) imbalance(ssds []*SSD) float64 {
	max, sum := 0.0, 0.0
	for _, s := range ssds {
		if s.Wear > max {
			max = s.Wear
		}
		sum += s.Wear
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(ssds)))
}

// ServerImbalance returns λ = φ_max/φ_avg within one server (Fig. 22).
func (r *Rack) ServerImbalance(server int) float64 {
	return r.imbalance(r.SSDs[server])
}

// RackImbalance returns λ across every SSD in the rack (Fig. 23).
func (r *Rack) RackImbalance() float64 {
	var all []*SSD
	for _, server := range r.SSDs {
		all = append(all, server...)
	}
	return r.imbalance(all)
}

// ServerWears returns per-SSD wear for one server, for Fig. 22 bars.
func (r *Rack) ServerWears(server int) []float64 {
	out := make([]float64, len(r.SSDs[server]))
	for i, s := range r.SSDs[server] {
		out[i] = s.Wear
	}
	return out
}

func avgWear(ssds []*SSD) float64 {
	var sum float64
	for _, s := range ssds {
		sum += s.Wear
	}
	return sum / float64(len(ssds))
}

func maxBy(ssds []*SSD, key func(*SSD) float64) *SSD {
	best := ssds[0]
	for _, s := range ssds[1:] {
		if key(s) > key(best) {
			best = s
		}
	}
	return best
}

func minBy(ssds []*SSD, key func(*SSD) float64) *SSD {
	best := ssds[0]
	for _, s := range ssds[1:] {
		if key(s) < key(best) {
			best = s
		}
	}
	return best
}
