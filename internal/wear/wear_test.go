package wear

import (
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Servers = 4
	cfg.SSDsPerServer = 8
	return cfg
}

func noSwap(cfg Config) Config {
	cfg.LocalPeriodDays = 0
	cfg.GlobalPeriodDays = 0
	return cfg
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestRoundRobinPlacementFillsAllSlots(t *testing.T) {
	r, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for s, server := range r.SSDs {
		for d, ssd := range server {
			if len(ssd.Slots) != r.cfg.VSSDsPerSSD {
				t.Fatalf("server %d ssd %d has %d slots, want %d",
					s, d, len(ssd.Slots), r.cfg.VSSDsPerSSD)
			}
			if ssd.Rate() <= 0 {
				t.Fatalf("server %d ssd %d has zero erase rate", s, d)
			}
		}
	}
}

func TestWearAccrues(t *testing.T) {
	r, _ := New(noSwap(smallConfig()))
	r.RunDays(10)
	for _, server := range r.SSDs {
		for _, ssd := range server {
			if ssd.Wear <= 0 {
				t.Fatal("no wear after 10 days")
			}
		}
	}
	if r.Day() != 10 {
		t.Fatalf("day = %d", r.Day())
	}
}

func TestNoSwapDevelopsImbalance(t *testing.T) {
	r, _ := New(noSwap(smallConfig()))
	r.RunWeeks(52)
	if r.LocalSwaps != 0 || r.GlobalSwaps != 0 {
		t.Fatal("swaps happened with swapping disabled")
	}
	if r.RackImbalance() < 1.15 {
		t.Fatalf("no-swap rack imbalance = %f, expected drift well above 1.1",
			r.RackImbalance())
	}
}

func TestLocalBalancerBoundsServerImbalance(t *testing.T) {
	cfg := smallConfig()
	cfg.GlobalPeriodDays = 0 // local only
	r, _ := New(cfg)
	r.RunWeeks(52)
	if r.LocalSwaps == 0 {
		t.Fatal("local balancer never swapped")
	}
	for s := range r.SSDs {
		if im := r.ServerImbalance(s); im > 1.25 {
			t.Fatalf("server %d imbalance %f after a year of local balancing", s, im)
		}
	}
}

func TestTwoLevelBalancingBeatsNoSwap(t *testing.T) {
	balanced, _ := New(smallConfig())
	unbalanced, _ := New(noSwap(smallConfig()))
	balanced.RunWeeks(80)
	unbalanced.RunWeeks(80)
	if balanced.RackImbalance() >= unbalanced.RackImbalance() {
		t.Fatalf("balanced %f >= unbalanced %f",
			balanced.RackImbalance(), unbalanced.RackImbalance())
	}
	if balanced.RackImbalance() > 1.2 {
		t.Fatalf("rack imbalance %f after 80 weeks of two-level balancing",
			balanced.RackImbalance())
	}
}

func TestShorterGlobalPeriodBalancesTighter(t *testing.T) {
	fast := smallConfig()
	fast.GlobalPeriodDays = 28
	slow := smallConfig()
	slow.GlobalPeriodDays = 84
	rf, _ := New(fast)
	rs, _ := New(slow)
	rf.RunWeeks(80)
	rs.RunWeeks(80)
	// More frequent global swaps must not be worse (Fig. 23 ordering).
	if rf.RackImbalance() > rs.RackImbalance()+0.05 {
		t.Fatalf("4-week swaps imbalance %f worse than 12-week %f",
			rf.RackImbalance(), rs.RackImbalance())
	}
}

func TestSwapChargesMigrationCost(t *testing.T) {
	cfg := smallConfig()
	cfg.SwapCostErases = 5
	r, _ := New(cfg)
	r.RunWeeks(30)
	if r.LocalSwaps+r.GlobalSwaps == 0 {
		t.Skip("no swaps occurred to observe cost")
	}
	swapped := 0
	for _, server := range r.SSDs {
		for _, ssd := range server {
			swapped += ssd.Swaps
		}
	}
	if swapped == 0 {
		t.Fatal("swap counters not maintained")
	}
}

func TestReplacementCreatesFreshDrive(t *testing.T) {
	cfg := noSwap(smallConfig())
	cfg.ReplaceProbPerYear = 50 // extremely failure-prone for the test
	r, _ := New(cfg)
	r.RunWeeks(20)
	if r.Replacements == 0 {
		t.Fatal("no replacements at huge failure rate")
	}
}

func TestBalancerRecoversFromReplacement(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	r.RunWeeks(26)
	// Force-replace one drive: wear drops to zero, imbalance jumps.
	r.SSDs[0][0].Wear = 0
	r.Replacements++
	jump := r.ServerImbalance(0)
	r.RunWeeks(54)
	after := r.ServerImbalance(0)
	if after >= jump {
		t.Fatalf("imbalance did not recover after replacement: %f -> %f", jump, after)
	}
}

func TestImbalanceDegenerate(t *testing.T) {
	r, _ := New(smallConfig())
	// Before any wear, imbalance is defined as 1.
	if r.RackImbalance() != 1 {
		t.Fatalf("fresh rack imbalance = %f, want 1", r.RackImbalance())
	}
}

func TestServerWears(t *testing.T) {
	r, _ := New(noSwap(smallConfig()))
	r.RunDays(5)
	w := r.ServerWears(0)
	if len(w) != r.cfg.SSDsPerServer {
		t.Fatalf("wears len = %d", len(w))
	}
	for _, v := range w {
		if v <= 0 {
			t.Fatal("zero wear entry")
		}
	}
}

// Property: imbalance is always >= 1 and finite, for any horizon and any
// balancing configuration.
func TestImbalanceBoundsProperty(t *testing.T) {
	f := func(weeks uint8, local, global uint8) bool {
		cfg := smallConfig()
		cfg.LocalPeriodDays = int(local % 30)
		cfg.GlobalPeriodDays = int(global % 90)
		r, err := New(cfg)
		if err != nil {
			return false
		}
		r.RunWeeks(int(weeks % 40))
		im := r.RackImbalance()
		if im < 1 || im != im /* NaN */ {
			return false
		}
		for s := range r.SSDs {
			if v := r.ServerImbalance(s); v < 1 || v != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: total workload rate is conserved by swapping (swaps move
// placements, never create or destroy load).
func TestRateConservationProperty(t *testing.T) {
	f := func(weeks uint8) bool {
		r, err := New(smallConfig())
		if err != nil {
			return false
		}
		before := totalRate(r)
		r.RunWeeks(int(weeks%30) + 1)
		after := totalRate(r)
		diff := before - after
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func totalRate(r *Rack) float64 {
	var sum float64
	for _, server := range r.SSDs {
		for _, ssd := range server {
			sum += ssd.Rate()
		}
	}
	return sum
}
