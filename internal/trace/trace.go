// Package trace is the rack's flight recorder: a sim-time span tracer
// that records where each simulated I/O spends its latency — client
// queueing, ToR lookup and handoff, spine transfer wait vs service,
// server service, GC blocking, degraded-read reconstruction,
// retransmission — plus control-plane moments (scenario fail/revive,
// pacer rate changes, re-integration) as instants.
//
// Tracing is observer-only by construction: the tracer never schedules
// simulation events and never draws randomness, so a traced run
// executes the exact same event sequence as an untraced one. Recording
// costs memory, not virtual time.
//
// Span retention combines head sampling with a tail reservoir: one in
// Options.SampleEvery requests is kept by key hash (an unbiased
// cross-section of the workload), and the Options.TailKeep slowest
// reads are always kept regardless of the hash (the p99 story is in
// the tail, which uniform sampling would mostly miss). Repair and GC
// spans are few and always kept.
//
// WriteChromeTrace exports the collected trace as Chrome trace-event
// JSON loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
package trace

import (
	"math"
	"sort"

	"rackblox/internal/sim"
)

// Options configures the tracer. The zero value disables tracing.
type Options struct {
	// Enabled turns the flight recorder on.
	Enabled bool
	// SampleEvery keeps one in N requests by key hash (head sampling);
	// 1 keeps every request, 0 defaults to 16.
	SampleEvery int
	// TailKeep bounds the always-keep-slowest read reservoir; 0
	// defaults to 512. Reads this slow are kept even when the head
	// sample skips them, so tail attribution sees the whole p99 set as
	// long as 1% of reads fits in the reservoir.
	TailKeep int
}

// withDefaults fills unset knobs.
func (o Options) withDefaults() Options {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 16
	}
	if o.TailKeep <= 0 {
		o.TailKeep = 512
	}
	return o
}

// AttrKind is the type tag of a span annotation.
type AttrKind int

const (
	// AttrString annotations carry a string value.
	AttrString AttrKind = iota
	// AttrInt annotations carry an int64 value.
	AttrInt
)

// Attr is one typed key/value annotation on a span or instant.
type Attr struct {
	Key  string   `json:"key"`
	Kind AttrKind `json:"kind"`
	Str  string   `json:"str,omitempty"`
	Int  int64    `json:"int,omitempty"`
}

// String builds a string annotation.
func String(key, v string) Attr { return Attr{Key: key, Kind: AttrString, Str: v} }

// Int builds an integer annotation.
func Int(key string, v int64) Attr { return Attr{Key: key, Kind: AttrInt, Int: v} }

// Phase is one slice of a request's attribution partition: the phases
// of a finished root span tile [Start, End] exactly, so their
// durations sum to the end-to-end latency.
type Phase struct {
	Name string   `json:"name"`
	Dur  sim.Time `json:"dur"`
}

// Span is one timed operation. Request roots carry a Kind ("read" or
// "write"), a sampling Key, and an attribution Phases partition;
// children record nested detail (ToR dwell, spine wait/transfer,
// chunk fetches). All methods are nil-receiver-safe so call sites need
// no tracing-enabled guards.
type Span struct {
	Name     string   `json:"name"`
	Kind     string   `json:"kind,omitempty"`
	Key      uint64   `json:"key,omitempty"`
	Start    sim.Time `json:"start"`
	End      sim.Time `json:"end"`
	Attrs    []Attr   `json:"attrs,omitempty"`
	Phases   []Phase  `json:"phases,omitempty"`
	Children []*Span  `json:"children,omitempty"`

	tracer *Tracer
}

// Dur returns the span's duration.
func (s *Span) Dur() sim.Time {
	if s == nil {
		return 0
	}
	return s.End - s.Start
}

// Child opens a child span starting at start. Returns nil on a nil
// receiver.
func (s *Span) Child(name string, start sim.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: start, End: start}
	s.Children = append(s.Children, c)
	return c
}

// EndAt closes the span at t.
func (s *Span) EndAt(t sim.Time) {
	if s == nil {
		return
	}
	s.End = t
}

// Annotate appends typed annotations.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// Phase appends one attribution phase. Zero-duration phases are
// dropped; negative durations are clamped to zero (they would poison
// the fraction sums).
func (s *Span) Phase(name string, dur sim.Time) {
	if s == nil || dur <= 0 {
		return
	}
	s.Phases = append(s.Phases, Phase{Name: name, Dur: dur})
}

// Finish closes a root span at t and hands it to the tracer's
// retention policy. Request roots (kind "read"/"write") go through
// head sampling plus the tail reservoir; other roots are always kept.
func (s *Span) Finish(t sim.Time) {
	if s == nil {
		return
	}
	s.End = t
	if s.tracer != nil {
		s.tracer.finishRoot(s)
	}
}

// Instant is a zero-duration control-plane moment (scenario
// fail/revive, pacer rate change, repair enqueue/re-integration).
type Instant struct {
	Track string   `json:"track"`
	Name  string   `json:"name"`
	At    sim.Time `json:"at"`
	Attrs []Attr   `json:"attrs,omitempty"`
}

// GCSpan is one garbage-collection burst on a vSSD's channels.
type GCSpan struct {
	VSSD   uint32   `json:"vssd"`
	Kind   string   `json:"kind"`
	Start  sim.Time `json:"start"`
	End    sim.Time `json:"end"`
	Blocks int      `json:"blocks"`
}

// Tracer collects spans during one run. A nil *Tracer is a valid
// disabled tracer: every method no-ops and StartRequest returns nil
// spans whose methods also no-op, so the datapath calls the tracer
// unconditionally.
type Tracer struct {
	opts Options

	kept      []*Span
	reservoir []*Span // min-heap by (Dur, Key): slowest non-sampled reads
	instants  []Instant
	gcSpans   []GCSpan
	gcByVSSD  map[uint32][]int // indices into gcSpans, per vSSD

	totalReads int
	readDurs   []int64
}

// New returns a tracer, or nil (disabled) when opts.Enabled is false.
func New(opts Options) *Tracer {
	if !opts.Enabled {
		return nil
	}
	return &Tracer{opts: opts.withDefaults(), gcByVSSD: make(map[uint32][]int)}
}

// hash64 is splitmix64's finalizer: a cheap, well-mixed hash so head
// sampling by sequential keys is not periodic with workload structure.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StartRequest opens a root span for request key (kind "read" or
// "write") at time at. The span is provisional: whether it is kept is
// decided at Finish by the sampling policy.
func (t *Tracer) StartRequest(key uint64, kind string, at sim.Time) *Span {
	if t == nil {
		return nil
	}
	return &Span{Name: kind, Kind: kind, Key: key, Start: at, End: at, tracer: t}
}

// StartSpan opens an always-kept root span outside request sampling
// (repair batches and other background work — few and all wanted).
func (t *Tracer) StartSpan(name, kind string, key uint64, at sim.Time) *Span {
	if t == nil {
		return nil
	}
	return &Span{Name: name, Kind: kind, Key: key, Start: at, End: at, tracer: t}
}

// Instant records a control-plane moment on the named track.
func (t *Tracer) Instant(track, name string, at sim.Time, attrs ...Attr) {
	if t == nil {
		return
	}
	t.instants = append(t.instants, Instant{Track: track, Name: name, At: at, Attrs: attrs})
}

// RecordGC records one GC burst on vssd's channels over [start, end].
func (t *Tracer) RecordGC(vssd uint32, kind string, start, end sim.Time, blocks int) {
	if t == nil {
		return
	}
	t.gcByVSSD[vssd] = append(t.gcByVSSD[vssd], len(t.gcSpans))
	t.gcSpans = append(t.gcSpans, GCSpan{VSSD: vssd, Kind: kind, Start: start, End: end, Blocks: blocks})
}

// GCOverlap returns the total time GC bursts on vssd overlapped the
// window [from, to] — the gc_block share of a device service window.
func (t *Tracer) GCOverlap(vssd uint32, from, to sim.Time) sim.Time {
	if t == nil || to <= from {
		return 0
	}
	var total sim.Time
	for _, i := range t.gcByVSSD[vssd] {
		g := t.gcSpans[i]
		lo, hi := g.Start, g.End
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// slower orders spans for the tail reservoir's min-heap: the root is
// the fastest kept read, evicted first when a slower one arrives.
func slower(a, b *Span) bool {
	if ad, bd := a.Dur(), b.Dur(); ad != bd {
		return ad > bd
	}
	return a.Key > b.Key
}

// finishRoot applies retention to a finished root span.
func (t *Tracer) finishRoot(s *Span) {
	s.tracer = nil // break the cycle; retention is decided once
	if s.Kind == "read" {
		t.totalReads++
		t.readDurs = append(t.readDurs, int64(s.Dur()))
	}
	switch s.Kind {
	case "read", "write":
	default:
		t.kept = append(t.kept, s) // background spans bypass sampling
		return
	}
	if hash64(s.Key)%uint64(t.opts.SampleEvery) == 0 {
		t.kept = append(t.kept, s)
		return
	}
	if s.Kind != "read" {
		return
	}
	// Tail reservoir: keep the TailKeep slowest non-sampled reads.
	if len(t.reservoir) < t.opts.TailKeep {
		t.reservoir = append(t.reservoir, s)
		t.siftUp(len(t.reservoir) - 1)
		return
	}
	if slower(s, t.reservoir[0]) {
		t.reservoir[0] = s
		t.siftDown(0)
	}
}

func (t *Tracer) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !slower(t.reservoir[p], t.reservoir[i]) {
			return
		}
		t.reservoir[p], t.reservoir[i] = t.reservoir[i], t.reservoir[p]
		i = p
	}
}

func (t *Tracer) siftDown(i int) {
	n := len(t.reservoir)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && slower(t.reservoir[min], t.reservoir[l]) {
			min = l
		}
		if r < n && slower(t.reservoir[min], t.reservoir[r]) {
			min = r
		}
		if min == i {
			return
		}
		t.reservoir[i], t.reservoir[min] = t.reservoir[min], t.reservoir[i]
		i = min
	}
}

// Trace is the collected output of one traced run.
type Trace struct {
	// Spans are the kept root spans, ordered by (Start, Key).
	Spans []*Span `json:"spans"`
	// Instants are the control-plane moments, in recording order.
	Instants []Instant `json:"instants"`
	// GCSpans are every GC burst, in recording order.
	GCSpans []GCSpan `json:"gc_spans"`
	// TotalReads counts every finished read, kept or not — the
	// denominator of the tail-attribution percentile.
	TotalReads int `json:"total_reads"`

	readDurs []int64
}

// sortChildren orders every child list by (Start, insertion) so the
// export is stable regardless of when children were attached.
func sortChildren(s *Span) {
	sort.SliceStable(s.Children, func(i, j int) bool {
		return s.Children[i].Start < s.Children[j].Start
	})
	for _, c := range s.Children {
		sortChildren(c)
	}
}

// Collect assembles the final trace. Call once, after the run drains.
func (t *Tracer) Collect() *Trace {
	if t == nil {
		return nil
	}
	spans := append([]*Span(nil), t.kept...)
	spans = append(spans, t.reservoir...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Key < spans[j].Key
	})
	for _, s := range spans {
		sortChildren(s)
	}
	return &Trace{
		Spans:      spans,
		Instants:   t.instants,
		GCSpans:    t.gcSpans,
		TotalReads: t.totalReads,
		readDurs:   t.readDurs,
	}
}

// PhaseShare is one row of the tail attribution: the fraction of the
// slowest reads' total latency spent in one phase.
type PhaseShare struct {
	Phase    string  `json:"phase"`
	Fraction float64 `json:"fraction"`
}

// TailAttribution answers "why is p99 high": over the slowest frac
// (e.g. 0.01) of all reads, the share of end-to-end latency spent in
// each phase. Fractions are duration-weighted across the tail set and
// sum to 1 (up to float rounding) because each read's phases tile its
// latency. Returns nil when no reads were kept.
func (tr *Trace) TailAttribution(frac float64) []PhaseShare {
	if tr == nil || tr.TotalReads == 0 || frac <= 0 {
		return nil
	}
	n := int(math.Ceil(frac * float64(tr.TotalReads)))
	if n < 1 {
		n = 1
	}
	// Threshold: the n-th largest duration over ALL reads (kept or
	// not), so the tail set is defined by the true distribution.
	durs := append([]int64(nil), tr.readDurs...)
	sort.Slice(durs, func(i, j int) bool { return durs[i] > durs[j] })
	if n > len(durs) {
		n = len(durs)
	}
	threshold := durs[n-1]

	tail := make([]*Span, 0, n)
	for _, s := range tr.Spans {
		if s.Kind == "read" && int64(s.Dur()) >= threshold {
			tail = append(tail, s)
		}
	}
	sort.SliceStable(tail, func(i, j int) bool {
		if tail[i].Dur() != tail[j].Dur() {
			return tail[i].Dur() > tail[j].Dur()
		}
		return tail[i].Key < tail[j].Key
	})
	if len(tail) > n {
		tail = tail[:n]
	}
	if len(tail) == 0 {
		return nil
	}

	acc := make(map[string]sim.Time)
	var total sim.Time
	for _, s := range tail {
		total += s.Dur()
		for _, p := range s.Phases {
			acc[p.Name] += p.Dur
		}
	}
	if total <= 0 {
		return nil
	}
	out := make([]PhaseShare, 0, len(acc))
	for name, d := range acc {
		out = append(out, PhaseShare{Phase: name, Fraction: float64(d) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fraction != out[j].Fraction {
			return out[i].Fraction > out[j].Fraction
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}
