package trace

import (
	"math"
	"testing"

	"rackblox/internal/sim"
)

func TestDisabledTracerIsNil(t *testing.T) {
	if tr := New(Options{}); tr != nil {
		t.Fatal("New with Enabled=false must return nil")
	}
	if tr := New(Options{Enabled: true}); tr == nil {
		t.Fatal("New with Enabled=true must return a tracer")
	}
}

func TestNilSafety(t *testing.T) {
	// Every method on a nil tracer and the nil spans it hands out must
	// no-op: the datapath calls them unconditionally.
	var tr *Tracer
	sp := tr.StartRequest(1, "read", 0)
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	sp.Annotate(Int("x", 1))
	sp.Phase("queue", 10)
	c := sp.Child("tor", 5)
	c.EndAt(7)
	sp.EndAt(9)
	sp.Finish(10)
	if sp.Dur() != 0 {
		t.Fatal("nil span Dur != 0")
	}
	tr.Instant("pacer", "rate_change", 1)
	tr.RecordGC(0, "regular", 0, 10, 1)
	if tr.GCOverlap(0, 0, 10) != 0 {
		t.Fatal("nil tracer GCOverlap != 0")
	}
	if tr.StartSpan("repair", "repair", 0, 0) != nil {
		t.Fatal("nil tracer StartSpan returned non-nil")
	}
	if tr.Collect() != nil {
		t.Fatal("nil tracer Collect returned non-nil")
	}
	var trace *Trace
	if trace.TailAttribution(0.01) != nil {
		t.Fatal("nil trace TailAttribution returned non-nil")
	}
}

func TestHeadSamplingByKeyHash(t *testing.T) {
	const every = 4
	tr := New(Options{Enabled: true, SampleEvery: every})
	// Writes bypass the tail reservoir, so kept writes measure head
	// sampling alone.
	want := 0
	for key := uint64(1); key <= 200; key++ {
		if hash64(key)%every == 0 {
			want++
		}
		sp := tr.StartRequest(key, "write", 0)
		sp.Finish(10)
	}
	got := len(tr.Collect().Spans)
	if got != want {
		t.Fatalf("kept %d writes, want %d (hash-sampled 1-in-%d)", got, want, every)
	}
	if want == 0 || want == 200 {
		t.Fatalf("degenerate sample count %d: pick different keys", want)
	}
}

func TestSampleEveryOneKeepsAll(t *testing.T) {
	tr := New(Options{Enabled: true, SampleEvery: 1})
	for key := uint64(1); key <= 50; key++ {
		tr.StartRequest(key, "read", 0).Finish(sim.Time(key))
	}
	trace := tr.Collect()
	if len(trace.Spans) != 50 || trace.TotalReads != 50 {
		t.Fatalf("kept %d spans, total %d; want 50/50", len(trace.Spans), trace.TotalReads)
	}
}

func TestTailReservoirKeepsSlowestReads(t *testing.T) {
	// A huge SampleEvery makes head sampling keep (almost) nothing, so
	// retention is the reservoir's doing alone.
	const every = 1 << 30
	tr := New(Options{Enabled: true, SampleEvery: every, TailKeep: 3})
	durs := []sim.Time{10, 50, 20, 40, 30, 60, 5}
	for i, d := range durs {
		key := uint64(i + 1)
		if hash64(key)%every == 0 {
			t.Fatalf("key %d is head-sampled; pick different keys", key)
		}
		tr.StartRequest(key, "read", 0).Finish(d)
	}
	trace := tr.Collect()
	if trace.TotalReads != len(durs) {
		t.Fatalf("TotalReads = %d, want %d", trace.TotalReads, len(durs))
	}
	got := map[sim.Time]bool{}
	for _, s := range trace.Spans {
		got[s.Dur()] = true
	}
	for _, want := range []sim.Time{60, 50, 40} {
		if !got[want] {
			t.Fatalf("reservoir kept %v, missing dur %d", got, want)
		}
	}
	if len(trace.Spans) != 3 {
		t.Fatalf("kept %d spans, want 3 (TailKeep)", len(trace.Spans))
	}
}

func TestWritesNotInReservoir(t *testing.T) {
	const every = 1 << 30
	tr := New(Options{Enabled: true, SampleEvery: every, TailKeep: 8})
	tr.StartRequest(1, "write", 0).Finish(1000)
	trace := tr.Collect()
	if len(trace.Spans) != 0 {
		t.Fatalf("non-sampled write was kept: %+v", trace.Spans)
	}
}

func TestBackgroundSpansAlwaysKept(t *testing.T) {
	const every = 1 << 30
	tr := New(Options{Enabled: true, SampleEvery: every})
	tr.StartSpan("repair", "repair", 7, 0).Finish(100)
	trace := tr.Collect()
	if len(trace.Spans) != 1 || trace.Spans[0].Kind != "repair" {
		t.Fatalf("background span not kept: %+v", trace.Spans)
	}
}

func TestGCOverlap(t *testing.T) {
	tr := New(Options{Enabled: true})
	tr.RecordGC(3, "regular", 10, 20, 1)
	tr.RecordGC(3, "soft", 30, 40, 1)
	tr.RecordGC(9, "regular", 0, 100, 1) // other vSSD: never counted
	cases := []struct {
		from, to, want sim.Time
	}{
		{0, 5, 0},    // before both bursts
		{10, 20, 10}, // exactly the first burst
		{15, 35, 10}, // half of each
		{0, 100, 20}, // covers both
		{22, 28, 0},  // the gap between bursts
		{20, 10, 0},  // inverted window
	}
	for _, c := range cases {
		if got := tr.GCOverlap(3, c.from, c.to); got != c.want {
			t.Fatalf("GCOverlap(3, %d, %d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
	if got := tr.GCOverlap(5, 0, 100); got != 0 {
		t.Fatalf("GCOverlap on vSSD with no bursts = %d, want 0", got)
	}
}

func TestPhaseDropsNonPositiveDurations(t *testing.T) {
	tr := New(Options{Enabled: true, SampleEvery: 1})
	sp := tr.StartRequest(1, "read", 0)
	sp.Phase("queue", 0)
	sp.Phase("device", -5)
	sp.Phase("net_out", 3)
	sp.Finish(3)
	spans := tr.Collect().Spans
	if len(spans) != 1 || len(spans[0].Phases) != 1 || spans[0].Phases[0].Name != "net_out" {
		t.Fatalf("phases = %+v, want only net_out", spans[0].Phases)
	}
}

func TestTailAttributionSumsToOne(t *testing.T) {
	tr := New(Options{Enabled: true, SampleEvery: 1})
	// 200 reads whose phases tile their latency: device grows with the
	// key so the slowest 1% (2 reads) are keys 199 and 200, dominated by
	// the device phase.
	for key := uint64(1); key <= 200; key++ {
		d := sim.Time(key) * 10
		sp := tr.StartRequest(key, "read", 0)
		sp.Phase("queue", 5)
		sp.Phase("device", d-8)
		sp.Phase("net_out", 3)
		sp.Finish(d)
	}
	trace := tr.Collect()
	shares := trace.TailAttribution(0.01)
	if len(shares) != 3 {
		t.Fatalf("shares = %+v, want 3 phases", shares)
	}
	sum := 0.0
	for _, s := range shares {
		sum += s.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %g, want ~1", sum)
	}
	// Sorted by descending fraction; device dominates the tail.
	if shares[0].Phase != "device" || shares[0].Fraction < 0.9 {
		t.Fatalf("top share = %+v, want device > 0.9", shares[0])
	}
	for i := 1; i < len(shares); i++ {
		if shares[i].Fraction > shares[i-1].Fraction {
			t.Fatalf("shares not sorted descending: %+v", shares)
		}
	}
}

func TestTailAttributionThresholdCountsUnkeptReads(t *testing.T) {
	// Only the reservoir survives, but the 1% threshold is computed over
	// ALL finished reads — the tail set must not be diluted by the kept
	// set being small.
	const every = 1 << 30
	tr := New(Options{Enabled: true, SampleEvery: every, TailKeep: 4})
	for key := uint64(1); key <= 100; key++ {
		d := sim.Time(key) * 10
		sp := tr.StartRequest(key, "read", 0)
		sp.Phase("device", d)
		sp.Finish(d)
	}
	trace := tr.Collect()
	// ceil(0.01*100) = 1 read: the slowest (dur 1000).
	shares := trace.TailAttribution(0.01)
	if len(shares) != 1 || shares[0].Phase != "device" || math.Abs(shares[0].Fraction-1) > 1e-9 {
		t.Fatalf("shares = %+v, want device at 1.0", shares)
	}
}

func TestCollectOrdersSpansByStartThenKey(t *testing.T) {
	tr := New(Options{Enabled: true, SampleEvery: 1})
	starts := []sim.Time{30, 10, 20, 10}
	keys := []uint64{4, 9, 2, 3}
	for i := range starts {
		tr.StartRequest(keys[i], "read", starts[i]).Finish(starts[i] + 5)
	}
	spans := tr.Collect().Spans
	for i := 1; i < len(spans); i++ {
		a, b := spans[i-1], spans[i]
		if a.Start > b.Start || (a.Start == b.Start && a.Key > b.Key) {
			t.Fatalf("spans out of (Start, Key) order at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestCollectSortsChildrenByStart(t *testing.T) {
	tr := New(Options{Enabled: true, SampleEvery: 1})
	sp := tr.StartRequest(1, "read", 0)
	sp.Child("late", 30).EndAt(40)
	sp.Child("early", 5).EndAt(10)
	sp.Finish(50)
	kids := tr.Collect().Spans[0].Children
	if len(kids) != 2 || kids[0].Name != "early" || kids[1].Name != "late" {
		t.Fatalf("children not sorted by start: %+v, %+v", kids[0], kids[1])
	}
}
