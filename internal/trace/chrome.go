package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Synthetic thread-id bases: each request renders on its own row (tid =
// request key) so concurrent requests never stack on one another, GC
// bursts get one row per vSSD, repair batches one row per holder, and
// control-plane instants share row 0.
const (
	controlTid uint64 = 0
	gcTidBase  uint64 = 1 << 20
	bgTidBase  uint64 = 2 << 20
)

// chromeEvent is one Chrome trace-event object. Field order is fixed by
// the struct (encoding/json emits struct fields in declaration order),
// and Args maps marshal with sorted keys, so the export is byte-stable
// for a given trace.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  uint64                 `json:"tid"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// us converts virtual nanoseconds to the format's microsecond floats.
func us(ns int64) float64 { return float64(ns) / 1e3 }

// attrArgs converts typed annotations to Chrome args.
func attrArgs(attrs []Attr, extra map[string]interface{}) map[string]interface{} {
	if len(attrs) == 0 && len(extra) == 0 {
		return nil
	}
	args := make(map[string]interface{}, len(attrs)+len(extra))
	for k, v := range extra {
		args[k] = v
	}
	for _, a := range attrs {
		if a.Kind == AttrInt {
			args[a.Key] = a.Int
		} else {
			args[a.Key] = a.Str
		}
	}
	return args
}

// spanTid picks the synthetic row for a root span.
func spanTid(s *Span) uint64 {
	switch s.Kind {
	case "read", "write":
		return s.Key
	default:
		return bgTidBase + s.Key
	}
}

// WriteChromeTrace exports the trace as Chrome trace-event JSON
// ({"traceEvents": [...]}), loadable in Perfetto or chrome://tracing.
// The output is deterministic: events are ordered (metadata, instants,
// GC bursts, request spans depth-first) and every field renders in a
// fixed order.
func (tr *Trace) WriteChromeTrace(w io.Writer) error {
	if tr == nil {
		_, err := io.WriteString(w, "{\"traceEvents\": []}\n")
		return err
	}
	var events []chromeEvent
	meta := func(name string, tid uint64, label string) {
		events = append(events, chromeEvent{
			Name: name, Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]interface{}{"name": label},
		})
	}
	meta("process_name", 0, "rackblox")
	meta("thread_name", controlTid, "control plane")
	seenGC := make(map[uint32]bool)
	for _, g := range tr.GCSpans {
		if !seenGC[g.VSSD] {
			seenGC[g.VSSD] = true
			meta("thread_name", gcTidBase+uint64(g.VSSD), fmt.Sprintf("gc vssd %d", g.VSSD))
		}
	}

	for _, i := range tr.Instants {
		events = append(events, chromeEvent{
			Name: i.Name, Ph: "i", Ts: us(i.At), Pid: 1, Tid: controlTid, S: "g",
			Args: attrArgs(i.Attrs, map[string]interface{}{"track": i.Track}),
		})
	}
	for _, g := range tr.GCSpans {
		events = append(events, chromeEvent{
			Name: "gc " + g.Kind, Ph: "X", Ts: us(g.Start), Dur: us(g.End - g.Start),
			Pid: 1, Tid: gcTidBase + uint64(g.VSSD),
			Args: map[string]interface{}{"blocks": g.Blocks, "vssd": g.VSSD},
		})
	}

	var emit func(s *Span, tid uint64, root bool)
	emit = func(s *Span, tid uint64, root bool) {
		extra := map[string]interface{}{}
		if root {
			extra["key"] = s.Key
			if s.Kind != "" {
				extra["kind"] = s.Kind
			}
			for _, p := range s.Phases {
				extra["phase_"+p.Name+"_ns"] = int64(p.Dur)
			}
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X", Ts: us(s.Start), Dur: us(s.Dur()),
			Pid: 1, Tid: tid, Args: attrArgs(s.Attrs, extra),
		})
		for _, c := range s.Children {
			emit(c, tid, false)
		}
	}
	for _, s := range tr.Spans {
		emit(s, spanTid(s), true)
	}

	if _, err := io.WriteString(w, "{\"traceEvents\": [\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
