package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rackblox/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTrace builds a small fixed trace exercising every export shape:
// metadata, instants, GC bursts, a request span with nested children and
// phases, and a background repair span.
func goldenTrace() *Trace {
	tr := New(Options{Enabled: true, SampleEvery: 1})
	tr.Instant("scenario", "fail_server", 5*sim.Microsecond, Int("server", 2))
	tr.Instant("pacer", "rate_change", 8*sim.Microsecond, Int("rate_kbps", 1000))
	tr.RecordGC(1, "regular", 10*sim.Microsecond, 30*sim.Microsecond, 4)
	tr.RecordGC(2, "soft", 12*sim.Microsecond, 18*sim.Microsecond, 1)

	sp := tr.StartRequest(42, "read", 2*sim.Microsecond)
	sp.Annotate(Int("lpn", 77), Int("volume", 0))
	c := sp.Child("tor", 3*sim.Microsecond)
	c.EndAt(4 * sim.Microsecond)
	c.Annotate(Int("rack", 0), String("op", "read"))
	x := sp.Child("spine_xfer", 4*sim.Microsecond)
	x.EndAt(6 * sim.Microsecond)
	x.Annotate(Int("bytes", 4096))
	sp.Phase("net_in", 1*sim.Microsecond)
	sp.Phase("queue", 2*sim.Microsecond)
	sp.Phase("device", 14*sim.Microsecond)
	sp.Phase("gc_block", 3*sim.Microsecond)
	sp.Phase("net_out", 2*sim.Microsecond)
	sp.Finish(24 * sim.Microsecond)

	rep := tr.StartSpan("repair", "repair", 3, 15*sim.Microsecond)
	rep.Annotate(Int("group", 0), Int("holder", 3), Int("stripes", 8))
	rep.Finish(40 * sim.Microsecond)
	return tr.Collect()
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export differs from golden file; regenerate with -update if intended\ngot:\n%s", buf.String())
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no events")
	}
	for _, ev := range doc.TraceEvents {
		if _, ok := ev["ph"]; !ok {
			t.Fatalf("event missing ph: %v", ev)
		}
		if _, ok := ev["name"]; !ok {
			t.Fatalf("event missing name: %v", ev)
		}
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenTrace().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenTrace().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same trace differ")
	}
}

func TestChromeTraceNilTrace(t *testing.T) {
	var tr *Trace
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{\"traceEvents\": []}\n" {
		t.Fatalf("nil trace export = %q", got)
	}
}

func TestChromeTraceRequestRootCarriesPhases(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Tid  uint64                 `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "read" && ev.Tid == 42 {
			found = true
			for _, k := range []string{"key", "kind", "phase_device_ns", "phase_gc_block_ns"} {
				if _, ok := ev.Args[k]; !ok {
					t.Fatalf("read root missing arg %q: %v", k, ev.Args)
				}
			}
		}
	}
	if !found {
		t.Fatal("read root span not exported on its key's row")
	}
}
