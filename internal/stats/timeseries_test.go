package stats

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTimeSeriesGaugeVsCounter(t *testing.T) {
	var g, c float64
	ts := NewTimeSeries(100)
	ts.Gauge("g", func() float64 { return g })
	ts.Counter("c", func() float64 { return c })

	g, c = 5, 10
	ts.Sample(100)
	g, c = 3, 25
	ts.Sample(200)
	g, c = 3, 25 // counter flat: delta must be zero
	ts.Sample(300)

	want := []Point{
		{At: 100, Values: []float64{5, 10}}, // first counter sample counts from zero
		{At: 200, Values: []float64{3, 15}},
		{At: 300, Values: []float64{3, 0}},
	}
	if !reflect.DeepEqual(ts.Points, want) {
		t.Fatalf("points = %+v, want %+v", ts.Points, want)
	}
	if ts.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ts.Len())
	}
	if names := ts.ColumnNames(); !reflect.DeepEqual(names, []string{"g", "c"}) {
		t.Fatalf("ColumnNames = %v", names)
	}
	if ts.Columns[0].Kind != Gauge || ts.Columns[1].Kind != Counter {
		t.Fatalf("column kinds = %+v", ts.Columns)
	}
}

func TestTimeSeriesCSVRoundTrip(t *testing.T) {
	v := 0.0
	ts := NewTimeSeries(250)
	ts.Gauge("util", func() float64 { return v })
	ts.Gauge("p99_ms", func() float64 { return v * 1.5 })
	for i := 1; i <= 4; i++ {
		v = float64(i) * 0.125 // exact in binary: round-trips losslessly
		ts.Sample(int64(i) * 250)
	}

	var buf bytes.Buffer
	if err := ts.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "at_ns,util,p99_ms\n") {
		t.Fatalf("header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}

	got, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Points, ts.Points) {
		t.Fatalf("round-trip points = %+v, want %+v", got.Points, ts.Points)
	}
	// The interval is inferred from the first two points.
	if got.Interval != 250 {
		t.Fatalf("inferred interval = %d, want 250", got.Interval)
	}
	if !reflect.DeepEqual(got.ColumnNames(), ts.ColumnNames()) {
		t.Fatalf("round-trip columns = %v", got.ColumnNames())
	}
}

func TestTimeSeriesCSVIntervalEdges(t *testing.T) {
	// Zero and one point: no interval can be inferred.
	for _, n := range []int{0, 1} {
		ts := NewTimeSeries(100)
		ts.Gauge("x", func() float64 { return 1 })
		for i := 0; i < n; i++ {
			ts.Sample(int64(i+1) * 100)
		}
		var buf bytes.Buffer
		if err := ts.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ParseCSV(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Interval != 0 {
			t.Fatalf("n=%d: inferred interval = %d, want 0", n, got.Interval)
		}
		if got.Len() != n {
			t.Fatalf("n=%d: parsed %d points", n, got.Len())
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad header", "time,util\n"},
		{"ragged row", "at_ns,util\n100,1,2\n"},
		{"bad at", "at_ns,util\nxyz,1\n"},
		{"bad value", "at_ns,util\n100,xyz\n"},
	}
	for _, c := range cases {
		if _, err := ParseCSV(strings.NewReader(c.in)); err == nil {
			t.Fatalf("%s: ParseCSV accepted %q", c.name, c.in)
		}
	}
}

func TestParseCSVSkipsBlankLines(t *testing.T) {
	got, err := ParseCSV(strings.NewReader("at_ns,util\n100,1\n\n200,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Points[1].At != 200 {
		t.Fatalf("points = %+v", got.Points)
	}
}
