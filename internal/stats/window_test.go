package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestWindowedQuantileMatchesDistOnPartialWindow(t *testing.T) {
	w := NewWindowedQuantile(100)
	r := NewRecorder()
	for i, v := range []int64{50, 10, 90, 30, 70} {
		w.Observe(v)
		r.Add(Sample{Total: v}, int64(i))
	}
	for _, p := range []float64{0, 25, 50, 75, 99, 100} {
		if got, want := w.Quantile(p), r.All().Percentile(p); got != want {
			t.Errorf("Quantile(%v) = %d, want %d (Dist parity)", p, got, want)
		}
	}
	if w.Len() != 5 || w.Window() != 100 {
		t.Errorf("Len/Window = %d/%d", w.Len(), w.Window())
	}
}

func TestWindowedQuantileSlides(t *testing.T) {
	w := NewWindowedQuantile(4)
	for v := int64(1); v <= 4; v++ {
		w.Observe(v * 10) // window: 10 20 30 40
	}
	if got := w.Quantile(100); got != 40 {
		t.Fatalf("max = %d", got)
	}
	// Two more observations evict 10 and 20: the window forgets them.
	w.Observe(100)
	w.Observe(5)
	if got := w.Quantile(100); got != 100 {
		t.Errorf("max after slide = %d, want 100", got)
	}
	if got := w.Quantile(0); got != 5 {
		t.Errorf("min after slide = %d, want 5 (10 and 20 evicted)", got)
	}
	if w.Len() != 4 {
		t.Errorf("Len = %d, want window size 4", w.Len())
	}
}

func TestWindowedQuantileP99Random(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := NewWindowedQuantile(500)
	var last []int64
	for i := 0; i < 2000; i++ {
		v := rng.Int63n(1_000_000)
		w.Observe(v)
		last = append(last, v)
	}
	last = last[len(last)-500:]
	sorted := append([]int64(nil), last...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	want := sorted[int(float64(len(sorted))*0.99)-1] // nearest rank of 99%
	if got := w.P99(); got != want {
		t.Errorf("P99 = %d, want %d over the last 500 samples", got, want)
	}
}

func TestWindowedQuantileEmptyAndReset(t *testing.T) {
	w := NewWindowedQuantile(8)
	if got := w.Quantile(99); got != 0 {
		t.Errorf("empty quantile = %d", got)
	}
	w.Observe(42)
	w.Reset()
	if w.Len() != 0 || w.Quantile(50) != 0 {
		t.Errorf("reset did not empty the window: len=%d", w.Len())
	}
}

func TestWindowedQuantileRejectsZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size window accepted")
		}
	}()
	NewWindowedQuantile(0)
}
