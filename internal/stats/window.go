package stats

import (
	"math"
	"sort"
)

// WindowedQuantile tracks quantiles over a sliding window of the most
// recent observations: a fixed-capacity ring buffer of latency samples
// with nearest-rank quantile queries. It is the sensor of feedback
// controllers (the repair pacer reads the windowed p99 of foreground
// reads every tick), so it intentionally forgets — old samples fall out
// as new ones arrive, and the reported tail reflects only the recent
// window. Not safe for concurrent use; the simulation is single-threaded.
type WindowedQuantile struct {
	ring []int64
	next int
	full bool
	// scratch is reused across Quantile calls to avoid per-tick
	// allocation; the controller queries every few milliseconds of
	// virtual time.
	scratch []int64
}

// NewWindowedQuantile returns an empty window holding up to size samples.
func NewWindowedQuantile(size int) *WindowedQuantile {
	if size < 1 {
		panic("stats: window size must be positive")
	}
	return &WindowedQuantile{ring: make([]int64, size), scratch: make([]int64, 0, size)}
}

// Observe records one sample, evicting the oldest once the window is full.
func (w *WindowedQuantile) Observe(v int64) {
	w.ring[w.next] = v
	w.next++
	if w.next == len(w.ring) {
		w.next = 0
		w.full = true
	}
}

// Len returns the number of samples currently in the window.
func (w *WindowedQuantile) Len() int {
	if w.full {
		return len(w.ring)
	}
	return w.next
}

// Window returns the configured capacity.
func (w *WindowedQuantile) Window() int { return len(w.ring) }

// Reset empties the window without releasing its buffer.
func (w *WindowedQuantile) Reset() {
	w.next = 0
	w.full = false
}

// Quantile returns the p-th percentile (0 < p <= 100) of the window by
// nearest rank, matching Dist.Percentile. An empty window returns 0.
func (w *WindowedQuantile) Quantile(p float64) int64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	w.scratch = append(w.scratch[:0], w.ring[:n]...)
	sort.Slice(w.scratch, func(i, j int) bool { return w.scratch[i] < w.scratch[j] })
	if p <= 0 {
		return w.scratch[0]
	}
	if p >= 100 {
		return w.scratch[n-1]
	}
	// Same epsilon as Dist.Percentile: keep ceil(99.9/100*1000) at rank
	// 999 despite binary floating point rounding up.
	rank := int(math.Ceil(p/100*float64(n) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	return w.scratch[rank-1]
}

// P99 is the quantile the repair pacer compares against its SLO target.
func (w *WindowedQuantile) P99() int64 { return w.Quantile(99) }
