// Package stats collects latency samples and computes the summary
// statistics reported throughout the RackBlox evaluation: percentiles
// (P50..P99.9), means, throughput, and per-stage latency breakdowns.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one completed I/O request with its per-stage latencies,
// all in nanoseconds of virtual time.
type Sample struct {
	// Total is the end-to-end latency observed by the client.
	Total int64
	// NetIn is time spent in the network from client to server.
	NetIn int64
	// Queue is time spent waiting in the storage stack's I/O queue.
	Queue int64
	// Device is flash service time (including any GC blocking).
	Device int64
	// NetOut is time from the server back to the client.
	NetOut int64
	// Write reports whether this was a write request.
	Write bool
	// Redirected reports whether the switch redirected this request.
	Redirected bool
}

// Storage returns the storage-stack portion of the latency (queue+device),
// the "Stor" series of Fig. 15.
func (s Sample) Storage() int64 { return s.Queue + s.Device }

// Recorder accumulates samples for one experiment run.
// It is not safe for concurrent use; the simulation is single-threaded.
type Recorder struct {
	samples []Sample
	// start/end bound the measurement window for throughput.
	start, end int64
	redirects  int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add records one completed request finishing at virtual time now.
func (r *Recorder) Add(s Sample, now int64) {
	if len(r.samples) == 0 {
		r.start = now
	}
	if now > r.end {
		r.end = now
	}
	if s.Redirected {
		r.redirects++
	}
	r.samples = append(r.samples, s)
}

// Len returns the number of recorded samples.
func (r *Recorder) Len() int { return len(r.samples) }

// Redirects returns how many samples were redirected by the switch.
func (r *Recorder) Redirects() int { return r.redirects }

// Reset clears all samples while keeping capacity.
func (r *Recorder) Reset() {
	r.samples = r.samples[:0]
	r.start, r.end, r.redirects = 0, 0, 0
}

// filter returns latencies selected by keep and extracted by get, sorted.
func (r *Recorder) filter(keep func(Sample) bool, get func(Sample) int64) []int64 {
	out := make([]int64, 0, len(r.samples))
	for _, s := range r.samples {
		if keep == nil || keep(s) {
			out = append(out, get(s))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func isRead(s Sample) bool  { return !s.Write }
func isWrite(s Sample) bool { return s.Write }
func total(s Sample) int64  { return s.Total }

// Dist is an immutable sorted latency distribution.
type Dist struct{ v []int64 }

// Reads returns the end-to-end latency distribution of reads.
func (r *Recorder) Reads() Dist { return Dist{r.filter(isRead, total)} }

// Writes returns the end-to-end latency distribution of writes.
func (r *Recorder) Writes() Dist { return Dist{r.filter(isWrite, total)} }

// All returns the end-to-end latency distribution of all requests.
func (r *Recorder) All() Dist { return Dist{r.filter(nil, total)} }

// ReadStorage returns the storage-only latency distribution of reads.
func (r *Recorder) ReadStorage() Dist {
	return Dist{r.filter(isRead, func(s Sample) int64 { return s.Storage() })}
}

// WriteStorage returns the storage-only latency distribution of writes.
func (r *Recorder) WriteStorage() Dist {
	return Dist{r.filter(isWrite, func(s Sample) int64 { return s.Storage() })}
}

// Throughput returns completed requests per second of virtual time (IOPS).
func (r *Recorder) Throughput() float64 {
	dur := r.end - r.start
	if dur <= 0 || len(r.samples) < 2 {
		return 0
	}
	return float64(len(r.samples)-1) / (float64(dur) / 1e9)
}

// Len returns the number of values in the distribution.
func (d Dist) Len() int { return len(d.v) }

// Percentile returns the p-th percentile (0 < p <= 100) using nearest-rank.
// An empty distribution returns 0.
func (d Dist) Percentile(p float64) int64 {
	if len(d.v) == 0 {
		return 0
	}
	if p <= 0 {
		return d.v[0]
	}
	if p >= 100 {
		return d.v[len(d.v)-1]
	}
	// The small epsilon keeps e.g. ceil(99.9/100*1000) at rank 999 despite
	// binary floating point rounding 0.999*1000 up to 999.0000000000001.
	rank := int(math.Ceil(p/100*float64(len(d.v)) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	return d.v[rank-1]
}

// Mean returns the arithmetic mean, or 0 when empty.
func (d Dist) Mean() float64 {
	if len(d.v) == 0 {
		return 0
	}
	var sum float64
	for _, v := range d.v {
		sum += float64(v)
	}
	return sum / float64(len(d.v))
}

// Max returns the largest value, or 0 when empty.
func (d Dist) Max() int64 {
	if len(d.v) == 0 {
		return 0
	}
	return d.v[len(d.v)-1]
}

// Min returns the smallest value, or 0 when empty.
func (d Dist) Min() int64 {
	if len(d.v) == 0 {
		return 0
	}
	return d.v[0]
}

// P50, P75, P95, P99, P999 are the percentiles the paper reports.
func (d Dist) P50() int64  { return d.Percentile(50) }
func (d Dist) P75() int64  { return d.Percentile(75) }
func (d Dist) P95() int64  { return d.Percentile(95) }
func (d Dist) P99() int64  { return d.Percentile(99) }
func (d Dist) P999() int64 { return d.Percentile(99.9) }

// CDFPoint is one (percentile, latency) point of a tail CDF.
type CDFPoint struct {
	Pct     float64
	Latency int64
}

// TailCDF evaluates the distribution at the percentiles used in Figs. 16
// and 19 (98.5, 99, 99.5, 99.9) unless explicit points are given.
func (d Dist) TailCDF(pcts ...float64) []CDFPoint {
	if len(pcts) == 0 {
		pcts = []float64{98.5, 99, 99.5, 99.9}
	}
	out := make([]CDFPoint, len(pcts))
	for i, p := range pcts {
		out[i] = CDFPoint{Pct: p, Latency: d.Percentile(p)}
	}
	return out
}

// Ms formats a nanosecond latency as milliseconds with two decimals,
// the unit used in the paper's figures.
func Ms(ns int64) string { return fmt.Sprintf("%.2fms", float64(ns)/1e6) }

// Us formats a nanosecond latency as microseconds.
func Us(ns int64) string { return fmt.Sprintf("%.1fus", float64(ns)/1e3) }

// Normalize returns v/base, guarding against a zero base.
func Normalize(v, base int64) float64 {
	if base == 0 {
		return 0
	}
	return float64(v) / float64(base)
}

// Speedup returns base/v (how many times faster v is than base).
func Speedup(base, v int64) float64 {
	if v == 0 {
		return 0
	}
	return float64(base) / float64(v)
}

// RawSamples exposes the recorder's samples for diagnostic tooling.
func RawSamples(r *Recorder) []Sample { return r.samples }
