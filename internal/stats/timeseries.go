package stats

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ColKind distinguishes the two time-series column semantics.
type ColKind string

const (
	// Gauge columns record the instrument's value at the sample instant
	// (spine utilization, repair backlog, windowed p99).
	Gauge ColKind = "gauge"
	// Counter columns record the increase of a cumulative total since
	// the previous sample — a per-interval rate with no smoothing
	// (requests completed, bytes moved, GC events).
	Counter ColKind = "counter"
)

// Column describes one time-series column.
type Column struct {
	Name string  `json:"name"`
	Kind ColKind `json:"kind"`
}

// Point is one sample row: every column's value at instant At.
type Point struct {
	At     int64     `json:"at"`
	Values []float64 `json:"values"`
}

// TimeSeries samples a set of gauge and counter instruments at a fixed
// interval of virtual time. It is driven externally (the sim engine's
// observer tick calls Sample) so sampling never perturbs the event
// sequence: reading instruments schedules nothing and draws no
// randomness.
type TimeSeries struct {
	// Interval is the sampling period in virtual nanoseconds.
	Interval int64    `json:"interval_ns"`
	Columns  []Column `json:"columns"`
	Points   []Point  `json:"points"`

	fns  []func() float64
	prev []float64
}

// NewTimeSeries returns an empty series sampling at the given interval.
func NewTimeSeries(interval int64) *TimeSeries {
	return &TimeSeries{Interval: interval}
}

// Gauge registers a column sampled as fn's value at each instant.
func (ts *TimeSeries) Gauge(name string, fn func() float64) {
	ts.Columns = append(ts.Columns, Column{Name: name, Kind: Gauge})
	ts.fns = append(ts.fns, fn)
	ts.prev = append(ts.prev, 0)
}

// Counter registers a column whose fn returns a cumulative total; each
// sample records the delta since the previous sample (the first sample
// counts from zero).
func (ts *TimeSeries) Counter(name string, fn func() float64) {
	ts.Columns = append(ts.Columns, Column{Name: name, Kind: Counter})
	ts.fns = append(ts.fns, fn)
	ts.prev = append(ts.prev, 0)
}

// Sample reads every instrument and appends one point at instant at.
func (ts *TimeSeries) Sample(at int64) {
	vals := make([]float64, len(ts.fns))
	for i, fn := range ts.fns {
		v := fn()
		if ts.Columns[i].Kind == Counter {
			vals[i] = v - ts.prev[i]
			ts.prev[i] = v
		} else {
			vals[i] = v
		}
	}
	ts.Points = append(ts.Points, Point{At: at, Values: vals})
}

// Len returns the number of collected points.
func (ts *TimeSeries) Len() int { return len(ts.Points) }

// ColumnNames returns the column names in declaration order.
func (ts *TimeSeries) ColumnNames() []string {
	names := make([]string, len(ts.Columns))
	for i, c := range ts.Columns {
		names[i] = c.Name
	}
	return names
}

// formatFloat renders values compactly and losslessly for CSV.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV writes the series as CSV: a header row "at_ns,<col>,..."
// then one row per point. Column kinds are not encoded; ParseCSV
// restores them as gauges.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("at_ns")
	for _, c := range ts.Columns {
		bw.WriteByte(',')
		bw.WriteString(c.Name)
	}
	bw.WriteByte('\n')
	for _, p := range ts.Points {
		bw.WriteString(strconv.FormatInt(p.At, 10))
		for _, v := range p.Values {
			bw.WriteByte(',')
			bw.WriteString(formatFloat(v))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ParseCSV reads a series back from WriteCSV's format. The sampling
// interval is inferred from the first two points (0 with fewer), and
// every column comes back as a gauge — kinds only matter while
// sampling, which a parsed series does not do.
func ParseCSV(r io.Reader) (*TimeSeries, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("stats: empty CSV")
	}
	header := strings.Split(sc.Text(), ",")
	if len(header) < 1 || header[0] != "at_ns" {
		return nil, fmt.Errorf("stats: bad CSV header %q", sc.Text())
	}
	ts := &TimeSeries{}
	for _, name := range header[1:] {
		ts.Columns = append(ts.Columns, Column{Name: name, Kind: Gauge})
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("stats: row has %d fields, header has %d", len(fields), len(header))
		}
		at, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stats: bad at_ns %q: %v", fields[0], err)
		}
		vals := make([]float64, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("stats: bad value %q: %v", f, err)
			}
			vals[i] = v
		}
		ts.Points = append(ts.Points, Point{At: at, Values: vals})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ts.Points) >= 2 {
		ts.Interval = ts.Points[1].At - ts.Points[0].At
	}
	return ts, nil
}
