package stats

import (
	"fmt"
	"strings"
)

// PlotCDF renders an ASCII tail-CDF of the distribution, the terminal
// equivalent of the paper's Fig. 16/19 panels. width sets the bar span.
func (d Dist) PlotCDF(title string, width int) string {
	if width < 10 {
		width = 40
	}
	pcts := []float64{50, 90, 95, 98.5, 99, 99.5, 99.9, 100}
	max := d.Percentile(100)
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", title, d.Len())
	if max == 0 {
		b.WriteString("  (empty)\n")
		return b.String()
	}
	for _, p := range pcts {
		v := d.Percentile(p)
		bar := int(float64(v) / float64(max) * float64(width))
		if bar < 1 && v > 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  p%-5.4g |%-*s| %s\n", p, width, strings.Repeat("#", bar), Ms(v))
	}
	return b.String()
}

// Histogram renders an ASCII latency histogram with the given number of
// equal-width buckets over [min, max].
func (d Dist) Histogram(buckets, width int) string {
	if buckets < 2 {
		buckets = 10
	}
	if width < 10 {
		width = 40
	}
	if d.Len() == 0 {
		return "(empty)\n"
	}
	lo, hi := d.Min(), d.Max()
	if hi == lo {
		hi = lo + 1
	}
	span := (hi - lo + int64(buckets) - 1) / int64(buckets)
	counts := make([]int, buckets)
	for _, v := range d.v {
		idx := int((v - lo) / span)
		if idx >= buckets {
			idx = buckets - 1
		}
		counts[idx]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%10s-%10s |%-*s| %d\n",
			Us(lo+int64(i)*span), Us(lo+int64(i+1)*span), width,
			strings.Repeat("#", bar), c)
	}
	return b.String()
}
