package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func rec(lat ...int64) *Recorder {
	r := NewRecorder()
	for i, l := range lat {
		r.Add(Sample{Total: l}, int64(i))
	}
	return r
}

func TestPercentileNearestRank(t *testing.T) {
	d := rec(10, 20, 30, 40, 50, 60, 70, 80, 90, 100).All()
	cases := []struct {
		p    float64
		want int64
	}{
		{50, 50}, {10, 10}, {100, 100}, {99, 100}, {95, 100}, {90, 90}, {1, 10},
	}
	for _, c := range cases {
		if got := d.Percentile(c.p); got != c.want {
			t.Errorf("P%.1f = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	d := NewRecorder().All()
	if d.Percentile(99) != 0 {
		t.Fatal("empty percentile != 0")
	}
	if d.Mean() != 0 || d.Max() != 0 || d.Min() != 0 {
		t.Fatal("empty summary stats != 0")
	}
}

func TestPercentileBounds(t *testing.T) {
	d := rec(5, 15, 25).All()
	if d.Percentile(-1) != 5 {
		t.Fatal("p<=0 should return min")
	}
	if d.Percentile(200) != 25 {
		t.Fatal("p>=100 should return max")
	}
}

func TestMeanMaxMin(t *testing.T) {
	d := rec(1, 2, 3, 4).All()
	if d.Mean() != 2.5 {
		t.Fatalf("mean = %f, want 2.5", d.Mean())
	}
	if d.Max() != 4 || d.Min() != 1 {
		t.Fatalf("max/min = %d/%d", d.Max(), d.Min())
	}
}

func TestReadWriteSplit(t *testing.T) {
	r := NewRecorder()
	r.Add(Sample{Total: 100, Write: false}, 0)
	r.Add(Sample{Total: 200, Write: true}, 1)
	r.Add(Sample{Total: 300, Write: false}, 2)
	if r.Reads().Len() != 2 {
		t.Fatalf("reads = %d, want 2", r.Reads().Len())
	}
	if r.Writes().Len() != 1 {
		t.Fatalf("writes = %d, want 1", r.Writes().Len())
	}
	if r.Writes().Max() != 200 {
		t.Fatalf("write max = %d, want 200", r.Writes().Max())
	}
	if r.All().Len() != 3 {
		t.Fatalf("all = %d, want 3", r.All().Len())
	}
}

func TestStorageBreakdown(t *testing.T) {
	s := Sample{Total: 1000, NetIn: 100, Queue: 200, Device: 300, NetOut: 400}
	if s.Storage() != 500 {
		t.Fatalf("storage = %d, want 500", s.Storage())
	}
	r := NewRecorder()
	r.Add(s, 0)
	if r.ReadStorage().Max() != 500 {
		t.Fatalf("read storage = %d, want 500", r.ReadStorage().Max())
	}
	if r.WriteStorage().Len() != 0 {
		t.Fatal("write storage should be empty for a read")
	}
}

func TestThroughput(t *testing.T) {
	r := NewRecorder()
	// 11 samples over 1 second: 10 intervals => 10 IOPS.
	for i := 0; i <= 10; i++ {
		r.Add(Sample{Total: 1}, int64(i)*1e8)
	}
	if got := r.Throughput(); got < 9.9 || got > 10.1 {
		t.Fatalf("throughput = %f, want ~10", got)
	}
}

func TestThroughputDegenerate(t *testing.T) {
	r := NewRecorder()
	if r.Throughput() != 0 {
		t.Fatal("empty throughput != 0")
	}
	r.Add(Sample{}, 5)
	if r.Throughput() != 0 {
		t.Fatal("single-sample throughput != 0")
	}
}

func TestRedirectCounting(t *testing.T) {
	r := NewRecorder()
	r.Add(Sample{Redirected: true}, 0)
	r.Add(Sample{}, 1)
	r.Add(Sample{Redirected: true}, 2)
	if r.Redirects() != 2 {
		t.Fatalf("redirects = %d, want 2", r.Redirects())
	}
}

func TestReset(t *testing.T) {
	r := rec(1, 2, 3)
	r.Reset()
	if r.Len() != 0 || r.Throughput() != 0 {
		t.Fatal("reset did not clear recorder")
	}
}

func TestTailCDFDefaults(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	d := rec(vals...).All()
	pts := d.TailCDF()
	if len(pts) != 4 {
		t.Fatalf("default CDF points = %d, want 4", len(pts))
	}
	wantPcts := []float64{98.5, 99, 99.5, 99.9}
	for i, p := range pts {
		if p.Pct != wantPcts[i] {
			t.Errorf("point %d pct = %f, want %f", i, p.Pct, wantPcts[i])
		}
		if p.Latency != int64(wantPcts[i]*10) {
			t.Errorf("P%.1f = %d, want %d", p.Pct, p.Latency, int64(wantPcts[i]*10))
		}
	}
}

func TestFormatters(t *testing.T) {
	if Ms(2_500_000) != "2.50ms" {
		t.Fatalf("Ms = %q", Ms(2_500_000))
	}
	if Us(2_500) != "2.5us" {
		t.Fatalf("Us = %q", Us(2_500))
	}
}

func TestNormalizeAndSpeedup(t *testing.T) {
	if Normalize(50, 100) != 0.5 {
		t.Fatal("normalize")
	}
	if Normalize(50, 0) != 0 {
		t.Fatal("normalize zero base")
	}
	if Speedup(100, 50) != 2 {
		t.Fatal("speedup")
	}
	if Speedup(100, 0) != 0 {
		t.Fatal("speedup zero")
	}
}

// Property: percentiles are monotonically non-decreasing in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		rc := NewRecorder()
		for i := 0; i < n; i++ {
			rc.Add(Sample{Total: int64(r.Intn(1_000_000))}, int64(i))
		}
		d := rc.All()
		prev := int64(-1)
		for p := 1.0; p <= 100; p += 0.5 {
			v := d.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: P100 equals max, P~0 equals min, and every percentile is a
// member of the sample set (nearest-rank definition).
func TestPercentileMembershipProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		rc := NewRecorder()
		set := map[int64]bool{}
		for i, v := range raw {
			rc.Add(Sample{Total: int64(v)}, int64(i))
			set[int64(v)] = true
		}
		d := rc.All()
		vals := make([]int64, 0, len(raw))
		for _, v := range raw {
			vals = append(vals, int64(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		if d.Percentile(100) != vals[len(vals)-1] {
			return false
		}
		for p := 5.0; p <= 100; p += 10 {
			if !set[d.Percentile(p)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
