package stats

import (
	"strings"
	"testing"
)

func TestPlotCDF(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 1000; i++ {
		r.Add(Sample{Total: int64(i) * 1000}, int64(i))
	}
	out := r.All().PlotCDF("latency", 40)
	if !strings.Contains(out, "latency (n=1000)") {
		t.Fatalf("missing title: %s", out)
	}
	for _, p := range []string{"p50", "p99.9", "p100"} {
		if !strings.Contains(out, p) {
			t.Errorf("missing %s row", p)
		}
	}
	// The p100 bar must be the full width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if strings.Count(last, "#") != 40 {
		t.Errorf("p100 bar = %d hashes, want 40", strings.Count(last, "#"))
	}
}

func TestPlotCDFEmpty(t *testing.T) {
	out := NewRecorder().All().PlotCDF("empty", 0)
	if !strings.Contains(out, "(empty)") {
		t.Fatalf("empty plot: %s", out)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Add(Sample{Total: int64(i%10) * 1000}, int64(i))
	}
	out := r.All().Histogram(5, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("buckets = %d, want 5:\n%s", len(lines), out)
	}
	// Uniform data: every bucket holds 20 samples.
	for _, l := range lines {
		if !strings.HasSuffix(l, " 20") {
			t.Fatalf("non-uniform bucket: %q", l)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if NewRecorder().All().Histogram(0, 0) != "(empty)\n" {
		t.Fatal("empty histogram")
	}
	r := NewRecorder()
	r.Add(Sample{Total: 5}, 0)
	r.Add(Sample{Total: 5}, 1)
	out := r.All().Histogram(3, 10)
	if out == "" {
		t.Fatal("constant-value histogram empty")
	}
}
