package sim

import "math/bits"

// wheelQueue is the production event queue: a hierarchical time wheel
// (calendar queue) over pooled node indices. Push and pop are O(1)
// amortized regardless of how many events are pending, where the binary
// heap paid O(log n) pointer-chasing comparisons per operation — the
// difference that matters at rack-scale event counts.
//
// Layout. Level l covers the virtual-time axis in slots of 64^l
// nanoseconds, 64 slots per level; 11 levels of 6 bits cover the full
// non-negative int64 range. An event lands at the lowest level whose slot
// width still separates it from the wheel cursor: the level of the
// highest 6-bit group in which its time differs from cur. Events in a
// level-0 slot therefore all share one exact timestamp, and each slot
// keeps a FIFO list, so draining slots in index order yields exact
// (time, insertion-seq) order — the determinism contract the replay
// tests pin.
//
// Advancing. cur trails the earliest pending event. When level 0 is
// empty, the earliest occupied slot of the lowest occupied level is
// cascaded: cur jumps to that slot's window start and the slot's list is
// redistributed to lower levels (each node strictly descends, so
// cascades terminate). Per-level occupancy bitmaps make "earliest
// occupied slot" a single trailing-zeros scan, so advancing across a
// large empty gap touches no empty slots.
//
// The spill heap. cur can legitimately end up ahead of the engine clock:
// peeking across a gap cascades cur toward the next event, and a
// RunUntil deadline can sit below that. An event then scheduled between
// the clock and cur ("behind the cursor") cannot be placed in the wheel,
// whose slot arithmetic is relative to cur. Such events go to a small
// reference-heap spill queue instead. Every spill event is strictly
// earlier than every wheel event (spill holds t < cur, the wheel t >=
// cur, and cur is monotone), so the spill drains first and ordering
// stays exact. Steady-state runs never touch it.
type wheelQueue struct {
	pool *nodePool
	// cur is the wheel's time floor: every wheel-resident event has
	// t >= cur. It advances to each popped event's time and to cascaded
	// window starts, never past the earliest pending event.
	cur Time
	// n counts wheel-resident events (the spill queue keeps its own).
	n     int
	spill heapQueue
	level [wheelLevels]wheelLevel
}

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 11 // ceil(64 / wheelBits): the full Time range
)

type wheelLevel struct {
	// occ is the occupancy bitmap: bit s set iff slot s has events.
	// head/tail of an empty slot are stale and must not be read.
	occ  uint64
	head [wheelSlots]int32
	tail [wheelSlots]int32
}

func newWheelQueue(pool *nodePool) *wheelQueue {
	return &wheelQueue{pool: pool, spill: heapQueue{pool: pool}}
}

func (w *wheelQueue) len() int { return w.n + w.spill.len() }

func (w *wheelQueue) push(i int32) {
	if w.pool.nodes[i].at < w.cur {
		w.spill.push(i)
		return
	}
	w.place(i)
	w.n++
}

// place files a node into the level/slot addressed by its time relative
// to cur. Requires nodes[i].at >= cur.
func (w *wheelQueue) place(i int32) {
	n := &w.pool.nodes[i]
	n.next = nilIdx
	t := n.at
	l := 0
	if x := uint64(t ^ w.cur); x != 0 {
		l = (bits.Len64(x) - 1) / wheelBits
	}
	s := int(t>>(l*wheelBits)) & wheelMask
	lv := &w.level[l]
	if lv.occ&(1<<s) == 0 {
		lv.occ |= 1 << s
		lv.head[s] = i
	} else {
		w.pool.nodes[lv.tail[s]].next = i
	}
	lv.tail[s] = i
}

// cascade redistributes the earliest occupied slot of the lowest
// occupied level >= 1 into lower levels, advancing cur to that slot's
// window start. Callers guarantee w.n > 0 and level 0 is empty.
func (w *wheelQueue) cascade() {
	for l := 1; l < wheelLevels; l++ {
		lv := &w.level[l]
		if lv.occ == 0 {
			continue
		}
		s := bits.TrailingZeros64(lv.occ)
		i := lv.head[s]
		lv.occ &^= 1 << s
		shift := uint(l * wheelBits)
		// Zero time groups 0..l-1 of cur and set group l to s: the start
		// of the cascaded slot's window. Every event in the slot is >=
		// this start, and lower levels are empty, so cur stays <= the
		// earliest pending event.
		w.cur = (w.cur &^ (Time(1)<<(shift+wheelBits) - 1)) | Time(s)<<shift
		for i != nilIdx {
			next := w.pool.nodes[i].next
			w.place(i)
			i = next
		}
		return
	}
	panic("sim: wheel occupancy lost events")
}

func (w *wheelQueue) peekTime() Time {
	if w.spill.len() > 0 {
		return w.spill.peekTime()
	}
	for {
		if b := w.level[0].occ; b != 0 {
			s := bits.TrailingZeros64(b)
			return w.pool.nodes[w.level[0].head[s]].at
		}
		w.cascade()
	}
}

func (w *wheelQueue) pop() int32 {
	if w.spill.len() > 0 {
		return w.spill.pop()
	}
	for {
		lv := &w.level[0]
		if b := lv.occ; b != 0 {
			s := bits.TrailingZeros64(b)
			i := lv.head[s]
			if next := w.pool.nodes[i].next; next == nilIdx {
				lv.occ &^= 1 << s
			} else {
				lv.head[s] = next
			}
			w.n--
			w.cur = w.pool.nodes[i].at
			return i
		}
		w.cascade()
	}
}
