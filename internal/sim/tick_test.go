package sim

import (
	"reflect"
	"testing"
)

func TestObserverTickFiresAtBoundaries(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	e.SetTick(10, func(at Time) {
		ticks = append(ticks, at)
		if e.Now() != at {
			t.Fatalf("tick at %d saw Now() = %d", at, e.Now())
		}
	})
	var events []Time
	for _, at := range []Time{5, 25, 30, 47} {
		at := at
		e.At(at, func(now Time) { events = append(events, now) })
	}
	e.Run()
	// Boundaries at every multiple of 10 up to the last event's time:
	// the tick at 30 fires before the event at 30, and the boundary at
	// 40 fires before the event at 47.
	if want := []Time{10, 20, 30, 40}; !reflect.DeepEqual(ticks, want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	if want := []Time{5, 25, 30, 47}; !reflect.DeepEqual(events, want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
}

func TestObserverTickIsNotAnEvent(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.SetTick(7, func(Time) { fired++ })
	e.At(100, func(Time) {})
	e.Run()
	if fired == 0 {
		t.Fatal("tick never fired")
	}
	if got := e.Processed(); got != 1 {
		t.Fatalf("processed = %d, want 1 (ticks must not count as events)", got)
	}
	if by := e.ProcessedBy(); by["other"] != 1 || len(by) != 1 {
		t.Fatalf("ProcessedBy = %v, want only other:1", by)
	}
}

func TestObserverTickRunUntilCoversDeadline(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	e.SetTick(10, func(at Time) { ticks = append(ticks, at) })
	e.At(5, func(Time) {})
	e.RunUntil(35)
	if want := []Time{10, 20, 30}; !reflect.DeepEqual(ticks, want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	if e.Now() != 35 {
		t.Fatalf("now = %d, want 35", e.Now())
	}
}

// Regression (PR 7): SetTick promised boundaries "at every multiple of
// interval" but anchored them to the install time (nextTick = now +
// interval). Boundaries must land on interval multiples of the virtual
// time axis no matter when the observer is installed.
func TestSetTickAnchorsToIntervalMultiples(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	e.At(5, func(Time) {
		e.SetTick(10, func(at Time) { ticks = append(ticks, at) })
	})
	e.At(47, func(Time) {})
	e.Run()
	// Multiples of 10 after the install instant — not 15, 25, 35, 45.
	if want := []Time{10, 20, 30, 40}; !reflect.DeepEqual(ticks, want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
}

// Installing exactly on a boundary starts at the NEXT multiple: the
// install instant itself has passed.
func TestSetTickOnBoundaryStartsAtNextMultiple(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	e.At(20, func(Time) {
		e.SetTick(10, func(at Time) { ticks = append(ticks, at) })
	})
	e.At(41, func(Time) {})
	e.Run()
	if want := []Time{30, 40}; !reflect.DeepEqual(ticks, want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
}

func TestSetTickRemoval(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.SetTick(10, func(Time) { fired++ })
	e.SetTick(0, nil)
	e.At(100, func(Time) {})
	e.Run()
	if fired != 0 {
		t.Fatalf("removed tick fired %d times", fired)
	}
}

func TestProcessedByLabels(t *testing.T) {
	e := NewEngine()
	e.AtNamed(1, "alpha", func(Time) {})
	e.AtNamed(2, "alpha", func(Time) {})
	e.AfterNamed(3, "beta", func(Time) {})
	e.At(4, func(Time) {})
	e.Run()
	got := e.ProcessedBy()
	want := map[string]uint64{"alpha": 2, "beta": 1, "other": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ProcessedBy = %v, want %v", got, want)
	}
	// The returned map is a copy: mutating it must not corrupt the engine.
	got["alpha"] = 99
	if e.ProcessedBy()["alpha"] != 2 {
		t.Fatal("ProcessedBy returned a live reference")
	}
}
