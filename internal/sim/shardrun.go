// The shard runner: the ONE file in the simulation tree that may spawn
// goroutines.
//
// Everything under internal/ is single-threaded by design — the rackvet
// goroutinediscipline analyzer rejects `go` statements anywhere else —
// because goroutine interleaving is the cheapest way to lose bit-exact
// replay. Concurrency is safe here, and only here, because of what the
// barrier protocol in shard.go guarantees: within a window each worker
// executes exclusively its own shard's engine and appends exclusively to
// its own shard's outgoing mailboxes; shards exchange no other state.
// The WaitGroup barrier orders every window against the coordinator's
// mailbox drain, so the parallel schedule is the sequential schedule —
// the sharded-vs-sequential differential fuzzer and the byte-identity
// tests hold Run to that.
package sim

import "sync"

// shardWorkers is one parallel run's worker pool: one goroutine per
// shard, fed window deadlines over per-worker channels and joined at a
// WaitGroup barrier after every window.
type shardWorkers struct {
	windows []chan Time
	wg      sync.WaitGroup
}

// startWorkers launches one worker per shard. Workers exit when their
// window channel closes (stop); the pool lives for a single Run call,
// so an abandoned group leaks nothing.
func (g *ShardGroup) startWorkers() *shardWorkers {
	w := &shardWorkers{windows: make([]chan Time, len(g.engines))}
	for i := range g.engines {
		i := i
		ch := make(chan Time)
		w.windows[i] = ch
		go func() {
			for end := range ch {
				g.engines[i].RunUntil(end)
				w.wg.Done()
			}
		}()
	}
	return w
}

// runWindow executes one window on all shards in parallel and barriers:
// when it returns, every shard has advanced to the window end and all
// outgoing mail is visible to the caller (the WaitGroup establishes the
// happens-before edge).
func (w *shardWorkers) runWindow(end Time) {
	w.wg.Add(len(w.windows))
	for _, ch := range w.windows {
		ch <- end
	}
	w.wg.Wait()
}

// stop shuts the pool down; all workers have already drained their
// window (runWindow barriers before stop can be called).
func (w *shardWorkers) stop() {
	for _, ch := range w.windows {
		close(ch)
	}
}

// Run drives the shards to completion with one goroutine per shard,
// synchronized at conservative-lookahead window barriers. The executed
// schedule — and every observable result — is byte-identical to
// RunSequential; only the wall-clock time changes.
func (g *ShardGroup) Run() {
	w := g.startWorkers()
	defer w.stop()
	g.runLoop(w.runWindow)
}

// RunUntil is Run bounded by a deadline: events at or before it execute,
// later ones stay pending, and every shard's clock advances to the
// deadline, like Engine.RunUntil.
func (g *ShardGroup) RunUntil(deadline Time) {
	w := g.startWorkers()
	defer w.stop()
	g.runLoopUntil(deadline, w.runWindow)
}
