package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds matched %d/100 draws", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("forked streams matched %d/100 draws", same)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(3)
	const mean = 1000 * Microsecond
	var sum Time
	const n = 20000
	for i := 0; i < n; i++ {
		sum += g.Exp(mean)
	}
	got := float64(sum) / n
	if math.Abs(got-float64(mean)) > 0.05*float64(mean) {
		t.Fatalf("exp mean = %f, want ~%d", got, mean)
	}
}

func TestExpNonNegativeProperty(t *testing.T) {
	g := NewRNG(4)
	f := func(mean uint16) bool { return g.Exp(Time(mean)) >= 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpZeroMean(t *testing.T) {
	g := NewRNG(5)
	if g.Exp(0) != 0 {
		t.Fatal("Exp(0) != 0")
	}
	if g.Exp(-5) != 0 {
		t.Fatal("Exp(negative) != 0")
	}
}

func TestLogNormalMedian(t *testing.T) {
	g := NewRNG(6)
	const n = 20001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = g.LogNormal(100, 0.5)
	}
	// Median of samples should approximate the parameter.
	med := quickSelectMedian(vals)
	if med < 90 || med > 110 {
		t.Fatalf("lognormal median = %f, want ~100", med)
	}
}

func quickSelectMedian(v []float64) float64 {
	// Simple nth-element via sorting a copy; fine for tests.
	c := append([]float64(nil), v...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

func TestParetoLowerBound(t *testing.T) {
	g := NewRNG(8)
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(50, 2.0); v < 50 {
			t.Fatalf("pareto sample %f below xm", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	g := NewRNG(9)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if p < 0.27 || p > 0.33 {
		t.Fatalf("Bool(0.3) rate = %f", p)
	}
}

func TestZipfInRange(t *testing.T) {
	g := NewRNG(10)
	z := NewZipf(g, 0.99, 1000)
	for i := 0; i < 5000; i++ {
		if v := z.Next(); v >= 1000 {
			t.Fatalf("zipf sample %d out of range", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(11)
	z := NewZipf(g, 0.99, 10000)
	const n = 50000
	low := 0 // hits within the first 100 ranks
	for i := 0; i < n; i++ {
		if z.Next() < 100 {
			low++
		}
	}
	// Zipfian access concentrates: the top 1% of keys should receive far
	// more than 1% of accesses.
	if frac := float64(low) / n; frac < 0.3 {
		t.Fatalf("top-100 ranks got %f of accesses, want heavy skew", frac)
	}
}

func TestZipfN(t *testing.T) {
	g := NewRNG(12)
	z := NewZipf(g, 0.99, 777)
	if z.N() != 777 {
		t.Fatalf("N = %d, want 777", z.N())
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(13)
	p := g.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}
