package sim

import (
	"fmt"
	"sort"
)

// Sharded simulation: one Engine per rack plus a coordinator shard,
// synchronized with conservative lookahead.
//
// The rack model's asymmetry — intra-rack events are dense and cheap,
// cross-rack interactions pay at least the spine's propagation latency —
// is exactly the structure a conservative parallel discrete-event
// simulation needs: a message sent while executing an event at time t
// cannot take effect on another shard before t+lookahead, so every shard
// may safely run all events in the window [T, T+lookahead) in parallel,
// where T is the earliest pending event anywhere (the synchronous
// Chandy–Misra–Bryant variant). Cross-shard events travel through
// per-edge mailboxes and are merged into the destination engine in
// canonical (time, source shard, send sequence) order at each window
// barrier, so the executed schedule — and therefore every observable
// result — is byte-identical whether the shards run on one goroutine
// (RunSequential) or one goroutine each (Run, see shardrun.go, the one
// file in the tree allowed to spawn goroutines).
//
// Shard 0 is the coordinator: the spine/cluster layer (shared bandwidth
// metering, the scenario driver) lives there, shards 1..n are the racks.
// During a window a shard's events may touch only that shard's state;
// every cross-shard interaction goes through Send. Nothing enforces the
// ownership discipline at runtime — the rackvet goroutinediscipline
// analyzer pins where concurrency may be introduced, and the
// sharded-vs-sequential differential tests are the behavioral gate.

// mailItem is one cross-shard event waiting in an edge mailbox.
type mailItem struct {
	at    Time
	src   int
	seq   uint64 // per-edge send sequence, assigned in Send-call order
	label string
	fn    EventFunc
}

// ShardGroup owns a coordinator engine plus one engine per rack and runs
// them under conservative-lookahead synchronization.
type ShardGroup struct {
	lookahead Time
	engines   []*Engine
	// mail[src][dst] buffers cross-shard events: written only by src's
	// executing window (sequentially within a shard), drained into dst's
	// engine at barriers. The per-edge split is what makes parallel
	// windows write-race-free without locks.
	mail    [][][]mailItem
	sendSeq [][]uint64
	// merge is the reusable delivery scratch buffer (kept across rounds
	// so steady-state delivery does not allocate).
	merge []mailItem
}

// NewShardGroup returns a group of racks+1 engines: shard 0 is the
// coordinator (spine), shards 1..racks the per-rack engines. lookahead
// is the minimum cross-shard event delay (CrossRackLatency in the rack
// topology); it is clamped to at least 1ns — a zero-lookahead edge would
// admit same-instant cross-shard causality, which cannot be windowed.
func NewShardGroup(racks int, lookahead Time) *ShardGroup {
	if racks < 0 {
		panic("sim: negative rack count")
	}
	if lookahead < Nanosecond {
		lookahead = Nanosecond
	}
	n := racks + 1
	g := &ShardGroup{
		lookahead: lookahead,
		engines:   make([]*Engine, n),
		mail:      make([][][]mailItem, n),
		sendSeq:   make([][]uint64, n),
	}
	for i := range g.engines {
		g.engines[i] = NewEngine()
		g.mail[i] = make([][]mailItem, n)
		g.sendSeq[i] = make([]uint64, n)
	}
	return g
}

// Shards returns the total shard count (racks + the coordinator).
func (g *ShardGroup) Shards() int { return len(g.engines) }

// Lookahead returns the group's conservative lookahead window.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// Shard returns shard i's engine; 0 is the coordinator, 1..n the racks.
func (g *ShardGroup) Shard(i int) *Engine { return g.engines[i] }

// Coordinator returns the spine/cluster shard's engine.
func (g *ShardGroup) Coordinator() *Engine { return g.engines[0] }

// Send schedules fn on shard dst at absolute time at, from code running
// on shard src. The lookahead contract is enforced: at must be at least
// src's current time plus the group lookahead, because the destination
// may already have advanced that far into the window. Delivery happens
// at the next window barrier; events from all sources headed for one
// shard are merged in canonical (time, source shard, send sequence)
// order, so the destination's schedule does not depend on which
// goroutine ran first.
func (g *ShardGroup) Send(src, dst int, at Time, label string, fn EventFunc) {
	if fn == nil {
		panic("sim: nil cross-shard event function")
	}
	if src == dst {
		panic(fmt.Sprintf("sim: cross-shard Send from shard %d to itself; schedule locally", src))
	}
	if min := g.engines[src].Now() + g.lookahead; at < min {
		panic(fmt.Sprintf(
			"sim: cross-shard send at %d violates lookahead: shard %d is at %d, earliest legal delivery %d",
			at, src, g.engines[src].Now(), min))
	}
	g.sendSeq[src][dst]++
	g.mail[src][dst] = append(g.mail[src][dst],
		mailItem{at: at, src: src, seq: g.sendSeq[src][dst], label: label, fn: fn})
}

// SendAfter is Send with a source-relative delay; d must be at least the
// group lookahead.
func (g *ShardGroup) SendAfter(src, dst int, d Time, label string, fn EventFunc) {
	g.Send(src, dst, g.engines[src].Now()+d, label, fn)
}

// deliver drains every edge mailbox into its destination engine, merging
// per destination in (time, source shard, send sequence) order. Called
// only at barriers, with no window in flight.
func (g *ShardGroup) deliver() {
	for dst := range g.engines {
		g.merge = g.merge[:0]
		for src := range g.engines {
			if len(g.mail[src][dst]) == 0 {
				continue
			}
			g.merge = append(g.merge, g.mail[src][dst]...)
			g.mail[src][dst] = g.mail[src][dst][:0]
		}
		if len(g.merge) == 0 {
			continue
		}
		m := g.merge
		sort.Slice(m, func(i, j int) bool {
			if m[i].at != m[j].at {
				return m[i].at < m[j].at
			}
			if m[i].src != m[j].src {
				return m[i].src < m[j].src
			}
			return m[i].seq < m[j].seq
		})
		eng := g.engines[dst]
		for i := range m {
			eng.AtNamed(m[i].at, m[i].label, m[i].fn)
			m[i].fn = nil // do not retain the closure in the scratch buffer
		}
	}
}

// mailPending counts undelivered cross-shard events.
func (g *ShardGroup) mailPending() int {
	n := 0
	for src := range g.mail {
		for dst := range g.mail[src] {
			n += len(g.mail[src][dst])
		}
	}
	return n
}

// earliest returns the earliest pending event time across all shards
// (mailboxes must already be drained), or false when the group is idle.
func (g *ShardGroup) earliest() (Time, bool) {
	var min Time
	found := false
	for _, e := range g.engines {
		if t, ok := e.nextEventTime(); ok && (!found || t < min) {
			min, found = t, true
		}
	}
	return min, found
}

// stoppedAny reports whether any shard's engine was stopped during the
// last window (Engine.Stop inside an event handler): the group run ends
// at that round's barrier, leaving later events pending — the sharded
// analogue of Stop's single-engine semantics.
func (g *ShardGroup) stoppedAny() bool {
	for _, e := range g.engines {
		if e.stopped {
			return true
		}
	}
	return false
}

// window computes the next conservative window, delivering mail first.
// It returns the window's inclusive end (all events with time <= end are
// safe to run on every shard) and false when no work remains.
func (g *ShardGroup) window() (Time, bool) {
	g.deliver()
	t, ok := g.earliest()
	if !ok {
		return 0, false
	}
	return t + g.lookahead - 1, true
}

// seqWindow runs one window on the calling goroutine, shards stepped in
// index order. Window execution order across shards is unobservable —
// shards share no state and interact only through the mailboxes drained
// at barriers — which is exactly why the parallel runner can substitute
// one goroutine per shard without changing a single result byte.
func (g *ShardGroup) seqWindow(end Time) {
	for _, e := range g.engines {
		e.RunUntil(end)
	}
}

// runLoop drives windows until the group idles or a shard stops; run
// executes one window (sequentially or on the worker goroutines).
func (g *ShardGroup) runLoop(run func(end Time)) {
	for {
		end, ok := g.window()
		if !ok {
			return
		}
		run(end)
		if g.stoppedAny() {
			return
		}
	}
}

// runLoopUntil is runLoop bounded by a deadline: windows are clamped to
// it, and once no work remains at or before the deadline every shard's
// clock is advanced to it (firing observer ticks), like Engine.RunUntil.
func (g *ShardGroup) runLoopUntil(deadline Time, run func(end Time)) {
	for {
		end, ok := g.window()
		if !ok || end > deadline {
			break
		}
		run(end)
		if g.stoppedAny() {
			return
		}
	}
	if t, ok := g.earliest(); ok && t <= deadline {
		// A window straddles the deadline: run just the events at or
		// before it. Mail sent by those events lands beyond the deadline
		// (the lookahead bound) and stays queued for the next call.
		run(deadline)
		if g.stoppedAny() {
			return
		}
	}
	run(deadline)
}

// RunSequential drives every shard on the calling goroutine: the same
// windows, barriers, and mailbox merges as the parallel Run. It is the
// differential oracle — Run must be byte-identical to it — and the mode
// of choice when the topology has one rack (nothing to parallelize).
func (g *ShardGroup) RunSequential() { g.runLoop(g.seqWindow) }

// RunUntilSequential is RunSequential bounded by a deadline.
func (g *ShardGroup) RunUntilSequential(deadline Time) { g.runLoopUntil(deadline, g.seqWindow) }

// Now returns the group's conservative global clock: the minimum of the
// shard clocks (every shard has advanced at least this far).
func (g *ShardGroup) Now() Time {
	min := g.engines[0].Now()
	for _, e := range g.engines[1:] {
		if t := e.Now(); t < min {
			min = t
		}
	}
	return min
}

// Pending sums scheduled-but-unexecuted events across shards, plus
// cross-shard events still waiting in mailboxes.
func (g *ShardGroup) Pending() int {
	n := g.mailPending()
	for _, e := range g.engines {
		n += e.Pending()
	}
	return n
}

// Processed sums executed events across shards.
func (g *ShardGroup) Processed() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.Processed()
	}
	return n
}

// ProcessedBy merges the per-handler event counts of every shard into a
// freshly allocated map. Like Engine.ProcessedBy, the result is a
// defensive copy: the caller may mutate it freely without corrupting any
// shard's interned-label counters.
func (g *ShardGroup) ProcessedBy() map[string]uint64 {
	out := make(map[string]uint64)
	for _, e := range g.engines {
		for i, name := range e.labelNames {
			if c := e.labelCounts[i]; c > 0 {
				out[name] += c
			}
		}
	}
	return out
}

// SetTick installs a per-shard observer tick: fn(shard, boundary) fires
// for every shard at every multiple of interval, between that shard's
// events, under Engine.SetTick's observer-only contract. Boundaries are
// anchored to the virtual-time axis, so samples from different shards
// align and merge deterministically by (boundary, shard).
func (g *ShardGroup) SetTick(interval Time, fn func(shard int, at Time)) {
	for i, e := range g.engines {
		if interval <= 0 || fn == nil {
			e.SetTick(0, nil)
			continue
		}
		i := i
		e.SetTick(interval, func(at Time) { fn(i, at) })
	}
}

// nextEventTime returns the earliest pending event's time on e.
func (e *Engine) nextEventTime() (Time, bool) {
	if e.q == nil || e.q.len() == 0 {
		return 0, false
	}
	return e.q.peekTime(), true
}
