package sim

// Resource models a serial device (a flash channel, a NIC, a switch port):
// at most one operation is in service at a time and waiters are served in
// FIFO order of Acquire calls.
//
// Acquire reserves the resource for dur nanoseconds starting at the earliest
// instant the resource is free, and schedules done(start, end) at end.
// This "reservation" style keeps queueing implicit and cheap; components
// that need reorderable queues (the storage I/O schedulers) keep their own
// explicit queues and only Acquire at dispatch time.
type Resource struct {
	eng       *Engine
	busyUntil Time
	// busy tracks cumulative busy time, for utilization reporting.
	busy Time
	ops  uint64
}

// NewResource returns an idle serial resource bound to eng.
func NewResource(eng *Engine) *Resource {
	if eng == nil {
		panic("sim: NewResource with nil engine")
	}
	return &Resource{eng: eng}
}

// FreeAt returns the earliest time the resource becomes idle.
func (r *Resource) FreeAt() Time {
	if r.busyUntil < r.eng.Now() {
		return r.eng.Now()
	}
	return r.busyUntil
}

// Idle reports whether the resource is free right now.
func (r *Resource) Idle() bool { return r.busyUntil <= r.eng.Now() }

// Utilization returns cumulative busy time divided by elapsed time.
func (r *Resource) Utilization() float64 {
	if r.eng.Now() == 0 {
		return 0
	}
	b := r.busy
	if r.busyUntil > r.eng.Now() {
		// Do not count reserved-but-future time.
		b -= r.busyUntil - r.eng.Now()
	}
	return float64(b) / float64(r.eng.Now())
}

// Ops returns the number of completed or reserved operations.
func (r *Resource) Ops() uint64 { return r.ops }

// Acquire reserves the resource for dur and calls done(start, end) at end.
// done may be nil when only the reservation matters.
func (r *Resource) Acquire(dur Time, done func(start, end Time)) (start, end Time) {
	if dur < 0 {
		panic("sim: negative duration")
	}
	start = r.FreeAt()
	end = start + dur
	r.busyUntil = end
	r.busy += dur
	r.ops++
	if done != nil {
		r.eng.AtNamed(end, "resource", func(Time) { done(start, end) })
	}
	return start, end
}

// Block extends the busy period through at least t, without an operation.
// Used to model garbage collection occupying a channel.
func (r *Resource) Block(until Time) {
	if until > r.busyUntil {
		if r.busyUntil < r.eng.Now() {
			r.busy += until - r.eng.Now()
		} else {
			r.busy += until - r.busyUntil
		}
		r.busyUntil = until
	}
}
