package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine now = %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine pending = %d, want 0", e.Pending())
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.At(at, func(now Time) { got = append(got, now) })
	}
	e.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d ran at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestTiesRunInInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v, want insertion order", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.At(500, func(Time) {
		e.After(250, func(now Time) { at = now })
	})
	e.Run()
	if at != 750 {
		t.Fatalf("After fired at %d, want 750", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func(Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func(Time) {})
	})
	e.Run()
}

func TestNilEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	e.At(1, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func(Time) {})
}

func TestRunUntilLeavesLaterEventsPending(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func(now Time) { ran = append(ran, now) })
	}
	e.RunUntil(25)
	if len(ran) != 2 {
		t.Fatalf("ran %d events, want 2", len(ran))
	}
	if e.Now() != 25 {
		t.Fatalf("now = %d, want 25 after RunUntil", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("ran %d events total, want 4", len(ran))
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.RunUntil(12345)
	if e.Now() != 12345 {
		t.Fatalf("now = %d, want 12345", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 100; i++ {
		e.At(Time(i), func(Time) {
			n++
			if n == 5 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 5 {
		t.Fatalf("processed %d events after Stop, want 5", n)
	}
	// Run can resume afterwards.
	e.Run()
	if n != 100 {
		t.Fatalf("processed %d events after resume, want 100", n)
	}
}

func TestProcessedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func(Time) {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Fatalf("processed = %d, want 7", e.Processed())
	}
}

// Property: for any set of event times, execution order is the sorted order.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var got []Time
		for _, u := range times {
			at := Time(u)
			e.At(at, func(now Time) { got = append(got, now) })
		}
		e.Run()
		want := make([]Time, len(times))
		for i, u := range times {
			want[i] = Time(u)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: nested scheduling never observes time going backwards.
func TestMonotonicClockProperty(t *testing.T) {
	f := func(seed int64) bool {
		e := NewEngine()
		r := rand.New(rand.NewSource(seed))
		last := Time(-1)
		ok := true
		var spawn func(now Time)
		count := 0
		spawn = func(now Time) {
			if now < last {
				ok = false
			}
			last = now
			count++
			if count < 200 {
				e.After(Time(r.Intn(1000)), spawn)
				if r.Intn(2) == 0 {
					e.After(Time(r.Intn(1000)), spawn)
				}
			}
		}
		e.At(0, spawn)
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Regression (PR 7): Stop() during RunUntil used to force the clock to
// the deadline while skipping both pending events and tick boundaries;
// the next Step then rewound e.now to the stale boundary. The clock must
// stay at the last executed event when stopped, and every subsequently
// observed timestamp — events and ticks — must be monotone.
func TestStopDuringRunUntilKeepsClockMonotone(t *testing.T) {
	e := NewEngine()
	var stamps []Time
	last := Time(-1)
	observe := func(at Time) {
		if at < last {
			t.Fatalf("clock rewound: observed %d after %d (stamps %v)", at, last, stamps)
		}
		last = at
		stamps = append(stamps, at)
	}
	e.SetTick(10, observe)
	for _, at := range []Time{25, 50, 75, 100} {
		at := at
		e.At(at, func(now Time) {
			observe(now)
			if now == 50 {
				e.Stop()
			}
		})
	}
	e.RunUntil(100)
	if e.Now() != 50 {
		t.Fatalf("now = %d after Stop mid-RunUntil, want 50 (the stopping event)", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d after Stop, want 2", e.Pending())
	}
	// Resume: the events at 75 and 100 and the boundaries in between all
	// fire, in order, with no rewind.
	e.Run()
	want := []Time{10, 20, 25, 30, 40, 50, 50, 60, 70, 75, 80, 90, 100, 100}
	if len(stamps) != len(want) {
		t.Fatalf("stamps = %v, want %v", stamps, want)
	}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("stamps = %v, want %v", stamps, want)
		}
	}
}

// Regression (PR 7): the old eventHeap.Pop left the popped event — its
// closure and label — live in the truncated slice's backing array, so a
// long run retained every callback it had ever executed. The pooled-node
// rewrite zeroes drained slots; pool accounting verifies no closure
// survives a drain, on both schedulers.
func TestDrainedEventsReleaseClosures(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *Engine
	}{{"wheel", NewEngine}, {"heap", newHeapEngine}} {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.mk()
			// Several waves through the free list, with nested grants.
			for wave := 0; wave < 5; wave++ {
				for i := 0; i < 200; i++ {
					payload := make([]byte, 1024)
					e.AfterNamed(Time(i%17), "grant", func(now Time) {
						e.After(1, func(Time) { payload[0]++ })
					})
				}
				e.Run()
			}
			if n := e.pool.live(); n != 0 {
				t.Errorf("%d drained pool nodes still hold closures", n)
			}
			// The pool recycles: five waves of ~400 live events must not
			// have grown it anywhere near the 2000 scheduled.
			if n := len(e.pool.nodes); n > 600 {
				t.Errorf("pool grew to %d nodes for <= ~417 concurrent events", n)
			}
		})
	}
}

func TestResourceSerializesWork(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	type span struct{ start, end Time }
	var spans []span
	for i := 0; i < 5; i++ {
		r.Acquire(100, func(s, en Time) { spans = append(spans, span{s, en}) })
	}
	e.Run()
	if len(spans) != 5 {
		t.Fatalf("got %d completions, want 5", len(spans))
	}
	for i, s := range spans {
		wantStart := Time(i) * 100
		if s.start != wantStart || s.end != wantStart+100 {
			t.Fatalf("span %d = [%d,%d], want [%d,%d]", i, s.start, s.end, wantStart, wantStart+100)
		}
	}
}

func TestResourceIdleAndFreeAt(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	if !r.Idle() {
		t.Fatal("new resource not idle")
	}
	_, end := r.Acquire(500, nil)
	if end != 500 {
		t.Fatalf("end = %d, want 500", end)
	}
	if r.Idle() {
		t.Fatal("resource idle while reserved")
	}
	if r.FreeAt() != 500 {
		t.Fatalf("FreeAt = %d, want 500", r.FreeAt())
	}
	e.RunUntil(600)
	if !r.Idle() {
		t.Fatal("resource not idle after work completes")
	}
}

func TestResourceBlockExtendsBusy(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	r.Block(1000)
	start, end := r.Acquire(100, nil)
	if start != 1000 || end != 1100 {
		t.Fatalf("acquire after block = [%d,%d], want [1000,1100]", start, end)
	}
	// Blocking to an earlier time is a no-op.
	r.Block(500)
	if r.FreeAt() != 1100 {
		t.Fatalf("FreeAt = %d, want 1100", r.FreeAt())
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	r.Acquire(400, nil)
	e.RunUntil(1000)
	u := r.Utilization()
	if u < 0.39 || u > 0.41 {
		t.Fatalf("utilization = %f, want ~0.4", u)
	}
}

// Property: FIFO reservations never overlap and never leave gaps when
// requests arrive back-to-back.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		e := NewEngine()
		r := NewResource(e)
		prevEnd := Time(0)
		for _, d := range durs {
			start, end := r.Acquire(Time(d), nil)
			if start < prevEnd || start != prevEnd {
				return false
			}
			if end != start+Time(d) {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
