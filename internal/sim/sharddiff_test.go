package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Sharded-vs-sequential differential: the byte-coded schedule language
// from differential_test.go, lifted to a ShardGroup. One script drives
// two identical groups — one via RunSequential (the oracle), one via the
// parallel Run — and the per-shard traces must match byte for byte.
//
// Determinism of the interpreter itself is load-bearing: every decision
// a shard makes is consumed from that shard's own byte stream (the
// script striped across shards), and a stream is only ever read by code
// executing on its shard, so consumption order is the shard's event
// order — deterministic by the engine contract — no matter which
// goroutine runs the window.

// shardScript interprets one byte-coded schedule against a group.
type shardScript struct {
	g       *ShardGroup
	streams [][]byte // streams[s] is shard s's private decision stream
	pos     []int
	traces  [][]string
	last    []Time // per-shard clock high-water mark, for REWIND detection
	ids     []int
}

func newShardScript(g *ShardGroup, body []byte) *shardScript {
	n := g.Shards()
	s := &shardScript{
		g:       g,
		streams: make([][]byte, n+1), // stream n drives the harness
		pos:     make([]int, n+1),
		traces:  make([][]string, n),
		last:    make([]Time, n),
		ids:     make([]int, n),
	}
	for i, b := range body {
		k := i % (n + 1)
		s.streams[k] = append(s.streams[k], b)
	}
	for i := range s.last {
		s.last[i] = -1
	}
	return s
}

func (s *shardScript) next(stream int) int {
	if s.pos[stream] >= len(s.streams[stream]) {
		return -1
	}
	b := int(s.streams[stream][s.pos[stream]])
	s.pos[stream]++
	return b
}

func (s *shardScript) observe(shard int, kind string, at Time, id int) {
	if at < s.last[shard] {
		s.traces[shard] = append(s.traces[shard],
			fmt.Sprintf("REWIND %s %d after %d", kind, at, s.last[shard]))
		return
	}
	s.last[shard] = at
	s.traces[shard] = append(s.traces[shard], fmt.Sprintf("%s %d %d", kind, at, id))
}

var shardScriptLabels = []string{"alpha", "beta", "gamma"}

// schedule consumes one byte from shard's stream and schedules one event
// there. Executing events consume more bytes — from the stream of
// whichever shard they run on — to nest local events, hop across shards
// through the mailboxes, or stop their engine.
func (s *shardScript) schedule(shard, depth int) {
	b := s.next(shard)
	if b < 0 {
		return
	}
	myID := s.ids[shard]
	s.ids[shard]++
	s.g.Shard(shard).AfterNamed(Time(b%48), shardScriptLabels[(b/48)%3], s.event(shard, myID, depth))
}

func (s *shardScript) event(shard, id, depth int) EventFunc {
	return func(now Time) {
		s.observe(shard, "e", now, id)
		c := s.next(shard)
		if c < 0 {
			return
		}
		if c%23 == 0 {
			s.g.Shard(shard).Stop()
		}
		n := s.g.Shards()
		if n > 1 && c%7 == 0 && depth < 6 {
			// Cross-shard hop: the continuation executes on dst, with a
			// fresh id assigned from src (send-time state is src-owned).
			dst := (shard + 1 + (c/7)%(n-1)) % n
			hopID := s.ids[shard]
			s.ids[shard]++
			s.g.Send(shard, dst, now+s.g.Lookahead()+Time(c%32),
				"hop", s.event(dst, hopID, depth+1))
		}
		if depth < 6 {
			for j := 0; j < c%3; j++ {
				s.schedule(shard, depth+1)
			}
		}
	}
}

// run interprets the full script: topology and tick config from the
// header, initial events on every shard, then a harness loop of
// Run/RunUntil slices and late scheduling, and a final drain. The
// returned trace flattens the per-shard traces in shard order with a
// group-aggregate footer.
func runShardScript(script []byte, parallel bool) []string {
	racks, lookahead, tick := 1, 64, 0
	if len(script) >= 3 {
		racks = 1 + int(script[0])%4
		lookahead = 1 + int(script[1])%96
		tick = int(script[2])
	}
	body := script
	if len(script) > 3 {
		body = script[3:]
	}
	g := NewShardGroup(racks, Time(lookahead))
	s := newShardScript(g, body)

	if tick%3 == 1 {
		g.SetTick(Time(tick%29+1), func(shard int, at Time) {
			s.observe(shard, "t", at, -1)
		})
	}
	run := func() {
		if parallel {
			g.Run()
		} else {
			g.RunSequential()
		}
	}
	runUntil := func(d Time) {
		if parallel {
			g.RunUntil(d)
		} else {
			g.RunUntilSequential(d)
		}
	}

	for shard := 0; shard < g.Shards(); shard++ {
		for i := 0; i < 2; i++ {
			s.schedule(shard, 0)
		}
	}
	driver := g.Shards() // the harness stream
	for {
		op := s.next(driver)
		if op < 0 {
			break
		}
		switch op % 4 {
		case 0:
			runUntil(g.Now() + Time(op*7+1))
		case 1:
			run()
		case 2:
			s.schedule(op%g.Shards(), 0)
		case 3:
			runUntil(g.Now() + Time(op%13))
		}
	}
	run() // drain

	var out []string
	for shard, tr := range s.traces {
		for _, line := range tr {
			out = append(out, fmt.Sprintf("s%d %s", shard, line))
		}
	}
	out = append(out, fmt.Sprintf("end now=%d pending=%d processed=%d by=%v",
		g.Now(), g.Pending(), g.Processed(), g.ProcessedBy()))
	return out
}

// diffShardModes runs one script in both modes and reports the first
// divergence or clock rewind found, if any.
func diffShardModes(script []byte) error {
	seq := runShardScript(script, false)
	par := runShardScript(script, true)
	if len(seq) != len(par) {
		return fmt.Errorf("trace lengths differ: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			return fmt.Errorf("traces diverge at %d: sequential %q, parallel %q", i, seq[i], par[i])
		}
		if len(seq[i]) >= 9 && seq[i][3:9] == "REWIND" {
			return fmt.Errorf("shard clock rewound: %s", seq[i])
		}
	}
	return nil
}

// Property: the parallel shard runner executes any random sharded
// schedule — cross-shard hops, same-window bursts, Stop, RunUntil
// slices, per-shard ticks — byte-identically to the sequential oracle.
func TestShardedMatchesSequentialProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		script := make([]byte, int(n)+16)
		r.Read(script)
		if err := diffShardModes(script); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// FuzzShardSchedule fuzzes the sharded schedule language over both run
// modes: any sequential-vs-parallel divergence, or any per-shard clock
// rewind, is a crash. Seeds cover the interesting regions: multi-rack
// topologies, minimal lookahead, tick observers on, stop-heavy and
// hop-heavy streams.
func FuzzShardSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 7, 7, 7, 14, 21, 28, 1, 2})                    // 4 racks, 1ns lookahead, ticks, hop-heavy
	f.Add([]byte{1, 95, 0, 23, 46, 69, 92, 0, 0, 1})                     // 2 racks, wide lookahead, stop-heavy
	f.Add([]byte{0, 13, 4, 200, 100, 50, 25, 12, 6, 3, 1, 0})            // single rack: coordinator + 1
	f.Add([]byte{2, 31, 7, 47, 47, 47, 47, 0, 0, 0, 0, 5, 9, 13, 2, 1})  // same-timestamp bursts across 3 racks
	f.Add([]byte{3, 1, 1, 255, 128, 64, 32, 16, 8, 4, 2, 1, 3, 3, 3, 3}) // RunUntil slicing under ticks
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 2048 {
			t.Skip("script too large")
		}
		if err := diffShardModes(script); err != nil {
			t.Fatal(err)
		}
	})
}
