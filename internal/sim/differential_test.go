package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// driveScript executes one byte-coded schedule against e and returns the
// observed trace: one line per executed event and per observer tick, in
// order, with timestamps. Script bytes are consumed lazily — at schedule
// time for event shape and at execution time for nested scheduling and
// Stop calls — so two engines produce identical traces if and only if
// they execute the same events in the same order at the same times. The
// script space deliberately covers the hazards named in ISSUE 7:
// same-timestamp bursts (delta 0), Stop mid-run, RunUntil slicing, and
// tick observers.
func driveScript(e *Engine, script []byte) []string {
	var trace []string
	last := Time(-1)
	observe := func(kind string, at Time, id int) {
		if at < last {
			trace = append(trace, fmt.Sprintf("REWIND %s %d after %d", kind, at, last))
			return
		}
		last = at
		trace = append(trace, fmt.Sprintf("%s %d %d", kind, at, id))
	}
	pos := 0
	next := func() int {
		if pos >= len(script) {
			return -1
		}
		b := int(script[pos])
		pos++
		return b
	}
	labels := []string{"", "alpha", "beta"}
	id := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		b := next()
		if b < 0 {
			return
		}
		d := Time(b % 48) // 0 => same-timestamp burst
		label := labels[(b/48)%3]
		myID := id
		id++
		e.AfterNamed(d, label, func(now Time) {
			observe("e", now, myID)
			c := next()
			if c < 0 {
				return
			}
			if c%11 == 0 {
				e.Stop()
			}
			if depth < 6 {
				for j := 0; j < c%3; j++ {
					schedule(depth + 1)
				}
			}
		})
	}

	tick := next()
	if tick > 0 && tick%4 != 0 {
		e.SetTick(Time(tick%29+1), func(at Time) { observe("t", at, -1) })
	}
	for i := 0; i < 4; i++ {
		schedule(0)
	}
	for {
		op := next()
		if op < 0 {
			break
		}
		switch op % 5 {
		case 0:
			e.Step()
		case 1:
			e.RunUntil(e.Now() + Time(op))
		case 2:
			e.Run()
		case 3:
			schedule(0)
		case 4:
			e.SetTick(Time(op%17+1), func(at Time) { observe("t", at, -1) })
		}
	}
	e.Run() // drain
	trace = append(trace,
		fmt.Sprintf("end now=%d pending=%d processed=%d by=%v",
			e.Now(), e.Pending(), e.Processed(), e.ProcessedBy()))
	return trace
}

// diffEngines runs one script on both schedulers and reports the first
// divergence (or rewind) found, if any.
func diffEngines(script []byte) error {
	wheel := driveScript(NewEngine(), script)
	heap := driveScript(newHeapEngine(), script)
	if len(wheel) != len(heap) {
		return fmt.Errorf("trace lengths differ: wheel %d, heap %d", len(wheel), len(heap))
	}
	for i := range wheel {
		if wheel[i] != heap[i] {
			return fmt.Errorf("traces diverge at %d: wheel %q, heap %q", i, wheel[i], heap[i])
		}
		if len(wheel[i]) >= 6 && wheel[i][:6] == "REWIND" {
			return fmt.Errorf("clock rewound: %s", wheel[i])
		}
	}
	return nil
}

// Property: the time wheel and the reference binary heap execute any
// random schedule — nested scheduling, bursts, Stop, RunUntil slices,
// tick observers — as identical (time, seq, label) traces.
func TestWheelMatchesHeapProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		script := make([]byte, int(n)+16)
		r.Read(script)
		if err := diffEngines(script); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Directed differential cases for the schedule shapes most likely to
// stress wheel internals: cascade boundaries (64^l multiples), events
// exactly on the cursor, and far-future RunUntil fast-forwards that
// force the spill path.
func TestWheelMatchesHeapDirected(t *testing.T) {
	cases := []struct {
		name  string
		drive func(e *Engine) []Time
	}{
		{"cascade boundaries", func(e *Engine) []Time {
			var got []Time
			rec := func(now Time) { got = append(got, now) }
			for _, at := range []Time{0, 1, 63, 64, 65, 4095, 4096, 4097, 262143, 262144, 1 << 30, 1<<30 + 1} {
				at := at
				e.At(at, func(now Time) { rec(now) })
				e.At(at, func(now Time) { rec(now) }) // tie on every boundary
			}
			e.Run()
			return got
		}},
		{"spill behind the cursor", func(e *Engine) []Time {
			var got []Time
			e.At(1_000_000, func(now Time) { got = append(got, now) })
			// Fast-forward towards the far event, then schedule between
			// the clock and the wheel cursor.
			e.RunUntil(500_000)
			for _, at := range []Time{500_001, 600_000, 999_999, 1_000_000} {
				at := at
				e.At(at, func(now Time) { got = append(got, now) })
			}
			e.Run()
			return got
		}},
		{"reschedule at now", func(e *Engine) []Time {
			var got []Time
			n := 0
			var again EventFunc
			again = func(now Time) {
				got = append(got, now)
				n++
				if n < 50 {
					e.After(Time(n%2), again) // alternate 0-delay and 1ns
				}
			}
			e.At(10, again)
			e.Run()
			return got
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := tc.drive(NewEngine())
			h := tc.drive(newHeapEngine())
			if len(w) != len(h) {
				t.Fatalf("wheel ran %d events, heap %d", len(w), len(h))
			}
			for i := range w {
				if w[i] != h[i] {
					t.Fatalf("event %d: wheel at %d, heap at %d", i, w[i], h[i])
				}
			}
			for i := 1; i < len(w); i++ {
				if w[i] < w[i-1] {
					t.Fatalf("wheel times not monotone: %v", w)
				}
			}
		})
	}
}

// FuzzEngineTrace fuzzes the byte-coded schedule language over both
// schedulers: any divergence between the wheel and the reference heap,
// or any clock rewind, is a crash.
func FuzzEngineTrace(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 0, 0, 0, 0, 11, 2})
	f.Add([]byte{13, 47, 47, 47, 1, 200, 3, 3, 3, 2})
	f.Add([]byte{255, 64, 65, 63, 0, 22, 4, 1, 1, 2, 0, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 4096 {
			t.Skip("script too large")
		}
		if err := diffEngines(script); err != nil {
			t.Fatal(err)
		}
	})
}
