package sim

import (
	"fmt"
	"testing"
	"time"

	"rackblox/internal/walltime"
)

// lcg is a tiny deterministic generator for benchmark offsets — cheaper
// and more reproducible than math/rand in a timed loop.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

var benchEngines = []struct {
	name string
	mk   func() *Engine
}{
	{"wheel", NewEngine},
	{"heap", newHeapEngine},
}

var benchSizes = []int{10_000, 100_000, 1_000_000, 10_000_000}

func sizeName(n int) string {
	if n >= 1_000_000 {
		return fmt.Sprintf("%dM", n/1_000_000)
	}
	return fmt.Sprintf("%dk", n/1_000)
}

// BenchmarkEngineSchedule measures steady-state schedule+fire churn with
// a fixed population of pending events: each iteration pushes one event
// at a pseudo-random future offset and pops the earliest. This is the
// shape the rack simulation drives — the queue stays large while events
// flow through it — and where the heap's O(log n) comparisons and
// per-event boxing dominated.
func BenchmarkEngineSchedule(b *testing.B) {
	for _, eng := range benchEngines {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%s/pending=%s", eng.name, sizeName(size)), func(b *testing.B) {
				e := eng.mk()
				fn := func(Time) {}
				r := lcg(12345)
				offset := func() Time { return Time(r.next()>>44) + 1 }
				for i := 0; i < size; i++ {
					e.After(offset(), fn)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.After(offset(), fn)
					e.Step()
				}
			})
		}
	}
}

// BenchmarkEngineFire measures pure drain throughput: schedule size
// events up front, then run the queue dry. Reported per event.
func BenchmarkEngineFire(b *testing.B) {
	for _, eng := range benchEngines {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%s/n=%s", eng.name, sizeName(size)), func(b *testing.B) {
				fn := func(Time) {}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					e := eng.mk()
					r := lcg(12345)
					for j := 0; j < size; j++ {
						e.After(Time(r.next()>>44)+1, fn)
					}
					b.StartTimer()
					e.Run()
				}
				b.ReportMetric(float64(size), "events/op")
			})
		}
	}
}

// TestEngineSteadyStateAllocs is the CI allocation gate: once the pool,
// wheel, and label table are warm, scheduling and draining events must
// allocate NOTHING in the engine (the caller's closures are its own
// business; here one closure is reused). An alloc-count regression in
// the hot path fails this deterministically, unlike a timing threshold.
func TestEngineSteadyStateAllocs(t *testing.T) {
	for _, eng := range benchEngines {
		t.Run(eng.name, func(t *testing.T) {
			e := eng.mk()
			fn := func(Time) {}
			for i := 0; i < 2000; i++ {
				e.AfterNamed(Time(i%97), "grant", fn)
			}
			e.Run()
			avg := testing.AllocsPerRun(50, func() {
				for i := 0; i < 200; i++ {
					e.AfterNamed(Time(i%97), "grant", fn)
				}
				e.Run()
			})
			if avg != 0 {
				t.Errorf("steady-state schedule+drain allocates %.1f objects per 200 events, want 0", avg)
			}
		})
	}
}

// TestEngineSoak10Racks10MOps is the rack-scale soak from ISSUE 7: ten
// rack-shaped event populations — each a serial Resource with a fan of
// self-rescheduling operation chains — pushing ten million events
// through one engine. It must complete in seconds (generous wall-clock
// ceiling so slow CI hosts do not flake) with every event accounted for
// per rack label.
func TestEngineSoak10Racks10MOps(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped with -short")
	}
	const (
		racks         = 10
		chainsPerRack = 100
		totalOps      = 10_000_000
	)
	e := NewEngine()
	resources := make([]*Resource, racks)
	labels := make([]string, racks)
	for i := range resources {
		resources[i] = NewResource(e)
		labels[i] = fmt.Sprintf("rack%d", i)
	}
	// Each chain runs an exact share of the budget so the whole soak is
	// precisely totalOps events.
	const opsPerChain = totalOps / (racks * chainsPerRack)
	ops := 0
	r := lcg(99)
	chain := func(rack int) EventFunc {
		left := opsPerChain
		var fn EventFunc
		fn = func(now Time) {
			ops++
			left--
			if left == 0 {
				return
			}
			// Occupy the rack's device briefly, then reschedule after a
			// pseudo-random think time — the simulator's I/O heartbeat.
			resources[rack].Block(now + Time(r.next()%64))
			e.AfterNamed(Time(r.next()%4096)+1, labels[rack], fn)
		}
		return fn
	}
	for rack := 0; rack < racks; rack++ {
		for c := 0; c < chainsPerRack; c++ {
			e.AfterNamed(Time(r.next()%4096), labels[rack], chain(rack))
		}
	}
	// Host-clock soak timing goes through the audited walltime boundary:
	// the measurement bounds how fast the simulator executes and never
	// re-enters simulation state (see internal/walltime).
	start := walltime.Start()
	e.Run()
	elapsed := walltime.Elapsed(start)
	if ops != totalOps {
		t.Fatalf("ran %d ops, want %d", ops, totalOps)
	}
	if e.Processed() != totalOps {
		t.Fatalf("engine processed %d events, want %d", e.Processed(), totalOps)
	}
	var byRack uint64
	for _, c := range e.ProcessedBy() {
		byRack += c
	}
	if byRack != totalOps {
		t.Fatalf("per-rack counters sum to %d, want %d", byRack, totalOps)
	}
	if n := e.pool.live(); n != 0 {
		t.Fatalf("%d pool nodes still hold closures after the soak", n)
	}
	const ceiling = 60 * time.Second
	if elapsed > ceiling {
		t.Fatalf("soak took %v, over the %v ceiling", elapsed, ceiling)
	}
	t.Logf("10 racks x 10M ops in %v (%.1fM events/sec)", elapsed,
		float64(totalOps)/elapsed.Seconds()/1e6)
}
