// Package sim provides a deterministic discrete-event simulation engine.
//
// All RackBlox components run on virtual time measured in nanoseconds.
// Events execute in (time, insertion-order) order, so a simulation with a
// fixed seed is fully reproducible across runs and platforms.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual simulation time in nanoseconds.
type Time = int64

// Common durations in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// EventFunc is a callback executed at its scheduled virtual time.
type EventFunc func(now Time)

type event struct {
	at  Time
	seq uint64
	// label attributes the event to a handler class for ProcessedBy;
	// "" counts as "other".
	label string
	fn    EventFunc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	// processed counts executed events, useful as a runaway guard in tests.
	processed uint64
	// byLabel breaks processed down per handler label (AtNamed), a
	// profiling view of where the event budget goes.
	byLabel map[string]uint64
	stopped bool

	// Observer tick: fn fires at every multiple of tickInterval that
	// falls before the next event executes. It is NOT an event — it is
	// invoked between events without touching the heap, the sequence
	// counter, or the processed count, so enabling it cannot perturb
	// the simulation. The callback must only observe (read state,
	// record samples): scheduling events or drawing randomness from it
	// would break that guarantee.
	tickInterval Time
	nextTick     Time
	tickFn       func(at Time)
}

// NewEngine returns an engine with time zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// Processed reports the number of executed events so far.
func (e *Engine) Processed() uint64 { return e.processed }

// ProcessedBy returns a copy of the per-handler event counts. Events
// scheduled without a label (At/After) count under "other".
func (e *Engine) ProcessedBy() map[string]uint64 {
	out := make(map[string]uint64, len(e.byLabel))
	for k, v := range e.byLabel {
		out[k] = v
	}
	return out
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn EventFunc) { e.AtNamed(t, "", fn) }

// AtNamed is At with a handler label for the ProcessedBy breakdown.
func (e *Engine) AtNamed(t Time, label string, fn EventFunc) {
	if fn == nil {
		panic("sim: nil event function")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, label: label, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn EventFunc) { e.AfterNamed(d, "", fn) }

// AfterNamed is After with a handler label for the ProcessedBy breakdown.
func (e *Engine) AfterNamed(d Time, label string, fn EventFunc) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.AtNamed(e.now+d, label, fn)
}

// SetTick installs (or, with interval <= 0 or nil fn, removes) the
// observer tick: fn(boundary) fires at every multiple of interval from
// now on, interleaved between events without being one. See the field
// comment on Engine for the observer-only contract.
func (e *Engine) SetTick(interval Time, fn func(at Time)) {
	if interval <= 0 || fn == nil {
		e.tickInterval, e.tickFn = 0, nil
		return
	}
	e.tickInterval = interval
	e.tickFn = fn
	e.nextTick = e.now + interval
}

// fireTicks runs the observer tick for every boundary <= upto. The
// clock visibly advances to each boundary so the observer reads
// time-dependent state (utilizations) consistently, then the caller
// advances it past upto; boundaries are <= the next event's time, so
// causality is preserved.
func (e *Engine) fireTicks(upto Time) {
	if e.tickFn == nil {
		return
	}
	for e.nextTick <= upto {
		e.now = e.nextTick
		e.tickFn(e.nextTick)
		e.nextTick += e.tickInterval
	}
}

// Stop makes Run and RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and returns true, or
// returns false if no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.fireTicks(ev.at)
	e.now = ev.at
	e.processed++
	if e.byLabel == nil {
		e.byLabel = make(map[string]uint64)
	}
	if ev.label == "" {
		e.byLabel["other"]++
	} else {
		e.byLabel[ev.label]++
	}
	ev.fn(e.now)
	return true
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline stay pending.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if !e.stopped {
		e.fireTicks(deadline)
	}
	if e.now < deadline {
		e.now = deadline
	}
}
