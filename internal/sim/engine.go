// Package sim provides a deterministic discrete-event simulation engine.
//
// All RackBlox components run on virtual time measured in nanoseconds.
// Events execute in (time, insertion-order) order, so a simulation with a
// fixed seed is fully reproducible across runs and platforms.
package sim

import "fmt"

// Time is virtual simulation time in nanoseconds.
type Time = int64

// Common durations in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// EventFunc is a callback executed at its scheduled virtual time.
type EventFunc func(now Time)

// nilIdx is the nil value for node-pool indices.
const nilIdx int32 = -1

// node is one pooled scheduled event. Nodes live in the engine's pool and
// are addressed by index, never by pointer, so neither queue
// implementation boxes them into interfaces (the old container/heap core
// paid two allocations per event for exactly that) and the backing array
// can grow without invalidating references.
type node struct {
	at  Time
	seq uint64
	fn  EventFunc
	// next links the node into a wheel slot's FIFO list while queued and
	// into the pool's free list while free.
	next int32
	// label is the interned handler-label slot (0 = "other").
	label int32
}

// nodePool recycles event nodes through an intrusive free list. put zeroes
// the callback and label so a drained node retains neither its closure nor
// its string — the retention leak the old eventHeap.Pop had — and the pool
// needs no sync.Pool (the engine is single-threaded), so it stays
// deterministic and race-clean.
type nodePool struct {
	nodes []node
	free  int32
}

func (p *nodePool) get() int32 {
	if p.free != nilIdx {
		i := p.free
		p.free = p.nodes[i].next
		return i
	}
	p.nodes = append(p.nodes, node{})
	return int32(len(p.nodes) - 1)
}

func (p *nodePool) put(i int32) {
	n := &p.nodes[i]
	n.at, n.seq, n.fn, n.label = 0, 0, nil, 0
	n.next = p.free
	p.free = i
}

// live counts pooled nodes still holding a callback — zero once every
// scheduled event has executed (leak accounting for tests).
func (p *nodePool) live() int {
	n := 0
	for i := range p.nodes {
		if p.nodes[i].fn != nil {
			n++
		}
	}
	return n
}

// eventQueue is the pending-event ordering structure: pop yields node
// indices in exact (time, insertion-seq) order. Two implementations exist:
// the production hierarchical time wheel (wheelQueue) and the original
// binary heap (heapQueue), kept as the reference scheduler for
// differential tests.
type eventQueue interface {
	push(i int32)
	pop() int32
	// peekTime returns the earliest pending event's time; only valid when
	// len() > 0. It may reorganize the queue internally but never changes
	// the observable schedule.
	peekTime() Time
	len() int
}

// Engine is a single-threaded discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	now  Time
	seq  uint64
	pool nodePool
	q    eventQueue
	// useHeap selects the reference binary-heap scheduler instead of the
	// time wheel; set only by tests, before the first event is scheduled.
	useHeap bool
	// processed counts executed events, useful as a runaway guard in tests.
	processed uint64
	// Handler labels (AtNamed) are interned to small slots at schedule
	// time, so the per-Step accounting is a slice increment instead of a
	// map operation. Slot 0 is "other", the bucket for unlabeled events.
	labelIdx    map[string]int32
	labelNames  []string
	labelCounts []uint64
	stopped     bool

	// Observer tick: fn fires at every multiple of tickInterval that
	// falls before the next event executes. It is NOT an event — it is
	// invoked between events without touching the queue, the sequence
	// counter, or the processed count, so enabling it cannot perturb
	// the simulation. The callback must only observe (read state,
	// record samples): scheduling events or drawing randomness from it
	// would break that guarantee.
	tickInterval Time
	nextTick     Time
	tickFn       func(at Time)
}

// NewEngine returns an engine with time zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// newHeapEngine returns an engine running the reference binary-heap
// scheduler, for differential tests against the time wheel.
func newHeapEngine() *Engine { return &Engine{useHeap: true} }

// ensure lazily wires the queue, pool, and label table so the zero value
// stays usable.
func (e *Engine) ensure() {
	if e.q != nil {
		return
	}
	e.pool.free = nilIdx
	e.labelIdx = map[string]int32{"other": 0}
	e.labelNames = []string{"other"}
	e.labelCounts = []uint64{0}
	if e.useHeap {
		e.q = &heapQueue{pool: &e.pool}
	} else {
		e.q = newWheelQueue(&e.pool)
	}
}

// labelSlot interns a handler label, returning its counter slot.
func (e *Engine) labelSlot(label string) int32 {
	if label == "" {
		return 0
	}
	if s, ok := e.labelIdx[label]; ok {
		return s
	}
	s := int32(len(e.labelNames))
	e.labelIdx[label] = s
	e.labelNames = append(e.labelNames, label)
	e.labelCounts = append(e.labelCounts, 0)
	return s
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int {
	if e.q == nil {
		return 0
	}
	return e.q.len()
}

// Processed reports the number of executed events so far.
func (e *Engine) Processed() uint64 { return e.processed }

// ProcessedBy returns a copy of the per-handler event counts. Events
// scheduled without a label (At/After) count under "other".
func (e *Engine) ProcessedBy() map[string]uint64 {
	out := make(map[string]uint64, len(e.labelNames))
	for i, name := range e.labelNames {
		if c := e.labelCounts[i]; c > 0 {
			out[name] = c
		}
	}
	return out
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn EventFunc) { e.AtNamed(t, "", fn) }

// AtNamed is At with a handler label for the ProcessedBy breakdown.
func (e *Engine) AtNamed(t Time, label string, fn EventFunc) {
	if fn == nil {
		panic("sim: nil event function")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.ensure()
	e.seq++
	i := e.pool.get()
	n := &e.pool.nodes[i]
	n.at, n.seq, n.fn, n.label = t, e.seq, fn, e.labelSlot(label)
	e.q.push(i)
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn EventFunc) { e.AfterNamed(d, "", fn) }

// AfterNamed is After with a handler label for the ProcessedBy breakdown.
func (e *Engine) AfterNamed(d Time, label string, fn EventFunc) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.AtNamed(e.now+d, label, fn)
}

// SetTick installs (or, with interval <= 0 or nil fn, removes) the
// observer tick: fn(boundary) fires at every multiple of interval that
// falls strictly after the install instant, interleaved between events
// without being one. Boundaries are anchored to multiples of interval on
// the virtual-time axis — NOT to the install time — so two observers
// installed at different moments sample the same instants and a
// time-series CSV's rows land on round timestamps. See the field comment
// on Engine for the observer-only contract.
func (e *Engine) SetTick(interval Time, fn func(at Time)) {
	if interval <= 0 || fn == nil {
		e.tickInterval, e.tickFn = 0, nil
		return
	}
	e.tickInterval = interval
	e.tickFn = fn
	e.nextTick = (e.now/interval + 1) * interval
}

// fireTicks runs the observer tick for every boundary <= upto. The
// clock visibly advances to each boundary so the observer reads
// time-dependent state (utilizations) consistently, then the caller
// advances it past upto; boundaries are <= the next event's time, so
// causality is preserved. The clock never moves backwards: boundaries
// the clock has already passed are skipped, not replayed.
func (e *Engine) fireTicks(upto Time) {
	if e.tickFn == nil {
		return
	}
	if e.nextTick < e.now {
		// Defensive: a stale boundary behind the clock would rewind
		// e.now (the PR 7 clock-regression bug). Skip forward to the
		// first boundary at or after now instead.
		e.nextTick = ((e.now + e.tickInterval - 1) / e.tickInterval) * e.tickInterval
	}
	for e.nextTick <= upto {
		e.now = e.nextTick
		e.tickFn(e.nextTick)
		e.nextTick += e.tickInterval
	}
}

// Stop makes Run and RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and returns true, or
// returns false if no events remain.
func (e *Engine) Step() bool {
	if e.q == nil || e.q.len() == 0 {
		return false
	}
	i := e.q.pop()
	n := &e.pool.nodes[i]
	at, label, fn := n.at, n.label, n.fn
	// Recycle before running: the freed slot holds no reference to fn, and
	// the callback may immediately schedule new events into this node.
	e.pool.put(i)
	e.fireTicks(at)
	e.now = at
	e.processed++
	e.labelCounts[label]++
	fn(e.now)
	return true
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline stay pending.
// If Stop is called mid-run the clock stays at the last executed event:
// forcing it to the deadline with events still pending below it would
// make the next Step rewind the clock and replay stale tick boundaries.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && e.q != nil && e.q.len() > 0 && e.q.peekTime() <= deadline {
		e.Step()
	}
	if e.stopped {
		return
	}
	e.fireTicks(deadline)
	if e.now < deadline {
		e.now = deadline
	}
}
