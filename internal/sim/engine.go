// Package sim provides a deterministic discrete-event simulation engine.
//
// All RackBlox components run on virtual time measured in nanoseconds.
// Events execute in (time, insertion-order) order, so a simulation with a
// fixed seed is fully reproducible across runs and platforms.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual simulation time in nanoseconds.
type Time = int64

// Common durations in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// EventFunc is a callback executed at its scheduled virtual time.
type EventFunc func(now Time)

type event struct {
	at  Time
	seq uint64
	fn  EventFunc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	// processed counts executed events, useful as a runaway guard in tests.
	processed uint64
	stopped   bool
}

// NewEngine returns an engine with time zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// Processed reports the number of executed events so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn EventFunc) {
	if fn == nil {
		panic("sim: nil event function")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn EventFunc) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.At(e.now+d, fn)
}

// Stop makes Run and RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and returns true, or
// returns false if no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.processed++
	ev.fn(e.now)
	return true
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline stay pending.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
