package sim

import "testing"

func TestBandwidthTransferTime(t *testing.T) {
	eng := NewEngine()
	bw := NewBandwidth(eng, 100e6) // 100 MB/s
	if got := bw.TransferTime(100e6); got != Second {
		t.Fatalf("100MB at 100MB/s = %d ns, want 1s", got)
	}
	if got := bw.TransferTime(0); got != 0 {
		t.Fatalf("zero bytes took %d ns", got)
	}
}

func TestBandwidthSerializesTransfers(t *testing.T) {
	eng := NewEngine()
	bw := NewBandwidth(eng, 1e6) // 1 MB/s => 1 byte/us
	var ends []Time
	for i := 0; i < 3; i++ {
		bw.Transfer(1000, func(_, end Time) { ends = append(ends, end) })
	}
	eng.Run()
	// Three 1ms transfers serialize: ends at 1, 2, 3 ms.
	want := []Time{Millisecond, 2 * Millisecond, 3 * Millisecond}
	if len(ends) != 3 {
		t.Fatalf("%d completions", len(ends))
	}
	for i, w := range want {
		if ends[i] != w {
			t.Fatalf("transfer %d ended at %d, want %d", i, ends[i], w)
		}
	}
	if bw.Bytes() != 3000 {
		t.Fatalf("Bytes = %d", bw.Bytes())
	}
	if bw.OfferedBytes() != 3000 {
		t.Fatalf("OfferedBytes = %d", bw.OfferedBytes())
	}
	// The link was busy the whole 3ms: utilization 1.
	if u := bw.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %f", u)
	}
}

// TestBandwidthBytesCountOnCompletion is the regression test for the
// enqueue-time byte accounting bug: a simulation that ends mid-transfer
// must not report bytes the link never finished moving. Offered bytes
// keep the old enqueue-time meaning; delivered bytes lag them until the
// link drains, at which point the two reconcile exactly.
func TestBandwidthBytesCountOnCompletion(t *testing.T) {
	eng := NewEngine()
	bw := NewBandwidth(eng, 1e6) // 1 MB/s => 1000 bytes per ms
	bw.Transfer(1000, nil)       // ends at 1ms
	bw.Transfer(1000, nil)       // ends at 2ms

	// Every transfer is reserved up front, none has completed.
	if got := bw.OfferedBytes(); got != 2000 {
		t.Fatalf("OfferedBytes at enqueue = %d, want 2000", got)
	}
	if got := bw.Bytes(); got != 0 {
		t.Fatalf("Bytes at enqueue = %d, want 0", got)
	}

	// Stop the clock mid-way through the second transfer: only the first
	// counts as delivered.
	eng.RunUntil(1500 * Microsecond)
	if got := bw.Bytes(); got != 1000 {
		t.Fatalf("Bytes mid-transfer = %d, want 1000", got)
	}
	if bw.Bytes() > bw.OfferedBytes() {
		t.Fatalf("delivered %d exceeds offered %d", bw.Bytes(), bw.OfferedBytes())
	}

	// Draining the engine reconciles the two counters.
	eng.Run()
	if bw.Bytes() != 2000 || bw.OfferedBytes() != 2000 {
		t.Fatalf("after drain: delivered %d offered %d, want 2000 each",
			bw.Bytes(), bw.OfferedBytes())
	}
}

func TestBandwidthRejectsNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-rate link accepted")
		}
	}()
	NewBandwidth(NewEngine(), 0)
}
