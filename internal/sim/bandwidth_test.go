package sim

import "testing"

func TestBandwidthTransferTime(t *testing.T) {
	eng := NewEngine()
	bw := NewBandwidth(eng, 100e6) // 100 MB/s
	if got := bw.TransferTime(100e6); got != Second {
		t.Fatalf("100MB at 100MB/s = %d ns, want 1s", got)
	}
	if got := bw.TransferTime(0); got != 0 {
		t.Fatalf("zero bytes took %d ns", got)
	}
}

func TestBandwidthSerializesTransfers(t *testing.T) {
	eng := NewEngine()
	bw := NewBandwidth(eng, 1e6) // 1 MB/s => 1 byte/us
	var ends []Time
	for i := 0; i < 3; i++ {
		bw.Transfer(1000, func(_, end Time) { ends = append(ends, end) })
	}
	eng.Run()
	// Three 1ms transfers serialize: ends at 1, 2, 3 ms.
	want := []Time{Millisecond, 2 * Millisecond, 3 * Millisecond}
	if len(ends) != 3 {
		t.Fatalf("%d completions", len(ends))
	}
	for i, w := range want {
		if ends[i] != w {
			t.Fatalf("transfer %d ended at %d, want %d", i, ends[i], w)
		}
	}
	if bw.Bytes() != 3000 {
		t.Fatalf("Bytes = %d", bw.Bytes())
	}
	// The link was busy the whole 3ms: utilization 1.
	if u := bw.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %f", u)
	}
}

func TestBandwidthRejectsNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-rate link accepted")
		}
	}()
	NewBandwidth(NewEngine(), 0)
}
