package sim

import (
	"testing"
	"testing/quick"
)

func TestBandwidthTransferTime(t *testing.T) {
	eng := NewEngine()
	bw := NewBandwidth(eng, 100e6) // 100 MB/s
	if got := bw.TransferTime(100e6); got != Second {
		t.Fatalf("100MB at 100MB/s = %d ns, want 1s", got)
	}
	if got := bw.TransferTime(0); got != 0 {
		t.Fatalf("zero bytes took %d ns", got)
	}
}

func TestBandwidthSerializesTransfers(t *testing.T) {
	eng := NewEngine()
	bw := NewBandwidth(eng, 1e6) // 1 MB/s => 1 byte/us
	var ends []Time
	for i := 0; i < 3; i++ {
		bw.Transfer(1000, func(_, end Time) { ends = append(ends, end) })
	}
	eng.Run()
	// Three 1ms transfers serialize: ends at 1, 2, 3 ms.
	want := []Time{Millisecond, 2 * Millisecond, 3 * Millisecond}
	if len(ends) != 3 {
		t.Fatalf("%d completions", len(ends))
	}
	for i, w := range want {
		if ends[i] != w {
			t.Fatalf("transfer %d ended at %d, want %d", i, ends[i], w)
		}
	}
	if bw.Bytes() != 3000 {
		t.Fatalf("Bytes = %d", bw.Bytes())
	}
	if bw.OfferedBytes() != 3000 {
		t.Fatalf("OfferedBytes = %d", bw.OfferedBytes())
	}
	// The link was busy the whole 3ms: utilization 1.
	if u := bw.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %f", u)
	}
}

// TestBandwidthBytesCountOnCompletion is the regression test for the
// enqueue-time byte accounting bug: a simulation that ends mid-transfer
// must not report bytes the link never finished moving. Offered bytes
// keep the old enqueue-time meaning; delivered bytes lag them until the
// link drains, at which point the two reconcile exactly.
func TestBandwidthBytesCountOnCompletion(t *testing.T) {
	eng := NewEngine()
	bw := NewBandwidth(eng, 1e6) // 1 MB/s => 1000 bytes per ms
	bw.Transfer(1000, nil)       // ends at 1ms
	bw.Transfer(1000, nil)       // ends at 2ms

	// Every transfer is reserved up front, none has completed.
	if got := bw.OfferedBytes(); got != 2000 {
		t.Fatalf("OfferedBytes at enqueue = %d, want 2000", got)
	}
	if got := bw.Bytes(); got != 0 {
		t.Fatalf("Bytes at enqueue = %d, want 0", got)
	}

	// Stop the clock mid-way through the second transfer: only the first
	// counts as delivered.
	eng.RunUntil(1500 * Microsecond)
	if got := bw.Bytes(); got != 1000 {
		t.Fatalf("Bytes mid-transfer = %d, want 1000", got)
	}
	if bw.Bytes() > bw.OfferedBytes() {
		t.Fatalf("delivered %d exceeds offered %d", bw.Bytes(), bw.OfferedBytes())
	}

	// Draining the engine reconciles the two counters.
	eng.Run()
	if bw.Bytes() != 2000 || bw.OfferedBytes() != 2000 {
		t.Fatalf("after drain: delivered %d offered %d, want 2000 each",
			bw.Bytes(), bw.OfferedBytes())
	}
}

// Regression (PR 7): TransferTime truncated float64(bytes)/rate*1e9
// toward zero, shaving a sub-nanosecond sliver off every transfer. At a
// rate like 3 B/s each 1-byte transfer occupied 333333333ns instead of
// the true 333333333.3..., so back-to-back transfers delivered MORE
// bytes per elapsed time than the configured capacity — breaking the
// invariant the repair pacer and the cross-rack figures rely on.
func TestBandwidthNeverExceedsConfiguredRate(t *testing.T) {
	eng := NewEngine()
	bw := NewBandwidth(eng, 3) // 3 B/s: per-byte time is a repeating fraction
	var lastEnd Time
	for i := 0; i < 100; i++ {
		bw.Transfer(1, func(_, end Time) { lastEnd = end })
	}
	eng.Run()
	if lastEnd == 0 {
		t.Fatal("no transfer completed")
	}
	rate := float64(bw.Bytes()) / (float64(lastEnd) / float64(Second))
	if rate > bw.BytesPerSec() {
		t.Fatalf("delivered %.12f B/s over a %.0f B/s link", rate, bw.BytesPerSec())
	}
}

// Regression (PR 7): a transfer small enough that bytes/rate rounded to
// under a nanosecond used to occupy the link for 0ns — free bandwidth.
// Any positive byte count must occupy at least one nanosecond.
func TestBandwidthTinyTransferOccupiesLink(t *testing.T) {
	eng := NewEngine()
	bw := NewBandwidth(eng, 1e12) // 1 TB/s: one byte is a picosecond
	if got := bw.TransferTime(1); got < 1 {
		t.Fatalf("1 byte at 1TB/s occupies %dns, want >= 1", got)
	}
}

// Property: for any rate and any sequence of transfer sizes, the bytes a
// drained link reports delivered never exceed capacity x elapsed time.
func TestBandwidthRateBoundProperty(t *testing.T) {
	f := func(rateSeed uint16, sizes []uint16) bool {
		eng := NewEngine()
		rate := float64(rateSeed%997) + 0.5 // 0.5 .. 996.5 B/s
		bw := NewBandwidth(eng, rate)
		var lastEnd Time
		any := false
		for _, s := range sizes {
			if s == 0 {
				continue
			}
			any = true
			bw.Transfer(int64(s), func(_, end Time) { lastEnd = end })
		}
		eng.Run()
		if !any {
			return true
		}
		return float64(bw.Bytes()) <= rate*float64(lastEnd)/float64(Second)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBandwidthRejectsNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-rate link accepted")
		}
	}()
	NewBandwidth(NewEngine(), 0)
}
