package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// buildRackModel populates g with a miniature sharded rack workload:
// every rack shard runs self-rescheduling per-I/O chains against its own
// serial Resource (device channel), and a deterministic fraction of
// operations crosses to the coordinator shard — the spine — which
// occupies its own Resource (link serialization) and forwards the
// operation to a destination rack. All randomness is a per-shard lcg, so
// each shard's behavior is a pure function of its own event sequence.
// The returned traces record, per shard, every executed operation as
// "(time, id)" lines — the byte-level schedule the parallel runner must
// reproduce.
func buildRackModel(g *ShardGroup, opsPerRack int) *[][]string {
	n := g.Shards()
	traces := make([][]string, n)
	devices := make([]*Resource, n)
	rngs := make([]lcg, n)
	for i := 0; i < n; i++ {
		devices[i] = NewResource(g.Shard(i))
		rngs[i] = lcg(1000 + i)
	}
	// step builds the event for one hop of chain id on the given shard.
	// The shard-ownership discipline the real core must follow holds here
	// too: an executing event touches only its own shard's state (rng,
	// device, trace); everything a migrating chain carries across the
	// boundary (id, budget) is captured by value.
	var step func(shard, id, budget int) EventFunc
	step = func(shard, id, budget int) EventFunc {
		return func(now Time) {
			traces[shard] = append(traces[shard], fmt.Sprintf("%d %d", now, id))
			if budget == 0 {
				return
			}
			r := &rngs[shard]
			if shard == 0 {
				// Spine: serialize the transfer on the shared link, then
				// hand the chain to a destination rack.
				dst := 1 + int(r.next()%uint64(n-1))
				_, end := devices[0].Acquire(16, nil)
				g.Send(0, dst, end+g.Lookahead(), "spine.out", step(dst, id, budget-1))
				return
			}
			devices[shard].Block(now + Time(r.next()%48))
			if n > 2 && r.next()%8 == 0 {
				// Cross-rack hop: route through the spine shard.
				g.SendAfter(shard, 0, g.Lookahead()+Time(r.next()%32), "spine.in", step(0, id, budget-1))
				return
			}
			g.Shard(shard).AfterNamed(Time(r.next()%96)+1, "rack.op", step(shard, id, budget-1))
		}
	}
	for rack := 1; rack < n; rack++ {
		for c := 0; c < 4; c++ {
			g.Shard(rack).AfterNamed(Time(rngs[rack].next()%64), "rack.op",
				step(rack, rack*1000+c, opsPerRack/4))
		}
	}
	return &traces
}

type groupState struct {
	Now       Time
	Pending   int
	Processed uint64
	By        map[string]uint64
	Traces    [][]string
}

func runRackModel(racks, opsPerRack int, parallel bool) groupState {
	g := NewShardGroup(racks, 500)
	traces := buildRackModel(g, opsPerRack)
	if parallel {
		g.Run()
	} else {
		g.RunSequential()
	}
	return groupState{
		Now: g.Now(), Pending: g.Pending(), Processed: g.Processed(),
		By: g.ProcessedBy(), Traces: *traces,
	}
}

// TestShardGroupParallelMatchesSequential is the heart of the sharding
// contract: one goroutine per shard under window barriers executes the
// byte-identical schedule of the single-goroutine oracle.
func TestShardGroupParallelMatchesSequential(t *testing.T) {
	for _, racks := range []int{1, 2, 3, 8} {
		seq := runRackModel(racks, 400, false)
		par := runRackModel(racks, 400, true)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("racks=%d: parallel run diverged from sequential oracle\nseq: now=%d processed=%d by=%v\npar: now=%d processed=%d by=%v",
				racks, seq.Now, seq.Processed, seq.By, par.Now, par.Processed, par.By)
		}
		if seq.Processed == 0 {
			t.Fatalf("racks=%d: model executed no events", racks)
		}
	}
}

// TestShardGroupRunUntil checks the deadline semantics: events at or
// before the deadline run, later ones stay pending, all clocks advance
// to the deadline — and resuming completes identically to an unbounded
// run.
func TestShardGroupRunUntil(t *testing.T) {
	full := runRackModel(3, 200, false)

	g := NewShardGroup(3, 500)
	traces := buildRackModel(g, 200)
	deadline := Time(5_000)
	g.RunUntil(deadline)
	for i := 0; i < g.Shards(); i++ {
		if now := g.Shard(i).Now(); now != deadline {
			t.Fatalf("shard %d clock %d after RunUntil(%d)", i, now, deadline)
		}
	}
	g.Run()
	got := groupState{Now: g.Now(), Pending: g.Pending(), Processed: g.Processed(),
		By: g.ProcessedBy(), Traces: *traces}
	if !reflect.DeepEqual(full, got) {
		t.Errorf("RunUntil+Run diverged from a single Run: %v vs %v", got.By, full.By)
	}
}

// TestShardSendContract pins the Send preconditions: lookahead
// violations, self-sends, and nil functions all panic — each is a
// causality or API misuse the conservative window cannot absorb.
func TestShardSendContract(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	g := NewShardGroup(2, 100)
	mustPanic("lookahead violation", func() {
		g.Send(1, 0, g.Shard(1).Now()+99, "x", func(Time) {})
	})
	mustPanic("self send", func() {
		g.Send(1, 1, g.Shard(1).Now()+100, "x", func(Time) {})
	})
	mustPanic("nil fn", func() { g.Send(1, 0, 100, "x", nil) })
	g.Send(1, 0, g.Shard(1).Now()+100, "ok", func(Time) {}) // boundary is legal
	if got := g.Pending(); got != 1 {
		t.Fatalf("Pending = %d after one undelivered send, want 1", got)
	}
}

// TestShardGroupAggregates checks the sharded Engine-surface aggregate:
// Pending counts undelivered mail, Processed and ProcessedBy sum across
// shards, and Now is the conservative minimum of the shard clocks.
func TestShardGroupAggregates(t *testing.T) {
	g := NewShardGroup(2, 10)
	g.Shard(1).AtNamed(5, "a", func(Time) {})
	g.Shard(2).AtNamed(7, "b", func(Time) {})
	g.Send(1, 2, 20, "mail", func(Time) {})
	if got := g.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3 (two local + one mailbox)", got)
	}
	g.Run()
	if got := g.Processed(); got != 3 {
		t.Fatalf("Processed = %d, want 3", got)
	}
	want := map[string]uint64{"a": 1, "b": 1, "mail": 1}
	if got := g.ProcessedBy(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ProcessedBy = %v, want %v", got, want)
	}
	if g.Now() > g.Shard(0).Now() || g.Now() > g.Shard(1).Now() || g.Now() > g.Shard(2).Now() {
		t.Fatalf("group Now %d exceeds a shard clock", g.Now())
	}
}

// TestShardGroupProcessedByDefensiveCopy is the regression test for the
// cross-shard per-handler counters: the merged map is a defensive copy,
// so callers mutating it (a Result post-processor, a test helper) cannot
// corrupt any shard's interned-label slots.
func TestShardGroupProcessedByDefensiveCopy(t *testing.T) {
	g := NewShardGroup(2, 10)
	fn := func(Time) {}
	g.Shard(1).AtNamed(1, "grant", fn)
	g.Shard(2).AtNamed(1, "grant", fn)
	g.Shard(2).AtNamed(2, "gc", fn)
	g.RunSequential()

	first := g.ProcessedBy()
	first["grant"] = 999
	first["gc"] = 0
	delete(first, "gc")
	first["injected"] = 42

	want := map[string]uint64{"grant": 2, "gc": 1}
	if got := g.ProcessedBy(); !reflect.DeepEqual(got, want) {
		t.Fatalf("mutating the returned map corrupted shard counters: %v, want %v", got, want)
	}
	// The per-shard views must be intact too.
	if got := g.Shard(2).ProcessedBy(); !reflect.DeepEqual(got, map[string]uint64{"grant": 1, "gc": 1}) {
		t.Fatalf("shard 2 counters corrupted: %v", got)
	}
}

// TestShardGroupSetTick checks the per-shard observer tick: boundaries
// are anchored to the virtual-time axis on every shard, fire between
// that shard's events, and never count as events.
func TestShardGroupSetTick(t *testing.T) {
	g := NewShardGroup(1, 50)
	var ticks []string
	g.SetTick(100, func(shard int, at Time) {
		ticks = append(ticks, fmt.Sprintf("s%d@%d", shard, at))
	})
	g.Shard(1).AtNamed(250, "x", func(Time) {})
	g.RunSequential()
	// Shard 1 runs its event at 250, crossing boundaries 100 and 200;
	// shard 0 idles (clock dragged forward by the window) and fires the
	// same boundaries.
	want := []string{"s0@100", "s0@200", "s1@100", "s1@200"}
	got := append([]string(nil), ticks...)
	// Tick interleaving across shards is an artifact of shard step order
	// within the window; per-shard subsequences are the contract.
	perShard := map[byte][]string{}
	for _, s := range got {
		perShard[s[1]] = append(perShard[s[1]], s)
	}
	if !reflect.DeepEqual(perShard['0'], want[:2]) || !reflect.DeepEqual(perShard['1'], want[2:]) {
		t.Fatalf("ticks = %v, want per-shard %v", got, want)
	}
	if g.Processed() != 1 {
		t.Fatalf("ticks counted as events: Processed = %d, want 1", g.Processed())
	}
}

// TestShardGroupStop checks that Engine.Stop inside a shard's handler
// ends the group run at that window's barrier, leaving later events
// pending — the sharded analogue of the single-engine semantics.
func TestShardGroupStop(t *testing.T) {
	g := NewShardGroup(2, 1000)
	ran := map[string]bool{}
	g.Shard(1).AtNamed(10, "a", func(Time) {
		ran["a"] = true
		g.Shard(1).Stop()
	})
	g.Shard(2).AtNamed(10, "b", func(Time) { ran["b"] = true }) // same window
	g.Shard(1).AtNamed(5_000, "late", func(Time) { ran["late"] = true })
	g.RunSequential()
	if !ran["a"] || !ran["b"] {
		t.Fatalf("same-window events should complete: %v", ran)
	}
	if ran["late"] {
		t.Fatal("event beyond the stopped window ran")
	}
	if g.Pending() == 0 {
		t.Fatal("stop drained the queue")
	}
}

// TestShardGroupMailboxCanonicalOrder pins the merge rule: same-instant
// deliveries from different sources land in (time, source shard, send
// sequence) order regardless of send interleaving across windows.
func TestShardGroupMailboxCanonicalOrder(t *testing.T) {
	g := NewShardGroup(3, 10)
	var order []string
	rec := func(tag string) EventFunc {
		return func(Time) { order = append(order, tag) }
	}
	// All target shard 0 at t=100. Sends issued in scrambled source
	// order; canonical order is by (src, seq).
	g.Send(3, 0, 100, "m", rec("s3/1"))
	g.Send(1, 0, 100, "m", rec("s1/1"))
	g.Send(2, 0, 100, "m", rec("s2/1"))
	g.Send(1, 0, 100, "m", rec("s1/2"))
	g.Send(2, 0, 99, "m", rec("s2/early"))
	g.RunSequential()
	want := []string{"s2/early", "s1/1", "s1/2", "s2/1", "s3/1"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("delivery order %v, want %v", order, want)
	}
}
