package sim

// heapQueue is the original binary-heap event queue, reimplemented over
// pooled node indices. It is no longer the production scheduler (the
// wheelQueue is) but stays as the reference implementation: the
// differential tests execute random schedules on both and require
// identical traces. Ordering is (time, insertion-seq), identical to the
// wheel's.
//
// Unlike the old container/heap version it neither boxes events into
// interfaces (two allocations per event) nor strands popped callbacks in
// the truncated slice's backing array — the slice holds indices, and the
// node pool zeroes a drained node's closure.
type heapQueue struct {
	pool *nodePool
	h    []int32
}

func (q *heapQueue) len() int { return len(q.h) }

func (q *heapQueue) peekTime() Time { return q.pool.nodes[q.h[0]].at }

func (q *heapQueue) less(a, b int32) bool {
	na, nb := &q.pool.nodes[a], &q.pool.nodes[b]
	if na.at != nb.at {
		return na.at < nb.at
	}
	return na.seq < nb.seq
}

func (q *heapQueue) push(i int32) {
	q.h = append(q.h, i)
	c := len(q.h) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !q.less(q.h[c], q.h[p]) {
			break
		}
		q.h[c], q.h[p] = q.h[p], q.h[c]
		c = p
	}
}

func (q *heapQueue) pop() int32 {
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	n := last
	p := 0
	for {
		c := 2*p + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && q.less(q.h[r], q.h[c]) {
			c = r
		}
		if !q.less(q.h[c], q.h[p]) {
			break
		}
		q.h[p], q.h[c] = q.h[c], q.h[p]
		p = c
	}
	return top
}
