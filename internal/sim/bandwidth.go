package sim

// Bandwidth models a shared link of fixed capacity (the cluster's
// spine/aggregation uplink): transfers serialize FIFO on an underlying
// Resource, each occupying the link for bytes/rate. Because the link is a
// serial resource, the achieved throughput can never exceed the configured
// rate — the property the cross-rack repair experiments rely on.
type Bandwidth struct {
	res         *Resource
	bytesPerSec float64
	// offered counts bytes at enqueue time (the transfer has been
	// reserved on the link); delivered counts them only once the last
	// byte has cleared it. delivered <= offered always, with equality
	// once every reserved transfer has completed.
	offered   int64
	delivered int64
}

// NewBandwidth returns an idle link moving bytesPerSec bytes per second.
func NewBandwidth(eng *Engine, bytesPerSec float64) *Bandwidth {
	if bytesPerSec <= 0 {
		panic("sim: bandwidth must be positive")
	}
	return &Bandwidth{res: NewResource(eng), bytesPerSec: bytesPerSec}
}

// TransferTime converts a byte count into link occupancy, rounded UP to
// the next nanosecond. Truncating instead (the pre-PR-7 behavior) shaved
// a sub-nanosecond sliver off every transfer, so back-to-back transfers
// could sum to more bytes per elapsed time than the configured rate —
// violating the never-exceeds-capacity invariant the repair pacer and
// the cross-rack experiments rely on — and tiny transfers at high rates
// occupied the link for 0ns.
func (b *Bandwidth) TransferTime(bytes int64) Time {
	if bytes <= 0 {
		return 0
	}
	d := Time(float64(bytes) / b.bytesPerSec * float64(Second))
	if float64(d) < float64(bytes)/b.bytesPerSec*float64(Second) {
		d++
	}
	if d == 0 {
		d = 1
	}
	return d
}

// Transfer reserves the link for bytes and calls done(start, end) when the
// last byte clears it; done may be nil. Waiting behind earlier transfers
// is implicit in the returned start time.
func (b *Bandwidth) Transfer(bytes int64, done func(start, end Time)) (start, end Time) {
	b.offered += bytes
	// Delivered bytes are counted at completion, not enqueue, so a
	// simulation that stops mid-transfer never reports bytes the link
	// did not actually move.
	return b.res.Acquire(b.TransferTime(bytes), func(s, e Time) {
		b.delivered += bytes
		if done != nil {
			done(s, e)
		}
	})
}

// Bytes returns the bytes the link has fully delivered: transfers still
// queued or in flight are excluded until their last byte clears the link.
func (b *Bandwidth) Bytes() int64 { return b.delivered }

// OfferedBytes returns the total bytes ever offered to the link — the
// old meaning of Bytes, counted at enqueue. OfferedBytes() - Bytes() is
// the backlog still queued or in flight.
func (b *Bandwidth) OfferedBytes() int64 { return b.offered }

// BytesPerSec returns the configured capacity.
func (b *Bandwidth) BytesPerSec() float64 { return b.bytesPerSec }

// Utilization returns cumulative busy time over elapsed time, <= 1.
func (b *Bandwidth) Utilization() float64 { return b.res.Utilization() }
