package sim

// PacedBandwidth is a rate-limited admission lane layered over a shared
// Bandwidth link. Foreground traffic keeps using the link directly and
// retains its FIFO position; background (repair) traffic must first draw
// tokens from a bucket that refills at a controller-settable rate, so its
// aggregate admission rate — and therefore the fraction of the shared
// link it can occupy — is bounded even while the link itself has spare
// capacity. Admissions are granted FIFO; SetRate retunes the refill rate
// mid-flight (the feedback knob of the repair pacer).
type PacedBandwidth struct {
	eng  *Engine
	link *Bandwidth
	// rate is the token refill rate in bytes per second; burst caps the
	// bucket so an idle lane cannot bank unbounded credit.
	rate  float64
	burst float64
	// tokens may go negative: an admission larger than the remaining
	// credit is granted once the bucket fills and pays the difference
	// back over time, so oversized requests make progress instead of
	// starving.
	tokens float64
	last   Time
	queue  []pacedGrant
	// wake invalidates scheduled refill wakeups after a SetRate, which
	// changes when the head admission's tokens mature.
	wake    uint64
	pumping bool
}

type pacedGrant struct {
	bytes int64
	grant func(now Time)
}

// NewPacedBandwidth returns a paced lane over link with the given token
// refill rate and bucket capacity, both in bytes. The bucket starts full.
func NewPacedBandwidth(eng *Engine, link *Bandwidth, rateBytesPerSec, burstBytes float64) *PacedBandwidth {
	if rateBytesPerSec <= 0 {
		panic("sim: paced bandwidth rate must be positive")
	}
	if burstBytes <= 0 {
		panic("sim: paced bandwidth burst must be positive")
	}
	return &PacedBandwidth{
		eng:    eng,
		link:   link,
		rate:   rateBytesPerSec,
		burst:  burstBytes,
		tokens: burstBytes,
	}
}

// Rate returns the current token refill rate in bytes per second.
func (p *PacedBandwidth) Rate() float64 { return p.rate }

// Queued returns the admissions waiting for tokens.
func (p *PacedBandwidth) Queued() int { return len(p.queue) }

// SetRate retunes the token refill rate. Credit accrued so far is settled
// at the old rate first; a pending wakeup for the head admission is
// recomputed under the new rate.
func (p *PacedBandwidth) SetRate(rateBytesPerSec float64) {
	if rateBytesPerSec <= 0 {
		panic("sim: paced bandwidth rate must be positive")
	}
	p.refill(p.eng.Now())
	p.rate = rateBytesPerSec
	p.wake++ // drop the stale wakeup; pump schedules a fresh one
	p.pump()
}

// Admit queues one admission of bytes and calls grant when the bucket
// has matured enough tokens, FIFO after earlier admissions. The grant
// callback typically starts the actual link transfer (or device work)
// the tokens gate.
func (p *PacedBandwidth) Admit(bytes int64, grant func(now Time)) {
	if grant == nil {
		panic("sim: nil paced grant")
	}
	if bytes < 0 {
		panic("sim: negative paced admission")
	}
	p.queue = append(p.queue, pacedGrant{bytes: bytes, grant: grant})
	p.pump()
}

// Consume settles post-grant byte usage against the bucket: a positive
// delta (the granted operation moved more bytes than its admission
// charged — e.g. a repair batch that fanned out to several remote
// sources) pushes the bucket into debt that refill repays before the
// next grant matures, and a negative delta refunds credit for bytes the
// operation never moved. Either way the long-run admitted byte rate
// converges to the configured rate. The queue is re-pumped so a refund
// can mature the head immediately.
func (p *PacedBandwidth) Consume(deltaBytes int64) {
	p.refill(p.eng.Now())
	p.tokens -= float64(deltaBytes)
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
	p.pump()
}

// Transfer admits bytes through the token gate and then moves them over
// the underlying link, calling done(start, end) when the last byte
// clears it (done may be nil). The returned times are unknowable before
// admission, so unlike Bandwidth.Transfer it reports them only through
// the callback.
func (p *PacedBandwidth) Transfer(bytes int64, done func(start, end Time)) {
	p.Admit(bytes, func(Time) { p.link.Transfer(bytes, done) })
}

// refill matures tokens up to now at the current rate, capped at burst.
func (p *PacedBandwidth) refill(now Time) {
	if now > p.last {
		p.tokens += p.rate * float64(now-p.last) / float64(Second)
		if p.tokens > p.burst {
			p.tokens = p.burst
		}
		p.last = now
	}
}

// pump grants queued admissions while tokens last, then schedules one
// wakeup for the instant the head admission's tokens mature. A grant
// callback may re-enter Admit (or SetRate) — the pumping flag makes the
// loop non-reentrant so no admission is processed twice.
func (p *PacedBandwidth) pump() {
	if p.pumping {
		return
	}
	p.pumping = true
	defer func() { p.pumping = false }()
	for len(p.queue) > 0 {
		now := p.eng.Now()
		p.refill(now)
		head := p.queue[0]
		// An admission larger than the bucket is granted at full burst
		// and drives tokens negative (paid back by refill) — otherwise
		// it could never be granted at all.
		need := float64(head.bytes)
		if need > p.burst {
			need = p.burst
		}
		if p.tokens < need {
			wait := Time((need-p.tokens)/p.rate*float64(Second)) + 1
			p.wake++
			gen := p.wake
			p.eng.AfterNamed(wait, "paced.wake", func(Time) {
				if gen == p.wake {
					p.pump()
				}
			})
			return
		}
		p.tokens -= float64(head.bytes)
		p.queue = p.queue[1:]
		head.grant(now)
	}
}
