package sim

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with a component-local source so that independent
// components draw from independent, reproducible streams. Sharing one
// global stream would make one component's draw count perturb another's.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream; the label keeps child seeds
// distinct even when several children fork from the same parent state.
func (g *RNG) Fork(label int64) *RNG {
	const goldenGamma = 0x9e3779b97f4a7c15
	return NewRNG(g.r.Int63() ^ int64(uint64(label)*goldenGamma))
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform value in [0, n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Exp returns an exponentially distributed duration with the given mean.
// Used for Poisson arrival processes.
func (g *RNG) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	d := Time(g.r.ExpFloat64() * float64(mean))
	if d < 0 {
		return 0
	}
	return d
}

// LogNormal returns a log-normally distributed value with the given median
// and sigma (shape). Network latency bodies are well modelled by it.
func (g *RNG) LogNormal(median float64, sigma float64) float64 {
	return median * math.Exp(sigma*g.r.NormFloat64())
}

// Pareto returns a Pareto-tailed value >= xm with tail index alpha.
// Heavy network-latency tails use it.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Norm returns a normally distributed value.
func (g *RNG) Norm(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Zipf draws zipfian-distributed ranks in [0, n) with skew theta.
// YCSB's request distribution is zipfian with theta ~0.99.
type Zipf struct {
	z *rand.Zipf
	n uint64
}

// NewZipf builds a zipfian sampler over [0, n). theta must be > 1 per
// math/rand's parameterization; YCSB's 0.99 is mapped to s = 1.01 to keep
// comparable skew while satisfying the stdlib constraint.
func NewZipf(g *RNG, theta float64, n uint64) *Zipf {
	s := theta
	if s <= 1 {
		s = 1.0 + (1.0 - s) + 0.01
	}
	return &Zipf{z: rand.NewZipf(g.r, s, 1, n-1), n: n}
}

// Next returns the next zipfian rank in [0, n).
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// N returns the sampler's key-space size.
func (z *Zipf) N() uint64 { return z.n }
