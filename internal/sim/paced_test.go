package sim

import "testing"

// TestPacedAdmitRespectsRate checks that admissions mature at the token
// refill rate: with an empty bucket, N equal admissions are granted at
// evenly spaced instants bytes/rate apart.
func TestPacedAdmitRespectsRate(t *testing.T) {
	eng := NewEngine()
	link := NewBandwidth(eng, 100e6)
	p := NewPacedBandwidth(eng, link, 1e6, 1000) // 1 MB/s refill, 1000-byte bucket

	// Drain the initial burst so the grant spacing is purely rate-driven.
	p.Admit(1000, func(Time) {})

	var grants []Time
	for i := 0; i < 3; i++ {
		p.Admit(1000, func(now Time) { grants = append(grants, now) })
	}
	eng.Run()
	// 1000 bytes at 1 MB/s = 1ms of refill per admission (+1ns rounding).
	want := []Time{Millisecond, 2 * Millisecond, 3 * Millisecond}
	if len(grants) != 3 {
		t.Fatalf("%d grants", len(grants))
	}
	for i, w := range want {
		if d := grants[i] - w; d < 0 || d > 5 {
			t.Errorf("grant %d at %d, want ~%d", i, grants[i], w)
		}
	}
}

// TestPacedBurstGrantsImmediately checks that a full bucket admits up to
// its capacity with no delay.
func TestPacedBurstGrantsImmediately(t *testing.T) {
	eng := NewEngine()
	link := NewBandwidth(eng, 100e6)
	p := NewPacedBandwidth(eng, link, 1e3, 4000)

	granted := 0
	for i := 0; i < 4; i++ {
		p.Admit(1000, func(now Time) {
			if now != 0 {
				t.Errorf("burst admission granted at %d, want 0", now)
			}
			granted++
		})
	}
	if granted != 4 {
		t.Fatalf("granted %d of 4 burst admissions synchronously", granted)
	}
}

// TestPacedOversizedAdmissionProgresses checks that an admission larger
// than the bucket is granted once the bucket fills (going into token
// debt) instead of starving forever.
func TestPacedOversizedAdmissionProgresses(t *testing.T) {
	eng := NewEngine()
	link := NewBandwidth(eng, 100e6)
	p := NewPacedBandwidth(eng, link, 1e6, 500) // bucket holds 500, admission wants 2000

	var grantedAt Time = -1
	p.Admit(1000, func(Time) {}) // spends the initial 500 and goes 500 into debt
	p.Admit(2000, func(now Time) { grantedAt = now })
	eng.Run()
	if grantedAt < 0 {
		t.Fatal("oversized admission never granted")
	}
	// Debt 500 + full bucket 500 = 1000 bytes of refill at 1 MB/s = 1ms.
	if grantedAt < Millisecond || grantedAt > Millisecond+2 {
		t.Errorf("oversized admission granted at %d, want ~%d", grantedAt, Millisecond)
	}
	if p.Queued() != 0 {
		t.Errorf("queue not drained: %d", p.Queued())
	}
}

// TestPacedSetRateRetunesPendingGrant checks that SetRate mid-wait
// recomputes the head admission's maturity: credit accrues at the old
// rate until the change and at the new rate after.
func TestPacedSetRateRetunesPendingGrant(t *testing.T) {
	eng := NewEngine()
	link := NewBandwidth(eng, 100e6)
	p := NewPacedBandwidth(eng, link, 1e6, 1000)
	p.Admit(1000, func(Time) {}) // empty the bucket

	var grantedAt Time = -1
	p.Admit(1000, func(now Time) { grantedAt = now })

	// At 0.5ms (500 bytes matured), crank the rate 10x: the remaining 500
	// bytes mature in 0.05ms instead of 0.5ms.
	eng.At(500*Microsecond, func(Time) { p.SetRate(10e6) })
	eng.Run()
	want := 550 * Microsecond
	if grantedAt < want || grantedAt > want+2 {
		t.Errorf("grant after rate change at %d, want ~%d", grantedAt, want)
	}
	if p.Rate() != 10e6 {
		t.Errorf("Rate = %f", p.Rate())
	}
}

// TestPacedConsumeSettlesDebtAndRefund checks post-grant settlement:
// extra bytes consumed after a grant delay the next admission's
// maturity (debt repaid by refill), and a refund matures a waiting head
// immediately.
func TestPacedConsumeSettlesDebtAndRefund(t *testing.T) {
	eng := NewEngine()
	link := NewBandwidth(eng, 100e6)
	p := NewPacedBandwidth(eng, link, 1e6, 1000) // 1 MB/s, 1000-byte bucket

	var first, second Time = -1, -1
	p.Admit(1000, func(now Time) {
		first = now
		p.Consume(2000) // the grant actually moved 3000 bytes, not 1000
	})
	p.Admit(1000, func(now Time) { second = now })
	eng.Run()
	if first != 0 {
		t.Fatalf("first grant at %d, want 0 (full bucket)", first)
	}
	// Debt 2000 + the admission's own 1000 = 3000 bytes of refill = 3ms.
	want := 3 * Millisecond
	if second < want || second > want+5 {
		t.Errorf("post-debt grant at %d, want ~%d", second, want)
	}

	// Refund: a waiting admission matures as soon as credit is returned.
	var third Time = -1
	p.Admit(1000, func(now Time) { third = now })
	at := eng.Now() + 100*Microsecond
	eng.At(at, func(Time) { p.Consume(-1000) })
	eng.Run()
	if third != at {
		t.Errorf("refunded grant at %d, want %d (the refund instant)", third, at)
	}
}

// TestPacedTransferSharesLink checks that Transfer occupies the shared
// link after admission, so paced and unpaced traffic serialize FIFO on
// the same capacity.
func TestPacedTransferSharesLink(t *testing.T) {
	eng := NewEngine()
	link := NewBandwidth(eng, 1e6) // 1 MB/s: 1000 bytes take 1ms
	p := NewPacedBandwidth(eng, link, 1e9, 1e6)

	var pacedEnd, fgEnd Time
	p.Transfer(1000, func(_, end Time) { pacedEnd = end })
	link.Transfer(1000, func(_, end Time) { fgEnd = end }) // foreground, direct
	eng.Run()
	if pacedEnd != Millisecond {
		t.Errorf("paced transfer ended at %d, want %d", pacedEnd, Millisecond)
	}
	if fgEnd != 2*Millisecond {
		t.Errorf("foreground transfer queued behind paced one ended at %d, want %d",
			fgEnd, 2*Millisecond)
	}
	if link.Bytes() != 2000 {
		t.Errorf("link delivered %d bytes, want 2000", link.Bytes())
	}
}

// TestPacedRejectsBadConfig pins the constructor and SetRate panics.
func TestPacedRejectsBadConfig(t *testing.T) {
	eng := NewEngine()
	link := NewBandwidth(eng, 1e6)
	for name, fn := range map[string]func(){
		"zero rate":  func() { NewPacedBandwidth(eng, link, 0, 1) },
		"zero burst": func() { NewPacedBandwidth(eng, link, 1, 0) },
		"set zero":   func() { NewPacedBandwidth(eng, link, 1, 1).SetRate(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			fn()
		}()
	}
}
