// Package predictor implements RackBlox's two predictors: the
// sliding-window return-latency predictor of §3.4 (used as Predict_time in
// coordinated I/O scheduling) and the exponential-smoothing idle-time
// predictor of §3.5.1 (used to trigger background GC).
package predictor

import "rackblox/internal/sim"

// DefaultWindow is the paper's window size: "the average network latency
// of the 100 most recent incoming packets" — small enough to react to
// congestion, large enough to smooth outliers.
const DefaultWindow = 100

// Window is a fixed-size sliding window that reports the mean of the most
// recent observations.
type Window struct {
	buf  []sim.Time
	next int
	n    int
	sum  int64
}

// NewWindow creates a sliding window of the given capacity.
func NewWindow(size int) *Window {
	if size <= 0 {
		size = DefaultWindow
	}
	return &Window{buf: make([]sim.Time, size)}
}

// Observe adds one sample, evicting the oldest when full.
func (w *Window) Observe(v sim.Time) {
	if w.n == len(w.buf) {
		w.sum -= int64(w.buf[w.next])
	} else {
		w.n++
	}
	w.buf[w.next] = v
	w.sum += int64(v)
	w.next = (w.next + 1) % len(w.buf)
}

// Mean returns the window mean, or 0 before any observation.
func (w *Window) Mean() sim.Time {
	if w.n == 0 {
		return 0
	}
	return sim.Time(w.sum / int64(w.n))
}

// Len returns the number of held samples.
func (w *Window) Len() int { return w.n }

// Latency predicts the time to return a response to the client. Separate
// windows are kept for reads and writes "as their outgoing packet sizes
// are different" (§3.4). It observes *incoming* packet latencies, which
// "better capture the factors causing network delays".
type Latency struct {
	read  *Window
	write *Window
}

// NewLatency builds a predictor with the given window size per class.
func NewLatency(window int) *Latency {
	return &Latency{read: NewWindow(window), write: NewWindow(window)}
}

// Observe records the measured inbound network latency of one request.
func (p *Latency) Observe(write bool, lat sim.Time) {
	if write {
		p.write.Observe(lat)
	} else {
		p.read.Observe(lat)
	}
}

// Predict returns the expected return-path latency for the request class.
// Before any same-class observation it falls back to the other class, then
// to zero — the scheduler degrades to network-oblivious behaviour.
func (p *Latency) Predict(write bool) sim.Time {
	primary, other := p.read, p.write
	if write {
		primary, other = p.write, p.read
	}
	if primary.Len() > 0 {
		return primary.Mean()
	}
	return other.Mean()
}

// Accuracy summarizes predictor quality for the §3.4 validation: the
// fraction of predictions within tolNS of the true value.
type Accuracy struct {
	total  int
	within int
	// WorstRel tracks the largest relative error observed.
	WorstRel float64
}

// Record compares one prediction with the observed truth.
func (a *Accuracy) Record(predicted, actual sim.Time, tolNS sim.Time) {
	a.total++
	diff := predicted - actual
	if diff < 0 {
		diff = -diff
	}
	if diff <= tolNS {
		a.within++
	}
	if actual > 0 {
		rel := float64(diff) / float64(actual)
		if rel > a.WorstRel {
			a.WorstRel = rel
		}
	}
}

// HitRate returns the fraction of predictions within tolerance.
func (a *Accuracy) HitRate() float64 {
	if a.total == 0 {
		return 0
	}
	return float64(a.within) / float64(a.total)
}

// Total returns the number of recorded comparisons.
func (a *Accuracy) Total() int { return a.total }

// DefaultAlpha is the exponential smoothing parameter of §3.5.1.
const DefaultAlpha = 0.5

// DefaultIdleThreshold is the predicted-idle threshold beyond which
// background GC runs (30 ms by default).
const DefaultIdleThreshold = 30 * sim.Millisecond

// Idle predicts the next idle interval of a vSSD from the history of
// inter-request gaps: T_i = alpha*T_real(i-1) + (1-alpha)*T_pred(i-1).
type Idle struct {
	alpha     float64
	threshold sim.Time
	pred      float64
	lastReq   sim.Time
	started   bool
}

// NewIdle builds an idle predictor; zero arguments select the defaults.
func NewIdle(alpha float64, threshold sim.Time) *Idle {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	if threshold <= 0 {
		threshold = DefaultIdleThreshold
	}
	return &Idle{alpha: alpha, threshold: threshold}
}

// OnRequest folds in the observed gap since the previous request.
func (p *Idle) OnRequest(now sim.Time) {
	if p.started {
		real := float64(now - p.lastReq)
		p.pred = p.alpha*real + (1-p.alpha)*p.pred
	}
	p.lastReq = now
	p.started = true
}

// Predicted returns the current idle-time estimate.
func (p *Idle) Predicted() sim.Time { return sim.Time(p.pred) }

// ShouldBackgroundGC reports whether the predicted idle interval exceeds
// the threshold, i.e. the device expects enough quiet time for GC.
func (p *Idle) ShouldBackgroundGC() bool {
	return p.started && sim.Time(p.pred) >= p.threshold
}
