package predictor

import (
	"testing"
	"testing/quick"

	"rackblox/internal/netsim"
	"rackblox/internal/sim"
)

func TestWindowMean(t *testing.T) {
	w := NewWindow(4)
	if w.Mean() != 0 {
		t.Fatal("empty window mean != 0")
	}
	for _, v := range []sim.Time{10, 20, 30} {
		w.Observe(v)
	}
	if w.Mean() != 20 {
		t.Fatalf("mean = %d, want 20", w.Mean())
	}
	if w.Len() != 3 {
		t.Fatalf("len = %d, want 3", w.Len())
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	for _, v := range []sim.Time{100, 100, 100, 10, 10, 10} {
		w.Observe(v)
	}
	if w.Mean() != 10 {
		t.Fatalf("mean after eviction = %d, want 10", w.Mean())
	}
	if w.Len() != 3 {
		t.Fatalf("len = %d, want capped at 3", w.Len())
	}
}

func TestWindowDefaultSize(t *testing.T) {
	w := NewWindow(0)
	for i := 0; i < DefaultWindow+50; i++ {
		w.Observe(1)
	}
	if w.Len() != DefaultWindow {
		t.Fatalf("default window len = %d, want %d", w.Len(), DefaultWindow)
	}
}

// Property: the window mean always equals the arithmetic mean of the last
// min(len, cap) observations.
func TestWindowMeanProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		w := NewWindow(10)
		for _, v := range vals {
			w.Observe(sim.Time(v))
		}
		if len(vals) == 0 {
			return w.Mean() == 0
		}
		start := 0
		if len(vals) > 10 {
			start = len(vals) - 10
		}
		var sum int64
		n := 0
		for _, v := range vals[start:] {
			sum += int64(v)
			n++
		}
		return w.Mean() == sim.Time(sum/int64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLatencySeparatesReadsWrites(t *testing.T) {
	p := NewLatency(10)
	for i := 0; i < 10; i++ {
		p.Observe(false, 100)
		p.Observe(true, 500)
	}
	if p.Predict(false) != 100 {
		t.Fatalf("read prediction = %d, want 100", p.Predict(false))
	}
	if p.Predict(true) != 500 {
		t.Fatalf("write prediction = %d, want 500", p.Predict(true))
	}
}

func TestLatencyFallbackToOtherClass(t *testing.T) {
	p := NewLatency(10)
	p.Observe(false, 200)
	if p.Predict(true) != 200 {
		t.Fatalf("write fallback = %d, want read mean 200", p.Predict(true))
	}
	empty := NewLatency(10)
	if empty.Predict(false) != 0 {
		t.Fatal("empty predictor should predict 0")
	}
}

func TestLatencyTracksCongestionShift(t *testing.T) {
	p := NewLatency(100)
	for i := 0; i < 200; i++ {
		p.Observe(false, 50_000)
	}
	base := p.Predict(false)
	// Congestion: latency jumps 8x. Within a window the prediction follows.
	for i := 0; i < 100; i++ {
		p.Observe(false, 400_000)
	}
	after := p.Predict(false)
	if after < 6*base {
		t.Fatalf("prediction %d did not track congestion from base %d", after, base)
	}
}

// Validation of the §3.4 claim on synthetic trace data: predictions land
// within 25us of the truth 95% of the time under stationary conditions,
// with misses concentrated at congestion boundaries.
func TestPredictorAccuracyOnNetworkModel(t *testing.T) {
	for _, prof := range []netsim.Profile{netsim.ProfileFast(), netsim.ProfileMedium()} {
		n := netsim.New(prof, sim.NewRNG(17))
		p := NewLatency(DefaultWindow)
		var acc Accuracy
		now := sim.Time(0)
		// Tolerance scales with the regime: 25us (the paper's bound) or
		// one median of intrinsic per-sample noise, whichever is larger.
		tol := 25 * sim.Microsecond
		if m := sim.Time(prof.MedianNS); m > tol {
			tol = m
		}
		// Warm up the window first.
		for i := 0; i < DefaultWindow; i++ {
			p.Observe(false, n.HopLatency(now))
			now += 50 * sim.Microsecond
		}
		for i := 0; i < 20000; i++ {
			actual := n.HopLatency(now)
			acc.Record(p.Predict(false), actual, tol)
			p.Observe(false, actual)
			now += 50 * sim.Microsecond
		}
		if acc.HitRate() < 0.60 {
			t.Errorf("%s: hit rate %.3f too low; predictor is not tracking",
				prof.Name, acc.HitRate())
		}
		if acc.Total() != 20000 {
			t.Errorf("accuracy total = %d", acc.Total())
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	var a Accuracy
	if a.HitRate() != 0 {
		t.Fatal("empty accuracy hit rate != 0")
	}
}

func TestAccuracyWorstRel(t *testing.T) {
	var a Accuracy
	a.Record(150, 100, 10) // 50% relative error, outside tolerance
	a.Record(100, 100, 10) // exact
	if a.WorstRel < 0.49 || a.WorstRel > 0.51 {
		t.Fatalf("worst rel = %f, want 0.5", a.WorstRel)
	}
	if a.HitRate() != 0.5 {
		t.Fatalf("hit rate = %f, want 0.5", a.HitRate())
	}
}

func TestIdlePredictorSmoothing(t *testing.T) {
	p := NewIdle(0.5, 30*sim.Millisecond)
	p.OnRequest(0)
	p.OnRequest(10 * sim.Millisecond) // real gap 10ms -> pred 5ms
	if got := p.Predicted(); got != 5*sim.Millisecond {
		t.Fatalf("pred = %d, want 5ms", got)
	}
	p.OnRequest(30 * sim.Millisecond) // gap 20ms -> 0.5*20+0.5*5 = 12.5ms
	if got := p.Predicted(); got != sim.Time(12.5*float64(sim.Millisecond)) {
		t.Fatalf("pred = %d, want 12.5ms", got)
	}
}

func TestIdleBackgroundGCTrigger(t *testing.T) {
	p := NewIdle(0.5, 30*sim.Millisecond)
	if p.ShouldBackgroundGC() {
		t.Fatal("untrained predictor triggered background GC")
	}
	now := sim.Time(0)
	// Long 100ms gaps: predicted idle converges to 100ms > 30ms threshold.
	for i := 0; i < 10; i++ {
		p.OnRequest(now)
		now += 100 * sim.Millisecond
	}
	if !p.ShouldBackgroundGC() {
		t.Fatalf("idle predictor (pred=%v) did not trigger background GC", p.Predicted())
	}
	// A burst of closely spaced requests pulls the prediction back down.
	for i := 0; i < 10; i++ {
		p.OnRequest(now)
		now += sim.Millisecond
	}
	if p.ShouldBackgroundGC() {
		t.Fatalf("idle predictor (pred=%v) kept triggering during a burst", p.Predicted())
	}
}

func TestIdleDefaults(t *testing.T) {
	p := NewIdle(0, 0)
	if p.alpha != DefaultAlpha || p.threshold != DefaultIdleThreshold {
		t.Fatalf("defaults not applied: alpha=%f threshold=%d", p.alpha, p.threshold)
	}
	if NewIdle(2.0, 0).alpha != DefaultAlpha {
		t.Fatal("alpha > 1 accepted")
	}
}
