package packet

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(src, dst, vssd, rvssd, rip, lpn uint32, port uint16, lat uint32, seq uint64, opRaw, gcRaw uint8) bool {
		p := Packet{
			SrcIP: src, DstIP: dst, Port: port,
			Op:   Op(opRaw%6) + OpCreateVSSD,
			VSSD: vssd, LatUS: lat,
			GC:          GCField(gcRaw % 6),
			ReplicaVSSD: rvssd, ReplicaIP: rip,
			LPN: lpn, Seq: seq,
		}
		got, err := Unmarshal(p.Marshal())
		return err == nil && got == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 5)); !errors.Is(err, ErrShortPacket) {
		t.Fatalf("err = %v, want ErrShortPacket", err)
	}
}

func TestUnmarshalBadOp(t *testing.T) {
	p := Packet{Op: OpRead}
	b := p.Marshal()
	b[10] = 0 // invalid op
	if _, err := Unmarshal(b); !errors.Is(err, ErrBadOp) {
		t.Fatalf("err = %v, want ErrBadOp", err)
	}
	b[10] = 200
	if _, err := Unmarshal(b); !errors.Is(err, ErrBadOp) {
		t.Fatalf("err = %v, want ErrBadOp", err)
	}
}

func TestAddLatencyAccumulates(t *testing.T) {
	var p Packet
	p.AddLatency(1500) // 1.5us truncates to 1us
	p.AddLatency(2500)
	if p.LatUS != 3 {
		t.Fatalf("LatUS = %d, want 3", p.LatUS)
	}
	if p.LatencyNS() != 3000 {
		t.Fatalf("LatencyNS = %d, want 3000", p.LatencyNS())
	}
}

func TestAddLatencySaturates(t *testing.T) {
	p := Packet{LatUS: 0xFFFFFFF0}
	p.AddLatency(1_000_000_000) // 1s = 1e6 us, would overflow
	if p.LatUS != 0xFFFFFFFF {
		t.Fatalf("LatUS = %d, want saturation", p.LatUS)
	}
}

func TestOpStrings(t *testing.T) {
	want := map[Op]string{
		OpCreateVSSD: "create_vssd", OpDelVSSD: "del_vssd",
		OpWrite: "write", OpRead: "read", OpGC: "gc_op", OpResponse: "response",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Error("unknown op string")
	}
}

func TestGCFieldValuesMatchPaper(t *testing.T) {
	// §3.5.1 fixes the wire values: soft=0, regular=1, bg=2, accept=3,
	// delay=4, finish=5.
	if GCSoft != 0 || GCRegular != 1 || GCBackground != 2 || GCAccept != 3 || GCDelay != 4 || GCFinish != 5 {
		t.Fatal("GC field wire values diverge from the paper")
	}
	names := map[GCField]string{
		GCSoft: "soft", GCRegular: "regular", GCBackground: "bg",
		GCAccept: "accept", GCDelay: "delay", GCFinish: "finish",
	}
	for g, s := range names {
		if g.String() != s {
			t.Errorf("%d.String() = %q, want %q", g, g.String(), s)
		}
	}
	if GCField(77).String() != "GCField(77)" {
		t.Error("unknown gc field string")
	}
}

func TestIPHelpers(t *testing.T) {
	ip := IP4(10, 0, 0, 16)
	if ip != 0x0A000010 {
		t.Fatalf("IP4 = %x", ip)
	}
	if FormatIP(ip) != "10.0.0.16" {
		t.Fatalf("FormatIP = %q", FormatIP(ip))
	}
}

func TestHeaderSizeMatchesFig6(t *testing.T) {
	// 1-byte OP + 4-byte vSSD_ID + 4-byte LAT.
	if HeaderSize != 9 {
		t.Fatalf("header size = %d, want 9", HeaderSize)
	}
}
