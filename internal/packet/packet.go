// Package packet implements the RackBlox network packet format (Fig. 6)
// and protocol operations (Table 1). The RackBlox header rides inside the
// L4 payload of ordinary TCP/UDP packets, so regular switches forward it
// untouched; only the ToR switch interprets it, selected by a reserved
// port.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op is the 1-byte operation field.
type Op uint8

// Protocol operations (Table 1).
const (
	// OpCreateVSSD registers a newly created vSSD in the ToR switch.
	OpCreateVSSD Op = iota + 1
	// OpDelVSSD removes a registered vSSD from the tables.
	OpDelVSSD
	// OpWrite is a client write.
	OpWrite
	// OpRead is a client read.
	OpRead
	// OpGC updates GC state for a vSSD.
	OpGC
	// OpResponse carries a completion back to the client.
	OpResponse
)

func (o Op) String() string {
	switch o {
	case OpCreateVSSD:
		return "create_vssd"
	case OpDelVSSD:
		return "del_vssd"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpGC:
		return "gc_op"
	case OpResponse:
		return "response"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// GCField is the gc byte in a gc_op payload (§3.5.1).
type GCField uint8

const (
	// GCSoft requests GC below the soft threshold; the switch may delay it.
	GCSoft GCField = 0
	// GCRegular requests GC below the hard threshold; never denied.
	GCRegular GCField = 1
	// GCBackground announces idle-cycle GC; executed without approval.
	GCBackground GCField = 2
	// GCAccept is the switch's approval.
	GCAccept GCField = 3
	// GCDelay is the switch's postponement (replica is collecting).
	GCDelay GCField = 4
	// GCFinish tells the switch GC completed; it clears both tables.
	GCFinish GCField = 5
)

func (g GCField) String() string {
	switch g {
	case GCSoft:
		return "soft"
	case GCRegular:
		return "regular"
	case GCBackground:
		return "bg"
	case GCAccept:
		return "accept"
	case GCDelay:
		return "delay"
	case GCFinish:
		return "finish"
	default:
		return fmt.Sprintf("GCField(%d)", uint8(g))
	}
}

// ReservedPort is the TCP/UDP port that marks RackBlox packets at the ToR.
const ReservedPort = 0x5258 // "RX"

// HeaderSize is the fixed RackBlox header length in bytes:
// 1 (OP) + 4 (vSSD_ID) + 4 (LAT).
const HeaderSize = 9

// Packet is the in-simulation representation of one RackBlox message.
// SrcIP/DstIP stand in for the L2/L3 routing header; the RackBlox header
// fields follow Fig. 6.
type Packet struct {
	SrcIP uint32
	DstIP uint32
	Port  uint16

	// Op is the RackBlox operation.
	Op Op
	// VSSD is the 4-byte target vSSD id.
	VSSD uint32
	// LatUS is the 4-byte accumulated network latency in microseconds,
	// filled by In-band Network Telemetry as the packet crosses switches.
	LatUS uint32

	// GC is the gc field carried in gc_op payloads.
	GC GCField
	// ReplicaVSSD and ReplicaIP ride in create_vssd payloads.
	ReplicaVSSD uint32
	ReplicaIP   uint32
	// LPN is the logical page addressed by read/write payloads.
	LPN uint32
	// Seq is a client-assigned request id echoed in responses.
	Seq uint64
	// Handoffs counts inter-switch stripe handoffs this packet has taken
	// (multi-rack degraded routing); a one-byte TTL against ping-pong
	// between ToRs that both lack a healthy local member.
	Handoffs uint8
}

// AddLatency accumulates per-hop latency (ns) into the INT field,
// saturating rather than wrapping.
func (p *Packet) AddLatency(ns int64) {
	us := uint64(p.LatUS) + uint64(ns/1000)
	if us > 0xFFFFFFFF {
		us = 0xFFFFFFFF
	}
	p.LatUS = uint32(us)
}

// LatencyNS returns the INT-accumulated latency in nanoseconds.
func (p *Packet) LatencyNS() int64 { return int64(p.LatUS) * 1000 }

// wireSize is the encoded length: header + fixed payload block.
const wireSize = 4 + 4 + 2 + HeaderSize + 1 + 4 + 4 + 4 + 8 + 1

// ErrShortPacket reports a truncated encoding.
var ErrShortPacket = errors.New("packet: buffer too short")

// ErrBadOp reports an unknown operation byte.
var ErrBadOp = errors.New("packet: unknown op")

// Marshal encodes the packet into a fresh byte slice (big-endian, network
// order).
func (p *Packet) Marshal() []byte {
	b := make([]byte, wireSize)
	binary.BigEndian.PutUint32(b[0:], p.SrcIP)
	binary.BigEndian.PutUint32(b[4:], p.DstIP)
	binary.BigEndian.PutUint16(b[8:], p.Port)
	b[10] = byte(p.Op)
	binary.BigEndian.PutUint32(b[11:], p.VSSD)
	binary.BigEndian.PutUint32(b[15:], p.LatUS)
	b[19] = byte(p.GC)
	binary.BigEndian.PutUint32(b[20:], p.ReplicaVSSD)
	binary.BigEndian.PutUint32(b[24:], p.ReplicaIP)
	binary.BigEndian.PutUint32(b[28:], p.LPN)
	binary.BigEndian.PutUint64(b[32:], p.Seq)
	b[40] = p.Handoffs
	return b
}

// Unmarshal decodes a packet previously produced by Marshal.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) < wireSize {
		return Packet{}, ErrShortPacket
	}
	p := Packet{
		SrcIP:       binary.BigEndian.Uint32(b[0:]),
		DstIP:       binary.BigEndian.Uint32(b[4:]),
		Port:        binary.BigEndian.Uint16(b[8:]),
		Op:          Op(b[10]),
		VSSD:        binary.BigEndian.Uint32(b[11:]),
		LatUS:       binary.BigEndian.Uint32(b[15:]),
		GC:          GCField(b[19]),
		ReplicaVSSD: binary.BigEndian.Uint32(b[20:]),
		ReplicaIP:   binary.BigEndian.Uint32(b[24:]),
		LPN:         binary.BigEndian.Uint32(b[28:]),
		Seq:         binary.BigEndian.Uint64(b[32:]),
		Handoffs:    b[40],
	}
	if p.Op < OpCreateVSSD || p.Op > OpResponse {
		return Packet{}, fmt.Errorf("%w: %d", ErrBadOp, b[10])
	}
	return p, nil
}

// IP4 packs a dotted quad into the uint32 wire form.
func IP4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// FormatIP renders the uint32 wire form as a dotted quad.
func FormatIP(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}
