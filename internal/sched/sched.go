// Package sched implements the storage I/O schedulers evaluated in §4.5.1:
// no-op (FIFO), Deadline, and Kyber, plus RackBlox's coordinated variants
// that reorder each queue by the end-to-end priority
//
//	Prio_sched = Net_time + Storage_time + Predict_time   (§3.4)
//
// picking the request with the maximum accumulated and predicted latency
// first. Because Storage_time = now - arrival and "now" is shared by every
// queued request at dispatch, ordering by the static key
// Net_time + Predict_time - arrival is equivalent and cheaper.
package sched

import (
	"container/heap"
	"fmt"

	"rackblox/internal/sim"
)

// Policy selects the base scheduling algorithm.
type Policy int

const (
	// FIFO is Linux's no-op scheduler, the NVMe default.
	FIFO Policy = iota
	// Deadline splits reads and writes and promotes expired requests.
	Deadline
	// Kyber splits reads and writes and throttles writes to protect the
	// read latency target.
	Kyber
	// CFQ approximates completely-fair queueing [17 in the paper]:
	// read and write classes receive alternating dispatch quanta in
	// proportion to configurable weights.
	CFQ
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "FIFO"
	case Deadline:
		return "Deadline"
	case Kyber:
		return "Kyber"
	case CFQ:
		return "CFQ"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Request is one storage request in the I/O queue of the storage stack.
type Request struct {
	Seq     uint64
	Write   bool
	Arrival sim.Time
	// NetTime is the INT-measured inbound network latency (§3.4).
	NetTime sim.Time
	// Predict is the predicted return latency from the sliding window.
	Predict sim.Time
	// Data carries caller context through the queue.
	Data any

	index int // heap index
}

// prioKey is the static part of Prio_sched (see the package comment).
func (r *Request) prioKey() sim.Time { return r.NetTime + r.Predict - r.Arrival }

// Config configures a scheduler instance.
type Config struct {
	Policy Policy
	// Coordinated enables RackBlox's network-aware in-queue reordering.
	Coordinated bool
	// ReadTarget / WriteTarget are the per-class latency goals: deadlines
	// for Deadline, throttling targets for Kyber. Zero selects the paper's
	// defaults for the policy (larger when coordinated, §4.1).
	ReadTarget  sim.Time
	WriteTarget sim.Time
}

// Paper defaults (§4.1, §4.5.1).
const (
	DeadlineReadTarget       = 500 * sim.Microsecond
	DeadlineWriteTarget      = 1750 * sim.Microsecond
	CoordDeadlineReadTarget  = 1500 * sim.Microsecond
	CoordDeadlineWriteTarget = 2750 * sim.Microsecond
	KyberReadTarget          = 750 * sim.Microsecond
	KyberWriteTarget         = 3 * sim.Millisecond
	CoordKyberReadTarget     = 1750 * sim.Microsecond
	CoordKyberWriteTarget    = 4 * sim.Millisecond
)

func (c *Config) applyDefaults() {
	if c.ReadTarget != 0 || c.WriteTarget != 0 {
		return
	}
	switch c.Policy {
	case Deadline:
		if c.Coordinated {
			c.ReadTarget, c.WriteTarget = CoordDeadlineReadTarget, CoordDeadlineWriteTarget
		} else {
			c.ReadTarget, c.WriteTarget = DeadlineReadTarget, DeadlineWriteTarget
		}
	case Kyber:
		if c.Coordinated {
			c.ReadTarget, c.WriteTarget = CoordKyberReadTarget, CoordKyberWriteTarget
		} else {
			c.ReadTarget, c.WriteTarget = KyberReadTarget, KyberWriteTarget
		}
	}
}

// Scheduler orders the storage I/O queue.
type Scheduler interface {
	// Name identifies the configured policy, e.g. "RackBlox (Kyber)".
	Name() string
	// Enqueue adds a request to the queue.
	Enqueue(r *Request)
	// Dequeue removes and returns the next request to dispatch at now,
	// or nil when nothing is dispatchable (empty or throttled).
	Dequeue(now sim.Time) *Request
	// OnComplete feeds back a completed request's storage latency.
	OnComplete(write bool, storageLatency sim.Time)
	// Len returns the number of queued requests.
	Len() int
}

// New builds a scheduler for the configuration.
func New(cfg Config) Scheduler {
	cfg.applyDefaults()
	switch cfg.Policy {
	case FIFO:
		return newFIFO(cfg)
	case Deadline:
		return newDeadline(cfg)
	case Kyber:
		return newKyber(cfg)
	case CFQ:
		return newCFQ(cfg)
	default:
		panic(fmt.Sprintf("sched: unknown policy %d", cfg.Policy))
	}
}

func name(base string, coordinated bool) string {
	if coordinated {
		return "RackBlox (" + base + ")"
	}
	return base
}

// queue is a reorderable request queue: FIFO by arrival, or max-Prio_sched
// when coordinated.
type queue struct {
	items       []*Request
	coordinated bool
}

func (q *queue) Len() int { return len(q.items) }
func (q *queue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.coordinated {
		if a.prioKey() != b.prioKey() {
			return a.prioKey() > b.prioKey() // max accumulated latency first
		}
		return a.Arrival < b.Arrival
	}
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.Seq < b.Seq
}
func (q *queue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}
func (q *queue) Push(x interface{}) {
	r := x.(*Request)
	r.index = len(q.items)
	q.items = append(q.items, r)
}
func (q *queue) Pop() interface{} {
	old := q.items
	n := len(old)
	r := old[n-1]
	q.items = old[:n-1]
	return r
}

func (q *queue) push(r *Request) { heap.Push(q, r) }
func (q *queue) pop() *Request {
	if len(q.items) == 0 {
		return nil
	}
	return heap.Pop(q).(*Request)
}

// oldestArrival returns the earliest arrival in the queue (linear scan;
// queues are small and this only runs for Deadline's expiry check).
func (q *queue) oldestArrival() (sim.Time, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	min := q.items[0].Arrival
	for _, r := range q.items[1:] {
		if r.Arrival < min {
			min = r.Arrival
		}
	}
	return min, true
}
