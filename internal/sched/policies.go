package sched

import (
	"sort"

	"rackblox/internal/sim"
)

// fifo is a single queue: arrival order, or Prio_sched order when
// coordinated ("RackBlox (FIFO)").
type fifo struct {
	q    queue
	base string
}

func newFIFO(cfg Config) *fifo {
	return &fifo{q: queue{coordinated: cfg.Coordinated}, base: name("FIFO", cfg.Coordinated)}
}

func (f *fifo) Name() string                  { return f.base }
func (f *fifo) Enqueue(r *Request)            { f.q.push(r) }
func (f *fifo) Dequeue(now sim.Time) *Request { return f.q.pop() }
func (f *fifo) OnComplete(bool, sim.Time)     {}
func (f *fifo) Len() int                      { return f.q.Len() }

// deadline splits reads and writes; requests whose queueing delay exceeds
// their class deadline are promoted, with expired writes served ahead of
// fresh reads (reads are otherwise preferred, as in Linux's mq-deadline).
type deadline struct {
	reads, writes queue
	cfg           Config
	label         string
}

func newDeadline(cfg Config) *deadline {
	return &deadline{
		reads:  queue{coordinated: cfg.Coordinated},
		writes: queue{coordinated: cfg.Coordinated},
		cfg:    cfg,
		label:  name("Deadline", cfg.Coordinated),
	}
}

func (d *deadline) Name() string { return d.label }

func (d *deadline) Enqueue(r *Request) {
	if r.Write {
		d.writes.push(r)
	} else {
		d.reads.push(r)
	}
}

func (d *deadline) Dequeue(now sim.Time) *Request {
	wOldest, wOK := d.writes.oldestArrival()
	writeExpired := wOK && now-wOldest >= d.cfg.WriteTarget
	if writeExpired {
		// An expired write preempts fresh reads; expired reads still win
		// over expired writes (read latency is the primary SLO).
		rOldest, rOK := d.reads.oldestArrival()
		if rOK && now-rOldest >= d.cfg.ReadTarget {
			return d.reads.pop()
		}
		return d.writes.pop()
	}
	if r := d.reads.pop(); r != nil {
		return r
	}
	return d.writes.pop()
}

func (d *deadline) OnComplete(bool, sim.Time) {}
func (d *deadline) Len() int                  { return d.reads.Len() + d.writes.Len() }

// kyber splits reads and writes and adapts a write-dispatch budget from
// observed storage latencies: when the read P95 overshoots its target the
// write budget halves; when it is comfortably met the budget recovers.
// This mirrors Linux Kyber's token-based throttling at the fidelity the
// evaluation needs.
type kyber struct {
	reads, writes  queue
	cfg            Config
	label          string
	readLat        []sim.Time // sliding sample window
	writeBudget    int
	inflightWrites int
}

const (
	kyberWindow      = 64
	kyberMaxBudget   = 16
	kyberStartBudget = 8
)

func newKyber(cfg Config) *kyber {
	return &kyber{
		reads:       queue{coordinated: cfg.Coordinated},
		writes:      queue{coordinated: cfg.Coordinated},
		cfg:         cfg,
		label:       name("Kyber", cfg.Coordinated),
		writeBudget: kyberStartBudget,
	}
}

func (k *kyber) Name() string { return k.label }

func (k *kyber) Enqueue(r *Request) {
	if r.Write {
		k.writes.push(r)
	} else {
		k.reads.push(r)
	}
}

func (k *kyber) Dequeue(now sim.Time) *Request {
	if r := k.reads.pop(); r != nil {
		return r
	}
	if k.inflightWrites < k.writeBudget {
		if r := k.writes.pop(); r != nil {
			k.inflightWrites++
			return r
		}
	}
	return nil
}

func (k *kyber) OnComplete(write bool, lat sim.Time) {
	if write {
		if k.inflightWrites > 0 {
			k.inflightWrites--
		}
		return
	}
	k.readLat = append(k.readLat, lat)
	if len(k.readLat) < kyberWindow {
		return
	}
	p95 := percentile(k.readLat, 95)
	k.readLat = k.readLat[:0]
	switch {
	case p95 > k.cfg.ReadTarget:
		k.writeBudget /= 2
		if k.writeBudget < 1 {
			k.writeBudget = 1
		}
	case p95 < k.cfg.ReadTarget*8/10 && k.writeBudget < kyberMaxBudget:
		// Reads comfortably under target: admit writes again, two tokens
		// per window so recovery is not glacial after one GC spike.
		k.writeBudget += 2
		if k.writeBudget > kyberMaxBudget {
			k.writeBudget = kyberMaxBudget
		}
	}
}

func (k *kyber) Len() int { return k.reads.Len() + k.writes.Len() }

// WriteBudget exposes the current throttle for tests.
func (k *kyber) WriteBudget() int { return k.writeBudget }

func percentile(v []sim.Time, p float64) sim.Time {
	c := append([]sim.Time(nil), v...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	idx := int(p / 100 * float64(len(c)))
	if idx >= len(c) {
		idx = len(c) - 1
	}
	return c[idx]
}

// cfq alternates dispatch quanta between the read and write classes in
// weight proportion (reads weighted heavier, as CFQ does for synchronous
// I/O). Within a class the queue honours coordination like the others.
type cfq struct {
	reads, writes queue
	label         string
	// quantum counts remaining dispatches for the active class.
	readWeight, writeWeight int
	servingReads            bool
	quantum                 int
}

const (
	cfqReadWeight  = 3
	cfqWriteWeight = 1
)

func newCFQ(cfg Config) *cfq {
	return &cfq{
		reads:        queue{coordinated: cfg.Coordinated},
		writes:       queue{coordinated: cfg.Coordinated},
		label:        name("CFQ", cfg.Coordinated),
		readWeight:   cfqReadWeight,
		writeWeight:  cfqWriteWeight,
		servingReads: true,
		quantum:      cfqReadWeight,
	}
}

func (c *cfq) Name() string { return c.label }

func (c *cfq) Enqueue(r *Request) {
	if r.Write {
		c.writes.push(r)
	} else {
		c.reads.push(r)
	}
}

func (c *cfq) Dequeue(now sim.Time) *Request {
	if c.reads.Len() == 0 && c.writes.Len() == 0 {
		return nil
	}
	// At most two class switches are ever needed (spent quantum on an
	// empty class, then the other class); three tries cover both.
	for tries := 0; tries < 3; tries++ {
		active, other := &c.reads, &c.writes
		if !c.servingReads {
			active, other = &c.writes, &c.reads
		}
		if c.quantum > 0 && active.Len() > 0 {
			c.quantum--
			return active.pop()
		}
		_ = other
		// Quantum spent or class empty: switch classes.
		c.servingReads = !c.servingReads
		if c.servingReads {
			c.quantum = c.readWeight
		} else {
			c.quantum = c.writeWeight
		}
	}
	return nil
}

func (c *cfq) OnComplete(bool, sim.Time) {}
func (c *cfq) Len() int                  { return c.reads.Len() + c.writes.Len() }
