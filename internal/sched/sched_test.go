package sched

import (
	"testing"
	"testing/quick"

	"rackblox/internal/sim"
)

func req(seq uint64, write bool, arrival, net, pred sim.Time) *Request {
	return &Request{Seq: seq, Write: write, Arrival: arrival, NetTime: net, Predict: pred}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "FIFO" || Deadline.String() != "Deadline" || Kyber.String() != "Kyber" {
		t.Fatal("policy names")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy name")
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Policy: FIFO}, "FIFO"},
		{Config{Policy: FIFO, Coordinated: true}, "RackBlox (FIFO)"},
		{Config{Policy: Deadline}, "Deadline"},
		{Config{Policy: Kyber, Coordinated: true}, "RackBlox (Kyber)"},
	}
	for _, c := range cases {
		if got := New(c.cfg).Name(); got != c.want {
			t.Errorf("name = %q, want %q", got, c.want)
		}
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown policy")
		}
	}()
	New(Config{Policy: Policy(42)})
}

func TestFIFOOrder(t *testing.T) {
	s := New(Config{Policy: FIFO})
	s.Enqueue(req(1, false, 30, 0, 0))
	s.Enqueue(req(2, false, 10, 0, 0))
	s.Enqueue(req(3, true, 20, 0, 0))
	var got []uint64
	for r := s.Dequeue(100); r != nil; r = s.Dequeue(100) {
		got = append(got, r.Seq)
	}
	want := []uint64{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFIFOEmptyDequeue(t *testing.T) {
	s := New(Config{Policy: FIFO})
	if s.Dequeue(0) != nil {
		t.Fatal("empty dequeue != nil")
	}
	if s.Len() != 0 {
		t.Fatal("len != 0")
	}
}

func TestCoordinatedFIFOPicksMaxPrio(t *testing.T) {
	s := New(Config{Policy: FIFO, Coordinated: true})
	// Same arrival: the request that already spent 900us in the network
	// and expects a slow return must go first.
	s.Enqueue(req(1, false, 0, 100*sim.Microsecond, 50*sim.Microsecond))
	s.Enqueue(req(2, false, 0, 900*sim.Microsecond, 300*sim.Microsecond))
	s.Enqueue(req(3, false, 0, 10*sim.Microsecond, 10*sim.Microsecond))
	if r := s.Dequeue(sim.Millisecond); r.Seq != 2 {
		t.Fatalf("first = %d, want 2 (max Prio_sched)", r.Seq)
	}
	if r := s.Dequeue(sim.Millisecond); r.Seq != 1 {
		t.Fatalf("second = %d, want 1", r.Seq)
	}
}

func TestCoordinatedAccountsQueueTime(t *testing.T) {
	s := New(Config{Policy: FIFO, Coordinated: true})
	// Earlier arrival means more accumulated Storage_time, so with equal
	// network latency the older request wins.
	s.Enqueue(req(1, false, 500, 0, 0))
	s.Enqueue(req(2, false, 100, 0, 0))
	if r := s.Dequeue(1000); r.Seq != 2 {
		t.Fatalf("first = %d, want the older request", r.Seq)
	}
}

func TestDeadlinePrefersReads(t *testing.T) {
	s := New(Config{Policy: Deadline})
	s.Enqueue(req(1, true, 0, 0, 0))
	s.Enqueue(req(2, false, 10, 0, 0))
	if r := s.Dequeue(20); r.Seq != 2 {
		t.Fatalf("first = %d, want read", r.Seq)
	}
	if r := s.Dequeue(20); r.Seq != 1 {
		t.Fatalf("second = %d, want write", r.Seq)
	}
}

func TestDeadlineExpiredWritePreempts(t *testing.T) {
	s := New(Config{Policy: Deadline})
	s.Enqueue(req(1, true, 0, 0, 0))
	// Fresh read arrives after the write deadline has long passed.
	now := DeadlineWriteTarget + 10*sim.Microsecond
	s.Enqueue(req(2, false, now, 0, 0))
	if r := s.Dequeue(now); r.Seq != 1 {
		t.Fatalf("first = %d, want expired write", r.Seq)
	}
}

func TestDeadlineExpiredReadBeatsExpiredWrite(t *testing.T) {
	s := New(Config{Policy: Deadline})
	s.Enqueue(req(1, true, 0, 0, 0))
	s.Enqueue(req(2, false, 0, 0, 0))
	now := DeadlineWriteTarget + sim.Millisecond // both expired
	if r := s.Dequeue(now); r.Seq != 2 {
		t.Fatalf("first = %d, want expired read", r.Seq)
	}
}

func TestDeadlineDefaults(t *testing.T) {
	d := newDeadline(func() Config { c := Config{Policy: Deadline}; c.applyDefaults(); return c }())
	if d.cfg.ReadTarget != DeadlineReadTarget || d.cfg.WriteTarget != DeadlineWriteTarget {
		t.Fatalf("defaults = %+v", d.cfg)
	}
	dc := newDeadline(func() Config {
		c := Config{Policy: Deadline, Coordinated: true}
		c.applyDefaults()
		return c
	}())
	if dc.cfg.ReadTarget != CoordDeadlineReadTarget {
		t.Fatal("coordinated deadline defaults")
	}
}

func TestKyberDefaults(t *testing.T) {
	k := New(Config{Policy: Kyber}).(*kyber)
	if k.cfg.ReadTarget != KyberReadTarget || k.cfg.WriteTarget != KyberWriteTarget {
		t.Fatalf("kyber defaults = %+v", k.cfg)
	}
}

func TestExplicitTargetsRespected(t *testing.T) {
	k := New(Config{Policy: Kyber, ReadTarget: 1, WriteTarget: 2}).(*kyber)
	if k.cfg.ReadTarget != 1 || k.cfg.WriteTarget != 2 {
		t.Fatal("explicit targets overwritten")
	}
}

func TestKyberThrottlesWritesOnSlowReads(t *testing.T) {
	k := New(Config{Policy: Kyber}).(*kyber)
	start := k.WriteBudget()
	// Feed a full window of read latencies far above target.
	for i := 0; i < kyberWindow; i++ {
		k.OnComplete(false, KyberReadTarget*10)
	}
	if k.WriteBudget() >= start {
		t.Fatalf("budget %d did not shrink from %d", k.WriteBudget(), start)
	}
	// Feed fast reads: budget recovers.
	low := k.WriteBudget()
	for j := 0; j < 20; j++ {
		for i := 0; i < kyberWindow; i++ {
			k.OnComplete(false, KyberReadTarget/10)
		}
	}
	if k.WriteBudget() <= low {
		t.Fatalf("budget %d did not recover from %d", k.WriteBudget(), low)
	}
}

func TestKyberBudgetFloor(t *testing.T) {
	k := New(Config{Policy: Kyber}).(*kyber)
	for j := 0; j < 10; j++ {
		for i := 0; i < kyberWindow; i++ {
			k.OnComplete(false, KyberReadTarget*100)
		}
	}
	if k.WriteBudget() < 1 {
		t.Fatalf("budget %d below floor", k.WriteBudget())
	}
}

func TestKyberInflightLimit(t *testing.T) {
	k := New(Config{Policy: Kyber}).(*kyber)
	for i := 0; i < 50; i++ {
		k.Enqueue(req(uint64(i), true, 0, 0, 0))
	}
	dispatched := 0
	for k.Dequeue(0) != nil {
		dispatched++
	}
	if dispatched != kyberStartBudget {
		t.Fatalf("dispatched %d writes, want budget %d", dispatched, kyberStartBudget)
	}
	// Completing one write frees one slot.
	k.OnComplete(true, sim.Millisecond)
	if k.Dequeue(0) == nil {
		t.Fatal("completion did not free a write slot")
	}
}

func TestKyberReadsNeverThrottled(t *testing.T) {
	k := New(Config{Policy: Kyber}).(*kyber)
	for i := 0; i < 30; i++ {
		k.Enqueue(req(uint64(i), false, 0, 0, 0))
	}
	for i := 0; i < 30; i++ {
		if k.Dequeue(0) == nil {
			t.Fatalf("read %d throttled", i)
		}
	}
}

// Property: every enqueued request is dequeued exactly once, regardless of
// policy or coordination.
func TestConservationProperty(t *testing.T) {
	f := func(writes []bool, policyRaw, coordRaw uint8) bool {
		cfg := Config{Policy: Policy(policyRaw % 3), Coordinated: coordRaw%2 == 0}
		s := New(cfg)
		for i, w := range writes {
			s.Enqueue(req(uint64(i), w, sim.Time(i), sim.Time(i%7)*100, sim.Time(i%3)*50))
		}
		seen := map[uint64]bool{}
		now := sim.Time(len(writes))
		for {
			r := s.Dequeue(now)
			if r == nil {
				// Kyber may throttle writes; complete one to make progress.
				if s.Len() > 0 {
					s.OnComplete(true, sim.Microsecond)
					now += sim.Millisecond
					continue
				}
				break
			}
			if seen[r.Seq] {
				return false // duplicate dispatch
			}
			seen[r.Seq] = true
		}
		return len(seen) == len(writes) && s.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: in coordinated mode, among same-arrival requests the dispatch
// order is by non-increasing NetTime+Predict.
func TestCoordinatedOrderProperty(t *testing.T) {
	f := func(lat []uint16) bool {
		s := New(Config{Policy: FIFO, Coordinated: true})
		for i, l := range lat {
			s.Enqueue(req(uint64(i), false, 0, sim.Time(l), 0))
		}
		prev := sim.Time(1 << 62)
		for r := s.Dequeue(0); r != nil; r = s.Dequeue(0) {
			if r.NetTime > prev {
				return false
			}
			prev = r.NetTime
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCFQAlternatesClasses(t *testing.T) {
	s := New(Config{Policy: CFQ})
	if s.Name() != "CFQ" {
		t.Fatalf("name = %q", s.Name())
	}
	for i := 0; i < 8; i++ {
		s.Enqueue(req(uint64(i), false, sim.Time(i), 0, 0))    // reads 0..7
		s.Enqueue(req(uint64(100+i), true, sim.Time(i), 0, 0)) // writes 100..107
	}
	var order []bool // true = write
	for r := s.Dequeue(0); r != nil; r = s.Dequeue(0) {
		order = append(order, r.Write)
	}
	if len(order) != 16 {
		t.Fatalf("dispatched %d, want 16", len(order))
	}
	// 3:1 read:write weighting — the first four dispatches are R,R,R,W.
	want := []bool{false, false, false, true}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("dispatch order %v does not follow 3:1 weighting", order[:4])
		}
	}
	writes := 0
	for _, w := range order[:8] {
		if w {
			writes++
		}
	}
	if writes != 2 {
		t.Fatalf("first 8 dispatches had %d writes, want 2 at 3:1", writes)
	}
}

func TestCFQDrainsWhenOneClassEmpty(t *testing.T) {
	s := New(Config{Policy: CFQ})
	for i := 0; i < 5; i++ {
		s.Enqueue(req(uint64(i), true, 0, 0, 0))
	}
	n := 0
	for s.Dequeue(0) != nil {
		n++
	}
	if n != 5 {
		t.Fatalf("drained %d writes, want 5", n)
	}
	if s.Dequeue(0) != nil {
		t.Fatal("empty CFQ returned a request")
	}
}

func TestCFQCoordinatedName(t *testing.T) {
	if New(Config{Policy: CFQ, Coordinated: true}).Name() != "RackBlox (CFQ)" {
		t.Fatal("coordinated CFQ name")
	}
}
