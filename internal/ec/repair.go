package ec

// RepairTask is one unit of background reconstruction: rebuild the lost
// chunks of a contiguous batch of stripes onto their adopting holder.
// Batching keeps the repair queue (and the simulator's event count)
// proportional to lost capacity, not to individual pages.
type RepairTask struct {
	// Holder is the group-local index of the lost chunk holder.
	Holder int
	// FirstStripe and Stripes delimit the batch.
	FirstStripe int
	Stripes     int
	// Gen is the holder's repair generation at enqueue time (stamped by
	// Enqueue). Reset advances the generation, so a task claimed before
	// the reset reports Done as a stale no-op instead of counting toward
	// the new rebuild.
	Gen int
}

// Reconstructor queues and accounts chunk-repair work for one stripe
// group. It is deliberately passive: the rack decides *when* a task may
// run (only in switch-observed GC idle windows, the same gate soft-GC
// requests pass) and calls Next to claim work; the reconstructor only
// tracks what remains. Per-holder remaining counts let the caller close
// the repair loop: Done reports when the last stripe of a holder has
// been rebuilt, the moment its replacement can be re-registered in the
// switch stripe tables.
type Reconstructor struct {
	pending  []RepairTask
	repaired int
	delayed  int
	// remaining tracks, per lost holder, the stripes still to rebuild.
	remaining map[int]int
	// gen is each holder's current repair generation (see Reset).
	gen map[int]int

	// TraceHook, when non-nil, observes queue transitions ("enqueue",
	// "done", "void", "reset") for the flight recorder. Every enqueued
	// stripe reaches exactly one terminal transition — "done" when its
	// repair counted, "void" when a Reset superseded it (whether it was
	// still queued or already claimed) — so queue accounting balances:
	// enqueued stripes == done stripes + void stripes. Pure observer: it
	// must not touch the queue.
	TraceHook func(op string, t RepairTask)
}

// notify reports one queue transition to the trace hook, if installed.
func (r *Reconstructor) notify(op string, t RepairTask) {
	if r.TraceHook != nil {
		r.TraceHook(op, t)
	}
}

// NewReconstructor returns an empty repair queue.
func NewReconstructor() *Reconstructor {
	return &Reconstructor{remaining: make(map[int]int), gen: make(map[int]int)}
}

// Enqueue adds one repair task, stamping it with the holder's current
// generation.
func (r *Reconstructor) Enqueue(t RepairTask) {
	t.Gen = r.gen[t.Holder]
	r.pending = append(r.pending, t)
	r.remaining[t.Holder] += t.Stripes
	r.notify("enqueue", t)
}

// EnqueueChunk splits the repair of one lost holder's chunks over
// [0, stripes) into batch-sized tasks.
func (r *Reconstructor) EnqueueChunk(holder, stripes, batch int) {
	if batch < 1 {
		batch = 1
	}
	for first := 0; first < stripes; first += batch {
		n := batch
		if first+n > stripes {
			n = stripes - first
		}
		r.Enqueue(RepairTask{Holder: holder, FirstStripe: first, Stripes: n})
	}
}

// Next claims the oldest pending task; ok is false when the queue is
// drained.
func (r *Reconstructor) Next() (t RepairTask, ok bool) {
	if len(r.pending) == 0 {
		return RepairTask{}, false
	}
	t = r.pending[0]
	r.pending = r.pending[1:]
	return t, true
}

// NextUpTo claims at most limit stripes of the oldest pending task,
// splitting the task when it is larger: the claimed prefix is returned
// and the remainder — same holder, same generation — stays at the head
// of the queue. The repair pacer uses it to cut enqueued batches down to
// token-sized transfers, so a large batch cannot monopolize the shared
// spine link in one burst. A limit below 1 claims one stripe.
func (r *Reconstructor) NextUpTo(limit int) (t RepairTask, ok bool) {
	if len(r.pending) == 0 {
		return RepairTask{}, false
	}
	if limit < 1 {
		limit = 1
	}
	head := r.pending[0]
	if head.Stripes <= limit {
		r.pending = r.pending[1:]
		return head, true
	}
	rest := head
	rest.FirstStripe += limit
	rest.Stripes -= limit
	r.pending[0] = rest
	head.Stripes = limit
	return head, true
}

// Done records a completed task's stripes and reports whether the
// task's holder is now fully rebuilt — every stripe enqueued for it has
// been repaired — so the caller can re-register the replacement holder.
// A task from a generation superseded by Reset is void: its stripes
// count toward neither progress nor completion, and the trace hook sees
// the terminal "void" transition that balances its "enqueue". Done is
// idempotent: reporting a task again after its holder already completed
// is a no-op, not a second holderComplete=true.
func (r *Reconstructor) Done(t RepairTask) (holderComplete bool) {
	if t.Gen != r.gen[t.Holder] {
		r.notify("void", t)
		return false
	}
	left, open := r.remaining[t.Holder]
	if !open {
		// Duplicate Done for an already-completed holder: its stripes
		// were counted the first time, so a second report must not run
		// remaining negative or re-trigger re-integration.
		return false
	}
	r.notify("done", t)
	r.repaired += t.Stripes
	left -= t.Stripes
	if left > 0 {
		r.remaining[t.Holder] = left
		return false
	}
	delete(r.remaining, t.Holder)
	return true
}

// Remaining returns the stripes still to rebuild for one holder (0 once
// complete or never enqueued).
func (r *Reconstructor) Remaining(holder int) int { return r.remaining[holder] }

// Reset discards one holder's queued repair work and advances its
// generation, voiding any task the caller has already claimed but not
// yet reported Done. Server revival uses it when a returning blank
// server must be rebuilt from scratch: however far a previous adopter
// had come, the catch-up re-enqueues the holder's full chunk set.
func (r *Reconstructor) Reset(holder int) {
	kept := r.pending[:0]
	for _, t := range r.pending {
		if t.Holder != holder {
			kept = append(kept, t)
		} else {
			// Still-queued work discarded by the reset terminates here;
			// already-claimed work terminates when its stale Done lands.
			r.notify("void", t)
		}
	}
	r.pending = kept
	delete(r.remaining, holder)
	r.gen[holder]++
	r.notify("reset", RepairTask{Holder: holder, Gen: r.gen[holder]})
}

// Gen returns one holder's current repair generation (see Reset). The
// caller can stamp deferred completion work with it and drop the work
// if the generation has moved on — the holder was lost again.
func (r *Reconstructor) Gen(holder int) int { return r.gen[holder] }

// Delayed records one admission attempt pushed back by a busy GC window.
func (r *Reconstructor) Delayed() { r.delayed++ }

// Pending returns the queued task count.
func (r *Reconstructor) Pending() int { return len(r.pending) }

// RepairedStripes returns how many stripes have been rebuilt.
func (r *Reconstructor) RepairedStripes() int { return r.repaired }

// DelayCount returns how many admissions the GC gate pushed back.
func (r *Reconstructor) DelayCount() int { return r.delayed }
