package ec

// RepairTask is one unit of background reconstruction: rebuild the lost
// chunks of a contiguous batch of stripes onto their adopting holder.
// Batching keeps the repair queue (and the simulator's event count)
// proportional to lost capacity, not to individual pages.
type RepairTask struct {
	// Holder is the group-local index of the lost chunk holder.
	Holder int
	// FirstStripe and Stripes delimit the batch.
	FirstStripe int
	Stripes     int
}

// Reconstructor queues and accounts chunk-repair work for one stripe
// group. It is deliberately passive: the rack decides *when* a task may
// run (only in switch-observed GC idle windows, the same gate soft-GC
// requests pass) and calls Next to claim work; the reconstructor only
// tracks what remains. Per-holder remaining counts let the caller close
// the repair loop: Done reports when the last stripe of a holder has
// been rebuilt, the moment its replacement can be re-registered in the
// switch stripe tables.
type Reconstructor struct {
	pending  []RepairTask
	repaired int
	delayed  int
	// remaining tracks, per lost holder, the stripes still to rebuild.
	remaining map[int]int
}

// NewReconstructor returns an empty repair queue.
func NewReconstructor() *Reconstructor {
	return &Reconstructor{remaining: make(map[int]int)}
}

// Enqueue adds one repair task.
func (r *Reconstructor) Enqueue(t RepairTask) {
	r.pending = append(r.pending, t)
	r.remaining[t.Holder] += t.Stripes
}

// EnqueueChunk splits the repair of one lost holder's chunks over
// [0, stripes) into batch-sized tasks.
func (r *Reconstructor) EnqueueChunk(holder, stripes, batch int) {
	if batch < 1 {
		batch = 1
	}
	for first := 0; first < stripes; first += batch {
		n := batch
		if first+n > stripes {
			n = stripes - first
		}
		r.Enqueue(RepairTask{Holder: holder, FirstStripe: first, Stripes: n})
	}
}

// Next claims the oldest pending task; ok is false when the queue is
// drained.
func (r *Reconstructor) Next() (t RepairTask, ok bool) {
	if len(r.pending) == 0 {
		return RepairTask{}, false
	}
	t = r.pending[0]
	r.pending = r.pending[1:]
	return t, true
}

// Done records a completed task's stripes and reports whether the
// task's holder is now fully rebuilt — every stripe enqueued for it has
// been repaired — so the caller can re-register the replacement holder.
func (r *Reconstructor) Done(t RepairTask) (holderComplete bool) {
	r.repaired += t.Stripes
	left := r.remaining[t.Holder] - t.Stripes
	if left > 0 {
		r.remaining[t.Holder] = left
		return false
	}
	delete(r.remaining, t.Holder)
	return true
}

// Remaining returns the stripes still to rebuild for one holder (0 once
// complete or never enqueued).
func (r *Reconstructor) Remaining(holder int) int { return r.remaining[holder] }

// Delayed records one admission attempt pushed back by a busy GC window.
func (r *Reconstructor) Delayed() { r.delayed++ }

// Pending returns the queued task count.
func (r *Reconstructor) Pending() int { return len(r.pending) }

// RepairedStripes returns how many stripes have been rebuilt.
func (r *Reconstructor) RepairedStripes() int { return r.repaired }

// DelayCount returns how many admissions the GC gate pushed back.
func (r *Reconstructor) DelayCount() int { return r.delayed }
