package ec

import "testing"

// TestPlacementProperty asserts the rack-aware invariant for every
// (k, m, servers) combination the validator accepts in a bounded
// envelope: no stripe of any group ever places two chunks on the same
// server.
func TestPlacementProperty(t *testing.T) {
	for k := 1; k <= 8; k++ {
		for m := 1; m <= 4; m++ {
			for servers := 2; servers <= 12; servers++ {
				spec := Spec{K: k, M: m}
				if err := spec.Validate(servers); err != nil {
					continue // validator rejects; nothing to place
				}
				placer := Placer{Servers: servers, Width: spec.Width()}
				striper := Striper{Spec: spec}
				for group := 0; group < 2*servers; group++ {
					holderServer := placer.Place(group)
					if len(holderServer) != spec.Width() {
						t.Fatalf("RS(%d,%d)/%d servers: placement width %d",
							k, m, servers, len(holderServer))
					}
					seen := make(map[int]bool)
					for _, srv := range holderServer {
						if srv < 0 || srv >= servers {
							t.Fatalf("RS(%d,%d)/%d servers: server %d out of range", k, m, servers, srv)
						}
						if seen[srv] {
							t.Fatalf("RS(%d,%d)/%d servers group %d: two holders share server %d",
								k, m, servers, group, srv)
						}
						seen[srv] = true
					}
					// Per-stripe chunk->holder rotation must keep the k+m
					// chunks of any stripe on distinct holders (and thus,
					// by the above, on distinct servers).
					for stripe := 0; stripe < 3*spec.Width(); stripe++ {
						holders := striper.Holders(stripe)
						seenH := make(map[int]bool)
						for _, h := range holders {
							if h < 0 || h >= spec.Width() {
								t.Fatalf("RS(%d,%d) stripe %d: holder %d out of range", k, m, stripe, h)
							}
							if seenH[h] {
								t.Fatalf("RS(%d,%d) stripe %d: holder %d gets two chunks", k, m, stripe, h)
							}
							seenH[h] = true
						}
					}
				}
			}
		}
	}
}

// TestStriperRoundTrip checks the lpn <-> (stripe, pos) bijection and the
// data-holder rotation.
func TestStriperRoundTrip(t *testing.T) {
	s := Striper{Spec: Spec{K: 4, M: 2}}
	for lpn := 0; lpn < 1000; lpn++ {
		stripe, pos := s.Stripe(lpn)
		if got := s.LPN(stripe, pos); got != lpn {
			t.Fatalf("round trip %d -> (%d,%d) -> %d", lpn, stripe, pos, got)
		}
		h := s.DataHolder(stripe, pos)
		if h < 0 || h >= s.Spec.Width() {
			t.Fatalf("lpn %d: holder %d out of range", lpn, h)
		}
	}
	// Rotation spreads each data position over all holders.
	seen := make(map[int]bool)
	for stripe := 0; stripe < s.Spec.Width(); stripe++ {
		seen[s.DataHolder(stripe, 0)] = true
	}
	if len(seen) != s.Spec.Width() {
		t.Fatalf("position 0 visits %d holders, want %d", len(seen), s.Spec.Width())
	}
}
