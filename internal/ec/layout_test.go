package ec

import "testing"

// TestPlacementProperty asserts the rack-aware invariant for every
// (k, m, servers) combination the validator accepts in a bounded
// envelope: no stripe of any group ever places two chunks on the same
// server.
func TestPlacementProperty(t *testing.T) {
	for k := 1; k <= 8; k++ {
		for m := 1; m <= 4; m++ {
			for servers := 2; servers <= 12; servers++ {
				spec := Spec{K: k, M: m}
				if err := spec.Validate(servers); err != nil {
					continue // validator rejects; nothing to place
				}
				placer := Placer{Servers: servers, Width: spec.Width()}
				striper := Striper{Spec: spec}
				for group := 0; group < 2*servers; group++ {
					holderServer := placer.Place(group)
					if len(holderServer) != spec.Width() {
						t.Fatalf("RS(%d,%d)/%d servers: placement width %d",
							k, m, servers, len(holderServer))
					}
					seen := make(map[int]bool)
					for _, srv := range holderServer {
						if srv < 0 || srv >= servers {
							t.Fatalf("RS(%d,%d)/%d servers: server %d out of range", k, m, servers, srv)
						}
						if seen[srv] {
							t.Fatalf("RS(%d,%d)/%d servers group %d: two holders share server %d",
								k, m, servers, group, srv)
						}
						seen[srv] = true
					}
					// Per-stripe chunk->holder rotation must keep the k+m
					// chunks of any stripe on distinct holders (and thus,
					// by the above, on distinct servers).
					for stripe := 0; stripe < 3*spec.Width(); stripe++ {
						holders := striper.Holders(stripe)
						seenH := make(map[int]bool)
						for _, h := range holders {
							if h < 0 || h >= spec.Width() {
								t.Fatalf("RS(%d,%d) stripe %d: holder %d out of range", k, m, stripe, h)
							}
							if seenH[h] {
								t.Fatalf("RS(%d,%d) stripe %d: holder %d gets two chunks", k, m, stripe, h)
							}
							seenH[h] = true
						}
					}
				}
			}
		}
	}
}

// TestSpreadPlacementProperty asserts the multi-rack invariants for
// every (k, m, racks, servers/rack) combination the cluster validator
// accepts in a bounded envelope: no server holds more than one chunk of
// a group, no rack holds more than m, and any single whole-rack failure
// leaves at least k chunks of every stripe healthy.
func TestSpreadPlacementProperty(t *testing.T) {
	for k := 1; k <= 8; k++ {
		for m := 1; m <= 4; m++ {
			for racks := 2; racks <= 6; racks++ {
				for servers := 2; servers <= 8; servers++ {
					spec := Spec{K: k, M: m}
					if err := spec.ValidateCluster(racks, servers, PlaceSpread); err != nil {
						continue // validator rejects; nothing to place
					}
					placer := Placer{Servers: servers, Racks: racks,
						Width: spec.Width(), Mode: PlaceSpread, MaxPerRack: m}
					for group := 0; group < 3*racks*servers; group++ {
						holderServer := placer.Place(group)
						if len(holderServer) != spec.Width() {
							t.Fatalf("RS(%d,%d)/%dx%d: placement width %d",
								k, m, racks, servers, len(holderServer))
						}
						seenSrv := make(map[int]bool)
						perRack := make(map[int]int)
						for _, srv := range holderServer {
							if srv < 0 || srv >= placer.TotalServers() {
								t.Fatalf("RS(%d,%d)/%dx%d: server %d out of range",
									k, m, racks, servers, srv)
							}
							if seenSrv[srv] {
								t.Fatalf("RS(%d,%d)/%dx%d group %d: two holders share server %d",
									k, m, racks, servers, group, srv)
							}
							seenSrv[srv] = true
							perRack[placer.RackOf(srv)]++
						}
						for rack, n := range perRack {
							if n > m {
								t.Fatalf("RS(%d,%d)/%dx%d group %d: rack %d holds %d chunks > m",
									k, m, racks, servers, group, rack, n)
							}
						}
						// Any single-rack failure must leave >= k healthy
						// chunks of every stripe (each holder stores one
						// chunk of each).
						for rack := 0; rack < racks; rack++ {
							if spec.Width()-perRack[rack] < k {
								t.Fatalf("RS(%d,%d)/%dx%d group %d: losing rack %d leaves %d < k chunks",
									k, m, racks, servers, group, rack, spec.Width()-perRack[rack])
							}
						}
					}
				}
			}
		}
	}
}

// TestCompactClusterPlacementStaysInOneRack pins the compact mode's
// defining property on a multi-rack cluster: every group is confined to
// a single rack, on distinct servers.
func TestCompactClusterPlacementStaysInOneRack(t *testing.T) {
	placer := Placer{Servers: 6, Racks: 3, Width: 6, Mode: PlaceCompact}
	for group := 0; group < 18; group++ {
		servers := placer.Place(group)
		seen := make(map[int]bool)
		for _, srv := range servers {
			if placer.RackOf(srv) != placer.RackOf(servers[0]) {
				t.Fatalf("group %d spans racks: %v", group, servers)
			}
			if seen[srv] {
				t.Fatalf("group %d reuses server %d", group, srv)
			}
			seen[srv] = true
		}
	}
}

// TestSpreadValidatorRejectsUnderProvisionedClusters pins the validator
// boundary: too few racks for the per-rack cap, or too few servers per
// rack for the round-robin share.
func TestSpreadValidatorRejectsUnderProvisionedClusters(t *testing.T) {
	spec := Spec{K: 4, M: 2}
	if err := spec.ValidateCluster(2, 8, PlaceSpread); err == nil {
		t.Fatal("2 racks accepted for RS(4,2) spread; a rack would hold 3 > m chunks")
	}
	if err := spec.ValidateCluster(6, 1, PlaceSpread); err != nil {
		t.Fatalf("6x1 rejected: %v", err)
	}
	if err := spec.ValidateCluster(3, 2, PlaceSpread); err != nil {
		t.Fatalf("3x2 rejected: %v", err)
	}
	// Compact mode on one rack must keep the original rule: k+m servers.
	if err := spec.ValidateCluster(1, 5, PlaceCompact); err == nil {
		t.Fatal("5 servers accepted for width-6 compact placement")
	}
}

// TestStriperRoundTrip checks the lpn <-> (stripe, pos) bijection and the
// data-holder rotation.
func TestStriperRoundTrip(t *testing.T) {
	s := Striper{Spec: Spec{K: 4, M: 2}}
	for lpn := 0; lpn < 1000; lpn++ {
		stripe, pos := s.Stripe(lpn)
		if got := s.LPN(stripe, pos); got != lpn {
			t.Fatalf("round trip %d -> (%d,%d) -> %d", lpn, stripe, pos, got)
		}
		h := s.DataHolder(stripe, pos)
		if h < 0 || h >= s.Spec.Width() {
			t.Fatalf("lpn %d: holder %d out of range", lpn, h)
		}
	}
	// Rotation spreads each data position over all holders.
	seen := make(map[int]bool)
	for stripe := 0; stripe < s.Spec.Width(); stripe++ {
		seen[s.DataHolder(stripe, 0)] = true
	}
	if len(seen) != s.Spec.Width() {
		t.Fatalf("position 0 visits %d holders, want %d", len(seen), s.Spec.Width())
	}
}
