package ec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// FuzzECRoundTrip drives the RS codec with fuzzer-chosen data, spec, and
// erasure patterns: any <= m erasures must reconstruct the stripe
// byte-exactly, and any > m erasures must be reported as
// ErrStripeUnrecoverable rather than silently mis-decoded.
func FuzzECRoundTrip(f *testing.F) {
	f.Add(int64(1), []byte("rackblox stripes survive erasures"), uint8(4), uint8(2), uint8(2))
	f.Add(int64(2), []byte{0x00, 0xFF, 0x11}, uint8(1), uint8(1), uint8(1))
	f.Add(int64(3), []byte("beyond-m erasures must fail"), uint8(6), uint8(3), uint8(4))
	f.Add(int64(4), []byte{}, uint8(2), uint8(4), uint8(6))
	f.Fuzz(func(t *testing.T, seed int64, data []byte, kRaw, mRaw, eRaw uint8) {
		k := int(kRaw)%8 + 1
		m := int(mRaw)%4 + 1
		spec := Spec{K: k, M: m}
		codec, err := NewCodec(spec)
		if err != nil {
			t.Fatalf("NewCodec(%v): %v", spec, err)
		}

		// Shard the fuzz input into k equal data shards (>= 1 byte each).
		shardLen := len(data)/k + 1
		shards := make([][]byte, k+m)
		orig := make([][]byte, k)
		for i := 0; i < k; i++ {
			sh := make([]byte, shardLen)
			copy(sh, data[min(i*shardLen, len(data)):])
			orig[i] = append([]byte(nil), sh...)
			shards[i] = sh
		}
		parity, err := codec.Encode(shards[:k])
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		copy(shards[k:], parity)
		origParity := make([][]byte, m)
		for i, p := range parity {
			origParity[i] = append([]byte(nil), p...)
		}

		// Erase a seed-chosen subset of 0..k+m shards.
		erasures := int(eRaw) % (k + m + 1)
		rng := rand.New(rand.NewSource(seed))
		for _, idx := range rng.Perm(k + m)[:erasures] {
			shards[idx] = nil
		}

		err = codec.Reconstruct(shards)
		if erasures > m {
			if !errors.Is(err, ErrStripeUnrecoverable) {
				t.Fatalf("RS(%d,%d) with %d erasures: err = %v, want ErrStripeUnrecoverable",
					k, m, erasures, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("RS(%d,%d) with %d erasures: %v", k, m, erasures, err)
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(shards[i], orig[i]) {
				t.Fatalf("RS(%d,%d) data shard %d corrupted after reconstruction", k, m, i)
			}
		}
		for i := 0; i < m; i++ {
			if !bytes.Equal(shards[k+i], origParity[i]) {
				t.Fatalf("RS(%d,%d) parity shard %d corrupted after reconstruction", k, m, i)
			}
		}
	})
}
