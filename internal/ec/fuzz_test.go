package ec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// FuzzECRoundTrip drives the RS codec with fuzzer-chosen data, spec, and
// erasure patterns: any <= m erasures must reconstruct the stripe
// byte-exactly, and any > m erasures must be reported as
// ErrStripeUnrecoverable rather than silently mis-decoded. When the
// spec admits a local-parity layout, the same stripe also round-trips
// through the LRC repair paths: a single erasure repairs by rack-local
// XOR, and every recoverable pattern rebuilds each lost chunk from the
// XOR of per-rack aggregates (the one-chunk-per-remote-rack plan).
func FuzzECRoundTrip(f *testing.F) {
	f.Add(int64(1), []byte("rackblox stripes survive erasures"), uint8(4), uint8(2), uint8(2))
	f.Add(int64(2), []byte{0x00, 0xFF, 0x11}, uint8(1), uint8(1), uint8(1))
	f.Add(int64(3), []byte("beyond-m erasures must fail"), uint8(6), uint8(3), uint8(4))
	f.Add(int64(4), []byte{}, uint8(2), uint8(4), uint8(6))
	// Local-parity geometries: LRC(4,2) over 3 racks with single and
	// multi erasures, and the mirroring degenerate LRC(1,1).
	f.Add(int64(5), []byte("local parity repairs inside the rack"), uint8(3), uint8(1), uint8(1))
	f.Add(int64(6), []byte("aggregated repair ships one chunk per rack"), uint8(3), uint8(1), uint8(2))
	f.Add(int64(7), []byte("lrc(1,1)"), uint8(0), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, data []byte, kRaw, mRaw, eRaw uint8) {
		k := int(kRaw)%8 + 1
		m := int(mRaw)%4 + 1
		spec := Spec{K: k, M: m}
		codec, err := NewCodec(spec)
		if err != nil {
			t.Fatalf("NewCodec(%v): %v", spec, err)
		}

		// Shard the fuzz input into k equal data shards (>= 1 byte each).
		shardLen := len(data)/k + 1
		shards := make([][]byte, k+m)
		orig := make([][]byte, k)
		for i := 0; i < k; i++ {
			sh := make([]byte, shardLen)
			copy(sh, data[min(i*shardLen, len(data)):])
			orig[i] = append([]byte(nil), sh...)
			shards[i] = sh
		}
		parity, err := codec.Encode(shards[:k])
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		copy(shards[k:], parity)
		origParity := make([][]byte, m)
		for i, p := range parity {
			origParity[i] = append([]byte(nil), p...)
		}

		// Erase a seed-chosen subset of 0..k+m shards.
		erasures := int(eRaw) % (k + m + 1)
		rng := rand.New(rand.NewSource(seed))
		lost := append([]int(nil), rng.Perm(k + m)[:erasures]...)
		for _, idx := range lost {
			shards[idx] = nil
		}

		err = codec.Reconstruct(shards)
		if erasures > m {
			if !errors.Is(err, ErrStripeUnrecoverable) {
				t.Fatalf("RS(%d,%d) with %d erasures: err = %v, want ErrStripeUnrecoverable",
					k, m, erasures, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("RS(%d,%d) with %d erasures: %v", k, m, erasures, err)
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(shards[i], orig[i]) {
				t.Fatalf("RS(%d,%d) data shard %d corrupted after reconstruction", k, m, i)
			}
		}
		for i := 0; i < m; i++ {
			if !bytes.Equal(shards[k+i], origParity[i]) {
				t.Fatalf("RS(%d,%d) parity shard %d corrupted after reconstruction", k, m, i)
			}
		}

		// Local-parity layout round-trip on the same stripe and erasure
		// set, over the smallest rack count the LRC validator accepts.
		full := append(append([][]byte{}, orig...), origParity...)
		racks := (k + m + m - 1) / m
		servers := (k+m+racks-1)/racks + 1
		if spec.ValidateClusterLocal(racks, servers, PlaceSpread) != nil {
			return
		}
		placer := Placer{Servers: servers, Racks: racks,
			Width: k + m, Mode: PlaceSpread, MaxPerRack: m}
		placed := placer.Place(int(eRaw))
		isLost := make(map[int]bool, len(lost))
		for _, idx := range lost {
			isLost[idx] = true
		}
		rackMembers := make(map[int][]int) // rack -> stripe positions
		for i, srv := range placed {
			r := placer.RackOf(srv)
			rackMembers[r] = append(rackMembers[r], i)
		}
		for _, idx := range lost {
			rack := placer.RackOf(placed[idx])
			soleLocalLoss := true
			for _, i := range rackMembers[rack] {
				if i != idx && isLost[i] {
					soleLocalLoss = false
				}
			}
			var rebuilt []byte
			if soleLocalLoss {
				// Zero-spine plan: XOR the rack's survivors with its
				// local parity (itself the XOR of all the rack's chunks).
				parts := make([][]byte, 0, len(rackMembers[rack])+1)
				lp, err := XORParity(collect(full, rackMembers[rack]))
				if err != nil {
					t.Fatalf("LRC(%d,%d): local parity: %v", k, m, err)
				}
				parts = append(parts, lp)
				for _, i := range rackMembers[rack] {
					if i != idx {
						parts = append(parts, full[i])
					}
				}
				rebuilt, err = XORParity(parts)
				if err != nil {
					t.Fatalf("LRC(%d,%d): local repair: %v", k, m, err)
				}
			} else {
				// Aggregated plan: one GF partial sum per involved rack,
				// XOR-combined.
				rows := make([]int, 0, k)
				for i := 0; i < k+m && len(rows) < k; i++ {
					if !isLost[i] {
						rows = append(rows, i)
					}
				}
				coeffs, err := codec.RepairCoefficients(idx, rows)
				if err != nil {
					t.Fatalf("LRC(%d,%d): coefficients for %d: %v", k, m, idx, err)
				}
				byRack := make(map[int][]int) // rack -> indices into rows
				for i, r := range rows {
					rk := placer.RackOf(placed[r])
					byRack[rk] = append(byRack[rk], i)
				}
				rebuilt = make([]byte, shardLen)
				for _, idxs := range byRack {
					c := make([]byte, len(idxs))
					sh := make([][]byte, len(idxs))
					for j, i := range idxs {
						c[j] = coeffs[i]
						sh[j] = full[rows[i]]
					}
					agg, err := AggregateChunk(c, sh)
					if err != nil {
						t.Fatalf("LRC(%d,%d): aggregate: %v", k, m, err)
					}
					for b, v := range agg {
						rebuilt[b] ^= v
					}
				}
			}
			if !bytes.Equal(rebuilt, full[idx]) {
				t.Fatalf("LRC(%d,%d) racks=%d lost=%v: chunk %d repaired wrong (local=%v)",
					k, m, racks, lost, idx, soleLocalLoss)
			}
		}
	})
}

// collect gathers the chunks at the given stripe positions.
func collect(shards [][]byte, idxs []int) [][]byte {
	out := make([][]byte, len(idxs))
	for j, i := range idxs {
		out[j] = shards[i]
	}
	return out
}
