package ec

import "fmt"

// Striper maps a volume's logical pages onto stripes of k data chunks and
// assigns every chunk of a stripe to one of the k+m chunk holders. Parity
// rotates with the stripe index (RAID-5 style) so no holder becomes a
// dedicated parity device: each holder stores exactly one chunk of every
// stripe, at local page number == stripe index.
type Striper struct {
	Spec Spec
}

// Stripe returns the stripe index and the data-chunk position within the
// stripe for a logical page.
func (s Striper) Stripe(lpn int) (stripe, pos int) {
	return lpn / s.Spec.K, lpn % s.Spec.K
}

// LPN is the inverse of Stripe.
func (s Striper) LPN(stripe, pos int) int { return stripe*s.Spec.K + pos }

// DataHolder returns the holder index (into the stripe group's k+m
// members) storing data chunk pos of a stripe.
func (s Striper) DataHolder(stripe, pos int) int {
	return (stripe + pos) % s.Spec.Width()
}

// ParityHolders returns the holder indices storing a stripe's m parity
// chunks, in parity order.
func (s Striper) ParityHolders(stripe int) []int {
	out := make([]int, s.Spec.M)
	for j := 0; j < s.Spec.M; j++ {
		out[j] = (stripe + s.Spec.K + j) % s.Spec.Width()
	}
	return out
}

// Holders returns every holder index of a stripe in chunk order: the k
// data chunks first, then the m parity chunks. The rotation keeps all
// k+m distinct for any stripe.
func (s Striper) Holders(stripe int) []int {
	out := make([]int, 0, s.Spec.Width())
	for p := 0; p < s.Spec.K; p++ {
		out = append(out, s.DataHolder(stripe, p))
	}
	return append(out, s.ParityHolders(stripe)...)
}

// PlacementMode selects how a stripe group's chunk holders map onto the
// cluster's rack fault domains.
type PlacementMode int

const (
	// PlaceCompact confines each group to a single rack (distinct servers
	// within it) — the original rack-aware placement. A whole-rack failure
	// loses every chunk of the groups homed there.
	PlaceCompact PlacementMode = iota
	// PlaceSpread distributes each group's chunks round-robin across rack
	// fault domains, never more than MaxPerRack chunks per rack, so losing
	// an entire rack (or its ToR) still leaves >= k chunks of every stripe.
	PlaceSpread
)

func (m PlacementMode) String() string {
	if m == PlaceSpread {
		return "spread"
	}
	return "compact"
}

// Placer assigns the k+m chunk holders of each stripe group to distinct
// storage servers, optionally across multiple rack fault domains. Groups
// rotate their starting server so load spreads; within one group no two
// holders ever share a server — the invariant that makes any
// single-server failure cost at most one chunk per stripe. Under
// PlaceSpread no rack holds more than MaxPerRack chunks of a group, the
// invariant that keeps a whole-rack failure recoverable.
type Placer struct {
	// Servers is the storage-server count per rack (the total count when
	// Racks <= 1).
	Servers int
	// Racks is the number of rack fault domains; 0 or 1 means one rack.
	Racks int
	// Width is the chunk count per stripe, k+m.
	Width int
	// Mode selects compact (single-rack) or spread (multi-rack) placement.
	Mode PlacementMode
	// MaxPerRack caps chunks per rack under PlaceSpread; typically m.
	MaxPerRack int
}

// racks normalizes the rack count.
func (p Placer) racks() int {
	if p.Racks < 1 {
		return 1
	}
	return p.Racks
}

// TotalServers is the cluster-wide server count.
func (p Placer) TotalServers() int { return p.racks() * p.Servers }

// RackOf maps a global server index to its rack fault domain.
func (p Placer) RackOf(server int) int { return server / p.Servers }

// Place returns the global server index hosting each of a group's Width
// chunk holders. All returned servers are distinct; under PlaceSpread no
// rack receives more than MaxPerRack of them (validated by
// Spec.ValidateCluster). Compact placement requires Width <= Servers —
// no in-rack rotation can fit more chunks than servers without a
// collision — so Place panics on that geometry instead of silently
// wrapping two chunks onto one server; Spec.ValidateCluster rejects it
// with an error for config-path callers.
func (p Placer) Place(group int) []int {
	if p.Mode == PlaceSpread && p.racks() > 1 {
		return p.placeSpread(group)
	}
	if p.Width > p.Servers {
		panic(fmt.Sprintf(
			"ec: compact placement of %d chunks over %d servers per rack would co-locate two chunks of one stripe; validate the geometry with Spec.ValidateCluster",
			p.Width, p.Servers))
	}
	out := make([]int, p.Width)
	if p.racks() == 1 {
		start := (group * p.Width) % p.Servers
		for i := 0; i < p.Width; i++ {
			out[i] = (start + i) % p.Servers
		}
		return out
	}
	// Compact on a multi-rack cluster: the whole group lives in one rack,
	// groups rotating over racks and over in-rack starting servers.
	rack := group % p.racks()
	start := ((group / p.racks()) * p.Width) % p.Servers
	for i := 0; i < p.Width; i++ {
		out[i] = rack*p.Servers + (start+i)%p.Servers
	}
	return out
}

// placeSpread assigns chunk i to rack (group+i) mod Racks, skipping
// racks already at the MaxPerRack cap or out of servers (with the
// validated racks >= ceil(width/cap) the round-robin never actually
// hits either limit; the skip enforces the cap for direct Placer users
// too). Within each rack, slots fill sequentially from a group-rotated
// offset, so holders stay on distinct servers. If every rack is capped
// the remaining chunks overflow round-robin onto racks with free
// servers: a full placement with a violated cap beats a partial one.
func (p Placer) placeSpread(group int) []int {
	out := make([]int, p.Width)
	slot := make([]int, p.racks())
	rot := group % p.Servers
	place := func(i, rack int) {
		out[i] = rack*p.Servers + (rot+slot[rack])%p.Servers
		slot[rack]++
	}
	for i := 0; i < p.Width; i++ {
		rack := (group + i) % p.racks()
		placed := false
		for d := 0; d < p.racks(); d++ {
			c := (rack + d) % p.racks()
			if slot[c] >= p.Servers || (p.MaxPerRack > 0 && slot[c] >= p.MaxPerRack) {
				continue
			}
			place(i, c)
			placed = true
			break
		}
		if placed {
			continue
		}
		for d := 0; d < p.racks(); d++ { // all capped: ignore MaxPerRack
			c := (rack + d) % p.racks()
			if slot[c] < p.Servers {
				place(i, c)
				break
			}
		}
	}
	return out
}
