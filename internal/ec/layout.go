package ec

// Striper maps a volume's logical pages onto stripes of k data chunks and
// assigns every chunk of a stripe to one of the k+m chunk holders. Parity
// rotates with the stripe index (RAID-5 style) so no holder becomes a
// dedicated parity device: each holder stores exactly one chunk of every
// stripe, at local page number == stripe index.
type Striper struct {
	Spec Spec
}

// Stripe returns the stripe index and the data-chunk position within the
// stripe for a logical page.
func (s Striper) Stripe(lpn int) (stripe, pos int) {
	return lpn / s.Spec.K, lpn % s.Spec.K
}

// LPN is the inverse of Stripe.
func (s Striper) LPN(stripe, pos int) int { return stripe*s.Spec.K + pos }

// DataHolder returns the holder index (into the stripe group's k+m
// members) storing data chunk pos of a stripe.
func (s Striper) DataHolder(stripe, pos int) int {
	return (stripe + pos) % s.Spec.Width()
}

// ParityHolders returns the holder indices storing a stripe's m parity
// chunks, in parity order.
func (s Striper) ParityHolders(stripe int) []int {
	out := make([]int, s.Spec.M)
	for j := 0; j < s.Spec.M; j++ {
		out[j] = (stripe + s.Spec.K + j) % s.Spec.Width()
	}
	return out
}

// Holders returns every holder index of a stripe in chunk order: the k
// data chunks first, then the m parity chunks. The rotation keeps all
// k+m distinct for any stripe.
func (s Striper) Holders(stripe int) []int {
	out := make([]int, 0, s.Spec.Width())
	for p := 0; p < s.Spec.K; p++ {
		out = append(out, s.DataHolder(stripe, p))
	}
	return append(out, s.ParityHolders(stripe)...)
}

// Placer assigns the k+m chunk holders of each stripe group to distinct
// storage servers. Groups rotate their starting server so load spreads
// across the rack; within one group no two holders ever share a server —
// the invariant that makes any single-server failure cost at most one
// chunk per stripe.
type Placer struct {
	// Servers is the rack's storage-server count.
	Servers int
	// Width is the chunk count per stripe, k+m.
	Width int
}

// Place returns the server index hosting each of a group's Width chunk
// holders. All returned servers are distinct (Width <= Servers is
// enforced by Spec.Validate).
func (p Placer) Place(group int) []int {
	out := make([]int, p.Width)
	start := (group * p.Width) % p.Servers
	for i := 0; i < p.Width; i++ {
		out[i] = (start + i) % p.Servers
	}
	return out
}
