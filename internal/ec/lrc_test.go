package ec

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestXORParityLocalRepair checks the local-parity identity: the parity
// of a rack's chunks recovers any single missing chunk from the rack's
// survivors plus the parity — the zero-spine repair path.
func TestXORParityLocalRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 5} {
		chunks := randShards(rng, n, 96)
		parity, err := XORParity(chunks)
		if err != nil {
			t.Fatal(err)
		}
		for lost := 0; lost < n; lost++ {
			survivors := [][]byte{parity}
			for i, c := range chunks {
				if i != lost {
					survivors = append(survivors, c)
				}
			}
			got, err := XORParity(survivors)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, chunks[lost]) {
				t.Fatalf("n=%d lost=%d: local XOR repair differs from original", n, lost)
			}
		}
	}
	if _, err := XORParity(nil); err == nil {
		t.Error("XORParity of zero chunks accepted")
	}
	if _, err := XORParity([][]byte{make([]byte, 4), make([]byte, 5)}); err == nil {
		t.Error("ragged chunks accepted")
	}
}

// TestAggregatedRepairByteIdentity checks the aggregated (rack-aware)
// repair identity end to end: for every lost position and every set of
// k survivors grouped by a spread placement's racks, the XOR of the
// per-rack AggregateChunk partial sums equals the lost chunk — so each
// remote rack really can ship one aggregate instead of its raw
// survivors.
func TestAggregatedRepairByteIdentity(t *testing.T) {
	spec := Spec{K: 4, M: 2}
	codec, err := NewCodec(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	data := randShards(rng, spec.K, 128)
	parity, err := codec.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := append(append([][]byte{}, data...), parity...)

	placer := Placer{Servers: 3, Racks: 3, Width: spec.Width(),
		Mode: PlaceSpread, MaxPerRack: spec.M}
	placed := placer.Place(0)

	for lost := 0; lost < spec.Width(); lost++ {
		// Take the first k survivors in position order.
		rows := make([]int, 0, spec.K)
		for i := 0; i < spec.Width() && len(rows) < spec.K; i++ {
			if i != lost {
				rows = append(rows, i)
			}
		}
		coeffs, err := codec.RepairCoefficients(lost, rows)
		if err != nil {
			t.Fatalf("lost %d: %v", lost, err)
		}
		// Group the survivor terms by the rack hosting each position and
		// combine each rack's contribution locally.
		byRack := make(map[int][]int) // rack -> indices into rows
		for i, r := range rows {
			byRack[placer.RackOf(placed[r])] = append(byRack[placer.RackOf(placed[r])], i)
		}
		rebuilt := make([]byte, 128)
		racksInvolved := 0
		for _, idx := range byRack {
			racksInvolved++
			c := make([]byte, len(idx))
			sh := make([][]byte, len(idx))
			for j, i := range idx {
				c[j] = coeffs[i]
				sh[j] = shards[rows[i]]
			}
			agg, err := AggregateChunk(c, sh)
			if err != nil {
				t.Fatalf("lost %d: %v", lost, err)
			}
			for b, v := range agg {
				rebuilt[b] ^= v
			}
		}
		if racksInvolved < 2 {
			t.Fatalf("lost %d: survivors landed in %d rack — test geometry broken", lost, racksInvolved)
		}
		if !bytes.Equal(rebuilt, shards[lost]) {
			t.Fatalf("lost %d: XOR of %d rack aggregates differs from the lost chunk",
				lost, racksInvolved)
		}
	}

	// Input validation.
	if _, err := codec.RepairCoefficients(0, []int{0, 1, 2, 3}); err == nil {
		t.Error("lost position listed as survivor accepted")
	}
	if _, err := codec.RepairCoefficients(0, []int{1, 2, 3}); err == nil {
		t.Error("k-1 survivor rows accepted")
	}
	if _, err := codec.RepairCoefficients(6, []int{0, 1, 2, 3}); err == nil {
		t.Error("out-of-range lost position accepted")
	}
	if _, err := AggregateChunk([]byte{1, 2}, [][]byte{make([]byte, 4)}); err == nil {
		t.Error("coefficient/chunk count mismatch accepted")
	}
}

// TestValidateClusterLocal pins the LRC layout validator's boundary:
// spread multi-rack topologies with one spare server per rack pass;
// compact mode, single racks, and racks too small for the global share
// plus a local parity are rejected.
func TestValidateClusterLocal(t *testing.T) {
	spec := Spec{K: 4, M: 2}
	if err := spec.ValidateClusterLocal(3, 6, PlaceSpread); err != nil {
		t.Errorf("3x6 rejected: %v", err)
	}
	if err := spec.ValidateClusterLocal(3, 3, PlaceSpread); err != nil {
		t.Errorf("3x3 rejected (2 global + 1 local parity fit): %v", err)
	}
	if err := spec.ValidateClusterLocal(3, 2, PlaceSpread); err == nil {
		t.Error("3x2 accepted: no server left for the local parity")
	}
	if err := spec.ValidateClusterLocal(2, 8, PlaceSpread); err == nil {
		t.Error("2 racks accepted: a rack would hold 3 > m global chunks")
	}
	if err := spec.ValidateClusterLocal(1, 12, PlaceSpread); err == nil {
		t.Error("single rack accepted for a local-parity layout")
	}
	if err := spec.ValidateClusterLocal(3, 6, PlaceCompact); err == nil {
		t.Error("compact placement accepted for a local-parity layout")
	}
	if got := spec.LocalString(); got != "LRC(4,2)" {
		t.Errorf("LocalString = %q", got)
	}
}

// TestLocalParityServersProperty asserts, over the validator's accepted
// envelope, that every occupied rack gets exactly one local parity
// server, in that rack, distinct from every global chunk server.
func TestLocalParityServersProperty(t *testing.T) {
	for k := 1; k <= 8; k++ {
		for m := 1; m <= 4; m++ {
			for racks := 2; racks <= 6; racks++ {
				for servers := 2; servers <= 8; servers++ {
					spec := Spec{K: k, M: m}
					if spec.ValidateClusterLocal(racks, servers, PlaceSpread) != nil {
						continue
					}
					placer := Placer{Servers: servers, Racks: racks,
						Width: spec.Width(), Mode: PlaceSpread, MaxPerRack: m}
					for group := 0; group < 2*racks*servers; group++ {
						placed := placer.Place(group)
						lp := placer.LocalParityServers(group, placed)
						occupied := make(map[int]bool)
						taken := make(map[int]bool)
						for _, srv := range placed {
							occupied[placer.RackOf(srv)] = true
							taken[srv] = true
						}
						if len(lp) != len(occupied) {
							t.Fatalf("LRC(%d,%d)/%dx%d group %d: %d parity servers for %d occupied racks",
								k, m, racks, servers, group, len(lp), len(occupied))
						}
						seenRack := make(map[int]bool)
						for _, srv := range lp {
							rack := placer.RackOf(srv)
							if !occupied[rack] {
								t.Fatalf("LRC(%d,%d)/%dx%d group %d: parity in unoccupied rack %d",
									k, m, racks, servers, group, rack)
							}
							if seenRack[rack] {
								t.Fatalf("LRC(%d,%d)/%dx%d group %d: two parities in rack %d",
									k, m, racks, servers, group, rack)
							}
							seenRack[rack] = true
							if taken[srv] {
								t.Fatalf("LRC(%d,%d)/%dx%d group %d: parity server %d already holds a global chunk",
									k, m, racks, servers, group, srv)
							}
						}
					}
				}
			}
		}
	}
}
