package ec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// randShards builds k deterministic pseudo-random data shards.
func randShards(rng *rand.Rand, k, size int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

// TestDegradedReconstruct kills up to m chunk holders in every spec and
// asserts reads of the surviving stripe still return the original data.
func TestDegradedReconstruct(t *testing.T) {
	cases := []struct {
		k, m int
		kill [][]int // shard-index sets to erase, each with <= m members
	}{
		{k: 2, m: 1, kill: [][]int{{0}, {1}, {2}}},
		{k: 4, m: 2, kill: [][]int{{0}, {5}, {0, 1}, {0, 4}, {4, 5}, {2, 3}}},
		{k: 3, m: 3, kill: [][]int{{0, 1, 2}, {3, 4, 5}, {0, 3, 5}, {1, 2, 4}}},
		{k: 6, m: 3, kill: [][]int{{0, 4, 8}, {6, 7, 8}, {1, 2, 3}}},
		{k: 1, m: 2, kill: [][]int{{0}, {0, 1}, {0, 2}, {1, 2}}},
	}
	for _, tc := range cases {
		codec, err := NewCodec(Spec{K: tc.k, M: tc.m})
		if err != nil {
			t.Fatalf("RS(%d,%d): %v", tc.k, tc.m, err)
		}
		rng := rand.New(rand.NewSource(int64(tc.k*100 + tc.m)))
		data := randShards(rng, tc.k, 512)
		parity, err := codec.Encode(data)
		if err != nil {
			t.Fatalf("RS(%d,%d) encode: %v", tc.k, tc.m, err)
		}
		for _, kill := range tc.kill {
			if len(kill) > tc.m {
				t.Fatalf("test bug: killing %d > m=%d", len(kill), tc.m)
			}
			shards := make([][]byte, tc.k+tc.m)
			for i := 0; i < tc.k; i++ {
				shards[i] = append([]byte(nil), data[i]...)
			}
			for i := 0; i < tc.m; i++ {
				shards[tc.k+i] = append([]byte(nil), parity[i]...)
			}
			for _, dead := range kill {
				shards[dead] = nil
			}
			if err := codec.Reconstruct(shards); err != nil {
				t.Fatalf("RS(%d,%d) kill %v: %v", tc.k, tc.m, kill, err)
			}
			for i := 0; i < tc.k; i++ {
				if !bytes.Equal(shards[i], data[i]) {
					t.Errorf("RS(%d,%d) kill %v: data shard %d corrupted", tc.k, tc.m, kill, i)
				}
			}
			for i := 0; i < tc.m; i++ {
				if !bytes.Equal(shards[tc.k+i], parity[i]) {
					t.Errorf("RS(%d,%d) kill %v: parity shard %d corrupted", tc.k, tc.m, kill, i)
				}
			}
		}
	}
}

// TestUnrecoverable asserts m+1 erasures surface the typed error.
func TestUnrecoverable(t *testing.T) {
	for _, spec := range []Spec{{K: 2, M: 1}, {K: 4, M: 2}, {K: 3, M: 3}} {
		codec, err := NewCodec(spec)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		data := randShards(rng, spec.K, 64)
		parity, err := codec.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		shards := make([][]byte, spec.Width())
		copy(shards, data)
		copy(shards[spec.K:], parity)
		for i := 0; i <= spec.M; i++ { // m+1 erasures
			shards[i] = nil
		}
		err = codec.Reconstruct(shards)
		if !errors.Is(err, ErrStripeUnrecoverable) {
			t.Errorf("%v with %d erasures: got %v, want ErrStripeUnrecoverable",
				spec, spec.M+1, err)
		}
	}
}

// TestEncodeRejectsRaggedShards guards the codec's input validation.
func TestEncodeRejectsRaggedShards(t *testing.T) {
	codec, err := NewCodec(Spec{K: 2, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Encode([][]byte{make([]byte, 8)}); err == nil {
		t.Error("short shard list accepted")
	}
	if _, err := codec.Encode([][]byte{make([]byte, 8), make([]byte, 9)}); err == nil {
		t.Error("ragged shards accepted")
	}
}

// TestSpecValidate covers the parameter envelope.
func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec    Spec
		servers int
		ok      bool
	}{
		{Spec{K: 4, M: 2}, 6, true},
		{Spec{K: 4, M: 2}, 5, false}, // not enough servers to spread a stripe
		{Spec{K: 0, M: 2}, 6, false},
		{Spec{K: 4, M: 0}, 6, false},
		{Spec{K: 1, M: 1}, 2, true}, // mirroring degenerate case
		{Spec{K: 120, M: 10}, 200, false},
	}
	for _, tc := range cases {
		err := tc.spec.Validate(tc.servers)
		if (err == nil) != tc.ok {
			t.Errorf("%v with %d servers: got err=%v, want ok=%v", tc.spec, tc.servers, err, tc.ok)
		}
	}
}

// TestGFArithmetic sanity-checks the field: every nonzero element has an
// inverse and multiplication distributes over addition (xor).
func TestGFArithmetic(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) != 1 for a=%d: %d", a, got)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails for %d,%d,%d", a, b, c)
		}
	}
}

// TestReconstructor exercises the repair queue's batching and accounting.
func TestReconstructor(t *testing.T) {
	r := NewReconstructor()
	r.EnqueueChunk(3, 130, 64)
	if r.Pending() != 3 { // 64 + 64 + 2
		t.Fatalf("pending = %d, want 3", r.Pending())
	}
	total := 0
	for {
		task, ok := r.Next()
		if !ok {
			break
		}
		if task.Holder != 3 {
			t.Fatalf("holder = %d, want 3", task.Holder)
		}
		total += task.Stripes
		r.Done(task)
	}
	if total != 130 || r.RepairedStripes() != 130 {
		t.Fatalf("repaired %d/%d stripes, want 130", total, r.RepairedStripes())
	}
}

// TestReconstructorNextUpTo exercises the token-sized splitting the
// repair pacer relies on: a large enqueued batch is claimed in limit-
// sized prefixes covering contiguous disjoint stripe ranges, completion
// accounting still converges, and a Reset mid-split voids the claimed
// prefix along with the queued remainder.
func TestReconstructorNextUpTo(t *testing.T) {
	r := NewReconstructor()
	r.EnqueueChunk(2, 100, 64) // tasks of 64 + 36 stripes

	covered := make(map[int]bool)
	claims := 0
	for {
		task, ok := r.NextUpTo(10)
		if !ok {
			break
		}
		claims++
		if task.Holder != 2 {
			t.Fatalf("holder = %d, want 2", task.Holder)
		}
		if task.Stripes > 10 {
			t.Fatalf("claim of %d stripes exceeds the 10-stripe limit", task.Stripes)
		}
		for s := task.FirstStripe; s < task.FirstStripe+task.Stripes; s++ {
			if covered[s] {
				t.Fatalf("stripe %d claimed twice", s)
			}
			covered[s] = true
		}
		if done := r.Done(task); done != (len(covered) == 100) {
			t.Fatalf("Done reported completion %v with %d/100 stripes", done, len(covered))
		}
	}
	if len(covered) != 100 || claims != 11 { // ceil(64/10)+ceil(36/10) splits
		t.Fatalf("covered %d stripes in %d claims, want 100 in 11", len(covered), claims)
	}
	if r.RepairedStripes() != 100 || r.Remaining(2) != 0 {
		t.Fatalf("repaired %d, remaining %d", r.RepairedStripes(), r.Remaining(2))
	}

	// A limit below 1 claims a single stripe; the remainder keeps its
	// generation so Reset voids both halves.
	r.EnqueueChunk(5, 3, 64)
	one, ok := r.NextUpTo(0)
	if !ok || one.Stripes != 1 {
		t.Fatalf("NextUpTo(0) = %+v, %v; want a one-stripe claim", one, ok)
	}
	r.Reset(5)
	if r.Done(one) {
		t.Fatal("stale split claim completed a reset holder")
	}
	if r.Pending() != 0 {
		t.Fatalf("pending after reset = %d", r.Pending())
	}
}
