package ec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDoneIdempotentAfterHolderComplete is the regression test for the
// double-report bug: a duplicate Done for an already-completed holder
// used to drive remaining through the left > 0 guard (0 - stripes < 0)
// and return a second spurious holderComplete=true, re-triggering
// re-integration.
func TestDoneIdempotentAfterHolderComplete(t *testing.T) {
	r := NewReconstructor()
	r.EnqueueChunk(3, 64, 64)
	task, ok := r.Next()
	if !ok {
		t.Fatal("no task")
	}
	if !r.Done(task) {
		t.Fatal("first Done did not complete the holder")
	}
	if r.Done(task) {
		t.Fatal("duplicate Done reported holderComplete=true again")
	}
	if got := r.RepairedStripes(); got != 64 {
		t.Fatalf("duplicate Done double-counted repairs: %d, want 64", got)
	}
	if got := r.Remaining(3); got != 0 {
		t.Fatalf("remaining after duplicate Done = %d, want 0", got)
	}
	// A fresh enqueue for the same holder starts clean.
	r.EnqueueChunk(3, 10, 64)
	task, _ = r.Next()
	if !r.Done(task) {
		t.Fatal("re-enqueued holder did not complete")
	}
}

// stripeLedger tallies TraceHook transitions in stripes, not tasks:
// NextUpTo splits one enqueued task into several terminal reports, so
// only the stripe counts can balance.
type stripeLedger struct{ enqueued, done, void, resets int }

func (l *stripeLedger) hook(op string, t RepairTask) {
	switch op {
	case "enqueue":
		l.enqueued += t.Stripes
	case "done":
		l.done += t.Stripes
	case "void":
		l.void += t.Stripes
	case "reset":
		l.resets++
	}
}

// TestTraceHookVoidBalance is the regression test for the skipped
// terminal transition: tasks superseded by Reset — whether still queued
// or already claimed — used to emit "enqueue" with no matching terminal
// op, so flight-recorder queue accounting could never balance. Every
// enqueued stripe must now reach exactly one of "done" or "void".
func TestTraceHookVoidBalance(t *testing.T) {
	r := NewReconstructor()
	var ledger stripeLedger
	r.TraceHook = ledger.hook

	r.EnqueueChunk(1, 100, 64) // tasks of 64 + 36
	claimed, _ := r.NextUpTo(10)
	r.Reset(1) // voids the queued 90, leaves the claimed 10 in flight
	if ledger.void != 90 {
		t.Fatalf("Reset voided %d stripes, want 90 (the queued remainder)", ledger.void)
	}
	if r.Done(claimed) {
		t.Fatal("stale claim completed a reset holder")
	}
	if ledger.void != 100 {
		t.Fatalf("stale Done voided %d stripes total, want 100", ledger.void)
	}

	// The holder's re-enqueued rebuild completes normally.
	r.EnqueueChunk(1, 20, 64)
	task, _ := r.Next()
	if !r.Done(task) {
		t.Fatal("re-enqueued rebuild did not complete")
	}
	if ledger.enqueued != ledger.done+ledger.void {
		t.Fatalf("unbalanced ledger: enqueued %d != done %d + void %d",
			ledger.enqueued, ledger.done, ledger.void)
	}
	if ledger.done != 20 || ledger.resets != 1 {
		t.Fatalf("done=%d resets=%d, want 20 and 1", ledger.done, ledger.resets)
	}
}

// TestCompactPlacementRejectsWidthOverServers is the regression test for
// the compact-mode holder collision: with Width > Servers the in-rack
// rotation (start+i) % Servers must wrap two chunks onto one server, so
// the geometry is rejected — ValidateCluster returns an error on the
// config path and Place panics for direct Placer users instead of
// silently violating the distinct-servers invariant.
func TestCompactPlacementRejectsWidthOverServers(t *testing.T) {
	spec := Spec{K: 4, M: 2}
	if err := spec.ValidateCluster(1, 5, PlaceCompact); err == nil {
		t.Error("ValidateCluster accepted width-6 compact placement on 5 servers")
	}
	if err := spec.ValidateCluster(3, 5, PlaceCompact); err == nil {
		t.Error("ValidateCluster accepted width-6 compact placement on 5-server racks")
	}
	for _, placer := range []Placer{
		{Servers: 5, Width: 6, Mode: PlaceCompact},
		{Servers: 5, Racks: 3, Width: 6, Mode: PlaceCompact},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Place with Width=%d > Servers=%d (racks=%d) did not panic",
						placer.Width, placer.Servers, placer.Racks)
				}
			}()
			out := placer.Place(0)
			seen := make(map[int]bool)
			for _, srv := range out {
				if seen[srv] {
					t.Fatalf("silent collision: %v", out)
				}
				seen[srv] = true
			}
		}()
	}
}

// TestNextUpToResetProperty drives random claim / split / reset / done /
// duplicate-done sequences against a reference model and asserts the
// repair queue's lifecycle invariants: split remainders inherit the
// head's generation, voided (stale-generation) completions never count
// toward the new rebuild, Remaining never goes negative, and the trace
// ledger balances once everything drains.
func TestNextUpToResetProperty(t *testing.T) {
	const holders = 3
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewReconstructor()
		var ledger stripeLedger
		r.TraceHook = ledger.hook

		modelRemaining := make([]int, holders)
		modelGen := make([]int, holders)
		modelRepaired := 0
		var inflight []RepairTask
		var completed []RepairTask

		check := func() bool {
			for h := 0; h < holders; h++ {
				if r.Remaining(h) < 0 {
					t.Errorf("seed %d: Remaining(%d) = %d < 0", seed, h, r.Remaining(h))
					return false
				}
				if r.Remaining(h) != modelRemaining[h] {
					t.Errorf("seed %d: Remaining(%d) = %d, model %d",
						seed, h, r.Remaining(h), modelRemaining[h])
					return false
				}
				if r.Gen(h) != modelGen[h] {
					t.Errorf("seed %d: Gen(%d) = %d, model %d", seed, h, r.Gen(h), modelGen[h])
					return false
				}
			}
			if r.RepairedStripes() != modelRepaired {
				t.Errorf("seed %d: repaired %d, model %d", seed, r.RepairedStripes(), modelRepaired)
				return false
			}
			return true
		}
		doDone := func(task RepairTask) bool {
			stale := task.Gen != modelGen[task.Holder]
			want := false
			if !stale {
				modelRepaired += task.Stripes
				modelRemaining[task.Holder] -= task.Stripes
				want = modelRemaining[task.Holder] == 0
			}
			if got := r.Done(task); got != want {
				t.Errorf("seed %d: Done(%+v) = %v, want %v (stale=%v)", seed, task, got, want, stale)
				return false
			}
			if !stale {
				completed = append(completed, task)
			}
			return true
		}

		for step := 0; step < 60; step++ {
			h := rng.Intn(holders)
			switch rng.Intn(5) {
			case 0: // enqueue a fresh batch
				n := 1 + rng.Intn(40)
				r.EnqueueChunk(h, n, 1+rng.Intn(16))
				modelRemaining[h] += n
			case 1: // claim a (possibly split) prefix
				task, ok := r.NextUpTo(1 + rng.Intn(12))
				if !ok {
					continue
				}
				// Queued tasks are always current-generation (Reset purges
				// them), so a split head and its remainder share the gen.
				if task.Gen != modelGen[task.Holder] {
					t.Errorf("seed %d: claimed task gen %d, holder gen %d",
						seed, task.Gen, modelGen[task.Holder])
					return false
				}
				inflight = append(inflight, task)
			case 2: // report an in-flight claim
				if len(inflight) == 0 {
					continue
				}
				i := rng.Intn(len(inflight))
				task := inflight[i]
				inflight = append(inflight[:i], inflight[i+1:]...)
				if !doDone(task) {
					return false
				}
			case 3: // reset a holder: void its queue, supersede its claims
				r.Reset(h)
				modelGen[h]++
				modelRemaining[h] = 0
			case 4: // duplicate Done for a completed holder: silent no-op
				if len(completed) == 0 {
					continue
				}
				task := completed[rng.Intn(len(completed))]
				if task.Gen != modelGen[task.Holder] || modelRemaining[task.Holder] != 0 {
					// A re-enqueued same-generation holder makes the duplicate
					// indistinguishable from a live claim, and a reset makes it
					// a stale report; neither is the double-report scenario.
					continue
				}
				if r.Done(task) {
					t.Errorf("seed %d: duplicate Done(%+v) reported holderComplete", seed, task)
					return false
				}
				if r.RepairedStripes() != modelRepaired {
					t.Errorf("seed %d: duplicate Done recounted stripes", seed)
					return false
				}
			}
			if !check() {
				return false
			}
		}

		// Drain: complete everything still queued or in flight, then the
		// stripe ledger must balance exactly.
		for {
			task, ok := r.Next()
			if !ok {
				break
			}
			if !doDone(task) {
				return false
			}
		}
		for _, task := range inflight {
			if !doDone(task) {
				return false
			}
		}
		if !check() {
			return false
		}
		if ledger.enqueued != ledger.done+ledger.void {
			t.Errorf("seed %d: unbalanced ledger: enqueued %d != done %d + void %d",
				seed, ledger.enqueued, ledger.done, ledger.void)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
