// Package ec implements the rack-aware Reed-Solomon erasure-coding
// subsystem: an RS(k,m) codec over GF(2^8), a Striper that maps a vSSD's
// logical pages onto k data + m parity chunks with rotated parity, a
// rack-aware Placer that never co-locates two chunks of one stripe on the
// same server, and a Reconstructor that queues chunk repairs so the rack
// can admit repair traffic only in switch-observed GC idle windows.
//
// The codec is systematic: the first k shards of a stripe are the data
// itself and the m parity shards are generated from a Cauchy matrix, whose
// every square submatrix is invertible — any k surviving shards of the
// k+m reconstruct the stripe, and losing more than m shards is reported
// as ErrStripeUnrecoverable.
package ec

import (
	"errors"
	"fmt"
)

// ErrStripeUnrecoverable reports that fewer than k shards of a stripe
// survive, so the stripe's data is lost (more than m erasures).
var ErrStripeUnrecoverable = errors.New("ec: stripe unrecoverable: fewer than k shards survive")

// MaxShards bounds k+m: GF(2^8) Cauchy construction needs 2(k+m) distinct
// field elements.
const MaxShards = 128

// Spec is an RS(k,m) redundancy parameterization.
type Spec struct {
	// K is the number of data chunks per stripe.
	K int
	// M is the number of parity chunks per stripe.
	M int
}

// Width is the total number of chunks per stripe, k+m.
func (s Spec) Width() int { return s.K + s.M }

// Validate checks the spec against a server count: every chunk of a
// stripe must land on a distinct server, so the rack needs at least k+m.
func (s Spec) Validate(servers int) error {
	if s.K < 1 {
		return fmt.Errorf("ec: k must be >= 1, got %d", s.K)
	}
	if s.M < 1 {
		return fmt.Errorf("ec: m must be >= 1, got %d", s.M)
	}
	if s.Width() > MaxShards {
		return fmt.Errorf("ec: k+m = %d exceeds %d", s.Width(), MaxShards)
	}
	if s.Width() > servers {
		return fmt.Errorf("ec: RS(%d,%d) needs %d servers for rack-aware placement, have %d",
			s.K, s.M, s.Width(), servers)
	}
	return nil
}

// ValidateCluster checks the spec against a multi-rack topology. Spread
// placement caps every rack at m chunks of a stripe — so a whole-rack
// failure erases at most m chunks and any stripe stays recoverable —
// which needs at least ceil((k+m)/m) racks and enough servers per rack to
// host the round-robin share ceil((k+m)/racks) on distinct machines.
func (s Spec) ValidateCluster(racks, serversPerRack int, mode PlacementMode) error {
	if racks < 1 {
		racks = 1
	}
	if mode != PlaceSpread || racks == 1 {
		// Compact placement confines each group to one rack.
		return s.Validate(serversPerRack)
	}
	if err := s.Validate(racks * serversPerRack); err != nil {
		return err
	}
	minRacks := (s.Width() + s.M - 1) / s.M
	if racks < minRacks {
		return fmt.Errorf("ec: spread RS(%d,%d) needs >= %d racks to keep <= m chunks per rack, have %d",
			s.K, s.M, minRacks, racks)
	}
	perRack := (s.Width() + racks - 1) / racks
	if perRack > serversPerRack {
		return fmt.Errorf("ec: spread RS(%d,%d) over %d racks places %d chunks in a rack, only %d servers there",
			s.K, s.M, racks, perRack, serversPerRack)
	}
	return nil
}

func (s Spec) String() string { return fmt.Sprintf("RS(%d,%d)", s.K, s.M) }

// GF(2^8) arithmetic with the AES polynomial 0x11d, via exp/log tables.
var (
	gfExp [512]byte
	gfLog [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		x2 := int(x) << 1
		if x2 >= 256 {
			x2 ^= 0x11d
		}
		x = byte(x2)
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ec: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

func gfInv(a byte) byte { return gfDiv(1, a) }

// Codec encodes and reconstructs RS(k,m) stripes.
type Codec struct {
	spec Spec
	// gen is the systematic (k+m) x k generator matrix: identity on the
	// first k rows, a Cauchy matrix on the last m.
	gen [][]byte
}

// NewCodec builds a codec for the spec (server count is not the codec's
// concern; Validate with Width() so standalone use works).
func NewCodec(spec Spec) (*Codec, error) {
	if err := spec.Validate(spec.Width()); err != nil {
		return nil, err
	}
	k, m := spec.K, spec.M
	gen := make([][]byte, k+m)
	for i := 0; i < k; i++ {
		gen[i] = make([]byte, k)
		gen[i][i] = 1
	}
	// Cauchy block: row i, col j = 1/(x_i + y_j) with x_i = k+i, y_j = j.
	// All x_i and y_j are distinct, so every entry is defined and every
	// square submatrix of the full generator is invertible (MDS).
	for i := 0; i < m; i++ {
		gen[k+i] = make([]byte, k)
		for j := 0; j < k; j++ {
			gen[k+i][j] = gfInv(byte(k+i) ^ byte(j))
		}
	}
	return &Codec{spec: spec, gen: gen}, nil
}

// Spec returns the codec's parameters.
func (c *Codec) Spec() Spec { return c.spec }

// Encode computes the m parity shards from k equal-length data shards.
func (c *Codec) Encode(data [][]byte) ([][]byte, error) {
	k, m := c.spec.K, c.spec.M
	if len(data) != k {
		return nil, fmt.Errorf("ec: encode needs %d data shards, got %d", k, len(data))
	}
	size := len(data[0])
	for i, d := range data {
		if len(d) != size {
			return nil, fmt.Errorf("ec: shard %d length %d != %d", i, len(d), size)
		}
	}
	parity := make([][]byte, m)
	for i := 0; i < m; i++ {
		parity[i] = make([]byte, size)
		row := c.gen[k+i]
		for j := 0; j < k; j++ {
			coef := row[j]
			if coef == 0 {
				continue
			}
			src := data[j]
			dst := parity[i]
			for b := 0; b < size; b++ {
				dst[b] ^= gfMul(coef, src[b])
			}
		}
	}
	return parity, nil
}

// Reconstruct fills the nil entries of shards (length k+m, data shards
// first) from any k surviving shards. It returns ErrStripeUnrecoverable
// when fewer than k survive.
func (c *Codec) Reconstruct(shards [][]byte) error {
	k, m := c.spec.K, c.spec.M
	if len(shards) != k+m {
		return fmt.Errorf("ec: reconstruct needs %d shards, got %d", k+m, len(shards))
	}
	present := make([]int, 0, k)
	size := -1
	for i, sh := range shards {
		if sh == nil {
			continue
		}
		if size == -1 {
			size = len(sh)
		} else if len(sh) != size {
			return fmt.Errorf("ec: shard %d length %d != %d", i, len(sh), size)
		}
		present = append(present, i)
	}
	if len(present) < k {
		return fmt.Errorf("%w: have %d of %d needed", ErrStripeUnrecoverable, len(present), k)
	}
	if len(present) == k+m {
		return nil // nothing missing
	}

	// Build the k x k decode system from the first k surviving rows and
	// invert it: data = inv(sub) * surviving.
	rows := present[:k]
	sub := make([][]byte, k)
	for i, r := range rows {
		sub[i] = append([]byte(nil), c.gen[r]...)
	}
	inv, err := gfInvertMatrix(sub)
	if err != nil {
		return err
	}

	// Recover the data shards first.
	data := make([][]byte, k)
	for j := 0; j < k; j++ {
		if shards[j] != nil {
			data[j] = shards[j]
		}
	}
	for j := 0; j < k; j++ {
		if data[j] != nil {
			continue
		}
		out := make([]byte, size)
		for i, r := range rows {
			coef := inv[j][i]
			if coef == 0 {
				continue
			}
			src := shards[r]
			for b := 0; b < size; b++ {
				out[b] ^= gfMul(coef, src[b])
			}
		}
		data[j] = out
		shards[j] = out
	}
	// Re-encode any missing parity from the (now complete) data.
	for i := 0; i < m; i++ {
		if shards[k+i] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.gen[k+i]
		for j := 0; j < k; j++ {
			coef := row[j]
			if coef == 0 {
				continue
			}
			src := data[j]
			for b := 0; b < size; b++ {
				out[b] ^= gfMul(coef, src[b])
			}
		}
		shards[k+i] = out
	}
	return nil
}

// gfInvertMatrix inverts a square matrix over GF(2^8) by Gauss-Jordan
// elimination with an augmented identity.
func gfInvertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	aug := make([][]byte, n)
	for i := range aug {
		aug[i] = make([]byte, 2*n)
		copy(aug[i], m[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, errors.New("ec: singular decode matrix")
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		scale := gfInv(aug[col][col])
		for c := 0; c < 2*n; c++ {
			aug[col][c] = gfMul(aug[col][c], scale)
		}
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			coef := aug[r][col]
			for c := 0; c < 2*n; c++ {
				aug[r][c] ^= gfMul(coef, aug[col][c])
			}
		}
	}
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = aug[i][n:]
	}
	return inv, nil
}
