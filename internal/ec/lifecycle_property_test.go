package ec

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestRepairReintegrationByteIdentity is the data-plane half of the
// recovery-lifecycle property (its simulator half lives in
// internal/core TestRecoveryLifecycleProperty): randomized over seeds,
// RS parameters, and placement modes, a FailServers/FailRackIndex-style
// failure followed by full chunk repair and re-integration leaves every
// stripe readable without reconstruction — the post-repair holder map
// has a live chunk for each position — and byte-identical to the
// original payload.
func TestRepairReintegrationByteIdentity(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		k := 1 + rng.Intn(5)
		m := 1 + rng.Intn(3)
		spec := Spec{K: k, M: m}
		width := spec.Width()
		mode := PlaceCompact
		racks := 1
		if rng.Intn(2) == 0 {
			mode = PlaceSpread
			// Spread needs ceil(width/m) racks to keep <= m chunks each.
			racks = (width + m - 1) / m
			if extra := rng.Intn(2); extra == 1 {
				racks++
			}
		}
		placer := Placer{
			Servers: width + rng.Intn(3), Racks: racks,
			Width: width, Mode: mode, MaxPerRack: m,
		}
		name := fmt.Sprintf("trial %d RS(%d,%d) %s racks=%d", trial, k, m, mode, racks)

		codec, err := NewCodec(spec)
		if err != nil {
			t.Fatalf("%s: NewCodec: %v", name, err)
		}
		striper := Striper{Spec: spec}
		servers := placer.Place(rng.Intn(4))

		// Build the original payload and the per-holder chunk store:
		// holder h stores its chunk of stripe s at local page s.
		stripes := 3 + rng.Intn(6)
		chunkLen := 1 + rng.Intn(64)
		payload := make([]byte, stripes*k*chunkLen)
		rng.Read(payload)
		store := make([]map[int][]byte, width) // holder -> stripe -> chunk
		for h := range store {
			store[h] = make(map[int][]byte)
		}
		for s := 0; s < stripes; s++ {
			shards := make([][]byte, width)
			for p := 0; p < k; p++ {
				off := (s*k + p) * chunkLen
				shards[p] = append([]byte(nil), payload[off:off+chunkLen]...)
			}
			parity, err := codec.Encode(shards[:k])
			if err != nil {
				t.Fatalf("%s: Encode stripe %d: %v", name, s, err)
			}
			copy(shards[k:], parity)
			for c, h := range striper.Holders(s) {
				store[h][s] = shards[c]
			}
		}

		// Fail a within-budget spec: either up to m distinct servers, or
		// (spread mode) one whole rack.
		failedServer := make(map[int]bool)
		if mode == PlaceSpread && rng.Intn(2) == 0 {
			rack := rng.Intn(racks)
			for s := rack * placer.Servers; s < (rack+1)*placer.Servers; s++ {
				failedServer[s] = true
			}
		} else {
			for n := 1 + rng.Intn(m); n > 0; n-- {
				failedServer[servers[rng.Intn(width)]] = true
			}
		}
		replacement := make(map[int]int) // lost holder -> adopting holder
		for h, srv := range servers {
			if !failedServer[srv] {
				continue
			}
			store[h] = nil // chunks lost with the server
			for d := 1; d < width; d++ {
				a := (h + d) % width
				if !failedServer[servers[a]] {
					replacement[h] = a
					break
				}
			}
		}

		// Repair: rebuild every lost holder's chunks from any k
		// survivors and land them on its adopter, keyed by the lost
		// holder (the sim's replacement registration) — two holders may
		// share one adopter without their chunks colliding.
		rebuilt := make([]map[int][]byte, width) // lost holder -> stripe -> chunk
		for h := range replacement {
			rebuilt[h] = make(map[int][]byte)
			for s := 0; s < stripes; s++ {
				shards := make([][]byte, width)
				for c, hh := range striper.Holders(s) {
					if store[hh] != nil {
						shards[c] = append([]byte(nil), store[hh][s]...)
					}
				}
				if err := codec.Reconstruct(shards); err != nil {
					t.Fatalf("%s: repair of holder %d stripe %d: %v", name, h, s, err)
				}
				for c, hh := range striper.Holders(s) {
					if hh == h {
						rebuilt[h][s] = shards[c]
					}
				}
			}
		}

		// Post-repair reads: resolve each data chunk through the
		// replacement map; every read must find a live chunk directly
		// (non-degraded) and the payload must round-trip byte-identically.
		for s := 0; s < stripes; s++ {
			for p := 0; p < k; p++ {
				h := striper.DataHolder(s, p)
				var got []byte
				if store[h] != nil {
					got = store[h][s]
				} else {
					if _, ok := replacement[h]; !ok {
						t.Fatalf("%s: holder %d lost with no replacement", name, h)
					}
					got = rebuilt[h][s]
				}
				if got == nil {
					t.Fatalf("%s: stripe %d pos %d: no chunk at post-repair holder (degraded read)", name, s, p)
				}
				off := (s*k + p) * chunkLen
				if !bytes.Equal(got, payload[off:off+chunkLen]) {
					t.Fatalf("%s: stripe %d pos %d: repaired chunk differs from original payload", name, s, p)
				}
			}
		}
	}
}
