package ec

import "fmt"

// This file adds the second code family: an LRC-style layout that keeps
// the RS(k,m) global code intact and adds one local parity chunk per
// rack — the plain XOR of the rack's global chunks — plus the
// aggregated (rack-aware regenerating) repair plan for the multi-loss
// cases the local parity cannot cover.
//
// The two mechanisms target the two repair regimes:
//
//   - Single-server loss: the lost chunk is the XOR of its rack's
//     surviving chunks and the rack's local parity, so repair never
//     touches the spine — zero cross-rack bytes.
//   - Multi-loss (e.g. a whole rack): the lost chunk is a GF(2^8)
//     linear combination of any k global survivors. Grouping the
//     combination's terms by rack lets each remote rack pre-combine its
//     survivors locally (AggregateChunk) and ship ONE chunk-sized
//     aggregate over the metered spine; the XOR of the per-rack
//     aggregates is the lost chunk. Cross-rack cost drops from k chunks
//     to (#remote racks) chunks per lost chunk.

// XORParity returns the byte-wise XOR of equal-length chunks — the
// local parity of one rack's chunks, and equally the recovery of any
// single missing chunk from the rack's survivors plus that parity.
func XORParity(chunks [][]byte) ([]byte, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("ec: XORParity of zero chunks")
	}
	size := len(chunks[0])
	out := make([]byte, size)
	for i, c := range chunks {
		if len(c) != size {
			return nil, fmt.Errorf("ec: XORParity chunk %d length %d != %d", i, len(c), size)
		}
		for b, v := range c {
			out[b] ^= v
		}
	}
	return out, nil
}

// RepairCoefficients returns the GF(2^8) coefficients expressing the
// lost chunk as a linear combination of exactly k surviving chunks:
//
//	chunk[lost] = sum_i gfMul(coeffs[i], chunk[rows[i]])
//
// rows indexes the k+m stripe positions (data first). The coefficients
// are what aggregated repair distributes: each rack applies its
// members' coefficients locally and ships only the partial sum.
func (c *Codec) RepairCoefficients(lost int, rows []int) ([]byte, error) {
	k := c.spec.K
	if lost < 0 || lost >= c.spec.Width() {
		return nil, fmt.Errorf("ec: lost position %d outside [0,%d)", lost, c.spec.Width())
	}
	if len(rows) != k {
		return nil, fmt.Errorf("ec: repair needs exactly %d survivor rows, got %d", k, len(rows))
	}
	sub := make([][]byte, k)
	for i, r := range rows {
		if r < 0 || r >= c.spec.Width() {
			return nil, fmt.Errorf("ec: survivor position %d outside [0,%d)", r, c.spec.Width())
		}
		if r == lost {
			return nil, fmt.Errorf("ec: lost position %d listed as survivor", lost)
		}
		sub[i] = append([]byte(nil), c.gen[r]...)
	}
	inv, err := gfInvertMatrix(sub)
	if err != nil {
		return nil, err
	}
	// chunk[lost] = gen[lost] . data and data = inv . survivors, so the
	// survivor coefficients are gen[lost] . inv.
	coeffs := make([]byte, k)
	for j := 0; j < k; j++ {
		var v byte
		for t := 0; t < k; t++ {
			v ^= gfMul(c.gen[lost][t], inv[t][j])
		}
		coeffs[j] = v
	}
	return coeffs, nil
}

// AggregateChunk computes one rack's repair contribution: the GF(2^8)
// partial sum of that rack's survivor chunks, each scaled by its
// RepairCoefficients entry. XOR-ing every involved rack's aggregate
// yields the lost chunk, so a remote rack ships exactly one chunk-sized
// aggregate regardless of how many survivors it holds.
func AggregateChunk(coeffs []byte, chunks [][]byte) ([]byte, error) {
	if len(coeffs) != len(chunks) {
		return nil, fmt.Errorf("ec: %d coefficients for %d chunks", len(coeffs), len(chunks))
	}
	if len(chunks) == 0 {
		return nil, fmt.Errorf("ec: aggregate of zero chunks")
	}
	size := len(chunks[0])
	out := make([]byte, size)
	for i, c := range chunks {
		if len(c) != size {
			return nil, fmt.Errorf("ec: aggregate chunk %d length %d != %d", i, len(c), size)
		}
		coef := coeffs[i]
		if coef == 0 {
			continue
		}
		for b, v := range c {
			out[b] ^= gfMul(coef, v)
		}
	}
	return out, nil
}

// ValidateClusterLocal checks the local-parity (LRC) layout against a
// multi-rack topology. The layout needs everything spread RS(k,m)
// placement needs — so a whole-rack failure still erases at most m
// global chunks and every stripe stays globally recoverable — plus one
// extra server per rack to host that rack's local parity chunk on a
// machine distinct from its global chunk holders.
func (s Spec) ValidateClusterLocal(racks, serversPerRack int, mode PlacementMode) error {
	if mode != PlaceSpread || racks < 2 {
		return fmt.Errorf("ec: local-parity LRC(%d,%d) needs spread placement over >= 2 racks (got %s, %d racks)",
			s.K, s.M, mode, racks)
	}
	if err := s.ValidateCluster(racks, serversPerRack, mode); err != nil {
		return err
	}
	perRack := (s.Width() + racks - 1) / racks
	if perRack+1 > serversPerRack {
		return fmt.Errorf("ec: LRC(%d,%d) over %d racks needs %d servers per rack (%d global chunks + 1 local parity), have %d",
			s.K, s.M, racks, perRack+1, perRack, serversPerRack)
	}
	return nil
}

// LocalString names the local-parity variant of the spec.
func (s Spec) LocalString() string { return fmt.Sprintf("LRC(%d,%d)", s.K, s.M) }

// LocalParityServers returns, for each rack occupied by the group's
// spread placement (in rack order), the global server index hosting
// that rack's local parity chunk. placed is Place(group)'s result; the
// parity server continues the same in-rack rotation, so it is distinct
// from every global chunk server of its rack (ValidateClusterLocal
// guarantees a free server exists).
func (p Placer) LocalParityServers(group int, placed []int) []int {
	slot := make([]int, p.racks())
	for _, srv := range placed {
		slot[p.RackOf(srv)]++
	}
	rot := group % p.Servers
	out := make([]int, 0, p.racks())
	for rack, n := range slot {
		if n == 0 {
			continue
		}
		if n >= p.Servers {
			panic(fmt.Sprintf(
				"ec: rack %d has no free server for a local parity chunk (%d global chunks on %d servers); validate with Spec.ValidateClusterLocal",
				rack, n, p.Servers))
		}
		out = append(out, rack*p.Servers+(rot+n)%p.Servers)
	}
	return out
}
