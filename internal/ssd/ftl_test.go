package ssd

import (
	"errors"
	"testing"
	"testing/quick"

	"rackblox/internal/flash"
	"rackblox/internal/sim"
)

func testGeo() flash.Geometry {
	return flash.Geometry{Channels: 4, ChipsPerChannel: 2, BlocksPerChip: 8, PagesPerBlock: 16, PageSize: 4096}
}

func newDev(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(sim.NewEngine(), testGeo(), flash.ProfilePSSD())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newFTL(t *testing.T, d *Device, chips []ChipRef) *FTL {
	t.Helper()
	f, err := NewFTL(d, chips, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewDeviceChannels(t *testing.T) {
	d := newDev(t)
	if got := len(d.AllChips()); got != 8 {
		t.Fatalf("chips = %d, want 8", got)
	}
	if got := len(d.ChannelChips(0)); got != 2 {
		t.Fatalf("channel chips = %d, want 2", got)
	}
	for i := 0; i < 4; i++ {
		if d.Channel(i) == nil {
			t.Fatalf("channel %d missing", i)
		}
	}
}

func TestNewFTLValidation(t *testing.T) {
	d := newDev(t)
	if _, err := NewFTL(d, nil, 0.8); err == nil {
		t.Error("empty chip set accepted")
	}
	if _, err := NewFTL(d, d.AllChips(), 0); err == nil {
		t.Error("zero utilization accepted")
	}
	if _, err := NewFTL(d, d.AllChips(), 1); err == nil {
		t.Error("full utilization accepted")
	}
	if _, err := NewFTL(d, []ChipRef{{Channel: 99}}, 0.8); err == nil {
		t.Error("out-of-range chip accepted")
	}
}

func TestFTLLogicalSpace(t *testing.T) {
	d := newDev(t)
	f := newFTL(t, d, d.ChannelChips(0))
	// 2 chips * 8 blocks * 16 pages = 256 raw pages, 75% = 192 logical.
	if f.LogicalPages() != 192 {
		t.Fatalf("logical pages = %d, want 192", f.LogicalPages())
	}
	if f.TotalBlocks() != 16 {
		t.Fatalf("total blocks = %d, want 16", f.TotalBlocks())
	}
	if f.FreeBlocks() != 16 {
		t.Fatalf("free blocks = %d, want 16", f.FreeBlocks())
	}
	if f.FreeRatio() != 1.0 {
		t.Fatalf("free ratio = %f, want 1", f.FreeRatio())
	}
}

func TestReadUnmapped(t *testing.T) {
	d := newDev(t)
	f := newFTL(t, d, d.ChannelChips(0))
	if _, err := f.Read(0); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("read unmapped err = %v", err)
	}
	if _, err := f.Read(-1); err == nil {
		t.Fatal("negative lpn accepted")
	}
	if _, err := f.Read(f.LogicalPages()); err == nil {
		t.Fatal("out-of-range lpn accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newDev(t)
	f := newFTL(t, d, d.ChannelChips(0))
	w, err := f.Write(7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if r != w {
		t.Fatalf("read addr %v != write addr %v", r, w)
	}
}

func TestOverwriteInvalidatesOld(t *testing.T) {
	d := newDev(t)
	f := newFTL(t, d, d.ChannelChips(0))
	a1, _ := f.Write(3)
	a2, err := f.Write(3)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("overwrite reused the same physical page")
	}
	if st := d.Array().BlockAt(a1).State[a1.Page]; st != flash.PageInvalid {
		t.Fatalf("old page state = %v, want invalid", st)
	}
	r, _ := f.Read(3)
	if r != a2 {
		t.Fatal("mapping not updated")
	}
}

func TestWritesRotateAcrossChips(t *testing.T) {
	d := newDev(t)
	f := newFTL(t, d, d.ChannelChips(0)) // 2 chips
	a1, _ := f.Write(0)
	a2, _ := f.Write(1)
	if a1.Chip == a2.Chip {
		t.Fatalf("consecutive writes on same chip %d, want round robin", a1.Chip)
	}
}

func TestWritesStayInsideOwnedChips(t *testing.T) {
	d := newDev(t)
	chips := d.ChannelChips(2)
	f := newFTL(t, d, chips)
	for i := 0; i < f.LogicalPages(); i++ {
		a, err := f.Write(i)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if a.Channel != 2 {
			t.Fatalf("write landed on channel %d, want 2", a.Channel)
		}
	}
}

func TestFreeRatioDeclinesWithWrites(t *testing.T) {
	d := newDev(t)
	f := newFTL(t, d, d.ChannelChips(0))
	before := f.FreeRatio()
	for i := 0; i < f.LogicalPages()/2; i++ {
		if _, err := f.Write(i); err != nil {
			t.Fatal(err)
		}
	}
	if f.FreeRatio() >= before {
		t.Fatalf("free ratio %f did not decline from %f", f.FreeRatio(), before)
	}
}

func TestHostWriteCounter(t *testing.T) {
	d := newDev(t)
	f := newFTL(t, d, d.ChannelChips(0))
	for i := 0; i < 10; i++ {
		f.Write(i % 3)
	}
	if f.HostWrites() != 10 {
		t.Fatalf("host writes = %d, want 10", f.HostWrites())
	}
	if f.WriteAmplification() != 1 {
		t.Fatalf("WA = %f before GC, want 1", f.WriteAmplification())
	}
}

func TestENOSPCWhenExhausted(t *testing.T) {
	d := newDev(t)
	// Single chip, high utilization: fill logical space then overwrite
	// until the device cannot allocate without GC.
	f, err := NewFTL(d, []ChipRef{{Channel: 0, Chip: 0}}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	sawNoSpace := false
	for i := 0; i < 4*f.LogicalPages(); i++ {
		if _, err := f.Write(i % f.LogicalPages()); err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawNoSpace = true
			break
		}
	}
	if !sawNoSpace {
		t.Fatal("device never ran out of space without GC")
	}
}

func TestGCReclaimsSpace(t *testing.T) {
	d := newDev(t)
	f := newFTL(t, d, d.ChannelChips(0))
	// Fill the space, then repeatedly overwrite a skewed subset with a
	// stride so victim blocks mix valid and stale pages, forcing GC moves.
	for i := 0; i < f.LogicalPages(); i++ {
		if _, err := f.Write(i); err != nil {
			t.Fatal(err)
		}
	}
	n := f.LogicalPages()
	for i := 0; i < 4*n; i++ {
		lpn := (i * 7) % (n / 2) // hot first half, stride 7
		if _, err := f.Write(lpn); err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatal(err)
			}
			if _, ok := f.CollectOnce(); !ok {
				t.Fatalf("GC found no victim at write %d, free ratio %f", i, f.FreeRatio())
			}
			i-- // retry the failed write
		}
	}
	if f.GCErases() == 0 {
		t.Fatal("no GC happened during overwrite workload")
	}
	if wa := f.WriteAmplification(); wa <= 1 {
		t.Fatalf("WA = %f, want > 1 after GC", wa)
	}
}

func TestGCPreservesMappings(t *testing.T) {
	d := newDev(t)
	f := newFTL(t, d, d.ChannelChips(0))
	// Write a recognizable working set, then churn others to force GC.
	for i := 0; i < f.LogicalPages(); i++ {
		f.Write(i)
	}
	for j := 0; j < 5; j++ {
		res := f.CollectBurst(0.5, 0)
		if res.Blocks == 0 {
			break
		}
		for i := 0; i < f.LogicalPages()/4; i++ {
			if _, err := f.Write(i); err != nil {
				break
			}
		}
	}
	// Every logical page must still resolve, and distinct LPNs must map to
	// distinct PPNs.
	seen := map[flash.Addr]int{}
	for i := 0; i < f.LogicalPages(); i++ {
		a, err := f.Read(i)
		if err != nil {
			t.Fatalf("lpn %d unreadable after GC: %v", i, err)
		}
		if prev, dup := seen[a]; dup {
			t.Fatalf("lpn %d and %d share physical page %v", prev, i, a)
		}
		seen[a] = i
	}
}

func TestCollectBurstReachesTarget(t *testing.T) {
	d := newDev(t)
	f := newFTL(t, d, d.ChannelChips(0))
	for i := 0; i < f.LogicalPages(); i++ {
		f.Write(i)
	}
	// Overwrite half to create stale pages.
	for i := 0; i < f.LogicalPages()/2; i++ {
		if _, err := f.Write(i); err != nil {
			f.CollectOnce()
		}
	}
	low := f.FreeRatio()
	res := f.CollectBurst(low+0.1, 0)
	if res.Blocks == 0 {
		t.Fatal("burst reclaimed nothing")
	}
	if f.FreeRatio() < low+0.1 && res.Blocks > 0 {
		// Acceptable only if no more victims existed.
		if _, ok := f.victim(); ok {
			t.Fatalf("burst stopped early: ratio %f, target %f", f.FreeRatio(), low+0.1)
		}
	}
	if res.Duration <= 0 {
		t.Fatal("burst duration not accounted")
	}
	if len(res.PerChannel) == 0 {
		t.Fatal("burst per-channel accounting missing")
	}
}

func TestGCDurationPricing(t *testing.T) {
	d := newDev(t)
	f := newFTL(t, d, d.ChannelChips(0))
	p := d.Profile()
	if got := f.stepDuration(0); got != p.EraseBlock {
		t.Fatalf("0-move duration = %d, want erase %d", got, p.EraseBlock)
	}
	if got := f.stepDuration(3); got != 3*(p.ReadPage+p.ProgramPage)+p.EraseBlock {
		t.Fatalf("3-move duration = %d", got)
	}
}

func TestBorrowAndGiveBack(t *testing.T) {
	d := newDev(t)
	lender := newFTL(t, d, d.ChannelChips(0))
	borrower := newFTL(t, d, d.ChannelChips(1))
	blocks := lender.Borrow(4)
	if len(blocks) != 4 {
		t.Fatalf("borrowed %d blocks, want 4", len(blocks))
	}
	if lender.FreeBlocks() != 12 {
		t.Fatalf("lender free = %d, want 12", lender.FreeBlocks())
	}
	borrower.AcceptBorrowed(blocks)
	if borrower.FreeBlocks() != 16+4 {
		t.Fatalf("borrower free = %d, want 20", borrower.FreeBlocks())
	}
	returned, dur := borrower.VacateBorrowed()
	if len(returned) != 4 {
		t.Fatalf("returned %d blocks, want 4", len(returned))
	}
	if dur != 0 {
		t.Fatalf("unused borrowed blocks cost %d, want 0", dur)
	}
	lender.GiveBack(returned)
	if lender.FreeBlocks() != 16 {
		t.Fatalf("lender free after return = %d, want 16", lender.FreeBlocks())
	}
}

func TestBorrowedBlocksUsedWhenExhausted(t *testing.T) {
	d := newDev(t)
	borrower, err := NewFTL(d, []ChipRef{{Channel: 0, Chip: 0}}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	lender := newFTL(t, d, []ChipRef{{Channel: 0, Chip: 1}})
	borrower.AcceptBorrowed(lender.Borrow(4))
	// Write far past own capacity; borrowed space must absorb overflow.
	wrote := 0
	for i := 0; i < 3*borrower.LogicalPages(); i++ {
		if _, err := borrower.Write(i % borrower.LogicalPages()); err != nil {
			break
		}
		wrote++
	}
	if borrower.BorrowedInUse() == 0 {
		t.Fatal("borrowed blocks never used")
	}
	// Reclaim own space first (as the channel-group GC does), then vacate.
	borrower.CollectBurst(0.5, 0)
	returned, dur := borrower.VacateBorrowed()
	if borrower.BorrowedInUse() != 0 {
		t.Fatalf("%d borrowed blocks still in use after vacate", borrower.BorrowedInUse())
	}
	if len(returned) != 4 {
		t.Fatalf("returned %d blocks, want all 4", len(returned))
	}
	if dur == 0 {
		t.Fatal("vacating used blocks cost nothing")
	}
	for i := 0; i < borrower.LogicalPages(); i++ {
		if a, err := borrower.Read(i); err == nil {
			if a.Chip == 1 {
				for _, r := range returned {
					if r.Chip == (ChipRef{Channel: 0, Chip: 1}) && r.Block == a.Block {
						t.Fatalf("lpn %d still lives in returned block %v", i, r)
					}
				}
			}
		}
	}
}

// Property: after any interleaving of writes and GC, distinct mapped LPNs
// always point at distinct valid physical pages.
func TestMappingBijectionProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		d, err := NewDevice(sim.NewEngine(), testGeo(), flash.ProfilePSSD())
		if err != nil {
			return false
		}
		ftl, err := NewFTL(d, d.ChannelChips(0), 0.7)
		if err != nil {
			return false
		}
		for _, op := range ops {
			lpn := int(op) % ftl.LogicalPages()
			if _, err := ftl.Write(lpn); err != nil {
				ftl.CollectOnce()
			}
		}
		seen := map[int]bool{}
		geo := d.Geometry()
		for i := 0; i < ftl.LogicalPages(); i++ {
			a, err := ftl.Read(i)
			if errors.Is(err, ErrUnmapped) {
				continue
			}
			if err != nil {
				return false
			}
			ppn := geo.PPN(a)
			if seen[ppn] {
				return false
			}
			seen[ppn] = true
			if d.Array().BlockAt(a).State[a.Page] != flash.PageValid {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: free-block accounting matches the flash array's actual state.
func TestFreeBlockAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		d, err := NewDevice(sim.NewEngine(), testGeo(), flash.ProfilePSSD())
		if err != nil {
			return false
		}
		ftl, err := NewFTL(d, d.ChannelChips(0), 0.7)
		if err != nil {
			return false
		}
		for _, op := range ops {
			if op%5 == 0 {
				ftl.CollectOnce()
			} else if _, err := ftl.Write(int(op) % ftl.LogicalPages()); err != nil {
				ftl.CollectOnce()
			}
		}
		// Count blocks with WritePtr==0 (untouched) that are marked free.
		free := 0
		for _, ca := range ftl.chips {
			for b := 0; b < d.Geometry().BlocksPerChip; b++ {
				if ca.isFree[b] {
					addr := flash.Addr{Channel: ca.ref.Channel, Chip: ca.ref.Chip, Block: b}
					if d.Array().BlockAt(addr).WritePtr != 0 {
						return false // free-listed block contains data
					}
					free++
				}
			}
		}
		return free == ftl.FreeBlocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDeviceTiming(t *testing.T) {
	eng := sim.NewEngine()
	d, err := NewDevice(eng, testGeo(), flash.ProfilePSSD())
	if err != nil {
		t.Fatal(err)
	}
	var readEnd, progEnd sim.Time
	d.TimeRead(flash.Addr{Channel: 1}, func(_, end sim.Time) { readEnd = end })
	d.TimeProgram(flash.Addr{Channel: 1}, func(_, end sim.Time) { progEnd = end })
	eng.Run()
	p := d.Profile()
	if readEnd != p.ReadPage {
		t.Fatalf("read end = %d, want %d", readEnd, p.ReadPage)
	}
	if progEnd != p.ReadPage+p.ProgramPage {
		t.Fatalf("program end = %d, want %d (serialized on channel)", progEnd, p.ReadPage+p.ProgramPage)
	}
}

func TestOccupyChannelBlocksIO(t *testing.T) {
	eng := sim.NewEngine()
	d, err := NewDevice(eng, testGeo(), flash.ProfilePSSD())
	if err != nil {
		t.Fatal(err)
	}
	d.OccupyChannel(0, 10*sim.Millisecond)
	var start sim.Time
	d.TimeRead(flash.Addr{Channel: 0}, func(s, _ sim.Time) { start = s })
	eng.Run()
	if start != 10*sim.Millisecond {
		t.Fatalf("read started at %d, want delayed to %d", start, 10*sim.Millisecond)
	}
}

func TestOccupyChannelOutOfRangePanics(t *testing.T) {
	d := newDev(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic for bad channel")
		}
	}()
	d.OccupyChannel(99, 1)
}

func TestChannelsHelper(t *testing.T) {
	d := newDev(t)
	f := newFTL(t, d, append(d.ChannelChips(0), d.ChannelChips(3)...))
	chs := f.Channels()
	if len(chs) != 2 || chs[0] != 0 || chs[1] != 3 {
		t.Fatalf("channels = %v, want [0 3]", chs)
	}
}
