// Package ssd simulates a programmable (open-channel) SSD: channels with
// serial timing, a page-mapped flash translation layer per allocation
// domain, greedy garbage collection, and wear/write-amplification
// accounting. vSSD virtualization composes on top in internal/vssd.
package ssd

import (
	"fmt"

	"rackblox/internal/flash"
	"rackblox/internal/sim"
)

// Device is one physical SSD: a flash array plus per-channel timing.
// Each channel processes one flash command at a time, matching the paper's
// observation that "an SSD channel cannot issue new I/O requests during GC".
type Device struct {
	eng      *sim.Engine
	arr      *flash.Array
	channels []*sim.Resource
}

// NewDevice builds an SSD with the given geometry and timing profile.
func NewDevice(eng *sim.Engine, geo flash.Geometry, prof flash.Profile) (*Device, error) {
	arr, err := flash.NewArray(geo, prof)
	if err != nil {
		return nil, err
	}
	d := &Device{eng: eng, arr: arr}
	d.channels = make([]*sim.Resource, geo.Channels)
	for i := range d.channels {
		d.channels[i] = sim.NewResource(eng)
	}
	return d, nil
}

// Engine returns the simulation engine the device is bound to.
func (d *Device) Engine() *sim.Engine { return d.eng }

// Array exposes the flash state (used by the FTL).
func (d *Device) Array() *flash.Array { return d.arr }

// Geometry returns the device geometry.
func (d *Device) Geometry() flash.Geometry { return d.arr.Geo }

// Profile returns the device timing profile.
func (d *Device) Profile() flash.Profile { return d.arr.Profile }

// Channel returns the serial resource of channel i.
func (d *Device) Channel(i int) *sim.Resource { return d.channels[i] }

// ChannelFreeAt returns when channel i next becomes idle.
func (d *Device) ChannelFreeAt(i int) sim.Time { return d.channels[i].FreeAt() }

// TimeRead schedules the timing of a page read on the owning channel and
// calls done(start, end) when it completes. State is not touched.
func (d *Device) TimeRead(addr flash.Addr, done func(start, end sim.Time)) {
	d.channels[addr.Channel].Acquire(d.arr.Profile.ReadPage, done)
}

// TimeProgram schedules the timing of a page program.
func (d *Device) TimeProgram(addr flash.Addr, done func(start, end sim.Time)) {
	d.channels[addr.Channel].Acquire(d.arr.Profile.ProgramPage, done)
}

// OccupyChannel reserves channel ch for dur (garbage collection burst) and
// returns the reservation window.
func (d *Device) OccupyChannel(ch int, dur sim.Time) (start, end sim.Time) {
	if ch < 0 || ch >= len(d.channels) {
		panic(fmt.Sprintf("ssd: channel %d out of range", ch))
	}
	return d.channels[ch].Acquire(dur, nil)
}

// ChipRef names one chip inside a device.
type ChipRef struct {
	Channel int
	Chip    int
}

// ChannelChips returns the chips of one channel.
func (d *Device) ChannelChips(ch int) []ChipRef {
	refs := make([]ChipRef, d.arr.Geo.ChipsPerChannel)
	for i := range refs {
		refs[i] = ChipRef{Channel: ch, Chip: i}
	}
	return refs
}

// AllChips returns every chip of the device.
func (d *Device) AllChips() []ChipRef {
	var refs []ChipRef
	for ch := 0; ch < d.arr.Geo.Channels; ch++ {
		refs = append(refs, d.ChannelChips(ch)...)
	}
	return refs
}
