package ssd

import (
	"fmt"
	"sort"

	"rackblox/internal/flash"
	"rackblox/internal/sim"
)

// GCResult describes the work of one garbage-collection step.
type GCResult struct {
	// Victim is the reclaimed block.
	Victim BlockRef
	// Moved counts valid pages relocated out of the victim.
	Moved int
	// Duration is the flash time consumed: Moved*(read+program) + erase.
	Duration sim.Time
	// Channel is the flash channel blocked for Duration.
	Channel int
}

// BurstResult aggregates a GC burst (§3.5: one gc_op covers freeing enough
// blocks to climb back above the threshold).
type BurstResult struct {
	Blocks   int
	Moved    int
	Duration sim.Time
	// PerChannel is the blocked time per channel index.
	PerChannel map[int]sim.Time
}

// stepDuration prices one GC step from the device profile.
func (f *FTL) stepDuration(moved int) sim.Time {
	p := f.dev.Profile()
	return sim.Time(moved)*(p.ReadPage+p.ProgramPage) + p.EraseBlock
}

// victim selects the candidate block with the fewest valid pages (greedy
// policy, the paper's default). Free, active, and borrowed-in-use blocks
// are excluded. Returns false when no block can be reclaimed at a profit.
func (f *FTL) victim() (BlockRef, bool) {
	geo := f.dev.Geometry()
	arr := f.dev.Array()
	best := BlockRef{Block: -1}
	bestValid := geo.PagesPerBlock + 1
	for _, ca := range f.chips {
		for b := 0; b < geo.BlocksPerChip; b++ {
			if ca.isFree[b] || ca.active == b {
				continue
			}
			blk := &arr.Chips[chipFlat(f.dev, ca.ref)].Blocks[b]
			if blk.Bad || blk.WritePtr == 0 {
				continue
			}
			if blk.Valid < bestValid {
				bestValid = blk.Valid
				best = BlockRef{Chip: ca.ref, Block: b}
			}
		}
	}
	if best.Block < 0 || bestValid >= geo.PagesPerBlock {
		// Reclaiming a fully valid block frees no net space.
		return BlockRef{}, false
	}
	return best, true
}

// CollectOnce reclaims a single victim block: relocates its valid pages,
// erases it, and returns the work done. ok is false when nothing can be
// collected.
func (f *FTL) CollectOnce() (GCResult, bool) {
	v, ok := f.victim()
	if !ok {
		return GCResult{}, false
	}
	res, err := f.reclaim(v)
	if err != nil {
		return GCResult{}, false
	}
	return res, true
}

// reclaim relocates and erases one specific block.
func (f *FTL) reclaim(v BlockRef) (GCResult, error) {
	geo := f.dev.Geometry()
	arr := f.dev.Array()
	vaddr := flash.Addr{Channel: v.Chip.Channel, Chip: v.Chip.Chip, Block: v.Block}
	blk := arr.BlockAt(vaddr)
	moved := 0
	for p := 0; p < geo.PagesPerBlock; p++ {
		if blk.State[p] != flash.PageValid {
			continue
		}
		src := vaddr
		src.Page = p
		lpn, ok := f.reverse[geo.PPN(src)]
		if !ok {
			return GCResult{}, fmt.Errorf("ssd: valid page %v has no reverse mapping", src)
		}
		dst, err := f.allocPage(v, true)
		if err != nil {
			return GCResult{}, err
		}
		f.commitMapping(lpn, dst)
		f.gcMoves++
		moved++
	}
	if err := arr.Erase(vaddr); err != nil {
		// The block wore out on this erase; it is retired, not freed.
		f.gcErases++
		return GCResult{Victim: v, Moved: moved, Duration: f.stepDuration(moved), Channel: v.Chip.Channel}, nil
	}
	f.gcErases++
	for _, ca := range f.chips {
		if ca.ref == v.Chip {
			ca.free = append(ca.free, v.Block)
			ca.isFree[v.Block] = true
			break
		}
	}
	return GCResult{Victim: v, Moved: moved, Duration: f.stepDuration(moved), Channel: v.Chip.Channel}, nil
}

// CollectBurst reclaims blocks until FreeRatio reaches target, no victim
// remains, or maxBlocks are reclaimed (0 = unlimited). The cap keeps one
// GC event at "a few milliseconds" of channel time — the granularity the
// paper's tail-latency numbers reflect — with further events following in
// later monitoring rounds. It aggregates per-channel blocked time so the
// caller can occupy the channel resources for the right spans.
func (f *FTL) CollectBurst(target float64, maxBlocks int) BurstResult {
	out := BurstResult{PerChannel: map[int]sim.Time{}}
	for f.FreeRatio() < target {
		if maxBlocks > 0 && out.Blocks >= maxBlocks {
			break
		}
		res, ok := f.CollectOnce()
		if !ok {
			break
		}
		out.Blocks++
		out.Moved += res.Moved
		out.Duration += res.Duration
		out.PerChannel[res.Channel] += res.Duration
	}
	return out
}

// VacateBorrowed relocates any data left in borrowed blocks back onto the
// FTL's own chips, erases the borrowed blocks ("for security", §3.5.2),
// and returns them so the lender can reclaim them via GiveBack. The second
// return value is the flash time consumed.
func (f *FTL) VacateBorrowed() ([]BlockRef, sim.Time) {
	geo := f.dev.Geometry()
	arr := f.dev.Array()
	var returned []BlockRef
	var dur sim.Time
	// Sort the in-use set so relocation order (and thus FTL state) is
	// deterministic; map iteration order would leak randomness into runs.
	inUse := make([]BlockRef, 0, len(f.borrowedInUse))
	for br := range f.borrowedInUse {
		inUse = append(inUse, br)
	}
	sort.Slice(inUse, func(i, j int) bool {
		a, b := inUse[i], inUse[j]
		if a.Chip != b.Chip {
			if a.Chip.Channel != b.Chip.Channel {
				return a.Chip.Channel < b.Chip.Channel
			}
			return a.Chip.Chip < b.Chip.Chip
		}
		return a.Block < b.Block
	})
	for _, br := range inUse {
		vaddr := flash.Addr{Channel: br.Chip.Channel, Chip: br.Chip.Chip, Block: br.Block}
		blk := arr.BlockAt(vaddr)
		moved := 0
		for p := 0; p < geo.PagesPerBlock; p++ {
			if blk.State[p] != flash.PageValid {
				continue
			}
			src := vaddr
			src.Page = p
			lpn, ok := f.reverse[geo.PPN(src)]
			if !ok {
				continue
			}
			// Relocation target must be an owned chip, not another
			// borrowed block, so exclusion alone is not enough; drain
			// borrowed list temporarily.
			saved := f.borrowed
			f.borrowed = nil
			dst, err := f.allocPage(br, true)
			f.borrowed = saved
			if err != nil {
				// No owned space: leave the page, the lender's erase
				// would lose data; abort this block's return.
				moved = -1
				break
			}
			f.commitMapping(lpn, dst)
			f.gcMoves++
			moved++
		}
		if moved < 0 {
			continue
		}
		arr.Erase(vaddr)
		f.gcErases++
		dur += f.stepDuration(moved)
		returned = append(returned, br)
		delete(f.borrowedInUse, br)
	}
	// Unused borrowed blocks go back as-is (they are still erased).
	returned = append(returned, f.borrowed...)
	f.borrowed = nil
	return returned, dur
}
