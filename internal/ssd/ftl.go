package ssd

import (
	"errors"
	"fmt"

	"rackblox/internal/flash"
)

// BlockRef names one erase block inside a device.
type BlockRef struct {
	Chip  ChipRef
	Block int
}

// ErrNoSpace is returned when no free page can be allocated.
var ErrNoSpace = errors.New("ssd: no free pages available")

// gcReserveBlocks is the number of free blocks host writes may never
// consume, so garbage collection always has relocation space. One block is
// enough: a victim holds at most PagesPerBlock-1 valid pages and erasing it
// restores the reserve before the next reclaim.
const gcReserveBlocks = 1

// ErrUnmapped is returned when reading a never-written logical page.
var ErrUnmapped = errors.New("ssd: logical page not mapped")

// chipAlloc is the per-chip allocation state of an FTL.
type chipAlloc struct {
	ref    ChipRef
	free   []int  // free block indices, allocation pulls min-wear
	isFree []bool // parallel "is block free" flags
	active int    // block currently being programmed, -1 if none
}

// FTL is a page-mapped flash translation layer over a set of chips.
// Each vSSD owns one FTL ("each vSSD has its own address mapping table",
// §3.3). Chips are never shared between FTLs; software-isolated vSSDs
// share channels, not chips.
type FTL struct {
	dev          *Device
	chips        []*chipAlloc
	mapping      []int       // LPN -> global PPN, -1 when unmapped
	reverse      map[int]int // global PPN -> LPN
	nextChip     int         // round-robin allocation cursor
	logicalPages int

	// Borrowed free blocks from collocated vSSDs in the same channel
	// group (§3.5.2): usable for allocation, returned after group GC.
	borrowed      []BlockRef       // still-free borrowed blocks
	borrowedInUse map[BlockRef]int // borrowed blocks holding data -> chip placeholder

	hostWrites int64 // pages written by the host
	gcMoves    int64 // pages moved by garbage collection
	gcErases   int64 // blocks erased by garbage collection
}

// NewFTL builds an FTL over the given chips. utilization in (0,1) sets the
// exported logical space as a fraction of raw pages; the rest is
// over-provisioning that garbage collection feeds on.
func NewFTL(dev *Device, chips []ChipRef, utilization float64) (*FTL, error) {
	if len(chips) == 0 {
		return nil, errors.New("ssd: FTL needs at least one chip")
	}
	if utilization <= 0 || utilization >= 1 {
		return nil, fmt.Errorf("ssd: utilization %f outside (0,1)", utilization)
	}
	geo := dev.Geometry()
	f := &FTL{
		dev:           dev,
		reverse:       make(map[int]int),
		borrowedInUse: make(map[BlockRef]int),
	}
	for _, c := range chips {
		if c.Channel < 0 || c.Channel >= geo.Channels || c.Chip < 0 || c.Chip >= geo.ChipsPerChannel {
			return nil, fmt.Errorf("ssd: chip %+v out of range", c)
		}
		ca := &chipAlloc{ref: c, active: -1, isFree: make([]bool, geo.BlocksPerChip)}
		for b := 0; b < geo.BlocksPerChip; b++ {
			ca.free = append(ca.free, b)
			ca.isFree[b] = true
		}
		f.chips = append(f.chips, ca)
	}
	raw := len(chips) * geo.BlocksPerChip * geo.PagesPerBlock
	f.logicalPages = int(float64(raw) * utilization)
	if f.logicalPages < 1 {
		return nil, errors.New("ssd: logical space rounds to zero pages")
	}
	f.mapping = make([]int, f.logicalPages)
	for i := range f.mapping {
		f.mapping[i] = -1
	}
	return f, nil
}

// Device returns the device this FTL allocates on.
func (f *FTL) Device() *Device { return f.dev }

// Chips returns the chip set owned by the FTL.
func (f *FTL) Chips() []ChipRef {
	refs := make([]ChipRef, len(f.chips))
	for i, c := range f.chips {
		refs[i] = c.ref
	}
	return refs
}

// Channels returns the distinct channels the FTL's chips live on.
func (f *FTL) Channels() []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range f.chips {
		if !seen[c.ref.Channel] {
			seen[c.ref.Channel] = true
			out = append(out, c.ref.Channel)
		}
	}
	return out
}

// LogicalPages returns the exported logical page count.
func (f *FTL) LogicalPages() int { return f.logicalPages }

// TotalBlocks returns raw blocks owned (excluding borrowed).
func (f *FTL) TotalBlocks() int {
	return len(f.chips) * f.dev.Geometry().BlocksPerChip
}

// FreeBlocks returns the number of fully erased blocks available for
// allocation, including borrowed ones.
func (f *FTL) FreeBlocks() int {
	n := len(f.borrowed)
	for _, c := range f.chips {
		n += len(c.free)
	}
	return n
}

// FreeRatio returns FreeBlocks / TotalBlocks, the quantity compared against
// the paper's soft (35%) and regular (25%) GC thresholds.
func (f *FTL) FreeRatio() float64 {
	return float64(f.FreeBlocks()) / float64(f.TotalBlocks())
}

// HostWrites returns pages written by the host.
func (f *FTL) HostWrites() int64 { return f.hostWrites }

// GCMoves returns pages relocated by GC.
func (f *FTL) GCMoves() int64 { return f.gcMoves }

// GCErases returns blocks erased by GC.
func (f *FTL) GCErases() int64 { return f.gcErases }

// WriteAmplification returns (host + GC writes) / host writes.
func (f *FTL) WriteAmplification() float64 {
	if f.hostWrites == 0 {
		return 1
	}
	return float64(f.hostWrites+f.gcMoves) / float64(f.hostWrites)
}

// Read resolves a logical page to its physical address.
func (f *FTL) Read(lpn int) (flash.Addr, error) {
	if lpn < 0 || lpn >= f.logicalPages {
		return flash.Addr{}, fmt.Errorf("ssd: lpn %d out of range [0,%d)", lpn, f.logicalPages)
	}
	ppn := f.mapping[lpn]
	if ppn < 0 {
		return flash.Addr{}, ErrUnmapped
	}
	return f.dev.Geometry().AddrOf(ppn), nil
}

// Write allocates a fresh physical page for the logical page, updating the
// mapping and invalidating any previous copy. Only state changes; timing
// is charged by the caller via Device.TimeProgram.
func (f *FTL) Write(lpn int) (flash.Addr, error) {
	if lpn < 0 || lpn >= f.logicalPages {
		return flash.Addr{}, fmt.Errorf("ssd: lpn %d out of range [0,%d)", lpn, f.logicalPages)
	}
	addr, err := f.allocPage(BlockRef{Block: -1}, false)
	if err != nil {
		return flash.Addr{}, err
	}
	f.commitMapping(lpn, addr)
	f.hostWrites++
	return addr, nil
}

// commitMapping points lpn at addr, invalidating the previous location.
func (f *FTL) commitMapping(lpn int, addr flash.Addr) {
	geo := f.dev.Geometry()
	if old := f.mapping[lpn]; old >= 0 {
		if err := f.dev.Array().Invalidate(geo.AddrOf(old)); err != nil {
			panic(fmt.Sprintf("ssd: corrupt mapping for lpn %d: %v", lpn, err))
		}
		delete(f.reverse, old)
	}
	ppn := geo.PPN(addr)
	f.mapping[lpn] = ppn
	f.reverse[ppn] = lpn
}

// allocPage returns the next free physical page, rotating across chips for
// parallelism and skipping the excluded block (the GC victim). forGC marks
// relocation writes, which may dip into the GC reserve.
func (f *FTL) allocPage(exclude BlockRef, forGC bool) (flash.Addr, error) {
	geo := f.dev.Geometry()
	for try := 0; try < len(f.chips); try++ {
		ca := f.chips[f.nextChip]
		f.nextChip = (f.nextChip + 1) % len(f.chips)
		addr, err := f.allocOnChip(ca, exclude, forGC)
		if err == nil {
			return addr, nil
		}
	}
	// Own chips exhausted: fall back to borrowed blocks.
	for len(f.borrowed) > 0 {
		if !forGC && f.FreeBlocks() <= gcReserveBlocks {
			break
		}
		br := f.borrowed[len(f.borrowed)-1]
		addr := flash.Addr{Channel: br.Chip.Channel, Chip: br.Chip.Chip, Block: br.Block}
		page, err := f.dev.Array().Program(addr)
		if err != nil {
			// Borrowed block unusable (worn out); drop it.
			f.borrowed = f.borrowed[:len(f.borrowed)-1]
			continue
		}
		addr.Page = page
		blk := f.dev.Array().BlockAt(addr)
		if blk.WritePtr >= geo.PagesPerBlock {
			f.borrowed = f.borrowed[:len(f.borrowed)-1]
			f.borrowedInUse[br] = 1
		} else if _, ok := f.borrowedInUse[br]; !ok {
			f.borrowedInUse[br] = 1
		}
		return addr, nil
	}
	return flash.Addr{}, ErrNoSpace
}

// allocOnChip programs the next page of the chip's active block, opening a
// new block (minimum wear first, the device-level wear leveling of §3.3)
// when the active block is full or missing.
func (f *FTL) allocOnChip(ca *chipAlloc, exclude BlockRef, forGC bool) (flash.Addr, error) {
	geo := f.dev.Geometry()
	arr := f.dev.Array()
	for {
		if ca.active < 0 {
			if !f.openBlock(ca, exclude, forGC) {
				return flash.Addr{}, ErrNoSpace
			}
		}
		addr := flash.Addr{Channel: ca.ref.Channel, Chip: ca.ref.Chip, Block: ca.active}
		page, err := arr.Program(addr)
		if err == nil {
			addr.Page = page
			if arr.BlockAt(addr).WritePtr >= geo.PagesPerBlock {
				ca.active = -1 // block now full; graduate it
			}
			return addr, nil
		}
		// Active block full or bad: retire it and retry with a new one.
		ca.active = -1
	}
}

// openBlock pops the least-worn free block of the chip into active.
// Host writes (forGC false) must leave the GC reserve untouched.
func (f *FTL) openBlock(ca *chipAlloc, exclude BlockRef, forGC bool) bool {
	if !forGC && f.FreeBlocks() <= gcReserveBlocks {
		return false
	}
	arr := f.dev.Array()
	best, bestWear := -1, int(^uint(0)>>1)
	for i, b := range ca.free {
		if exclude.Block == b && exclude.Chip == ca.ref {
			continue
		}
		blk := &arr.Chips[chipFlat(f.dev, ca.ref)].Blocks[b]
		if blk.Bad {
			continue
		}
		if blk.EraseCount < bestWear {
			bestWear = blk.EraseCount
			best = i
		}
	}
	if best < 0 {
		return false
	}
	b := ca.free[best]
	ca.free = append(ca.free[:best], ca.free[best+1:]...)
	ca.isFree[b] = false
	ca.active = b
	return true
}

func chipFlat(d *Device, c ChipRef) int {
	return c.Channel*d.Geometry().ChipsPerChannel + c.Chip
}

// Borrow removes up to n free blocks from this FTL's free lists and hands
// them to a collocated vSSD (§3.5.2 block borrowing). Fewer than n may be
// returned when free space is short.
func (f *FTL) Borrow(n int) []BlockRef {
	var out []BlockRef
	for _, ca := range f.chips {
		for n > 0 && len(ca.free) > 0 {
			b := ca.free[len(ca.free)-1]
			ca.free = ca.free[:len(ca.free)-1]
			ca.isFree[b] = false
			out = append(out, BlockRef{Chip: ca.ref, Block: b})
			n--
		}
		if n == 0 {
			break
		}
	}
	return out
}

// AcceptBorrowed adds foreign free blocks to the allocation pool.
func (f *FTL) AcceptBorrowed(blocks []BlockRef) {
	f.borrowed = append(f.borrowed, blocks...)
}

// GiveBack restores previously lent blocks to this FTL's free lists. The
// blocks must already be erased.
func (f *FTL) GiveBack(blocks []BlockRef) {
	for _, br := range blocks {
		for _, ca := range f.chips {
			if ca.ref == br.Chip {
				ca.free = append(ca.free, br.Block)
				ca.isFree[br.Block] = true
				break
			}
		}
	}
}

// BorrowedInUse returns how many borrowed blocks currently hold data.
func (f *FTL) BorrowedInUse() int { return len(f.borrowedInUse) }

// BorrowedFree returns how many borrowed blocks remain unused.
func (f *FTL) BorrowedFree() int { return len(f.borrowed) }
