package core

import (
	"rackblox/internal/packet"
	"rackblox/internal/sim"
	"rackblox/internal/trace"
)

// Spine is the explicit cross-rack boundary: the one place where traffic
// between racks is latency-charged and bandwidth-metered, and the one
// object cross-rack code is allowed to touch. Everything that leaves a
// rack — ToR handoffs, Hermes replication messages, degraded-read chunk
// fetches, repair batches, re-integration updates — pays the spine here,
// never by reaching into another rack's objects. In the sharded topology
// the spine lives on the coordinator shard (shard 0 of the rack's
// sim.ShardGroup), which is exactly why the boundary must be explicit:
// it is the only state cross-rack interactions may share.
//
// With one rack the spine degenerates to the paper's testbed: no link
// (nil), zero latency, every meter call free.
type Spine struct {
	eng      *sim.Engine
	link     *sim.Bandwidth // nil with one rack
	latency  sim.Time
	pageSize int64

	// Cross-rack repair accounting: chunk bytes moved over the spine for
	// degraded reads and background reconstruction. The delivered
	// counter advances only when a transfer's last byte clears the link;
	// the offered counter keeps the enqueue-time meaning, so a run that
	// ends mid-transfer reports delivered < offered instead of claiming
	// bytes the spine never finished moving.
	crossRepairBytes   int64
	crossRepairOffered int64
	crossFetches       int64
	// Foreground accounting: client/stripe packet bytes metered on the
	// same spine (handoffs, cross-rack requests, responses, replication
	// messages), kept separate from repair bytes so the two traffic
	// classes can be compared while contending for one link. Delivered/
	// offered split as for repair bytes.
	foregroundBytes   int64
	foregroundOffered int64
}

// newSpine builds the cross-rack boundary for a topology of racks fault
// domains on eng (the coordinator shard's engine). The link exists only
// when racks > 1.
func newSpine(eng *sim.Engine, cfg *Config) *Spine {
	s := &Spine{
		eng:      eng,
		latency:  cfg.CrossRackLatency,
		pageSize: int64(cfg.Geometry.PageSize),
	}
	if cfg.racks() > 1 {
		s.link = sim.NewBandwidth(eng, cfg.CrossRackMBps*1e6)
	}
	return s
}

// Latency is the added one-way latency between two racks (0 within one
// rack).
func (s *Spine) Latency(a, b int) sim.Time {
	if a == b {
		return 0
	}
	return s.latency
}

// Propagation returns the unconditional cross-rack propagation latency —
// the Latency(a, b) value for any a != b.
func (s *Spine) Propagation() sim.Time { return s.latency }

// Link exposes the metered bandwidth object (nil with one rack) for
// components that share the spine's capacity directly, like the repair
// pacer.
func (s *Spine) Link() *sim.Bandwidth { return s.link }

// frameHeaderBytes is the header cost every metered spine frame pays.
const frameHeaderBytes = 64

// MessageBytes sizes one spine frame: a header, plus a page when the
// message carries data. The single sizing rule for every foreground
// class (client packets, handoffs, replication messages).
func (s *Spine) MessageBytes(carriesPage bool) int64 {
	if carriesPage {
		return frameHeaderBytes + s.pageSize
	}
	return frameHeaderBytes
}

// FrameBytes estimates a packet's wire size for spine metering: ops
// that carry a page of data (writes and responses) move the page plus a
// header; the rest are header-only control frames. Write acks are
// overcounted as a page — the approximation errs toward congestion.
func (s *Spine) FrameBytes(pkt packet.Packet) int64 {
	return s.MessageBytes(pkt.Op == packet.OpWrite || pkt.Op == packet.OpResponse)
}

// MeterForeground reserves the spine for one foreground (non-repair)
// payload and returns the extra delay the sender pays before the spine's
// propagation latency: queueing behind earlier transfers — repair
// batches included, so client and repair traffic contend realistically —
// plus the transfer time itself. Free (and zero-delay) with one rack.
func (s *Spine) MeterForeground(bytes int64) sim.Time {
	return s.MeterForegroundTraced(bytes, nil)
}

// MeterForegroundTraced is MeterForeground plus flight-recorder detail:
// a non-nil sp gets the spine queueing wait and the transfer window as
// child spans. Recording only reads the transfer's reservation times, so
// traced behavior is byte-identical to untraced.
func (s *Spine) MeterForegroundTraced(bytes int64, sp *trace.Span) sim.Time {
	if s.link == nil || bytes <= 0 {
		return 0
	}
	s.foregroundOffered += bytes
	start, end := s.link.Transfer(bytes, func(_, _ sim.Time) { s.foregroundBytes += bytes })
	if sp != nil {
		if now := s.eng.Now(); start > now {
			sp.Child("spine_wait", now).EndAt(start)
		}
		x := sp.Child("spine_xfer", start)
		x.EndAt(end)
		x.Annotate(trace.Int("bytes", bytes))
	}
	return end - s.eng.Now()
}

// CrossFetch ships one repair payload (bytes of chunk data) over the
// metered spine link, returning the transfer window and calling done
// (may be nil) once the last byte has cleared the link. It is the single
// accounting point for cross-rack repair traffic; transfers serialize on
// the link, so aggregate repair throughput can never exceed the
// configured cross-rack bandwidth.
func (s *Spine) CrossFetch(bytes int64, done func(sim.Time)) (start, end sim.Time) {
	s.crossRepairOffered += bytes
	s.crossFetches++
	return s.link.Transfer(bytes, func(_, e sim.Time) {
		s.crossRepairBytes += bytes
		if done != nil {
			done(e)
		}
	})
}

// Utilization returns the cross-rack link's busy fraction (0 with a
// single rack).
func (s *Spine) Utilization() float64 {
	if s.link == nil {
		return 0
	}
	return s.link.Utilization()
}

// CrossRepairBytes returns the chunk bytes repair traffic has fully
// moved over the spine so far (transfers still in flight excluded).
func (s *Spine) CrossRepairBytes() int64 { return s.crossRepairBytes }

// CrossRepairBytesOffered returns the repair bytes handed to the spine,
// counted at enqueue — the old meaning of CrossRepairBytes.
func (s *Spine) CrossRepairBytesOffered() int64 { return s.crossRepairOffered }

// CrossFetches returns how many repair transfers the spine has accepted.
func (s *Spine) CrossFetches() int64 { return s.crossFetches }

// ForegroundBytes returns the foreground (non-repair) bytes the spine
// has fully delivered so far.
func (s *Spine) ForegroundBytes() int64 { return s.foregroundBytes }

// ForegroundBytesOffered returns the foreground bytes handed to the
// spine, counted at enqueue.
func (s *Spine) ForegroundBytesOffered() int64 { return s.foregroundOffered }
