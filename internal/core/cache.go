package core

// cacheKey identifies one dirty page in a server's DRAM write cache.
type cacheKey struct {
	vssd uint32
	lpn  uint32
}

// writeCache is the per-server DRAM cache that absorbs writes during GC
// (§3.5.1: "We avoid long tail latencies for writes by utilizing existing
// DRAM caches ... writes are considered complete when all replicas have a
// DRAM copy and are flushed in the background").
//
// Rewriting a page that is already dirty is absorbed in place and costs no
// new slot, so hot keys never back-pressure the client.
type writeCache struct {
	capacity int
	dirty    map[cacheKey]bool
	fifo     []cacheKey // flush order; may contain absorbed duplicates
	// flushing counts pages popped for flush whose flash program has not
	// completed: they still occupy DRAM, so they count against capacity.
	flushing int
	inserted int64
	absorbed int64
}

func newWriteCache(capacity int) *writeCache {
	if capacity < 1 {
		capacity = 1
	}
	return &writeCache{capacity: capacity, dirty: make(map[cacheKey]bool)}
}

// Full reports whether a new (non-absorbed) insert would exceed capacity.
func (c *writeCache) Full() bool { return len(c.dirty)+c.flushing >= c.capacity }

// Len returns the number of dirty pages.
func (c *writeCache) Len() int { return len(c.dirty) }

// Contains reports whether the page is dirty (a cache read hit).
func (c *writeCache) Contains(vssd, lpn uint32) bool {
	return c.dirty[cacheKey{vssd, lpn}]
}

// Insert adds a dirty page. It returns false when the cache is full and
// the write must wait for flush back-pressure; rewrites of already-dirty
// pages always succeed.
func (c *writeCache) Insert(vssd, lpn uint32) bool {
	k := cacheKey{vssd, lpn}
	if c.dirty[k] {
		c.absorbed++
		return true
	}
	if c.Full() {
		return false
	}
	c.dirty[k] = true
	c.fifo = append(c.fifo, k)
	c.inserted++
	return true
}

// NextFlush pops the oldest dirty page for background flushing, skipping
// entries that were re-absorbed and already flushed. The page keeps
// occupying DRAM until FlushDone.
func (c *writeCache) NextFlush() (vssd, lpn uint32, ok bool) {
	for len(c.fifo) > 0 {
		k := c.fifo[0]
		c.fifo = c.fifo[1:]
		if c.dirty[k] {
			delete(c.dirty, k)
			c.flushing++
			return k.vssd, k.lpn, true
		}
	}
	return 0, 0, false
}

// FlushDone releases the DRAM slot of a completed flush.
func (c *writeCache) FlushDone() {
	if c.flushing > 0 {
		c.flushing--
	}
}

// Stats returns insert and absorb counters.
func (c *writeCache) Stats() (inserted, absorbed int64) { return c.inserted, c.absorbed }
