package core

import (
	"rackblox/internal/sim"
	"rackblox/internal/stats"
	"rackblox/internal/switchsim"
	"rackblox/internal/trace"
)

// Result is the outcome of one rack run.
type Result struct {
	System System
	Config Config
	// Recorder holds every measured request with latency breakdowns.
	Recorder *stats.Recorder
	// Switch counts data-plane events, including read redirections.
	Switch switchsim.Stats

	// GC accounting aggregated over all instances.
	GCEvents     int
	GCDelayed    int
	BGGCEvents   int
	ForcedGCs    int64
	GCOpsSent    int64
	GCOpRetries  int64
	DelayedByCtl int64

	// Failure handling (§3.7).
	Failovers    int64
	LostRequests int64

	// Datapath counters.
	Bounces      int64
	CacheHits    int64
	StaleRetries int64
	SWRedirects  int64

	// Erasure-coding counters. DegradedReads counts reads served by
	// reconstructing from k chunks instead of the home holder;
	// ECSubWrites counts the fan-out sub-writes (1 data + m parity per
	// logical write); RepairedStripes/RepairPending/RepairDelayed
	// account the background reconstructor and its GC-idle-window gate.
	DegradedReads      int64
	UnrecoverableReads int64
	ECSubWrites        int64
	ECRetransmits      int64
	LostReads          int64
	RepairedStripes    int64
	RepairPending      int64
	RepairDelayed      int64

	// Local-parity (LRC) counters, all zero outside the LocalParityCoded
	// family. LocalRepairStripes counts stripes rebuilt by the zero-spine
	// rack-local XOR plan and AggregatedRepairStripes those rebuilt by
	// the global plan with per-rack aggregation (one shipped batch per
	// remote rack instead of one per survivor); LocalDegradedReads counts
	// degraded reads served entirely inside the coordinator's rack.
	LocalRepairStripes      int64
	AggregatedRepairStripes int64
	LocalDegradedReads      int64

	// Multi-rack cluster counters. CrossRackRepairBytes is the chunk
	// bytes repair traffic (degraded-read fetches plus background
	// reconstruction) moved over the spine; its average rate is bounded
	// by Config.CrossRackMBps because transfers serialize on the link.
	// UnrecoverableStripes counts stripes whose surviving chunk holders
	// dropped below k — actual data loss, the figure compact placement
	// shows under a whole-rack failure and spread placement avoids.
	CrossRackRepairBytes int64
	CrossRackFetches     int64
	SpineUtilization     float64
	UnrecoverableStripes int64
	// ForegroundCrossRackBytes is the client/stripe traffic (handoffs,
	// cross-rack requests and responses, replication messages) metered
	// on the same spine link — reported separately from repair bytes so
	// the two contending classes can be compared. SpineUtilization
	// covers both.
	ForegroundCrossRackBytes int64
	// CrossRackRepairBytesOffered and ForegroundCrossRackBytesOffered
	// count spine bytes at enqueue time — the old (dishonest) meaning of
	// the delivered counters above, kept so the two can be reconciled:
	// delivered <= offered always, equal once the simulation drains
	// every in-flight transfer.
	CrossRackRepairBytesOffered     int64
	ForegroundCrossRackBytesOffered int64

	// Recovery-lifecycle counters (fail -> repair -> re-integrate ->
	// revive). ReintegratedStripes counts stripes whose rebuilt chunks
	// were re-registered with a replacement holder in the switch stripe
	// tables; DegradedReadsPostRepair counts degraded reads served for
	// a crashed-and-re-integrated holder after its group finished
	// healing, excluding steering legitimately caused by the
	// replacement itself collecting or being unreachable — zero when
	// the loop closes correctly; ToRRevivals counts dark switches
	// brought back by Cluster.ReviveToR. ServerRevivals counts crashed
	// servers brought back by a ReviveServer scenario event
	// (Cluster.ReviveServer), and RestoredHolders the chunk holders
	// whose catch-up repair landed the full chunk set back on the
	// revived original server, re-registered under their own ids.
	ReintegratedStripes     int64
	DegradedReadsPostRepair int64
	ToRRevivals             int64
	ServerRevivals          int64
	RestoredHolders         int64

	// SLO-aware repair pacing (Config.RepairSLO). RepairCompletionTime
	// is the instant the last repair batch finished (0 when no repair
	// ran) — with pacing on, the cost side of the latency/repair-time
	// trade-off. SLOViolationFraction is the fraction of controller
	// ticks whose windowed foreground read p99 exceeded the SLO target
	// (0 when pacing is off). RepairRateTimeline records every admission
	// rate the AIMD controller set, starting with the initial rate at
	// time 0.
	RepairCompletionTime sim.Time
	SLOViolationFraction float64
	RepairRateTimeline   []RatePoint

	// WriteAmp is the mean write amplification across instances.
	WriteAmp float64
	// SimulatedTime is the virtual time the run covered.
	SimulatedTime sim.Time
	// Events is the number of discrete events processed.
	Events uint64
	// EventsByHandler breaks Events down by handler label ("resource",
	// "paced.wake", "switch.pipeline", "scenario", "other") — a cheap
	// profile of where the engine's work went.
	EventsByHandler map[string]uint64 `json:",omitempty"`

	// Flight recorder output (Config.Trace / Config.MetricsInterval).
	// All three are nil/empty unless explicitly enabled; the recorder is
	// observer-only, so enabling it never changes any other field.
	//
	// Trace holds the retained request spans (head-sampled plus the
	// slowest-read tail reservoir), control-plane instants, and GC
	// windows; WriteChromeTrace renders it for Perfetto.
	Trace *trace.Trace `json:",omitempty"`
	// Timelines is the periodic metrics sampled every MetricsInterval.
	Timelines *stats.TimeSeries `json:",omitempty"`
	// TailAttribution is the per-phase latency share of the slowest 1%
	// of measured reads; fractions sum to ~1.
	TailAttribution []trace.PhaseShare `json:",omitempty"`
}

// Run executes one configured experiment end to end.
func Run(cfg Config) (*Result, error) {
	r, err := NewRack(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run(), nil
}

// Run drives the rack: clients issue during [0, Warmup+Duration), GC
// monitors patrol, then the event queue drains outstanding work.
func (r *Rack) Run() *Result {
	r.stopIssuing = r.cfg.Warmup + r.cfg.Duration
	r.startMetrics()
	r.startClients()
	r.startGCMonitors()
	r.scheduleFailure()
	if r.pacer != nil {
		r.eng.AfterNamed(r.pacer.slo.Interval, "paced.tick", func(sim.Time) { r.pacerTick() })
	}
	r.eng.Run()

	res := &Result{
		System:             r.cfg.System,
		Config:             r.cfg,
		Recorder:           r.rec,
		Switch:             r.cluster.Stats(),
		ForcedGCs:          r.forcedGCs,
		GCOpsSent:          r.gcOpsSent,
		GCOpRetries:        r.gcOpRetries,
		DelayedByCtl:       r.delayedByCtrl,
		Failovers:          r.failovers,
		LostRequests:       r.lostRequests,
		Bounces:            r.bounces,
		CacheHits:          r.cacheHits,
		StaleRetries:       r.staleRetries,
		SWRedirects:        r.swRedirects,
		DegradedReads:      r.degradedReads,
		UnrecoverableReads: r.unrecoverableReads,
		ECSubWrites:        r.ecSubWrites,
		ECRetransmits:      r.ecRetransmits,
		LostReads:          r.lostReads,

		LocalRepairStripes:      r.localRepairStripes,
		AggregatedRepairStripes: r.aggRepairStripes,
		LocalDegradedReads:      r.localDegradedReads,

		SimulatedTime:   r.eng.Now(),
		Events:          r.eng.Processed(),
		EventsByHandler: r.eng.ProcessedBy(),
	}
	if r.tracer != nil {
		res.Trace = r.tracer.Collect()
		res.TailAttribution = res.Trace.TailAttribution(0.01)
	}
	res.Timelines = r.metrics
	res.CrossRackRepairBytes = r.cluster.spine.crossRepairBytes
	res.CrossRackRepairBytesOffered = r.cluster.spine.crossRepairOffered
	res.CrossRackFetches = r.cluster.spine.crossFetches
	res.SpineUtilization = r.cluster.SpineUtilization()
	res.ForegroundCrossRackBytes = r.cluster.spine.foregroundBytes
	res.ForegroundCrossRackBytesOffered = r.cluster.spine.foregroundOffered
	res.RepairCompletionTime = r.lastRepairDone
	if r.pacer != nil {
		res.SLOViolationFraction = r.pacer.violationFraction()
		res.RepairRateTimeline = append([]RatePoint(nil), r.pacer.timeline...)
	}
	res.ReintegratedStripes = r.reintegratedStripes
	res.DegradedReadsPostRepair = r.degradedReadsPostRepair
	res.ToRRevivals = r.cluster.torRevivals
	res.ServerRevivals = r.cluster.serverRevivals
	res.RestoredHolders = r.restoredHolders
	for _, g := range r.groups {
		res.RepairedStripes += int64(g.recon.RepairedStripes())
		res.RepairPending += int64(g.recon.Pending())
		res.RepairDelayed += int64(g.recon.DelayCount())
		// A stripe with fewer than k effectively-alive global chunks is
		// data loss: every global member holds one chunk of every
		// stripe. Under the LRC family a rack whose only casualty is a
		// single global member still contributes that chunk — it is
		// locally recoverable from the rack's survivors plus its local
		// parity — so it counts as alive for durability.
		width := g.spec.Width()
		alive := 0
		if g.hasLocalParity() {
			deadByRack := make(map[int]int)
			deadGlobalByRack := make(map[int]int)
			for i, m := range g.insts {
				if m.server.failed {
					deadByRack[m.server.rackIdx]++
					if i < width {
						deadGlobalByRack[m.server.rackIdx]++
					}
				}
			}
			for _, m := range g.insts[:width] {
				rack := m.server.rackIdx
				if !m.server.failed ||
					(deadByRack[rack] == 1 && deadGlobalByRack[rack] == 1) {
					alive++
				}
			}
		} else {
			for _, m := range g.insts {
				if !m.server.failed {
					alive++
				}
			}
		}
		if alive < g.spec.K {
			res.UnrecoverableStripes += int64(g.usedStripes)
		}
	}
	insts := r.allInstances()
	var wa float64
	for _, inst := range insts {
		res.GCEvents += inst.gcEvents
		res.GCDelayed += inst.gcDelayed
		res.BGGCEvents += inst.bgGCEvents
		wa += inst.v.FTL.WriteAmplification()
	}
	res.WriteAmp = wa / float64(len(insts))
	return res
}
