package core

import (
	"errors"
	"testing"

	"rackblox/internal/sim"
)

// fuzzEvent decodes one 4-byte record into a scenario event: kind
// (modulo 6, so one value past the last real kind exercises the unknown
// branch), a signed index, and a signed coarse timestamp — negative
// times and out-of-range indices are exactly what the validator must
// reject gracefully.
func fuzzEvent(b []byte) Event {
	at := sim.Time(int16(uint16(b[2])<<8|uint16(b[3]))) * 100 * sim.Microsecond
	return Event{
		Kind:  EventKind(int(b[0]) % 6),
		Index: int(int8(b[1])),
		At:    at,
	}
}

// FuzzScenarioValidate drives the scenario-timeline validator with
// arbitrary event lists — orderings, duplicates, revive-without-fail,
// unknown kinds, negative times — and asserts it never panics and that
// every rejection is a typed *FailureSpecError whose message formats
// cleanly.
func FuzzScenarioValidate(f *testing.F) {
	// Seed corpus: the interesting accept/reject shapes.
	f.Add([]byte{0, 0, 0, 100})                            // one server crash
	f.Add([]byte{0, 0, 0, 100, 3, 0, 0, 200})              // fail then revive
	f.Add([]byte{0, 0, 0, 100, 3, 0, 0, 200, 0, 0, 1, 44}) // fail, heal, fail again
	f.Add([]byte{3, 0, 0, 100})                            // revive before fail
	f.Add([]byte{0, 0, 0, 100, 0, 0, 0, 200})              // double crash
	f.Add([]byte{1, 1, 0, 100, 2, 1, 0, 100})              // rack+tor same instant
	f.Add([]byte{2, 0, 0, 100, 4, 0, 0, 200, 2, 0, 1, 44}) // tor fail/heal/fail
	f.Add([]byte{0, 99, 0, 100})                           // out of range
	f.Add([]byte{0, 0, 255, 156})                          // negative time
	f.Add([]byte{5, 0, 0, 100})                            // unknown kind
	f.Add([]byte{1, 0, 0, 100, 3, 2, 0, 200})              // rack crash, revive one member
	f.Add([]byte{})                                        // empty timeline

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := DefaultConfig()
		cfg.Racks = 2
		cfg.StorageServers = 3
		for i := 0; i+3 < len(data); i += 4 {
			cfg.Scenario = append(cfg.Scenario, fuzzEvent(data[i:i+4]))
		}
		err := cfg.Validate()
		if err == nil {
			return
		}
		var spec *FailureSpecError
		if !errors.As(err, &spec) {
			t.Fatalf("Validate rejection is not a *FailureSpecError: %v", err)
		}
		if spec.Error() == "" {
			t.Fatal("FailureSpecError formatted to an empty message")
		}
	})
}
