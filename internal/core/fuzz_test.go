package core

import (
	"errors"
	"testing"

	"rackblox/internal/sim"
)

// fuzzEvent decodes one 4-byte record into a scenario event: kind
// (modulo 6, so one value past the last real kind exercises the unknown
// branch), a signed index, and a signed coarse timestamp — negative
// times and out-of-range indices are exactly what the validator must
// reject gracefully.
func fuzzEvent(b []byte) Event {
	at := sim.Time(int16(uint16(b[2])<<8|uint16(b[3]))) * 100 * sim.Microsecond
	return Event{
		Kind:  EventKind(int(b[0]) % 6),
		Index: int(int8(b[1])),
		At:    at,
	}
}

// FuzzScenarioValidate drives the scenario-timeline validator with
// arbitrary event lists — orderings, duplicates, revive-without-fail,
// unknown kinds, negative times — and asserts it never panics and that
// every rejection is a typed *FailureSpecError whose message formats
// cleanly. A trailing partial record (1-3 leftover bytes) doubles as a
// flag byte that sets deprecated flat Fail*/Recover* fields alongside
// the timeline: that combination must always be rejected — the
// precedence between the two forms is never resolved silently.
func FuzzScenarioValidate(f *testing.F) {
	// Seed corpus: the interesting accept/reject shapes.
	f.Add([]byte{0, 0, 0, 100})                            // one server crash
	f.Add([]byte{0, 0, 0, 100, 3, 0, 0, 200})              // fail then revive
	f.Add([]byte{0, 0, 0, 100, 3, 0, 0, 200, 0, 0, 1, 44}) // fail, heal, fail again
	f.Add([]byte{3, 0, 0, 100})                            // revive before fail
	f.Add([]byte{0, 0, 0, 100, 0, 0, 0, 200})              // double crash
	f.Add([]byte{1, 1, 0, 100, 2, 1, 0, 100})              // rack+tor same instant
	f.Add([]byte{2, 0, 0, 100, 4, 0, 0, 200, 2, 0, 1, 44}) // tor fail/heal/fail
	f.Add([]byte{0, 99, 0, 100})                           // out of range
	f.Add([]byte{0, 0, 255, 156})                          // negative time
	f.Add([]byte{5, 0, 0, 100})                            // unknown kind
	f.Add([]byte{1, 0, 0, 100, 3, 2, 0, 200})              // rack crash, revive one member
	f.Add([]byte{})                                        // empty timeline
	f.Add([]byte{0, 0, 0, 100, 1})                         // scenario + legacy FailServerIndex
	f.Add([]byte{0, 0, 0, 100, 2})                         // scenario + bare FailServerAt
	f.Add([]byte{0, 0, 0, 100, 4})                         // scenario + bare RecoverToRAt
	f.Add([]byte{0, 0, 0, 100, 8})                         // scenario + legacy FailToRIndex
	f.Add([]byte{3})                                       // legacy flags, no scenario

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := DefaultConfig()
		cfg.Racks = 2
		cfg.StorageServers = 3
		full := len(data) / 4 * 4
		for i := 0; i+3 < full; i += 4 {
			cfg.Scenario = append(cfg.Scenario, fuzzEvent(data[i:i+4]))
		}
		legacy := false
		if rest := data[full:]; len(rest) > 0 {
			flags := rest[0]
			if flags&1 != 0 {
				cfg.FailServerIndex = 0
				legacy = true
			}
			if flags&2 != 0 {
				cfg.FailServerAt = 100 * sim.Millisecond
				legacy = true
			}
			if flags&4 != 0 {
				cfg.RecoverToRAt = 200 * sim.Millisecond
				legacy = true
			}
			if flags&8 != 0 {
				cfg.FailToRIndex = 1
				legacy = true
			}
		}
		err := cfg.Validate()
		if err == nil {
			if legacy && len(cfg.Scenario) > 0 {
				t.Fatal("Validate accepted a Scenario combined with deprecated flat fields")
			}
			return
		}
		var spec *FailureSpecError
		if !errors.As(err, &spec) {
			t.Fatalf("Validate rejection is not a *FailureSpecError: %v", err)
		}
		if spec.Error() == "" {
			t.Fatal("FailureSpecError formatted to an empty message")
		}
	})
}
