package core

import (
	"fmt"

	"rackblox/internal/sim"
	"rackblox/internal/stats"
)

// metricsWindow is the sliding window the time-series latency gauges
// read: large enough to smooth a few sampling intervals of reads, small
// enough to track transients like a failure's onset.
const metricsWindow = 256

// startMetrics arms the flight recorder's time-series sampler when
// Config.MetricsInterval is set. The sampler rides the engine's observer
// tick: instruments are read between events at fixed virtual-time
// boundaries, scheduling nothing and drawing no randomness, so enabling
// it cannot perturb the simulated outcome.
func (r *Rack) startMetrics() {
	if r.cfg.MetricsInterval <= 0 {
		return
	}
	r.metricsWin = stats.NewWindowedQuantile(metricsWindow)
	ts := stats.NewTimeSeries(int64(r.cfg.MetricsInterval))
	ts.Gauge("spine_util", func() float64 { return r.cluster.SpineUtilization() })
	ts.Gauge("repair_rate_mbps", func() float64 {
		if r.pacer != nil {
			return r.pacer.rateMBps
		}
		return 0
	})
	ts.Gauge("repair_backlog", func() float64 {
		n := 0
		for _, g := range r.groups {
			n += g.recon.Pending()
		}
		return float64(n)
	})
	ts.Gauge("read_p50_ms", func() float64 { return float64(r.metricsWin.Quantile(50)) / 1e6 })
	ts.Gauge("read_p99_ms", func() float64 { return float64(r.metricsWin.P99()) / 1e6 })
	ts.Counter("reads_completed", func() float64 { return float64(r.completedReads) })
	ts.Counter("writes_completed", func() float64 { return float64(r.completedWrites) })
	ts.Counter("degraded_reads", func() float64 { return float64(r.degradedReads) })
	ts.Counter("gc_events", func() float64 {
		n := 0
		for _, inst := range r.allInstances() {
			n += inst.gcEvents
		}
		return float64(n)
	})
	ts.Counter("repair_cross_mb", func() float64 { return float64(r.cluster.spine.crossRepairBytes) / 1e6 })
	ts.Counter("fg_cross_mb", func() float64 { return float64(r.cluster.spine.foregroundBytes) / 1e6 })
	for i := range r.perRackReqs {
		i := i
		ts.Counter(fmt.Sprintf("rack%d_reqs", i), func() float64 { return float64(r.perRackReqs[i]) })
	}
	r.metrics = ts
	r.eng.SetTick(r.cfg.MetricsInterval, func(at sim.Time) { ts.Sample(int64(at)) })
}
