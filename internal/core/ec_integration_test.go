package core

import (
	"testing"

	"rackblox/internal/sim"
)

// ecConfig is a compact RS(4,2) rack: 6 servers, 4 stripe groups of 6
// chunk holders, one holder per server per group (8 channels / 2 per
// vSSD = 4 instances per server).
func ecConfig() Config {
	cfg := DefaultConfig()
	cfg.StorageServers = 6
	cfg.Redundancy = ErasureCode(4, 2)
	cfg.Duration = 300 * sim.Millisecond
	return cfg
}

func TestECRunCompletes(t *testing.T) {
	res, err := Run(ecConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Len() == 0 {
		t.Fatal("no samples recorded")
	}
	if res.Recorder.Reads().P999() <= 0 || res.Recorder.Writes().P999() <= 0 {
		t.Fatal("empty latency distributions")
	}
	// Every logical write fans out to 1 data + 2 parity sub-writes.
	if res.ECSubWrites == 0 {
		t.Fatal("no erasure-coded sub-writes counted")
	}
	if res.LostRequests != 0 {
		t.Fatalf("lost %d requests without any failure", res.LostRequests)
	}
}

func TestECValidation(t *testing.T) {
	cfg := ecConfig()
	cfg.StorageServers = 5 // RS(4,2) needs 6 distinct servers
	if _, err := Run(cfg); err == nil {
		t.Fatal("RS(4,2) on 5 servers accepted")
	}
	cfg = ecConfig()
	cfg.Redundancy = ErasureCode(4, 0)
	if _, err := Run(cfg); err == nil {
		t.Fatal("m=0 accepted")
	}
	cfg = ecConfig()
	cfg.SoftwareIsolated = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("software isolation + EC accepted")
	}
}

// TestECDegradedReadsUnderGC drives a write-heavy mix so chunk holders
// collect garbage, and checks that reads steered away from collectors
// complete via reconstruction.
func TestECDegradedReadsUnderGC(t *testing.T) {
	cfg := ecConfig()
	cfg.Workload.WriteFrac = 0.8
	cfg.Duration = 400 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GCEvents == 0 {
		t.Skip("no GC under this compressed horizon; nothing to assert")
	}
	if res.Switch.DegradedRedirects > 0 && res.DegradedReads == 0 {
		t.Fatalf("switch redirected %d reads but none completed degraded",
			res.Switch.DegradedRedirects)
	}
}

// TestECSurvivesMServerFailures is the acceptance scenario: with m=2
// servers crashed mid-run, every read still succeeds (degraded
// reconstruction from the k survivors), and the background reconstructor
// repairs lost chunks in GC idle windows.
func TestECSurvivesMServerFailures(t *testing.T) {
	cfg := ecConfig()
	cfg.Duration = 500 * sim.Millisecond
	cfg.FailServerIndex = 0
	cfg.FailServers = []int{1}
	cfg.FailServerAt = cfg.Warmup + 100*sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers == 0 {
		t.Fatal("failure never detected")
	}
	if res.DegradedReads == 0 {
		t.Fatal("no degraded reads despite two dead chunk holders")
	}
	if res.LostReads != 0 {
		t.Fatalf("%d reads lost; all must succeed via reconstruction", res.LostReads)
	}
	if res.UnrecoverableReads != 0 {
		t.Fatalf("%d unrecoverable reads with only m failures", res.UnrecoverableReads)
	}
	if res.RepairedStripes == 0 {
		t.Fatal("reconstructor never repaired a stripe")
	}
	t.Logf("degraded=%d retransmits=%d repaired=%d pending=%d repair-delayed=%d",
		res.DegradedReads, res.ECRetransmits, res.RepairedStripes,
		res.RepairPending, res.RepairDelayed)
}

// TestECMPlusOneFailuresSurfaceLoss: losing m+1 chunk holders of a
// stripe makes its data unrecoverable, which the counters must expose
// rather than hide.
func TestECMPlusOneFailuresSurfaceLoss(t *testing.T) {
	cfg := ecConfig()
	cfg.Duration = 400 * sim.Millisecond
	cfg.FailServerIndex = 0
	cfg.FailServers = []int{1, 2}
	cfg.FailServerAt = cfg.Warmup + 50*sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnrecoverableReads == 0 {
		t.Fatal("m+1 failures produced no unrecoverable reads")
	}
}

// TestECDeterminism: same seed, same counters.
func TestECDeterminism(t *testing.T) {
	cfg := ecConfig()
	cfg.Duration = 200 * sim.Millisecond
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Recorder.Len() != b.Recorder.Len() || a.ECSubWrites != b.ECSubWrites ||
		a.GCEvents != b.GCEvents || a.Events != b.Events {
		t.Fatalf("nondeterministic: %d/%d samples, %d/%d subwrites, %d/%d gc, %d/%d events",
			a.Recorder.Len(), b.Recorder.Len(), a.ECSubWrites, b.ECSubWrites,
			a.GCEvents, b.GCEvents, a.Events, b.Events)
	}
}
