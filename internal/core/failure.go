package core

import (
	"rackblox/internal/sim"
)

// Failure handling (§3.7 "Others"): RackBlox detects failures with
// heartbeats; on server failure it fails traffic over to the surviving
// replicas and updates the switch tables. This file implements the
// heartbeat detector, the failover transition, and client request
// timeouts so open requests to a dead server do not leak.

// HeartbeatInterval is the simulated server heartbeat period.
const HeartbeatInterval = 10 * sim.Millisecond

// missedHeartbeats is how many silent periods declare a server dead.
const missedHeartbeats = 3

// clientTimeout bounds how long the client waits for a response before
// declaring the request lost (it was in flight to a server that died).
const clientTimeout = 100 * sim.Millisecond

// scheduleFailure arms the configured server-failure injection.
func (r *Rack) scheduleFailure() {
	if r.cfg.FailServerIndex < 0 || r.cfg.FailServerIndex >= len(r.servers) {
		return
	}
	srv := r.servers[r.cfg.FailServerIndex]
	r.eng.At(r.cfg.FailServerAt, func(sim.Time) {
		srv.failed = true
	})
	// The heartbeat detector notices after three silent periods.
	r.eng.At(r.cfg.FailServerAt+missedHeartbeats*HeartbeatInterval, func(sim.Time) {
		r.onServerDetectedDead(srv)
	})
}

// onServerDetectedDead performs the failover: every vSSD instance on the
// dead server is replaced by its surviving replica in the switch tables,
// and the survivors' replication groups degrade so writes commit alone.
func (r *Rack) onServerDetectedDead(dead *server) {
	if dead.detected {
		return
	}
	dead.detected = true
	r.failovers++
	for _, pr := range r.pairs {
		for _, inst := range []*instance{pr.primary, pr.replica} {
			if inst.server != dead {
				continue
			}
			survivor := r.insts[inst.replicaID]
			if survivor == nil || survivor.server.failed {
				continue // both copies lost; requests to this pair stall
			}
			// The switch rewrites the dead vSSD's traffic (control-plane
			// update, one hop away).
			hop := r.net.HopLatency(r.eng.Now())
			deadID := inst.id
			survivorID := survivor.id
			r.eng.After(hop, func(sim.Time) {
				r.sw.Failover(deadID, survivorID)
			})
			// The survivor's Hermes node stops waiting for the dead peer.
			survivor.repl.RemovePeer(inst.repl.ID())
			if r.controller != nil {
				r.controller.inGC[deadID] = false
			}
		}
	}
}

// watchTimeout arms the client-side loss detector for one request.
func (r *Rack) watchTimeout(seq uint64) {
	if r.cfg.FailServerIndex < 0 {
		return // no failure configured; avoid per-request timer overhead
	}
	r.eng.After(clientTimeout, func(sim.Time) {
		st, ok := r.reqs[seq]
		if !ok {
			return // completed
		}
		delete(r.reqs, seq)
		st.pair.inflight--
		r.lostRequests++
	})
}
