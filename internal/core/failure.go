package core

import (
	"rackblox/internal/sim"
	"rackblox/internal/switchsim"
	"rackblox/internal/trace"
)

// Failure handling (§3.7 "Others"): RackBlox detects failures with
// heartbeats; on server failure it fails traffic over to the surviving
// replicas and updates the switch tables. This file implements the
// heartbeat detector, the failover transition, and client request
// timeouts so open requests to a dead server do not leak.

// HeartbeatInterval is the simulated server heartbeat period.
const HeartbeatInterval = 10 * sim.Millisecond

// missedHeartbeats is how many silent periods declare a server dead.
const missedHeartbeats = 3

// clientTimeout bounds how long the client waits for a response before
// declaring the request lost (it was in flight to a server that died).
const clientTimeout = 100 * sim.Millisecond

// scheduleFailure compiles the run's fault/recovery timeline —
// Config.Scenario, or the deprecated flat fields reduced to their event
// equivalent — and hands it to the cluster's event driver. Validate has
// already accepted the timeline as a whole, so the driver schedules
// without further checks.
func (r *Rack) scheduleFailure() {
	events := r.cfg.compileScenario()
	for _, ev := range events {
		if ev.Kind.fails() {
			r.anyFailure = true
			break
		}
	}
	r.cluster.scheduleScenario(events)
}

// onServerDetectedDead performs the failover: every vSSD instance on the
// dead server is replaced by its surviving replica in the switch tables,
// and the survivors' replication groups degrade so writes commit alone.
func (r *Rack) onServerDetectedDead(dead *server) {
	if dead.detected {
		return
	}
	dead.detected = true
	r.failovers++
	for _, pr := range r.pairs {
		for _, inst := range []*instance{pr.primary, pr.replica} {
			if inst.server != dead {
				continue
			}
			survivor := r.insts[inst.replicaID]
			if survivor == nil || survivor.server.failed {
				continue // both copies lost; requests to this pair stall
			}
			// The survivor's Hermes node stops waiting for the dead peer.
			survivor.repl.RemovePeer(inst.repl.ID())
			r.installFailover(inst, survivor)
		}
	}
	// Erasure-coded groups: every chunk holder on the dead server fails
	// over to an adopting member (reads reconstruct degraded, writes
	// land on the adopter), the loss is propagated to the sibling ToRs'
	// stripe tables, and the lost chunks are queued for background
	// reconstruction in the switch's GC idle windows. A holder that had
	// healed from an earlier crash (repeated fail/heal cycles) loses its
	// restored chunks again and re-enters the same pipeline.
	for _, g := range r.groups {
		for i, inst := range g.insts {
			if inst.server != dead {
				continue
			}
			adopter := g.adopter(i)
			if adopter == nil {
				continue // whole group lost
			}
			r.installFailover(inst, adopter)
			r.propagateMemberDead(g, inst)
			g.crashed[i] = true
			if g.replacement[i] == inst {
				// The holder had been restored onto this very server; its
				// rebuilt chunks are gone with it.
				g.replacement[i] = nil
			}
			r.enqueueHolderRepair(g, i, adopter)
		}
		// The dead server may also hold re-integrated replacement chunks
		// adopted for other holders: those rebuilt chunks are gone with
		// it, so the holders degrade again and their repair restarts onto
		// a fresh adopter.
		for i := range g.insts {
			repl := g.replacement[i]
			if repl == nil || repl.server != dead || repl == g.insts[i] {
				continue
			}
			g.replacement[i] = nil
			adopter := g.adopter(i)
			if adopter == nil {
				continue
			}
			r.enqueueHolderRepair(g, i, adopter)
		}
	}
}

// enqueueHolderRepair (re)queues the full reconstruction of one lost
// holder onto the given adopter, discarding any progress a previous
// repair generation had made (the chunks it rebuilt are lost or stale),
// and arms the repair pump. The repairing flag keeps the group's
// failed/reintegrated holder accounting balanced across repeated
// fail/heal cycles.
func (r *Rack) enqueueHolderRepair(g *ecGroup, holder int, adopter *instance) {
	g.adopterFor[holder] = adopter
	if !g.repairing[holder] {
		g.repairing[holder] = true
		g.failedHolders++
	}
	g.recon.Reset(holder)
	g.recon.EnqueueChunk(holder, g.usedStripes, repairBatchStripes)
	r.scheduleRepair(g)
}

// installFailover rewrites a dead instance's traffic to its survivor in
// the switch tables (control-plane update). The entry lands on the dead
// member's own ToR and — when the survivor lives under a different, live
// ToR — on the survivor's too, so rerouted client traffic entering there
// resolves as well.
func (r *Rack) installFailover(deadInst, survivor *instance) {
	tors := []*switchsim.Switch{r.torOf(deadInst.server)}
	if alt := r.torOf(survivor.server); alt != tors[0] {
		tors = append(tors, alt)
	}
	r.installFailoverOn(tors, deadInst, survivor)
}

// installFailoverOn delivers the RegisterDest+Failover control-plane
// update to each listed ToR: one edge hop, plus the spine crossing for
// ToRs in other racks than the dead member's — the same distance every
// other cross-rack control message pays. ToRs that are down when the
// update arrives miss it, like any packet to a dark switch.
func (r *Rack) installFailoverOn(tors []*switchsim.Switch, deadInst, survivor *instance) {
	hop := r.net.HopLatency(r.eng.Now())
	deadID, survivorID := deadInst.id, survivor.id
	survivorIP := survivor.server.ip
	for _, tor := range tors {
		tor := tor
		delay := hop + r.cluster.spine.Latency(deadInst.server.rackIdx, tor.RackID())
		r.eng.AfterNamed(delay, "failover.install", func(sim.Time) {
			if tor.Down() {
				return
			}
			tor.RegisterDest(survivorID, survivorIP)
			tor.Failover(deadID, survivorID)
		})
	}
	if r.controller != nil {
		r.controller.inGC[deadID] = false
	}
}

// propagateMemberDead tells every other ToR holding the group's stripe
// that a member is gone (inter-switch control plane), so their handoffs
// steer around it.
func (r *Rack) propagateMemberDead(g *ecGroup, deadInst *instance) {
	home := r.torOf(deadInst.server)
	hop := r.net.HopLatency(r.eng.Now()) + r.cluster.spine.Propagation()
	deadID := deadInst.id
	seen := map[*switchsim.Switch]bool{home: true}
	for _, m := range g.insts {
		tor := r.torOf(m.server)
		if seen[tor] {
			continue
		}
		seen[tor] = true
		r.eng.AfterNamed(hop, "failover.member_dead", func(sim.Time) { tor.MarkRemoteDead(deadID) })
	}
}

// onToRDetectedDead reacts to a ToR (whole-switch) failure: the rack's
// servers are alive but dark, so surviving ToRs must both stop handing
// stripe reads toward the isolated members and rewrite writes to
// adopting members. Unlike a rack crash no data is lost — nothing is
// queued for reconstruction, reads are served degraded until the ToR
// returns.
func (r *Rack) onToRDetectedDead(rackIdx int) {
	// A ToR revived before the heartbeat detector fired was a transient
	// blip: installing failovers for a healthy rack would steer reads
	// away from reachable members forever.
	if r.cluster.torDetected[rackIdx] || !r.cluster.torFailed[rackIdx] {
		return
	}
	r.cluster.torDetected[rackIdx] = true
	r.failovers++
	for _, pr := range r.pairs {
		for _, inst := range []*instance{pr.primary, pr.replica} {
			if inst.server.rackIdx != rackIdx {
				continue
			}
			survivor := r.insts[inst.replicaID]
			if survivor == nil || !survivor.server.reachable() {
				continue
			}
			survivor.repl.RemovePeer(inst.repl.ID())
			r.installFailover(inst, survivor)
		}
	}
	for _, g := range r.groups {
		for i, inst := range g.insts {
			if inst.server.rackIdx != rackIdx {
				continue
			}
			adopter := g.adopter(i)
			if adopter == nil {
				continue
			}
			r.installFailoverOnGroup(g, inst, adopter)
			r.propagateMemberDead(g, inst)
		}
	}
}

// installFailoverOnGroup installs a dead member's failover entry on
// every ToR serving the group, so client traffic entering through any
// surviving rack resolves the rewrite.
func (r *Rack) installFailoverOnGroup(g *ecGroup, deadInst, adopter *instance) {
	var tors []*switchsim.Switch
	seen := make(map[*switchsim.Switch]bool)
	for _, m := range g.insts {
		tor := r.torOf(m.server)
		if seen[tor] {
			continue
		}
		seen[tor] = true
		tors = append(tors, tor)
	}
	r.installFailoverOn(tors, deadInst, adopter)
}

// replayToR rebuilds a revived ToR's blank tables from surviving
// cluster state and clears the stale marks sibling ToRs hold for the
// revived rack (the control-plane half of Cluster.ReviveToR). The
// replay is modeled as instantaneous: the controller streams the table
// image before re-enabling the data plane.
func (r *Rack) replayToR(rackIdx int) {
	tor := r.cluster.tors[rackIdx]

	// Re-register every instance homed in the revived rack, mirroring
	// the rows the original create_vssd installed: pairs point at their
	// Hermes peer, group members at their same-rack neighbor (the hint
	// buildGroups registers so non-stripe paths never leak remote IPs
	// into the wrong destination table).
	for _, pr := range r.pairs {
		for _, inst := range []*instance{pr.primary, pr.replica} {
			if inst.server.rackIdx != rackIdx {
				continue
			}
			repIP := inst.server.ip
			if rep := r.insts[inst.replicaID]; rep != nil {
				repIP = rep.server.ip
			}
			tor.InstallVSSD(inst.id, inst.server.ip, inst.replicaID, repIP)
		}
	}
	for _, g := range r.groups {
		for i, inst := range g.insts {
			if inst.server.rackIdx != rackIdx {
				continue
			}
			next := g.sameRackNeighbor(i)
			tor.InstallVSSD(inst.id, inst.server.ip, next.id, next.server.ip)
		}
	}

	// Replay the per-rack stripe tables of every group touching this
	// rack, then overlay the failure-era state that survives revival:
	// repaired holders point at their replacements, still-dead local
	// members get failover entries, still-dead remote members get
	// remote-dead marks.
	for _, g := range r.groups {
		touches := false
		for _, m := range g.insts {
			if m.server.rackIdx == rackIdx {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		ids, racks := g.memberTable()
		tor.RegisterStripeMembers(ids, racks)
		for i, m := range g.insts {
			if repl := g.replacement[i]; repl != nil {
				tor.RegisterDest(repl.id, repl.server.ip)
				tor.ReplaceStripeMember(m.id, repl.id)
				continue
			}
			if m.server.reachable() {
				continue
			}
			if m.server.rackIdx == rackIdx {
				if adopter := g.adopter(i); adopter != nil {
					tor.RegisterDest(adopter.id, adopter.server.ip)
					tor.Failover(m.id, adopter.id)
				}
			} else {
				tor.MarkRemoteDead(m.id)
			}
		}
	}

	// Replicated pairs: a locally-homed member whose server crashed (not
	// merely darkened) keeps routing to its survivor.
	for _, pr := range r.pairs {
		for _, inst := range []*instance{pr.primary, pr.replica} {
			if inst.server.rackIdx != rackIdx || inst.server.reachable() {
				continue
			}
			if surv := r.insts[inst.replicaID]; surv != nil && surv.server.reachable() {
				tor.RegisterDest(surv.id, surv.server.ip)
				tor.Failover(inst.id, surv.id)
			}
		}
	}

	// Sibling ToRs: the revived rack's members are reachable again, so
	// the remote-dead marks and failover rewrites installed while it was
	// dark are stale — without this they would outlive the outage and
	// keep steering reads away from healthy holders forever.
	for j, sib := range r.cluster.tors {
		if j == rackIdx || sib.Down() {
			continue
		}
		for _, inst := range r.allInstances() {
			if inst.server.rackIdx != rackIdx || !inst.server.reachable() {
				continue
			}
			sib.ClearRemoteDead(inst.id)
			sib.FailoverCleared(inst.id)
		}
	}
}

// onServerRevived re-integrates a server that returned from a detected
// crash. The box comes back blank, so the two redundancy backends heal
// differently: replicated instances re-pair with their survivors —
// Hermes AddPeer restores the write quorum, the revived node rejoins
// with an empty key table, and the failover rewrites are withdrawn on
// every ToR — while erasure-coded holders catch up through the metered
// reconstructor, which rebuilds their full chunk set from the stripe
// survivors before re-registering them under their original ids
// (switchsim.RestoreStripeMember, via the usual reintegrate path).
func (r *Rack) onServerRevived(srv *server) {
	for _, pr := range r.pairs {
		for _, inst := range []*instance{pr.primary, pr.replica} {
			if inst.server != srv {
				continue
			}
			inst.repl.Rejoin()
			peer := r.insts[inst.replicaID]
			if peer == nil {
				continue
			}
			if peer.server.reachable() {
				// Re-pair: the survivor invalidates the returned replica
				// again on future writes, and traffic addressed to the
				// revived member stops being rewritten to the survivor.
				peer.repl.AddPeer(inst.repl.ID())
				inst.repl.AddPeer(peer.repl.ID())
				r.clearPairFailover(inst)
			} else {
				// The partner is still down: the revived member serves
				// the pair alone, absorbing the traffic that was rewritten
				// toward the (now dead) partner.
				inst.repl.RemovePeer(peer.repl.ID())
				r.clearPairFailover(inst)
				r.installFailover(peer, inst)
			}
		}
	}
	for _, g := range r.groups {
		for i, inst := range g.insts {
			if inst.server != srv || !g.crashed[i] {
				continue
			}
			// Catch-up repair: the returning holder is blank, so its full
			// chunk set is rebuilt onto it from scratch — whatever a
			// previous adopter had absorbed is superseded.
			r.enqueueHolderRepair(g, i, inst)
		}
	}
}

// clearPairFailover withdraws a revived pair member's failover rewrite
// on every live ToR (control-plane update: one edge hop, plus the spine
// crossing for other racks), so its traffic is served directly again.
func (r *Rack) clearPairFailover(inst *instance) {
	hop := r.net.HopLatency(r.eng.Now())
	id := inst.id
	for j, tor := range r.cluster.tors {
		tor := tor
		delay := hop + r.cluster.spine.Latency(inst.server.rackIdx, j)
		r.eng.AfterNamed(delay, "failover.clear", func(sim.Time) {
			if tor.Down() {
				return
			}
			tor.FailoverCleared(id)
		})
	}
}

// watchTimeout arms the client-side loss detector for one request.
// Erasure-coded requests are retransmitted under a fresh sequence number
// (stale responses find no state and are dropped): sub-operations in
// flight to a server that crashed before the heartbeat detector
// installed failover routes are swallowed, but by the retry the switch
// steers around the dead holder, so every read eventually completes via
// degraded reconstruction.
func (r *Rack) watchTimeout(seq uint64) {
	if !r.anyFailure {
		return // no failure in the timeline; avoid per-request timer overhead
	}
	r.eng.AfterNamed(clientTimeout, "client.timeout", func(sim.Time) {
		st, ok := r.reqs[seq]
		if !ok {
			return // completed
		}
		delete(r.reqs, seq)
		if st.group != nil && st.retries < maxECRetries {
			st.retries++
			r.ecRetransmits++
			r.seq++
			st.seq = r.seq
			st.ecPending = 0
			st.arrival, st.dispatched, st.deviceDone = 0, 0, 0
			st.bounced, st.redirected = false, false
			// The new attempt re-anchors the span's phase partition: time
			// up to here becomes the retransmit phase.
			st.lastIssue = r.eng.Now()
			st.span.Annotate(trace.Int("retry", int64(st.retries)))
			r.reqs[st.seq] = st
			r.watchTimeout(st.seq)
			r.sendEC(st)
			return
		}
		st.decInflight()
		r.lostRequests++
		if !st.write {
			r.lostReads++
		}
	})
}
