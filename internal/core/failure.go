package core

import (
	"rackblox/internal/sim"
	"rackblox/internal/switchsim"
)

// Failure handling (§3.7 "Others"): RackBlox detects failures with
// heartbeats; on server failure it fails traffic over to the surviving
// replicas and updates the switch tables. This file implements the
// heartbeat detector, the failover transition, and client request
// timeouts so open requests to a dead server do not leak.

// HeartbeatInterval is the simulated server heartbeat period.
const HeartbeatInterval = 10 * sim.Millisecond

// missedHeartbeats is how many silent periods declare a server dead.
const missedHeartbeats = 3

// clientTimeout bounds how long the client waits for a response before
// declaring the request lost (it was in flight to a server that died).
const clientTimeout = 100 * sim.Millisecond

// failureConfigured reports whether any server, rack, or ToR failure is
// injected.
func (r *Rack) failureConfigured() bool {
	return r.cfg.FailServerIndex >= 0 || len(r.cfg.FailServers) > 0 ||
		r.cfg.FailRackIndex >= 0 || r.cfg.FailToRIndex >= 0
}

// failTargets collects the distinct servers configured to crash; a
// configured rack failure contributes every server of that rack.
// Validate has already rejected duplicates and out-of-range indices.
func (r *Rack) failTargets() []*server {
	var out []*server
	seen := make(map[int]bool)
	add := func(idx int) {
		if idx < 0 || idx >= len(r.servers) || seen[idx] {
			return
		}
		seen[idx] = true
		out = append(out, r.servers[idx])
	}
	add(r.cfg.FailServerIndex)
	for _, idx := range r.cfg.FailServers {
		add(idx)
	}
	if j := r.cfg.FailRackIndex; j >= 0 {
		for i := j * r.cfg.StorageServers; i < (j+1)*r.cfg.StorageServers; i++ {
			add(i)
		}
	}
	return out
}

// scheduleFailure arms the configured failure injections. All configured
// servers (and any whole rack) crash together at FailServerAt — the
// worst case for an erasure-coded cluster, which must then reconstruct
// reads from the k surviving chunks of every stripe; a configured ToR
// failure darkens its rack at the same instant.
func (r *Rack) scheduleFailure() {
	targets := r.failTargets()
	torIdx := r.cfg.FailToRIndex
	if j := r.cfg.RecoverToRIndex; j >= 0 {
		// ToR revival: un-darken the switch and replay its tables.
		// Reviving a ToR that never failed (or failed after this
		// instant) is a no-op inside ReviveToR.
		r.eng.At(r.cfg.RecoverToRAt, func(sim.Time) { r.cluster.ReviveToR(j) })
	}
	if len(targets) == 0 && torIdx < 0 {
		return
	}
	r.eng.At(r.cfg.FailServerAt, func(sim.Time) {
		for _, srv := range targets {
			srv.failed = true
		}
		if torIdx >= 0 {
			r.cluster.failToR(torIdx)
		}
	})
	// The heartbeat detector notices after three silent periods.
	r.eng.At(r.cfg.FailServerAt+missedHeartbeats*HeartbeatInterval, func(sim.Time) {
		for _, srv := range targets {
			r.onServerDetectedDead(srv)
		}
		if torIdx >= 0 {
			r.onToRDetectedDead(torIdx)
		}
	})
}

// onServerDetectedDead performs the failover: every vSSD instance on the
// dead server is replaced by its surviving replica in the switch tables,
// and the survivors' replication groups degrade so writes commit alone.
func (r *Rack) onServerDetectedDead(dead *server) {
	if dead.detected {
		return
	}
	dead.detected = true
	r.failovers++
	for _, pr := range r.pairs {
		for _, inst := range []*instance{pr.primary, pr.replica} {
			if inst.server != dead {
				continue
			}
			survivor := r.insts[inst.replicaID]
			if survivor == nil || survivor.server.failed {
				continue // both copies lost; requests to this pair stall
			}
			// The survivor's Hermes node stops waiting for the dead peer.
			survivor.repl.RemovePeer(inst.repl.ID())
			r.installFailover(inst, survivor)
		}
	}
	// Erasure-coded groups: every chunk holder on the dead server fails
	// over to an adopting member (reads reconstruct degraded, writes
	// land on the adopter), the loss is propagated to the sibling ToRs'
	// stripe tables, and the lost chunks are queued for background
	// reconstruction in the switch's GC idle windows.
	for _, g := range r.groups {
		for i, inst := range g.insts {
			if inst.server != dead {
				continue
			}
			adopter := g.adopter(i)
			if adopter == nil {
				continue // whole group lost
			}
			r.installFailover(inst, adopter)
			r.propagateMemberDead(g, inst)
			g.crashed[i] = true
			g.adopterFor[i] = adopter
			g.failedHolders++
			g.recon.EnqueueChunk(i, g.usedStripes, repairBatchStripes)
			r.scheduleRepair(g)
		}
	}
}

// installFailover rewrites a dead instance's traffic to its survivor in
// the switch tables (control-plane update). The entry lands on the dead
// member's own ToR and — when the survivor lives under a different, live
// ToR — on the survivor's too, so rerouted client traffic entering there
// resolves as well.
func (r *Rack) installFailover(deadInst, survivor *instance) {
	tors := []*switchsim.Switch{r.torOf(deadInst.server)}
	if alt := r.torOf(survivor.server); alt != tors[0] {
		tors = append(tors, alt)
	}
	r.installFailoverOn(tors, deadInst, survivor)
}

// installFailoverOn delivers the RegisterDest+Failover control-plane
// update to each listed ToR: one edge hop, plus the spine crossing for
// ToRs in other racks than the dead member's — the same distance every
// other cross-rack control message pays. ToRs that are down when the
// update arrives miss it, like any packet to a dark switch.
func (r *Rack) installFailoverOn(tors []*switchsim.Switch, deadInst, survivor *instance) {
	hop := r.net.HopLatency(r.eng.Now())
	deadID, survivorID := deadInst.id, survivor.id
	survivorIP := survivor.server.ip
	for _, tor := range tors {
		tor := tor
		delay := hop + r.cluster.crossLatency(deadInst.server.rackIdx, tor.RackID())
		r.eng.After(delay, func(sim.Time) {
			if tor.Down() {
				return
			}
			tor.RegisterDest(survivorID, survivorIP)
			tor.Failover(deadID, survivorID)
		})
	}
	if r.controller != nil {
		r.controller.inGC[deadID] = false
	}
}

// propagateMemberDead tells every other ToR holding the group's stripe
// that a member is gone (inter-switch control plane), so their handoffs
// steer around it.
func (r *Rack) propagateMemberDead(g *ecGroup, deadInst *instance) {
	home := r.torOf(deadInst.server)
	hop := r.net.HopLatency(r.eng.Now()) + r.cluster.spineLatency
	deadID := deadInst.id
	seen := map[*switchsim.Switch]bool{home: true}
	for _, m := range g.insts {
		tor := r.torOf(m.server)
		if seen[tor] {
			continue
		}
		seen[tor] = true
		r.eng.After(hop, func(sim.Time) { tor.MarkRemoteDead(deadID) })
	}
}

// onToRDetectedDead reacts to a ToR (whole-switch) failure: the rack's
// servers are alive but dark, so surviving ToRs must both stop handing
// stripe reads toward the isolated members and rewrite writes to
// adopting members. Unlike a rack crash no data is lost — nothing is
// queued for reconstruction, reads are served degraded until the ToR
// returns.
func (r *Rack) onToRDetectedDead(rackIdx int) {
	// A ToR revived before the heartbeat detector fired was a transient
	// blip: installing failovers for a healthy rack would steer reads
	// away from reachable members forever.
	if r.cluster.torDetected[rackIdx] || !r.cluster.torFailed[rackIdx] {
		return
	}
	r.cluster.torDetected[rackIdx] = true
	r.failovers++
	for _, pr := range r.pairs {
		for _, inst := range []*instance{pr.primary, pr.replica} {
			if inst.server.rackIdx != rackIdx {
				continue
			}
			survivor := r.insts[inst.replicaID]
			if survivor == nil || !survivor.server.reachable() {
				continue
			}
			survivor.repl.RemovePeer(inst.repl.ID())
			r.installFailover(inst, survivor)
		}
	}
	for _, g := range r.groups {
		for i, inst := range g.insts {
			if inst.server.rackIdx != rackIdx {
				continue
			}
			adopter := g.adopter(i)
			if adopter == nil {
				continue
			}
			r.installFailoverOnGroup(g, inst, adopter)
			r.propagateMemberDead(g, inst)
		}
	}
}

// installFailoverOnGroup installs a dead member's failover entry on
// every ToR serving the group, so client traffic entering through any
// surviving rack resolves the rewrite.
func (r *Rack) installFailoverOnGroup(g *ecGroup, deadInst, adopter *instance) {
	var tors []*switchsim.Switch
	seen := make(map[*switchsim.Switch]bool)
	for _, m := range g.insts {
		tor := r.torOf(m.server)
		if seen[tor] {
			continue
		}
		seen[tor] = true
		tors = append(tors, tor)
	}
	r.installFailoverOn(tors, deadInst, adopter)
}

// replayToR rebuilds a revived ToR's blank tables from surviving
// cluster state and clears the stale marks sibling ToRs hold for the
// revived rack (the control-plane half of Cluster.ReviveToR). The
// replay is modeled as instantaneous: the controller streams the table
// image before re-enabling the data plane.
func (r *Rack) replayToR(rackIdx int) {
	tor := r.cluster.tors[rackIdx]

	// Re-register every instance homed in the revived rack, mirroring
	// the rows the original create_vssd installed: pairs point at their
	// Hermes peer, group members at their same-rack neighbor (the hint
	// buildGroups registers so non-stripe paths never leak remote IPs
	// into the wrong destination table).
	for _, pr := range r.pairs {
		for _, inst := range []*instance{pr.primary, pr.replica} {
			if inst.server.rackIdx != rackIdx {
				continue
			}
			repIP := inst.server.ip
			if rep := r.insts[inst.replicaID]; rep != nil {
				repIP = rep.server.ip
			}
			tor.InstallVSSD(inst.id, inst.server.ip, inst.replicaID, repIP)
		}
	}
	for _, g := range r.groups {
		for i, inst := range g.insts {
			if inst.server.rackIdx != rackIdx {
				continue
			}
			next := g.sameRackNeighbor(i)
			tor.InstallVSSD(inst.id, inst.server.ip, next.id, next.server.ip)
		}
	}

	// Replay the per-rack stripe tables of every group touching this
	// rack, then overlay the failure-era state that survives revival:
	// repaired holders point at their replacements, still-dead local
	// members get failover entries, still-dead remote members get
	// remote-dead marks.
	for _, g := range r.groups {
		touches := false
		for _, m := range g.insts {
			if m.server.rackIdx == rackIdx {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		ids, racks := g.memberTable()
		tor.RegisterStripeMembers(ids, racks)
		for i, m := range g.insts {
			if repl := g.replacement[i]; repl != nil {
				tor.RegisterDest(repl.id, repl.server.ip)
				tor.ReplaceStripeMember(m.id, repl.id)
				continue
			}
			if m.server.reachable() {
				continue
			}
			if m.server.rackIdx == rackIdx {
				if adopter := g.adopter(i); adopter != nil {
					tor.RegisterDest(adopter.id, adopter.server.ip)
					tor.Failover(m.id, adopter.id)
				}
			} else {
				tor.MarkRemoteDead(m.id)
			}
		}
	}

	// Replicated pairs: a locally-homed member whose server crashed (not
	// merely darkened) keeps routing to its survivor.
	for _, pr := range r.pairs {
		for _, inst := range []*instance{pr.primary, pr.replica} {
			if inst.server.rackIdx != rackIdx || inst.server.reachable() {
				continue
			}
			if surv := r.insts[inst.replicaID]; surv != nil && surv.server.reachable() {
				tor.RegisterDest(surv.id, surv.server.ip)
				tor.Failover(inst.id, surv.id)
			}
		}
	}

	// Sibling ToRs: the revived rack's members are reachable again, so
	// the remote-dead marks and failover rewrites installed while it was
	// dark are stale — without this they would outlive the outage and
	// keep steering reads away from healthy holders forever.
	for j, sib := range r.cluster.tors {
		if j == rackIdx || sib.Down() {
			continue
		}
		for _, inst := range r.allInstances() {
			if inst.server.rackIdx != rackIdx || !inst.server.reachable() {
				continue
			}
			sib.ClearRemoteDead(inst.id)
			sib.FailoverCleared(inst.id)
		}
	}
}

// watchTimeout arms the client-side loss detector for one request.
// Erasure-coded requests are retransmitted under a fresh sequence number
// (stale responses find no state and are dropped): sub-operations in
// flight to a server that crashed before the heartbeat detector
// installed failover routes are swallowed, but by the retry the switch
// steers around the dead holder, so every read eventually completes via
// degraded reconstruction.
func (r *Rack) watchTimeout(seq uint64) {
	if !r.failureConfigured() {
		return // no failure configured; avoid per-request timer overhead
	}
	r.eng.After(clientTimeout, func(sim.Time) {
		st, ok := r.reqs[seq]
		if !ok {
			return // completed
		}
		delete(r.reqs, seq)
		if st.group != nil && st.retries < maxECRetries {
			st.retries++
			r.ecRetransmits++
			r.seq++
			st.seq = r.seq
			st.ecPending = 0
			st.arrival, st.dispatched, st.deviceDone = 0, 0, 0
			st.bounced, st.redirected = false, false
			r.reqs[st.seq] = st
			r.watchTimeout(st.seq)
			r.sendEC(st)
			return
		}
		st.decInflight()
		r.lostRequests++
		if !st.write {
			r.lostReads++
		}
	})
}
