package core

import (
	"rackblox/internal/sim"
)

// Failure handling (§3.7 "Others"): RackBlox detects failures with
// heartbeats; on server failure it fails traffic over to the surviving
// replicas and updates the switch tables. This file implements the
// heartbeat detector, the failover transition, and client request
// timeouts so open requests to a dead server do not leak.

// HeartbeatInterval is the simulated server heartbeat period.
const HeartbeatInterval = 10 * sim.Millisecond

// missedHeartbeats is how many silent periods declare a server dead.
const missedHeartbeats = 3

// clientTimeout bounds how long the client waits for a response before
// declaring the request lost (it was in flight to a server that died).
const clientTimeout = 100 * sim.Millisecond

// failureConfigured reports whether any server crash is injected.
func (r *Rack) failureConfigured() bool {
	return r.cfg.FailServerIndex >= 0 || len(r.cfg.FailServers) > 0
}

// failTargets collects the distinct servers configured to crash.
func (r *Rack) failTargets() []*server {
	var out []*server
	seen := make(map[int]bool)
	add := func(idx int) {
		if idx < 0 || idx >= len(r.servers) || seen[idx] {
			return
		}
		seen[idx] = true
		out = append(out, r.servers[idx])
	}
	add(r.cfg.FailServerIndex)
	for _, idx := range r.cfg.FailServers {
		add(idx)
	}
	return out
}

// scheduleFailure arms the configured server-failure injection. All
// configured servers crash together at FailServerAt — the worst case for
// an erasure-coded rack, which must then reconstruct reads from the k
// surviving chunks of every stripe.
func (r *Rack) scheduleFailure() {
	targets := r.failTargets()
	if len(targets) == 0 {
		return
	}
	r.eng.At(r.cfg.FailServerAt, func(sim.Time) {
		for _, srv := range targets {
			srv.failed = true
		}
	})
	// The heartbeat detector notices after three silent periods.
	r.eng.At(r.cfg.FailServerAt+missedHeartbeats*HeartbeatInterval, func(sim.Time) {
		for _, srv := range targets {
			r.onServerDetectedDead(srv)
		}
	})
}

// onServerDetectedDead performs the failover: every vSSD instance on the
// dead server is replaced by its surviving replica in the switch tables,
// and the survivors' replication groups degrade so writes commit alone.
func (r *Rack) onServerDetectedDead(dead *server) {
	if dead.detected {
		return
	}
	dead.detected = true
	r.failovers++
	for _, pr := range r.pairs {
		for _, inst := range []*instance{pr.primary, pr.replica} {
			if inst.server != dead {
				continue
			}
			survivor := r.insts[inst.replicaID]
			if survivor == nil || survivor.server.failed {
				continue // both copies lost; requests to this pair stall
			}
			// The switch rewrites the dead vSSD's traffic (control-plane
			// update, one hop away).
			hop := r.net.HopLatency(r.eng.Now())
			deadID := inst.id
			survivorID := survivor.id
			r.eng.After(hop, func(sim.Time) {
				r.sw.Failover(deadID, survivorID)
			})
			// The survivor's Hermes node stops waiting for the dead peer.
			survivor.repl.RemovePeer(inst.repl.ID())
			if r.controller != nil {
				r.controller.inGC[deadID] = false
			}
		}
	}
	// Erasure-coded groups: every chunk holder on the dead server fails
	// over to an adopting member (reads reconstruct degraded, writes
	// land on the adopter), and the lost chunks are queued for
	// background reconstruction in the switch's GC idle windows.
	for _, g := range r.groups {
		for i, inst := range g.insts {
			if inst.server != dead {
				continue
			}
			adopter := g.adopter(i)
			if adopter == nil {
				continue // whole group lost
			}
			hop := r.net.HopLatency(r.eng.Now())
			deadID := inst.id
			adopterID := adopter.id
			r.eng.After(hop, func(sim.Time) {
				r.sw.Failover(deadID, adopterID)
			})
			if r.controller != nil {
				r.controller.inGC[deadID] = false
			}
			g.recon.EnqueueChunk(i, g.usedStripes, repairBatchStripes)
			r.scheduleRepair(g)
		}
	}
}

// watchTimeout arms the client-side loss detector for one request.
// Erasure-coded requests are retransmitted under a fresh sequence number
// (stale responses find no state and are dropped): sub-operations in
// flight to a server that crashed before the heartbeat detector
// installed failover routes are swallowed, but by the retry the switch
// steers around the dead holder, so every read eventually completes via
// degraded reconstruction.
func (r *Rack) watchTimeout(seq uint64) {
	if !r.failureConfigured() {
		return // no failure configured; avoid per-request timer overhead
	}
	r.eng.After(clientTimeout, func(sim.Time) {
		st, ok := r.reqs[seq]
		if !ok {
			return // completed
		}
		delete(r.reqs, seq)
		if st.group != nil && st.retries < maxECRetries {
			st.retries++
			r.ecRetransmits++
			r.seq++
			st.seq = r.seq
			st.ecPending = 0
			st.arrival, st.dispatched, st.deviceDone = 0, 0, 0
			st.bounced, st.redirected = false, false
			r.reqs[st.seq] = st
			r.watchTimeout(st.seq)
			r.sendEC(st)
			return
		}
		st.decInflight()
		r.lostRequests++
		if !st.write {
			r.lostReads++
		}
	})
}
