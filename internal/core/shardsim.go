package core

import (
	"rackblox/internal/sim"
)

// The sharded soak model: a full per-I/O rack workload that genuinely
// runs one engine per rack, in parallel goroutines under the
// conservative-lookahead windows of sim.ShardGroup.
//
// This is the production-scale path ROADMAP front (b) asked for: each
// rack shard owns its servers' device channels, its closed-loop clients,
// and its share of the counters; the only shared state is the spine —
// the metered cross-rack link on the coordinator shard — reached
// exclusively through the group's mailboxes. The ownership discipline is
// the same one the main datapath's Spine boundary enforces, which is
// what makes this model both a scaling vehicle (BenchmarkShardedSoak,
// the figsh experiment) and the template for migrating the full datapath
// onto rack shards: an executing event touches only its shard's state;
// everything that crosses a rack boundary is immutable values in a Send.
//
// Every decision is drawn from a per-rack RNG consumed only by that
// rack's events, so the model is deterministic by construction and
// RunShardedCluster returns bit-identical results in parallel and
// sequential mode — TestShardedClusterParallelByteIdentical holds it to
// that, the same contract the replay suite pins for the datapath.

// ShardedClusterConfig parameterizes the sharded soak workload.
type ShardedClusterConfig struct {
	Racks          int
	ServersPerRack int
	ChainsPerRack  int   // closed-loop clients per rack
	OpsPerRack     int64 // ops each rack's clients issue in total
	// CrossRackPermille is the share of ops (per thousand) that read a
	// remote rack: request and response route through the spine shard,
	// paying propagation latency both ways plus metered link occupancy.
	CrossRackPermille int
	CrossRackLatency  sim.Time
	CrossRackMBps     float64
	PageSize          int64
	ServiceTime       sim.Time // mean device occupancy per op
	ThinkTime         sim.Time // mean client pause between ops
	Seed              int64
}

func (c ShardedClusterConfig) withDefaults() ShardedClusterConfig {
	if c.Racks <= 0 {
		c.Racks = 1
	}
	if c.ServersPerRack <= 0 {
		c.ServersPerRack = 32
	}
	if c.ChainsPerRack <= 0 {
		c.ChainsPerRack = 64
	}
	if c.OpsPerRack <= 0 {
		c.OpsPerRack = 10_000
	}
	if c.CrossRackLatency <= 0 {
		c.CrossRackLatency = 20 * sim.Microsecond
	}
	if c.CrossRackMBps <= 0 {
		c.CrossRackMBps = 40_000
	}
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = 80 * sim.Microsecond
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = 10 * sim.Microsecond
	}
	if c.Racks == 1 {
		c.CrossRackPermille = 0 // nowhere to cross to
	}
	return c
}

// ShardedClusterResult is the merged outcome of a sharded soak run. Two
// runs of the same config are comparable with ==-style deep equality;
// parallel and sequential execution must produce identical values.
type ShardedClusterResult struct {
	Racks      int
	Ops        int64
	CrossOps   int64
	SpineBytes int64
	LatencySum sim.Time
	MaxLatency sim.Time
	End        sim.Time
	Events     uint64
	ByHandler  map[string]uint64
}

// shardRack is one rack shard's private world: only events executing on
// that shard may touch it.
type shardRack struct {
	rng        *sim.RNG
	devices    []*sim.Resource
	left       int64
	ops        int64
	crossOps   int64
	latencySum sim.Time
	maxLat     sim.Time
}

// RunShardedCluster executes the soak model to completion — parallel
// (one goroutine per rack) or sequential (the differential oracle) — and
// returns the merged counters.
func RunShardedCluster(cfg ShardedClusterConfig, parallel bool) ShardedClusterResult {
	cfg = cfg.withDefaults()
	g := sim.NewShardGroup(cfg.Racks, cfg.CrossRackLatency)
	root := sim.NewRNG(cfg.Seed)

	// Spine state: coordinator-shard-owned.
	var link *sim.Bandwidth
	var spineBytes int64
	if cfg.Racks > 1 {
		link = sim.NewBandwidth(g.Coordinator(), cfg.CrossRackMBps*1e6)
	}
	frame := frameHeaderBytes + cfg.PageSize

	racks := make([]*shardRack, cfg.Racks)
	for i := range racks {
		rs := &shardRack{
			rng:     root.Fork(int64(i + 1)),
			devices: make([]*sim.Resource, cfg.ServersPerRack),
			left:    cfg.OpsPerRack,
		}
		for d := range rs.devices {
			rs.devices[d] = sim.NewResource(g.Shard(i + 1))
		}
		racks[i] = rs
	}

	for i := range racks {
		home := i + 1 // shard index (0 is the spine)
		rs := racks[i]
		eng := g.Shard(home)
		for c := 0; c < cfg.ChainsPerRack; c++ {
			// One reusable closure per chain: the steady-state local path
			// allocates no per-op closures, like the datapath's hot loop.
			var op sim.EventFunc
			finish := func(now, start sim.Time) {
				lat := now - start
				rs.latencySum += lat
				if lat > rs.maxLat {
					rs.maxLat = lat
				}
				eng.AfterNamed(rs.rng.Exp(cfg.ThinkTime)+1, "shard.op", op)
			}
			op = func(now sim.Time) {
				if rs.left == 0 {
					return
				}
				rs.left--
				rs.ops++
				occ := rs.rng.Exp(cfg.ServiceTime) + 1
				dev := rs.devices[rs.rng.Intn(len(rs.devices))]
				if rs.rng.Intn(1000) < cfg.CrossRackPermille {
					// Remote read: home -> spine -> remote rack -> spine
					// -> home. Hops carry only values; the continuation
					// closure executes back on the home shard.
					rs.crossOps++
					dst := 1 + rs.rng.Intn(cfg.Racks-1)
					if dst >= home {
						dst++
					}
					start := now
					g.SendAfter(home, 0, g.Lookahead(), "spine.req", func(sim.Time) {
						spineBytes += frame
						_, xe := link.Transfer(frame, nil)
						g.Send(0, dst, xe+g.Lookahead(), "shard.remote", func(rnow sim.Time) {
							rem := racks[dst-1]
							rocc := rem.rng.Exp(cfg.ServiceTime) + 1
							_, de := rem.devices[rem.rng.Intn(len(rem.devices))].Acquire(rocc, nil)
							g.Send(dst, 0, de+g.Lookahead(), "spine.resp", func(sim.Time) {
								spineBytes += frame
								_, re := link.Transfer(frame, nil)
								g.Send(0, home, re+g.Lookahead(), "shard.done", func(dnow sim.Time) {
									finish(dnow, start)
								})
							})
						})
					})
					return
				}
				_, end := dev.Acquire(occ, nil)
				eng.AtNamed(end, "shard.done", func(dnow sim.Time) { finish(dnow, now) })
			}
			eng.AfterNamed(rs.rng.Exp(cfg.ThinkTime)+1, "shard.op", op)
		}
	}

	if parallel {
		g.Run()
	} else {
		g.RunSequential()
	}

	res := ShardedClusterResult{
		Racks:      cfg.Racks,
		SpineBytes: spineBytes,
		End:        g.Now(),
		Events:     g.Processed(),
		ByHandler:  g.ProcessedBy(),
	}
	for _, rs := range racks {
		res.Ops += rs.ops
		res.CrossOps += rs.crossOps
		res.LatencySum += rs.latencySum
		if rs.maxLat > res.MaxLatency {
			res.MaxLatency = rs.maxLat
		}
	}
	return res
}
