// Package core composes the full rack: clients, the ToR switch, storage
// servers with programmable SSDs, vSSD replica pairs kept consistent with
// Hermes replication, and the four systems the paper evaluates — VDC,
// RackBlox (Software), RackBlox-Coord I/O, and RackBlox. One Run simulates
// the end-to-end life of every I/O request and returns latency
// distributions and event counters.
package core

import (
	"errors"
	"fmt"

	"rackblox/internal/ec"
	"rackblox/internal/flash"
	"rackblox/internal/netsim"
	"rackblox/internal/sched"
	"rackblox/internal/sim"
	"rackblox/internal/trace"
)

// System selects which of the evaluated designs the rack runs.
type System int

const (
	// VDC is the virtual-datacenter baseline [6]: end-to-end token-bucket
	// isolation, storage treated as a black box, no GC coordination.
	VDC System = iota
	// RackBloxSoftware implements RackBlox's ideas in software on top of
	// VDC: a controller grants GC and servers redirect reads themselves,
	// paying extra network round trips (§4.1).
	RackBloxSoftware
	// RackBloxCoordIO is the ablation of §4.4: coordinated I/O scheduling
	// enabled, coordinated GC disabled.
	RackBloxCoordIO
	// RackBlox is the full system: switch-based coordinated I/O
	// scheduling and coordinated GC.
	RackBlox
)

func (s System) String() string {
	switch s {
	case VDC:
		return "VDC"
	case RackBloxSoftware:
		return "RackBlox (Software)"
	case RackBloxCoordIO:
		return "RackBlox-Coord I/O"
	case RackBlox:
		return "RackBlox"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Systems lists all four in evaluation order.
func Systems() []System {
	return []System{VDC, RackBloxSoftware, RackBloxCoordIO, RackBlox}
}

// RedundancyScheme selects how a volume's data survives failures.
type RedundancyScheme int

const (
	// ReplicationScheme is the paper's design: every vSSD is a
	// primary+replica pair kept strongly consistent with Hermes.
	ReplicationScheme RedundancyScheme = iota
	// ErasureCoded stripes every volume RS(k,m) over k+m chunk holders
	// on distinct servers; reads of a failed or collecting chunk are
	// reconstructed from any k survivors.
	ErasureCoded
	// LocalParityCoded is the repair-efficient LRC variant of
	// ErasureCoded: the same RS(k,m) global code spread across racks,
	// plus one local parity chunk per rack (the XOR of the rack's global
	// chunks). A single-server loss repairs entirely inside its rack —
	// zero spine bytes — and multi-loss repair aggregates: each remote
	// rack combines its survivors locally and ships one chunk-sized
	// aggregate over the metered spine instead of its raw chunks.
	// Requires Racks > 1 and PlacementSpread.
	LocalParityCoded
)

// RedundancySpec selects Replication (the existing Hermes pairs) or
// ErasureCode{K, M} striping for every volume in the rack.
type RedundancySpec struct {
	Scheme RedundancyScheme
	// K and M are the RS parameters; ignored under ReplicationScheme.
	K, M int
}

// Replication returns the paper's 2-way Hermes replication spec.
func Replication() RedundancySpec { return RedundancySpec{Scheme: ReplicationScheme} }

// ErasureCode returns an RS(k,m) redundancy spec.
func ErasureCode(k, m int) RedundancySpec {
	return RedundancySpec{Scheme: ErasureCoded, K: k, M: m}
}

// LocalParityCode returns an LRC(k,m) redundancy spec: RS(k,m) global
// chunks spread across racks plus one local parity chunk per rack.
func LocalParityCode(k, m int) RedundancySpec {
	return RedundancySpec{Scheme: LocalParityCoded, K: k, M: m}
}

func (s RedundancySpec) String() string {
	switch s.Scheme {
	case ErasureCoded:
		return fmt.Sprintf("RS(%d,%d)", s.K, s.M)
	case LocalParityCoded:
		return s.ec().LocalString()
	}
	return "2-replication"
}

// ec converts the spec into the ec package's parameterization.
func (s RedundancySpec) ec() ec.Spec { return ec.Spec{K: s.K, M: s.M} }

// erasure reports whether the spec stripes volumes over chunk holders
// (either erasure-coding family) rather than replicating them.
func (s RedundancySpec) erasure() bool {
	return s.Scheme == ErasureCoded || s.Scheme == LocalParityCoded
}

// localParity reports the LRC family: per-rack local parity chunks and
// aggregated cross-rack repair.
func (s RedundancySpec) localParity() bool { return s.Scheme == LocalParityCoded }

// WorkloadSpec selects the client workload per vSSD pair.
type WorkloadSpec struct {
	// Name is "YCSB" (uses WriteFrac) or one of the Table 2 workloads:
	// TPC-H, Seats, AuctionMark, TPC-C, Twitter.
	Name string
	// WriteFrac applies to YCSB.
	WriteFrac float64
	// MeanGap is the mean interarrival time per vSSD (Poisson).
	MeanGap sim.Time
}

// PlacementMode selects how erasure-coded stripes map onto the cluster's
// rack fault domains (Config.Placement).
type PlacementMode = ec.PlacementMode

// Placement modes: compact confines each stripe group to one rack (the
// original rack-aware layout); spread distributes every stripe across
// racks with at most m chunks per rack, so a whole-rack or ToR failure
// leaves every stripe recoverable.
const (
	PlacementCompact = ec.PlaceCompact
	PlacementSpread  = ec.PlaceSpread
)

// Config parameterizes one rack experiment.
type Config struct {
	System System
	Seed   int64

	// StorageServers is the number of storage servers per rack (the
	// testbed uses four plus one client server).
	StorageServers int
	// Racks is the number of rack fault domains composed under the
	// cluster's spine link; 0 or 1 is the paper's single-rack testbed.
	// Each rack gets its own ToR switch.
	Racks int
	// Placement selects compact (per-rack) or spread (cross-rack)
	// placement for erasure-coded stripes; ignored under replication.
	Placement PlacementMode
	// CrossRackMBps is the spine/aggregation link capacity in MB/s shared
	// by all cross-rack repair traffic (degraded-read chunk fetches and
	// background reconstruction). Required when Racks > 1.
	CrossRackMBps float64
	// CrossRackLatency is the added one-way latency of a spine crossing
	// (ToR -> aggregation -> ToR), on top of the per-hop edge latency.
	CrossRackLatency sim.Time
	// RepairSLO enables the latency-SLO-aware repair rate controller on
	// the spine: a RepairPacer observes foreground read latency over a
	// sliding window and AIMD-adjusts the repair admission rate between
	// the configured bounds so background reconstruction never holds the
	// foreground p99 above RepairSLO.TargetP99 for long, while the
	// MinRateMBps floor guarantees repair still completes. The zero
	// value disables pacing (repair admitted whenever GC idle windows
	// allow, as before). Requires Racks > 1 — pacing meters the shared
	// cross-rack spine.
	RepairSLO RepairSLO
	// VSSDPairs is the number of logical volumes: primary+replica vSSD
	// pairs under ReplicationScheme, RS(k,m) stripe groups under
	// ErasureCoded.
	VSSDPairs int
	// Redundancy selects Hermes replication (default) or RS(k,m) erasure
	// coding for every volume.
	Redundancy RedundancySpec
	// ChannelsPerVSSD sets each hardware-isolated vSSD's channel count.
	ChannelsPerVSSD int
	// SoftwareIsolated switches to the Fig. 21 setup: two
	// software-isolated vSSDs share each channel set as a channel group.
	SoftwareIsolated bool
	// SWIsolationIOPS is the per-vSSD token-bucket limit when
	// SoftwareIsolated (0 = generous default).
	SWIsolationIOPS float64

	Geometry flash.Geometry
	Device   flash.Profile
	Net      netsim.Profile
	// Qdisc names the switch egress policy: "", "TB", "FQ", "Priority".
	Qdisc string

	SchedPolicy sched.Policy
	// CoordinatedOverride forces coordinated I/O scheduling on (1) or off
	// (-1); 0 derives it from System.
	CoordinatedOverride int

	// GC thresholds as free-block ratios (§3.5.1).
	SoftThreshold float64
	GCThreshold   float64
	// RestoreDelta is the hysteresis above the triggering threshold that a
	// GC episode restores before stopping; small values keep episodes at a
	// few bursts instead of long channel-blocking trains.
	RestoreDelta float64
	// GCCheckInterval is the periodic monitor period (the paper defaults
	// to 30s on real hardware; simulations compress it).
	GCCheckInterval sim.Time
	// IdleGCThreshold gates background GC (30ms default).
	IdleGCThreshold sim.Time
	// GCRetries bounds gc_op retransmissions on reply loss.
	GCRetries int
	// GCReplyDropRate injects switch-reply loss for failure testing.
	GCReplyDropRate float64
	// MaxGCBlocksPerBurst caps one uncoordinated (regular/forced) GC
	// event's reclaimed blocks, bounding the channel-blocked window to a
	// few milliseconds per event.
	MaxGCBlocksPerBurst int
	// SoftBurstBlocks caps one redirection-protected soft episode; larger
	// than MaxGCBlocksPerBurst because the replica absorbs reads
	// meanwhile, but bounded so the partner's delay budget holds.
	SoftBurstBlocks int
	// MaxClientInflight bounds each pair's outstanding requests
	// (semi-open loop: arrivals are Poisson but the window caps
	// divergence under saturation, like a finite client thread pool).
	MaxClientInflight int

	// WriteCachePages sizes each server's DRAM write cache.
	WriteCachePages int
	// CacheHoldPages is the write-back watermark: dirty pages are flushed
	// only above this level, so the hottest keys keep absorbing rewrites
	// in DRAM. It controls how much of the write stream reaches flash.
	CacheHoldPages int
	// Utilization is the FTL logical/raw ratio.
	Utilization float64
	// KeyspaceFrac is the fraction of logical pages the workload touches
	// (preconditioned to ~50% free blocks, §4.1).
	KeyspaceFrac float64

	Workload WorkloadSpec
	// Warmup discards samples before this time; Duration measures after.
	Warmup   sim.Time
	Duration sim.Time

	// Trace enables the flight recorder: per-request span traces with
	// phase attribution, control-plane instants, and GC bursts
	// (Result.Trace, Result.TailAttribution). Observer-only: a traced run
	// executes the exact same event sequence as an untraced one.
	Trace trace.Options
	// MetricsInterval enables the time-series sampler at this period
	// (Result.Timelines): gauges and counters read by the engine's
	// observer tick, which fires between events without being one. 0
	// disables sampling.
	MetricsInterval sim.Time

	// Scenario is the run's fault/recovery timeline: an ordered schedule
	// of typed events (FailServer, FailRack, FailToR, ReviveServer,
	// ReviveToR), each at its own instant, validated as a whole and
	// executed by the cluster's event driver. Timelines express what the
	// deprecated flat fields below cannot: independent event times,
	// server revival with catch-up repair, and repeated fail/heal
	// cycles. Mutually exclusive with the flat fields.
	//
	//	cfg.Scenario = []core.Event{
	//		core.FailServer(0, 120*sim.Millisecond),
	//		core.ReviveServer(0, 300*sim.Millisecond),
	//		core.FailServer(0, 650*sim.Millisecond),
	//	}
	Scenario []Event

	// FailServerIndex injects a server crash at FailServerAt; -1 disables
	// (the default). Heartbeats detect the failure and the rack fails
	// traffic over to the surviving replicas (§3.7).
	//
	// Deprecated: use Scenario with FailServer(idx, at) instead; the
	// field compiles to that event.
	FailServerIndex int
	// FailServerAt is the shared instant of every flat-field failure.
	//
	// Deprecated: Scenario events carry their own independent times.
	FailServerAt sim.Time
	// FailServers injects additional server crashes at FailServerAt, so
	// erasure-coded racks can lose up to m chunk holders per stripe.
	// Validate rejects duplicate or out-of-range entries with a
	// *FailureSpecError.
	//
	// Deprecated: use Scenario with one FailServer(idx, at) per crash.
	FailServers []int
	// FailRackIndex crashes every server of one rack at FailServerAt
	// (whole-rack power loss); -1 disables (the default).
	//
	// Deprecated: use Scenario with FailRack(idx, at) instead.
	FailRackIndex int
	// FailToRIndex fails one rack's ToR switch at FailServerAt: the
	// rack's servers stay alive but unreachable, and surviving ToRs take
	// over its stripe traffic via inter-switch handoff. -1 disables.
	//
	// Deprecated: use Scenario with FailToR(idx, at) instead.
	FailToRIndex int
	// RecoverToRIndex revives one rack's ToR at RecoverToRAt
	// (Cluster.ReviveToR): the switch comes back with blank SRAM, the
	// control plane replays its tables from survivors, and sibling ToRs
	// drop their remote-dead and failover marks for the rack's
	// now-reachable members. -1 disables (the default); reviving a ToR
	// that never failed is a no-op.
	//
	// Deprecated: use Scenario with ReviveToR(idx, at) instead.
	RecoverToRIndex int
	// RecoverToRAt is the flat-field ToR revival instant.
	//
	// Deprecated: Scenario events carry their own independent times.
	RecoverToRAt sim.Time
}

// DefaultConfig returns the paper's default setup scaled to simulation:
// four storage servers, four hardware-isolated vSSD pairs on P-SSDs,
// Kyber scheduling, 35%/25% GC thresholds, YCSB 50/50 at moderate load.
func DefaultConfig() Config {
	return Config{
		System:           RackBlox,
		Seed:             1,
		StorageServers:   4,
		Racks:            1,
		CrossRackMBps:    200,
		CrossRackLatency: 50 * sim.Microsecond,
		VSSDPairs:        4,
		Redundancy:       Replication(),
		ChannelsPerVSSD:  2,
		Geometry: flash.Geometry{
			Channels:        8,
			ChipsPerChannel: 4,
			BlocksPerChip:   16,
			PagesPerBlock:   32,
			PageSize:        4096,
		},
		Device:              flash.ProfilePSSD(),
		Net:                 netsim.ProfileMedium(),
		SchedPolicy:         sched.Kyber,
		SoftThreshold:       0.35,
		GCThreshold:         0.25,
		RestoreDelta:        0.04,
		GCCheckInterval:     2 * sim.Millisecond,
		IdleGCThreshold:     30 * sim.Millisecond,
		GCRetries:           3,
		MaxGCBlocksPerBurst: 1,
		SoftBurstBlocks:     1,
		MaxClientInflight:   32,
		WriteCachePages:     2048,
		CacheHoldPages:      128,
		Utilization:         0.75,
		KeyspaceFrac:        0.55,
		Workload:            WorkloadSpec{Name: "YCSB", WriteFrac: 0.5, MeanGap: 200 * sim.Microsecond},
		Warmup:              100 * sim.Millisecond,
		Duration:            1000 * sim.Millisecond,
		FailServerIndex:     -1,
		FailRackIndex:       -1,
		FailToRIndex:        -1,
		RecoverToRIndex:     -1,
	}
}

// racks normalizes the fault-domain count: 0 means one rack.
func (c *Config) racks() int {
	if c.Racks < 1 {
		return 1
	}
	return c.Racks
}

// totalServers is the cluster-wide storage-server count.
func (c *Config) totalServers() int { return c.racks() * c.StorageServers }

// coordinated reports whether the storage scheduler uses network state.
func (c *Config) coordinated() bool {
	switch c.CoordinatedOverride {
	case 1:
		return true
	case -1:
		return false
	}
	return c.System != VDC
}

// gcCoordinated reports whether GC is coordinated (switch or software).
func (c *Config) gcCoordinated() bool {
	return c.System == RackBlox || c.System == RackBloxSoftware
}

// defaultQdisc picks the paper's per-system default egress policy: VDC and
// its software extension enforce token-bucket isolation; RackBlox uses the
// switch's default priority isolation, which without cross-traffic has no
// queueing (§4.1).
func (c *Config) defaultQdisc() string {
	if c.Qdisc != "" {
		return c.Qdisc
	}
	if c.System == VDC || c.System == RackBloxSoftware {
		return "TB"
	}
	return "None"
}

// FailureSpecError reports an invalid failure-injection configuration:
// an out-of-range server or rack index, or a duplicate server entry that
// would silently double-count one crash.
type FailureSpecError struct {
	// Field names the offending configuration field.
	Field string
	// Index is the rejected value.
	Index int
	// Reason says what is wrong with it.
	Reason string
}

func (e *FailureSpecError) Error() string {
	return fmt.Sprintf("core: %s: index %d %s", e.Field, e.Index, e.Reason)
}

// validateFailureSpec rejects duplicate and out-of-range failure
// targets, including server entries already covered by a configured
// whole-rack failure — any overlap would silently double-count one
// crash against the redundancy budget.
func (c *Config) validateFailureSpec() error {
	total := c.totalServers()
	if c.FailServerIndex < -1 || c.FailServerIndex >= total {
		return &FailureSpecError{Field: "FailServerIndex", Index: c.FailServerIndex,
			Reason: fmt.Sprintf("out of range [0,%d) (-1 disables)", total)}
	}
	if c.FailRackIndex < -1 || c.FailRackIndex >= c.racks() {
		return &FailureSpecError{Field: "FailRackIndex", Index: c.FailRackIndex,
			Reason: fmt.Sprintf("out of range [0,%d) (-1 disables)", c.racks())}
	}
	if c.FailToRIndex < -1 || c.FailToRIndex >= c.racks() {
		return &FailureSpecError{Field: "FailToRIndex", Index: c.FailToRIndex,
			Reason: fmt.Sprintf("out of range [0,%d) (-1 disables)", c.racks())}
	}
	if c.RecoverToRIndex < -1 || c.RecoverToRIndex >= c.racks() {
		return &FailureSpecError{Field: "RecoverToRIndex", Index: c.RecoverToRIndex,
			Reason: fmt.Sprintf("out of range [0,%d) (-1 disables)", c.racks())}
	}
	if c.RecoverToRIndex >= 0 && c.RecoverToRAt < 0 {
		return &FailureSpecError{Field: "RecoverToRIndex", Index: c.RecoverToRIndex,
			Reason: "needs a non-negative RecoverToRAt"}
	}
	if c.RecoverToRIndex >= 0 && c.RecoverToRIndex == c.FailToRIndex &&
		c.RecoverToRAt <= c.FailServerAt {
		// Reviving at or before the failure instant is a permanent
		// no-op: the ToR is not down yet, then darkens forever.
		return &FailureSpecError{Field: "RecoverToRIndex", Index: c.RecoverToRIndex,
			Reason: "RecoverToRAt must be after FailServerAt to revive the failed ToR"}
	}
	if c.FailToRIndex >= 0 && c.FailToRIndex == c.FailRackIndex {
		// Crashing a rack's servers and darkening its ToR at the same
		// instant double-books one fault domain: the rack crash already
		// makes every member unreachable and queues its chunks for
		// repair, so the coincident ToR failure adds nothing but would
		// double-count the domain against the redundancy budget.
		return &FailureSpecError{Field: "FailToRIndex", Index: c.FailToRIndex,
			Reason: "overlaps FailRackIndex; the rack crash already darkens the whole fault domain"}
	}
	seen := make(map[int]bool)
	if j := c.FailRackIndex; j >= 0 {
		for i := j * c.StorageServers; i < (j+1)*c.StorageServers; i++ {
			seen[i] = true
		}
	}
	if idx := c.FailServerIndex; idx >= 0 {
		if seen[idx] {
			return &FailureSpecError{Field: "FailServerIndex", Index: idx,
				Reason: "already covered by FailRackIndex; each server can only crash once"}
		}
		seen[idx] = true
	}
	for _, idx := range c.FailServers {
		if idx < 0 || idx >= total {
			return &FailureSpecError{Field: "FailServers", Index: idx,
				Reason: fmt.Sprintf("out of range [0,%d)", total)}
		}
		if seen[idx] {
			return &FailureSpecError{Field: "FailServers", Index: idx,
				Reason: "duplicated; each server can only crash once"}
		}
		seen[idx] = true
	}
	return nil
}

// Validate checks configuration invariants.
func (c *Config) Validate() error {
	if c.StorageServers < 2 {
		return errors.New("core: need at least two storage servers for replication")
	}
	if c.VSSDPairs < 1 {
		return errors.New("core: need at least one vSSD pair")
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.racks() > 1 {
		if c.CrossRackMBps <= 0 {
			return errors.New("core: multi-rack cluster needs positive cross-rack bandwidth")
		}
		if c.CrossRackLatency < 0 {
			return errors.New("core: cross-rack latency must be non-negative")
		}
	}
	if c.Redundancy.erasure() {
		if c.Redundancy.localParity() {
			if err := c.Redundancy.ec().ValidateClusterLocal(c.racks(), c.StorageServers, c.Placement); err != nil {
				return err
			}
		} else if err := c.Redundancy.ec().ValidateCluster(c.racks(), c.StorageServers, c.Placement); err != nil {
			return err
		}
		if c.SoftwareIsolated {
			return errors.New("core: erasure coding requires hardware-isolated vSSDs")
		}
	}
	if err := c.RepairSLO.validate(c.racks(), c.CrossRackMBps); err != nil {
		return err
	}
	if err := c.validateFailureSpec(); err != nil {
		return err
	}
	if err := c.validateScenario(); err != nil {
		return err
	}
	need := c.neededChannelsPerServer()
	if need > c.Geometry.Channels {
		return fmt.Errorf("core: %d volumes need %d channels/server, device has %d",
			c.VSSDPairs, need, c.Geometry.Channels)
	}
	if !(c.GCThreshold < c.SoftThreshold) {
		return fmt.Errorf("core: thresholds must order gc < soft, got %f %f",
			c.GCThreshold, c.SoftThreshold)
	}
	if c.RestoreDelta <= 0 || c.SoftThreshold+c.RestoreDelta >= 1 {
		return fmt.Errorf("core: restore delta %f out of range", c.RestoreDelta)
	}
	if c.Utilization <= 0 || c.Utilization >= 1 {
		return fmt.Errorf("core: utilization %f outside (0,1)", c.Utilization)
	}
	if c.KeyspaceFrac <= 0 || c.KeyspaceFrac > 1 {
		return fmt.Errorf("core: keyspace fraction %f outside (0,1]", c.KeyspaceFrac)
	}
	if c.Workload.MeanGap <= 0 {
		return errors.New("core: workload mean gap must be positive")
	}
	if c.Duration <= 0 {
		return errors.New("core: duration must be positive")
	}
	if c.MetricsInterval < 0 {
		return errors.New("core: metrics interval must be non-negative")
	}
	if c.Trace.SampleEvery < 0 || c.Trace.TailKeep < 0 {
		return errors.New("core: trace sampling knobs must be non-negative")
	}
	return nil
}

// placer builds the cluster's erasure-coding placer from the config.
func (c *Config) placer() ec.Placer {
	return ec.Placer{
		Servers:    c.StorageServers,
		Racks:      c.racks(),
		Width:      c.Redundancy.ec().Width(),
		Mode:       c.Placement,
		MaxPerRack: c.Redundancy.M,
	}
}

// neededChannelsPerServer computes channel demand per server. With P
// replicated pairs round-robin over S servers each server hosts
// ceil(2P/S) instances; erasure-coded groups place per the rack-aware
// Placer (plus one local parity instance per rack under the LRC
// family), so demand is the maximum of its actual assignment.
func (c *Config) neededChannelsPerServer() int {
	if c.Redundancy.erasure() {
		placer := c.placer()
		counts := make([]int, placer.TotalServers())
		most := 0
		for g := 0; g < c.VSSDPairs; g++ {
			placed := placer.Place(g)
			if c.Redundancy.localParity() {
				placed = append(placed, placer.LocalParityServers(g, placed)...)
			}
			for _, s := range placed {
				counts[s]++
				if counts[s] > most {
					most = counts[s]
				}
			}
		}
		return most * c.ChannelsPerVSSD
	}
	instances := (2*c.VSSDPairs + c.totalServers() - 1) / c.totalServers()
	return instances * c.ChannelsPerVSSD
}
