package core

import (
	"rackblox/internal/ec"
	"rackblox/internal/flash"
	"rackblox/internal/packet"
	"rackblox/internal/sched"
	"rackblox/internal/sim"
	"rackblox/internal/switchsim"
	"rackblox/internal/trace"
	"rackblox/internal/workload"
)

// Erasure-coding datapath constants.
const (
	// ecDecodeTime is the CPU cost of one RS(k,m) stripe decode on a
	// degraded read (GF(2^8) matrix-vector over a 4 KB chunk).
	ecDecodeTime = 8 * sim.Microsecond
	// repairBatchStripes is how many stripes one background repair task
	// rebuilds; batching keeps event counts proportional to lost
	// capacity, not pages.
	repairBatchStripes = 64
	// maxECRetries bounds client retransmissions of an erasure-coded
	// request whose sub-operations were swallowed by a crashed server.
	maxECRetries = 5
)

// ecGroup is one erasure-coded volume: k data + m parity chunk holders
// placed on distinct servers, with the client-side generator and the
// background reconstructor that repairs lost chunks in GC idle windows.
// Under the LRC family (Config.Redundancy LocalParityCoded) the member
// list extends past the k+m global holders with one local parity holder
// per occupied rack — the XOR of that rack's global chunks — enabling
// zero-spine single-loss repair and per-rack aggregated multi-loss
// repair.
type ecGroup struct {
	idx     int
	spec    ec.Spec
	striper ec.Striper
	// insts holds the k+m global chunk holders in placement order,
	// followed (LRC only) by the local parity holders in rack order.
	insts    []*instance
	gen      workload.Generator
	inflight int

	// usedStripes is how many stripes the preconditioned keyspace
	// touches; reconstruction of a lost chunk covers exactly these.
	usedStripes int

	recon          *ec.Reconstructor
	repairArmed    bool
	repairInFlight bool

	// Re-integration state: once the reconstructor finishes a lost
	// holder, the adopting member that received the rebuilt chunks is
	// registered as its replacement — reads and writes for the holder's
	// chunks go to it directly, no longer degraded. crashed marks the
	// holders whose server died and was queued for repair at least once
	// (a darkened ToR does not crash holders); repairing marks the
	// holders with a rebuild outstanding right now, so repeated
	// fail/heal cycles keep the cumulative failedHolders and
	// reintegratedHolders counts balanced; reintegratedAt is when the
	// last outstanding holder completed.
	replacement map[int]*instance
	crashed     map[int]bool
	repairing   map[int]bool
	// adopterFor pins each lost holder's adopter for the whole repair:
	// every batch programs onto it and re-integration registers it, so
	// a reachability change mid-repair cannot desynchronize where the
	// chunks landed from where reads are steered afterwards. A catch-up
	// repair after server revival pins the original holder itself — the
	// returning box is blank, so the rebuild targets it directly.
	adopterFor          map[int]*instance
	failedHolders       int
	reintegratedHolders int
	reintegratedAt      sim.Time
}

// holderIndex resolves a member id to its group-local holder index.
func (g *ecGroup) holderIndex(id uint32) (int, bool) {
	for i, m := range g.insts {
		if m.id == id {
			return i, true
		}
	}
	return 0, false
}

// memberIndex resolves a member instance to its group-local index.
func (g *ecGroup) memberIndex(inst *instance) (int, bool) {
	for i, m := range g.insts {
		if m == inst {
			return i, true
		}
	}
	return 0, false
}

// hasLocalParity reports the LRC family: members past the global k+m
// are per-rack local parity holders.
func (g *ecGroup) hasLocalParity() bool { return len(g.insts) > g.spec.Width() }

// localParityOf returns the group's local parity holder for one rack
// (nil outside the LRC family or for an unoccupied rack).
func (g *ecGroup) localParityOf(rack int) *instance {
	for _, m := range g.insts[g.spec.Width():] {
		if m.server.rackIdx == rack {
			return m
		}
	}
	return nil
}

// memberTable derives the per-rack stripe-table rows — member ids and
// their racks, in placement order. Both the initial registration
// (buildGroups) and the revival replay (replayToR) install exactly
// these rows, so the two paths cannot drift.
func (g *ecGroup) memberTable() (ids []uint32, racks []int) {
	ids = make([]uint32, len(g.insts))
	racks = make([]int, len(g.insts))
	for i, m := range g.insts {
		ids[i] = m.id
		racks[i] = m.server.rackIdx
	}
	return ids, racks
}

// reintegrated reports whether every holder this group lost has been
// rebuilt and re-registered.
func (g *ecGroup) reintegrated() bool {
	return g.failedHolders > 0 && g.reintegratedHolders == g.failedHolders
}

// servesDirect reports whether inst is the re-integrated replacement for
// the holder a read was addressed to: the rebuilt chunk lives here, so
// the switch-rewritten read is served like any healthy read instead of a
// k-fetch reconstruction.
func (g *ecGroup) servesDirect(inst *instance, homeID uint32) bool {
	for i, m := range g.insts {
		if m.id == homeID {
			return g.replacement[i] == inst
		}
	}
	return false
}

// buildGroups creates the erasure-coded volumes: for each group, k+m
// chunk-holder instances on distinct servers (rack-aware placement),
// switch registration (create_vssd plus the stripe table), and the
// workload generator over the striped keyspace.
func (r *Rack) buildGroups() error {
	cfg := r.cfg
	spec := cfg.Redundancy.ec()
	placer := cfg.placer()
	alloc := r.channelAllocator()

	for gidx := 0; gidx < cfg.VSSDPairs; gidx++ {
		g := &ecGroup{
			idx:         gidx,
			spec:        spec,
			striper:     ec.Striper{Spec: spec},
			recon:       ec.NewReconstructor(),
			replacement: make(map[int]*instance),
			crashed:     make(map[int]bool),
			repairing:   make(map[int]bool),
			adopterFor:  make(map[int]*instance),
		}
		servers := placer.Place(gidx)
		if cfg.Redundancy.localParity() {
			// The LRC family appends one local parity holder per occupied
			// rack after the k+m global members.
			servers = append(servers, placer.LocalParityServers(gidx, servers)...)
		}
		total := len(servers)
		for i, sIdx := range servers {
			srv := r.servers[sIdx]
			id := uint32(100 + gidx*total + i)
			nextID := uint32(100 + gidx*total + (i+1)%total)
			inst, err := r.newInstance(srv, id, nextID, gidx, i == 0, alloc)
			if err != nil {
				return err
			}
			g.insts = append(g.insts, inst)
		}

		// Register every chunk holder with its own rack's ToR
		// (create_vssd, replica = the next member in the same rack so
		// non-stripe paths degrade gracefully without leaking remote IPs
		// into the wrong destination table), then install the stripe
		// group — member ids plus their racks — in every involved ToR's
		// per-rack stripe table for degraded routing and handoff.
		for i, inst := range g.insts {
			next := g.sameRackNeighbor(i)
			r.torOf(inst.server).Process(packet.Packet{
				Op: packet.OpCreateVSSD, VSSD: inst.id, SrcIP: inst.server.ip,
				ReplicaVSSD: next.id, ReplicaIP: next.server.ip,
			})
		}
		ids, racks := g.memberTable()
		seenRack := make(map[int]bool)
		for _, inst := range g.insts {
			if seenRack[inst.server.rackIdx] {
				continue
			}
			seenRack[inst.server.rackIdx] = true
			r.torOf(inst.server).RegisterStripeMembers(ids, racks)
		}

		perChunk := int(float64(g.insts[0].v.FTL.LogicalPages()) * cfg.KeyspaceFrac)
		if perChunk < 1 {
			perChunk = 1
		}
		g.usedStripes = perChunk
		g.gen = r.makeGenerator(gidx, uint64(perChunk)*uint64(spec.K))
		r.groups = append(r.groups, g)
		if r.controller != nil {
			r.controller.registerGroup(g)
		}
	}
	r.eng.Run() // drain registration events
	return nil
}

// sameRackNeighbor returns the next group member sharing member i's rack
// (the "replica" hint registered with its ToR); with no rack-local
// neighbor the member points at itself, a harmless self-entry.
func (g *ecGroup) sameRackNeighbor(i int) *instance {
	self := g.insts[i]
	n := len(g.insts)
	for d := 1; d < n; d++ {
		m := g.insts[(i+d)%n]
		if m.server.rackIdx == self.server.rackIdx {
			return m
		}
	}
	return self
}

// writeHolders returns the instances a logical write must update: the
// data chunk's holder plus the stripe's m parity holders — and, under
// the LRC family, the local parity holder of every rack those updates
// touch (the honest write amplification of local parity: an updated
// chunk changes its rack's XOR). Members are returned as originally
// placed — the client's volume map never changes; the ToR rewrites
// traffic for failed-over or re-integrated members.
func (g *ecGroup) writeHolders(stripe, pos int) []*instance {
	out := []*instance{g.insts[g.striper.DataHolder(stripe, pos)]}
	for _, h := range g.striper.ParityHolders(stripe) {
		out = append(out, g.insts[h])
	}
	if g.hasLocalParity() {
		seen := make(map[int]bool)
		for _, m := range out {
			seen[m.server.rackIdx] = true
		}
		for _, lp := range g.insts[g.spec.Width():] {
			if seen[lp.server.rackIdx] {
				out = append(out, lp)
			}
		}
	}
	return out
}

// adopter picks the surviving member that absorbs a dead holder's
// traffic and rebuilt chunks: the next live, reachable member in group
// order. The LRC family prefers a member in the dead holder's own rack
// — an in-rack adopter is what lets the local-XOR repair plan rebuild
// the chunk without any spine traffic.
func (g *ecGroup) adopter(holder int) *instance {
	n := len(g.insts)
	if g.hasLocalParity() {
		rack := g.insts[holder].server.rackIdx
		for i := 1; i < n; i++ {
			m := g.insts[(holder+i)%n]
			if m.server.reachable() && m.server.rackIdx == rack {
				return m
			}
		}
	}
	for i := 1; i < n; i++ {
		m := g.insts[(holder+i)%n]
		if m.server.reachable() {
			return m
		}
	}
	return nil
}

// readSources orders the chunk sources for a degraded reconstruction
// rack-local-first: the coordinator's own chunk (free of network hops),
// then idle survivors in the coordinator's rack, then idle survivors in
// other racks — which cost spine latency and metered cross-rack
// bandwidth — and collecting survivors last. Every global member holds
// exactly one chunk of every stripe, so any k of them suffice; the
// ordering means the read spills onto the cross-rack link only when its
// own rack cannot muster k healthy chunks. Holders with a rebuild
// outstanding are never sources: a revived-but-catching-up member is
// blank. Local parity holders never join an RS decode — their chunk is
// a rack-local XOR, not a generator row — so only global members (and a
// global coordinator) qualify.
func (g *ecGroup) readSources(coord *instance, now sim.Time) []*instance {
	width := g.spec.Width()
	out := make([]*instance, 0, width)
	if ci, ok := g.memberIndex(coord); ok && ci < width {
		out = append(out, coord)
	}
	var remote, busy []*instance
	for i, m := range g.insts[:width] {
		if m == coord || !m.server.reachable() || g.repairing[i] {
			continue
		}
		switch {
		case m.v.InGC(now):
			busy = append(busy, m)
		case m.server.rackIdx != coord.server.rackIdx:
			remote = append(remote, m)
		default:
			out = append(out, m)
		}
	}
	out = append(out, remote...)
	return append(out, busy...)
}

// degradedSources picks the reconstruction plan for a degraded read at
// coordinator coord: under the LRC family, when the home holder's rack
// contains the coordinator and every other rack member (global chunks
// plus the local parity) is healthy, the lost chunk is the XOR of
// exactly those rack-local chunks — the zero-spine plan, needing no
// cross-rack fetch at all. Otherwise it falls back to the global RS
// decode from any k global survivors (readSources order). It returns
// the sources, how many are needed, and whether the rack-local plan was
// chosen.
func (g *ecGroup) degradedSources(coord *instance, homeID uint32, now sim.Time) ([]*instance, int, bool) {
	if g.hasLocalParity() {
		if hIdx, ok := g.holderIndex(homeID); ok &&
			g.insts[hIdx] != coord && g.insts[hIdx].server.rackIdx == coord.server.rackIdx {
			rack := coord.server.rackIdx
			local := []*instance{coord}
			complete := true
			for j, m := range g.insts {
				if m.server.rackIdx != rack || m == coord || j == hIdx {
					continue
				}
				if !m.server.reachable() || g.repairing[j] {
					complete = false
					break
				}
				local = append(local, m)
			}
			if complete {
				return local, len(local), true
			}
		}
	}
	return g.readSources(coord, now), g.spec.K, false
}

// repairSources picks the survivor set for rebuilding one lost holder
// onto adopter. Under the LRC family, when the adopter sits in the lost
// holder's own rack and every other member of that rack (global chunks
// plus the local parity) is healthy, the lost chunk is the XOR of
// exactly those rack-local chunks — the zero-spine local plan; the
// returned bool reports it. Otherwise the global plan applies: the
// adopter's own chunk first (unless it is the blank rebuild target),
// then rack-local global survivors, then remote ones, k in total —
// local parity holders never feed an RS decode.
func (g *ecGroup) repairSources(holder int, adopter *instance) ([]*instance, bool) {
	if g.hasLocalParity() && adopter.server.rackIdx == g.insts[holder].server.rackIdx {
		rack := adopter.server.rackIdx
		var local []*instance
		complete := true
		for j, m := range g.insts {
			if m.server.rackIdx != rack || j == holder {
				continue
			}
			if !m.server.reachable() || g.repairing[j] {
				complete = false
				break
			}
			local = append(local, m)
		}
		if complete {
			return local, true
		}
	}
	width := g.spec.Width()
	var sources []*instance
	if ai, ok := g.memberIndex(adopter); ok && ai < width && adopter != g.insts[holder] {
		sources = append(sources, adopter)
	}
	for pass := 0; pass < 2; pass++ {
		for j, m := range g.insts[:width] {
			if len(sources) == g.spec.K {
				break
			}
			if m == adopter || m == g.insts[holder] ||
				!m.server.reachable() || g.repairing[j] {
				continue
			}
			local := m.server.rackIdx == adopter.server.rackIdx
			if (pass == 0) != local {
				continue
			}
			sources = append(sources, m)
		}
	}
	return sources, false
}

// issueEC sends one request from an erasure-coded volume's generator and
// schedules the next arrival (semi-open loop, like issue for pairs).
func (r *Rack) issueEC(g *ecGroup) {
	now := r.eng.Now()
	if now < r.stopIssuing {
		r.eng.AfterNamed(g.gen.NextGap(), "client.issue_ec", func(sim.Time) { r.issueEC(g) })
	}
	if r.cfg.MaxClientInflight > 0 && g.inflight >= r.cfg.MaxClientInflight {
		return
	}

	op := g.gen.Next()
	r.seq++
	st := &reqState{
		seq:       r.seq,
		write:     op.Write,
		group:     g,
		issue:     now,
		lastIssue: now,
		userLPN:   op.LPN,
	}
	st.span = r.tracer.StartRequest(st.seq, reqKind(op.Write), now)
	st.span.Annotate(trace.Int("lpn", int64(op.LPN)), trace.Int("volume", int64(g.idx)))
	r.reqs[st.seq] = st
	g.inflight++
	r.watchTimeout(st.seq)
	r.sendEC(st)
}

// sendEC fans one logical request out to its chunk holders. A write
// updates the data chunk and all m parity chunks (the RS small-write
// amplification); a read goes to the data chunk's holder, and the switch
// steers it to a survivor for degraded reconstruction when that holder
// is collecting or failed. Every holder stores its chunk of stripe s at
// local page s, so all sub-operations share one chunk-local LPN.
func (r *Rack) sendEC(st *reqState) {
	g := st.group
	stripe, pos := g.striper.Stripe(int(st.userLPN))
	st.lpn = uint32(stripe)
	if st.write {
		targets := g.writeHolders(stripe, pos)
		st.ecPending = len(targets)
		r.ecSubWrites += int64(len(targets))
		for _, t := range targets {
			r.sendECPacket(st, t, packet.OpWrite)
		}
		return
	}
	home := g.insts[g.striper.DataHolder(stripe, pos)]
	st.homeID = home.id
	st.ecPending = 1
	r.sendECPacket(st, home, packet.OpRead)
}

// sendECPacket emits one sub-operation toward a chunk holder via its
// rack's ToR. Once a ToR failure is detected the client enters through
// another rack of the group instead; that ToR's failover and handoff
// tables route around the dark rack.
func (r *Rack) sendECPacket(st *reqState, inst *instance, op packet.Op) {
	pkt := packet.Packet{
		Op:    op,
		SrcIP: r.clientIP,
		DstIP: inst.server.ip,
		Port:  packet.ReservedPort,
		VSSD:  inst.id,
		LPN:   st.lpn,
		Seq:   st.seq,
	}
	tor := r.torOf(inst.server)
	if r.cluster.torDetected[inst.server.rackIdx] {
		for _, m := range st.group.insts {
			if alt := r.torOf(m.server); !alt.Down() {
				tor = alt
				break
			}
		}
	}
	r.clientSend(pkt, tor)
}

// startDegradedRead reconstructs a chunk at a surviving holder: the
// switch steered this read away from its home, so the coordinator
// fetches any k chunks of the stripe (its own local one plus k-1 remote)
// and decodes. Remote fetches charge two network hops each way and the
// source device's channel time; they bypass the remote scheduler queue,
// modeling the priority repair lane real EC stores give chunk fetches.
func (s *server) startDegradedRead(inst *instance, req *sched.Request) {
	r := s.rack
	now := r.eng.Now()
	st := r.reqs[req.Seq]
	if st.dispatched == 0 {
		st.dispatched = now
	}
	st.redirected = true
	st.degraded = true
	r.degradedReads++
	g := st.group
	stripe := int(st.lpn)
	// A degraded read for a crashed-and-re-integrated holder after the
	// group finished healing should no longer exist: the switch
	// rewrites such reads to the replacement and they are served
	// directly. The only legitimate post-heal steering is the
	// replacement itself collecting or unreachable; everything else
	// (excluding requests issued before the last holder's tables were
	// updated) is a straggler — the lifecycle's health check figrl
	// asserts stays at zero. Holders isolated by a dark ToR are not
	// counted: no repair was queued for them, so there is nothing to
	// have re-integrated.
	if hIdx, ok := g.holderIndex(st.homeID); ok && g.crashed[hIdx] &&
		g.reintegrated() && st.issue > g.reintegratedAt {
		repl := g.replacement[hIdx]
		if repl == nil || (repl.server.reachable() && !repl.v.InGC(now)) {
			r.degradedReadsPostRepair++
		}
	}

	sources, needed, localPlan := g.degradedSources(inst, st.homeID, now)
	if localPlan {
		r.localDegradedReads++
	} else if len(sources) < needed {
		// More failures than parity: the stripe cannot be reconstructed
		// right now. Serve the local chunk so the request terminates, and
		// surface the loss in the counters (ec.ErrStripeUnrecoverable is
		// the library-level twin of this path).
		r.unrecoverableReads++
		if len(sources) == 0 {
			sources = []*instance{inst}
		} else {
			sources = sources[:1]
		}
	} else {
		sources = sources[:needed]
	}
	// Under the LRC family a global fallback decode still ships
	// aggregates: each remote rack folds its survivors into one partial
	// sum locally, and only the rack's designated shipper pays the spine
	// for one chunk.
	var shipper map[int]*instance
	if g.hasLocalParity() && !localPlan {
		shipper = make(map[int]*instance)
		for _, src := range sources {
			if src.server.rackIdx != inst.server.rackIdx {
				if _, ok := shipper[src.server.rackIdx]; !ok {
					shipper[src.server.rackIdx] = src
				}
			}
		}
	}

	var recSpan *trace.Span
	if st.span != nil {
		recSpan = st.span.Child("reconstruct", now)
		recSpan.Annotate(trace.Int("sources", int64(len(sources))),
			trace.Int("stripe", int64(stripe)))
		if g.hasLocalParity() {
			plan := "aggregated"
			if localPlan {
				plan = "local_xor"
			}
			recSpan.Annotate(trace.String("plan", plan))
		}
	}
	remaining := len(sources)
	finish := func() {
		remaining--
		if remaining > 0 {
			return
		}
		r.eng.AfterNamed(ecDecodeTime, "ec.decode", func(tnow sim.Time) {
			recSpan.EndAt(tnow)
			s.completeRead(inst, req)
		})
	}
	chunkBytes := int64(r.cfg.Geometry.PageSize)
	for _, src := range sources {
		src := src
		cross := src.server.rackIdx != inst.server.rackIdx
		readChunk := func(sim.Time) {
			addr, err := src.v.FTL.Read(stripe)
			if err != nil {
				// Chunk outside the preconditioned range still costs one
				// device read on the source's first channel.
				addr = flash.Addr{Channel: src.v.Channels()[0]}
			}
			src.server.dev.TimeRead(addr, func(_, _ sim.Time) {
				if src == inst {
					finish()
					return
				}
				if cross {
					if shipper != nil && shipper[src.server.rackIdx] != src {
						// This survivor only feeds its rack's partial sum:
						// a rack-local hop to the shipper, no spine bytes.
						back := r.net.PathLatency(r.eng.Now(), 2)
						r.eng.AfterNamed(back, "ec.chunk_back", func(sim.Time) { finish() })
						return
					}
					// The chunk ships back over the metered spine link,
					// then the remote-rack edge hops.
					fs, fe := r.cluster.spine.CrossFetch(chunkBytes, func(sim.Time) {
						back := r.cluster.spine.Propagation() + r.net.PathLatency(r.eng.Now(), 2)
						r.eng.AfterNamed(back, "ec.chunk_back", func(sim.Time) { finish() })
					})
					if recSpan != nil {
						if tnow := r.eng.Now(); fs > tnow {
							recSpan.Child("spine_wait", tnow).EndAt(fs)
						}
						recSpan.Child("spine_xfer", fs).EndAt(fe)
					}
					return
				}
				back := r.net.PathLatency(r.eng.Now(), 2)
				r.eng.AfterNamed(back, "ec.chunk_back", func(sim.Time) { finish() })
			})
		}
		if src == inst {
			readChunk(now)
		} else {
			out := r.net.PathLatency(now, 2)
			if cross {
				out += r.cluster.spine.Propagation()
			}
			r.eng.AfterNamed(out, "ec.chunk_read", readChunk)
		}
	}
}

// scheduleRepair arms the group's repair pump one monitor period out.
func (r *Rack) scheduleRepair(g *ecGroup) {
	if g.repairArmed {
		return
	}
	g.repairArmed = true
	r.eng.AfterNamed(r.cfg.GCCheckInterval, "ec.repair_pump", func(sim.Time) { r.repairPump(g) })
}

// repairPump admits background chunk reconstruction only in the
// switch-observed GC idle window: the repair coordinator reads the ToR's
// per-member GC bits (the same state soft gc_ops consult) and backs off
// while any member collects, so repair traffic never competes with a
// foreground GC episode for the group's channels. With the SLO pacer
// active (Config.RepairSLO) a second gate follows: the claim is cut to
// the pacer's token-sized stripe limit and waits in the spine token lane
// until the AIMD-controlled admission rate matures enough credit, so
// repair also never holds the foreground tail above the SLO target.
func (r *Rack) repairPump(g *ecGroup) {
	g.repairArmed = false
	if g.repairInFlight || g.recon.Pending() == 0 {
		return
	}
	for _, m := range g.insts {
		if !m.server.reachable() {
			continue
		}
		if r.torOf(m.server).GCStatus(m.id) {
			g.recon.Delayed()
			r.scheduleRepair(g)
			return
		}
	}
	// Tasks are enqueued in batches of at most repairBatchStripes, so
	// the unpaced claim limit is a no-op split; the pacer cuts it down
	// to its token size.
	limit := repairBatchStripes
	if r.pacer != nil {
		limit = r.pacer.batchStripes()
	}
	task, ok := g.recon.NextUpTo(limit)
	if !ok {
		return
	}
	g.repairInFlight = true
	if r.pacer == nil {
		r.runRepairTask(g, task, 0)
		return
	}
	// A zero-spine local-XOR plan (LRC, in-rack adopter, healthy rack)
	// moves no cross-rack bytes, so it claims no spine tokens: it runs
	// immediately instead of idling the rack behind the admission lane.
	if adopter := g.adopterFor[task.Holder]; adopter != nil && adopter.server.reachable() {
		if _, local := g.repairSources(task.Holder, adopter); local {
			r.runRepairTask(g, task, 0)
			return
		}
	}
	// The token charge is the rebuilt chunk volume; the GC idle window
	// was checked at claim time and the grant re-validates liveness in
	// runRepairTask, like any task that waited in a queue.
	charge := int64(task.Stripes) * int64(r.cfg.Geometry.PageSize)
	r.pacer.admit(charge, func() {
		r.runRepairTask(g, task, charge)
	})
}

// runRepairTask rebuilds one batch of a lost holder's chunks: chunk
// reads spread over the survivors — under RS, k of them, intra-rack
// first, spilling onto the metered cross-rack link only when the
// adopter's rack cannot supply k; under LRC, either the rack-local XOR
// set (zero spine bytes) or an aggregated global plan where each remote
// rack ships one combined batch instead of one per survivor — the
// decode, and the programs that land the rebuilt chunks on the adopting
// holder. Channel time is charged in bulk per batch; spine crossings
// serialize their batch bytes through the cluster link. charged is the
// admission charge the pacer already collected for this task (0 when
// unpaced or admitted via the token-free local plan); settle reconciles
// it against the actual spine bytes.
func (r *Rack) runRepairTask(g *ecGroup, task ec.RepairTask, charged int64) {
	now := r.eng.Now()
	// batchBytes is the spine cost of one batch crossing below; the
	// settle calls reconcile the admission charge against the actual
	// cross-rack fan-out once known (or the task dies without moving
	// anything).
	batchBytes := int64(task.Stripes) * int64(r.cfg.Geometry.PageSize)
	// The adopter is pinned per holder: the first batch picks it and
	// every later batch (and the final re-integration) targets the same
	// member. If it has since become unreachable, the batches already
	// programmed onto it are gone with it, so the holder's repair
	// restarts from scratch onto a fresh adopter — counting the dead
	// adopter's batches toward completion would register a replacement
	// that never received the early chunks.
	adopter := g.adopterFor[task.Holder]
	if adopter == nil || !adopter.server.reachable() {
		g.repairInFlight = false
		if r.pacer != nil {
			r.pacer.settle(charged, 0) // refund: nothing moved
		}
		if next := g.adopter(task.Holder); next != nil {
			r.enqueueHolderRepair(g, task.Holder, next)
		}
		// With no reachable member left there is nothing to rebuild
		// onto; the unrecoverable-read counter exposes the loss.
		return
	}
	sources, localPlan := g.repairSources(task.Holder, adopter)
	if !localPlan && len(sources) < g.spec.K {
		// Unrecoverable with the current survivors: drop the task; the
		// unrecoverable-read counter already exposes the data loss.
		g.repairInFlight = false
		if r.pacer != nil {
			r.pacer.settle(charged, 0) // refund: nothing moved
		}
		r.scheduleRepair(g)
		return
	}

	// One always-kept repair span per batch; the key folds group and
	// holder so every holder's batches share one Perfetto row.
	sp := r.tracer.StartSpan("repair", "repair",
		uint64(g.idx)*64+uint64(task.Holder), now)
	sp.Annotate(trace.Int("group", int64(g.idx)), trace.Int("holder", int64(task.Holder)),
		trace.Int("first_stripe", int64(task.FirstStripe)),
		trace.Int("stripes", int64(task.Stripes)))

	var end sim.Time
	var crossBytes int64
	readDur := sim.Time(task.Stripes) * r.cfg.Device.ReadPage
	aggRacks := make(map[int]bool)
	for _, src := range sources {
		chs := src.v.Channels()
		_, e := src.server.dev.OccupyChannel(chs[task.FirstStripe%len(chs)], readDur)
		if src.server.rackIdx != adopter.server.rackIdx {
			// The batch crosses the spine: meter it on the shared link.
			// Under LRC the remote rack combines its survivors locally
			// first and ships one aggregate per rack, not one per source.
			if !g.hasLocalParity() || !aggRacks[src.server.rackIdx] {
				aggRacks[src.server.rackIdx] = true
				crossBytes += batchBytes
				if _, te := r.cluster.spine.CrossFetch(batchBytes, nil); te+r.cluster.spine.Propagation() > e {
					e = te + r.cluster.spine.Propagation()
				}
			}
		}
		if e > end {
			end = e
		}
	}
	if localPlan {
		r.localRepairStripes += int64(task.Stripes)
	} else if g.hasLocalParity() && len(aggRacks) > 0 {
		r.aggRepairStripes += int64(task.Stripes)
	}
	if r.pacer != nil {
		// Settle the admission charge against the real spine fan-out:
		// extra remote sources become token debt, an all-local batch a
		// refund.
		r.pacer.settle(charged, crossBytes)
	}
	progDur := sim.Time(task.Stripes) * r.cfg.Device.ProgramPage
	achs := adopter.v.Channels()
	if _, e := adopter.server.dev.OccupyChannel(achs[task.FirstStripe%len(achs)], progDur); e > end {
		end = e
	}
	end += sim.Time(task.Stripes)*ecDecodeTime + r.net.PathLatency(now, 2)
	r.eng.AtNamed(end, "ec.repair_done", func(now sim.Time) {
		sp.Annotate(trace.Int("cross_bytes", crossBytes))
		sp.Finish(now)
		r.lastRepairDone = now
		if g.recon.Done(task) {
			r.reintegrate(g, task.Holder)
		}
		g.repairInFlight = false
		r.scheduleRepair(g)
	})
}

// reintegrate closes the repair loop for one fully rebuilt holder: the
// member the reconstructor rebuilt onto becomes the holder's
// replacement. The client's volume map updates immediately (new reads
// and writes go to the replacement directly), and after the
// control-plane propagation delay every ToR serving the group updates
// its stripe table: an adopting member is swapped in for the dead one
// (switchsim.ReplaceStripeMember), while a catch-up repair that landed
// the chunks back on the revived original re-registers the holder under
// its own id (switchsim.RestoreStripeMember). Either way the failover
// and remote-dead entries are cleared, so post-repair reads stop paying
// the degraded-reconstruction cost.
func (r *Rack) reintegrate(g *ecGroup, holder int) {
	// Register the member the repair actually rebuilt onto — never
	// recomputed, so the replacement always holds the chunks.
	adopter := g.adopterFor[holder]
	if adopter == nil {
		return // everyone died since the repair was queued
	}
	restored := adopter == g.insts[holder]
	oldID, newID := g.insts[holder].id, adopter.id
	// The control-plane updates below are deferred by propagation delay;
	// if the holder is lost again meanwhile (its repair generation moves
	// on), the stale registrations must not land.
	gen := g.recon.Gen(holder)
	fresh := func() bool { return g.recon.Gen(holder) == gen }
	hop := r.net.HopLatency(r.eng.Now())
	var last sim.Time
	seen := make(map[*switchsim.Switch]bool)
	for _, m := range g.insts {
		tor := r.torOf(m.server)
		if seen[tor] {
			continue
		}
		seen[tor] = true
		delay := hop + r.cluster.spine.Latency(adopter.server.rackIdx, tor.RackID())
		if delay > last {
			last = delay
		}
		r.eng.AfterNamed(delay, "ec.reintegrate", func(sim.Time) {
			if tor.Down() || !fresh() {
				return // a dark ToR misses the update; revival replays it
			}
			tor.RegisterDest(newID, adopter.server.ip)
			if restored {
				tor.RestoreStripeMember(oldID)
			} else {
				tor.ReplaceStripeMember(oldID, newID)
			}
		})
	}
	// The holder counts as re-integrated once the slowest ToR has the
	// replacement installed; reads issued after this instant are served
	// directly everywhere.
	r.eng.AfterNamed(last, "ec.reintegrate", func(sim.Time) {
		if !fresh() {
			return
		}
		g.replacement[holder] = adopter
		if g.repairing[holder] {
			g.repairing[holder] = false
			g.reintegratedHolders++
		}
		g.reintegratedAt = r.eng.Now()
		// Every holder stores one chunk of each of the group's
		// usedStripes stripes, so one completed holder re-integrates
		// exactly that many.
		r.reintegratedStripes += int64(g.usedStripes)
		if restored {
			r.restoredHolders++
		}
		mode := "replacement"
		if restored {
			mode = "restored"
		}
		r.tracer.Instant("repair", "reintegrate", r.eng.Now(),
			trace.Int("group", int64(g.idx)), trace.Int("holder", int64(holder)),
			trace.String("mode", mode))
	})
}
