package core

import (
	"rackblox/internal/ec"
	"rackblox/internal/flash"
	"rackblox/internal/packet"
	"rackblox/internal/sched"
	"rackblox/internal/sim"
	"rackblox/internal/switchsim"
	"rackblox/internal/trace"
	"rackblox/internal/workload"
)

// Erasure-coding datapath constants.
const (
	// ecDecodeTime is the CPU cost of one RS(k,m) stripe decode on a
	// degraded read (GF(2^8) matrix-vector over a 4 KB chunk).
	ecDecodeTime = 8 * sim.Microsecond
	// repairBatchStripes is how many stripes one background repair task
	// rebuilds; batching keeps event counts proportional to lost
	// capacity, not pages.
	repairBatchStripes = 64
	// maxECRetries bounds client retransmissions of an erasure-coded
	// request whose sub-operations were swallowed by a crashed server.
	maxECRetries = 5
)

// ecGroup is one erasure-coded volume: k data + m parity chunk holders
// placed on distinct servers, with the client-side generator and the
// background reconstructor that repairs lost chunks in GC idle windows.
type ecGroup struct {
	idx      int
	spec     ec.Spec
	striper  ec.Striper
	insts    []*instance // k+m chunk holders, placement order
	gen      workload.Generator
	inflight int

	// usedStripes is how many stripes the preconditioned keyspace
	// touches; reconstruction of a lost chunk covers exactly these.
	usedStripes int

	recon          *ec.Reconstructor
	repairArmed    bool
	repairInFlight bool

	// Re-integration state: once the reconstructor finishes a lost
	// holder, the adopting member that received the rebuilt chunks is
	// registered as its replacement — reads and writes for the holder's
	// chunks go to it directly, no longer degraded. crashed marks the
	// holders whose server died and was queued for repair at least once
	// (a darkened ToR does not crash holders); repairing marks the
	// holders with a rebuild outstanding right now, so repeated
	// fail/heal cycles keep the cumulative failedHolders and
	// reintegratedHolders counts balanced; reintegratedAt is when the
	// last outstanding holder completed.
	replacement map[int]*instance
	crashed     map[int]bool
	repairing   map[int]bool
	// adopterFor pins each lost holder's adopter for the whole repair:
	// every batch programs onto it and re-integration registers it, so
	// a reachability change mid-repair cannot desynchronize where the
	// chunks landed from where reads are steered afterwards. A catch-up
	// repair after server revival pins the original holder itself — the
	// returning box is blank, so the rebuild targets it directly.
	adopterFor          map[int]*instance
	failedHolders       int
	reintegratedHolders int
	reintegratedAt      sim.Time
}

// holderIndex resolves a member id to its group-local holder index.
func (g *ecGroup) holderIndex(id uint32) (int, bool) {
	for i, m := range g.insts {
		if m.id == id {
			return i, true
		}
	}
	return 0, false
}

// memberTable derives the per-rack stripe-table rows — member ids and
// their racks, in placement order. Both the initial registration
// (buildGroups) and the revival replay (replayToR) install exactly
// these rows, so the two paths cannot drift.
func (g *ecGroup) memberTable() (ids []uint32, racks []int) {
	ids = make([]uint32, len(g.insts))
	racks = make([]int, len(g.insts))
	for i, m := range g.insts {
		ids[i] = m.id
		racks[i] = m.server.rackIdx
	}
	return ids, racks
}

// reintegrated reports whether every holder this group lost has been
// rebuilt and re-registered.
func (g *ecGroup) reintegrated() bool {
	return g.failedHolders > 0 && g.reintegratedHolders == g.failedHolders
}

// servesDirect reports whether inst is the re-integrated replacement for
// the holder a read was addressed to: the rebuilt chunk lives here, so
// the switch-rewritten read is served like any healthy read instead of a
// k-fetch reconstruction.
func (g *ecGroup) servesDirect(inst *instance, homeID uint32) bool {
	for i, m := range g.insts {
		if m.id == homeID {
			return g.replacement[i] == inst
		}
	}
	return false
}

// buildGroups creates the erasure-coded volumes: for each group, k+m
// chunk-holder instances on distinct servers (rack-aware placement),
// switch registration (create_vssd plus the stripe table), and the
// workload generator over the striped keyspace.
func (r *Rack) buildGroups() error {
	cfg := r.cfg
	spec := cfg.Redundancy.ec()
	placer := cfg.placer()
	alloc := r.channelAllocator()

	for gidx := 0; gidx < cfg.VSSDPairs; gidx++ {
		g := &ecGroup{
			idx:         gidx,
			spec:        spec,
			striper:     ec.Striper{Spec: spec},
			recon:       ec.NewReconstructor(),
			replacement: make(map[int]*instance),
			crashed:     make(map[int]bool),
			repairing:   make(map[int]bool),
			adopterFor:  make(map[int]*instance),
		}
		width := spec.Width()
		servers := placer.Place(gidx)
		for i, sIdx := range servers {
			srv := r.servers[sIdx]
			id := uint32(100 + gidx*width + i)
			nextID := uint32(100 + gidx*width + (i+1)%width)
			inst, err := r.newInstance(srv, id, nextID, gidx, i == 0, alloc)
			if err != nil {
				return err
			}
			g.insts = append(g.insts, inst)
		}

		// Register every chunk holder with its own rack's ToR
		// (create_vssd, replica = the next member in the same rack so
		// non-stripe paths degrade gracefully without leaking remote IPs
		// into the wrong destination table), then install the stripe
		// group — member ids plus their racks — in every involved ToR's
		// per-rack stripe table for degraded routing and handoff.
		for i, inst := range g.insts {
			next := g.sameRackNeighbor(i)
			r.torOf(inst.server).Process(packet.Packet{
				Op: packet.OpCreateVSSD, VSSD: inst.id, SrcIP: inst.server.ip,
				ReplicaVSSD: next.id, ReplicaIP: next.server.ip,
			})
		}
		ids, racks := g.memberTable()
		seenRack := make(map[int]bool)
		for _, inst := range g.insts {
			if seenRack[inst.server.rackIdx] {
				continue
			}
			seenRack[inst.server.rackIdx] = true
			r.torOf(inst.server).RegisterStripeMembers(ids, racks)
		}

		perChunk := int(float64(g.insts[0].v.FTL.LogicalPages()) * cfg.KeyspaceFrac)
		if perChunk < 1 {
			perChunk = 1
		}
		g.usedStripes = perChunk
		g.gen = r.makeGenerator(gidx, uint64(perChunk)*uint64(spec.K))
		r.groups = append(r.groups, g)
		if r.controller != nil {
			r.controller.registerGroup(g)
		}
	}
	r.eng.Run() // drain registration events
	return nil
}

// sameRackNeighbor returns the next group member sharing member i's rack
// (the "replica" hint registered with its ToR); with no rack-local
// neighbor the member points at itself, a harmless self-entry.
func (g *ecGroup) sameRackNeighbor(i int) *instance {
	self := g.insts[i]
	n := len(g.insts)
	for d := 1; d < n; d++ {
		m := g.insts[(i+d)%n]
		if m.server.rackIdx == self.server.rackIdx {
			return m
		}
	}
	return self
}

// writeHolders returns the instances a logical write must update: the
// data chunk's holder plus the stripe's m parity holders. Members are
// returned as originally placed — the client's volume map never
// changes; the ToR rewrites traffic for failed-over or re-integrated
// members.
func (g *ecGroup) writeHolders(stripe, pos int) []*instance {
	out := []*instance{g.insts[g.striper.DataHolder(stripe, pos)]}
	for _, h := range g.striper.ParityHolders(stripe) {
		out = append(out, g.insts[h])
	}
	return out
}

// adopter picks the surviving member that absorbs a dead holder's
// traffic and rebuilt chunks: the next live, reachable member in group
// order.
func (g *ecGroup) adopter(holder int) *instance {
	n := len(g.insts)
	for i := 1; i < n; i++ {
		m := g.insts[(holder+i)%n]
		if m.server.reachable() {
			return m
		}
	}
	return nil
}

// readSources orders the chunk sources for a degraded reconstruction
// rack-local-first: the coordinator's own chunk (free of network hops),
// then idle survivors in the coordinator's rack, then idle survivors in
// other racks — which cost spine latency and metered cross-rack
// bandwidth — and collecting survivors last. Every member holds exactly
// one chunk of every stripe, so any k of them suffice; the ordering
// means the read spills onto the cross-rack link only when its own rack
// cannot muster k healthy chunks. Holders with a rebuild outstanding
// are never sources: a revived-but-catching-up member is blank.
func (g *ecGroup) readSources(coord *instance, now sim.Time) []*instance {
	out := []*instance{coord}
	var remote, busy []*instance
	for i, m := range g.insts {
		if m == coord || !m.server.reachable() || g.repairing[i] {
			continue
		}
		switch {
		case m.v.InGC(now):
			busy = append(busy, m)
		case m.server.rackIdx != coord.server.rackIdx:
			remote = append(remote, m)
		default:
			out = append(out, m)
		}
	}
	out = append(out, remote...)
	return append(out, busy...)
}

// issueEC sends one request from an erasure-coded volume's generator and
// schedules the next arrival (semi-open loop, like issue for pairs).
func (r *Rack) issueEC(g *ecGroup) {
	now := r.eng.Now()
	if now < r.stopIssuing {
		r.eng.After(g.gen.NextGap(), func(sim.Time) { r.issueEC(g) })
	}
	if r.cfg.MaxClientInflight > 0 && g.inflight >= r.cfg.MaxClientInflight {
		return
	}

	op := g.gen.Next()
	r.seq++
	st := &reqState{
		seq:       r.seq,
		write:     op.Write,
		group:     g,
		issue:     now,
		lastIssue: now,
		userLPN:   op.LPN,
	}
	st.span = r.tracer.StartRequest(st.seq, reqKind(op.Write), now)
	st.span.Annotate(trace.Int("lpn", int64(op.LPN)), trace.Int("volume", int64(g.idx)))
	r.reqs[st.seq] = st
	g.inflight++
	r.watchTimeout(st.seq)
	r.sendEC(st)
}

// sendEC fans one logical request out to its chunk holders. A write
// updates the data chunk and all m parity chunks (the RS small-write
// amplification); a read goes to the data chunk's holder, and the switch
// steers it to a survivor for degraded reconstruction when that holder
// is collecting or failed. Every holder stores its chunk of stripe s at
// local page s, so all sub-operations share one chunk-local LPN.
func (r *Rack) sendEC(st *reqState) {
	g := st.group
	stripe, pos := g.striper.Stripe(int(st.userLPN))
	st.lpn = uint32(stripe)
	if st.write {
		targets := g.writeHolders(stripe, pos)
		st.ecPending = len(targets)
		r.ecSubWrites += int64(len(targets))
		for _, t := range targets {
			r.sendECPacket(st, t, packet.OpWrite)
		}
		return
	}
	home := g.insts[g.striper.DataHolder(stripe, pos)]
	st.homeID = home.id
	st.ecPending = 1
	r.sendECPacket(st, home, packet.OpRead)
}

// sendECPacket emits one sub-operation toward a chunk holder via its
// rack's ToR. Once a ToR failure is detected the client enters through
// another rack of the group instead; that ToR's failover and handoff
// tables route around the dark rack.
func (r *Rack) sendECPacket(st *reqState, inst *instance, op packet.Op) {
	pkt := packet.Packet{
		Op:    op,
		SrcIP: r.clientIP,
		DstIP: inst.server.ip,
		Port:  packet.ReservedPort,
		VSSD:  inst.id,
		LPN:   st.lpn,
		Seq:   st.seq,
	}
	tor := r.torOf(inst.server)
	if r.cluster.torDetected[inst.server.rackIdx] {
		for _, m := range st.group.insts {
			if alt := r.torOf(m.server); !alt.Down() {
				tor = alt
				break
			}
		}
	}
	r.clientSend(pkt, tor)
}

// startDegradedRead reconstructs a chunk at a surviving holder: the
// switch steered this read away from its home, so the coordinator
// fetches any k chunks of the stripe (its own local one plus k-1 remote)
// and decodes. Remote fetches charge two network hops each way and the
// source device's channel time; they bypass the remote scheduler queue,
// modeling the priority repair lane real EC stores give chunk fetches.
func (s *server) startDegradedRead(inst *instance, req *sched.Request) {
	r := s.rack
	now := r.eng.Now()
	st := r.reqs[req.Seq]
	if st.dispatched == 0 {
		st.dispatched = now
	}
	st.redirected = true
	st.degraded = true
	r.degradedReads++
	g := st.group
	stripe := int(st.lpn)
	// A degraded read for a crashed-and-re-integrated holder after the
	// group finished healing should no longer exist: the switch
	// rewrites such reads to the replacement and they are served
	// directly. The only legitimate post-heal steering is the
	// replacement itself collecting or unreachable; everything else
	// (excluding requests issued before the last holder's tables were
	// updated) is a straggler — the lifecycle's health check figrl
	// asserts stays at zero. Holders isolated by a dark ToR are not
	// counted: no repair was queued for them, so there is nothing to
	// have re-integrated.
	if hIdx, ok := g.holderIndex(st.homeID); ok && g.crashed[hIdx] &&
		g.reintegrated() && st.issue > g.reintegratedAt {
		repl := g.replacement[hIdx]
		if repl == nil || (repl.server.reachable() && !repl.v.InGC(now)) {
			r.degradedReadsPostRepair++
		}
	}

	sources := g.readSources(inst, now)
	k := g.spec.K
	if len(sources) < k {
		// More failures than parity: the stripe cannot be reconstructed
		// right now. Serve the local chunk so the request terminates, and
		// surface the loss in the counters (ec.ErrStripeUnrecoverable is
		// the library-level twin of this path).
		r.unrecoverableReads++
		sources = sources[:1]
	} else {
		sources = sources[:k]
	}

	var recSpan *trace.Span
	if st.span != nil {
		recSpan = st.span.Child("reconstruct", now)
		recSpan.Annotate(trace.Int("sources", int64(len(sources))),
			trace.Int("stripe", int64(stripe)))
	}
	remaining := len(sources)
	finish := func() {
		remaining--
		if remaining > 0 {
			return
		}
		r.eng.After(ecDecodeTime, func(tnow sim.Time) {
			recSpan.EndAt(tnow)
			s.completeRead(inst, req)
		})
	}
	chunkBytes := int64(r.cfg.Geometry.PageSize)
	for _, src := range sources {
		src := src
		cross := src.server.rackIdx != inst.server.rackIdx
		readChunk := func(sim.Time) {
			addr, err := src.v.FTL.Read(stripe)
			if err != nil {
				// Chunk outside the preconditioned range still costs one
				// device read on the source's first channel.
				addr = flash.Addr{Channel: src.v.Channels()[0]}
			}
			src.server.dev.TimeRead(addr, func(_, _ sim.Time) {
				if src == inst {
					finish()
					return
				}
				if cross {
					// The chunk ships back over the metered spine link,
					// then the remote-rack edge hops.
					fs, fe := r.cluster.crossFetch(chunkBytes, func(sim.Time) {
						back := r.cluster.spineLatency + r.net.PathLatency(r.eng.Now(), 2)
						r.eng.After(back, func(sim.Time) { finish() })
					})
					if recSpan != nil {
						if tnow := r.eng.Now(); fs > tnow {
							recSpan.Child("spine_wait", tnow).EndAt(fs)
						}
						recSpan.Child("spine_xfer", fs).EndAt(fe)
					}
					return
				}
				back := r.net.PathLatency(r.eng.Now(), 2)
				r.eng.After(back, func(sim.Time) { finish() })
			})
		}
		if src == inst {
			readChunk(now)
		} else {
			out := r.net.PathLatency(now, 2)
			if cross {
				out += r.cluster.spineLatency
			}
			r.eng.After(out, readChunk)
		}
	}
}

// scheduleRepair arms the group's repair pump one monitor period out.
func (r *Rack) scheduleRepair(g *ecGroup) {
	if g.repairArmed {
		return
	}
	g.repairArmed = true
	r.eng.After(r.cfg.GCCheckInterval, func(sim.Time) { r.repairPump(g) })
}

// repairPump admits background chunk reconstruction only in the
// switch-observed GC idle window: the repair coordinator reads the ToR's
// per-member GC bits (the same state soft gc_ops consult) and backs off
// while any member collects, so repair traffic never competes with a
// foreground GC episode for the group's channels. With the SLO pacer
// active (Config.RepairSLO) a second gate follows: the claim is cut to
// the pacer's token-sized stripe limit and waits in the spine token lane
// until the AIMD-controlled admission rate matures enough credit, so
// repair also never holds the foreground tail above the SLO target.
func (r *Rack) repairPump(g *ecGroup) {
	g.repairArmed = false
	if g.repairInFlight || g.recon.Pending() == 0 {
		return
	}
	for _, m := range g.insts {
		if !m.server.reachable() {
			continue
		}
		if r.torOf(m.server).GCStatus(m.id) {
			g.recon.Delayed()
			r.scheduleRepair(g)
			return
		}
	}
	// Tasks are enqueued in batches of at most repairBatchStripes, so
	// the unpaced claim limit is a no-op split; the pacer cuts it down
	// to its token size.
	limit := repairBatchStripes
	if r.pacer != nil {
		limit = r.pacer.batchStripes()
	}
	task, ok := g.recon.NextUpTo(limit)
	if !ok {
		return
	}
	g.repairInFlight = true
	if r.pacer == nil {
		r.runRepairTask(g, task)
		return
	}
	// The token charge is the rebuilt chunk volume; the GC idle window
	// was checked at claim time and the grant re-validates liveness in
	// runRepairTask, like any task that waited in a queue.
	r.pacer.admit(int64(task.Stripes)*int64(r.cfg.Geometry.PageSize), func() {
		r.runRepairTask(g, task)
	})
}

// runRepairTask rebuilds one batch of a lost holder's chunks: k chunk
// reads spread over the survivors — intra-rack survivors first, spilling
// onto the metered cross-rack link only when the adopter's rack cannot
// supply k — the RS decode, and the programs that land the rebuilt
// chunks on the adopting holder. Channel time is charged in bulk per
// batch; cross-rack sources additionally serialize their batch bytes
// through the cluster spine.
func (r *Rack) runRepairTask(g *ecGroup, task ec.RepairTask) {
	now := r.eng.Now()
	// batchBytes is both the pacer's admission charge for this task and
	// the per-source spine cost below; the settle calls reconcile the
	// two once the actual cross-rack fan-out is known (or the task dies
	// without moving anything).
	batchBytes := int64(task.Stripes) * int64(r.cfg.Geometry.PageSize)
	// The adopter is pinned per holder: the first batch picks it and
	// every later batch (and the final re-integration) targets the same
	// member. If it has since become unreachable, the batches already
	// programmed onto it are gone with it, so the holder's repair
	// restarts from scratch onto a fresh adopter — counting the dead
	// adopter's batches toward completion would register a replacement
	// that never received the early chunks.
	adopter := g.adopterFor[task.Holder]
	if adopter == nil || !adopter.server.reachable() {
		g.repairInFlight = false
		if r.pacer != nil {
			r.pacer.settle(batchBytes, 0) // refund: nothing moved
		}
		if next := g.adopter(task.Holder); next != nil {
			r.enqueueHolderRepair(g, task.Holder, next)
		}
		// With no reachable member left there is nothing to rebuild
		// onto; the unrecoverable-read counter exposes the loss.
		return
	}
	sources := []*instance{adopter}
	if adopter == g.insts[task.Holder] {
		// Catch-up repair onto the revived original: the target is blank,
		// so all k chunks come from other survivors.
		sources = sources[:0]
	}
	// Rack-local survivors first, then remote ones (local-first repair).
	// Holders with their own rebuild outstanding are blank, never sources.
	for pass := 0; pass < 2; pass++ {
		for j, m := range g.insts {
			if len(sources) == g.spec.K {
				break
			}
			if m == adopter || m == g.insts[task.Holder] ||
				!m.server.reachable() || g.repairing[j] {
				continue
			}
			local := m.server.rackIdx == adopter.server.rackIdx
			if (pass == 0) != local {
				continue
			}
			sources = append(sources, m)
		}
	}
	if len(sources) < g.spec.K {
		// Unrecoverable with the current survivors: drop the task; the
		// unrecoverable-read counter already exposes the data loss.
		g.repairInFlight = false
		if r.pacer != nil {
			r.pacer.settle(batchBytes, 0) // refund: nothing moved
		}
		r.scheduleRepair(g)
		return
	}

	// One always-kept repair span per batch; the key folds group and
	// holder so every holder's batches share one Perfetto row.
	sp := r.tracer.StartSpan("repair", "repair",
		uint64(g.idx)*64+uint64(task.Holder), now)
	sp.Annotate(trace.Int("group", int64(g.idx)), trace.Int("holder", int64(task.Holder)),
		trace.Int("first_stripe", int64(task.FirstStripe)),
		trace.Int("stripes", int64(task.Stripes)))

	var end sim.Time
	var crossBytes int64
	readDur := sim.Time(task.Stripes) * r.cfg.Device.ReadPage
	for _, src := range sources {
		chs := src.v.Channels()
		_, e := src.server.dev.OccupyChannel(chs[task.FirstStripe%len(chs)], readDur)
		if src.server.rackIdx != adopter.server.rackIdx {
			// The batch crosses the spine: meter it on the shared link.
			crossBytes += batchBytes
			if _, te := r.cluster.crossFetch(batchBytes, nil); te+r.cluster.spineLatency > e {
				e = te + r.cluster.spineLatency
			}
		}
		if e > end {
			end = e
		}
	}
	if r.pacer != nil {
		// Settle the admission charge against the real spine fan-out:
		// extra remote sources become token debt, an all-local batch a
		// refund.
		r.pacer.settle(batchBytes, crossBytes)
	}
	progDur := sim.Time(task.Stripes) * r.cfg.Device.ProgramPage
	achs := adopter.v.Channels()
	if _, e := adopter.server.dev.OccupyChannel(achs[task.FirstStripe%len(achs)], progDur); e > end {
		end = e
	}
	end += sim.Time(task.Stripes)*ecDecodeTime + r.net.PathLatency(now, 2)
	r.eng.At(end, func(now sim.Time) {
		sp.Annotate(trace.Int("cross_bytes", crossBytes))
		sp.Finish(now)
		r.lastRepairDone = now
		if g.recon.Done(task) {
			r.reintegrate(g, task.Holder)
		}
		g.repairInFlight = false
		r.scheduleRepair(g)
	})
}

// reintegrate closes the repair loop for one fully rebuilt holder: the
// member the reconstructor rebuilt onto becomes the holder's
// replacement. The client's volume map updates immediately (new reads
// and writes go to the replacement directly), and after the
// control-plane propagation delay every ToR serving the group updates
// its stripe table: an adopting member is swapped in for the dead one
// (switchsim.ReplaceStripeMember), while a catch-up repair that landed
// the chunks back on the revived original re-registers the holder under
// its own id (switchsim.RestoreStripeMember). Either way the failover
// and remote-dead entries are cleared, so post-repair reads stop paying
// the degraded-reconstruction cost.
func (r *Rack) reintegrate(g *ecGroup, holder int) {
	// Register the member the repair actually rebuilt onto — never
	// recomputed, so the replacement always holds the chunks.
	adopter := g.adopterFor[holder]
	if adopter == nil {
		return // everyone died since the repair was queued
	}
	restored := adopter == g.insts[holder]
	oldID, newID := g.insts[holder].id, adopter.id
	// The control-plane updates below are deferred by propagation delay;
	// if the holder is lost again meanwhile (its repair generation moves
	// on), the stale registrations must not land.
	gen := g.recon.Gen(holder)
	fresh := func() bool { return g.recon.Gen(holder) == gen }
	hop := r.net.HopLatency(r.eng.Now())
	var last sim.Time
	seen := make(map[*switchsim.Switch]bool)
	for _, m := range g.insts {
		tor := r.torOf(m.server)
		if seen[tor] {
			continue
		}
		seen[tor] = true
		delay := hop + r.cluster.crossLatency(adopter.server.rackIdx, tor.RackID())
		if delay > last {
			last = delay
		}
		r.eng.After(delay, func(sim.Time) {
			if tor.Down() || !fresh() {
				return // a dark ToR misses the update; revival replays it
			}
			tor.RegisterDest(newID, adopter.server.ip)
			if restored {
				tor.RestoreStripeMember(oldID)
			} else {
				tor.ReplaceStripeMember(oldID, newID)
			}
		})
	}
	// The holder counts as re-integrated once the slowest ToR has the
	// replacement installed; reads issued after this instant are served
	// directly everywhere.
	r.eng.After(last, func(sim.Time) {
		if !fresh() {
			return
		}
		g.replacement[holder] = adopter
		if g.repairing[holder] {
			g.repairing[holder] = false
			g.reintegratedHolders++
		}
		g.reintegratedAt = r.eng.Now()
		// Every holder stores one chunk of each of the group's
		// usedStripes stripes, so one completed holder re-integrates
		// exactly that many.
		r.reintegratedStripes += int64(g.usedStripes)
		if restored {
			r.restoredHolders++
		}
		mode := "replacement"
		if restored {
			mode = "restored"
		}
		r.tracer.Instant("repair", "reintegrate", r.eng.Now(),
			trace.Int("group", int64(g.idx)), trace.Int("holder", int64(holder)),
			trace.String("mode", mode))
	})
}
