package core

import (
	"testing"

	"rackblox/internal/sim"
)

// lrcConfig is clusterConfig's topology — three racks, six servers each,
// spread placement — running LRC(4,2) instead of RS(4,2): every group
// adds one local parity holder per rack after its six global members.
func lrcConfig() Config {
	cfg := DefaultConfig()
	cfg.System = RackBlox
	cfg.Racks = 3
	cfg.StorageServers = 6
	cfg.VSSDPairs = 3
	cfg.Redundancy = LocalParityCode(4, 2)
	cfg.Placement = PlacementSpread
	cfg.Warmup = 50 * sim.Millisecond
	cfg.Duration = 300 * sim.Millisecond
	return cfg
}

func TestLRCHealthyRun(t *testing.T) {
	res, err := Run(lrcConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Len() < 3000 {
		t.Fatalf("only %d samples", res.Recorder.Len())
	}
	if res.LostRequests != 0 || res.UnrecoverableStripes != 0 {
		t.Fatalf("healthy cluster lost data: lost=%d unrecov=%d",
			res.LostRequests, res.UnrecoverableStripes)
	}
	if res.CrossRackRepairBytes != 0 {
		t.Fatalf("healthy cluster moved %d repair bytes over the spine",
			res.CrossRackRepairBytes)
	}
	// The honest cost of local parity: a logical write updates its data
	// chunk, the m global parities, and the local parity of every rack
	// those touch — strictly more sub-writes per write than RS's 1+m.
	writes := res.Recorder.Writes().Len()
	if writes > 0 && res.ECSubWrites <= int64(writes)*3 {
		t.Fatalf("ECSubWrites=%d for %d writes; LRC must exceed RS's 3 per write",
			res.ECSubWrites, writes)
	}
}

func TestLRCValidation(t *testing.T) {
	cfg := lrcConfig()
	cfg.Racks = 1
	if _, err := Run(cfg); err == nil {
		t.Fatal("LRC over a single rack accepted")
	}
	cfg = lrcConfig()
	cfg.Placement = PlacementCompact
	if _, err := Run(cfg); err == nil {
		t.Fatal("LRC with compact placement accepted")
	}
	cfg = lrcConfig()
	cfg.StorageServers = 2 // 2 globals/rack leave no server for the parity
	if _, err := Run(cfg); err == nil {
		t.Fatal("LRC with no room for the local parity accepted")
	}
}

// TestLRCSingleServerLossRepairsInRack is the headline property: one
// crashed server is repaired entirely inside its rack — the local-XOR
// plan rebuilds the lost chunks from the rack's survivors plus its local
// parity, and no repair byte crosses the spine.
func TestLRCSingleServerLossRepairsInRack(t *testing.T) {
	cfg := lrcConfig()
	cfg.Duration = 500 * sim.Millisecond
	cfg.FailServerIndex = 0
	cfg.FailServerAt = cfg.Warmup + 100*sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers == 0 {
		t.Fatal("failure never detected")
	}
	if res.LostReads != 0 || res.UnrecoverableReads != 0 {
		t.Fatalf("lost=%d unrecoverable=%d reads under a single-server loss",
			res.LostReads, res.UnrecoverableReads)
	}
	if res.RepairedStripes == 0 {
		t.Fatal("reconstructor never repaired a stripe")
	}
	if res.LocalRepairStripes == 0 {
		t.Fatal("no stripes repaired via the rack-local XOR plan")
	}
	if res.CrossRackRepairBytes != 0 {
		t.Fatalf("single-server repair moved %d bytes over the spine; the local plan moves none",
			res.CrossRackRepairBytes)
	}
	t.Logf("local=%d agg=%d localDegraded=%d of degraded=%d",
		res.LocalRepairStripes, res.AggregatedRepairStripes,
		res.LocalDegradedReads, res.DegradedReads)
}

// TestLRCRackFailureAggregatesRepair: with a whole rack down the local
// plan is impossible, so repair falls back to the global decode with
// per-rack aggregation — spine bytes flow, but one batch per remote
// rack rather than one per survivor.
func TestLRCRackFailureAggregatesRepair(t *testing.T) {
	cfg := lrcConfig()
	cfg.FailRackIndex = 1
	cfg.FailServerAt = 120 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnrecoverableStripes != 0 {
		t.Fatalf("spread LRC lost %d stripes to a single-rack failure",
			res.UnrecoverableStripes)
	}
	if res.LostReads != 0 {
		t.Fatalf("%d reads lost; failover + retransmission should recover all", res.LostReads)
	}
	if res.AggregatedRepairStripes == 0 {
		t.Fatal("no stripes repaired via the aggregated plan with the whole rack down")
	}
	if res.CrossRackRepairBytes == 0 {
		t.Fatal("rack-level repair moved no bytes over the spine")
	}
}

// TestLRCDurabilityCreditsLocallyRecoverableRacks exercises the
// durability accounting this family changes: one dead global member per
// rack (three dead servers, only three live globals — fewer than k)
// stays recoverable, because every rack can rebuild its single casualty
// from its survivors plus its local parity.
func TestLRCDurabilityCreditsLocallyRecoverableRacks(t *testing.T) {
	cfg := lrcConfig()
	cfg.Duration = 400 * sim.Millisecond
	// Group 0 places its globals on servers 0 and 1 of each rack; kill
	// server 0 of every rack (global indexes stride StorageServers).
	cfg.FailServerIndex = 0
	cfg.FailServers = []int{6, 12}
	cfg.FailServerAt = cfg.Warmup + 100*sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnrecoverableStripes != 0 {
		t.Fatalf("%d stripes counted unrecoverable; one loss per rack is locally repairable",
			res.UnrecoverableStripes)
	}
	if res.RepairedStripes == 0 {
		t.Fatal("reconstructor never repaired a stripe")
	}
}
