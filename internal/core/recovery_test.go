package core

import (
	"errors"
	"math/rand"
	"testing"

	"rackblox/internal/flash"
	"rackblox/internal/sim"
)

// recoveryConfig is the lifecycle test cluster: three racks of six
// servers, RS(4,2) spread placement, fast devices so reconstruction and
// re-integration complete well inside the horizon.
func recoveryConfig() Config {
	cfg := DefaultConfig()
	cfg.System = RackBlox
	cfg.Racks = 3
	cfg.StorageServers = 6
	cfg.VSSDPairs = 3
	cfg.Redundancy = ErasureCode(4, 2)
	cfg.Placement = PlacementSpread
	cfg.Device = flash.ProfileOptane()
	cfg.Workload.WriteFrac = 0.2
	cfg.KeyspaceFrac = 0.25
	cfg.MaxClientInflight = 256
	cfg.Warmup = 50 * sim.Millisecond
	cfg.Duration = 450 * sim.Millisecond
	return cfg
}

// TestServerCrashReintegrates closes the loop on a server crash: the
// reconstructor rebuilds the lost chunks, the replacement holder is
// re-registered in the switch stripe tables, and no read issued after
// re-integration pays the degraded cost for an unreachable home.
func TestServerCrashReintegrates(t *testing.T) {
	cfg := recoveryConfig()
	cfg.FailServerIndex = 0
	cfg.FailServerAt = 100 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedReads == 0 {
		t.Fatal("no degraded reads before re-integration")
	}
	if res.ReintegratedStripes == 0 {
		t.Fatal("repair completed nothing; no stripes re-integrated")
	}
	if res.RepairPending != 0 {
		t.Fatalf("%d repair tasks still pending at end of run", res.RepairPending)
	}
	if res.DegradedReadsPostRepair != 0 {
		t.Fatalf("%d degraded reads after re-integration; replacement not serving directly",
			res.DegradedReadsPostRepair)
	}
	if res.Switch.Reintegrated == 0 {
		t.Fatal("no packets were rewritten to the replacement holder")
	}
	if res.LostReads != 0 {
		t.Fatalf("%d reads lost across the lifecycle", res.LostReads)
	}
}

// TestToRRevivalClearsSiblingState is the regression for the stale
// remote-dead bug: before revival existed, FailToRIndex left every
// sibling ToR's MarkRemoteDead entries (and the failover rewrites for
// the darkened members) in place forever. The first half captures that
// stale-state behavior; the second asserts revival clears it everywhere.
func TestToRRevivalClearsSiblingState(t *testing.T) {
	darkRack := 1
	base := recoveryConfig()
	base.FailToRIndex = darkRack
	base.FailServerAt = 100 * sim.Millisecond

	// Without revival: sibling ToRs keep the dark rack's members marked
	// remote-dead and failed-over long after the run ends — the stale
	// state this PR's revival path exists to clear.
	r, err := NewRack(base)
	if err != nil {
		t.Fatal(err)
	}
	r.Run()
	var darkMembers []uint32
	for _, g := range r.groups {
		for _, m := range g.insts {
			if m.server.rackIdx == darkRack {
				darkMembers = append(darkMembers, m.id)
			}
		}
	}
	if len(darkMembers) == 0 {
		t.Fatal("no stripe members in the darkened rack")
	}
	stale := 0
	for j := 0; j < base.Racks; j++ {
		if j == darkRack {
			continue
		}
		for _, id := range darkMembers {
			if r.cluster.Tor(j).RemoteDead(id) {
				stale++
			}
		}
	}
	if stale == 0 {
		t.Fatal("expected stale remote-dead marks without revival (regression baseline)")
	}

	// With revival: every sibling mark is cleared and the revived ToR
	// serves its rack directly again.
	cfg := base
	cfg.RecoverToRIndex = darkRack
	cfg.RecoverToRAt = 250 * sim.Millisecond
	r2, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := r2.Run()
	if res.ToRRevivals != 1 {
		t.Fatalf("ToRRevivals = %d, want 1", res.ToRRevivals)
	}
	for j := 0; j < cfg.Racks; j++ {
		if j == darkRack {
			continue
		}
		for _, id := range darkMembers {
			if r2.cluster.Tor(j).RemoteDead(id) {
				t.Fatalf("ToR %d still marks member %d remote-dead after revival", j, id)
			}
		}
	}
	if r2.cluster.TorDown(darkRack) || r2.cluster.Tor(darkRack).Down() {
		t.Fatal("revived ToR still down")
	}
	if res.DegradedReadsPostRepair != 0 {
		t.Fatalf("%d degraded reads for unreachable homes after revival", res.DegradedReadsPostRepair)
	}
}

// TestReviveToRNoFailureIsNoOp: reviving a ToR that never failed (or
// reviving twice) must change nothing and report false.
func TestReviveToRNoFailureIsNoOp(t *testing.T) {
	cfg := recoveryConfig()
	cfg.Duration = 100 * sim.Millisecond
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.cluster.ReviveToR(0) {
		t.Fatal("reviving a healthy ToR reported work done")
	}
	if r.cluster.ReviveToR(-1) || r.cluster.ReviveToR(99) {
		t.Fatal("out-of-range revival reported work done")
	}
	r.cluster.failToR(2)
	if !r.cluster.ReviveToR(2) {
		t.Fatal("first revival of a failed ToR did nothing")
	}
	if r.cluster.ReviveToR(2) {
		t.Fatal("second revival of the same ToR reported work done")
	}
	res := r.Run()
	if res.LostRequests != 0 {
		t.Fatalf("revival no-ops lost %d requests", res.LostRequests)
	}
	if res.ToRRevivals != 1 {
		t.Fatalf("ToRRevivals = %d, want 1", res.ToRRevivals)
	}
}

// TestRecoverToRValidation rejects revival specs that can never fire:
// an out-of-range index, or a revival instant at or before the ToR
// failure it is meant to undo (a silent permanent no-op otherwise).
func TestRecoverToRValidation(t *testing.T) {
	cfg := recoveryConfig()
	cfg.RecoverToRIndex = 99
	if err := cfg.Validate(); err == nil {
		t.Error("out-of-range RecoverToRIndex accepted")
	}
	cfg = recoveryConfig()
	cfg.FailToRIndex = 1
	cfg.FailServerAt = 300 * sim.Millisecond
	cfg.RecoverToRIndex = 1
	cfg.RecoverToRAt = 120 * sim.Millisecond
	err := cfg.Validate()
	if err == nil {
		t.Fatal("revival at or before the ToR failure instant accepted")
	}
	var spec *FailureSpecError
	if !errors.As(err, &spec) {
		t.Errorf("error %v is not a *FailureSpecError", err)
	}
	cfg.RecoverToRAt = 400 * sim.Millisecond
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid revival spec rejected: %v", err)
	}
}

// TestRecoveryLifecycleProperty is the randomized acceptance property:
// for any within-budget failure spec (up to m server crashes, or a
// whole-rack crash under spread placement), a full run ends with every
// lost chunk repaired and re-integrated, no read lost, no stripe
// unrecoverable, and not a single degraded read issued after
// re-integration — i.e. fresh reads of every stripe are served
// directly again. The byte-level twin of this property (repaired chunks
// identical to the original payload) lives in
// internal/ec TestRepairReintegrationByteIdentity.
func TestRecoveryLifecycleProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple end-to-end runs")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		cfg := recoveryConfig()
		cfg.Seed = int64(100 + trial)
		k := 2 + rng.Intn(3) // 2..4
		m := 1 + rng.Intn(2) // 1..2
		cfg.Redundancy = ErasureCode(k, m)
		// Spread placement caps racks at m chunks per stripe, so it needs
		// ceil((k+m)/m) <= Racks fault domains to place a group at all.
		spreadOK := (k+m+m-1)/m <= cfg.Racks
		wholeRack := rng.Intn(2) == 0 && m >= 2 && spreadOK
		if wholeRack {
			// Spread placement keeps every rack at <= m chunks, so one
			// rack crash stays within the redundancy budget.
			cfg.Placement = PlacementSpread
			cfg.FailRackIndex = rng.Intn(cfg.Racks)
		} else {
			if !spreadOK || rng.Intn(2) == 0 {
				cfg.Placement = PlacementCompact
			}
			// Up to m distinct server crashes: group members sit on
			// distinct servers, so no group loses more than m chunks.
			total := cfg.Racks * cfg.StorageServers
			crashes := 1 + rng.Intn(m)
			seen := map[int]bool{}
			for len(seen) < crashes {
				seen[rng.Intn(total)] = true
			}
			first := true
			for idx := range seen {
				if first {
					cfg.FailServerIndex = idx
					first = false
				} else {
					cfg.FailServers = append(cfg.FailServers, idx)
				}
			}
		}
		cfg.FailServerAt = 100 * sim.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d (k=%d m=%d rack=%v): %v", trial, k, m, wholeRack, err)
		}
		if res.UnrecoverableStripes != 0 || res.LostReads != 0 {
			t.Errorf("trial %d (k=%d m=%d rack=%v): lost data: unrecov=%d lostReads=%d",
				trial, k, m, wholeRack, res.UnrecoverableStripes, res.LostReads)
		}
		if res.RepairPending != 0 {
			t.Errorf("trial %d: %d repair tasks never completed", trial, res.RepairPending)
		}
		if res.RepairedStripes > 0 && res.ReintegratedStripes == 0 {
			t.Errorf("trial %d: stripes repaired but nothing re-integrated", trial)
		}
		if res.DegradedReadsPostRepair != 0 {
			t.Errorf("trial %d: %d degraded reads after re-integration", trial,
				res.DegradedReadsPostRepair)
		}
	}
}
