package core

import (
	"rackblox/internal/packet"
	"rackblox/internal/sim"
	"rackblox/internal/stats"
	"rackblox/internal/switchsim"
	"rackblox/internal/trace"
)

// startClients schedules the first request of every pair. Each pair's
// client issues its workload open-loop (Poisson-style gaps from the
// generator) until stopIssuing. In the software-isolated mode the
// collocated tenant of each channel group also runs a background write
// load (Fig. 21 runs YCSB on both group members).
func (r *Rack) startClients() {
	for _, g := range r.groups {
		g := g
		r.eng.AfterNamed(g.gen.NextGap(), "client.issue_ec", func(sim.Time) { r.issueEC(g) })
	}
	for i, pr := range r.pairs {
		pr := pr
		r.eng.AfterNamed(pr.gen.NextGap(), "client.issue", func(sim.Time) { r.issue(pr) })
		if r.cfg.SoftwareIsolated {
			for j, inst := range []*instance{pr.primary, pr.replica} {
				inst := inst
				rng := r.rng.Fork(int64(400 + 2*i + j))
				keys := uint64(float64(inst.peer.FTL.LogicalPages()) * r.cfg.KeyspaceFrac)
				if keys < 64 {
					keys = 64
				}
				z := sim.NewZipf(rng, 0.99, keys)
				r.eng.AfterNamed(rng.Exp(r.cfg.Workload.MeanGap), "client.peer_load", func(sim.Time) {
					r.peerLoad(inst, z, rng)
				})
			}
		}
	}
}

// peerLoad drives the collocated software-isolated tenant with writes that
// consume its free blocks and occupy the shared channels.
func (r *Rack) peerLoad(inst *instance, z *sim.Zipf, rng *sim.RNG) {
	now := r.eng.Now()
	if now < r.stopIssuing {
		r.eng.AfterNamed(rng.Exp(2*r.cfg.Workload.MeanGap), "client.peer_load", func(sim.Time) {
			r.peerLoad(inst, z, rng)
		})
	}
	lpn := int(z.Next())
	addr, err := inst.peer.FTL.Write(lpn)
	if err != nil {
		// The peer is out of space: the channel group rebalances or
		// collects at the next monitor round; drop this write.
		return
	}
	inst.server.dev.TimeProgram(addr, nil)
}

// issue sends one request from the pair's generator and schedules the
// next one. A full client window skips this arrival (semi-open loop).
func (r *Rack) issue(pr *pair) {
	now := r.eng.Now()
	if now < r.stopIssuing {
		r.eng.AfterNamed(pr.gen.NextGap(), "client.issue", func(sim.Time) { r.issue(pr) })
	}
	if r.cfg.MaxClientInflight > 0 && pr.inflight >= r.cfg.MaxClientInflight {
		return
	}

	op := pr.gen.Next()
	r.seq++
	st := &reqState{
		seq:       r.seq,
		write:     op.Write,
		lpn:       op.LPN,
		pair:      pr,
		issue:     now,
		lastIssue: now,
	}
	st.span = r.tracer.StartRequest(st.seq, reqKind(op.Write), now)
	st.span.Annotate(trace.Int("lpn", int64(op.LPN)), trace.Int("volume", int64(pr.idx)))
	r.reqs[st.seq] = st
	pr.inflight++
	r.watchTimeout(st.seq)

	pkt := packet.Packet{
		SrcIP: r.clientIP,
		DstIP: pr.primary.server.ip,
		Port:  packet.ReservedPort,
		VSSD:  pr.primary.id,
		LPN:   op.LPN,
		Seq:   st.seq,
	}
	if op.Write {
		pkt.Op = packet.OpWrite
	} else {
		pkt.Op = packet.OpRead
	}

	// Client -> ToR hop; INT accumulates the measured latency.
	r.clientSend(pkt, r.clientTorForPair(pr))
}

// clientTorForPair picks the ToR a pair's client traffic enters: the
// primary's rack, or — once a ToR failure is detected — the replica's,
// whose failover table rewrites the isolated primary's traffic.
func (r *Rack) clientTorForPair(pr *pair) *switchsim.Switch {
	tor := r.torOf(pr.primary.server)
	if r.cluster.torDetected[pr.primary.server.rackIdx] {
		if rep := r.torOf(pr.replica.server); !rep.Down() {
			return rep
		}
	}
	return tor
}

// reqKind names a request's root span kind.
func reqKind(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// spanFor resolves the root span of an in-flight request, nil when the
// request is unknown or tracing is off.
func (r *Rack) spanFor(seq uint64) *trace.Span {
	if r.tracer == nil || seq == 0 {
		return nil
	}
	if st := r.reqs[seq]; st != nil {
		return st.span
	}
	return nil
}

// clientSend ships a client packet into a ToR: one edge hop, plus the
// spine crossing — metered as foreground traffic on the shared link —
// when the ToR is not in the client's rack (rack 0).
func (r *Rack) clientSend(pkt packet.Packet, tor *switchsim.Switch) {
	hop := r.net.HopLatency(r.eng.Now()) + r.cluster.spine.Latency(0, tor.RackID())
	if tor.RackID() != 0 {
		hop += r.cluster.spine.MeterForegroundTraced(r.cluster.spine.FrameBytes(pkt), r.spanFor(pkt.Seq))
	}
	pkt.AddLatency(hop)
	r.eng.AfterNamed(hop, "net.client_send", func(sim.Time) { tor.Process(pkt) })
}

// forwarderFor builds the delivery path out of one rack's ToR: packets
// to destinations in other racks cross the spine (added latency) and are
// lost if the destination rack's own ToR is down — a dark rack is
// unreachable even when its servers still run.
func (r *Rack) forwarderFor(torRack int) switchsim.Forwarder {
	return func(pkt packet.Packet) { r.deliverFromTor(torRack, pkt) }
}

func (r *Rack) deliverFromTor(torRack int, pkt packet.Packet) {
	// Resolve the destination up front: the spine latency depends on it.
	var dstSrv *server
	dstRack := 0 // the client and the controller home next to rack 0
	for _, s := range r.servers {
		if s.ip == pkt.DstIP {
			dstSrv = s
			dstRack = s.rackIdx
			break
		}
	}
	hop := r.net.HopLatency(r.eng.Now()) + r.cluster.spine.Latency(torRack, dstRack)
	if torRack != dstRack {
		// Leaving the rack: the packet pays for (and occupies) the
		// shared spine alongside repair transfers.
		hop += r.cluster.spine.MeterForegroundTraced(r.cluster.spine.FrameBytes(pkt), r.spanFor(pkt.Seq))
	}
	pkt.AddLatency(hop)
	r.eng.AfterNamed(hop, "net.deliver", func(sim.Time) {
		if pkt.DstIP == r.clientIP {
			r.clientReceive(pkt)
			return
		}
		if dstSrv != nil {
			if dstRack != torRack && r.cluster.torFailed[dstRack] {
				return // cross-rack delivery dead-ends at the failed ToR
			}
			// RackBlox (Software) redirection happens here, at the
			// server boundary rather than in the switch.
			if pkt.Op == packet.OpRead && r.cfg.System == RackBloxSoftware {
				if fwd, ok := r.softwareRedirect(dstSrv, pkt); ok {
					r.swRedirects++
					_ = fwd
					return
				}
			}
			dstSrv.receive(pkt)
			return
		}
		if r.controller != nil && pkt.DstIP == r.controller.ip {
			r.controller.receive(pkt)
		}
	})
}

// softwareRedirect implements RackBlox (Software)'s server-side read
// redirection: if the target vSSD is collecting and the server's cached
// controller hint says the replica is idle, the server forwards the read
// to the replica server itself — an extra 2-hop trip the hardware design
// avoids.
func (r *Rack) softwareRedirect(s *server, pkt packet.Packet) (packet.Packet, bool) {
	inst, ok := s.insts[pkt.VSSD]
	if !ok || !inst.v.InGC(r.eng.Now()) || !inst.replicaIdleHint {
		return pkt, false
	}
	rep := r.insts[inst.replicaID]
	if rep == nil || rep.v.InGC(r.eng.Now()) {
		return pkt, false
	}
	fwd := pkt
	fwd.VSSD = rep.id
	fwd.DstIP = rep.server.ip
	// Server -> ToR -> replica server: two hops of software redirection
	// cost, plus the forwarding server's processing.
	delay := serverProcTime + r.net.PathLatency(r.eng.Now(), 2)
	fwd.AddLatency(delay)
	r.eng.AfterNamed(delay, "client.sw_redirect", func(sim.Time) { rep.server.receive(fwd) })
	return fwd, true
}

// bounceRead returns a read to the coordination layer after its target
// vSSD began collecting. In RackBlox the packet re-enters the ToR switch,
// whose tables now redirect it; in RackBlox (Software) the server forwards
// it to the replica itself using the controller's hint.
func (r *Rack) bounceRead(inst *instance, st *reqState) {
	pkt := packet.Packet{
		Op:    packet.OpRead,
		SrcIP: inst.server.ip,
		DstIP: inst.server.ip, // Algorithm 1 rewrites this on redirect
		Port:  packet.ReservedPort,
		VSSD:  inst.id,
		LPN:   st.lpn,
		Seq:   st.seq,
	}
	if r.cfg.System == RackBloxSoftware {
		rep := r.insts[inst.replicaID]
		if rep != nil && inst.replicaIdleHint && !rep.v.InGC(r.eng.Now()) {
			fwd := pkt
			fwd.VSSD = rep.id
			fwd.DstIP = rep.server.ip
			delay := serverProcTime + r.net.PathLatency(r.eng.Now(), 2)
			r.eng.AfterNamed(delay, "client.sw_redirect", func(sim.Time) { rep.server.receive(fwd) })
			r.swRedirects++
			return
		}
		// No usable replica: serve in place after all.
		r.eng.AfterNamed(serverProcTime, "client.bounce", func(sim.Time) { inst.server.receive(pkt) })
		return
	}
	hop := r.net.HopLatency(r.eng.Now())
	pkt.AddLatency(hop)
	tor := r.torOf(inst.server)
	r.eng.AfterNamed(hop, "client.bounce", func(sim.Time) { tor.Process(pkt) })
}

// respond sends the completion back to the client through the switch.
func (r *Rack) respond(st *reqState, inst *instance) {
	pkt := packet.Packet{
		Op:    packet.OpResponse,
		SrcIP: inst.server.ip,
		DstIP: r.clientIP,
		Port:  packet.ReservedPort,
		VSSD:  inst.id,
		LPN:   st.lpn,
		Seq:   st.seq,
	}
	hop := r.net.HopLatency(r.eng.Now())
	pkt.AddLatency(hop)
	tor := r.torOf(inst.server)
	r.eng.AfterNamed(hop, "net.respond", func(sim.Time) { tor.Process(pkt) })
}

// clientReceive records the completed request. Erasure-coded writes fan
// out to 1+m chunk holders; the logical request completes when the last
// sub-operation's response arrives, so its latency is the fan-out max.
func (r *Rack) clientReceive(pkt packet.Packet) {
	st, ok := r.reqs[pkt.Seq]
	if !ok {
		return
	}
	if st.group != nil {
		st.ecPending--
		if st.ecPending > 0 {
			return
		}
	}
	delete(r.reqs, pkt.Seq)
	st.decInflight()
	now := r.eng.Now()
	if r.pacer != nil && !st.write {
		// The controller's latency sensor sees every completed foreground
		// read, warmup included: it is a live feedback loop, not a
		// measurement artifact.
		r.pacer.observeRead(now - st.issue)
	}
	if st.write {
		r.completedWrites++
	} else {
		r.completedReads++
		if r.metricsWin != nil {
			r.metricsWin.Observe(now - st.issue)
		}
	}
	if st.issue < r.cfg.Warmup {
		return // warmup sample
	}
	r.finishSpan(st, pkt.VSSD, now)
	queue := st.dispatched - st.arrival
	device := st.deviceDone - st.dispatched
	if st.dispatched == 0 || queue < 0 { // cache path or bounced read
		queue, device = 0, st.deviceDone-st.arrival
	}
	r.rec.Add(stats.Sample{
		Total:      now - st.issue,
		NetIn:      st.netIn,
		Queue:      queue,
		Device:     device,
		NetOut:     now - st.deviceDone,
		Write:      st.write,
		Redirected: st.redirected,
	}, now)
}

// finishSpan closes a request's root span with its attribution
// partition. The phases tile [issue, completion] exactly — retransmit
// (earlier timed-out attempts), net_in (client to serving server),
// queue (scheduler wait), device service split into gc_block where a GC
// burst on the serving vSSD overlapped the service window (and renamed
// degraded_read for k-chunk reconstructions), then net_out — so the
// phase durations sum to the end-to-end latency, the invariant tail
// attribution relies on. servedBy is the vSSD that answered.
func (r *Rack) finishSpan(st *reqState, servedBy uint32, now sim.Time) {
	sp := st.span
	if sp == nil {
		return
	}
	sp.Phase("retransmit", st.lastIssue-st.issue)
	sp.Phase("net_in", st.arrival-st.lastIssue)
	queue := st.dispatched - st.arrival
	devStart := st.dispatched
	if st.dispatched == 0 || queue < 0 { // cache path or bounced read
		queue, devStart = 0, st.arrival
	}
	sp.Phase("queue", queue)
	device := st.deviceDone - devStart
	gcBlock := r.tracer.GCOverlap(servedBy, devStart, st.deviceDone)
	if gcBlock > device {
		gcBlock = device
	}
	devName := "device"
	if st.degraded {
		devName = "degraded_read"
	}
	sp.Phase(devName, device-gcBlock)
	sp.Phase("gc_block", gcBlock)
	sp.Phase("net_out", now-st.deviceDone)
	if st.redirected {
		sp.Annotate(trace.String("redirected", "true"))
	}
	sp.Finish(now)
}
