package core

import (
	"testing"

	"rackblox/internal/flash"
	"rackblox/internal/netsim"
	"rackblox/internal/sched"
	"rackblox/internal/sim"
)

// shortConfig returns a config sized for unit-test speed: still long
// enough that GC triggers and every code path runs.
func shortConfig(sys System) Config {
	cfg := DefaultConfig()
	cfg.System = sys
	cfg.Warmup = 50 * sim.Millisecond
	cfg.Duration = 400 * sim.Millisecond
	return cfg
}

func TestSystemStrings(t *testing.T) {
	want := map[System]string{
		VDC:              "VDC",
		RackBloxSoftware: "RackBlox (Software)",
		RackBloxCoordIO:  "RackBlox-Coord I/O",
		RackBlox:         "RackBlox",
	}
	for sys, s := range want {
		if sys.String() != s {
			t.Errorf("%d.String() = %q, want %q", sys, sys.String(), s)
		}
	}
	if System(99).String() != "System(99)" {
		t.Error("unknown system string")
	}
	if len(Systems()) != 4 {
		t.Error("Systems() must list all four")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"one server", func(c *Config) { c.StorageServers = 1 }},
		{"zero pairs", func(c *Config) { c.VSSDPairs = 0 }},
		{"bad geometry", func(c *Config) { c.Geometry.Channels = 0 }},
		{"too many pairs", func(c *Config) { c.VSSDPairs = 64 }},
		{"threshold order", func(c *Config) { c.GCThreshold = 0.5 }},
		{"restore delta", func(c *Config) { c.RestoreDelta = 0 }},
		{"utilization", func(c *Config) { c.Utilization = 1.5 }},
		{"keyspace", func(c *Config) { c.KeyspaceFrac = 0 }},
		{"mean gap", func(c *Config) { c.Workload.MeanGap = 0 }},
		{"duration", func(c *Config) { c.Duration = 0 }},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestDefaultQdiscPerSystem(t *testing.T) {
	for sys, want := range map[System]string{
		VDC: "TB", RackBloxSoftware: "TB", RackBloxCoordIO: "None", RackBlox: "None",
	} {
		cfg := DefaultConfig()
		cfg.System = sys
		if got := cfg.defaultQdisc(); got != want {
			t.Errorf("%v default qdisc = %q, want %q", sys, got, want)
		}
	}
	cfg := DefaultConfig()
	cfg.Qdisc = "FQ"
	if cfg.defaultQdisc() != "FQ" {
		t.Error("explicit qdisc overridden")
	}
}

func TestCoordinatedDerivation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.System = VDC
	if cfg.coordinated() {
		t.Error("VDC coordinated by default")
	}
	cfg.CoordinatedOverride = 1
	if !cfg.coordinated() {
		t.Error("override on ignored")
	}
	cfg.System = RackBlox
	cfg.CoordinatedOverride = -1
	if cfg.coordinated() {
		t.Error("override off ignored")
	}
}

func TestPreconditionLeavesTargetFreeRatio(t *testing.T) {
	r, err := NewRack(shortConfig(RackBlox))
	if err != nil {
		t.Fatal(err)
	}
	want := r.cfg.SoftThreshold + 0.06
	for _, pr := range r.pairs {
		for _, inst := range []*instance{pr.primary, pr.replica} {
			got := inst.v.FTL.FreeRatio()
			if got > want+0.06 || got < r.cfg.GCThreshold {
				t.Fatalf("vSSD %d preconditioned to %f, want ~%f", inst.id, got, want)
			}
		}
	}
	if r.Keyspace() <= 0 {
		t.Fatal("keyspace not positive")
	}
}

func TestEndToEndSystemOrdering(t *testing.T) {
	// The paper's headline result: RackBlox's coordinated GC cuts the
	// P99.9 read latency well below VDC's; VDC never redirects.
	results := map[System]*Result{}
	for _, sys := range Systems() {
		cfg := shortConfig(sys)
		// Long enough for the uncoordinated systems' hold-level write
		// cache to warm and their free ratio to reach the hard threshold.
		cfg.Duration = 800 * sim.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		results[sys] = res
		if res.Recorder.Len() < 2000 {
			t.Fatalf("%v: only %d samples", sys, res.Recorder.Len())
		}
	}
	vdc := results[VDC].Recorder.Reads().P999()
	rb := results[RackBlox].Recorder.Reads().P999()
	if rb >= vdc {
		t.Errorf("RackBlox read P99.9 %d >= VDC %d", rb, vdc)
	}
	if results[VDC].Switch.Redirected != 0 {
		t.Error("VDC redirected reads")
	}
	if results[RackBlox].Switch.Redirected == 0 {
		t.Error("RackBlox never redirected")
	}
	if results[RackBloxSoftware].SWRedirects == 0 {
		t.Error("RackBlox (Software) never redirected in software")
	}
	if results[RackBloxSoftware].Switch.Redirected != 0 {
		t.Error("RackBlox (Software) used switch redirection")
	}
	for _, sys := range Systems() {
		if results[sys].GCEvents == 0 {
			t.Errorf("%v: no GC events in a write-heavy run", sys)
		}
	}
	// Coordinated systems delay GC; uncoordinated ones cannot.
	if results[RackBlox].GCDelayed == 0 {
		t.Error("RackBlox never delayed GC")
	}
	if results[VDC].GCDelayed != 0 {
		t.Error("VDC delayed GC without coordination")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(shortConfig(RackBlox))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shortConfig(RackBlox))
	if err != nil {
		t.Fatal(err)
	}
	if a.Recorder.Len() != b.Recorder.Len() {
		t.Fatalf("sample counts differ: %d vs %d", a.Recorder.Len(), b.Recorder.Len())
	}
	if a.Recorder.Reads().P999() != b.Recorder.Reads().P999() {
		t.Fatal("P99.9 differs between identical runs")
	}
	if a.GCEvents != b.GCEvents || a.Switch.Redirected != b.Switch.Redirected {
		t.Fatal("event counters differ between identical runs")
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := shortConfig(RackBlox)
	a, _ := Run(cfg)
	cfg.Seed = 2
	b, _ := Run(cfg)
	if a.Recorder.Reads().P50() == b.Recorder.Reads().P50() &&
		a.Recorder.Len() == b.Recorder.Len() &&
		a.GCEvents == b.GCEvents {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestWarmupFiltersEarlySamples(t *testing.T) {
	cfg := shortConfig(RackBlox)
	with, _ := Run(cfg)
	cfg.Warmup = 0
	cfg.Duration = 450 * sim.Millisecond
	without, _ := Run(cfg)
	if without.Recorder.Len() <= with.Recorder.Len() {
		t.Fatalf("warmup filtering did not reduce samples: %d vs %d",
			with.Recorder.Len(), without.Recorder.Len())
	}
}

func TestGCReplyLossForcesCollection(t *testing.T) {
	cfg := shortConfig(RackBlox)
	cfg.GCReplyDropRate = 1.0 // every gc_op reply lost
	// With soft GC unreachable, the free ratio must decay all the way to
	// the hard threshold before the forced path triggers; give it time.
	cfg.Duration = 1600 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GCOpRetries == 0 {
		t.Error("no gc_op retransmissions under total reply loss")
	}
	if res.ForcedGCs == 0 {
		t.Error("regular GC not forced after retries exhausted")
	}
	// The system keeps serving I/O despite the control-plane failure.
	if res.Recorder.Len() < 2000 {
		t.Errorf("only %d samples under reply loss", res.Recorder.Len())
	}
}

func TestSoftwareIsolatedMode(t *testing.T) {
	cfg := shortConfig(RackBlox)
	cfg.SoftwareIsolated = true
	cfg.VSSDPairs = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Len() < 1000 {
		t.Fatalf("only %d samples in software-isolated mode", res.Recorder.Len())
	}
	if res.GCEvents == 0 {
		t.Error("no channel-group GC events")
	}
}

func TestSchedulerPoliciesEndToEnd(t *testing.T) {
	for _, pol := range []sched.Policy{sched.FIFO, sched.Deadline, sched.Kyber} {
		cfg := shortConfig(RackBlox)
		cfg.SchedPolicy = pol
		cfg.Duration = 200 * sim.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.Recorder.Len() < 1000 {
			t.Errorf("%v: only %d samples", pol, res.Recorder.Len())
		}
	}
}

func TestQdiscVariantsEndToEnd(t *testing.T) {
	for _, q := range []string{"TB", "FQ", "Priority"} {
		cfg := shortConfig(RackBlox)
		cfg.Qdisc = q
		cfg.Duration = 200 * sim.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if res.Recorder.Len() < 1000 {
			t.Errorf("%s: only %d samples", q, res.Recorder.Len())
		}
	}
}

func TestDeviceAndNetworkProfiles(t *testing.T) {
	for _, dev := range []flash.Profile{flash.ProfileOptane(), flash.ProfileIntelDC()} {
		for _, net := range []netsim.Profile{netsim.ProfileFast(), netsim.ProfileSlow()} {
			cfg := shortConfig(RackBlox)
			cfg.Device = dev
			cfg.Net = net
			cfg.Duration = 150 * sim.Millisecond
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", dev.Name, net.Name, err)
			}
			if res.Recorder.Len() < 500 {
				t.Errorf("%s/%s: only %d samples", dev.Name, net.Name, res.Recorder.Len())
			}
		}
	}
}

func TestBenchBaseWorkloadsEndToEnd(t *testing.T) {
	for _, name := range []string{"TPC-H", "Twitter"} {
		cfg := shortConfig(RackBlox)
		cfg.Workload = WorkloadSpec{Name: name, MeanGap: 200 * sim.Microsecond}
		cfg.Duration = 200 * sim.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		reads := res.Recorder.Reads().Len()
		writes := res.Recorder.Writes().Len()
		if name == "TPC-H" && writes > reads/10 {
			t.Errorf("TPC-H writes %d vs reads %d; expected read-dominated", writes, reads)
		}
		if name == "Twitter" && reads > writes/10 {
			t.Errorf("Twitter reads %d vs writes %d; expected write-dominated", reads, writes)
		}
	}
}

func TestNetworkLatencyInSamples(t *testing.T) {
	res, err := Run(shortConfig(RackBlox))
	if err != nil {
		t.Fatal(err)
	}
	// Every sample's total must cover its parts.
	bad := 0
	for _, s := range rawSamples(res) {
		if s.Total < s.NetIn+s.Queue+s.Device {
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%d samples with inconsistent breakdown", bad)
	}
}

func TestThroughputReported(t *testing.T) {
	res, err := Run(shortConfig(RackBlox))
	if err != nil {
		t.Fatal(err)
	}
	iops := res.Recorder.Throughput()
	// 4 pairs at ~5k req/s each, minus window losses.
	if iops < 5_000 || iops > 40_000 {
		t.Fatalf("throughput = %f IOPS, outside plausible band", iops)
	}
}

func TestUnknownWorkloadPanicsAtBuild(t *testing.T) {
	cfg := shortConfig(RackBlox)
	cfg.Workload.Name = "bogus"
	defer func() {
		if recover() == nil {
			t.Error("unknown workload accepted")
		}
	}()
	NewRack(cfg)
}

func TestBounceRescuesSlippedReads(t *testing.T) {
	// Under a GC-heavy write mix, reads that race the switch's GC-bit
	// update are bounced back to the ToR instead of stalling behind the
	// collector.
	cfg := DefaultConfig()
	cfg.System = RackBlox
	cfg.Workload.WriteFrac = 0.8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bounces == 0 {
		t.Fatal("no reads bounced despite heavy GC activity")
	}
	// Bounced reads re-enter the switch; Forwarded counts them again.
	if res.Switch.Forwarded == 0 {
		t.Fatal("switch forwarded nothing")
	}
}

func TestVDCNeverBounces(t *testing.T) {
	cfg := shortConfig(VDC)
	cfg.Workload.WriteFrac = 0.8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bounces != 0 {
		t.Fatalf("VDC bounced %d reads without coordination", res.Bounces)
	}
}

func TestCFQEndToEnd(t *testing.T) {
	cfg := shortConfig(RackBlox)
	cfg.SchedPolicy = sched.CFQ
	cfg.Duration = 200 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Len() < 1000 {
		t.Fatalf("only %d samples under CFQ", res.Recorder.Len())
	}
}
