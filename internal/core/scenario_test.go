package core

import (
	"encoding/json"
	"errors"
	"testing"

	"rackblox/internal/sim"
	"rackblox/internal/stats"
)

// fingerprint serializes everything observable about a run except the
// configuration that produced it: every raw sample plus every counter.
// Two configs are behaviorally identical iff their fingerprints match
// byte for byte.
func fingerprint(t *testing.T, res *Result) string {
	t.Helper()
	flat := *res
	flat.Config = Config{}
	flat.Recorder = nil
	b, err := json.Marshal(struct {
		Result  Result
		Samples []stats.Sample
	}{flat, stats.RawSamples(res.Recorder)})
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// TestLegacyFieldsCompileToEquivalentScenario is the API-redesign
// regression: every deprecated flat-field failure form must produce a
// Result byte-identical to the explicit Config.Scenario timeline it
// compiles down to, because both run through the same validator and
// event driver.
func TestLegacyFieldsCompileToEquivalentScenario(t *testing.T) {
	type form struct {
		name     string
		legacy   func(*Config)
		scenario func(*Config)
	}
	at := 100 * sim.Millisecond
	reviveAt := 250 * sim.Millisecond
	forms := []form{
		{"single server crash",
			func(c *Config) {
				c.FailServerIndex = 0
				c.FailServerAt = at
			},
			func(c *Config) {
				c.Scenario = []Event{FailServer(0, at)}
			}},
		{"multi server crash",
			func(c *Config) {
				c.FailServerIndex = 0
				c.FailServers = []int{1}
				c.FailServerAt = at
			},
			func(c *Config) {
				c.Scenario = []Event{FailServer(0, at), FailServer(1, at)}
			}},
		{"whole rack crash",
			func(c *Config) {
				c.FailRackIndex = 1
				c.FailServerAt = at
			},
			func(c *Config) {
				c.Scenario = []Event{FailRack(1, at)}
			}},
		{"tor outage",
			func(c *Config) {
				c.FailToRIndex = 1
				c.FailServerAt = at
			},
			func(c *Config) {
				c.Scenario = []Event{FailToR(1, at)}
			}},
		{"tor outage and revival",
			func(c *Config) {
				c.FailToRIndex = 1
				c.FailServerAt = at
				c.RecoverToRIndex = 1
				c.RecoverToRAt = reviveAt
			},
			func(c *Config) {
				c.Scenario = []Event{FailToR(1, at), ReviveToR(1, reviveAt)}
			}},
	}
	for _, f := range forms {
		base := recoveryConfig()
		base.Duration = 300 * sim.Millisecond

		legacy := base
		f.legacy(&legacy)
		lres, err := Run(legacy)
		if err != nil {
			t.Fatalf("%s: legacy run: %v", f.name, err)
		}
		timeline := base
		f.scenario(&timeline)
		sres, err := Run(timeline)
		if err != nil {
			t.Fatalf("%s: scenario run: %v", f.name, err)
		}
		if lf, sf := fingerprint(t, lres), fingerprint(t, sres); lf != sf {
			t.Errorf("%s: legacy and scenario runs diverged\nlegacy:   %.220s\nscenario: %.220s",
				f.name, lf, sf)
		}
	}
}

// TestScenarioValidation walks the timeline validator's rejection rules:
// every rejection is a typed *FailureSpecError naming the Scenario
// field, and the rules catch what the flat fields never could express —
// double crashes, revive-before-fail, and same-instant fault-domain
// double-booking.
func TestScenarioValidation(t *testing.T) {
	at := 100 * sim.Millisecond
	later := 200 * sim.Millisecond
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string // "" = must be accepted
	}{
		{"valid fail heal fail cycle", func(c *Config) {
			c.Scenario = []Event{
				FailServer(0, at), ReviveServer(0, later), FailServer(0, 300*sim.Millisecond),
			}
		}, ""},
		{"valid staggered rack then tor", func(c *Config) {
			c.Scenario = []Event{FailRack(0, at), FailToR(1, later)}
		}, ""},
		{"valid revive one server of a crashed rack", func(c *Config) {
			c.Scenario = []Event{FailRack(0, at), ReviveServer(2, later)}
		}, ""},
		{"mixed with legacy fields", func(c *Config) {
			c.FailServerIndex = 0
			c.Scenario = []Event{FailServer(1, at)}
		}, "Scenario"},
		{"mixed with legacy FailServers list", func(c *Config) {
			c.FailServers = []int{1}
			c.Scenario = []Event{FailServer(0, at)}
		}, "Scenario"},
		{"mixed with legacy recover fields", func(c *Config) {
			c.FailToRIndex = 1
			c.RecoverToRIndex = 1
			c.RecoverToRAt = later
			c.Scenario = []Event{FailServer(0, at)}
		}, "Scenario"},
		{"mixed with bare legacy FailServerAt", func(c *Config) {
			// The flat instant alone injects nothing, but with a Scenario
			// it signals a half-migrated config: silently preferring the
			// timeline would drop the author's intent (the old precedence
			// bug), so the mix is rejected like any other combination.
			c.FailServerAt = at
			c.Scenario = []Event{FailServer(0, later)}
		}, "Scenario"},
		{"mixed with bare legacy RecoverToRAt", func(c *Config) {
			c.RecoverToRAt = later
			c.Scenario = []Event{FailToR(1, at), ReviveToR(1, later)}
		}, "Scenario"},
		{"bare legacy FailServerAt without scenario still accepted", func(c *Config) {
			c.FailServerAt = at // documented no-op: no index selects a target
		}, ""},
		{"fail-server out of range", func(c *Config) {
			c.Scenario = []Event{FailServer(99, at)}
		}, "Scenario"},
		{"negative event time", func(c *Config) {
			c.Scenario = []Event{FailServer(0, -1)}
		}, "Scenario"},
		{"double crash without revive", func(c *Config) {
			c.Scenario = []Event{FailServer(0, at), FailServer(0, later)}
		}, "Scenario"},
		{"rack crash covers downed server", func(c *Config) {
			c.Scenario = []Event{FailServer(0, at), FailRack(0, later)}
		}, "Scenario"},
		{"revive before fail", func(c *Config) {
			c.Scenario = []Event{ReviveServer(0, at)}
		}, "Scenario"},
		{"revive at the crash instant", func(c *Config) {
			c.Scenario = []Event{FailServer(0, at), ReviveServer(0, at)}
		}, "Scenario"},
		{"revive-tor of a healthy tor", func(c *Config) {
			c.Scenario = []Event{ReviveToR(0, at)}
		}, "Scenario"},
		{"tor fails twice while dark", func(c *Config) {
			c.Scenario = []Event{FailToR(0, at), FailToR(0, later)}
		}, "Scenario"},
		{"same-instant rack and tor double-booking", func(c *Config) {
			c.Scenario = []Event{FailRack(1, at), FailToR(1, at)}
		}, "Scenario"},
		{"same-instant tor and rack double-booking", func(c *Config) {
			c.Scenario = []Event{FailToR(1, at), FailRack(1, at)}
		}, "Scenario"},
		{"unknown event kind", func(c *Config) {
			c.Scenario = []Event{{Kind: EventKind(42), Index: 0, At: at}}
		}, "Scenario"},
		{"legacy tor overlaps legacy rack", func(c *Config) {
			c.FailRackIndex = 1
			c.FailToRIndex = 1
			c.FailServerAt = at
		}, "FailToRIndex"},
		{"valid repair SLO on a multi-rack cluster", func(c *Config) {
			c.RepairSLO = RepairSLO{TargetP99: 5 * sim.Millisecond}
		}, ""},
		{"repair SLO on a single rack", func(c *Config) {
			c.Racks = 1
			c.StorageServers = 6
			c.Placement = PlacementCompact
			c.RepairSLO = RepairSLO{TargetP99: 5 * sim.Millisecond}
		}, "RepairSLO"},
		{"repair SLO with inverted rate bounds", func(c *Config) {
			c.RepairSLO = RepairSLO{TargetP99: 5 * sim.Millisecond,
				MinRateMBps: 50, MaxRateMBps: 10}
		}, "RepairSLO"},
		{"repair SLO with negative rate bound", func(c *Config) {
			c.RepairSLO = RepairSLO{TargetP99: 5 * sim.Millisecond, MinRateMBps: -1}
		}, "RepairSLO"},
		{"repair SLO with negative interval", func(c *Config) {
			c.RepairSLO = RepairSLO{TargetP99: 5 * sim.Millisecond, Interval: -1}
		}, "RepairSLO"},
		{"repair SLO rate floor above the spine capacity", func(c *Config) {
			// CrossRackMBps is 200 here: a floor the link cannot carry
			// could never back off below capacity, permanently violating
			// the SLO it is meant to defend.
			c.RepairSLO = RepairSLO{TargetP99: 5 * sim.Millisecond, MinRateMBps: 300}
		}, "RepairSLO"},
	}
	for _, tc := range cases {
		cfg := recoveryConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if tc.field == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var spec *FailureSpecError
		if !errors.As(err, &spec) {
			t.Errorf("%s: err = %v, want *FailureSpecError", tc.name, err)
			continue
		}
		if spec.Field != tc.field {
			t.Errorf("%s: field = %q, want %q", tc.name, spec.Field, tc.field)
		}
	}
}

// TestServerRevivalCatchUpRestores is the new capability the flat
// fields could not express: a crashed server returns empty mid-run, its
// lost chunk holder catches up via the metered reconstructor, and the
// holder is re-registered under its own id — after which no read pays
// the degraded cost.
func TestServerRevivalCatchUpRestores(t *testing.T) {
	cfg := recoveryConfig()
	cfg.Scenario = []Event{
		FailServer(0, 100*sim.Millisecond),
		ReviveServer(0, 250*sim.Millisecond),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerRevivals != 1 {
		t.Fatalf("ServerRevivals = %d, want 1", res.ServerRevivals)
	}
	if res.DegradedReads == 0 {
		t.Fatal("no degraded reads while the holder was down")
	}
	if res.RestoredHolders == 0 {
		t.Fatal("catch-up repair never restored the holder onto the revived server")
	}
	if res.RepairPending != 0 {
		t.Fatalf("%d repair tasks still pending after catch-up", res.RepairPending)
	}
	if res.DegradedReadsPostRepair != 0 {
		t.Fatalf("%d degraded reads after the restore; revived holder not serving directly",
			res.DegradedReadsPostRepair)
	}
	if res.LostReads != 0 {
		t.Fatalf("%d reads lost across the revival lifecycle", res.LostReads)
	}
}

// TestRepeatedFailHealCycle exercises what motivates the timeline API:
// the same server fails, heals by catch-up after revival, and fails
// again — the second loss healing through adopter re-integration — and
// the cluster still ends fully healed with zero post-repair stragglers.
func TestRepeatedFailHealCycle(t *testing.T) {
	cfg := recoveryConfig()
	cfg.Duration = 850 * sim.Millisecond
	cfg.Scenario = []Event{
		FailServer(0, 100*sim.Millisecond),
		ReviveServer(0, 300*sim.Millisecond),
		FailServer(0, 600*sim.Millisecond),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerRevivals != 1 {
		t.Fatalf("ServerRevivals = %d, want 1", res.ServerRevivals)
	}
	if res.RestoredHolders == 0 {
		t.Fatal("first heal never restored the revived holder")
	}
	if res.ReintegratedStripes == 0 {
		t.Fatal("no stripes re-integrated across the cycles")
	}
	if res.RepairPending != 0 {
		t.Fatalf("%d repair tasks still pending after the second heal", res.RepairPending)
	}
	if res.DegradedReadsPostRepair != 0 {
		t.Fatalf("%d degraded reads after healing", res.DegradedReadsPostRepair)
	}
	if res.UnrecoverableStripes != 0 || res.LostReads != 0 {
		t.Fatalf("data lost across cycles: unrecov=%d lostReads=%d",
			res.UnrecoverableStripes, res.LostReads)
	}
}

// TestReviveBeforeDetectionIsTransientBlip: a server that returns
// before the heartbeat detector fires was a blip, not an outage — no
// failover may be installed and no repair queued, or reads would be
// steered away from a healthy member forever.
func TestReviveBeforeDetectionIsTransientBlip(t *testing.T) {
	cfg := recoveryConfig()
	cfg.Scenario = []Event{
		FailServer(0, 100*sim.Millisecond),
		ReviveServer(0, 110*sim.Millisecond), // detection would fire at 130ms
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerRevivals != 1 {
		t.Fatalf("ServerRevivals = %d, want 1", res.ServerRevivals)
	}
	if res.Failovers != 0 {
		t.Fatalf("%d failovers installed for a transient blip", res.Failovers)
	}
	if res.ReintegratedStripes != 0 || res.RepairPending != 0 {
		t.Fatalf("repair ran for a transient blip: reintegrated=%d pending=%d",
			res.ReintegratedStripes, res.RepairPending)
	}
}

// TestAdopterCrashMidRepairRestartsRebuild: when the member adopting a
// lost holder's chunks dies itself, the batches already rebuilt onto it
// are gone — the repair must restart from scratch onto a fresh adopter
// (a new reconstructor generation) instead of counting the dead
// adopter's batches toward a replacement that never got them.
func TestAdopterCrashMidRepairRestartsRebuild(t *testing.T) {
	base := recoveryConfig()
	// Probe run (no failures) to learn, deterministically, which member
	// would adopt server 0's holder — adopter choice depends only on
	// group order and reachability, both identical in the real run.
	probe, err := NewRack(base)
	if err != nil {
		t.Fatal(err)
	}
	var holder, adopterSrv int
	var groupIdx = -1
	for gi, g := range probe.groups {
		for i, inst := range g.insts {
			if inst.server.index == 0 {
				groupIdx, holder = gi, i
				adopterSrv = g.adopter(i).server.index
			}
		}
	}
	if groupIdx < 0 {
		t.Fatal("no stripe holder on server 0; test set up wrong")
	}

	cfg := base
	cfg.Duration = 600 * sim.Millisecond
	cfg.Scenario = []Event{
		FailServer(0, 100*sim.Millisecond),
		FailServer(adopterSrv, 160*sim.Millisecond),
	}
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	g := r.groups[groupIdx]
	if gen := g.recon.Gen(holder); gen < 2 {
		t.Fatalf("holder %d repair generation = %d, want >= 2 (restart after adopter death)", holder, gen)
	}
	if repl := g.replacement[holder]; repl == nil || !repl.server.reachable() {
		t.Fatalf("holder %d replacement missing or unreachable after restart", holder)
	}
	if res.RepairPending != 0 {
		t.Fatalf("%d repair tasks never completed", res.RepairPending)
	}
	if res.DegradedReadsPostRepair != 0 {
		t.Fatalf("%d degraded reads after the restarted repair healed", res.DegradedReadsPostRepair)
	}
	if res.UnrecoverableStripes != 0 {
		t.Fatalf("%d stripes unrecoverable; two crashes are within the m=2 budget", res.UnrecoverableStripes)
	}
}

// TestRapidFailReviveFailHonorsDetectionWindow: a detection timer armed
// by one crash must not fire for a later one. Here the server crashes,
// revives, crashes again, and revives again — all before either crash's
// three-missed-heartbeats detector could legitimately fire — so both
// outages are transient blips and no failover may be installed. (The
// first crash's timer at 130ms would otherwise see the second outage's
// failed flag and detect it 20ms early.)
func TestRapidFailReviveFailHonorsDetectionWindow(t *testing.T) {
	cfg := recoveryConfig()
	cfg.Scenario = []Event{
		FailServer(0, 100*sim.Millisecond),
		ReviveServer(0, 110*sim.Millisecond),
		FailServer(0, 120*sim.Millisecond), // its own detector fires at 150ms
		ReviveServer(0, 145*sim.Millisecond),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerRevivals != 2 {
		t.Fatalf("ServerRevivals = %d, want 2", res.ServerRevivals)
	}
	if res.Failovers != 0 {
		t.Fatalf("%d failovers installed; a stale detection timer fired for the second outage", res.Failovers)
	}
	if res.ReintegratedStripes != 0 || res.RepairPending != 0 {
		t.Fatalf("repair ran for transient blips: reintegrated=%d pending=%d",
			res.ReintegratedStripes, res.RepairPending)
	}

	// Same property for ToR outages: the revived-then-darkened-again
	// switch must not be detected by the first outage's timer.
	cfg = recoveryConfig()
	cfg.Scenario = []Event{
		FailToR(1, 100*sim.Millisecond),
		ReviveToR(1, 110*sim.Millisecond),
		FailToR(1, 120*sim.Millisecond),
		ReviveToR(1, 145*sim.Millisecond),
	}
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ToRRevivals != 2 {
		t.Fatalf("ToRRevivals = %d, want 2", res.ToRRevivals)
	}
	if res.Failovers != 0 {
		t.Fatalf("%d failovers installed for transient ToR blips", res.Failovers)
	}
}

// TestReplicationRevivalRepairs covers the replication backend's half
// of server revival: the survivor re-admits the revived peer to its
// Hermes group (AddPeer), so post-revival writes are replicated to both
// members again instead of committing alone forever.
func TestReplicationRevivalRepairs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Warmup = 50 * sim.Millisecond
	cfg.Duration = 500 * sim.Millisecond
	cfg.Scenario = []Event{
		FailServer(0, 100*sim.Millisecond),
		ReviveServer(0, 300*sim.Millisecond),
	}
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	if res.ServerRevivals != 1 {
		t.Fatalf("ServerRevivals = %d, want 1", res.ServerRevivals)
	}
	if res.Failovers == 0 {
		t.Fatal("crash was never detected")
	}
	repaired := 0
	for _, pr := range r.pairs {
		for _, inst := range []*instance{pr.primary, pr.replica} {
			if inst.server != r.servers[0] {
				continue
			}
			partner := r.insts[inst.replicaID]
			if got := len(partner.repl.Peers()); got != 2 {
				t.Errorf("pair %d: survivor has %d peers after revival, want 2 (AddPeer missing)",
					pr.idx, got)
			}
			if got := len(inst.repl.Peers()); got != 2 {
				t.Errorf("pair %d: revived node has %d peers, want 2", pr.idx, got)
			}
			repaired++
		}
	}
	if repaired == 0 {
		t.Fatal("no pair instance lives on the revived server; test set up wrong")
	}
	if res.Recorder.Len() < 3000 {
		t.Fatalf("only %d samples; rack did not keep serving through the cycle", res.Recorder.Len())
	}
}
