package core

import (
	"sort"

	"rackblox/internal/packet"
	"rackblox/internal/sim"
	"rackblox/internal/switchsim"
	"rackblox/internal/trace"
)

// Cluster is the multi-rack topology layer: it composes the experiment's
// rack fault domains under a simulated spine/aggregation link with finite
// bandwidth and added latency. Each rack gets its own ToR switch; stripe
// traffic that cannot be served rack-locally is handed between ToRs over
// the spine, and bulk repair traffic (degraded-read chunk fetches,
// background reconstruction) is metered on the shared link. With one rack
// the cluster degenerates to the paper's testbed: a single ToR, no spine.
type Cluster struct {
	rack           *Rack
	racks          int
	serversPerRack int
	tors           []*switchsim.Switch
	spine          *Spine // the explicit cross-rack boundary (see spine.go)

	// ToR failure injection: torFailed flips at the configured instant,
	// torDetected when the heartbeat detector notices and the surviving
	// ToRs take over; torCrashes counts each ToR's failures so a
	// detection timer armed by one outage cannot fire for a later one.
	torFailed   []bool
	torDetected []bool
	torCrashes  []int

	torRevivals    int64
	serverRevivals int64
}

// newCluster wires the topology for r: per-rack ToR switches sharing the
// rack's forwarding fabric, and the spine boundary (with its metered
// link when racks > 1).
func newCluster(r *Rack) *Cluster {
	cfg := r.cfg
	c := &Cluster{
		rack:           r,
		racks:          cfg.racks(),
		serversPerRack: cfg.StorageServers,
		spine:          newSpine(r.eng, &cfg),
	}
	c.tors = make([]*switchsim.Switch, c.racks)
	c.torFailed = make([]bool, c.racks)
	c.torDetected = make([]bool, c.racks)
	c.torCrashes = make([]int, c.racks)
	for j := 0; j < c.racks; j++ {
		j := j
		tor := switchsim.New(r.eng, switchsim.QdiscByName(cfg.defaultQdisc()), r.forwarderFor(j))
		tor.ConfigureRack(j, func(pkt packet.Packet, rack int) { c.handoff(pkt, rack) })
		if cfg.GCReplyDropRate > 0 {
			tor.SetDropRate(cfg.GCReplyDropRate, r.rng.Fork(int64(101+10*j)))
		}
		c.tors[j] = tor
	}
	return c
}

// Racks returns the fault-domain count.
func (c *Cluster) Racks() int { return c.racks }

// RackOf maps a global server index to its rack.
func (c *Cluster) RackOf(server int) int { return server / c.serversPerRack }

// Tor returns one rack's ToR switch.
func (c *Cluster) Tor(rack int) *switchsim.Switch { return c.tors[rack] }

// TorDown reports whether a rack's ToR has failed (isolating the rack).
func (c *Cluster) TorDown(rack int) bool { return c.torFailed[rack] }

// Spine returns the cluster's cross-rack boundary: latency, metering,
// and byte accounting for everything that leaves a rack.
func (c *Cluster) Spine() *Spine { return c.spine }

// CrossRepairBytes returns the chunk bytes repair traffic has fully
// moved over the spine so far (transfers still in flight excluded).
func (c *Cluster) CrossRepairBytes() int64 { return c.spine.CrossRepairBytes() }

// CrossRepairBytesOffered returns the repair bytes handed to the spine,
// counted at enqueue — the old meaning of CrossRepairBytes.
func (c *Cluster) CrossRepairBytesOffered() int64 { return c.spine.CrossRepairBytesOffered() }

// ForegroundBytes returns the foreground (non-repair) bytes the spine
// has fully delivered so far.
func (c *Cluster) ForegroundBytes() int64 { return c.spine.ForegroundBytes() }

// ForegroundBytesOffered returns the foreground bytes handed to the
// spine, counted at enqueue.
func (c *Cluster) ForegroundBytesOffered() int64 { return c.spine.ForegroundBytesOffered() }

// ToRRevivals returns how many ToR switches have been revived.
func (c *Cluster) ToRRevivals() int64 { return c.torRevivals }

// ServerRevivals returns how many crashed servers have been revived.
func (c *Cluster) ServerRevivals() int64 { return c.serverRevivals }

// SpineUtilization returns the cross-rack link's busy fraction (0 with a
// single rack).
func (c *Cluster) SpineUtilization() float64 { return c.spine.Utilization() }

// handoff carries a stripe read from one ToR to another over the spine,
// metered as foreground traffic. A failed destination ToR drops it
// there, like any packet it processes.
func (c *Cluster) handoff(pkt packet.Packet, rack int) {
	sp := c.rack.spanFor(pkt.Seq)
	if sp != nil {
		h := sp.Child("handoff", c.rack.eng.Now())
		h.EndAt(c.rack.eng.Now() + c.spine.Propagation())
		h.Annotate(trace.Int("to_rack", int64(rack)))
	}
	delay := c.spine.Propagation() + c.spine.MeterForegroundTraced(c.spine.FrameBytes(pkt), sp)
	pkt.AddLatency(delay)
	c.rack.eng.AfterNamed(delay, "net.handoff", func(sim.Time) { c.tors[rack].Process(pkt) })
}

// failToR takes one rack's ToR down at the injection instant.
func (c *Cluster) failToR(rack int) {
	c.torFailed[rack] = true
	c.torCrashes[rack]++
	c.tors[rack].SetDown(true)
}

// scheduleScenario arms the run's compiled timeline on the engine: one
// crash callback per fail event at its instant, one heartbeat-detection
// callback three silent periods later, and one revival callback per
// revive event. The timeline is walked in stable time order; revive
// events are inserted first so a revival and a detection landing on the
// same instant execute in the order the legacy one-shot hooks used
// (revival first) — the legacy-equivalence regression test pins this.
// Each detection callback is stamped with the crash epoch that armed it
// and fires only while that epoch's outage persists: a server (or ToR)
// that revived and crashed again inside the detection window is a new
// outage whose own detector honors the full three missed heartbeats.
func (c *Cluster) scheduleScenario(events []Event) {
	r := c.rack
	order := append([]Event(nil), events...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].At < order[j].At })
	detect := sim.Time(missedHeartbeats * HeartbeatInterval)
	for _, ev := range order {
		ev := ev
		switch ev.Kind {
		case EventReviveServer:
			r.eng.AtNamed(ev.At, "scenario", func(now sim.Time) {
				if c.ReviveServer(ev.Index) {
					r.tracer.Instant("scenario", "revive_server", now,
						trace.Int("server", int64(ev.Index)))
				}
			})
		case EventReviveToR:
			r.eng.AtNamed(ev.At, "scenario", func(now sim.Time) {
				if c.ReviveToR(ev.Index) {
					r.tracer.Instant("scenario", "revive_tor", now,
						trace.Int("rack", int64(ev.Index)))
				}
			})
		}
	}
	serverEpoch := make(map[int]int)
	torEpoch := make(map[int]int)
	for _, ev := range order {
		ev := ev
		switch ev.Kind {
		case EventFailServer:
			srv := r.servers[ev.Index]
			serverEpoch[ev.Index]++
			epoch := serverEpoch[ev.Index]
			r.eng.AtNamed(ev.At, "scenario", func(now sim.Time) {
				srv.failed = true
				srv.crashes++
				r.tracer.Instant("scenario", "fail_server", now,
					trace.Int("server", int64(ev.Index)))
			})
			r.eng.AtNamed(ev.At+detect, "scenario", func(sim.Time) {
				// failed==false: revived before detection, a transient
				// blip. crashes!=epoch: this detector's outage already
				// ended and a newer crash owns the server.
				if srv.failed && srv.crashes == epoch {
					r.onServerDetectedDead(srv)
				}
			})
		case EventFailRack:
			lo := ev.Index * c.serversPerRack
			hi := lo + c.serversPerRack
			epochs := make([]int, hi-lo)
			for i := lo; i < hi; i++ {
				serverEpoch[i]++
				epochs[i-lo] = serverEpoch[i]
			}
			r.eng.AtNamed(ev.At, "scenario", func(now sim.Time) {
				for i := lo; i < hi; i++ {
					r.servers[i].failed = true
					r.servers[i].crashes++
				}
				r.tracer.Instant("scenario", "fail_rack", now,
					trace.Int("rack", int64(ev.Index)))
			})
			r.eng.AtNamed(ev.At+detect, "scenario", func(sim.Time) {
				for i := lo; i < hi; i++ {
					if r.servers[i].failed && r.servers[i].crashes == epochs[i-lo] {
						r.onServerDetectedDead(r.servers[i])
					}
				}
			})
		case EventFailToR:
			torEpoch[ev.Index]++
			epoch := torEpoch[ev.Index]
			r.eng.AtNamed(ev.At, "scenario", func(now sim.Time) {
				c.failToR(ev.Index)
				r.tracer.Instant("scenario", "fail_tor", now,
					trace.Int("rack", int64(ev.Index)))
			})
			r.eng.AtNamed(ev.At+detect, "scenario", func(sim.Time) {
				if c.torCrashes[ev.Index] == epoch {
					r.onToRDetectedDead(ev.Index)
				}
			})
		}
	}
}

// ReviveServer brings a crashed storage server back online
// (EventReviveServer, or direct calls from tests and tools). The box
// returns with blank DRAM and flash, so recovery is more than flipping
// a bit: every erasure-coded chunk holder it hosted is rebuilt from
// scratch by the metered reconstructor (catch-up repair re-targeted at
// the original holder, spilling onto the spine like any other repair)
// and re-registered under its own id when the last chunk lands;
// replicated instances re-pair with their survivors via Hermes AddPeer
// once the failover rewrites are withdrawn. Reviving a healthy or
// out-of-range server is a no-op returning false.
func (c *Cluster) ReviveServer(idx int) bool {
	if idx < 0 || idx >= len(c.rack.servers) {
		return false
	}
	srv := c.rack.servers[idx]
	if !srv.failed {
		return false
	}
	detected := srv.detected
	srv.failed = false
	srv.detected = false
	c.serverRevivals++
	if detected {
		c.rack.onServerRevived(srv)
	}
	return true
}

// ReviveToR un-darkens a failed ToR (Config.RecoverToRIndex, or direct
// calls from tests and tools): the switch comes back with blank SRAM, so
// the control plane replays its tables from surviving cluster state —
// vSSD registrations, stripe members with any repaired replacements,
// and failover/remote-dead marks for members that are still dead — and
// clears the remote-dead and failover entries sibling ToRs hold for the
// revived rack's now-reachable members. Reviving an up ToR is a no-op,
// as is a second revival of the same ToR; both return false.
func (c *Cluster) ReviveToR(rack int) bool {
	if rack < 0 || rack >= c.racks || !c.torFailed[rack] {
		return false
	}
	c.torFailed[rack] = false
	c.torDetected[rack] = false
	c.torRevivals++
	tor := c.tors[rack]
	tor.SetDown(false)
	tor.ResetTables()
	c.rack.replayToR(rack)
	return true
}

// Stats sums the data-plane counters of every ToR in the cluster.
func (c *Cluster) Stats() switchsim.Stats {
	var total switchsim.Stats
	for _, tor := range c.tors {
		s := tor.Stats()
		total.Add(s)
	}
	return total
}

// reachable reports whether a server can exchange traffic with the rest
// of the cluster: it must be alive and its rack's ToR must be up.
func (s *server) reachable() bool {
	return !s.failed && !s.rack.cluster.torFailed[s.rackIdx]
}

// torOf returns the ToR switch serving a server's rack.
func (r *Rack) torOf(s *server) *switchsim.Switch {
	return r.cluster.tors[s.rackIdx]
}
