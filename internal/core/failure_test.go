package core

import (
	"testing"

	"rackblox/internal/sim"
	"rackblox/internal/stats"
)

// failConfig injects a crash of server 0 a third of the way into the run.
func failConfig() Config {
	cfg := DefaultConfig()
	cfg.System = RackBlox
	cfg.Warmup = 50 * sim.Millisecond
	cfg.Duration = 700 * sim.Millisecond
	cfg.FailServerIndex = 0
	cfg.FailServerAt = 250 * sim.Millisecond
	return cfg
}

func TestServerFailureFailsOver(t *testing.T) {
	res, err := Run(failConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers == 0 {
		t.Fatal("failure never detected")
	}
	if res.Switch.FailedOver == 0 {
		t.Fatal("switch never rewrote traffic for the dead server")
	}
	// Requests in flight to the dead server are bounded losses.
	if res.LostRequests == 0 {
		t.Error("no requests lost at the moment of the crash; suspicious")
	}
	if res.LostRequests > 200 {
		t.Errorf("%d requests lost; failover not containing the blast radius",
			res.LostRequests)
	}
	// Service continues: plenty of completions after the failure.
	if res.Recorder.Len() < 5000 {
		t.Errorf("only %d samples; rack did not keep serving", res.Recorder.Len())
	}
}

func TestServiceContinuesAfterFailure(t *testing.T) {
	res, err := Run(failConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Late samples (completing after detection) must exist and stay sane.
	late := 0
	for _, s := range stats.RawSamples(res.Recorder) {
		if s.Total > 0 && !s.Write {
			late++
		}
	}
	if late < 1000 {
		t.Fatalf("only %d read completions total", late)
	}
	if p := res.Recorder.Reads().P50(); p <= 0 || p > int64(50*sim.Millisecond) {
		t.Fatalf("post-failure read P50 = %d ns implausible", p)
	}
}

func TestNoFailureByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 200 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 0 || res.LostRequests != 0 {
		t.Fatalf("failovers=%d lost=%d without injection", res.Failovers, res.LostRequests)
	}
}

func TestFailureUnderVDCKeepsRunning(t *testing.T) {
	// VDC has no switch failover path in the paper; the simulation still
	// detects the failure and degrades replication so writes commit.
	cfg := failConfig()
	cfg.System = VDC
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Len() < 3000 {
		t.Fatalf("VDC stopped serving after failure: %d samples", res.Recorder.Len())
	}
}

func TestFailureOfReplicaServerOnly(t *testing.T) {
	// Crash server 1, which hosts replicas of pair 0 and the primary of
	// pair 2 (round-robin placement) — both directions must fail over.
	cfg := failConfig()
	cfg.FailServerIndex = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers == 0 {
		t.Fatal("no failover for replica-hosting server")
	}
	if res.Recorder.Len() < 5000 {
		t.Fatalf("only %d samples", res.Recorder.Len())
	}
}
