package core

import (
	"errors"
	"testing"

	"rackblox/internal/sim"
	"rackblox/internal/stats"
)

// failConfig injects a crash of server 0 a third of the way into the run.
func failConfig() Config {
	cfg := DefaultConfig()
	cfg.System = RackBlox
	cfg.Warmup = 50 * sim.Millisecond
	cfg.Duration = 700 * sim.Millisecond
	cfg.FailServerIndex = 0
	cfg.FailServerAt = 250 * sim.Millisecond
	return cfg
}

func TestServerFailureFailsOver(t *testing.T) {
	res, err := Run(failConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers == 0 {
		t.Fatal("failure never detected")
	}
	if res.Switch.FailedOver == 0 {
		t.Fatal("switch never rewrote traffic for the dead server")
	}
	// Requests in flight to the dead server are bounded losses.
	if res.LostRequests == 0 {
		t.Error("no requests lost at the moment of the crash; suspicious")
	}
	if res.LostRequests > 200 {
		t.Errorf("%d requests lost; failover not containing the blast radius",
			res.LostRequests)
	}
	// Service continues: plenty of completions after the failure.
	if res.Recorder.Len() < 5000 {
		t.Errorf("only %d samples; rack did not keep serving", res.Recorder.Len())
	}
}

func TestServiceContinuesAfterFailure(t *testing.T) {
	res, err := Run(failConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Late samples (completing after detection) must exist and stay sane.
	late := 0
	for _, s := range stats.RawSamples(res.Recorder) {
		if s.Total > 0 && !s.Write {
			late++
		}
	}
	if late < 1000 {
		t.Fatalf("only %d read completions total", late)
	}
	if p := res.Recorder.Reads().P50(); p <= 0 || p > int64(50*sim.Millisecond) {
		t.Fatalf("post-failure read P50 = %d ns implausible", p)
	}
}

func TestNoFailureByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 200 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 0 || res.LostRequests != 0 {
		t.Fatalf("failovers=%d lost=%d without injection", res.Failovers, res.LostRequests)
	}
}

func TestFailureUnderVDCKeepsRunning(t *testing.T) {
	// VDC has no switch failover path in the paper; the simulation still
	// detects the failure and degrades replication so writes commit.
	cfg := failConfig()
	cfg.System = VDC
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Len() < 3000 {
		t.Fatalf("VDC stopped serving after failure: %d samples", res.Recorder.Len())
	}
}

// TestFailServersRejectsBadSpecs is the regression test for the typed
// failure-spec validation: duplicate server ids used to be silently
// deduplicated (double-counting one crash against the redundancy
// budget), and out-of-range indices were silently ignored.
func TestFailServersRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"duplicate in FailServers", func(c *Config) {
			c.FailServerIndex = -1
			c.FailServers = []int{1, 2, 1}
		}, "FailServers"},
		{"duplicate of FailServerIndex", func(c *Config) {
			c.FailServerIndex = 0
			c.FailServers = []int{0}
		}, "FailServers"},
		{"out of range high", func(c *Config) {
			c.FailServers = []int{99}
		}, "FailServers"},
		{"negative entry", func(c *Config) {
			c.FailServers = []int{-3}
		}, "FailServers"},
		{"FailServerIndex out of range", func(c *Config) {
			c.FailServerIndex = 64
		}, "FailServerIndex"},
		{"FailServerIndex negative but not -1", func(c *Config) {
			c.FailServerIndex = -5
		}, "FailServerIndex"},
		{"FailServers overlaps failed rack", func(c *Config) {
			c.FailRackIndex = 0
			c.FailServers = []int{0}
		}, "FailServers"},
		{"FailServerIndex inside failed rack", func(c *Config) {
			c.FailRackIndex = 0
			c.FailServerIndex = 1
		}, "FailServerIndex"},
		{"FailRackIndex out of range", func(c *Config) {
			c.FailRackIndex = 7
		}, "FailRackIndex"},
		{"FailToRIndex out of range", func(c *Config) {
			c.FailToRIndex = 7
		}, "FailToRIndex"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		_, err := Run(cfg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var spec *FailureSpecError
		if !errors.As(err, &spec) {
			t.Errorf("%s: err = %v, want *FailureSpecError", tc.name, err)
			continue
		}
		if spec.Field != tc.field {
			t.Errorf("%s: field = %q, want %q", tc.name, spec.Field, tc.field)
		}
	}
	// Distinct in-range entries stay accepted.
	cfg := DefaultConfig()
	cfg.Duration = 100 * sim.Millisecond
	cfg.FailServerIndex = 0
	cfg.FailServers = []int{1}
	cfg.FailServerAt = 50 * sim.Millisecond
	if _, err := Run(cfg); err != nil {
		t.Fatalf("valid two-server spec rejected: %v", err)
	}
}

func TestFailureOfReplicaServerOnly(t *testing.T) {
	// Crash server 1, which hosts replicas of pair 0 and the primary of
	// pair 2 (round-robin placement) — both directions must fail over.
	cfg := failConfig()
	cfg.FailServerIndex = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers == 0 {
		t.Fatal("no failover for replica-hosting server")
	}
	if res.Recorder.Len() < 5000 {
		t.Fatalf("only %d samples", res.Recorder.Len())
	}
}
