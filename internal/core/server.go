package core

import (
	"rackblox/internal/flash"
	"rackblox/internal/packet"
	"rackblox/internal/sched"
	"rackblox/internal/sim"
	"rackblox/internal/ssd"
)

// server is one storage server: a programmable SSD, the SDF stack with its
// per-vSSD I/O queues, a DRAM write cache with a background flusher, and
// the periodic GC monitor of Algorithm 2.
type server struct {
	rack *Rack
	// index is the global server index; rackIdx the fault domain it
	// lives in (index / Config.StorageServers).
	index   int
	rackIdx int
	ip      uint32
	dev     *ssd.Device
	insts   map[uint32]*instance

	// failed marks a crashed server (drops all traffic); detected flips
	// when the heartbeat monitor notices. crashes counts the server's
	// crash events so a detection timer armed by one crash cannot fire
	// for a later one (fail -> revive -> fail-again inside the
	// detection window would otherwise be detected early).
	failed   bool
	detected bool
	crashes  int
}

// receive handles a packet delivered to this server's NIC.
func (s *server) receive(pkt packet.Packet) {
	if s.failed {
		return // crashed servers drop everything
	}
	now := s.rack.eng.Now()
	inst, ok := s.insts[pkt.VSSD]
	if !ok {
		return // stale packet for a deleted vSSD
	}
	switch pkt.Op {
	case packet.OpRead, packet.OpWrite:
		st := s.rack.reqs[pkt.Seq]
		if st == nil {
			return
		}
		// Erasure-coded fan-out sub-operations share one reqState: only
		// the first arrival sets the breakdown anchors, so the recorded
		// stages stay monotonic (arrival <= dispatch <= max deviceDone)
		// and describe the fan-out envelope rather than mixing stages of
		// different sub-operations.
		if st.group == nil || st.arrival == 0 {
			st.arrival = now
			st.netIn = now - st.issue
		}
		s.rack.perRackReqs[s.rackIdx]++
		if st.pair != nil && pkt.VSSD != st.pair.primary.id {
			st.redirected = true
		}
		// Feed the predictor with the INT-measured inbound latency and
		// track idleness for background GC.
		inst.pred.Observe(pkt.Op == packet.OpWrite, sim.Time(pkt.LatencyNS()))
		inst.idle.OnRequest(now)

		req := &sched.Request{
			Seq:     pkt.Seq,
			Write:   pkt.Op == packet.OpWrite,
			Arrival: now,
			Data:    inst,
		}
		if s.rack.cfg.coordinated() {
			req.NetTime = sim.Time(pkt.LatencyNS())
			req.Predict = inst.pred.Predict(req.Write)
		}
		inst.queue.Enqueue(req)
		s.rack.eng.AfterNamed(serverProcTime, "server.pump", func(sim.Time) { s.pump(inst) })
	case packet.OpGC:
		// Reply from the ToR switch to an earlier gc_op.
		s.rack.handleGCReply(inst, pkt)
	}
}

// pump dispatches queued requests. The inflight budget applies to reads
// only: they occupy flash channels. Writes land in DRAM and are bounded by
// the cache, the stall list, and Kyber's write tokens, so a GC-blocked
// read never starves them — the cache-shielding the paper relies on. One
// read may be stashed in pendingRead when the budget is exhausted, letting
// writes continue past it without reordering reads.
func (s *server) pump(inst *instance) {
	now := s.rack.eng.Now()
	for {
		if inst.pendingRead != nil {
			if inst.inflight >= inst.maxInflight {
				return
			}
			req := inst.pendingRead
			inst.pendingRead = nil
			inst.inflight++
			s.startRead(inst, req, 0)
			continue
		}
		req := inst.queue.Dequeue(now)
		if req == nil {
			return
		}
		if req.Write {
			if inst.cache.Full() {
				if len(inst.stalled) < 8 {
					// Hold the write until flushing frees DRAM.
					inst.stalled = append(inst.stalled, req)
					continue
				}
				// Stall list saturated: put the request back and stop
				// pumping writes. Kyber counted the dequeue as an
				// in-flight write; a zero-cost completion rebalances it.
				inst.queue.Enqueue(req)
				inst.queue.OnComplete(true, 0)
				return
			}
			s.startWrite(inst, req)
			continue
		}
		if inst.inflight >= inst.maxInflight {
			inst.pendingRead = req
			return
		}
		inst.inflight++
		s.startRead(inst, req, 0)
	}
}

// drainStalled restarts writes that were waiting for DRAM slots.
func (s *server) drainStalled(inst *instance) {
	for len(inst.stalled) > 0 && !inst.cache.Full() {
		req := inst.stalled[0]
		inst.stalled = inst.stalled[1:]
		s.startWrite(inst, req)
	}
}

// cancelRead releases a read whose request state is gone (the client
// timed it out, and for erasure coding retransmitted it under a fresh
// sequence number): the scheduler token and inflight slot return, and
// no response is sent for the dead attempt.
func (s *server) cancelRead(inst *instance) {
	inst.queue.OnComplete(false, 0)
	inst.inflight--
	s.pump(inst)
}

// startRead serves one read: DRAM hit, or flash read on the owning
// channel. attempt counts Hermes-invalidation retries.
func (s *server) startRead(inst *instance, req *sched.Request, attempt int) {
	r := s.rack
	now := r.eng.Now()
	st := r.reqs[req.Seq]
	if st == nil {
		s.cancelRead(inst)
		return
	}
	if st.dispatched == 0 {
		st.dispatched = now
	}
	lpn := st.lpn

	// An erasure-coded read landing away from its home chunk holder was
	// steered here by the switch (home collecting or failed): this
	// holder coordinates the degraded reconstruction from k chunks —
	// unless it is the home's re-integrated replacement, in which case
	// the rebuilt chunk lives here and the read is served directly.
	if st.group != nil && inst.id != st.homeID && !st.group.servesDirect(inst, st.homeID) {
		s.startDegradedRead(inst, req)
		return
	}

	// The switch marks a collecting vSSD before replying to its gc_op,
	// but reads already forwarded race that update. Rather than queue
	// such a read behind a multi-millisecond GC reservation, hand it back
	// to the ToR: Algorithm 1 redirects it to the idle replica ("early
	// redirection to data replicas", §2.3). One bounce only — if both
	// replicas collect, the read is served in place.
	if !st.bounced && inst.v.InGC(now) && r.cfg.gcCoordinated() {
		st.bounced = true
		st.dispatched = 0 // queue accounting restarts at the new server
		inst.inflight--
		r.bounces++
		r.bounceRead(inst, st)
		s.pump(inst)
		return
	}

	// A redirected read may land on a replica whose copy is still
	// invalidated by an in-flight write; wait briefly for the commit.
	// Erasure-coded chunk holders (no Hermes node) always serve.
	if inst.repl != nil && !inst.repl.CanRead(lpn) && attempt < 3 {
		r.staleRetries++
		r.eng.AfterNamed(hermesRetryGap, "server.stale_retry", func(sim.Time) { s.startRead(inst, req, attempt+1) })
		return
	}

	if inst.cache.Contains(inst.id, lpn) {
		r.cacheHits++
		r.eng.AfterNamed(cacheHitTime, "server.cache_hit", func(sim.Time) { s.completeRead(inst, req) })
		return
	}
	// Software-isolated vSSDs pass the token-bucket limiter first.
	admitAt := inst.v.Admit(now)
	issue := func(sim.Time) {
		addr, err := inst.v.FTL.Read(int(lpn))
		if err != nil {
			// Reads outside the preconditioned range still cost one
			// device read on the vSSD's first channel.
			addr = flash.Addr{Channel: inst.v.Channels()[0]}
		}
		s.dev.TimeRead(addr, func(_, _ sim.Time) { s.completeRead(inst, req) })
	}
	if admitAt > now {
		r.eng.AtNamed(admitAt, "server.admit", issue)
	} else {
		issue(now)
	}
}

func (s *server) completeRead(inst *instance, req *sched.Request) {
	r := s.rack
	now := r.eng.Now()
	st := r.reqs[req.Seq]
	if st == nil {
		// Timed out and (for EC) retransmitted while the device worked;
		// the flash time was spent, but nobody is waiting for the reply.
		s.cancelRead(inst)
		return
	}
	st.deviceDone = now
	// Coordinated schedulers target end-to-end latency, so feed them the
	// network components too — that is why their targets are raised by
	// the expected network delay (§4.1).
	lat := now - req.Arrival
	if r.cfg.coordinated() {
		lat += req.NetTime + req.Predict
	}
	inst.queue.OnComplete(false, lat)
	inst.inflight--
	r.respond(st, inst)
	s.pump(inst)
}

// startWrite inserts the write into the DRAM cache and replicates it with
// Hermes; the write completes when all replicas acknowledged (§3.5.1).
func (s *server) startWrite(inst *instance, req *sched.Request) {
	r := s.rack
	now := r.eng.Now()
	st := r.reqs[req.Seq]
	if st == nil {
		// Timed out (and for EC retransmitted) before dispatch: return
		// the scheduler token and drop the dead attempt.
		inst.queue.OnComplete(true, 0)
		return
	}
	if st.dispatched == 0 {
		st.dispatched = now
	}
	inst.cache.Insert(inst.id, st.lpn)
	// The write now owns a DRAM slot: its scheduler token returns
	// immediately. Kyber's write depth gates admission into the storage
	// stack, not the replication round trip, which is network time.
	inst.queue.OnComplete(true, 0)
	// seq pins this attempt: an EC retransmission reissues the logical
	// request under a fresh sequence number, so a stale attempt's
	// completion must not respond against the new one.
	seq := req.Seq
	r.eng.AfterNamed(cacheInsertTime, "server.cache_insert", func(sim.Time) {
		if r.reqs[seq] != st {
			s.flushPump(inst)
			s.pump(inst)
			return // attempt superseded by a client retransmission
		}
		if inst.repl == nil {
			// Erasure-coded chunk holder: durability comes from the
			// stripe's parity chunks (the client fans the write out to
			// all of them), so each sub-write commits locally.
			done := r.eng.Now()
			if done > st.deviceDone {
				st.deviceDone = done
			}
			r.respond(st, inst)
			s.flushPump(inst)
			s.pump(inst)
			return
		}
		inst.repl.Write(st.lpn, func() {
			if r.reqs[seq] != st {
				s.flushPump(inst)
				s.pump(inst)
				return
			}
			done := r.eng.Now()
			st.deviceDone = done
			r.respond(st, inst)
			s.flushPump(inst)
			s.pump(inst)
		})
	})
	s.flushPump(inst)
}

// applyReplicaWrite caches a write arriving via Hermes invalidation at the
// follower. Followers absorb without back-pressure; their flusher catches
// up in the background.
func (s *server) applyReplicaWrite(inst *instance, lpn uint32) {
	// Replicated writes keep the device busy: without this the idle
	// predictor believes a read-free replica is idle and fires
	// background GC under full write load.
	inst.idle.OnRequest(s.rack.eng.Now())
	if !inst.cache.Insert(inst.id, lpn) {
		// Follower DRAM full: write through to flash immediately.
		if _, err := inst.v.FTL.Write(int(lpn)); err != nil {
			s.forceGC(inst)
			inst.v.FTL.Write(int(lpn)) // after GC this must succeed
		}
		return
	}
	s.flushPump(inst)
}

// flushPump drains one instance's DRAM cache to flash in the background,
// bounded to one in-flight program per channel the instance owns. Flushing
// is strictly per-instance so one vSSD's GC train cannot occupy another
// vSSD's flush slots (head-of-line blocking across tenants).
func (s *server) flushPump(inst *instance) {
	if inst.maxFlushInflight == 0 {
		inst.maxFlushInflight = len(inst.v.Channels())
	}
	// Write-back watermark: dirty pages below the hold level stay in DRAM
	// absorbing rewrites (hot keys never reach flash), which is what
	// keeps GC traffic proportional to the *unique* write footprint.
	hold := s.rack.cfg.CacheHoldPages
	for inst.flushInflight < inst.maxFlushInflight && inst.cache.Len() > hold {
		_, lpn, ok := inst.cache.NextFlush()
		if !ok {
			return
		}
		addr, err := inst.v.FTL.Write(int(lpn))
		if err != nil {
			// Out of space: garbage-collect now (the never-denied regular
			// GC path) and retry once.
			s.forceGC(inst)
			addr, err = inst.v.FTL.Write(int(lpn))
			if err != nil {
				inst.cache.FlushDone()
				continue
			}
		}
		inst.flushInflight++
		s.dev.TimeProgram(addr, func(_, _ sim.Time) {
			inst.flushInflight--
			inst.cache.FlushDone()
			s.drainStalled(inst)
			s.flushPump(inst)
		})
	}
}
