package core

import (
	"encoding/json"
	"testing"
)

// runJSON builds a rack, runs it, and returns the full Result as JSON —
// the byte-level identity the determinism invariant promises.
func runJSON(t *testing.T, sys System, seed int64) []byte {
	t.Helper()
	cfg := shortConfig(sys)
	cfg.Seed = seed
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatalf("NewRack: %v", err)
	}
	b, err := json.Marshal(r.Run())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestReplayByteIdentical runs the same configuration twice for several
// seeds and systems and asserts byte-identical Result JSON. The
// experiments package has the same check at figure granularity; this one
// sits at the core layer so a determinism regression is caught next to
// the code that introduced it. Together with rackvet's simdeterminism
// check (which proves no map iteration order can reach the event loop
// statically) it pins the invariant from both sides: the GC burst path
// exercised here drives the //rackvet:commutative-annotated PerChannel
// iteration in startGCBurst across every run.
func TestReplayByteIdentical(t *testing.T) {
	for _, sys := range []System{VDC, RackBlox} {
		for _, seed := range []int64{1, 7, 42} {
			first := runJSON(t, sys, seed)
			second := runJSON(t, sys, seed)
			if string(first) != string(second) {
				t.Errorf("%v seed %d: two same-seed runs diverged\nfirst:  %.200s\nsecond: %.200s",
					sys, seed, first, second)
			}
		}
	}
}
