package core

import (
	"fmt"

	"rackblox/internal/ec"
	"rackblox/internal/netsim"
	"rackblox/internal/packet"
	"rackblox/internal/predictor"
	"rackblox/internal/replication"
	"rackblox/internal/sched"
	"rackblox/internal/sim"
	"rackblox/internal/ssd"
	"rackblox/internal/stats"
	"rackblox/internal/switchsim"
	"rackblox/internal/trace"
	"rackblox/internal/vssd"
	"rackblox/internal/workload"
)

// Fixed service costs of the software stack.
const (
	serverProcTime  = 3 * sim.Microsecond   // NIC + request handling
	cacheHitTime    = 2 * sim.Microsecond   // DRAM read
	cacheInsertTime = 2 * sim.Microsecond   // DRAM write
	controllerProc  = 150 * sim.Microsecond // VDC controller decision
	gcReplyTimeout  = 2 * sim.Millisecond   // gc_op retransmission timer
	hermesRetryGap  = 50 * sim.Microsecond  // redirected read hit an
	// invalidated key: retry after the in-flight write likely committed
)

// instance is one vSSD replica instance living on a server.
type instance struct {
	id        uint32
	v         *vssd.VSSD
	server    *server
	pairIdx   int
	replicaID uint32
	primary   bool

	queue       sched.Scheduler
	pred        *predictor.Latency
	idle        *predictor.Idle
	repl        *replication.Node
	inflight    int
	maxInflight int

	// Per-instance write cache and flusher (one flush slot per owned
	// channel); isolation prevents cross-tenant head-of-line blocking.
	cache            *writeCache
	stalled          []*sched.Request
	pendingRead      *sched.Request
	flushInflight    int
	maxFlushInflight int

	// group is set for software-isolated instances (§3.5.2); peer is the
	// collocated tenant sharing the channel group.
	group *vssd.ChannelGroup
	peer  *vssd.VSSD

	// GC protocol state.
	gcRequestInFlight bool
	gcRetries         int
	lastGCType        packet.GCField
	gcEvents          int
	gcDelayed         int
	bgGCEvents        int
	// replicaIdleHint caches the controller's answer for software
	// (server-side) redirection in RackBlox (Software).
	replicaIdleHint bool
}

// pair is a primary+replica vSSD pair with its client-side generator.
type pair struct {
	idx      int
	primary  *instance
	replica  *instance
	gen      workload.Generator
	inflight int
}

// reqState tracks one request across the rack for latency breakdown.
// Exactly one of pair and group is set: pair for replicated volumes,
// group for erasure-coded ones.
type reqState struct {
	seq        uint64
	write      bool
	lpn        uint32
	pair       *pair
	group      *ecGroup
	issue      sim.Time
	arrival    sim.Time // at storage server
	dispatched sim.Time
	deviceDone sim.Time
	redirected bool
	// bounced marks a read the server handed back to the ToR because its
	// vSSD started collecting after the switch had already forwarded it.
	bounced bool
	netIn   sim.Time

	// Erasure-coded requests: userLPN is the client's logical page (lpn
	// holds the chunk-local page, i.e. the stripe index), homeID the data
	// chunk's holder, ecPending the outstanding fan-out sub-operations,
	// and retries the client retransmission count after a timeout.
	userLPN   uint32
	homeID    uint32
	ecPending int
	retries   int

	// Flight-recorder state: span is the request's root trace span (nil
	// when tracing is off — all span methods are nil-safe), lastIssue the
	// issue instant of the current attempt (retransmissions reset it so
	// the retransmit phase is attributable), degraded marks a read served
	// by k-chunk reconstruction.
	span      *trace.Span
	lastIssue sim.Time
	degraded  bool
}

// decInflight releases the client-window slot of the owning volume.
func (st *reqState) decInflight() {
	if st.pair != nil {
		st.pair.inflight--
	} else if st.group != nil {
		st.group.inflight--
	}
}

// Rack is one end-to-end experiment instance. Despite the historical
// name it can span several rack fault domains: the embedded Cluster
// composes per-rack ToR switches under a spine link, and servers carry
// their rack index. With Config.Racks <= 1 it is exactly the paper's
// single-rack testbed.
type Rack struct {
	cfg Config
	// group is the sharded topology: one engine per rack plus the
	// coordinator shard (shard 0), where the spine boundary and the
	// scenario driver live. The full per-I/O datapath currently runs on
	// the coordinator engine — eng aliases group.Coordinator() — which
	// keeps every Result byte-identical to the historical single-engine
	// runs; the rack shards carry the parallel soak model (shardsim.go)
	// until the datapath migrates onto them rack by rack.
	group   *sim.ShardGroup
	eng     *sim.Engine
	net     *netsim.Network
	cluster *Cluster
	// sw aliases the first rack's ToR for the single-rack call sites and
	// tests; multi-rack paths go through torOf/cluster.
	sw      *switchsim.Switch
	servers []*server
	pairs   []*pair
	groups  []*ecGroup
	insts   map[uint32]*instance
	rec     *stats.Recorder
	reqs    map[uint64]*reqState
	seq     uint64
	rng     *sim.RNG

	clientIP uint32
	// controller models the VDC controller server used by VDC and
	// RackBlox (Software); nil otherwise.
	controller *controller

	// issuing stops at Warmup+Duration; the run drains afterwards.
	stopIssuing sim.Time

	// anyFailure is set when the compiled scenario timeline injects at
	// least one failure, arming the per-request client loss detectors.
	anyFailure bool

	// pacer is the SLO-aware repair rate controller (nil unless
	// Config.RepairSLO enables it); lastRepairDone is the instant the
	// most recent repair batch completed — once the queues drain, the
	// repair completion time of the run.
	pacer          *RepairPacer
	lastRepairDone sim.Time

	// TraceGC, when set, observes every GC episode (diagnostics).
	TraceGC func(vssd uint32, gcType packet.GCField, start, end sim.Time, blocks int)

	// tracer is the flight recorder (nil unless Config.Trace.Enabled; a
	// nil tracer no-ops every call, so the datapath records
	// unconditionally). metrics and metricsWin drive the time-series
	// sampler when Config.MetricsInterval > 0 — metricsWin is a separate
	// read-latency window so sampling shares nothing with the pacer's
	// control loop.
	tracer     *trace.Tracer
	metrics    *stats.TimeSeries
	metricsWin *stats.WindowedQuantile
	// perRackReqs counts request sub-operations arriving at each rack's
	// servers; completedReads/completedWrites count finished logical
	// requests. Plain counters: always maintained, observer-read.
	perRackReqs     []int64
	completedReads  int64
	completedWrites int64

	// counters
	failovers     int64
	lostRequests  int64
	bounces       int64
	cacheHits     int64
	staleRetries  int64
	forcedGCs     int64
	swRedirects   int64
	gcOpsSent     int64
	gcOpRetries   int64
	delayedByCtrl int64

	// erasure-coding counters
	degradedReads      int64
	unrecoverableReads int64
	ecSubWrites        int64
	ecRetransmits      int64
	lostReads          int64

	// LRC code-family counters: stripes repaired entirely inside one
	// rack (zero spine bytes), stripes repaired with per-rack aggregated
	// cross-rack fetches, and degraded reads served by the rack-local
	// XOR plan.
	localRepairStripes int64
	aggRepairStripes   int64
	localDegradedReads int64

	// recovery-lifecycle counters
	reintegratedStripes     int64
	degradedReadsPostRepair int64
	restoredHolders         int64
}

// NewRack builds and preconditions a rack per the configuration.
func NewRack(cfg Config) (*Rack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Rack{
		cfg:      cfg,
		group:    sim.NewShardGroup(cfg.racks(), cfg.CrossRackLatency),
		rec:      stats.NewRecorder(),
		reqs:     make(map[uint64]*reqState),
		insts:    make(map[uint32]*instance),
		rng:      sim.NewRNG(cfg.Seed),
		clientIP: packet.IP4(10, 0, 0, 1),
	}
	r.eng = r.group.Coordinator()
	r.net = netsim.New(cfg.Net, r.rng.Fork(100))
	r.cluster = newCluster(r)
	r.sw = r.cluster.tors[0]
	r.tracer = trace.New(cfg.Trace)
	r.perRackReqs = make([]int64, r.cluster.racks)
	if cfg.RepairSLO.Enabled() {
		// Validate guarantees Racks > 1, so the spine exists.
		r.pacer = newRepairPacer(r.eng, r.cluster.spine.Link(), &cfg)
	}

	// Servers, rack by rack: server i lives in rack i/StorageServers and
	// addresses as 10.0.<rack>.<16+local>.
	for i := 0; i < cfg.totalServers(); i++ {
		dev, err := ssd.NewDevice(r.eng, cfg.Geometry, cfg.Device)
		if err != nil {
			return nil, err
		}
		rackIdx := r.cluster.RackOf(i)
		s := &server{
			rack:    r,
			index:   i,
			rackIdx: rackIdx,
			ip:      packet.IP4(10, 0, byte(rackIdx), byte(16+i-rackIdx*cfg.StorageServers)),
			dev:     dev,
			insts:   make(map[uint32]*instance),
		}
		r.servers = append(r.servers, s)
	}
	if cfg.System == RackBloxSoftware {
		r.controller = newController(r)
	}

	if cfg.Redundancy.erasure() {
		if err := r.buildGroups(); err != nil {
			return nil, err
		}
	} else {
		if err := r.buildPairs(); err != nil {
			return nil, err
		}
	}
	if r.tracer != nil {
		r.installTraceHooks()
	}
	r.precondition()
	return r, nil
}

// installTraceHooks wires the pure-observer hooks of the lower layers
// into the flight recorder: ToR pipeline dwell becomes a child span on
// the in-flight request, and reconstructor queue transitions become
// control-plane instants. Only called with tracing enabled, and every
// hook only reads state — the traced event sequence stays identical.
func (r *Rack) installTraceHooks() {
	for j, tor := range r.cluster.tors {
		j := j
		tor.TraceHook = func(ev switchsim.TraceEvent) {
			if ev.Seq == 0 {
				return // control traffic (gc_op, registration) has no request
			}
			st := r.reqs[ev.Seq]
			if st == nil || st.span == nil {
				return
			}
			c := st.span.Child("tor", ev.Arrived)
			c.EndAt(ev.Arrived + ev.Dwell)
			c.Annotate(trace.Int("rack", int64(j)), trace.String("op", ev.Op.String()))
		}
	}
	for _, g := range r.groups {
		g := g
		g.recon.TraceHook = func(op string, t ec.RepairTask) {
			r.tracer.Instant("repair", "recon_"+op, r.eng.Now(),
				trace.Int("group", int64(g.idx)),
				trace.Int("holder", int64(t.Holder)),
				trace.Int("stripes", int64(t.Stripes)))
		}
	}
}

// channelAllocator returns a per-server channel allocator; nextChannel
// tracks allocation across all volumes built with the returned func.
func (r *Rack) channelAllocator() func(*server) ([]int, error) {
	cfg := r.cfg
	nextChannel := make([]int, len(r.servers))
	return func(srv *server) ([]int, error) {
		chs := make([]int, 0, cfg.ChannelsPerVSSD)
		for j := 0; j < cfg.ChannelsPerVSSD; j++ {
			if nextChannel[srv.index] >= cfg.Geometry.Channels {
				return nil, fmt.Errorf("core: server %d out of channels", srv.index)
			}
			chs = append(chs, nextChannel[srv.index])
			nextChannel[srv.index]++
		}
		return chs, nil
	}
}

// buildPairs creates vSSD instances, registers them with the switch, and
// wires Hermes replication between the two instances of each pair.
func (r *Rack) buildPairs() error {
	cfg := r.cfg
	alloc := r.channelAllocator()

	for p := 0; p < cfg.VSSDPairs; p++ {
		priSrv := r.servers[(2*p)%len(r.servers)]
		repSrv := r.servers[(2*p+1)%len(r.servers)]
		priID := uint32(100 + 2*p)
		repID := uint32(100 + 2*p + 1)

		pri, err := r.newInstance(priSrv, priID, repID, p, true, alloc)
		if err != nil {
			return err
		}
		rep, err := r.newInstance(repSrv, repID, priID, p, false, alloc)
		if err != nil {
			return err
		}

		// Hermes wiring: node 0 = primary, node 1 = replica.
		peers := []int{0, 1}
		pri.repl = replication.NewNode(0, peers, r.hermesTransport(pri, rep))
		rep.repl = replication.NewNode(1, peers, r.hermesTransport(pri, rep))

		pr := &pair{idx: p, primary: pri, replica: rep}
		pr.gen = r.newGenerator(p, pri)
		r.pairs = append(r.pairs, pr)

		// Register both instances in their racks' ToR tables (create_vssd).
		r.torOf(priSrv).Process(packet.Packet{
			Op: packet.OpCreateVSSD, VSSD: priID, SrcIP: priSrv.ip,
			ReplicaVSSD: repID, ReplicaIP: repSrv.ip,
		})
		r.torOf(repSrv).Process(packet.Packet{
			Op: packet.OpCreateVSSD, VSSD: repID, SrcIP: repSrv.ip,
			ReplicaVSSD: priID, ReplicaIP: priSrv.ip,
		})
		if r.controller != nil {
			r.controller.register(pri, rep)
		}
	}
	r.eng.Run() // drain registration events
	return nil
}

// newInstance creates one vSSD instance (hardware- or software-isolated)
// on a server. In the software-isolated mode each channel set hosts two
// half-size vSSDs forming a channel group; the second member runs a
// mirrored background load through the same group.
func (r *Rack) newInstance(srv *server, id, replicaID uint32, pairIdx int, primary bool,
	alloc func(*server) ([]int, error)) (*instance, error) {

	cfg := r.cfg
	channels, err := alloc(srv)
	if err != nil {
		return nil, err
	}
	var v *vssd.VSSD
	var group *vssd.ChannelGroup
	if cfg.SoftwareIsolated {
		// Interleave chips so both group members span the identical
		// channel set — the defining property of software isolation.
		var mine, theirs []ssd.ChipRef
		for _, ch := range channels {
			cc := srv.dev.ChannelChips(ch)
			for i, c := range cc {
				if i%2 == 0 {
					mine = append(mine, c)
				} else {
					theirs = append(theirs, c)
				}
			}
		}
		if len(mine) == 0 || len(theirs) == 0 {
			return nil, fmt.Errorf("core: channel set too small to split for software isolation")
		}
		iops := cfg.SWIsolationIOPS
		if iops <= 0 {
			iops = 50_000
		}
		v, err = vssd.NewSoftwareIsolated(srv.dev, id, mine, cfg.Utilization, iops)
		if err != nil {
			return nil, err
		}
		peer, err2 := vssd.NewSoftwareIsolated(srv.dev, id+1000, theirs, cfg.Utilization, iops)
		if err2 != nil {
			return nil, err2
		}
		group, err = vssd.NewChannelGroup(4, v, peer)
		if err != nil {
			return nil, err
		}

	} else {
		v, err = vssd.NewHardwareIsolated(srv.dev, id, channels, cfg.Utilization)
		if err != nil {
			return nil, err
		}
	}

	inst := &instance{
		id: id, v: v, server: srv, pairIdx: pairIdx,
		replicaID: replicaID, primary: primary,
		cache: newWriteCache(cfg.WriteCachePages),
		peer:  peerOf(group, v),
		queue: sched.New(sched.Config{
			Policy:      cfg.SchedPolicy,
			Coordinated: cfg.coordinated(),
		}),
		pred:            predictor.NewLatency(predictor.DefaultWindow),
		idle:            predictor.NewIdle(predictor.DefaultAlpha, cfg.IdleGCThreshold),
		maxInflight:     2 * len(channels),
		group:           group,
		replicaIdleHint: true,
	}
	srv.insts[id] = inst
	r.insts[id] = inst
	return inst, nil
}

// hermesTransport delivers replication messages between the two servers of
// a pair over the simulated network (two hops via the ToR), and applies
// replica writes to the follower's cache.
func (r *Rack) hermesTransport(pri, rep *instance) replication.Transport {
	byNode := func(node int) *instance {
		if node == 0 {
			return pri
		}
		return rep
	}
	return func(msg replication.Message) {
		dst := byNode(msg.To)
		src := byNode(1 - msg.To)
		delay := r.net.PathLatency(r.eng.Now(), 2) +
			r.cluster.spine.Latency(src.server.rackIdx, dst.server.rackIdx)
		if src.server.rackIdx != dst.server.rackIdx {
			// Cross-rack replication is foreground spine traffic too:
			// invalidations carry the written page, acks a bare header.
			delay += r.cluster.spine.MeterForeground(
				r.cluster.spine.MessageBytes(msg.Type == replication.MsgInv))
		}
		r.eng.AfterNamed(delay, "hermes.msg", func(sim.Time) {
			if !dst.server.reachable() {
				return // messages to a crashed or isolated server are lost
			}
			if msg.Type == replication.MsgInv {
				// The invalidation carries the write: the follower caches
				// it for background flush.
				dst.server.applyReplicaWrite(dst, msg.LPN)
			}
			dst.repl.Handle(msg)
		})
	}
}

// newGenerator builds the pair's workload generator sized to the primary's
// preconditioned key space.
func (r *Rack) newGenerator(p int, pri *instance) workload.Generator {
	keys := uint64(float64(pri.v.FTL.LogicalPages()) * r.cfg.KeyspaceFrac)
	return r.makeGenerator(p, keys)
}

// makeGenerator builds one volume's workload generator over keys logical
// pages.
func (r *Rack) makeGenerator(volume int, keys uint64) workload.Generator {
	cfg := r.cfg
	if keys < 64 {
		keys = 64
	}
	rng := r.rng.Fork(int64(200 + volume))
	if cfg.Workload.Name == "" || cfg.Workload.Name == "YCSB" {
		return workload.NewYCSB(rng, keys, cfg.Workload.WriteFrac, cfg.Workload.MeanGap)
	}
	gen, err := workload.ByName(cfg.Workload.Name, rng, keys, cfg.Workload.MeanGap)
	if err != nil {
		panic(err) // Validate accepted the config; ByName must agree
	}
	return gen
}

// allInstances returns every vSSD instance in deterministic volume order
// (pairs, then erasure-coded groups).
func (r *Rack) allInstances() []*instance {
	out := make([]*instance, 0, 2*len(r.pairs))
	for _, pr := range r.pairs {
		out = append(out, pr.primary, pr.replica)
	}
	for _, g := range r.groups {
		out = append(out, g.insts...)
	}
	return out
}

// precondition fills each instance's key space and fragments it until
// roughly half the free blocks are consumed (§4.1), without charging
// virtual time.
func (r *Rack) precondition() {
	for _, inst := range r.allInstances() {
		ftls := []*ssd.FTL{inst.v.FTL}
		if inst.peer != nil {
			ftls = append(ftls, inst.peer.FTL)
		}
		for _, ftl := range ftls {
			keys := int(float64(ftl.LogicalPages()) * r.cfg.KeyspaceFrac)
			if keys < 64 {
				keys = 64
			}
			for lpn := 0; lpn < keys; lpn++ {
				if _, err := ftl.Write(lpn); err != nil {
					ftl.CollectOnce()
					lpn--
				}
			}
			// Fragment until just above the soft threshold so every
			// system reaches its GC steady state within the compressed
			// simulation horizon (the paper preconditions to 50% free and
			// runs for minutes; this matches where that converges).
			target := r.cfg.SoftThreshold + 0.06
			z := sim.NewZipf(r.rng.Fork(int64(300+inst.id)), 0.99, uint64(keys))
			for ftl.FreeRatio() > target {
				if _, err := ftl.Write(int(z.Next())); err != nil {
					break
				}
			}
		}
	}
}

// Keyspace returns the per-volume logical key count the workload touches.
func (r *Rack) Keyspace() int {
	if len(r.groups) > 0 {
		g := r.groups[0]
		perChunk := int(float64(g.insts[0].v.FTL.LogicalPages()) * r.cfg.KeyspaceFrac)
		return perChunk * g.spec.K
	}
	ftl := r.pairs[0].primary.v.FTL
	return int(float64(ftl.LogicalPages()) * r.cfg.KeyspaceFrac)
}

// Engine exposes the simulation engine (tests).
func (r *Rack) Engine() *sim.Engine { return r.eng }

// Shards exposes the rack's sharded topology: shard 0 is the coordinator
// engine the datapath runs on (== Engine()), shards 1..racks the
// per-rack engines.
func (r *Rack) Shards() *sim.ShardGroup { return r.group }

// Switch exposes the first rack's ToR switch (tests).
func (r *Rack) Switch() *switchsim.Switch { return r.sw }

// Cluster exposes the multi-rack topology layer (tests).
func (r *Rack) Cluster() *Cluster { return r.cluster }

// peerOf returns the other member of a two-member channel group, nil when
// ungrouped.
func peerOf(g *vssd.ChannelGroup, self *vssd.VSSD) *vssd.VSSD {
	if g == nil {
		return nil
	}
	for _, m := range g.Members {
		if m != self {
			return m
		}
	}
	return nil
}
