package core

import (
	"testing"

	"rackblox/internal/sim"
)

// clusterConfig is a three-rack, six-servers-per-rack cluster running
// RS(4,2) with spread placement, sized so every rack holds exactly m=2
// chunks of every stripe.
func clusterConfig() Config {
	cfg := DefaultConfig()
	cfg.System = RackBlox
	cfg.Racks = 3
	cfg.StorageServers = 6
	cfg.VSSDPairs = 3
	cfg.Redundancy = ErasureCode(4, 2)
	cfg.Placement = PlacementSpread
	cfg.Warmup = 50 * sim.Millisecond
	cfg.Duration = 300 * sim.Millisecond
	return cfg
}

func TestMultiRackClusterHealthyRun(t *testing.T) {
	res, err := Run(clusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Len() < 3000 {
		t.Fatalf("only %d samples", res.Recorder.Len())
	}
	if res.LostRequests != 0 || res.UnrecoverableStripes != 0 {
		t.Fatalf("healthy cluster lost data: lost=%d unrecov=%d",
			res.LostRequests, res.UnrecoverableStripes)
	}
	if res.CrossRackRepairBytes != 0 {
		t.Fatalf("healthy cluster moved %d repair bytes over the spine",
			res.CrossRackRepairBytes)
	}
}

func TestWholeRackFailureSpreadPlacementRecovers(t *testing.T) {
	cfg := clusterConfig()
	cfg.FailRackIndex = 1
	cfg.FailServerAt = 120 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnrecoverableStripes != 0 {
		t.Fatalf("spread placement lost %d stripes to a single-rack failure",
			res.UnrecoverableStripes)
	}
	if res.LostReads != 0 {
		t.Fatalf("%d reads lost; failover + retransmission should recover all", res.LostReads)
	}
	if res.DegradedReads == 0 {
		t.Fatal("no degraded reads despite six dead chunk holders")
	}
	if res.CrossRackRepairBytes == 0 {
		t.Fatal("rack-level repair moved no bytes over the spine")
	}
	if u := res.SpineUtilization; u <= 0 || u > 1 {
		t.Fatalf("spine utilization %f outside (0,1]", u)
	}
	// The metered link bounds repair throughput: bytes over the whole run
	// can never exceed capacity * elapsed.
	capBytes := cfg.CrossRackMBps * 1e6 * float64(res.SimulatedTime) / 1e9
	if float64(res.CrossRackRepairBytes) > capBytes {
		t.Fatalf("cross-rack repair bytes %d exceed link capacity %f",
			res.CrossRackRepairBytes, capBytes)
	}
	if res.Switch.Handoffs == 0 {
		t.Fatal("no inter-switch handoffs; reads for the dead rack's members should spill over")
	}
}

func TestWholeRackFailureCompactPlacementLosesGroups(t *testing.T) {
	cfg := clusterConfig()
	cfg.Placement = PlacementCompact
	cfg.FailRackIndex = 0
	cfg.FailServerAt = 120 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnrecoverableStripes == 0 {
		t.Fatal("compact placement survived a whole-rack failure; placement is not compact")
	}
	// Other racks' groups keep serving.
	if res.Recorder.Len() < 2000 {
		t.Fatalf("only %d samples; surviving racks stopped serving", res.Recorder.Len())
	}
}

func TestToRFailureServedByHandoff(t *testing.T) {
	cfg := clusterConfig()
	cfg.FailToRIndex = 2
	cfg.FailServerAt = 120 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A dark ToR isolates its rack but loses no data: stripes stay
	// complete on disk, reads are served degraded from the other racks.
	if res.UnrecoverableStripes != 0 {
		t.Fatalf("ToR failure destroyed %d stripes; no data should be lost",
			res.UnrecoverableStripes)
	}
	if res.LostReads != 0 {
		t.Fatalf("%d reads lost after ToR failover", res.LostReads)
	}
	if res.DegradedReads == 0 {
		t.Fatal("no degraded reads despite an isolated rack")
	}
	if res.Failovers == 0 {
		t.Fatal("ToR failure never detected")
	}
	// No chunk reconstruction: the data is intact behind the dark ToR.
	if res.RepairedStripes != 0 || res.RepairPending != 0 {
		t.Fatalf("ToR failure queued reconstruction (repaired=%d pending=%d)",
			res.RepairedStripes, res.RepairPending)
	}
}

func TestSingleRackConfigUnchangedByClusterLayer(t *testing.T) {
	// The cluster layer with one rack must behave as the original rack:
	// no spine, no handoffs, identical topology invariants.
	cfg := DefaultConfig()
	cfg.Duration = 150 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switch.Handoffs != 0 || res.CrossRackRepairBytes != 0 || res.SpineUtilization != 0 {
		t.Fatalf("single-rack run touched the spine: %+v", res.Switch)
	}
}

func TestMultiRackReplicationPairsCrossRacks(t *testing.T) {
	// Replication on a multi-rack cluster: pairs still serve, and a
	// server failure in rack 0 fails over as in the single-rack testbed.
	cfg := DefaultConfig()
	cfg.Racks = 2
	cfg.StorageServers = 3
	cfg.Warmup = 50 * sim.Millisecond
	cfg.Duration = 300 * sim.Millisecond
	cfg.FailServerIndex = 0
	cfg.FailServerAt = 120 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers == 0 {
		t.Fatal("no failover on the multi-rack replication cluster")
	}
	if res.Recorder.Len() < 3000 {
		t.Fatalf("only %d samples", res.Recorder.Len())
	}
}
