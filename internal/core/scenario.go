package core

import (
	"fmt"
	"sort"
	"time"

	"rackblox/internal/sim"
)

// Scenario timeline API: the failure-injection surface of a run is a
// typed, ordered event schedule (Config.Scenario) instead of the seven
// flat Fail*/Recover* fields it replaces. Each event carries its own
// instant, so a single run can express sequences the flat fields never
// could — server revival with catch-up repair, repeated fail/heal
// cycles, staggered rack and ToR outages. The flat fields survive as
// deprecated shims that compile down to an equivalent timeline
// (compileScenario), and one driver (Cluster.scheduleScenario) executes
// both forms, so legacy configs produce byte-identical Results.

// EventKind enumerates the typed scenario events.
type EventKind int

const (
	// EventFailServer crashes one storage server: its traffic is failed
	// over to survivors after heartbeat detection, and erasure-coded
	// chunks it held are queued for background reconstruction.
	EventFailServer EventKind = iota
	// EventFailRack crashes every server of one rack fault domain
	// (whole-rack power loss).
	EventFailRack
	// EventFailToR darkens one rack's ToR switch: servers stay alive but
	// unreachable; no data is lost.
	EventFailToR
	// EventReviveServer brings a crashed server back with blank DRAM and
	// flash: every chunk holder it hosted is rebuilt from scratch by the
	// metered reconstructor and re-registered under its own id when the
	// last chunk lands (switchsim.RestoreStripeMember); replicated
	// instances re-pair with their survivors (Hermes AddPeer).
	EventReviveServer
	// EventReviveToR un-darkens a failed ToR: blank SRAM, control-plane
	// table replay from survivors, sibling marks cleared
	// (Cluster.ReviveToR).
	EventReviveToR
)

func (k EventKind) String() string {
	switch k {
	case EventFailServer:
		return "fail-server"
	case EventFailRack:
		return "fail-rack"
	case EventFailToR:
		return "fail-tor"
	case EventReviveServer:
		return "revive-server"
	case EventReviveToR:
		return "revive-tor"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// fails reports whether the kind injects a failure (as opposed to a
// recovery).
func (k EventKind) fails() bool {
	return k == EventFailServer || k == EventFailRack || k == EventFailToR
}

// Event is one entry of a scenario timeline: a typed fault or recovery
// action applied to a server or rack index at its own instant.
type Event struct {
	Kind  EventKind
	Index int
	At    sim.Time
}

func (e Event) String() string {
	return fmt.Sprintf("%s:%d@%s", e.Kind, e.Index, time.Duration(e.At))
}

// FailServer schedules a crash of global server idx at time at.
func FailServer(idx int, at sim.Time) Event {
	return Event{Kind: EventFailServer, Index: idx, At: at}
}

// FailRack schedules a whole-rack crash of rack idx at time at.
func FailRack(idx int, at sim.Time) Event {
	return Event{Kind: EventFailRack, Index: idx, At: at}
}

// FailToR schedules a ToR-switch failure of rack idx at time at.
func FailToR(idx int, at sim.Time) Event {
	return Event{Kind: EventFailToR, Index: idx, At: at}
}

// ReviveServer schedules the revival of crashed server idx at time at.
func ReviveServer(idx int, at sim.Time) Event {
	return Event{Kind: EventReviveServer, Index: idx, At: at}
}

// ReviveToR schedules the revival of rack idx's failed ToR at time at.
func ReviveToR(idx int, at sim.Time) Event {
	return Event{Kind: EventReviveToR, Index: idx, At: at}
}

// legacyFailureConfigured reports whether any deprecated flat
// failure-injection field selects a target (and so would compile to at
// least one event).
func (c *Config) legacyFailureConfigured() bool {
	return c.FailServerIndex >= 0 || len(c.FailServers) > 0 ||
		c.FailRackIndex >= 0 || c.FailToRIndex >= 0 || c.RecoverToRIndex >= 0
}

// legacyFailureTouched additionally catches the shared flat time fields
// set on their own (FailServerAt/RecoverToRAt with every index at -1).
// Alone they inject nothing, but combined with a Scenario they signal a
// half-migrated config whose author expected the flat instant to matter
// — silently preferring the timeline would drop their intent, so the
// validator rejects the mix.
func (c *Config) legacyFailureTouched() bool {
	return c.legacyFailureConfigured() || c.FailServerAt != 0 || c.RecoverToRAt != 0
}

// legacyEvents compiles the deprecated flat fields into their timeline
// equivalent, in the order the one-shot hooks used to apply them:
// FailServerIndex, FailServers, FailRackIndex, FailToRIndex — all at
// FailServerAt — then the ToR revival. A RecoverToRIndex naming a ToR
// that never fails was a documented runtime no-op; the compiler drops
// it so the strict timeline validator (revive-before-fail is an error)
// accepts every legacy form the old validator accepted.
func (c *Config) legacyEvents() []Event {
	var out []Event
	if c.FailServerIndex >= 0 {
		out = append(out, FailServer(c.FailServerIndex, c.FailServerAt))
	}
	for _, idx := range c.FailServers {
		out = append(out, FailServer(idx, c.FailServerAt))
	}
	if c.FailRackIndex >= 0 {
		out = append(out, FailRack(c.FailRackIndex, c.FailServerAt))
	}
	if c.FailToRIndex >= 0 {
		out = append(out, FailToR(c.FailToRIndex, c.FailServerAt))
	}
	if c.RecoverToRIndex >= 0 && c.RecoverToRIndex == c.FailToRIndex {
		out = append(out, ReviveToR(c.RecoverToRIndex, c.RecoverToRAt))
	}
	return out
}

// compileScenario returns the run's effective timeline: Config.Scenario
// when set, else the deprecated flat fields compiled to events.
// Validate rejects configs that set both.
func (c *Config) compileScenario() []Event {
	if len(c.Scenario) > 0 {
		return append([]Event(nil), c.Scenario...)
	}
	return c.legacyEvents()
}

// validateScenario checks the effective timeline as a whole, walking
// the events in time order with the cluster state they would produce:
// indices must be in range, a down server or ToR cannot fail again
// before it is revived, a revival must name something that is down and
// come strictly after its failure, and crashing a rack's servers while
// darkening the same rack's ToR at one instant — double-booking one
// fault domain — is rejected (the validateFailureSpec gap). Every
// rejection is a typed *FailureSpecError.
func (c *Config) validateScenario() error {
	if len(c.Scenario) > 0 && c.legacyFailureTouched() {
		return &FailureSpecError{Field: "Scenario", Index: len(c.Scenario),
			Reason: "cannot be combined with the deprecated Fail*/Recover* fields (indices or the FailServerAt/RecoverToRAt instants); express the whole timeline as events"}
	}
	events := c.compileScenario()
	if len(events) == 0 {
		return nil
	}
	order := append([]Event(nil), events...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].At < order[j].At })

	total := c.totalServers()
	racks := c.racks()
	serverDownAt := make(map[int]sim.Time)
	torDownAt := make(map[int]sim.Time)
	rackCrashAt := make(map[int]sim.Time)
	badIndex := func(ev Event, n int) error {
		return &FailureSpecError{Field: "Scenario", Index: ev.Index,
			Reason: fmt.Sprintf("%s index out of range [0,%d)", ev.Kind, n)}
	}
	for _, ev := range order {
		if ev.At < 0 {
			return &FailureSpecError{Field: "Scenario", Index: ev.Index,
				Reason: fmt.Sprintf("%s scheduled at negative time %d", ev.Kind, ev.At)}
		}
		switch ev.Kind {
		case EventFailServer:
			if ev.Index < 0 || ev.Index >= total {
				return badIndex(ev, total)
			}
			if _, down := serverDownAt[ev.Index]; down {
				return &FailureSpecError{Field: "Scenario", Index: ev.Index,
					Reason: "server is already down at this point; it can only crash again after a revive-server"}
			}
			serverDownAt[ev.Index] = ev.At
		case EventFailRack:
			if ev.Index < 0 || ev.Index >= racks {
				return badIndex(ev, racks)
			}
			if at, down := torDownAt[ev.Index]; down && at == ev.At {
				return &FailureSpecError{Field: "Scenario", Index: ev.Index,
					Reason: "fail-rack double-books the fault domain fail-tor darkens at the same instant"}
			}
			for i := ev.Index * c.StorageServers; i < (ev.Index+1)*c.StorageServers; i++ {
				if _, down := serverDownAt[i]; down {
					return &FailureSpecError{Field: "Scenario", Index: ev.Index,
						Reason: fmt.Sprintf("fail-rack covers server %d, which is already down at this point", i)}
				}
				serverDownAt[i] = ev.At
			}
			rackCrashAt[ev.Index] = ev.At
		case EventFailToR:
			if ev.Index < 0 || ev.Index >= racks {
				return badIndex(ev, racks)
			}
			if _, down := torDownAt[ev.Index]; down {
				return &FailureSpecError{Field: "Scenario", Index: ev.Index,
					Reason: "ToR is already dark at this point; it can only fail again after a revive-tor"}
			}
			if at, crashed := rackCrashAt[ev.Index]; crashed && at == ev.At {
				return &FailureSpecError{Field: "Scenario", Index: ev.Index,
					Reason: "fail-tor double-books the fault domain fail-rack crashes at the same instant"}
			}
			torDownAt[ev.Index] = ev.At
		case EventReviveServer:
			if ev.Index < 0 || ev.Index >= total {
				return badIndex(ev, total)
			}
			at, down := serverDownAt[ev.Index]
			if !down {
				return &FailureSpecError{Field: "Scenario", Index: ev.Index,
					Reason: "revive-server names a server that is not down at this point (revive-before-fail)"}
			}
			if ev.At <= at {
				return &FailureSpecError{Field: "Scenario", Index: ev.Index,
					Reason: "revive-server must come strictly after the crash it undoes"}
			}
			delete(serverDownAt, ev.Index)
		case EventReviveToR:
			if ev.Index < 0 || ev.Index >= racks {
				return badIndex(ev, racks)
			}
			at, down := torDownAt[ev.Index]
			if !down {
				return &FailureSpecError{Field: "Scenario", Index: ev.Index,
					Reason: "revive-tor names a ToR that is not dark at this point (revive-before-fail)"}
			}
			if ev.At <= at {
				return &FailureSpecError{Field: "Scenario", Index: ev.Index,
					Reason: "revive-tor must come strictly after the ToR failure it undoes"}
			}
			delete(torDownAt, ev.Index)
		default:
			return &FailureSpecError{Field: "Scenario", Index: int(ev.Kind),
				Reason: "unknown event kind"}
		}
	}
	return nil
}
