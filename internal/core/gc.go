package core

import (
	"rackblox/internal/packet"
	"rackblox/internal/sim"
	"rackblox/internal/ssd"
)

// startGCMonitors begins the periodic free-block checks of Algorithm 2 for
// every instance. Iteration goes by volume order, not map order, so the
// RNG draws — and therefore the whole simulation — stay deterministic.
func (r *Rack) startGCMonitors() {
	for _, inst := range r.allInstances() {
		inst := inst
		// Stagger first checks so instances do not phase-lock.
		offset := sim.Time(r.rng.Int63n(int64(r.cfg.GCCheckInterval) + 1))
		r.eng.AfterNamed(offset, "gc.monitor", func(sim.Time) { r.monitorGC(inst) })
	}
}

// monitorGC is one periodic check (Algorithm 2, trigger_gc).
func (r *Rack) monitorGC(inst *instance) {
	if inst.server.failed {
		return // crashed servers run nothing, including GC monitors
	}
	now := r.eng.Now()
	if now < r.stopIssuing {
		r.eng.AfterNamed(r.cfg.GCCheckInterval, "gc.monitor", func(sim.Time) { r.monitorGC(inst) })
	}
	if inst.v.InGC(now) || inst.gcRequestInFlight {
		return
	}
	ratio := r.freeRatio(inst)
	var gcType packet.GCField
	switch {
	case ratio < r.cfg.GCThreshold:
		gcType = packet.GCRegular
	case ratio < r.cfg.SoftThreshold:
		gcType = packet.GCSoft
	case inst.idle.ShouldBackgroundGC() && ratio < r.cfg.SoftThreshold+2*r.cfg.RestoreDelta:
		// Idle cycles top up the delay budget just above the soft
		// threshold; background GC never digs further than that.
		gcType = packet.GCBackground
	default:
		return
	}

	inst.lastGCType = gcType
	switch r.cfg.System {
	case RackBlox:
		if gcType == packet.GCBackground {
			// Background GC runs without approval; the gc_op only
			// updates the switch state (§3.5.1).
			inst.bgGCEvents++
			r.startGCBurst(inst, r.restoreTarget(gcType))
			r.notifySwitchGC(inst, packet.GCBackground)
			return
		}
		r.sendGCOp(inst, gcType, 0)
	case RackBloxSoftware:
		if gcType == packet.GCBackground {
			inst.bgGCEvents++
			r.startGCBurst(inst, r.restoreTarget(gcType))
			r.controller.notify(inst, true)
			return
		}
		r.controller.requestGC(inst, gcType)
	default:
		// VDC and the Coord-I/O ablation garbage-collect uncoordinated,
		// only when they must (below the hard threshold).
		if gcType == packet.GCRegular {
			r.startGCBurst(inst, r.restoreTarget(gcType))
		}
	}
}

// restoreTarget converts the triggering condition into the free ratio a GC
// episode restores: a small hysteresis above the trigger. Background GC
// works further ahead, using idle time to bank free blocks.
func (r *Rack) restoreTarget(gcType packet.GCField) float64 {
	switch gcType {
	case packet.GCRegular:
		return r.cfg.GCThreshold + r.cfg.RestoreDelta
	case packet.GCBackground:
		return r.cfg.SoftThreshold + 2*r.cfg.RestoreDelta
	default:
		return r.cfg.SoftThreshold + r.cfg.RestoreDelta
	}
}

// freeRatio uses the channel-group ratio for software-isolated vSSDs
// (§3.5.2) and the instance's own ratio otherwise.
func (r *Rack) freeRatio(inst *instance) float64 {
	if inst.group != nil {
		inst.group.Rebalance()
		return inst.group.FreeRatio()
	}
	return inst.v.FTL.FreeRatio()
}

// sendGCOp transmits a gc_op to the ToR switch with retransmission
// (3 retries by default; an unacknowledged regular request collects
// anyway, §3.5.1).
func (r *Rack) sendGCOp(inst *instance, gcType packet.GCField, attempt int) {
	inst.gcRequestInFlight = true
	epoch := inst.gcRetries // any reply bumps this; timers compare it
	r.gcOpsSent++
	pkt := packet.Packet{
		Op:    packet.OpGC,
		GC:    gcType,
		VSSD:  inst.id,
		SrcIP: inst.server.ip,
		Port:  packet.ReservedPort,
	}
	hop := r.net.HopLatency(r.eng.Now())
	tor := r.torOf(inst.server)
	r.eng.AfterNamed(hop, "gc.op", func(sim.Time) { tor.Process(pkt) })
	r.eng.AfterNamed(hop+gcReplyTimeout, "gc.op_timeout", func(sim.Time) {
		if !inst.gcRequestInFlight || inst.gcRetries != epoch {
			return // reply arrived
		}
		if attempt+1 <= r.cfg.GCRetries {
			r.gcOpRetries++
			r.sendGCOp(inst, gcType, attempt+1)
			return
		}
		// Retries exhausted (link or switch failure).
		inst.gcRequestInFlight = false
		if gcType == packet.GCRegular {
			r.forcedGCs++
			r.startGCBurst(inst, r.restoreTarget(gcType))
		}
	})
}

// notifySwitchGC sends a fire-and-forget gc_op state update.
func (r *Rack) notifySwitchGC(inst *instance, gcType packet.GCField) {
	pkt := packet.Packet{
		Op:    packet.OpGC,
		GC:    gcType,
		VSSD:  inst.id,
		SrcIP: inst.server.ip,
		Port:  packet.ReservedPort,
	}
	hop := r.net.HopLatency(r.eng.Now())
	tor := r.torOf(inst.server)
	r.eng.AfterNamed(hop, "gc.notify", func(sim.Time) { tor.Process(pkt) })
}

// handleGCReply processes the switch's accept/delay answer.
func (r *Rack) handleGCReply(inst *instance, pkt packet.Packet) {
	inst.gcRequestInFlight = false
	inst.gcRetries++ // epoch bump cancels pending retransmission timers
	switch pkt.GC {
	case packet.GCAccept:
		if !inst.v.InGC(r.eng.Now()) {
			r.startGCBurst(inst, r.restoreTarget(inst.lastGCType))
		}
	case packet.GCDelay:
		inst.gcDelayed++
		// The next periodic check retries; by then the replica has
		// hopefully finished its own collection.
	}
}

// startGCBurst reclaims blocks until the restore target and blocks the
// involved flash channels for the work's duration.
//
// Soft and background episodes run to their restore target in one
// protected window: reads are redirected to the replica throughout, and
// the reclaimed headroom is what keeps the two replicas' GC staggered
// ("to make room for delaying GC", §3.5.1). Forced/regular GC — the
// uncoordinated path VDC always takes — does only the minimal capped work
// needed to keep accepting writes, because nothing shields reads from it.
func (r *Rack) startGCBurst(inst *instance, target float64) {
	cap := r.cfg.MaxGCBlocksPerBurst
	if r.cfg.gcCoordinated() && inst.lastGCType == packet.GCSoft {
		cap = r.cfg.SoftBurstBlocks // protected episode: bigger chunk
	}
	var burst ssd.BurstResult
	if inst.group != nil {
		burst = inst.group.GroupCollect(target, cap)
	} else {
		burst = inst.v.FTL.CollectBurst(target, cap)
	}
	if burst.Blocks == 0 {
		r.finishGC(inst)
		return
	}
	inst.gcEvents++
	var end sim.Time
	//rackvet:commutative per-channel reservations are independent and end is a max
	for ch, dur := range burst.PerChannel {
		_, e := inst.server.dev.OccupyChannel(ch, dur)
		if e > end {
			end = e
		}
	}
	inst.v.StartGC(end)
	if r.TraceGC != nil {
		r.TraceGC(inst.id, inst.lastGCType, r.eng.Now(), end, burst.Blocks)
	}
	r.tracer.RecordGC(inst.id, inst.lastGCType.String(), r.eng.Now(), end, burst.Blocks)
	r.eng.AtNamed(end, "gc.burst_end", func(sim.Time) {
		// A protected soft episode stays open — switch bit set, reads
		// redirected — until the ratio is restored. Closing and
		// immediately reopening would let reads slip into the gap and
		// stall behind the next chunk's channel reservation.
		if r.cfg.gcCoordinated() && inst.lastGCType == packet.GCSoft &&
			r.freeRatio(inst) < r.cfg.SoftThreshold {
			// Continue the protected episode chunk by chunk. Any read
			// that slipped past the switch before the GC bit was set has
			// already reserved the channel behind the finished chunk, so
			// it drains before the next chunk's reservation: slip
			// exposure is bounded by one chunk, not the whole train.
			inst.server.flushPump(inst)
			inst.server.pump(inst)
			r.startGCBurst(inst, target)
			return
		}
		inst.v.FinishGC()
		r.finishGC(inst)
		inst.server.flushPump(inst)
		inst.server.pump(inst)
	})
}

// finishGC clears coordination state after a burst completes.
func (r *Rack) finishGC(inst *instance) {
	switch r.cfg.System {
	case RackBlox:
		r.notifySwitchGC(inst, packet.GCFinish)
	case RackBloxSoftware:
		r.controller.notify(inst, false)
	}
}

// forceGC is the synchronous out-of-space path: collect immediately and
// tell the coordinator about it after the fact.
func (s *server) forceGC(inst *instance) {
	r := s.rack
	r.forcedGCs++
	if inst.v.InGC(r.eng.Now()) {
		// Burst timing already accounted; reclaim state only so the
		// caller's retry can allocate.
		inst.v.FTL.CollectBurst(r.cfg.GCThreshold, r.cfg.MaxGCBlocksPerBurst)
		return
	}
	r.startGCBurst(inst, r.restoreTarget(packet.GCRegular))
	if r.cfg.System == RackBlox {
		r.notifySwitchGC(inst, packet.GCRegular)
	}
}

// controller is the logically centralized VDC controller that RackBlox
// (Software) extends with GC awareness (§4.1). It runs on its own server:
// every interaction costs two network hops each way plus processing.
type controller struct {
	rack     *Rack
	ip       uint32
	inGC     map[uint32]bool
	replicas map[uint32]uint32
}

func newController(r *Rack) *controller {
	return &controller{
		rack:     r,
		ip:       packet.IP4(10, 0, 0, 250),
		inGC:     make(map[uint32]bool),
		replicas: make(map[uint32]uint32),
	}
}

func (c *controller) register(pri, rep *instance) {
	c.replicas[pri.id] = rep.id
	c.replicas[rep.id] = pri.id
}

// registerGroup records an erasure-coded group: each member's "replica"
// is the next member in group order. The software controller only
// consults one peer's GC state — a weaker stagger than the switch's
// whole-group check, one of the costs of the software design point.
func (c *controller) registerGroup(g *ecGroup) {
	for i, inst := range g.insts {
		c.replicas[inst.id] = g.insts[(i+1)%len(g.insts)].id
	}
}

// receive exists for symmetry with servers; controller traffic in this
// simulation flows through direct scheduling in requestGC/notify.
func (c *controller) receive(pkt packet.Packet) {}

// requestGC asks the controller for permission to collect. The reply
// carries the replica's state so the server can redirect reads itself.
func (c *controller) requestGC(inst *instance, gcType packet.GCField) {
	r := c.rack
	inst.gcRequestInFlight = true
	trip := r.net.PathLatency(r.eng.Now(), 2) + controllerProc
	r.eng.AfterNamed(trip, "gc.ctrl_request", func(sim.Time) {
		replicaBusy := c.inGC[c.replicas[inst.id]]
		grant := gcType != packet.GCSoft || !replicaBusy
		if grant {
			c.inGC[inst.id] = true
			// Tell the replica's server its peer is collecting so it
			// stops redirecting toward it (stale by one trip, the
			// software coordination cost).
			if rep := r.insts[c.replicas[inst.id]]; rep != nil {
				rep.replicaIdleHint = false
			}
		} else {
			r.delayedByCtrl++
		}
		back := r.net.PathLatency(r.eng.Now(), 2)
		r.eng.AfterNamed(back, "gc.ctrl_reply", func(sim.Time) {
			inst.gcRequestInFlight = false
			inst.replicaIdleHint = !replicaBusy
			if grant {
				if !inst.v.InGC(r.eng.Now()) {
					r.startGCBurst(inst, r.restoreTarget(gcType))
				}
			} else {
				inst.gcDelayed++
			}
		})
	})
}

// notify updates the controller's GC state (start of background GC or
// finish of any GC), fire-and-forget.
func (c *controller) notify(inst *instance, started bool) {
	r := c.rack
	trip := r.net.PathLatency(r.eng.Now(), 2) + controllerProc
	r.eng.AfterNamed(trip, "gc.ctrl_notify", func(sim.Time) {
		c.inGC[inst.id] = started
		if rep := r.insts[c.replicas[inst.id]]; rep != nil {
			rep.replicaIdleHint = !started
		}
	})
}
