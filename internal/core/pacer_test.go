package core

import (
	"math/rand"
	"testing"

	"rackblox/internal/sim"
)

// TestPacedRepairAlwaysCompletes is the pacer's no-starvation property
// test: for random SLO targets (including absurdly tight ones the
// controller can never satisfy), random rate bounds, sensor windows and
// tick intervals, and random fail/revive/fail-again timelines, repair
// always drains — the MinRateMBps floor guarantees progress no matter
// how hard the AIMD loop backs off — and the spine byte counters
// reconcile exactly once the run has drained.
func TestPacedRepairAlwaysCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 6; i++ {
		cfg := recoveryConfig()
		cfg.Seed = int64(1000 + i)
		cfg.Duration = 300 * sim.Millisecond
		cfg.CrossRackMBps = 40 + rng.Float64()*160
		min := 0.5 + rng.Float64()*3.5
		cfg.RepairSLO = RepairSLO{
			// 0.1ms..20ms: the low end is tighter than any read the
			// cluster can serve, pinning the rate at the floor.
			TargetP99:   sim.Time(100+rng.Intn(20_000)) * sim.Microsecond,
			MinRateMBps: min,
			MaxRateMBps: min + rng.Float64()*100,
			Window:      32 + rng.Intn(256),
			Interval:    sim.Time(1+rng.Intn(5)) * sim.Millisecond,
		}

		// Every server hosts exactly one chunk holder here (3 groups x 6
		// members over 18 servers), so any crash queues repair work.
		victim := rng.Intn(cfg.totalServers())
		failAt := sim.Time(60+rng.Intn(60)) * sim.Millisecond
		reviveAt := failAt + sim.Time(120+rng.Intn(80))*sim.Millisecond
		events := []Event{FailServer(victim, failAt)}
		switch rng.Intn(3) {
		case 1:
			events = append(events, ReviveServer(victim, reviveAt))
		case 2:
			events = append(events, ReviveServer(victim, reviveAt),
				FailServer(victim, reviveAt+60*sim.Millisecond))
		}
		cfg.Scenario = events

		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if res.RepairPending != 0 {
			t.Errorf("case %d (slo %+v, events %v): %d repair tasks starved",
				i, cfg.RepairSLO, events, res.RepairPending)
		}
		if res.RepairedStripes == 0 {
			t.Errorf("case %d: crash of server %d repaired no stripes", i, victim)
		}
		if res.RepairCompletionTime <= 0 {
			t.Errorf("case %d: repair completion time %d, want a finite instant",
				i, res.RepairCompletionTime)
		}
		if res.CrossRackRepairBytes != res.CrossRackRepairBytesOffered {
			t.Errorf("case %d: drained run left repair bytes unreconciled: delivered %d offered %d",
				i, res.CrossRackRepairBytes, res.CrossRackRepairBytesOffered)
		}
		if res.ForegroundCrossRackBytes != res.ForegroundCrossRackBytesOffered {
			t.Errorf("case %d: drained run left foreground bytes unreconciled: delivered %d offered %d",
				i, res.ForegroundCrossRackBytes, res.ForegroundCrossRackBytesOffered)
		}
		if f := res.SLOViolationFraction; f < 0 || f > 1 {
			t.Errorf("case %d: violation fraction %f outside [0,1]", i, f)
		}
		if len(res.RepairRateTimeline) == 0 {
			t.Errorf("case %d: empty rate timeline with pacing enabled", i)
		}
		for _, pt := range res.RepairRateTimeline {
			if pt.MBps < cfg.RepairSLO.MinRateMBps-1e-9 || pt.MBps > cfg.RepairSLO.MaxRateMBps+1e-9 {
				t.Errorf("case %d: rate %f escaped bounds [%f, %f]",
					i, pt.MBps, cfg.RepairSLO.MinRateMBps, cfg.RepairSLO.MaxRateMBps)
			}
		}
	}
}

// TestSpineByteCountersReconcileMidRun is the regression test for the
// enqueue-time byte accounting bug (sim.Bandwidth counted bytes at
// Transfer time): stopping the engine mid-run must show delivered <=
// offered — strictly less while a repair batch is on the wire — and
// draining the engine reconciles the two exactly.
func TestSpineByteCountersReconcileMidRun(t *testing.T) {
	cfg := recoveryConfig()
	cfg.Duration = 200 * sim.Millisecond
	cfg.Scenario = []Event{FailServer(0, 60*sim.Millisecond)}
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the run by hand so the clock can stop mid-transfer.
	r.stopIssuing = cfg.Warmup + cfg.Duration
	r.startClients()
	r.startGCMonitors()
	r.scheduleFailure()

	c := r.cluster
	sawInFlight := false
	for now := 60 * sim.Millisecond; now <= 500*sim.Millisecond; now += sim.Millisecond {
		r.eng.RunUntil(now)
		if c.spine.crossRepairBytes > c.spine.crossRepairOffered {
			t.Fatalf("at %d: repair delivered %d > offered %d",
				now, c.spine.crossRepairBytes, c.spine.crossRepairOffered)
		}
		if c.spine.foregroundBytes > c.spine.foregroundOffered {
			t.Fatalf("at %d: foreground delivered %d > offered %d",
				now, c.spine.foregroundBytes, c.spine.foregroundOffered)
		}
		if c.spine.crossRepairBytes < c.spine.crossRepairOffered {
			sawInFlight = true
			break
		}
	}
	if !sawInFlight {
		t.Error("never observed a repair transfer in flight; the regression scenario is dead")
	}
	if c.spine.crossRepairOffered == 0 {
		t.Fatal("the crash queued no cross-rack repair traffic")
	}

	r.eng.Run() // drain
	if c.spine.crossRepairBytes != c.spine.crossRepairOffered {
		t.Errorf("drained repair bytes unreconciled: delivered %d offered %d",
			c.spine.crossRepairBytes, c.spine.crossRepairOffered)
	}
	if c.spine.foregroundBytes != c.spine.foregroundOffered {
		t.Errorf("drained foreground bytes unreconciled: delivered %d offered %d",
			c.spine.foregroundBytes, c.spine.foregroundOffered)
	}
	if c.spine.crossRepairBytes == 0 || c.spine.foregroundBytes == 0 {
		t.Errorf("spine moved no bytes: repair %d foreground %d",
			c.spine.crossRepairBytes, c.spine.foregroundBytes)
	}
}
