package core

import (
	"fmt"

	"rackblox/internal/sim"
	"rackblox/internal/stats"
	"rackblox/internal/trace"
)

// SLO-aware spine repair pacing. The ROADMAP's last open co-design loop:
// background reconstruction shares the cross-rack spine with foreground
// traffic, so an aggressive repair blows up the foreground read tail
// while a timid one stretches the window of reduced redundancy. The
// RepairPacer closes the loop with feedback: a windowed quantile tracker
// observes every completed foreground read, a periodic tick compares the
// windowed p99 against the configured SLO target, and an AIMD rule
// adjusts the repair admission rate between the configured bounds. The
// rate is enforced by a sim.PacedBandwidth token lane layered on the
// spine — foreground transfers keep their FIFO access to the link while
// repair batches wait for tokens that refill at the controller's rate —
// and enqueued repair batches are split to token-sized transfers
// (ec.Reconstructor.NextUpTo) so one batch cannot monopolize the link in
// a single burst.

// RepairSLO configures the latency-SLO-aware repair rate controller
// (Config.RepairSLO). The zero value disables pacing: repair is admitted
// whenever the GC idle window allows, as before.
type RepairSLO struct {
	// TargetP99 is the foreground read p99 the controller defends,
	// measured over the sliding window; 0 disables pacing entirely.
	TargetP99 sim.Time
	// MinRateMBps floors the repair admission rate so repair always
	// makes progress — the no-starvation guarantee (default 1 MB/s).
	MinRateMBps float64
	// MaxRateMBps caps the admission rate (default: the spine's
	// CrossRackMBps — repair may use the whole link when foreground
	// latency permits).
	MaxRateMBps float64
	// Window is how many recent foreground reads the p99 sensor holds
	// (default 128).
	Window int
	// Interval is the controller's adjustment period (default 2ms).
	Interval sim.Time
}

// Enabled reports whether the controller is active.
func (s RepairSLO) Enabled() bool { return s.TargetP99 > 0 }

// withDefaults fills unset tuning fields from the cluster configuration.
func (s RepairSLO) withDefaults(crossRackMBps float64) RepairSLO {
	if s.MinRateMBps <= 0 {
		s.MinRateMBps = 1
	}
	if s.MaxRateMBps <= 0 {
		s.MaxRateMBps = crossRackMBps
	}
	if s.MaxRateMBps < s.MinRateMBps {
		s.MaxRateMBps = s.MinRateMBps
	}
	if s.Window <= 0 {
		s.Window = 128
	}
	if s.Interval <= 0 {
		s.Interval = 2 * sim.Millisecond
	}
	return s
}

// validate rejects contradictory controller settings; defaults are
// applied later, so only explicitly-set fields can conflict.
func (s RepairSLO) validate(racks int, crossRackMBps float64) error {
	if !s.Enabled() {
		return nil
	}
	if racks < 2 {
		return &FailureSpecError{Field: "RepairSLO", Index: racks,
			Reason: "pacing meters the cross-rack spine; it needs Racks > 1"}
	}
	if s.MinRateMBps < 0 || s.MaxRateMBps < 0 {
		return &FailureSpecError{Field: "RepairSLO", Index: 0,
			Reason: "repair rate bounds must be non-negative"}
	}
	if s.MinRateMBps > 0 && s.MaxRateMBps > 0 && s.MinRateMBps > s.MaxRateMBps {
		return &FailureSpecError{Field: "RepairSLO", Index: 0,
			Reason: "MinRateMBps exceeds MaxRateMBps"}
	}
	if s.MinRateMBps > crossRackMBps {
		// A floor above the spine's capacity can never back off below
		// what the link carries: the no-starvation guarantee would come
		// at the price of a permanently violated SLO.
		return &FailureSpecError{Field: "RepairSLO", Index: int(s.MinRateMBps),
			Reason: fmt.Sprintf("MinRateMBps exceeds the %g MB/s spine capacity (CrossRackMBps)", crossRackMBps)}
	}
	if s.Window < 0 || s.Interval < 0 {
		return &FailureSpecError{Field: "RepairSLO", Index: 0,
			Reason: "window and interval must be non-negative"}
	}
	return nil
}

// RatePoint is one entry of Result.RepairRateTimeline: the admission
// rate the controller set at a virtual-time instant.
type RatePoint struct {
	At   sim.Time `json:"at"`
	MBps float64  `json:"mbps"`
}

// AIMD tuning of the controller: additive probe per tick while the tail
// is under target, multiplicative backoff on a violated window.
const (
	pacerAdditiveMBps = 0.25
	pacerDecrease     = 0.25
)

// RepairPacer is the feedback controller instance wired into one run.
type RepairPacer struct {
	slo      RepairSLO // normalized (withDefaults applied)
	win      *stats.WindowedQuantile
	lane     *sim.PacedBandwidth
	pageSize int
	rateMBps float64
	ticks    int
	violated int
	timeline []RatePoint
}

// newRepairPacer builds the controller and its token lane on the spine.
// The rate starts at the floor: repair ramps up additively while the
// foreground tail stays under target, rather than opening at full blast
// and violating the SLO before the first feedback lands.
func newRepairPacer(eng *sim.Engine, spine *sim.Bandwidth, cfg *Config) *RepairPacer {
	slo := cfg.RepairSLO.withDefaults(cfg.CrossRackMBps)
	p := &RepairPacer{
		slo:      slo,
		win:      stats.NewWindowedQuantile(slo.Window),
		pageSize: cfg.Geometry.PageSize,
		rateMBps: slo.MinRateMBps,
	}
	// The bucket holds one full repair batch: enough credit to admit the
	// largest claim after an idle stretch, small enough that a burst
	// cannot occupy the spine for more than one batch's worth.
	burst := float64(repairBatchStripes * cfg.Geometry.PageSize)
	p.lane = sim.NewPacedBandwidth(eng, spine, p.rateMBps*1e6, burst)
	p.timeline = append(p.timeline, RatePoint{At: 0, MBps: p.rateMBps})
	return p
}

// observeRead feeds one completed foreground read latency to the sensor.
func (p *RepairPacer) observeRead(total sim.Time) { p.win.Observe(total) }

// tick runs one AIMD adjustment: back off multiplicatively when the
// windowed p99 violates the target, probe additively otherwise, always
// inside [MinRateMBps, MaxRateMBps]. Each backoff resets the latency
// window, so one contention episode is punished once per window of fresh
// evidence instead of once per tick while stale samples drain — and the
// additive probe waits for the refilled window (half capacity) before
// trusting that the tail really is back under target. The probe also
// requires repair to actually be flowing (active): a healthy window
// with no repair traffic is no evidence that a higher rate is safe, and
// without the gate the rate would drift to the ceiling between failures
// and the next crash's repair would open at full blast — so while the
// pipeline is idle the rate decays back toward the floor instead.
func (p *RepairPacer) tick(now sim.Time, active bool) {
	p.ticks++
	old := p.rateMBps
	switch p99 := p.win.P99(); {
	case p.win.Len() > 0 && p99 > p.slo.TargetP99:
		p.violated++
		p.rateMBps *= pacerDecrease
		if p.rateMBps < p.slo.MinRateMBps {
			p.rateMBps = p.slo.MinRateMBps
		}
		p.win.Reset()
	case !active:
		p.rateMBps *= pacerDecrease
		if p.rateMBps < p.slo.MinRateMBps {
			p.rateMBps = p.slo.MinRateMBps
		}
	case p.win.Len() >= (p.slo.Window+1)/2:
		p.rateMBps += pacerAdditiveMBps
		if p.rateMBps > p.slo.MaxRateMBps {
			p.rateMBps = p.slo.MaxRateMBps
		}
	}
	if p.rateMBps != old {
		p.lane.SetRate(p.rateMBps * 1e6)
		p.timeline = append(p.timeline, RatePoint{At: now, MBps: p.rateMBps})
	}
}

// batchFanout is the spine fan-out a claim is sized for: one granted
// batch moves up to one batch transfer per remote source, so the claim
// is cut to keep the whole fanned-out burst — not just the charged
// chunk volume — inside roughly one controller interval. k-1 remote
// sources is the worst case for the small RS codes the experiments run;
// settle() trues up the token accounting afterwards either way, this
// constant only bounds the instantaneous burst a foreground transfer
// can queue behind.
const batchFanout = 4

// batchStripes is the token-sized claim limit: the stripes whose
// fanned-out spine bytes one controller interval refills.
func (p *RepairPacer) batchStripes() int {
	bytesPerTick := p.rateMBps * 1e6 * float64(p.slo.Interval) / float64(sim.Second)
	n := int(bytesPerTick) / (p.pageSize * batchFanout)
	if n < 1 {
		n = 1
	}
	if n > repairBatchStripes {
		n = repairBatchStripes
	}
	return n
}

// admit gates one claimed repair batch through the token lane; run fires
// once the tokens mature (FIFO after earlier admissions).
func (p *RepairPacer) admit(bytes int64, run func()) {
	p.lane.Admit(bytes, func(sim.Time) { run() })
}

// settle reconciles a granted batch's token charge against the spine
// bytes it actually moved. The charge at admission is the rebuilt chunk
// volume — the cross-rack fan-out (one batch transfer per remote
// source) is only known once the sources are picked — so the difference
// is settled here as token debt or refund, keeping the long-run spine
// repair byte rate bounded by the controller's rate as RepairSLO
// documents, not off by the data-dependent source fan-out.
func (p *RepairPacer) settle(charged, actualSpine int64) {
	p.lane.Consume(actualSpine - charged)
}

// violationFraction is the fraction of controller ticks whose windowed
// p99 exceeded the target (Result.SLOViolationFraction).
func (p *RepairPacer) violationFraction() float64 {
	if p.ticks == 0 {
		return 0
	}
	return float64(p.violated) / float64(p.ticks)
}

// pacerTick runs one controller adjustment and re-arms itself while the
// run is issuing or repair work remains anywhere in the pipeline.
func (r *Rack) pacerTick() {
	now := r.eng.Now()
	active := r.repairActive()
	before := len(r.pacer.timeline)
	r.pacer.tick(now, active)
	if len(r.pacer.timeline) > before {
		// The AIMD controller moved the admission rate: a control-plane
		// moment for the flight recorder.
		r.tracer.Instant("pacer", "rate_change", now,
			trace.Int("rate_kbps", int64(r.pacer.rateMBps*1000)))
	}
	if now < r.stopIssuing || active {
		r.eng.AfterNamed(r.pacer.slo.Interval, "paced.tick", func(sim.Time) { r.pacerTick() })
	}
}

// repairActive reports whether any repair work is queued, admitted, or
// in flight.
func (r *Rack) repairActive() bool {
	if r.pacer != nil && r.pacer.lane.Queued() > 0 {
		return true
	}
	for _, g := range r.groups {
		if g.repairInFlight || g.recon.Pending() > 0 {
			return true
		}
	}
	return false
}
