package core

import (
	"reflect"
	"testing"

	"rackblox/internal/sim"
	"rackblox/internal/walltime"
)

// TestShardedClusterParallelByteIdentical is the sharded model's replay
// gate: across seeds and rack counts, the parallel run's merged result —
// every counter, latency sum, clock, and per-handler event count — must
// equal the sequential oracle's exactly.
func TestShardedClusterParallelByteIdentical(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, racks := range []int{1, 2, 4, 8} {
			cfg := ShardedClusterConfig{
				Racks:             racks,
				ServersPerRack:    16,
				ChainsPerRack:     16,
				OpsPerRack:        2_000,
				CrossRackPermille: 50,
				Seed:              seed,
			}
			seq := RunShardedCluster(cfg, false)
			par := RunShardedCluster(cfg, true)
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("seed=%d racks=%d: parallel diverged from sequential\nseq: %+v\npar: %+v",
					seed, racks, seq, par)
			}
			if seq.Ops != int64(racks)*cfg.OpsPerRack {
				t.Errorf("seed=%d racks=%d: ops=%d, want %d", seed, racks, seq.Ops, int64(racks)*cfg.OpsPerRack)
			}
			if racks > 1 && seq.CrossOps == 0 {
				t.Errorf("seed=%d racks=%d: no ops crossed the spine", seed, racks)
			}
			if racks == 1 && (seq.CrossOps != 0 || seq.SpineBytes != 0) {
				t.Errorf("seed=%d: single rack moved spine traffic: %+v", seed, seq)
			}
		}
	}
}

// TestShardedClusterAccounting checks the cross-op bookkeeping: every
// cross op moves exactly one request and one response frame, and latency
// accounting covers every op.
func TestShardedClusterAccounting(t *testing.T) {
	cfg := ShardedClusterConfig{
		Racks:             4,
		ServersPerRack:    8,
		ChainsPerRack:     8,
		OpsPerRack:        1_000,
		CrossRackPermille: 200,
		PageSize:          4096,
		Seed:              7,
	}
	res := RunShardedCluster(cfg, true)
	wantBytes := 2 * res.CrossOps * (frameHeaderBytes + cfg.PageSize)
	if res.SpineBytes != wantBytes {
		t.Errorf("SpineBytes = %d, want %d (2 frames per cross op)", res.SpineBytes, wantBytes)
	}
	if res.ByHandler["spine.req"] != uint64(res.CrossOps) ||
		res.ByHandler["spine.resp"] != uint64(res.CrossOps) {
		t.Errorf("spine handler counts %v don't match CrossOps %d", res.ByHandler, res.CrossOps)
	}
	if res.ByHandler["shard.done"] != uint64(res.Ops) {
		t.Errorf("shard.done = %d, want one completion per op (%d)", res.ByHandler["shard.done"], res.Ops)
	}
	if res.LatencySum <= 0 || res.MaxLatency <= 0 || res.End <= 0 {
		t.Errorf("degenerate latency accounting: %+v", res)
	}
	// Cross ops pay at least four propagation hops; the max latency must
	// reflect that floor.
	if res.MaxLatency < 4*cfg.CrossRackLatency && res.CrossOps > 0 {
		t.Errorf("MaxLatency %v below the 4-hop cross-rack floor", res.MaxLatency)
	}
}

// TestShardedClusterSoak is the headline scale target: 10 racks × 10k
// servers × 10M ops of full per-I/O modeling through the sharded runner,
// inside a generous wall-clock ceiling. Skipped in -short runs.
func TestShardedClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in short mode")
	}
	cfg := ShardedClusterConfig{
		Racks:             10,
		ServersPerRack:    1_000, // 10k servers total
		ChainsPerRack:     256,
		OpsPerRack:        1_000_000, // 10M ops total
		CrossRackPermille: 20,
		Seed:              1,
	}
	begin := walltime.Start()
	res := RunShardedCluster(cfg, true)
	elapsed := walltime.Elapsed(begin)
	if res.Ops != 10_000_000 {
		t.Fatalf("soak ran %d ops, want 10M", res.Ops)
	}
	if res.Events < uint64(res.Ops) {
		t.Fatalf("events %d below op count %d", res.Events, res.Ops)
	}
	const ceiling = 120 * sim.Second
	if sim.Time(elapsed) > ceiling {
		t.Fatalf("soak took %v wall-clock, ceiling %v", elapsed, ceiling)
	}
	t.Logf("10 racks × 10k servers × 10M ops: %d events in %v (end=%v)",
		res.Events, elapsed, res.End)
}
