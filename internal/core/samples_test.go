package core

import "rackblox/internal/stats"

// rawSamples exposes recorded samples for white-box assertions.
func rawSamples(res *Result) []stats.Sample { return stats.RawSamples(res.Recorder) }
