package core

import (
	"testing"
	"testing/quick"
)

func TestCacheInsertAndFull(t *testing.T) {
	c := newWriteCache(2)
	if c.Full() {
		t.Fatal("empty cache full")
	}
	if !c.Insert(1, 10) || !c.Insert(1, 11) {
		t.Fatal("inserts rejected below capacity")
	}
	if !c.Full() {
		t.Fatal("cache not full at capacity")
	}
	if c.Insert(1, 12) {
		t.Fatal("insert accepted over capacity")
	}
}

func TestCacheAbsorbsRewrites(t *testing.T) {
	c := newWriteCache(2)
	c.Insert(1, 10)
	for i := 0; i < 5; i++ {
		if !c.Insert(1, 10) {
			t.Fatal("rewrite of dirty page rejected")
		}
	}
	ins, abs := c.Stats()
	if ins != 1 || abs != 5 {
		t.Fatalf("inserted=%d absorbed=%d, want 1/5", ins, abs)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestCacheContainsPerVSSD(t *testing.T) {
	c := newWriteCache(4)
	c.Insert(1, 10)
	if !c.Contains(1, 10) {
		t.Fatal("missing dirty page")
	}
	if c.Contains(2, 10) {
		t.Fatal("wrong vSSD matched")
	}
}

func TestCacheFlushOrder(t *testing.T) {
	c := newWriteCache(4)
	c.Insert(1, 10)
	c.Insert(1, 11)
	c.Insert(1, 12)
	v, lpn, ok := c.NextFlush()
	if !ok || v != 1 || lpn != 10 {
		t.Fatalf("first flush = %d/%d/%v, want oldest", v, lpn, ok)
	}
	_, lpn2, _ := c.NextFlush()
	if lpn2 != 11 {
		t.Fatalf("second flush = %d, want 11", lpn2)
	}
}

func TestCacheFlushSkipsRewritten(t *testing.T) {
	c := newWriteCache(4)
	c.Insert(1, 10)
	c.Insert(1, 11)
	// Flush 10, then rewrite it: a new FIFO entry appears.
	c.NextFlush()
	c.FlushDone()
	c.Insert(1, 10)
	_, lpn, ok := c.NextFlush()
	if !ok || lpn != 11 {
		t.Fatalf("flush = %d, want 11 before the rewritten 10", lpn)
	}
	_, lpn, ok = c.NextFlush()
	if !ok || lpn != 10 {
		t.Fatalf("flush = %d, want rewritten 10", lpn)
	}
}

func TestCacheFlushingCountsAgainstCapacity(t *testing.T) {
	c := newWriteCache(2)
	c.Insert(1, 10)
	c.Insert(1, 11)
	c.NextFlush() // 10 now flushing, still occupying DRAM
	if !c.Full() {
		t.Fatal("cache not full while flush in flight")
	}
	c.FlushDone()
	if c.Full() {
		t.Fatal("cache full after flush completed")
	}
	if !c.Insert(1, 12) {
		t.Fatal("insert rejected after slot freed")
	}
}

func TestCacheEmptyFlush(t *testing.T) {
	c := newWriteCache(2)
	if _, _, ok := c.NextFlush(); ok {
		t.Fatal("flush from empty cache")
	}
	c.FlushDone() // must not underflow
	if c.Full() {
		t.Fatal("phantom flushing count")
	}
}

// Property: Len never exceeds capacity and dirty+flushing is conserved
// across any operation sequence.
func TestCacheCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := newWriteCache(8)
		flushing := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				c.Insert(uint32(op%2), uint32(op%16))
			case 2:
				if _, _, ok := c.NextFlush(); ok {
					flushing++
				}
			case 3:
				if flushing > 0 {
					c.FlushDone()
					flushing--
				}
			}
			if c.Len() > 8 {
				return false
			}
			if c.Len()+flushing > 8 && !c.Full() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
