// Package walltime is the ONE sanctioned wall-clock boundary in the
// simulation tree.
//
// Simulation logic runs exclusively on virtual sim.Time; the rackvet
// simtime analyzer rejects direct time.Now/Since/Sleep/timer use
// everywhere under internal/ except this package. Code that has a
// legitimate claim on host time — measuring how fast the simulator
// itself executes (soak throughput ceilings, benchmark reporting) —
// imports walltime instead, so every wall-clock read in the tree is
// auditable from this single choke point.
//
// The rule of use: a walltime measurement may be compared, logged, or
// asserted on, but its value must never flow into simulation state,
// event scheduling, or Results. If you are tempted to import this
// package from an event handler, the design is wrong, not the rule.
package walltime

import "time"

// Stamp is an opaque wall-clock reading, handed back to Elapsed.
type Stamp struct{ t time.Time }

// Start reads the host clock for a subsequent Elapsed measurement.
func Start() Stamp { return Stamp{t: time.Now()} }

// Elapsed returns the host time spent since s was taken.
func Elapsed(s Stamp) time.Duration { return time.Since(s.t) }
