package replication

import (
	"testing"
	"testing/quick"
)

func TestStateAndMsgStrings(t *testing.T) {
	if Valid.String() != "valid" || Invalid.String() != "invalid" || Writing.String() != "writing" {
		t.Fatal("state strings")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state string empty")
	}
	if MsgInv.String() != "INV" || MsgAck.String() != "ACK" || MsgVal.String() != "VAL" {
		t.Fatal("msg strings")
	}
	if MsgType(9).String() == "" {
		t.Fatal("unknown msg string empty")
	}
}

func TestTimestampOrder(t *testing.T) {
	a := Timestamp{Version: 1, NodeID: 0}
	b := Timestamp{Version: 1, NodeID: 1}
	c := Timestamp{Version: 2, NodeID: 0}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Fatal("timestamp ordering broken")
	}
	if a.Less(a) {
		t.Fatal("timestamp not irreflexive")
	}
}

func TestFreshKeysReadableEverywhere(t *testing.T) {
	g := NewGroup(3)
	for _, n := range g.Nodes {
		if !n.CanRead(42) {
			t.Fatalf("node %d cannot read unwritten key", n.ID())
		}
	}
}

func TestWriteCommitsAndRevalidates(t *testing.T) {
	g := NewGroup(3)
	g.Write(0, 7)
	readable := g.ReadableReplicas(7)
	if len(readable) != 3 {
		t.Fatalf("readable after commit = %v, want all 3", readable)
	}
}

func TestInvalidationBlocksReadsMidWrite(t *testing.T) {
	g := NewGroup(2)
	g.Nodes[0].Write(5, nil)
	// Deliver only the INV, not the ACK back.
	if len(g.queue) != 1 || g.queue[0].Type != MsgInv {
		t.Fatalf("queue = %+v, want one INV", g.queue)
	}
	inv := g.queue[0]
	g.queue = g.queue[1:]
	g.Nodes[1].Handle(inv)
	if g.Nodes[1].CanRead(5) {
		t.Fatal("follower readable while invalidated")
	}
	if g.Nodes[0].CanRead(5) {
		t.Fatal("coordinator readable while write in flight")
	}
	g.drain()
	if !g.Nodes[0].CanRead(5) || !g.Nodes[1].CanRead(5) {
		t.Fatal("not readable after full protocol round")
	}
}

func TestCommitCallbackFiresAfterAllAcks(t *testing.T) {
	g := NewGroup(3)
	committed := false
	g.Nodes[0].Write(9, func() { committed = true })
	if committed {
		t.Fatal("committed before acks")
	}
	g.drain()
	if !committed {
		t.Fatal("never committed")
	}
}

func TestSingleNodeGroupCommitsImmediately(t *testing.T) {
	g := NewGroup(1)
	committed := false
	g.Nodes[0].Write(1, func() { committed = true })
	if !committed {
		t.Fatal("single-replica write needs no acks")
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	g := NewGroup(3)
	// Both coordinators write the same key before any message delivery.
	g.Nodes[0].Write(3, nil)
	g.Nodes[1].Write(3, nil)
	g.drain()
	// All replicas converge on one timestamp and become valid.
	ts := g.Nodes[0].key(3).ts
	for _, n := range g.Nodes {
		if n.key(3).ts != ts {
			t.Fatalf("node %d ts %+v != %+v", n.ID(), n.key(3).ts, ts)
		}
		if !n.CanRead(3) {
			t.Fatalf("node %d not readable after convergence", n.ID())
		}
	}
}

func TestSupersededWriteStillCommits(t *testing.T) {
	g := NewGroup(2)
	first := false
	g.Nodes[0].Write(4, func() { first = true })
	// Same coordinator writes again before the first commit.
	second := false
	g.Nodes[0].Write(4, func() { second = true })
	if !first {
		t.Fatal("superseded write's callback must fire (ordered before)")
	}
	g.drain()
	if !second {
		t.Fatal("second write never committed")
	}
}

func TestStaleInvIgnored(t *testing.T) {
	g := NewGroup(2)
	g.Write(1, 8) // node 1 coordinates: version advances everywhere
	// A stale INV with an old timestamp must not invalidate.
	g.Nodes[0].Handle(Message{Type: MsgInv, From: 1, To: 0, LPN: 8, TS: Timestamp{Version: 0, NodeID: 1}})
	if !g.Nodes[0].CanRead(8) {
		t.Fatal("stale INV invalidated a newer copy")
	}
}

func TestMisroutedMessagePanics(t *testing.T) {
	g := NewGroup(2)
	defer func() {
		if recover() == nil {
			t.Error("misrouted message accepted")
		}
	}()
	g.Nodes[0].Handle(Message{Type: MsgAck, From: 1, To: 1})
}

func TestNewNodeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("node outside peer list accepted")
		}
	}()
	NewNode(5, []int{0, 1}, func(Message) {})
}

func TestNilTransportPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil transport accepted")
		}
	}()
	NewNode(0, []int{0}, nil)
}

func TestGroupSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty group accepted")
		}
	}()
	NewGroup(0)
}

// Property: after any sequence of (coordinator, key) writes with full
// message delivery, every replica of every written key is Valid and all
// replicas agree on the winning timestamp.
func TestConvergenceProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		g := NewGroup(3)
		keys := map[uint32]bool{}
		for _, op := range ops {
			coord := int(op) % 3
			lpn := uint32(op>>2) % 8
			g.Nodes[coord].Write(lpn, nil)
			keys[lpn] = true
			if op%4 == 0 {
				g.drain() // vary interleaving
			}
		}
		g.drain()
		for lpn := range keys {
			ts := g.Nodes[0].key(lpn).ts
			for _, n := range g.Nodes {
				if !n.CanRead(lpn) || n.key(lpn).ts != ts {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: at least one replica can always serve a read for a key with no
// in-flight write, the invariant the switch's redirection relies on.
func TestReadAvailabilityProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		g := NewGroup(2)
		for _, op := range ops {
			lpn := uint32(op) % 4
			g.Write(int(op)%2, lpn) // synchronous: commit before next op
			if len(g.ReadableReplicas(lpn)) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRemovePeerCompletesPendingWrites(t *testing.T) {
	g := NewGroup(2)
	committed := false
	g.Nodes[0].Write(6, func() { committed = true })
	// Peer dies before acking.
	g.Nodes[0].RemovePeer(1)
	if !committed {
		t.Fatal("pending write did not commit after peer removal")
	}
	// Future writes commit alone, without queuing messages for the dead.
	solo := false
	g.queue = nil
	g.Nodes[0].Write(7, func() { solo = true })
	if !solo {
		t.Fatal("degraded write did not commit immediately")
	}
	for _, m := range g.queue {
		if m.To == 1 && m.Type == MsgInv {
			t.Fatal("INV still sent to removed peer")
		}
	}
}

func TestRemovePeerThreeNodeGroup(t *testing.T) {
	g := NewGroup(3)
	committed := false
	g.Nodes[0].Write(9, func() { committed = true })
	g.Nodes[0].RemovePeer(2) // one of two followers dies
	if committed {
		t.Fatal("write committed before the live follower acked")
	}
	g.drain()
	if !committed {
		t.Fatal("write never committed with the surviving follower")
	}
}
