// Package replication implements a Hermes-style broadcast replication
// protocol (invalidate -> ack -> validate), the scheme RackBlox uses to
// keep vSSD replicas strongly consistent while the switch redirects reads
// (§3.5.1: "our implementation uses Hermes [37] to ensure strong
// consistency between replicas and correctness when redirecting requests").
//
// Any replica can coordinate a write: it invalidates the key everywhere,
// gathers acks, then validates. Reads are served locally by any replica
// whose copy is valid, which is exactly the property the ToR switch relies
// on when it redirects a read to the non-collecting replica.
package replication

import (
	"fmt"
)

// State is the per-key replica state.
type State uint8

const (
	// Valid copies serve reads.
	Valid State = iota
	// Invalid copies have been invalidated by an in-flight write.
	Invalid
	// Writing marks the coordinator's own in-flight write.
	Writing
)

func (s State) String() string {
	switch s {
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	case Writing:
		return "writing"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Timestamp is a Lamport logical timestamp with the node id as tiebreak,
// giving writes a total order.
type Timestamp struct {
	Version uint64
	NodeID  int
}

// Less orders timestamps.
func (t Timestamp) Less(o Timestamp) bool {
	if t.Version != o.Version {
		return t.Version < o.Version
	}
	return t.NodeID < o.NodeID
}

// MsgType enumerates protocol messages.
type MsgType uint8

const (
	// MsgInv invalidates a key at a follower.
	MsgInv MsgType = iota
	// MsgAck acknowledges an invalidation.
	MsgAck
	// MsgVal re-validates a key after the write committed.
	MsgVal
)

func (m MsgType) String() string {
	switch m {
	case MsgInv:
		return "INV"
	case MsgAck:
		return "ACK"
	case MsgVal:
		return "VAL"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(m))
	}
}

// Message is one protocol message.
type Message struct {
	Type     MsgType
	From, To int
	LPN      uint32
	TS       Timestamp
}

// Transport delivers a message to its destination node; the rack provides
// it and charges network latency.
type Transport func(msg Message)

type keyState struct {
	st State
	ts Timestamp
}

type pendingWrite struct {
	ts       Timestamp
	awaiting map[int]bool
	onCommit func()
}

// Node is one replica endpoint of a group.
type Node struct {
	id      int
	peers   []int
	version uint64
	keys    map[uint32]*keyState
	pending map[uint32]*pendingWrite
	send    Transport
}

// NewNode creates replica id within a fixed peer group. peers lists every
// member including id itself.
func NewNode(id int, peers []int, send Transport) *Node {
	if send == nil {
		panic("replication: nil transport")
	}
	found := false
	for _, p := range peers {
		if p == id {
			found = true
		}
	}
	if !found {
		panic(fmt.Sprintf("replication: node %d not in peer list %v", id, peers))
	}
	return &Node{
		id:      id,
		peers:   append([]int(nil), peers...),
		keys:    make(map[uint32]*keyState),
		pending: make(map[uint32]*pendingWrite),
		send:    send,
	}
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

func (n *Node) key(lpn uint32) *keyState {
	k, ok := n.keys[lpn]
	if !ok {
		k = &keyState{st: Valid} // unwritten keys are trivially consistent
		n.keys[lpn] = k
	}
	return k
}

// CanRead reports whether this replica may serve a local read of lpn.
func (n *Node) CanRead(lpn uint32) bool { return n.key(lpn).st == Valid }

// KeyState exposes the replica state of a key (tests, introspection).
func (n *Node) KeyState(lpn uint32) State { return n.key(lpn).st }

// Write starts a coordinator write of lpn at this node. onCommit fires
// once every replica has acknowledged the invalidation (the Hermes commit
// point). A second write to the same key before commit supersedes the
// first; the superseded write's callback fires immediately since it is
// linearized before the newer one.
func (n *Node) Write(lpn uint32, onCommit func()) {
	n.version++
	ts := Timestamp{Version: n.version, NodeID: n.id}
	k := n.key(lpn)
	k.st = Writing
	k.ts = ts

	if prev, ok := n.pending[lpn]; ok && prev.onCommit != nil {
		prev.onCommit()
	}
	pw := &pendingWrite{ts: ts, awaiting: map[int]bool{}, onCommit: onCommit}
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		pw.awaiting[p] = true
		n.send(Message{Type: MsgInv, From: n.id, To: p, LPN: lpn, TS: ts})
	}
	n.pending[lpn] = pw
	if len(pw.awaiting) == 0 {
		n.commit(lpn, pw)
	}
}

func (n *Node) commit(lpn uint32, pw *pendingWrite) {
	delete(n.pending, lpn)
	k := n.key(lpn)
	if k.ts == pw.ts {
		k.st = Valid
		for _, p := range n.peers {
			if p != n.id {
				n.send(Message{Type: MsgVal, From: n.id, To: p, LPN: lpn, TS: pw.ts})
			}
		}
	}
	if pw.onCommit != nil {
		pw.onCommit()
	}
}

// AddPeer re-admits a peer after revival: future writes invalidate it
// again, restoring full-group durability. Idempotent — re-adding a
// present peer changes nothing. In-flight writes keep their original
// quorum; only writes started after the re-pairing wait for the
// returned node's acks.
func (n *Node) AddPeer(peer int) {
	for _, p := range n.peers {
		if p == peer {
			return
		}
	}
	n.peers = append(n.peers, peer)
}

// Peers returns the node's current peer group (introspection, tests).
func (n *Node) Peers() []int { return append([]int(nil), n.peers...) }

// Rejoin resets the node's per-key replica state and in-flight writes
// while keeping its identity, peer list, and Lamport clock: the model
// of a revived server whose DRAM and flash are gone rejoining the
// group empty. Superseded in-flight writes release their callbacks so
// no client waits on a commit that can never happen.
func (n *Node) Rejoin() {
	for _, pw := range n.pending {
		if pw.onCommit != nil {
			pw.onCommit()
		}
	}
	n.keys = make(map[uint32]*keyState)
	n.pending = make(map[uint32]*pendingWrite)
}

// RemovePeer degrades the group after peer death: in-flight writes stop
// waiting for the dead node's acks and future writes skip it. With a
// two-node group the survivor commits alone, which matches the paper's
// durability model of relying on the remaining replicas (§3.5.1, §3.7).
func (n *Node) RemovePeer(dead int) {
	kept := n.peers[:0]
	for _, p := range n.peers {
		if p != dead {
			kept = append(kept, p)
		}
	}
	n.peers = kept
	for lpn, pw := range n.pending {
		if pw.awaiting[dead] {
			delete(pw.awaiting, dead)
			if len(pw.awaiting) == 0 {
				n.commit(lpn, pw)
			}
		}
	}
}

// Handle processes one incoming protocol message.
func (n *Node) Handle(msg Message) {
	if msg.To != n.id {
		panic(fmt.Sprintf("replication: node %d got message for %d", n.id, msg.To))
	}
	k := n.key(msg.LPN)
	// Lamport clock advance keeps future local writes ordered after
	// everything this node has seen.
	if msg.TS.Version > n.version {
		n.version = msg.TS.Version
	}
	switch msg.Type {
	case MsgInv:
		if k.ts.Less(msg.TS) {
			k.st = Invalid
			k.ts = msg.TS
		}
		n.send(Message{Type: MsgAck, From: n.id, To: msg.From, LPN: msg.LPN, TS: msg.TS})
	case MsgAck:
		pw, ok := n.pending[msg.LPN]
		if !ok || pw.ts != msg.TS {
			return // ack for a superseded write
		}
		delete(pw.awaiting, msg.From)
		if len(pw.awaiting) == 0 {
			n.commit(msg.LPN, pw)
		}
	case MsgVal:
		if k.ts == msg.TS && k.st == Invalid {
			k.st = Valid
		}
	}
}

// Group wires a set of nodes with an in-memory FIFO transport, for direct
// use and tests; the rack replaces the transport with one that models
// network latency.
type Group struct {
	Nodes []*Node
	queue []Message
}

// NewGroup builds n fully connected replicas with synchronous delivery.
func NewGroup(n int) *Group {
	if n < 1 {
		panic("replication: group size must be >= 1")
	}
	g := &Group{}
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}
	for i := 0; i < n; i++ {
		g.Nodes = append(g.Nodes, NewNode(i, peers, func(m Message) {
			g.queue = append(g.queue, m)
		}))
	}
	return g
}

// drain pumps queued messages to quiescence.
func (g *Group) drain() {
	for len(g.queue) > 0 {
		m := g.queue[0]
		g.queue = g.queue[1:]
		g.Nodes[m.To].Handle(m)
	}
}

// Write performs a synchronous group write coordinated by node coord.
func (g *Group) Write(coord int, lpn uint32) {
	committed := false
	g.Nodes[coord].Write(lpn, func() { committed = true })
	g.drain()
	if !committed {
		panic("replication: synchronous group write did not commit")
	}
}

// ReadableReplicas returns the ids of replicas that can serve lpn.
func (g *Group) ReadableReplicas(lpn uint32) []int {
	var out []int
	for _, n := range g.Nodes {
		if n.CanRead(lpn) {
			out = append(out, n.ID())
		}
	}
	return out
}
