// Package experiments regenerates every table and figure of the RackBlox
// evaluation (§4). Each Fig* function runs the corresponding sweep on the
// simulated rack and returns printable rows; cmd/rackbench renders them,
// and the repository-root benchmarks call them at reduced scale.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"rackblox/internal/core"
	"rackblox/internal/flash"
	"rackblox/internal/netsim"
	"rackblox/internal/predictor"
	"rackblox/internal/sched"
	"rackblox/internal/sim"
	"rackblox/internal/stats"
	"rackblox/internal/trace"
	"rackblox/internal/wear"
	"rackblox/internal/workload"
)

// Scale shrinks experiment durations for fast runs: 1.0 is the full
// rackbench setting, benchmarks use ~0.25.
type Scale float64

// duration scales the measured window.
func (s Scale) duration(full sim.Time) sim.Time {
	if s <= 0 {
		s = 1
	}
	d := sim.Time(float64(full) * float64(s))
	if d < 100*sim.Millisecond {
		d = 100 * sim.Millisecond
	}
	return d
}

// Row is one printable result row: a label, an x-position, and named
// values in figure order.
type Row struct {
	Series string
	X      string
	Values map[string]float64
}

// Table is a titled collection of rows.
type Table struct {
	ID    string
	Title string
	Cols  []string
	Rows  []Row
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%-22s %-14s", "series", "x")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, " %14s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s %-14s", r.Series, r.X)
		for _, c := range t.Cols {
			fmt.Fprintf(&b, " %14.3f", r.Values[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// mixes are the YCSB read/write splits of Figs. 9-12 and 15-16.
var mixes = []float64{0, 0.05, 0.2, 0.5, 0.8, 0.95, 1.0}

func mixLabel(writeFrac float64) string {
	return workload.Mix(int(100 - writeFrac*100 + 0.5))
}

// baseConfig is the shared experiment setup (§4.1).
func baseConfig(scale Scale) core.Config {
	cfg := core.DefaultConfig()
	cfg.Duration = scale.duration(cfg.Duration)
	return cfg
}

// runYCSB runs one (system, write fraction) cell.
func runYCSB(sys core.System, writeFrac float64, scale Scale, seed int64) *core.Result {
	cfg := baseConfig(scale)
	cfg.System = sys
	cfg.Seed = seed
	cfg.Workload.WriteFrac = writeFrac
	res, err := core.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// ycsbSweep produces one row per (system, mix) with the chosen metric.
func ycsbSweep(id, title string, scale Scale, readSide bool,
	metric func(*stats.Recorder) float64) *Table {

	t := &Table{ID: id, Title: title, Cols: []string{"value", "norm_vs_vdc"}}
	for _, mix := range mixes {
		if readSide && mix == 1.0 {
			continue // read metrics exclude the write-only mix
		}
		if !readSide && mix == 0 {
			continue // write metrics exclude the read-only mix
		}
		var vdcVal float64
		for _, sys := range core.Systems() {
			res := runYCSB(sys, mix, scale, 1)
			v := metric(res.Recorder)
			if sys == core.VDC {
				vdcVal = v
			}
			norm := 0.0
			if vdcVal > 0 {
				norm = v / vdcVal
			}
			t.Rows = append(t.Rows, Row{
				Series: sys.String(),
				X:      mixLabel(mix),
				Values: map[string]float64{"value": v, "norm_vs_vdc": norm},
			})
		}
	}
	return t
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// Table2 reproduces the workload table.
func Table2() *Table {
	t := &Table{ID: "Table2", Title: "Workloads used in the evaluation", Cols: []string{"write_pct"}}
	for _, row := range workload.Table2() {
		pct := row.WritePct
		label := row.Name
		if pct < 0 {
			pct = 0 // YCSB is configurable 0-100%
			label = "YCSB (0-100%)"
		}
		t.Rows = append(t.Rows, Row{Series: label, X: row.Description,
			Values: map[string]float64{"write_pct": pct}})
	}
	return t
}

// Fig9a: P99.9 read latency across YCSB mixes (normalized to VDC).
func Fig9a(scale Scale) *Table {
	return ycsbSweep("Fig9a", "P99.9 read latency (ms), YCSB mixes", scale, true,
		func(r *stats.Recorder) float64 { return ms(r.Reads().P999()) })
}

// Fig9b: P99.9 write latency across YCSB mixes.
func Fig9b(scale Scale) *Table {
	return ycsbSweep("Fig9b", "P99.9 write latency (ms), YCSB mixes", scale, false,
		func(r *stats.Recorder) float64 { return ms(r.Writes().P999()) })
}

// Fig10a/b: P99 latencies.
func Fig10a(scale Scale) *Table {
	return ycsbSweep("Fig10a", "P99 read latency (ms), YCSB mixes", scale, true,
		func(r *stats.Recorder) float64 { return ms(r.Reads().P99()) })
}

func Fig10b(scale Scale) *Table {
	return ycsbSweep("Fig10b", "P99 write latency (ms), YCSB mixes", scale, false,
		func(r *stats.Recorder) float64 { return ms(r.Writes().P99()) })
}

// Fig11a/b: average latencies.
func Fig11a(scale Scale) *Table {
	return ycsbSweep("Fig11a", "Average read latency (ms), YCSB mixes", scale, true,
		func(r *stats.Recorder) float64 { return r.Reads().Mean() / 1e6 })
}

func Fig11b(scale Scale) *Table {
	return ycsbSweep("Fig11b", "Average write latency (ms), YCSB mixes", scale, false,
		func(r *stats.Recorder) float64 { return r.Writes().Mean() / 1e6 })
}

// Fig12: throughput (KIOPS) across mixes, including both pure mixes.
func Fig12(scale Scale) *Table {
	t := &Table{ID: "Fig12", Title: "Throughput (KIOPS), YCSB mixes", Cols: []string{"kiops"}}
	for _, mix := range mixes {
		for _, sys := range core.Systems() {
			res := runYCSB(sys, mix, scale, 1)
			t.Rows = append(t.Rows, Row{
				Series: sys.String(),
				X:      mixLabel(mix),
				Values: map[string]float64{"kiops": res.Recorder.Throughput() / 1000},
			})
		}
	}
	return t
}

// runBench runs one (system, BenchBase workload) cell.
func runBench(sys core.System, name string, scale Scale) *core.Result {
	cfg := baseConfig(scale)
	cfg.System = sys
	cfg.Workload = core.WorkloadSpec{Name: name, MeanGap: cfg.Workload.MeanGap}
	res, err := core.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// Fig13a/b: P99.9 read/write latency for the five BenchBase workloads.
func Fig13a(scale Scale) *Table {
	t := &Table{ID: "Fig13a", Title: "P99.9 read latency (ms), BenchBase workloads", Cols: []string{"value", "norm_vs_vdc"}}
	benchSweep(t, scale, func(r *stats.Recorder) float64 { return ms(r.Reads().P999()) })
	return t
}

func Fig13b(scale Scale) *Table {
	t := &Table{ID: "Fig13b", Title: "P99.9 write latency (ms), BenchBase workloads", Cols: []string{"value", "norm_vs_vdc"}}
	benchSweep(t, scale, func(r *stats.Recorder) float64 { return ms(r.Writes().P999()) })
	return t
}

func benchSweep(t *Table, scale Scale, metric func(*stats.Recorder) float64) {
	for _, name := range workload.Names() {
		var vdcVal float64
		for _, sys := range core.Systems() {
			res := runBench(sys, name, scale)
			v := metric(res.Recorder)
			if sys == core.VDC {
				vdcVal = v
			}
			norm := 0.0
			if vdcVal > 0 {
				norm = v / vdcVal
			}
			t.Rows = append(t.Rows, Row{Series: sys.String(), X: name,
				Values: map[string]float64{"value": v, "norm_vs_vdc": norm}})
		}
	}
}

// Fig14: throughput for the BenchBase workloads.
func Fig14(scale Scale) *Table {
	t := &Table{ID: "Fig14", Title: "Throughput (KIOPS), BenchBase workloads", Cols: []string{"kiops"}}
	for _, name := range workload.Names() {
		for _, sys := range core.Systems() {
			res := runBench(sys, name, scale)
			t.Rows = append(t.Rows, Row{Series: sys.String(), X: name,
				Values: map[string]float64{"kiops": res.Recorder.Throughput() / 1000}})
		}
	}
	return t
}

// Fig15a/b: P99.9 latency breakdown — storage-only vs end-to-end.
func Fig15a(scale Scale) *Table {
	t := &Table{ID: "Fig15a", Title: "P99.9 read latency breakdown (ms)", Cols: []string{"total", "storage"}}
	breakdownSweep(t, scale, true)
	return t
}

func Fig15b(scale Scale) *Table {
	t := &Table{ID: "Fig15b", Title: "P99.9 write latency breakdown (ms)", Cols: []string{"total", "storage"}}
	breakdownSweep(t, scale, false)
	return t
}

func breakdownSweep(t *Table, scale Scale, readSide bool) {
	for _, mix := range mixes {
		if readSide && mix == 1.0 || !readSide && mix == 0 {
			continue
		}
		for _, sys := range core.Systems() {
			res := runYCSB(sys, mix, scale, 1)
			var total, storage int64
			if readSide {
				total = res.Recorder.Reads().P999()
				storage = res.Recorder.ReadStorage().P999()
			} else {
				total = res.Recorder.Writes().P999()
				storage = res.Recorder.WriteStorage().P999()
			}
			t.Rows = append(t.Rows, Row{Series: sys.String(), X: mixLabel(mix),
				Values: map[string]float64{"total": ms(total), "storage": ms(storage)}})
		}
	}
}

// Fig16: cumulative distribution of read latency (P98.5..P99.9) per mix.
func Fig16(scale Scale) *Table {
	t := &Table{ID: "Fig16", Title: "Read latency tail CDF (ms)",
		Cols: []string{"p98.5", "p99", "p99.5", "p99.9"}}
	for _, mix := range mixes {
		if mix == 1.0 {
			continue
		}
		for _, sys := range core.Systems() {
			res := runYCSB(sys, mix, scale, 1)
			pts := res.Recorder.Reads().TailCDF()
			t.Rows = append(t.Rows, Row{Series: sys.String(), X: mixLabel(mix),
				Values: map[string]float64{
					"p98.5": ms(pts[0].Latency), "p99": ms(pts[1].Latency),
					"p99.5": ms(pts[2].Latency), "p99.9": ms(pts[3].Latency),
				}})
		}
	}
	return t
}

// Fig17: coordinated I/O under different storage schedulers, P99.9 reads.
func Fig17(scale Scale) *Table {
	t := &Table{ID: "Fig17", Title: "P99.9 read latency (ms) by storage scheduler",
		Cols: []string{"value", "speedup_vs_base"}}
	policies := []sched.Policy{sched.FIFO, sched.Deadline, sched.Kyber}
	for _, mix := range []float64{0.2, 0.5} {
		for _, pol := range policies {
			var base float64
			for _, coord := range []bool{false, true} {
				cfg := baseConfig(scale)
				cfg.System = core.RackBlox
				cfg.SchedPolicy = pol
				cfg.Workload.WriteFrac = mix
				if coord {
					cfg.CoordinatedOverride = 1
				} else {
					cfg.CoordinatedOverride = -1
				}
				res, err := core.Run(cfg)
				if err != nil {
					panic(err)
				}
				v := ms(res.Recorder.Reads().P999())
				name := pol.String()
				if coord {
					name = "RackBlox (" + pol.String() + ")"
				} else {
					base = v
				}
				sp := 0.0
				if v > 0 && base > 0 {
					sp = base / v
				}
				t.Rows = append(t.Rows, Row{Series: name, X: mixLabel(mix),
					Values: map[string]float64{"value": v, "speedup_vs_base": sp}})
			}
		}
	}
	return t
}

// Fig18: coordinated I/O under different network schedulers, P99.9 reads.
func Fig18(scale Scale) *Table {
	t := &Table{ID: "Fig18", Title: "P99.9 read latency (ms) by network scheduler",
		Cols: []string{"value", "speedup_vs_base"}}
	for _, q := range []string{"FQ", "Priority", "TB"} {
		for _, mix := range []float64{0.2, 0.5} {
			var base float64
			for _, coord := range []bool{false, true} {
				cfg := baseConfig(scale)
				cfg.System = core.RackBlox
				cfg.Qdisc = q
				cfg.Workload.WriteFrac = mix
				if coord {
					cfg.CoordinatedOverride = 1
				} else {
					cfg.CoordinatedOverride = -1
				}
				res, err := core.Run(cfg)
				if err != nil {
					panic(err)
				}
				v := ms(res.Recorder.Reads().P999())
				name := q
				if coord {
					name = "RackBlox (" + q + ")"
				} else {
					base = v
				}
				sp := 0.0
				if v > 0 && base > 0 {
					sp = base / v
				}
				t.Rows = append(t.Rows, Row{Series: name, X: mixLabel(mix),
					Values: map[string]float64{"value": v, "speedup_vs_base": sp}})
			}
		}
	}
	return t
}

// deviceProfiles and netProfiles for Figs. 19-20.
func deviceProfiles() []flash.Profile {
	return []flash.Profile{flash.ProfileOptane(), flash.ProfileIntelDC(), flash.ProfilePSSD()}
}

func netProfiles() []netsim.Profile {
	return []netsim.Profile{netsim.ProfileFast(), netsim.ProfileMedium(), netsim.ProfileSlow()}
}

// Fig19: read tail CDF of YCSB-A for every SSD x network combination.
func Fig19(scale Scale) *Table {
	t := &Table{ID: "Fig19", Title: "YCSB-A read tail (ms), SSD x network grid",
		Cols: []string{"p98.5", "p99", "p99.5", "p99.9"}}
	for _, dev := range deviceProfiles() {
		for _, net := range netProfiles() {
			for _, sys := range []core.System{core.VDC, core.RackBlox} {
				cfg := baseConfig(scale)
				cfg.System = sys
				cfg.Device = dev
				cfg.Net = net
				cfg.Workload.WriteFrac = 0.5 // YCSB-A
				res, err := core.Run(cfg)
				if err != nil {
					panic(err)
				}
				pts := res.Recorder.Reads().TailCDF()
				t.Rows = append(t.Rows, Row{Series: sys.String(),
					X: dev.Name + "+" + net.Name,
					Values: map[string]float64{
						"p98.5": ms(pts[0].Latency), "p99": ms(pts[1].Latency),
						"p99.5": ms(pts[2].Latency), "p99.9": ms(pts[3].Latency),
					}})
			}
		}
	}
	return t
}

// Fig20: P99.9 read speedup of RackBlox over VDC for YCSB-A/B/C across the
// device x network grid.
func Fig20(scale Scale) *Table {
	t := &Table{ID: "Fig20", Title: "P99.9 read speedup vs VDC (x)", Cols: []string{"speedup"}}
	ycsbs := []struct {
		name string
		frac float64
	}{{"YCSB-A", 0.5}, {"YCSB-B", 0.05}, {"YCSB-C", 0.0}}
	for _, y := range ycsbs {
		for _, dev := range deviceProfiles() {
			for _, net := range netProfiles() {
				var vdc, rb int64
				for _, sys := range []core.System{core.VDC, core.RackBlox} {
					cfg := baseConfig(scale)
					cfg.System = sys
					cfg.Device = dev
					cfg.Net = net
					cfg.Workload.WriteFrac = y.frac
					res, err := core.Run(cfg)
					if err != nil {
						panic(err)
					}
					if sys == core.VDC {
						vdc = res.Recorder.Reads().P999()
					} else {
						rb = res.Recorder.Reads().P999()
					}
				}
				t.Rows = append(t.Rows, Row{Series: dev.Name + "+" + net.Name, X: y.name,
					Values: map[string]float64{"speedup": stats.Speedup(vdc, rb)}})
			}
		}
	}
	return t
}

// Fig21: software- vs hardware-isolated vSSD read tails (YCSB 50/50).
func Fig21(scale Scale) *Table {
	t := &Table{ID: "Fig21", Title: "Read tail (ms) by isolation class",
		Cols: []string{"p98.5", "p99", "p99.5", "p99.9"}}
	for _, swIso := range []bool{true, false} {
		x := "HW-Isolated"
		if swIso {
			x = "SW-Isolated"
		}
		for _, sys := range []core.System{core.VDC, core.RackBlox} {
			cfg := baseConfig(scale)
			cfg.System = sys
			cfg.SoftwareIsolated = swIso
			cfg.VSSDPairs = 2
			cfg.Workload.WriteFrac = 0.5
			res, err := core.Run(cfg)
			if err != nil {
				panic(err)
			}
			pts := res.Recorder.Reads().TailCDF()
			t.Rows = append(t.Rows, Row{Series: sys.String(), X: x,
				Values: map[string]float64{
					"p98.5": ms(pts[0].Latency), "p99": ms(pts[1].Latency),
					"p99.5": ms(pts[2].Latency), "p99.9": ms(pts[3].Latency),
				}})
		}
	}
	return t
}

// Fig22: per-server wear imbalance after one and two years, with and
// without swapping.
func Fig22() *Table {
	t := &Table{ID: "Fig22", Title: "Per-server wear imbalance (max/avg)",
		Cols: []string{"imbalance_mean", "imbalance_max"}}
	for _, years := range []int{1, 2} {
		for _, swap := range []bool{false, true} {
			cfg := wear.DefaultConfig()
			if !swap {
				cfg.LocalPeriodDays = 0
				cfg.GlobalPeriodDays = 0
			}
			r, err := wear.New(cfg)
			if err != nil {
				panic(err)
			}
			r.RunWeeks(52 * years)
			var vals []float64
			for s := 0; s < cfg.Servers; s++ {
				vals = append(vals, r.ServerImbalance(s))
			}
			sort.Float64s(vals)
			mean := 0.0
			for _, v := range vals {
				mean += v
			}
			mean /= float64(len(vals))
			series := "No Swap"
			if swap {
				series = "RackBlox"
			}
			t.Rows = append(t.Rows, Row{Series: series, X: fmt.Sprintf("after %d year(s)", years),
				Values: map[string]float64{"imbalance_mean": mean, "imbalance_max": vals[len(vals)-1]}})
		}
	}
	return t
}

// Fig23: rack-scale wear imbalance over 80 weeks for several global swap
// periods.
func Fig23() *Table {
	t := &Table{ID: "Fig23", Title: "Rack wear imbalance over time (max/avg)",
		Cols: []string{"week16", "week32", "week48", "week64", "week80"}}
	configs := []struct {
		series string
		period int
	}{
		{"No Swap", 0},
		{"RB-Swap per 4 Weeks", 28},
		{"RB-Swap per 8 Weeks", 56},
		{"RB-Swap per 12 Weeks", 84},
	}
	for _, c := range configs {
		cfg := wear.DefaultConfig()
		cfg.GlobalPeriodDays = c.period
		if c.period == 0 {
			cfg.LocalPeriodDays = 0
		}
		r, err := wear.New(cfg)
		if err != nil {
			panic(err)
		}
		vals := map[string]float64{}
		for w := 1; w <= 80; w++ {
			r.RunWeeks(1)
			switch w {
			case 16, 32, 48, 64, 80:
				vals[fmt.Sprintf("week%d", w)] = r.RackImbalance()
			}
		}
		t.Rows = append(t.Rows, Row{Series: c.series, X: "80 weeks", Values: vals})
	}
	return t
}

// PredictorAccuracy validates the §3.4 sliding-window predictor against
// the three network regimes.
func PredictorAccuracy() *Table {
	t := &Table{ID: "Predictor", Title: "Return-latency predictor accuracy",
		Cols: []string{"hit_rate", "worst_rel_err"}}
	for _, prof := range netProfiles() {
		n := netsim.New(prof, sim.NewRNG(11))
		p := predictor.NewLatency(predictor.DefaultWindow)
		var acc predictor.Accuracy
		tol := 25 * sim.Microsecond
		if m := sim.Time(prof.MedianNS); m > tol {
			tol = m
		}
		now := sim.Time(0)
		for i := 0; i < predictor.DefaultWindow; i++ {
			p.Observe(false, n.HopLatency(now))
			now += 50 * sim.Microsecond
		}
		for i := 0; i < 50000; i++ {
			actual := n.HopLatency(now)
			acc.Record(p.Predict(false), actual, tol)
			p.Observe(false, actual)
			now += 50 * sim.Microsecond
		}
		t.Rows = append(t.Rows, Row{Series: prof.Name, X: "50k packets",
			Values: map[string]float64{"hit_rate": acc.HitRate(), "worst_rel_err": acc.WorstRel}})
	}
	return t
}

// GCAblation compares redirect-only against the full delay+background
// coordinated GC, a design-choice ablation beyond the paper's figures.
func GCAblation(scale Scale) *Table {
	t := &Table{ID: "GCAblation", Title: "Coordinated GC ablation, P99.9 reads (ms)",
		Cols: []string{"value", "gc_events", "delayed"}}
	type variant struct {
		name string
		soft float64 // soft threshold; == gc threshold disables delaying
	}
	cfgBase := baseConfig(scale)
	for _, v := range []variant{
		{"redirect-only", cfgBase.GCThreshold + 0.001},
		{"redirect+delay", cfgBase.SoftThreshold},
	} {
		cfg := baseConfig(scale)
		cfg.System = core.RackBlox
		cfg.SoftThreshold = v.soft
		res, err := core.Run(cfg)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, Row{Series: v.name, X: "YCSB 50/50",
			Values: map[string]float64{
				"value":     ms(res.Recorder.Reads().P999()),
				"gc_events": float64(res.GCEvents),
				"delayed":   float64(res.GCDelayed),
			}})
	}
	return t
}

// FigEC compares the two redundancy backends — 2-way Hermes replication
// and RS(4,2) erasure coding — on an identical six-server rack, opening
// the replication-vs-EC experiment axis beyond the paper: read tails
// (degraded reads reconstruct around collectors and failures), the
// redundancy write cost (2x replicated sub-writes vs 1+m chunk
// sub-writes), and behavior under a GC storm and under m server crashes.
func FigEC(scale Scale) *Table { return FigECWith(scale, Options{}) }

// FigECWith is FigEC with observability options threaded through.
func FigECWith(scale Scale, opt Options) *Table {
	t := &Table{ID: "FigEC", Title: "Replication vs RS(4,2): read tail, write cost, degraded reads",
		Cols: []string{"p99_ms", "p999_ms", "kiops", "write_amp", "degraded", "lost_reads"}}
	type scenario struct {
		name     string
		workload core.WorkloadSpec
		failTwo  bool
	}
	base := core.DefaultConfig()
	scenarios := []scenario{
		{"YCSB 50/50", core.WorkloadSpec{Name: "YCSB", WriteFrac: 0.5, MeanGap: base.Workload.MeanGap}, false},
		{"GC storm (Twitter)", core.WorkloadSpec{Name: "Twitter", MeanGap: base.Workload.MeanGap}, false},
		{"YCSB + 2 crashes", core.WorkloadSpec{Name: "YCSB", WriteFrac: 0.5, MeanGap: base.Workload.MeanGap}, true},
	}
	specs := []core.RedundancySpec{core.Replication(), core.ErasureCode(4, 2)}
	for _, sc := range scenarios {
		for _, red := range specs {
			cfg := baseConfig(scale)
			cfg.System = core.RackBlox
			cfg.StorageServers = 6 // RS(4,2) spreads each stripe over six servers
			cfg.Redundancy = red
			cfg.Workload = sc.workload
			if sc.failTwo {
				cfg.FailServerIndex = 0
				cfg.FailServers = []int{1}
				cfg.FailServerAt = cfg.Warmup + cfg.Duration/4
			}
			opt.instrument(&cfg)
			res, err := core.Run(cfg)
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			opt.notify("figec", red.String()+"/"+sc.name, res)
			reads := res.Recorder.Reads()
			t.Rows = append(t.Rows, Row{Series: red.String(), X: sc.name,
				Values: map[string]float64{
					"p99_ms":     ms(reads.P99()),
					"p999_ms":    ms(reads.P999()),
					"kiops":      res.Recorder.Throughput() / 1000,
					"write_amp":  res.WriteAmp,
					"degraded":   float64(res.DegradedReads),
					"lost_reads": float64(res.LostReads),
				}})
		}
	}
	return t
}

// Options tunes the cluster-shaped experiments from the command line
// (cmd/rackbench -racks / -crossbw); zero fields keep each experiment's
// defaults.
type Options struct {
	// Racks overrides the rack fault-domain count.
	Racks int
	// CrossBWMBps overrides the spine/aggregation link bandwidth in MB/s.
	CrossBWMBps float64
	// RepairSLOTarget overrides the foreground read p99 target of the
	// SLO-pacing experiments (figslo) and enables pacing for -scenario
	// runs; 0 keeps figslo's auto-derived target (a multiple of the
	// healthy baseline's p99) and leaves -scenario runs unpaced.
	RepairSLOTarget sim.Time
	// Trace enables the flight recorder for every run the experiment
	// executes (cmd/rackbench -trace). Observer-only: the tabulated
	// numbers are byte-identical with or without it.
	Trace trace.Options
	// MetricsInterval arms the time-series sampler for every run
	// (cmd/rackbench -metrics); 0 leaves it off.
	MetricsInterval sim.Time
	// OnResult, when set, receives every run's full Result as it
	// completes, keyed by the experiment id and a "series/x" label —
	// how cmd/rackbench collects traces, timelines, and per-run
	// counters for its JSON report.
	OnResult func(id, series string, res *core.Result)
}

// instrument applies the observability knobs to one run's config.
func (o Options) instrument(cfg *core.Config) {
	cfg.Trace = o.Trace
	cfg.MetricsInterval = o.MetricsInterval
}

// notify hands one completed run to the OnResult hook, if any.
func (o Options) notify(id, series string, res *core.Result) {
	if o.OnResult != nil {
		o.OnResult(id, series, res)
	}
}

// FigMR compares single-rack (compact) against multi-rack (spread)
// RS(4,2) placement on the same cluster — three racks of six servers
// under a spine link — healthy and under a whole-rack failure. Compact
// placement confines each stripe to one rack: the rack crash erases
// whole groups (lost reads, unrecoverable stripes). Spread placement
// caps every rack at m chunks per stripe, so the same crash leaves every
// stripe >= k chunks: reads complete degraded, and the repair traffic
// that rebuilds the lost chunks is metered on the finite cross-rack
// link (cross_repair_mb, bounded by the configured bandwidth;
// spine_util is the link's busy fraction). Spread RS(4,2) needs at
// least ceil((k+m)/m) = 3 fault domains, so Options.Racks values below
// 3 are raised to 3.
func FigMR(scale Scale, opt Options) *Table {
	t := &Table{ID: "FigMR",
		Title: "Single-rack vs multi-rack RS(4,2) placement under rack failure",
		Cols: []string{"p99_ms", "kiops", "degraded", "lost_reads",
			"unrecov_stripes", "cross_repair_mb", "spine_util", "handoffs"}}
	racks := opt.Racks
	if racks < 3 {
		racks = 3 // spread RS(4,2) needs ceil((k+m)/m) = 3 fault domains
	}
	crossBW := opt.CrossBWMBps
	if crossBW <= 0 {
		crossBW = 200
	}
	placements := []struct {
		series string
		mode   core.PlacementMode
	}{
		{"single-rack (compact)", core.PlacementCompact},
		{"multi-rack (spread)", core.PlacementSpread},
	}
	for _, sc := range []struct {
		name     string
		failRack bool
	}{{"healthy", false}, {"rack 0 crash", true}} {
		for _, pl := range placements {
			cfg := baseConfig(scale)
			cfg.System = core.RackBlox
			cfg.Racks = racks
			cfg.StorageServers = 6 // compact needs k+m servers in one rack
			cfg.VSSDPairs = 3
			cfg.Redundancy = core.ErasureCode(4, 2)
			cfg.Placement = pl.mode
			cfg.CrossRackMBps = crossBW
			if sc.failRack {
				cfg.FailRackIndex = 0
				cfg.FailServerAt = cfg.Warmup + cfg.Duration/4
			}
			opt.instrument(&cfg)
			res, err := core.Run(cfg)
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			opt.notify("figmr", pl.series+"/"+sc.name, res)
			reads := res.Recorder.Reads()
			t.Rows = append(t.Rows, Row{Series: pl.series, X: sc.name,
				Values: map[string]float64{
					"p99_ms":          ms(reads.P99()),
					"kiops":           res.Recorder.Throughput() / 1000,
					"degraded":        float64(res.DegradedReads),
					"lost_reads":      float64(res.LostReads),
					"unrecov_stripes": float64(res.UnrecoverableStripes),
					"cross_repair_mb": float64(res.CrossRackRepairBytes) / 1e6,
					"spine_util":      res.SpineUtilization,
					"handoffs":        float64(res.Switch.Handoffs),
				}})
		}
	}
	return t
}

// rlTimeline fixes the recovery-lifecycle instants (absolute virtual
// times, deliberately not scaled: repair and revival need real room to
// finish; Scale only shrinks the measured windows).
const (
	rlFailAt   = 120 * sim.Millisecond
	rlReviveAt = 300 * sim.Millisecond
	// rlHealedBy is when the cluster is expected back to full health:
	// detection (~30ms) + chunk reconstruction + re-integration for the
	// crash scenarios, revival + table replay for the ToR scenario. The
	// figrl test asserts the expectation via the lifecycle counters.
	rlHealedBy = 500 * sim.Millisecond
)

// rlConfig is the recovery-lifecycle cluster: three racks of six
// servers, RS(4,2) spread placement, Optane-class devices so background
// reconstruction completes well inside the simulated horizon, and a
// read-leaning mix so GC idle windows admit repair promptly.
func rlConfig(scale Scale, opt Options) core.Config {
	cfg := baseConfig(scale)
	cfg.System = core.RackBlox
	cfg.Racks = opt.Racks
	if cfg.Racks < 3 {
		cfg.Racks = 3 // spread RS(4,2) needs ceil((k+m)/m) = 3 fault domains
	}
	cfg.StorageServers = 6
	cfg.VSSDPairs = 3
	cfg.Redundancy = core.ErasureCode(4, 2)
	cfg.Placement = core.PlacementSpread
	cfg.CrossRackMBps = opt.CrossBWMBps
	if cfg.CrossRackMBps <= 0 {
		cfg.CrossRackMBps = 200
	}
	cfg.Device = flash.ProfileOptane()
	cfg.Workload.WriteFrac = 0.2
	cfg.KeyspaceFrac = 0.25
	// A generous client window keeps the group issuing while requests
	// stuck on a freshly-crashed holder wait out their timeouts;
	// otherwise the default window clogs and the degraded phase shows
	// timeout stalls instead of degraded service.
	cfg.MaxClientInflight = 256
	return cfg
}

// FigRL traces the recovery lifecycle — fail, repair, re-integrate,
// revive — and shows the co-design closing the loop: after the
// reconstructor rebuilds a crashed server's chunks and re-registers the
// replacement holder in the ToR stripe tables, reads stop paying the
// degraded-reconstruction cost (degraded_post_repair == 0) and the read
// latency of the post-repair window returns to the healthy baseline
// (vs_healthy ~ 1); likewise a revived ToR resumes direct service after
// its stripe table is replayed from survivors. Foreground cross-rack
// traffic (fg_cross_mb) is metered on the same spine as repair traffic
// (repair_cross_mb) and reported separately. Every row measures the
// same-length window, so latencies are comparable across phases.
func FigRL(scale Scale, opt Options) *Table {
	t := &Table{ID: "FigRL",
		Title: "Recovery lifecycle: fail -> repair -> re-integrate -> revive",
		Cols: []string{"read_mean_ms", "read_p99_ms", "vs_healthy", "degraded",
			"degraded_post_repair", "reintegrated_stripes", "repair_pending",
			"fg_cross_mb", "repair_cross_mb", "lost_reads", "tor_revivals"}}
	window := scale.duration(300 * sim.Millisecond)
	type phase struct {
		series, x string
		measure   sim.Time // measured window start (Warmup)
		mutate    func(*core.Config)
	}
	crash := func(cfg *core.Config) {
		cfg.FailServerIndex = 0
		cfg.FailServerAt = rlFailAt
	}
	darken := func(cfg *core.Config) {
		cfg.FailToRIndex = 1
		cfg.FailServerAt = rlFailAt
	}
	revive := func(cfg *core.Config) {
		darken(cfg)
		cfg.RecoverToRIndex = 1
		cfg.RecoverToRAt = rlReviveAt
	}
	phases := []phase{
		{"healthy", "baseline", rlHealedBy, func(*core.Config) {}},
		{"server crash", "degraded", rlFailAt, crash},
		{"server crash", "post-repair", rlHealedBy, crash},
		{"tor outage", "dark", rlFailAt, darken},
		{"tor outage+revive", "post-revival", rlHealedBy, revive},
	}
	var healthyMean float64
	for _, ph := range phases {
		cfg := rlConfig(scale, opt)
		cfg.Warmup = ph.measure
		cfg.Duration = window
		ph.mutate(&cfg)
		opt.instrument(&cfg)
		res, err := core.Run(cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		opt.notify("figrl", ph.series+"/"+ph.x, res)
		reads := res.Recorder.Reads()
		mean := reads.Mean() / 1e6
		if ph.series == "healthy" {
			healthyMean = mean
		}
		ratio := 0.0
		if healthyMean > 0 {
			ratio = mean / healthyMean
		}
		t.Rows = append(t.Rows, Row{Series: ph.series, X: ph.x,
			Values: map[string]float64{
				"read_mean_ms":         mean,
				"read_p99_ms":          ms(reads.P99()),
				"vs_healthy":           ratio,
				"degraded":             float64(res.DegradedReads),
				"degraded_post_repair": float64(res.DegradedReadsPostRepair),
				"reintegrated_stripes": float64(res.ReintegratedStripes),
				"repair_pending":       float64(res.RepairPending),
				"fg_cross_mb":          float64(res.ForegroundCrossRackBytes) / 1e6,
				"repair_cross_mb":      float64(res.CrossRackRepairBytes) / 1e6,
				"lost_reads":           float64(res.LostReads),
				"tor_revivals":         float64(res.ToRRevivals),
			}})
	}
	return t
}

// scTimeline fixes the scenario-cycle instants (absolute virtual times,
// deliberately not scaled, like the figrl timeline: repair needs real
// room to finish; Scale only shrinks the measured windows).
const (
	scFailAt   = 120 * sim.Millisecond
	scReviveAt = 300 * sim.Millisecond
	// scHealedBy is when the first cycle is expected fully healed:
	// detection (~30ms), degraded service, then catch-up repair onto the
	// revived blank server and RestoreStripeMember re-registration.
	scHealedBy = 550 * sim.Millisecond
	// scFail2At crashes the same server again after the first heal; its
	// loss now heals the PR-3 way (adopter re-integration), proving the
	// cycle can repeat indefinitely.
	scFail2At   = 650 * sim.Millisecond
	scHealed2By = 1050 * sim.Millisecond
)

// FigSC sweeps a scenario timeline the flat failure fields could never
// express: fail -> revive-server -> catch-up -> fail-again. A storage
// server crashes, returns blank mid-run (core.ReviveServer), catches up
// via the metered reconstructor, and is re-registered under its own id
// (switchsim.RestoreStripeMember) — degraded_post_repair is 0 and read
// latency returns to the healthy baseline (vs_healthy ~ 1). The same
// server then crashes again, and the second loss heals through adopter
// re-integration, showing repeated fail/heal cycles compose. Every row
// measures the same-length window, so latencies are comparable.
func FigSC(scale Scale, opt Options) *Table {
	t := &Table{ID: "FigSC",
		Title: "Scenario timeline: fail -> revive -> catch-up -> fail-again",
		Cols: []string{"read_mean_ms", "read_p99_ms", "vs_healthy", "degraded",
			"degraded_post_repair", "reintegrated_stripes", "restored_holders",
			"server_revivals", "repair_pending", "lost_reads"}}
	window := scale.duration(300 * sim.Millisecond)
	cycle := []core.Event{
		core.FailServer(0, scFailAt),
		core.ReviveServer(0, scReviveAt),
	}
	again := append(append([]core.Event(nil), cycle...), core.FailServer(0, scFail2At))
	type phase struct {
		series, x string
		measure   sim.Time // measured window start (Warmup)
		events    []core.Event
	}
	phases := []phase{
		{"healthy", "baseline", scHealedBy, nil},
		{"fail+revive", "degraded", scFailAt, cycle},
		{"fail+revive", "post-catch-up", scHealedBy, cycle},
		{"fail-again", "degraded-again", scFail2At, again},
		{"fail-again", "post-heal", scHealed2By, again},
	}
	var healthyMean float64
	for _, ph := range phases {
		cfg := rlConfig(scale, opt)
		cfg.Warmup = ph.measure
		cfg.Duration = window
		cfg.Scenario = ph.events
		opt.instrument(&cfg)
		res, err := core.Run(cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		opt.notify("figsc", ph.series+"/"+ph.x, res)
		reads := res.Recorder.Reads()
		mean := reads.Mean() / 1e6
		if ph.series == "healthy" {
			healthyMean = mean
		}
		ratio := 0.0
		if healthyMean > 0 {
			ratio = mean / healthyMean
		}
		t.Rows = append(t.Rows, Row{Series: ph.series, X: ph.x,
			Values: map[string]float64{
				"read_mean_ms":         mean,
				"read_p99_ms":          ms(reads.P99()),
				"vs_healthy":           ratio,
				"degraded":             float64(res.DegradedReads),
				"degraded_post_repair": float64(res.DegradedReadsPostRepair),
				"reintegrated_stripes": float64(res.ReintegratedStripes),
				"restored_holders":     float64(res.RestoredHolders),
				"server_revivals":      float64(res.ServerRevivals),
				"repair_pending":       float64(res.RepairPending),
				"lost_reads":           float64(res.LostReads),
			}})
	}
	return t
}

// ScenarioSummary runs the recovery-lifecycle cluster under one
// caller-supplied scenario timeline (cmd/rackbench -scenario) and
// tabulates the run's read latencies and lifecycle counters. The
// measured window opens after warmup and spans the whole timeline, so
// every event's effects land in one set of counters. A non-zero
// Options.RepairSLOTarget (-repair-slo) enables the SLO repair pacer
// for the run. repair_done_ms is the instant the last repair batch
// landed, paced or not (0 when no repair ran); slo_viol_frac is the
// controller's violated-tick fraction, 0 when pacing is off.
func ScenarioSummary(events []core.Event, scale Scale, opt Options) (*Table, error) {
	cfg := rlConfig(scale, opt)
	cfg.Warmup = 50 * sim.Millisecond
	cfg.Duration = scale.duration(1000 * sim.Millisecond)
	cfg.Scenario = events
	if opt.RepairSLOTarget > 0 {
		cfg.RepairSLO = core.RepairSLO{TargetP99: opt.RepairSLOTarget}
	}
	opt.instrument(&cfg)
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	opt.notify("scenario", "run", res)
	reads := res.Recorder.Reads()
	t := &Table{
		ID:    "Scenario",
		Title: fmt.Sprintf("Scenario timeline with %d events", len(events)),
		Cols: []string{"read_mean_ms", "read_p99_ms", "degraded",
			"degraded_post_repair", "reintegrated_stripes", "restored_holders",
			"server_revivals", "tor_revivals", "repair_pending", "lost_reads",
			"slo_viol_frac", "repair_done_ms"},
	}
	for _, ev := range events {
		t.Rows = append(t.Rows, Row{Series: "event", X: ev.String(), Values: map[string]float64{}})
	}
	t.Rows = append(t.Rows, Row{Series: "run", X: "whole timeline",
		Values: map[string]float64{
			"read_mean_ms":         reads.Mean() / 1e6,
			"read_p99_ms":          ms(reads.P99()),
			"degraded":             float64(res.DegradedReads),
			"degraded_post_repair": float64(res.DegradedReadsPostRepair),
			"reintegrated_stripes": float64(res.ReintegratedStripes),
			"restored_holders":     float64(res.RestoredHolders),
			"server_revivals":      float64(res.ServerRevivals),
			"tor_revivals":         float64(res.ToRRevivals),
			"repair_pending":       float64(res.RepairPending),
			"lost_reads":           float64(res.LostReads),
			"slo_viol_frac":        res.SLOViolationFraction,
			"repair_done_ms":       ms(res.RepairCompletionTime),
		}})
	return t, nil
}

// RedundancySummary runs one YCSB 50/50 benchmark with the chosen
// redundancy backend on a six-server rack and tabulates the headline
// metrics (cmd/rackbench's -redundancy flag).
func RedundancySummary(spec core.RedundancySpec, scale Scale) (*Table, error) {
	cfg := baseConfig(scale)
	cfg.StorageServers = 6
	cfg.Redundancy = spec
	if spec.Scheme == core.LocalParityCoded {
		// The LRC family needs rack fault domains and spread placement.
		cfg.System = core.RackBlox
		cfg.Racks = 3
		cfg.Placement = core.PlacementSpread
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	reads, writes := res.Recorder.Reads(), res.Recorder.Writes()
	t := &Table{
		ID:    "Redundancy",
		Title: fmt.Sprintf("YCSB 50/50 with %s", spec),
		Cols:  []string{"p99_ms", "p999_ms", "kiops", "write_amp", "degraded"},
	}
	t.Rows = append(t.Rows,
		Row{Series: spec.String(), X: "reads", Values: map[string]float64{
			"p99_ms": ms(reads.P99()), "p999_ms": ms(reads.P999()),
		}},
		Row{Series: spec.String(), X: "writes", Values: map[string]float64{
			"p99_ms": ms(writes.P99()), "p999_ms": ms(writes.P999()),
		}},
		Row{Series: spec.String(), X: "volume", Values: map[string]float64{
			"kiops":     res.Recorder.Throughput() / 1000,
			"write_amp": res.WriteAmp,
			"degraded":  float64(res.DegradedReads),
		}},
	)
	return t, nil
}

// All returns every experiment id in order.
func All() []string {
	return []string{
		"table2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
		"fig22", "fig23", "predictor", "gcablation", "figec", "figmr",
		"figrl", "figsc", "figslo", "figra", "figsh",
	}
}

// ByID runs an experiment by its id with default options.
func ByID(id string, scale Scale) ([]*Table, error) {
	return ByIDWith(id, scale, Options{})
}

// ByIDWith runs an experiment by its id, returning its tables.
func ByIDWith(id string, scale Scale, opt Options) ([]*Table, error) {
	switch id {
	case "table2":
		return []*Table{Table2()}, nil
	case "fig9":
		return []*Table{Fig9a(scale), Fig9b(scale)}, nil
	case "fig10":
		return []*Table{Fig10a(scale), Fig10b(scale)}, nil
	case "fig11":
		return []*Table{Fig11a(scale), Fig11b(scale)}, nil
	case "fig12":
		return []*Table{Fig12(scale)}, nil
	case "fig13":
		return []*Table{Fig13a(scale), Fig13b(scale)}, nil
	case "fig14":
		return []*Table{Fig14(scale)}, nil
	case "fig15":
		return []*Table{Fig15a(scale), Fig15b(scale)}, nil
	case "fig16":
		return []*Table{Fig16(scale)}, nil
	case "fig17":
		return []*Table{Fig17(scale)}, nil
	case "fig18":
		return []*Table{Fig18(scale)}, nil
	case "fig19":
		return []*Table{Fig19(scale)}, nil
	case "fig20":
		return []*Table{Fig20(scale)}, nil
	case "fig21":
		return []*Table{Fig21(scale)}, nil
	case "fig22":
		return []*Table{Fig22()}, nil
	case "fig23":
		return []*Table{Fig23()}, nil
	case "predictor":
		return []*Table{PredictorAccuracy()}, nil
	case "gcablation":
		return []*Table{GCAblation(scale)}, nil
	case "figec":
		return []*Table{FigECWith(scale, opt)}, nil
	case "figmr":
		return []*Table{FigMR(scale, opt)}, nil
	case "figrl":
		return []*Table{FigRL(scale, opt)}, nil
	case "figsc":
		return []*Table{FigSC(scale, opt)}, nil
	case "figslo":
		return []*Table{FigSLO(scale, opt)}, nil
	case "figra":
		return []*Table{FigRA(scale, opt)}, nil
	case "figsh":
		return []*Table{FigSH(scale, opt)}, nil
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}
