package experiments

import "testing"

// TestFigSCCycleHealsTwice pins the scenario-timeline experiment's
// acceptance criteria: after the fail -> revive-server -> catch-up
// cycle the revived holder serves directly again
// (degraded_post_repair == 0, restored_holders > 0) with read latency
// within 1.1x of the healthy baseline, and a second crash of the same
// server heals just as cleanly through adopter re-integration — the
// repeated fail/heal capability the flat config fields could not
// express.
func TestFigSCCycleHealsTwice(t *testing.T) {
	tb := FigSC(1.0, Options{})
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}

	healthy, ok := findRow(tb, "healthy", "baseline")
	if !ok {
		t.Fatal("missing healthy baseline row")
	}
	if healthy.Values["degraded"] != 0 || healthy.Values["server_revivals"] != 0 {
		t.Errorf("healthy baseline saw failure activity: %+v", healthy.Values)
	}

	for _, x := range []string{"degraded", "degraded-again"} {
		r, ok := findRow(tb, map[string]string{
			"degraded": "fail+revive", "degraded-again": "fail-again"}[x], x)
		if !ok {
			t.Fatalf("missing %s row", x)
		}
		if r.Values["degraded"] <= 0 {
			t.Errorf("%s window served no degraded reads: %+v", x, r.Values)
		}
	}

	for _, row := range []struct{ series, x string }{
		{"fail+revive", "post-catch-up"},
		{"fail-again", "post-heal"},
	} {
		r, ok := findRow(tb, row.series, row.x)
		if !ok {
			t.Fatalf("missing row %s/%s", row.series, row.x)
		}
		if r.Values["degraded_post_repair"] != 0 {
			t.Errorf("%s/%s: %v degraded reads after healing", row.series, row.x,
				r.Values["degraded_post_repair"])
		}
		if r.Values["repair_pending"] != 0 {
			t.Errorf("%s/%s: repair never drained: %+v", row.series, row.x, r.Values)
		}
		if ratio := r.Values["vs_healthy"]; ratio > 1.1 {
			t.Errorf("%s/%s: read latency %.3fx healthy baseline, want <= 1.1x",
				row.series, row.x, ratio)
		}
		if r.Values["lost_reads"] != 0 {
			t.Errorf("%s/%s: lost %v reads", row.series, row.x, r.Values["lost_reads"])
		}
		if r.Values["server_revivals"] != 1 {
			t.Errorf("%s/%s: %v server revivals, want 1", row.series, row.x,
				r.Values["server_revivals"])
		}
		if r.Values["restored_holders"] <= 0 {
			t.Errorf("%s/%s: catch-up restored no holders onto the revived server",
				row.series, row.x)
		}
	}

	post, _ := findRow(tb, "fail-again", "post-heal")
	if post.Values["reintegrated_stripes"] <= 0 {
		t.Error("second heal re-integrated no stripes")
	}
	if _, err := ByID("figsc", tiny); err != nil {
		t.Fatalf("ByID(figsc): %v", err)
	}
}
