package experiments

import (
	"fmt"

	"rackblox/internal/core"
	"rackblox/internal/sim"
)

// sloCrossBWMBps is figslo's default spine bandwidth: deliberately
// scarcer than the other cluster experiments' 200 MB/s so unpaced repair
// visibly saturates the link and foreground reads queue behind its
// batches — the contention the pacer exists to control — while still
// leaving the steady foreground load comfortable headroom. -crossbw
// overrides it.
const sloCrossBWMBps = 80

// sloTargetFactor derives the SLO target from the healthy baseline when
// the caller gives none: the paced run must keep its p99 within this
// multiple of the p99 measured with no failure at all. The factor is a
// degraded-mode SLO: it leaves room for the intrinsic cost of degraded
// reads (k-fetch reconstruction plus spine hops), which no repair
// throttling can remove — the pacer controls the queueing repair adds on
// top, which is what blows the unpaced run far past this ceiling.
const sloTargetFactor = 2.5

// sloConfig is the figslo cluster: the recovery-lifecycle cluster on a
// scarce spine, replaying the figsc repeated-fault timeline
// (fail -> revive -> catch-up -> fail-again).
func sloConfig(scale Scale, opt Options) core.Config {
	if opt.CrossBWMBps <= 0 {
		opt.CrossBWMBps = sloCrossBWMBps
	}
	cfg := rlConfig(scale, opt)
	// Halve the client load of the lifecycle cluster: the scarce spine
	// must fit the steady foreground traffic with headroom (otherwise
	// foreground queueing alone collapses the baseline), leaving repair
	// as the marginal contender the pacer arbitrates.
	cfg.Workload.MeanGap *= 2
	// Measure the whole repeated-fault window: both crashes, the revival,
	// and the repair traffic between them land in one recorder.
	cfg.Warmup = scFailAt
	cfg.Duration = scale.duration(scHealed2By - scFailAt)
	return cfg
}

// FigSLO measures the repair-rate vs foreground-latency trade-off the
// pacer closes: the figsc repeated-fault timeline replayed three ways —
// a healthy baseline (no failure, defines the SLO target when none is
// given), unpaced repair (admitted whenever GC idle windows allow, the
// pre-pacer behavior), and SLO-paced repair (core.RepairPacer holding
// the windowed foreground read p99 under the target by AIMD-adjusting
// the repair admission rate on the spine token lane). The pacing claim
// is the p99_ms column: unpaced repair drives it past slo_target_ms
// while pacing keeps it under, and repair still completes
// (repair_done_ms finite, pending 0 — the no-starvation floor). The
// byte columns reconcile delivered against offered spine traffic: equal
// here because a completed run drains every in-flight transfer.
func FigSLO(scale Scale, opt Options) *Table {
	t := &Table{ID: "FigSLO",
		Title: "SLO-aware repair pacing: foreground p99 vs repair completion",
		Cols: []string{"p99_ms", "slo_target_ms", "viol_frac", "repair_done_ms",
			"repaired", "pending", "repair_mb", "repair_mb_offered", "fg_mb",
			"final_rate_mbps", "lost_reads"}}

	run := func(series string, events []core.Event, slo core.RepairSLO) *core.Result {
		cfg := sloConfig(scale, opt)
		cfg.Scenario = events
		cfg.RepairSLO = slo
		opt.instrument(&cfg)
		res, err := core.Run(cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", series, err))
		}
		opt.notify("figslo", series, res)
		return res
	}
	cycle := []core.Event{
		core.FailServer(0, scFailAt),
		core.ReviveServer(0, scReviveAt),
		core.FailServer(0, scFail2At),
	}

	healthy := run("healthy", nil, core.RepairSLO{})
	target := opt.RepairSLOTarget
	if target <= 0 {
		target = sim.Time(float64(healthy.Recorder.Reads().P99()) * sloTargetFactor)
	}
	slo := core.RepairSLO{TargetP99: target}

	row := func(series, x string, res *core.Result) {
		finalRate := 0.0
		if n := len(res.RepairRateTimeline); n > 0 {
			finalRate = res.RepairRateTimeline[n-1].MBps
		}
		t.Rows = append(t.Rows, Row{Series: series, X: x, Values: map[string]float64{
			"p99_ms":            ms(res.Recorder.Reads().P99()),
			"slo_target_ms":     ms(int64(target)),
			"viol_frac":         res.SLOViolationFraction,
			"repair_done_ms":    ms(res.RepairCompletionTime),
			"repaired":          float64(res.RepairedStripes),
			"pending":           float64(res.RepairPending),
			"repair_mb":         float64(res.CrossRackRepairBytes) / 1e6,
			"repair_mb_offered": float64(res.CrossRackRepairBytesOffered) / 1e6,
			"fg_mb":             float64(res.ForegroundCrossRackBytes) / 1e6,
			"final_rate_mbps":   finalRate,
			"lost_reads":        float64(res.LostReads),
		}})
	}
	row("healthy", "no failure", healthy)
	row("unpaced", "fail/revive/fail", run("unpaced", cycle, core.RepairSLO{}))
	row("paced", "fail/revive/fail", run("paced", cycle, slo))
	return t
}
