package experiments

import (
	"testing"

	"rackblox/internal/core"
)

// TestSpineBytesSelfConsistent is the core-level guard for the PR 7
// sim.Bandwidth.TransferTime rounding fix: across every figmr and figslo
// run, the spine's delivered bytes must reconcile with its offered bytes
// and — because transfers serialize on one link whose occupancy is now
// rounded UP to whole nanoseconds — the delivered byte total can never
// imply a rate above the configured spine capacity. Before the fix,
// truncation let back-to-back transfers finish early, so a saturated
// spine "moved" more bytes per elapsed second than it was configured
// for, quietly inflating the repair-throughput side of the figmr and
// figslo tables.
func TestSpineBytesSelfConsistent(t *testing.T) {
	for _, id := range []string{"figmr", "figslo"} {
		var runs int
		opt := Options{OnResult: func(id, series string, res *core.Result) {
			runs++
			delivered := res.CrossRackRepairBytes + res.ForegroundCrossRackBytes
			offered := res.CrossRackRepairBytesOffered + res.ForegroundCrossRackBytesOffered
			if delivered > offered {
				t.Errorf("%s/%s: delivered %d bytes exceeds offered %d",
					id, series, delivered, offered)
			}
			if u := res.SpineUtilization; u < 0 || u > 1 {
				t.Errorf("%s/%s: spine utilization %v outside [0,1]", id, series, u)
			}
			if res.Config.CrossRackMBps <= 0 || res.SimulatedTime <= 0 {
				return // single-rack run: no spine to bound
			}
			capacity := res.Config.CrossRackMBps * 1e6 * float64(res.SimulatedTime) / 1e9
			if float64(delivered) > capacity {
				t.Errorf("%s/%s: spine delivered %d bytes in %dns, over the %.0f-byte capacity of a %v MB/s link",
					id, series, delivered, res.SimulatedTime, capacity, res.Config.CrossRackMBps)
			}
		}}
		if _, err := ByIDWith(id, tiny, opt); err != nil {
			t.Fatalf("ByIDWith(%q): %v", id, err)
		}
		if runs == 0 {
			t.Fatalf("%s: OnResult saw no runs", id)
		}
	}
}
