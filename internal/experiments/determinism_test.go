package experiments

import (
	"encoding/json"
	"testing"
)

// replayJSON runs one experiment and returns its tables as JSON bytes,
// the same encoding cmd/rackbench -json writes.
func replayJSON(t *testing.T, id string) []byte {
	t.Helper()
	tables, err := ByID(id, tiny)
	if err != nil {
		t.Fatalf("ByID(%q): %v", id, err)
	}
	b, err := json.Marshal(tables)
	if err != nil {
		t.Fatalf("marshal %q: %v", id, err)
	}
	return b
}

// TestDeterministicReplay runs figec, figmr, figrl, figsc, and figslo
// twice with the same seed and asserts byte-identical JSON results. This
// pins the engine's (time, insertion-order) event ordering and the
// per-component RNG fork discipline (internal/sim/rng.go): any refactor
// that lets map iteration or wall-clock state leak into the event loop
// shows up here as a diff. figrl covers the recovery-lifecycle paths —
// chunk repair, switch re-integration, ToR revival with table replay —
// figsc the scenario event driver with server revival and catch-up
// repair, figslo the SLO repair pacer, whose feedback loop (latency
// window, AIMD ticks, token-lane wakeups) is a rich source of ordering
// hazards, and figra the LRC code family — local-parity placement,
// rack-local XOR repair, and per-rack aggregated spine batches.
func TestDeterministicReplay(t *testing.T) {
	for _, id := range []string{"figec", "figmr", "figrl", "figsc", "figslo", "figra"} {
		first := replayJSON(t, id)
		second := replayJSON(t, id)
		if string(first) != string(second) {
			t.Errorf("%s: two same-seed runs produced different JSON\nfirst:  %.200s\nsecond: %.200s",
				id, first, second)
		}
	}
}

// TestFigMRPlacementSurvivesRackFailure checks the experiment's headline
// claim: under a whole-rack crash, spread placement loses no reads and
// no stripes while paying nonzero metered cross-rack repair bandwidth;
// compact placement loses whole stripe groups.
func TestFigMRPlacementSurvivesRackFailure(t *testing.T) {
	tb := FigMR(tiny, Options{})
	if len(tb.Rows) != 4 { // 2 scenarios x 2 placements
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	spread, ok := findRow(tb, "multi-rack (spread)", "rack 0 crash")
	if !ok {
		t.Fatal("missing spread crash row")
	}
	if spread.Values["lost_reads"] != 0 || spread.Values["unrecov_stripes"] != 0 {
		t.Errorf("spread placement lost data under rack failure: %+v", spread.Values)
	}
	if spread.Values["degraded"] <= 0 {
		t.Errorf("spread placement served no degraded reads: %+v", spread.Values)
	}
	if spread.Values["cross_repair_mb"] <= 0 {
		t.Errorf("rack failure moved no cross-rack repair bytes: %+v", spread.Values)
	}
	if u := spread.Values["spine_util"]; u <= 0 || u > 1 {
		t.Errorf("spine utilization %v outside (0,1]", u)
	}
	compact, ok := findRow(tb, "single-rack (compact)", "rack 0 crash")
	if !ok {
		t.Fatal("missing compact crash row")
	}
	if compact.Values["unrecov_stripes"] <= 0 {
		t.Errorf("compact placement reported no data loss under rack failure: %+v", compact.Values)
	}
	if compact.Values["cross_repair_mb"] != 0 {
		t.Errorf("compact placement moved cross-rack repair bytes: %+v", compact.Values)
	}
	for _, x := range []string{"healthy"} {
		for _, series := range []string{"single-rack (compact)", "multi-rack (spread)"} {
			r, ok := findRow(tb, series, x)
			if !ok {
				t.Fatalf("missing row %s / %s", series, x)
			}
			if r.Values["lost_reads"] != 0 || r.Values["unrecov_stripes"] != 0 {
				t.Errorf("%s / %s lost data without a failure: %+v", series, x, r.Values)
			}
		}
	}
	if _, err := ByID("figmr", tiny); err != nil {
		t.Fatalf("ByID(figmr): %v", err)
	}
}
