package experiments

import "testing"

// TestFigSLOPacingHoldsSLO pins the pacing experiment's acceptance
// criteria: replaying the figsc repeated-fault timeline on a scarce
// spine, unpaced repair drives the foreground read p99 past the SLO
// target while the paced run keeps it under — and pacing is not
// starvation: repair still completes at a finite instant with nothing
// pending. The spine byte counters must also reconcile — delivered
// equals offered on every row, because a completed run drains all
// in-flight transfers.
func TestFigSLOPacingHoldsSLO(t *testing.T) {
	tb := FigSLO(1.0, Options{})
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}

	healthy, ok := findRow(tb, "healthy", "no failure")
	if !ok {
		t.Fatal("missing healthy row")
	}
	if healthy.Values["repaired"] != 0 || healthy.Values["lost_reads"] != 0 {
		t.Errorf("healthy baseline saw failure activity: %+v", healthy.Values)
	}
	target := healthy.Values["slo_target_ms"]
	if target <= healthy.Values["p99_ms"] {
		t.Fatalf("SLO target %.3fms not above the healthy p99 %.3fms",
			target, healthy.Values["p99_ms"])
	}

	unpaced, ok := findRow(tb, "unpaced", "fail/revive/fail")
	if !ok {
		t.Fatal("missing unpaced row")
	}
	if unpaced.Values["p99_ms"] <= target {
		t.Errorf("unpaced repair kept p99 %.3fms under the %.3fms target; the contention scenario is dead",
			unpaced.Values["p99_ms"], target)
	}

	paced, ok := findRow(tb, "paced", "fail/revive/fail")
	if !ok {
		t.Fatal("missing paced row")
	}
	if paced.Values["p99_ms"] > target {
		t.Errorf("paced p99 %.3fms violates the %.3fms SLO target",
			paced.Values["p99_ms"], target)
	}
	if paced.Values["p99_ms"] >= unpaced.Values["p99_ms"] {
		t.Errorf("pacing did not improve the tail: paced %.3fms >= unpaced %.3fms",
			paced.Values["p99_ms"], unpaced.Values["p99_ms"])
	}

	// Pacing must not starve repair: both fault rows finish healing.
	for _, r := range []Row{unpaced, paced} {
		if r.Values["pending"] != 0 {
			t.Errorf("%s: %v repair tasks never drained", r.Series, r.Values["pending"])
		}
		if r.Values["repaired"] <= 0 {
			t.Errorf("%s: no stripes repaired", r.Series)
		}
		if r.Values["repair_done_ms"] <= 0 {
			t.Errorf("%s: repair completion time %.3fms, want a finite instant",
				r.Series, r.Values["repair_done_ms"])
		}
		if r.Values["lost_reads"] != 0 {
			t.Errorf("%s: lost %v reads", r.Series, r.Values["lost_reads"])
		}
	}
	if paced.Values["final_rate_mbps"] <= 0 {
		t.Error("paced run recorded no controller rate timeline")
	}
	if f := paced.Values["viol_frac"]; f <= 0 || f >= 0.5 {
		t.Errorf("paced violation fraction %.3f outside (0, 0.5): the controller never engaged or thrashed", f)
	}

	// Byte reconciliation: a drained run delivered everything it offered.
	for _, r := range tb.Rows {
		if r.Values["repair_mb"] != r.Values["repair_mb_offered"] {
			t.Errorf("%s/%s: repair bytes unreconciled: delivered %.6f offered %.6f MB",
				r.Series, r.X, r.Values["repair_mb"], r.Values["repair_mb_offered"])
		}
	}

	if _, err := ByID("figslo", tiny); err != nil {
		t.Fatalf("ByID(figslo): %v", err)
	}
}
