package experiments

import "testing"

// TestFigSHShardedMatchesOracle pins the figsh table's structure and its
// one load-bearing claim: at every rack count the parallel sharded run
// produced a result deep-equal to the sequential oracle (identical=1),
// with the deterministic simulation-domain columns populated and sane.
// The wall-clock columns are host measurements and deliberately
// unasserted — on a single-CPU host speedup hovers near 1 and that is
// the honest number, not a failure.
func TestFigSHShardedMatchesOracle(t *testing.T) {
	tb := FigSH(0.05, Options{})
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (racks 1,2,4,8,16)", len(tb.Rows))
	}
	wantRacks := []string{"1 racks", "2 racks", "4 racks", "8 racks", "16 racks"}
	for i, r := range tb.Rows {
		if r.X != wantRacks[i] {
			t.Fatalf("row %d x = %q, want %q", i, r.X, wantRacks[i])
		}
		if r.Values["identical"] != 1 {
			t.Errorf("%s: parallel result diverged from the sequential oracle", r.X)
		}
		if r.Values["ops"] <= 0 || r.Values["events"] <= 0 || r.Values["sim_ms"] <= 0 {
			t.Errorf("%s: empty run (ops=%v events=%v sim_ms=%v)",
				r.X, r.Values["ops"], r.Values["events"], r.Values["sim_ms"])
		}
		if r.X == "1 racks" {
			if r.Values["cross_ops"] != 0 {
				t.Errorf("1 rack: %v cross-rack ops with no peer racks", r.Values["cross_ops"])
			}
		} else if r.Values["cross_ops"] <= 0 {
			t.Errorf("%s: no cross-rack traffic; the spine path went unexercised", r.X)
		}
		if r.Values["maxprocs"] < 1 {
			t.Errorf("%s: maxprocs = %v", r.X, r.Values["maxprocs"])
		}
	}
}

// TestFigSHRegistered pins figsh into the experiment registry so
// rackbench -exp figsh resolves.
func TestFigSHRegistered(t *testing.T) {
	found := false
	for _, id := range All() {
		if id == "figsh" {
			found = true
		}
	}
	if !found {
		t.Fatal("figsh missing from All()")
	}
	tabs, err := ByID("figsh", 0.05)
	if err != nil {
		t.Fatalf("ByID(figsh): %v", err)
	}
	if len(tabs) != 1 || tabs[0].ID != "FigSH" {
		t.Fatalf("ByID(figsh) = %v tables, want one FigSH", len(tabs))
	}
}
