package experiments

import (
	"fmt"

	"rackblox/internal/core"
	"rackblox/internal/sim"
)

// raConfig is the figra cluster: the recovery-lifecycle topology (three
// racks of six, spread placement, Optane devices) on figslo's scarce
// 80 MB/s spine with its halved client load, parameterized by code
// family — RS(4,2) or LRC(4,2). Both tolerate any m=2 global losses, so
// the comparison runs at equal-or-better durability (the LRC side also
// rides out one extra loss per rack); what changes is what repair costs
// the spine.
func raConfig(scale Scale, opt Options, spec core.RedundancySpec) core.Config {
	if opt.CrossBWMBps <= 0 {
		opt.CrossBWMBps = sloCrossBWMBps
	}
	cfg := rlConfig(scale, opt)
	cfg.Redundancy = spec
	cfg.Workload.MeanGap *= 2
	// Measure from the crash until well past the expected heal, so
	// RepairCompletionTime and the byte counters cover the whole repair.
	cfg.Warmup = scFailAt
	cfg.Duration = scale.duration(scHealed2By - scFailAt)
	return cfg
}

// FigRA compares repair traffic across code families at fixed
// durability on a scarce spine: RS(4,2) against LRC(4,2) — the same
// global code plus one local parity chunk per rack — under a
// single-server crash and a whole-rack crash, both SLO-paced with one
// shared target so completion times are comparable. The rack-aware
// claims are three columns: cross_repair_mb is zero for LRC under a
// single-server loss (the rack-local XOR plan never touches the spine,
// where RS must fetch k chunks per stripe, most from remote racks);
// under the rack crash cross_chunks_per_stripe stays below k for both —
// survivors aggregate per rack — but LRC ships strictly fewer chunks
// than RS; and repair_done_ms improves under the same RepairSLO because
// token-free local batches and smaller spine batches drain the queue
// sooner. unrecov_stripes is zero everywhere: neither scenario exceeds
// either family's durability.
func FigRA(scale Scale, opt Options) *Table {
	t := &Table{ID: "FigRA",
		Title: "Repair-efficient rack-aware codes: spine bytes and completion vs code family",
		Cols: []string{"read_p99_ms", "slo_target_ms", "repair_done_ms", "repaired",
			"pending", "cross_repair_mb", "cross_chunks_per_stripe", "local_repair",
			"agg_repair", "local_degraded", "degraded", "lost_reads", "unrecov_stripes"}}

	families := []core.RedundancySpec{
		core.ErasureCode(4, 2),
		core.LocalParityCode(4, 2),
	}
	run := func(spec core.RedundancySpec, series string, slo core.RepairSLO,
		mutate func(*core.Config)) *core.Result {
		cfg := raConfig(scale, opt, spec)
		cfg.RepairSLO = slo
		mutate(&cfg)
		opt.instrument(&cfg)
		res, err := core.Run(cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s/%s: %v", spec, series, err))
		}
		opt.notify("figra", spec.String()+"/"+series, res)
		return res
	}

	// One shared SLO target for every paced run, derived from the RS
	// healthy baseline unless the caller fixed one: completion times are
	// only comparable under the same foreground-latency budget.
	target := opt.RepairSLOTarget
	if target <= 0 {
		healthy := run(families[0], "healthy", core.RepairSLO{}, func(*core.Config) {})
		target = sim.Time(float64(healthy.Recorder.Reads().P99()) * sloTargetFactor)
	}
	slo := core.RepairSLO{TargetP99: target}

	scenarios := []struct {
		x      string
		mutate func(*core.Config)
	}{
		{"server 0 crash", func(cfg *core.Config) {
			cfg.Scenario = []core.Event{core.FailServer(0, scFailAt)}
		}},
		{"rack 0 crash", func(cfg *core.Config) {
			cfg.Scenario = []core.Event{core.FailRack(0, scFailAt)}
		}},
	}
	pageMB := 0.0
	for _, spec := range families {
		for _, sc := range scenarios {
			res := run(spec, sc.x, slo, sc.mutate)
			if pageMB == 0 {
				pageMB = float64(res.Config.Geometry.PageSize) / 1e6
			}
			// Spine chunks shipped per repaired stripe: the per-stripe
			// cross-rack cost of rebuilding one lost chunk (RS fetches
			// most of its k sources remotely; aggregation caps the count
			// at the remote rack count).
			perStripe := 0.0
			if res.RepairedStripes > 0 {
				perStripe = float64(res.CrossRackRepairBytes) / 1e6 /
					(pageMB * float64(res.RepairedStripes))
			}
			t.Rows = append(t.Rows, Row{Series: spec.String(), X: sc.x,
				Values: map[string]float64{
					"read_p99_ms":             ms(res.Recorder.Reads().P99()),
					"slo_target_ms":           ms(int64(target)),
					"repair_done_ms":          ms(res.RepairCompletionTime),
					"repaired":                float64(res.RepairedStripes),
					"pending":                 float64(res.RepairPending),
					"cross_repair_mb":         float64(res.CrossRackRepairBytes) / 1e6,
					"cross_chunks_per_stripe": perStripe,
					"local_repair":            float64(res.LocalRepairStripes),
					"agg_repair":              float64(res.AggregatedRepairStripes),
					"local_degraded":          float64(res.LocalDegradedReads),
					"degraded":                float64(res.DegradedReads),
					"lost_reads":              float64(res.LostReads),
					"unrecov_stripes":         float64(res.UnrecoverableStripes),
				}})
		}
	}
	return t
}
