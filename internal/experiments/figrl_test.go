package experiments

import "testing"

// TestFigRLLifecycleClosesLoop pins the experiment's acceptance
// criteria: after failure, repair, and re-integration the cluster is
// back to full health — no degraded read pays for an unreachable home
// (DegradedReadsPostRepair == 0), no repair work is left pending, read
// latency is within 1.1x of the healthy baseline on the sim clock, and
// foreground cross-rack bytes are reported separately from repair bytes.
func TestFigRLLifecycleClosesLoop(t *testing.T) {
	tb := FigRL(1.0, Options{})
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}

	healthy, ok := findRow(tb, "healthy", "baseline")
	if !ok {
		t.Fatal("missing healthy baseline row")
	}
	if healthy.Values["repair_cross_mb"] != 0 {
		t.Errorf("healthy cluster moved %.2f MB of repair traffic", healthy.Values["repair_cross_mb"])
	}
	if healthy.Values["fg_cross_mb"] <= 0 {
		t.Error("healthy multi-rack cluster metered no foreground spine traffic")
	}

	degraded, ok := findRow(tb, "server crash", "degraded")
	if !ok {
		t.Fatal("missing degraded row")
	}
	if degraded.Values["degraded"] <= 0 {
		t.Errorf("degraded phase served no degraded reads: %+v", degraded.Values)
	}
	if degraded.Values["vs_healthy"] <= 1 {
		t.Errorf("degraded phase not slower than baseline: %+v", degraded.Values)
	}

	for _, row := range []struct{ series, x string }{
		{"server crash", "post-repair"},
		{"tor outage+revive", "post-revival"},
	} {
		r, ok := findRow(tb, row.series, row.x)
		if !ok {
			t.Fatalf("missing row %s/%s", row.series, row.x)
		}
		if r.Values["degraded_post_repair"] != 0 {
			t.Errorf("%s/%s: %v degraded reads after healing", row.series, row.x,
				r.Values["degraded_post_repair"])
		}
		if r.Values["repair_pending"] != 0 {
			t.Errorf("%s/%s: repair never drained: %+v", row.series, row.x, r.Values)
		}
		if ratio := r.Values["vs_healthy"]; ratio > 1.1 {
			t.Errorf("%s/%s: read latency %.3fx healthy baseline, want <= 1.1x",
				row.series, row.x, ratio)
		}
		if r.Values["lost_reads"] != 0 {
			t.Errorf("%s/%s: lost %v reads", row.series, row.x, r.Values["lost_reads"])
		}
	}

	post, _ := findRow(tb, "server crash", "post-repair")
	if post.Values["reintegrated_stripes"] <= 0 {
		t.Error("crash scenario re-integrated no stripes")
	}
	if post.Values["repair_cross_mb"] <= 0 {
		t.Error("crash repair moved no cross-rack bytes")
	}
	revived, _ := findRow(tb, "tor outage+revive", "post-revival")
	if revived.Values["tor_revivals"] != 1 {
		t.Errorf("revival scenario revived %v ToRs, want 1", revived.Values["tor_revivals"])
	}
}
