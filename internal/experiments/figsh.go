package experiments

import (
	"fmt"
	"reflect"
	"runtime"

	"rackblox/internal/core"
	"rackblox/internal/walltime"
)

// FigSH measures the sharded runner's scaling: the per-I/O soak model
// (core.RunShardedCluster) executed sequentially and in parallel at
// 1..16 rack shards, one row per rack count.
//
// Two kinds of columns coexist deliberately. The simulation-domain
// columns (ops, cross_ops, events, sim_ms, identical) are deterministic
// and identical in both modes — identical=1 asserts, per row, that the
// parallel run's merged result deep-equals the sequential oracle's, the
// tentpole's byte-identity contract measured rather than assumed. The
// wall-clock columns (wall_seq_ms, wall_par_ms, speedup, par_meps) are
// host measurements through internal/walltime and vary run to run;
// maxprocs records the host parallelism they were taken under, because
// speedup is bounded by it — on a single-CPU host the curve is flat and
// the column says why.
func FigSH(scale Scale, opt Options) *Table {
	t := &Table{ID: "FigSH",
		Title: "Sharded simulation speedup vs rack count (parallel vs sequential oracle)",
		Cols: []string{"ops", "cross_ops", "events", "sim_ms", "identical",
			"wall_seq_ms", "wall_par_ms", "speedup", "par_meps", "maxprocs"}}

	opsPerRack := int64(float64(200_000) * float64(scale))
	if opsPerRack < 5_000 {
		opsPerRack = 5_000
	}
	for _, racks := range []int{1, 2, 4, 8, 16} {
		cfg := core.ShardedClusterConfig{
			Racks:             racks,
			ServersPerRack:    64,
			ChainsPerRack:     64,
			OpsPerRack:        opsPerRack,
			CrossRackPermille: 20,
			Seed:              1,
		}
		seqStart := walltime.Start()
		seq := core.RunShardedCluster(cfg, false)
		seqWall := walltime.Elapsed(seqStart)

		parStart := walltime.Start()
		par := core.RunShardedCluster(cfg, true)
		parWall := walltime.Elapsed(parStart)

		identical := 0.0
		if reflect.DeepEqual(seq, par) {
			identical = 1.0
		}
		speedup := 0.0
		if parWall > 0 {
			speedup = float64(seqWall) / float64(parWall)
		}
		parMeps := 0.0
		if parWall > 0 {
			parMeps = float64(par.Events) / parWall.Seconds() / 1e6
		}
		t.Rows = append(t.Rows, Row{Series: "sharded", X: fmt.Sprintf("%d racks", racks),
			Values: map[string]float64{
				"ops":         float64(seq.Ops),
				"cross_ops":   float64(seq.CrossOps),
				"events":      float64(seq.Events),
				"sim_ms":      ms(int64(seq.End)),
				"identical":   identical,
				"wall_seq_ms": float64(seqWall.Milliseconds()),
				"wall_par_ms": float64(parWall.Milliseconds()),
				"speedup":     speedup,
				"par_meps":    parMeps,
				"maxprocs":    float64(runtime.GOMAXPROCS(0)),
			}})
	}
	return t
}
